# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/phy_test[1]_include.cmake")
include("/root/repo/build/tests/wimax_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/wifi_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/tdma_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/qos_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/edca_test[1]_include.cmake")
include("/root/repo/build/tests/sched_property_test[1]_include.cmake")
include("/root/repo/build/tests/lp_property_test[1]_include.cmake")
include("/root/repo/build/tests/wimax_ext_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/call_dynamics_test[1]_include.cmake")
