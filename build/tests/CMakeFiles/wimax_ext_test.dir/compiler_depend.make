# Empty compiler generated dependencies file for wimax_ext_test.
# This may be replaced when dependencies are built.
