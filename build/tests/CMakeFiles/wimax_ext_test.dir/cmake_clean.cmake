file(REMOVE_RECURSE
  "CMakeFiles/wimax_ext_test.dir/wimax_ext_test.cpp.o"
  "CMakeFiles/wimax_ext_test.dir/wimax_ext_test.cpp.o.d"
  "wimax_ext_test"
  "wimax_ext_test.pdb"
  "wimax_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimax_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
