file(REMOVE_RECURSE
  "CMakeFiles/call_dynamics_test.dir/call_dynamics_test.cpp.o"
  "CMakeFiles/call_dynamics_test.dir/call_dynamics_test.cpp.o.d"
  "call_dynamics_test"
  "call_dynamics_test.pdb"
  "call_dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/call_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
