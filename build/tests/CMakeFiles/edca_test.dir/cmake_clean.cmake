file(REMOVE_RECURSE
  "CMakeFiles/edca_test.dir/edca_test.cpp.o"
  "CMakeFiles/edca_test.dir/edca_test.cpp.o.d"
  "edca_test"
  "edca_test.pdb"
  "edca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
