# Empty compiler generated dependencies file for edca_test.
# This may be replaced when dependencies are built.
