file(REMOVE_RECURSE
  "CMakeFiles/wimax_test.dir/wimax_test.cpp.o"
  "CMakeFiles/wimax_test.dir/wimax_test.cpp.o.d"
  "wimax_test"
  "wimax_test.pdb"
  "wimax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
