# Empty compiler generated dependencies file for wimax_test.
# This may be replaced when dependencies are built.
