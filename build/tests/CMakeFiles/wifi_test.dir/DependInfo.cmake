
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wifi_test.cpp" "tests/CMakeFiles/wifi_test.dir/wifi_test.cpp.o" "gcc" "tests/CMakeFiles/wifi_test.dir/wifi_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wimesh_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
