file(REMOVE_RECURSE
  "CMakeFiles/wimesh_traffic.dir/traffic/sources.cpp.o"
  "CMakeFiles/wimesh_traffic.dir/traffic/sources.cpp.o.d"
  "libwimesh_traffic.a"
  "libwimesh_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
