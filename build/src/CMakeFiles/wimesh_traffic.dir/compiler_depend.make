# Empty compiler generated dependencies file for wimesh_traffic.
# This may be replaced when dependencies are built.
