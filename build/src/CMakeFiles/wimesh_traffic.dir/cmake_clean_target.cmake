file(REMOVE_RECURSE
  "libwimesh_traffic.a"
)
