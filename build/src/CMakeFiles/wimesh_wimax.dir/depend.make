# Empty dependencies file for wimesh_wimax.
# This may be replaced when dependencies are built.
