file(REMOVE_RECURSE
  "libwimesh_wimax.a"
)
