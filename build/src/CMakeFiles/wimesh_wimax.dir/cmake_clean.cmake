file(REMOVE_RECURSE
  "CMakeFiles/wimesh_wimax.dir/wimax/control_messages.cpp.o"
  "CMakeFiles/wimesh_wimax.dir/wimax/control_messages.cpp.o.d"
  "CMakeFiles/wimesh_wimax.dir/wimax/distributed_scheduler.cpp.o"
  "CMakeFiles/wimesh_wimax.dir/wimax/distributed_scheduler.cpp.o.d"
  "CMakeFiles/wimesh_wimax.dir/wimax/election.cpp.o"
  "CMakeFiles/wimesh_wimax.dir/wimax/election.cpp.o.d"
  "CMakeFiles/wimesh_wimax.dir/wimax/mesh_frame.cpp.o"
  "CMakeFiles/wimesh_wimax.dir/wimax/mesh_frame.cpp.o.d"
  "libwimesh_wimax.a"
  "libwimesh_wimax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_wimax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
