
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wimax/control_messages.cpp" "src/CMakeFiles/wimesh_wimax.dir/wimax/control_messages.cpp.o" "gcc" "src/CMakeFiles/wimesh_wimax.dir/wimax/control_messages.cpp.o.d"
  "/root/repo/src/wimax/distributed_scheduler.cpp" "src/CMakeFiles/wimesh_wimax.dir/wimax/distributed_scheduler.cpp.o" "gcc" "src/CMakeFiles/wimesh_wimax.dir/wimax/distributed_scheduler.cpp.o.d"
  "/root/repo/src/wimax/election.cpp" "src/CMakeFiles/wimesh_wimax.dir/wimax/election.cpp.o" "gcc" "src/CMakeFiles/wimesh_wimax.dir/wimax/election.cpp.o.d"
  "/root/repo/src/wimax/mesh_frame.cpp" "src/CMakeFiles/wimesh_wimax.dir/wimax/mesh_frame.cpp.o" "gcc" "src/CMakeFiles/wimesh_wimax.dir/wimax/mesh_frame.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wimesh_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
