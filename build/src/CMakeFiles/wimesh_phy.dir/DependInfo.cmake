
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/phy.cpp" "src/CMakeFiles/wimesh_phy.dir/phy/phy.cpp.o" "gcc" "src/CMakeFiles/wimesh_phy.dir/phy/phy.cpp.o.d"
  "/root/repo/src/phy/radio_model.cpp" "src/CMakeFiles/wimesh_phy.dir/phy/radio_model.cpp.o" "gcc" "src/CMakeFiles/wimesh_phy.dir/phy/radio_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wimesh_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
