file(REMOVE_RECURSE
  "libwimesh_phy.a"
)
