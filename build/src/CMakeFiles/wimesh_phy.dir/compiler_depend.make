# Empty compiler generated dependencies file for wimesh_phy.
# This may be replaced when dependencies are built.
