file(REMOVE_RECURSE
  "CMakeFiles/wimesh_phy.dir/phy/phy.cpp.o"
  "CMakeFiles/wimesh_phy.dir/phy/phy.cpp.o.d"
  "CMakeFiles/wimesh_phy.dir/phy/radio_model.cpp.o"
  "CMakeFiles/wimesh_phy.dir/phy/radio_model.cpp.o.d"
  "libwimesh_phy.a"
  "libwimesh_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
