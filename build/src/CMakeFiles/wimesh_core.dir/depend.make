# Empty dependencies file for wimesh_core.
# This may be replaced when dependencies are built.
