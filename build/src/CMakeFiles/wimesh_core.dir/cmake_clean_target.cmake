file(REMOVE_RECURSE
  "libwimesh_core.a"
)
