file(REMOVE_RECURSE
  "CMakeFiles/wimesh_core.dir/core/mesh_network.cpp.o"
  "CMakeFiles/wimesh_core.dir/core/mesh_network.cpp.o.d"
  "CMakeFiles/wimesh_core.dir/core/scenario.cpp.o"
  "CMakeFiles/wimesh_core.dir/core/scenario.cpp.o.d"
  "libwimesh_core.a"
  "libwimesh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
