file(REMOVE_RECURSE
  "libwimesh_qos.a"
)
