# Empty compiler generated dependencies file for wimesh_qos.
# This may be replaced when dependencies are built.
