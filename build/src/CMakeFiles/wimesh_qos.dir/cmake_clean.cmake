file(REMOVE_RECURSE
  "CMakeFiles/wimesh_qos.dir/qos/call_dynamics.cpp.o"
  "CMakeFiles/wimesh_qos.dir/qos/call_dynamics.cpp.o.d"
  "CMakeFiles/wimesh_qos.dir/qos/flow.cpp.o"
  "CMakeFiles/wimesh_qos.dir/qos/flow.cpp.o.d"
  "CMakeFiles/wimesh_qos.dir/qos/planner.cpp.o"
  "CMakeFiles/wimesh_qos.dir/qos/planner.cpp.o.d"
  "libwimesh_qos.a"
  "libwimesh_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
