file(REMOVE_RECURSE
  "libwimesh_ilp.a"
)
