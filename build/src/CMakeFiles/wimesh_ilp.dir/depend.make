# Empty dependencies file for wimesh_ilp.
# This may be replaced when dependencies are built.
