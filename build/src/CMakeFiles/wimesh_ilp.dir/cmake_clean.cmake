file(REMOVE_RECURSE
  "CMakeFiles/wimesh_ilp.dir/ilp/ilp.cpp.o"
  "CMakeFiles/wimesh_ilp.dir/ilp/ilp.cpp.o.d"
  "libwimesh_ilp.a"
  "libwimesh_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
