file(REMOVE_RECURSE
  "libwimesh_tdma.a"
)
