# Empty compiler generated dependencies file for wimesh_tdma.
# This may be replaced when dependencies are built.
