file(REMOVE_RECURSE
  "CMakeFiles/wimesh_tdma.dir/tdma/overlay.cpp.o"
  "CMakeFiles/wimesh_tdma.dir/tdma/overlay.cpp.o.d"
  "libwimesh_tdma.a"
  "libwimesh_tdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
