file(REMOVE_RECURSE
  "CMakeFiles/wimesh_metrics.dir/metrics/stats.cpp.o"
  "CMakeFiles/wimesh_metrics.dir/metrics/stats.cpp.o.d"
  "libwimesh_metrics.a"
  "libwimesh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
