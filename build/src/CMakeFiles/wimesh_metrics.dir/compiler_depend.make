# Empty compiler generated dependencies file for wimesh_metrics.
# This may be replaced when dependencies are built.
