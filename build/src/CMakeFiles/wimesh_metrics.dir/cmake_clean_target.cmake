file(REMOVE_RECURSE
  "libwimesh_metrics.a"
)
