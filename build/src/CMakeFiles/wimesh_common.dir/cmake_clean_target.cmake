file(REMOVE_RECURSE
  "libwimesh_common.a"
)
