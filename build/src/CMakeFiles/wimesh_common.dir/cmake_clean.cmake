file(REMOVE_RECURSE
  "CMakeFiles/wimesh_common.dir/common/assert.cpp.o"
  "CMakeFiles/wimesh_common.dir/common/assert.cpp.o.d"
  "CMakeFiles/wimesh_common.dir/common/log.cpp.o"
  "CMakeFiles/wimesh_common.dir/common/log.cpp.o.d"
  "CMakeFiles/wimesh_common.dir/common/rng.cpp.o"
  "CMakeFiles/wimesh_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/wimesh_common.dir/common/strings.cpp.o"
  "CMakeFiles/wimesh_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/wimesh_common.dir/common/time.cpp.o"
  "CMakeFiles/wimesh_common.dir/common/time.cpp.o.d"
  "libwimesh_common.a"
  "libwimesh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
