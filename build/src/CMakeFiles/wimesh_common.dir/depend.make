# Empty dependencies file for wimesh_common.
# This may be replaced when dependencies are built.
