file(REMOVE_RECURSE
  "CMakeFiles/wimesh_wifi.dir/wifi/channel.cpp.o"
  "CMakeFiles/wimesh_wifi.dir/wifi/channel.cpp.o.d"
  "CMakeFiles/wimesh_wifi.dir/wifi/dcf_mac.cpp.o"
  "CMakeFiles/wimesh_wifi.dir/wifi/dcf_mac.cpp.o.d"
  "CMakeFiles/wimesh_wifi.dir/wifi/edca_mac.cpp.o"
  "CMakeFiles/wimesh_wifi.dir/wifi/edca_mac.cpp.o.d"
  "libwimesh_wifi.a"
  "libwimesh_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
