file(REMOVE_RECURSE
  "libwimesh_wifi.a"
)
