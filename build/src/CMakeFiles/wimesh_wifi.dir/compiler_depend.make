# Empty compiler generated dependencies file for wimesh_wifi.
# This may be replaced when dependencies are built.
