
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/channel.cpp" "src/CMakeFiles/wimesh_wifi.dir/wifi/channel.cpp.o" "gcc" "src/CMakeFiles/wimesh_wifi.dir/wifi/channel.cpp.o.d"
  "/root/repo/src/wifi/dcf_mac.cpp" "src/CMakeFiles/wimesh_wifi.dir/wifi/dcf_mac.cpp.o" "gcc" "src/CMakeFiles/wimesh_wifi.dir/wifi/dcf_mac.cpp.o.d"
  "/root/repo/src/wifi/edca_mac.cpp" "src/CMakeFiles/wimesh_wifi.dir/wifi/edca_mac.cpp.o" "gcc" "src/CMakeFiles/wimesh_wifi.dir/wifi/edca_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wimesh_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
