# Empty dependencies file for wimesh_des.
# This may be replaced when dependencies are built.
