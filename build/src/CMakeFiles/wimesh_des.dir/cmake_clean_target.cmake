file(REMOVE_RECURSE
  "libwimesh_des.a"
)
