file(REMOVE_RECURSE
  "CMakeFiles/wimesh_des.dir/des/simulator.cpp.o"
  "CMakeFiles/wimesh_des.dir/des/simulator.cpp.o.d"
  "libwimesh_des.a"
  "libwimesh_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
