# Empty dependencies file for wimesh_sync.
# This may be replaced when dependencies are built.
