file(REMOVE_RECURSE
  "libwimesh_sync.a"
)
