file(REMOVE_RECURSE
  "CMakeFiles/wimesh_sync.dir/sync/sync.cpp.o"
  "CMakeFiles/wimesh_sync.dir/sync/sync.cpp.o.d"
  "libwimesh_sync.a"
  "libwimesh_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
