file(REMOVE_RECURSE
  "libwimesh_sched.a"
)
