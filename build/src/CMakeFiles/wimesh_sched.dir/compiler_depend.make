# Empty compiler generated dependencies file for wimesh_sched.
# This may be replaced when dependencies are built.
