file(REMOVE_RECURSE
  "CMakeFiles/wimesh_sched.dir/sched/conflict_graph.cpp.o"
  "CMakeFiles/wimesh_sched.dir/sched/conflict_graph.cpp.o.d"
  "CMakeFiles/wimesh_sched.dir/sched/scheduler.cpp.o"
  "CMakeFiles/wimesh_sched.dir/sched/scheduler.cpp.o.d"
  "libwimesh_sched.a"
  "libwimesh_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
