file(REMOVE_RECURSE
  "CMakeFiles/wimesh_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/wimesh_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/wimesh_graph.dir/graph/shortest_path.cpp.o"
  "CMakeFiles/wimesh_graph.dir/graph/shortest_path.cpp.o.d"
  "CMakeFiles/wimesh_graph.dir/graph/topology.cpp.o"
  "CMakeFiles/wimesh_graph.dir/graph/topology.cpp.o.d"
  "libwimesh_graph.a"
  "libwimesh_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
