# Empty dependencies file for wimesh_graph.
# This may be replaced when dependencies are built.
