file(REMOVE_RECURSE
  "libwimesh_graph.a"
)
