file(REMOVE_RECURSE
  "CMakeFiles/wimesh_lp.dir/lp/lp.cpp.o"
  "CMakeFiles/wimesh_lp.dir/lp/lp.cpp.o.d"
  "libwimesh_lp.a"
  "libwimesh_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
