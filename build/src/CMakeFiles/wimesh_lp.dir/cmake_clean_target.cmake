file(REMOVE_RECURSE
  "libwimesh_lp.a"
)
