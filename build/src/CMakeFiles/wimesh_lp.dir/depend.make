# Empty dependencies file for wimesh_lp.
# This may be replaced when dependencies are built.
