file(REMOVE_RECURSE
  "CMakeFiles/bench_call_blocking.dir/bench_call_blocking.cpp.o"
  "CMakeFiles/bench_call_blocking.dir/bench_call_blocking.cpp.o.d"
  "bench_call_blocking"
  "bench_call_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_call_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
