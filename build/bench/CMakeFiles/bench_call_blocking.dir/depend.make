# Empty dependencies file for bench_call_blocking.
# This may be replaced when dependencies are built.
