# Empty compiler generated dependencies file for bench_dcf_comparison.
# This may be replaced when dependencies are built.
