file(REMOVE_RECURSE
  "CMakeFiles/bench_dcf_comparison.dir/bench_dcf_comparison.cpp.o"
  "CMakeFiles/bench_dcf_comparison.dir/bench_dcf_comparison.cpp.o.d"
  "bench_dcf_comparison"
  "bench_dcf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
