# Empty compiler generated dependencies file for bench_voip_capacity.
# This may be replaced when dependencies are built.
