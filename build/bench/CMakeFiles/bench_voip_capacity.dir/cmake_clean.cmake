file(REMOVE_RECURSE
  "CMakeFiles/bench_voip_capacity.dir/bench_voip_capacity.cpp.o"
  "CMakeFiles/bench_voip_capacity.dir/bench_voip_capacity.cpp.o.d"
  "bench_voip_capacity"
  "bench_voip_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voip_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
