# Empty dependencies file for bench_delay_vs_hops.
# This may be replaced when dependencies are built.
