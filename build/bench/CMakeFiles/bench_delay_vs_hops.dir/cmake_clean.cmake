file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_vs_hops.dir/bench_delay_vs_hops.cpp.o"
  "CMakeFiles/bench_delay_vs_hops.dir/bench_delay_vs_hops.cpp.o.d"
  "bench_delay_vs_hops"
  "bench_delay_vs_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_vs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
