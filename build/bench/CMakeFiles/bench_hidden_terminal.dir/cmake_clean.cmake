file(REMOVE_RECURSE
  "CMakeFiles/bench_hidden_terminal.dir/bench_hidden_terminal.cpp.o"
  "CMakeFiles/bench_hidden_terminal.dir/bench_hidden_terminal.cpp.o.d"
  "bench_hidden_terminal"
  "bench_hidden_terminal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hidden_terminal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
