# Empty dependencies file for bench_hidden_terminal.
# This may be replaced when dependencies are built.
