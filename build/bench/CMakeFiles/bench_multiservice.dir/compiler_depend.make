# Empty compiler generated dependencies file for bench_multiservice.
# This may be replaced when dependencies are built.
