file(REMOVE_RECURSE
  "CMakeFiles/bench_multiservice.dir/bench_multiservice.cpp.o"
  "CMakeFiles/bench_multiservice.dir/bench_multiservice.cpp.o.d"
  "bench_multiservice"
  "bench_multiservice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiservice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
