# Empty compiler generated dependencies file for bench_ilp_solvetime.
# This may be replaced when dependencies are built.
