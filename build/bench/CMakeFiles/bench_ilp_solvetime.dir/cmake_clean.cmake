file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_solvetime.dir/bench_ilp_solvetime.cpp.o"
  "CMakeFiles/bench_ilp_solvetime.dir/bench_ilp_solvetime.cpp.o.d"
  "bench_ilp_solvetime"
  "bench_ilp_solvetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_solvetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
