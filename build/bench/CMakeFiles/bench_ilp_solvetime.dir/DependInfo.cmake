
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ilp_solvetime.cpp" "bench/CMakeFiles/bench_ilp_solvetime.dir/bench_ilp_solvetime.cpp.o" "gcc" "bench/CMakeFiles/bench_ilp_solvetime.dir/bench_ilp_solvetime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wimesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_tdma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_wimax.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_des.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wimesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
