file(REMOVE_RECURSE
  "CMakeFiles/bench_bf_vs_ilp.dir/bench_bf_vs_ilp.cpp.o"
  "CMakeFiles/bench_bf_vs_ilp.dir/bench_bf_vs_ilp.cpp.o.d"
  "bench_bf_vs_ilp"
  "bench_bf_vs_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bf_vs_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
