# Empty dependencies file for bench_bf_vs_ilp.
# This may be replaced when dependencies are built.
