# Empty dependencies file for bench_frame_length.
# This may be replaced when dependencies are built.
