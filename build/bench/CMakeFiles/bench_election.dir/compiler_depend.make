# Empty compiler generated dependencies file for bench_election.
# This may be replaced when dependencies are built.
