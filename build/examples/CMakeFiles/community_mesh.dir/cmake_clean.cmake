file(REMOVE_RECURSE
  "CMakeFiles/community_mesh.dir/community_mesh.cpp.o"
  "CMakeFiles/community_mesh.dir/community_mesh.cpp.o.d"
  "community_mesh"
  "community_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
