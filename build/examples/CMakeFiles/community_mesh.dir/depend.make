# Empty dependencies file for community_mesh.
# This may be replaced when dependencies are built.
