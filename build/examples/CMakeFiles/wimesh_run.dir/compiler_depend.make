# Empty compiler generated dependencies file for wimesh_run.
# This may be replaced when dependencies are built.
