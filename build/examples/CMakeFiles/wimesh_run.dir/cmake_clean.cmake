file(REMOVE_RECURSE
  "CMakeFiles/wimesh_run.dir/wimesh_run.cpp.o"
  "CMakeFiles/wimesh_run.dir/wimesh_run.cpp.o.d"
  "wimesh_run"
  "wimesh_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimesh_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
