# Empty compiler generated dependencies file for voip_capacity.
# This may be replaced when dependencies are built.
