file(REMOVE_RECURSE
  "CMakeFiles/voip_capacity.dir/voip_capacity.cpp.o"
  "CMakeFiles/voip_capacity.dir/voip_capacity.cpp.o.d"
  "voip_capacity"
  "voip_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voip_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
