// wimesh_run — scenario-file driven simulation CLI.
//
//   wimesh_run <scenario-file>        run a scenario from disk
//   wimesh_run --demo                 run a built-in demo scenario
//
// The scenario grammar is documented in include/wimesh/core/scenario.h.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "wimesh/core/scenario.h"

using namespace wimesh;

namespace {

const char* kDemoScenario = R"(# built-in demo: 3x3 community mesh
topology = grid 3 3 100
comm_range = 110
interference_range = 220
phy = ofdm54
frame_ms = 10
control_slots = 4
data_slots = 96
scheduler = ilp-delay
routing = hop
mac = tdma
duration_s = 5
seed = 1

voip 0 8 0 g729 100
voip 2 6 0 g711 100
bulk 50 2 6 1200 2000000
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    text = kDemoScenario;
  } else if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::fprintf(stderr, "usage: %s <scenario-file> | --demo\n", argv[0]);
    return 1;
  }

  auto scenario = parse_scenario(text);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "scenario error: %s\n", scenario.error().c_str());
    return 1;
  }

  MeshNetwork net(scenario->config);
  for (const FlowSpec& f : scenario->flows) net.add_flow(f);
  const auto plan = net.compute_plan();
  if (!plan.has_value()) {
    std::fprintf(stderr, "admission/planning failed: %s\n",
                 plan.error().c_str());
    return 1;
  }
  std::printf("plan: %d/%d data minislots reserved, guard %s\n",
              (*plan)->guaranteed_slots_used,
              scenario->config.emulation.frame.data_slots,
              net.effective_guard().to_string().c_str());

  const SimulationResult result = net.run(scenario->mac, scenario->duration);
  std::fputs(format_report(*scenario, result).c_str(), stdout);
  return 0;
}
