// wimesh_run — scenario-file driven simulation CLI.
//
//   wimesh_run <scenario-file>                     run a scenario from disk
//   wimesh_run --demo                              run a built-in demo scenario
//   wimesh_run --sweep seed=LO..HI [--jobs K] [--json OUT] <scenario>|--demo
//                                                  parallel multi-seed sweep
//   wimesh_run --json OUT <scenario>|--demo        single run + JSON dump
//   wimesh_run --trace OUT[:cats] ...              record an event trace
//
// Sweep runs execute on a work-stealing thread pool; run i uses the RNG
// stream derived from (scenario seed, i), so the aggregated output —
// including the JSON file — is byte-identical for any --jobs value. A
// shared schedule cache memoizes the ILP solve across runs (the topology
// and demands do not change within a seed sweep) and its hit rate is
// reported after the table.
//
// --trace writes a Chrome trace-event / Perfetto JSON file (plus a
// per-frame slot-timeline CSV next to it) and prints a profiling span
// summary. Under --sweep each seed gets its own pair of files
// (OUT.seed=N.json); the JSON contains only virtual-time events, so the
// bytes are identical for any --jobs value.
//
// The scenario grammar is documented in include/wimesh/core/scenario.h.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <memory>

#include "wimesh/batch/admit_run.h"
#include "wimesh/batch/runner.h"
#include "wimesh/chaos/chaos.h"
#include "wimesh/core/scenario.h"
#include "wimesh/trace/export.h"
#include "wimesh/trace/trace.h"

using namespace wimesh;

namespace {

const char* kDemoScenario = R"(# built-in demo: 3x3 community mesh
topology = grid 3 3 100
comm_range = 110
interference_range = 220
phy = ofdm54
frame_ms = 10
control_slots = 4
data_slots = 96
scheduler = ilp-delay
routing = hop
mac = tdma
duration_s = 5
seed = 1

voip 0 8 0 g729 100
voip 2 6 0 g711 100
bulk 50 2 6 1200 2000000
)";

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sweep seed=LO..HI] [--jobs K] [--json OUT] "
               "[--audit [fail-fast]] [--faults PLAN] [--ilp KNOBS] "
               "[--zones N] [--admit KNOBS] [--radio KNOBS] "
               "[--trace OUT[:cats]] "
               "<scenario-file> | --demo | --chaos KNOBS\n"
               "  --faults PLAN   inject faults, e.g. "
               "'node-crash@2 node=4; master-fail@3'\n"
               "                  (grammar: include/wimesh/faults/plan.h)\n"
               "  --ilp KNOBS     ILP scheduler knobs, comma list of\n"
               "                  [no-]cuts | [no-]symmetry | [no-]warm | "
               "[no-]tree |\n"
               "                  portfolio=N | threads=N | max_nodes=N | "
               "time_limit_s=X\n"
               "                  (overrides the scenario's 'ilp =' key; "
               "threads only\n"
               "                  affects wall clock, never results)\n"
               "  --zones N       partition the mesh into N zones and solve "
               "them in\n"
               "                  parallel with deterministic border "
               "reconciliation\n"
               "                  (wimesh::zones; overrides the scenario's "
               "'zones =' key)\n"
               "  --admit KNOBS   online admission churn replay instead of a "
               "packet\n"
               "                  simulation; comma list of on | rate=X | "
               "holding=S |\n"
               "                  horizon=S | events=N | codec=g711|g729|g723 "
               "|\n"
               "                  max_delay_ms=N | be_fraction=X | seed=N |\n"
               "                  compaction=N | [no-]degrade | [no-]check\n"
               "                  ('check' cross-checks every decision "
               "against the\n"
               "                  cold re-solve oracle; grammar: 'admit =' in "
               "scenario.h)\n"
               "  --radio KNOBS   physical channel model knobs, comma list "
               "of on |\n"
               "                  model=physical|protocol | shadowing=DB | "
               "fading=jakes|none |\n"
               "                  doppler=HZ | adapt=on/off | probe=N | "
               "seed=N | ...\n"
               "                  (appended after the scenario's 'radio =' "
               "lines, so later\n"
               "                  tokens win; 'model=protocol' forces the "
               "protocol model;\n"
               "                  full grammar: 'radio =' in "
               "core/scenario.h)\n"
               "  --chaos KNOBS   seeded fault/churn fuzzing instead of a "
               "scenario run;\n"
               "                  comma list of on | seed=N | events=N | "
               "trials=N |\n"
               "                  detect_ms=N | inject-bug (test fixture)\n"
               "                  exits non-zero with a minimized "
               "reproducing fault\n"
               "                  script on the first oracle/audit "
               "failure\n"
               "  --trace OUT[:cats]\n"
               "                  write a Perfetto/chrome://tracing JSON "
               "event trace to OUT\n"
               "                  (per seed under --sweep) plus a slot "
               "timeline CSV; cats is a\n"
               "                  comma list of "
               "des,tdma,wifi,sync,faults,prof,ilp,admit,zones,chaos "
               "(default all)\n",
               argv0);
  return 1;
}

// Parses "seed=LO..HI" (HI >= LO >= 0). Returns false on malformed input.
bool parse_sweep(const std::string& arg, std::uint64_t* lo,
                 std::uint64_t* hi) {
  if (arg.rfind("seed=", 0) != 0) return false;
  const std::string range = arg.substr(5);
  const auto dots = range.find("..");
  if (dots == std::string::npos) return false;
  char* end = nullptr;
  const std::string lo_s = range.substr(0, dots);
  const std::string hi_s = range.substr(dots + 2);
  *lo = std::strtoull(lo_s.c_str(), &end, 10);
  if (end == lo_s.c_str() || *end != '\0') return false;
  *hi = std::strtoull(hi_s.c_str(), &end, 10);
  if (end == hi_s.c_str() || *end != '\0') return false;
  return *lo <= *hi;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

// Splits "OUT[:cats]". The suffix after the last ':' is treated as a
// category list only when it looks like one (no '/' or '.', so paths with
// colons stay intact); a suffix that looks like one but does not parse is
// an error.
bool parse_trace_arg(const std::string& arg, std::string* path,
                     std::uint32_t* categories) {
  const auto colon = arg.rfind(':');
  if (colon != std::string::npos) {
    const std::string suffix = arg.substr(colon + 1);
    if (!suffix.empty() && suffix.find('/') == std::string::npos &&
        suffix.find('.') == std::string::npos) {
      std::string error;
      const std::uint32_t mask = trace::parse_categories(suffix, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "--trace: %s\n", error.c_str());
        return false;
      }
      *path = arg.substr(0, colon);
      *categories = mask;
      return !path->empty();
    }
  }
  *path = arg;
  *categories = 0;  // resolved later: scenario key, then "all"
  return !path->empty();
}

// "base.json" + label -> "base.<label>.json" (label before the extension).
std::string trace_path_for(const std::string& base, const std::string& label) {
  const auto dot = base.rfind('.');
  const auto slash = base.find_last_of('/');
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    return base.substr(0, dot) + "." + label + base.substr(dot);
  }
  return base + "." + label;
}

// Companion slot-timeline CSV path for a trace JSON path.
std::string slots_path_for(const std::string& trace_path) {
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return trace_path.substr(0, trace_path.size() - suffix.size()) +
           ".slots.csv";
  }
  return trace_path + ".slots.csv";
}

void warn_dropped(const trace::Tracer& tracer) {
  if (tracer.dropped() == 0) return;
  std::fprintf(stderr,
               "trace: ring overflow dropped %llu oldest of %llu records "
               "(capacity %zu); narrow the category filter to keep more\n",
               static_cast<unsigned long long>(tracer.dropped()),
               static_cast<unsigned long long>(tracer.recorded()),
               tracer.config().capacity);
}

// Writes the Perfetto JSON + slot CSV pair for one finished tracer.
bool export_trace(const trace::Tracer& tracer, const std::string& json_path,
                  std::int64_t pid, const std::string& label) {
  trace::ExportOptions opts;
  opts.pid = pid;
  opts.process_label = label;
  if (!write_file(json_path, trace::to_chrome_json(tracer, opts)) ||
      !write_file(slots_path_for(json_path), trace::to_slot_csv(tracer))) {
    std::fprintf(stderr, "cannot write trace '%s'\n", json_path.c_str());
    return false;
  }
  warn_dropped(tracer);
  return true;
}

// Parses "--chaos on,seed=3,events=20000" style knobs and runs the fuzzer.
// Returns the process exit code: 0 clean, 1 on a reproduced failure (with
// the minimized script on stderr so it can be replayed via --faults).
int run_chaos_cli(const std::string& knobs) {
  chaos::ChaosOptions options;
  std::stringstream ss(knobs);
  std::string knob;
  while (std::getline(ss, knob, ',')) {
    if (knob.empty() || knob == "on") continue;
    const auto eq = knob.find('=');
    const std::string key = knob.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : knob.substr(eq + 1);
    if (key == "seed") {
      options.seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "events") {
      options.event_budget = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "trials") {
      options.max_trials = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "detect_ms") {
      options.detect_ms = std::atoi(val.c_str());
    } else if (key == "inject-bug") {
      options.inject_recover_loss_bug = true;
    } else {
      std::fprintf(stderr, "--chaos: unknown knob '%s'\n", knob.c_str());
      return 1;
    }
  }
  const chaos::ChaosReport report = chaos::run_chaos(options);
  std::printf("%s\n", report.summary().c_str());
  if (report.failure.has_value()) {
    std::fprintf(stderr, "minimized fault script (replay via --faults):\n%s\n",
                 chaos::format_event_script(
                     report.failure->script,
                     SimTime::milliseconds(options.detect_ms))
                     .c_str());
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_arg;
  std::string json_path;
  std::string faults_arg;
  std::string ilp_arg;
  std::string zones_arg;
  std::string admit_arg;
  std::string radio_arg;
  std::string trace_path;
  std::uint32_t trace_cats = 0;
  bool trace_requested = false;
  bool sweep = false;
  bool audit = false;
  bool audit_fail_fast = false;
  std::uint64_t sweep_lo = 0, sweep_hi = 0;
  int jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--audit") {
      audit = true;
      if (i + 1 < argc && std::string(argv[i + 1]) == "fail-fast") {
        audit_fail_fast = true;
        ++i;
      }
    } else if (arg == "--sweep" && i + 1 < argc) {
      if (!parse_sweep(argv[++i], &sweep_lo, &sweep_hi)) {
        std::fprintf(stderr, "bad --sweep range '%s' (want seed=LO..HI)\n",
                     argv[i]);
        return 1;
      }
      sweep = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        return 1;
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--faults" && i + 1 < argc) {
      faults_arg = argv[++i];
    } else if (arg == "--ilp" && i + 1 < argc) {
      ilp_arg = argv[++i];
    } else if (arg == "--zones" && i + 1 < argc) {
      zones_arg = argv[++i];
    } else if (arg == "--admit" && i + 1 < argc) {
      admit_arg = argv[++i];
    } else if (arg == "--radio" && i + 1 < argc) {
      radio_arg = argv[++i];
    } else if (arg == "--chaos" && i + 1 < argc) {
      return run_chaos_cli(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      if (!parse_trace_arg(argv[++i], &trace_path, &trace_cats)) {
        return usage(argv[0]);
      }
      trace_requested = true;
    } else if (arg == "--demo" || (!arg.empty() && arg[0] != '-')) {
      if (!scenario_arg.empty()) {
        std::fprintf(stderr, "unexpected extra argument '%s'\n", arg.c_str());
        return usage(argv[0]);
      }
      scenario_arg = arg;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (scenario_arg.empty()) return usage(argv[0]);

  std::string text;
  if (scenario_arg == "--demo") {
    text = kDemoScenario;
  } else {
    std::ifstream in(scenario_arg);
    if (!in) {
      std::fprintf(stderr, "cannot open scenario file '%s'\n",
                   scenario_arg.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  // --ilp / --admit knobs append scenario lines, so they ride the scenario
  // grammar (and, coming last, override any matching key in the file).
  if (!ilp_arg.empty()) text += "\nilp = " + ilp_arg + "\n";
  if (!zones_arg.empty()) text += "\nzones = " + zones_arg + "\n";
  if (!admit_arg.empty()) text += "\nadmit = " + admit_arg + "\n";
  if (!radio_arg.empty()) text += "\nradio = " + radio_arg + "\n";

  auto scenario = parse_scenario(text);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "scenario error: %s\n", scenario.error().c_str());
    return 1;
  }
  if (audit) {
    scenario->config.audit = true;
    scenario->config.audit_fail_fast = audit_fail_fast;
  }
  if (!faults_arg.empty()) {
    auto fault_plan = faults::parse_fault_plan(faults_arg);
    if (!fault_plan.has_value()) {
      std::fprintf(stderr, "faults error: %s\n", fault_plan.error().c_str());
      return 1;
    }
    scenario->config.faults = std::move(*fault_plan);
  }

  // Tracing is on when --trace was given or the scenario says 'trace ='.
  // Category precedence: --trace suffix, then the scenario key, then all.
  if (trace_cats == 0) trace_cats = scenario->config.trace_categories;
  if (trace_requested || trace_cats != 0) {
    if (trace_cats == 0) trace_cats = trace::kAll;
    if (trace_path.empty()) trace_path = "wimesh_trace.json";
  } else {
    trace_cats = 0;
  }
  trace::TraceConfig trace_config;
  trace_config.categories = trace_cats;
  trace_config.capacity = std::size_t{1} << 18;

  if (scenario->admit_enabled) {
    if (sweep) {
      std::fprintf(stderr, "--sweep does not combine with admit scenarios\n");
      return 1;
    }
    std::unique_ptr<trace::Tracer> tracer;
    if (trace_cats != 0) {
      tracer = std::make_unique<trace::Tracer>(trace_config);
    }
    const trace::Scope trace_scope(tracer.get());
    ScheduleCache cache;
    const batch::AdmitRunResult admit_result =
        batch::run_admission_churn(*scenario, &cache);
    std::fputs(batch::format_admit_report(*scenario, admit_result).c_str(),
               stdout);
    std::printf("%s\n", cache.report().c_str());
    if (tracer) {
      if (!export_trace(*tracer, trace_path,
                        static_cast<std::int64_t>(scenario->admit_churn.seed),
                        "admit")) {
        return 1;
      }
      std::fputs(trace::span_summary(*tracer).c_str(), stdout);
    }
    if (!json_path.empty() &&
        !write_file(json_path, batch::admit_json(*scenario, admit_result))) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    const bool check_failed =
        admit_result.checked &&
        (admit_result.differential.mismatches != 0 ||
         admit_result.differential.consistency_failures != 0);
    return check_failed ? 1 : 0;
  }

  if (sweep) {
    ScheduleCache cache;
    batch::BatchOptions options;
    options.jobs = jobs;
    options.schedule_cache = &cache;
    if (trace_cats != 0) options.trace = trace_config;
    const auto specs = batch::seed_sweep(*scenario, sweep_lo, sweep_hi);
    const auto outcomes = batch::run_batch(specs, options);
    std::fputs(batch::results_table(outcomes).c_str(), stdout);
    std::printf("%s\n", cache.report().c_str());
    if (trace_cats != 0) {
      std::vector<const trace::Tracer*> tracers;
      for (const auto& o : outcomes) {
        if (!o.trace) continue;
        tracers.push_back(o.trace.get());
        if (!export_trace(*o.trace, trace_path_for(trace_path, o.label),
                          static_cast<std::int64_t>(o.run_index), o.label)) {
          return 1;
        }
      }
      std::fputs(trace::span_summary(tracers).c_str(), stdout);
    }
    int failures = 0;
    std::uint64_t violations = 0;
    for (const auto& o : outcomes) {
      failures += o.ok ? 0 : 1;
      if (o.ok) violations += o.result.audit.total_violations();
    }
    if (audit) {
      std::printf("audit: %llu violation(s) across %zu run(s)\n",
                  static_cast<unsigned long long>(violations),
                  outcomes.size());
    }
    if (!json_path.empty() &&
        !write_file(json_path, batch::results_json(outcomes))) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    return failures == 0 && violations == 0 ? 0 : 1;
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (trace_cats != 0) {
    tracer = std::make_unique<trace::Tracer>(trace_config);
  }
  const trace::Scope trace_scope(tracer.get());

  MeshNetwork net(scenario->config);
  for (const FlowSpec& f : scenario->flows) net.add_flow(f);
  const auto plan = net.compute_plan();
  if (!plan.has_value()) {
    std::fprintf(stderr, "admission/planning failed: %s\n",
                 plan.error().c_str());
    return 1;
  }
  std::printf("plan: %d/%d data minislots reserved, guard %s\n",
              (*plan)->guaranteed_slots_used,
              scenario->config.emulation.frame.data_slots,
              net.effective_guard().to_string().c_str());

  const SimulationResult result = net.run(scenario->mac, scenario->duration);
  std::fputs(format_report(*scenario, result).c_str(), stdout);
  if (tracer) {
    if (!export_trace(*tracer, trace_path,
                      static_cast<std::int64_t>(scenario->config.seed),
                      "single")) {
      return 1;
    }
    std::fputs(trace::span_summary(*tracer).c_str(), stdout);
  }
  if (!json_path.empty()) {
    // Single-run JSON: same document shape as a sweep of one, preserving
    // the scenario's literal seed (no stream derivation).
    batch::RunOutcome outcome;
    outcome.run_index = 0;
    outcome.derived_seed = scenario->config.seed;
    outcome.label = "single";
    outcome.ok = true;
    outcome.result = result;
    if (!write_file(json_path, batch::results_json({outcome}))) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
  }
  return result.audit.total_violations() == 0 ? 0 : 1;
}
