// Multi-service community mesh on an irregular (random geometric) layout.
//
// Guaranteed VoIP calls coexist with bulk best-effort transfers: the
// planner reserves delay-bounded slots for voice and hands the leftover
// minislots to the bulk flows. Run under both MACs to see the isolation
// the overlay buys.

#include <cstdio>

#include "wimesh/core/mesh_network.h"

using namespace wimesh;

namespace {

void report(const char* label, const SimulationResult& r) {
  std::printf("\n%s\n", label);
  std::printf("  %-6s %-11s %-9s %-9s %-10s %-11s\n", "flow", "class",
              "loss", "mean_ms", "p99_ms", "tput_kbps");
  for (const FlowResult& f : r.flows) {
    const bool g = f.spec.service == ServiceClass::kGuaranteed;
    const bool has_delays = !f.stats.delays_ms().empty();
    std::printf("  %-6d %-11s %-9.4f %-9.2f %-10.2f %-11.1f\n", f.spec.id,
                g ? "voip" : "best-effort", f.stats.loss_rate(),
                has_delays ? f.stats.delays_ms().mean() : 0.0,
                has_delays ? f.stats.delays_ms().quantile(0.99) : 0.0,
                f.stats.throughput_bps(r.measured_interval) / 1000.0);
  }
}

}  // namespace

int main() {
  Rng topo_rng(2026);
  MeshConfig cfg;
  cfg.topology = make_random_geometric(12, 500.0, 180.0, topo_rng);
  cfg.comm_range = 180.0;
  cfg.interference_range = 360.0;
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(20);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 196;
  cfg.seed = 7;

  MeshNetwork net(cfg);
  net.add_voip_call(0, 1, 0, VoipCodec::g711(), SimTime::milliseconds(120));
  net.add_voip_call(2, 5, 0, VoipCodec::g729(), SimTime::milliseconds(120));
  net.add_voip_call(4, 9, 0, VoipCodec::g729(), SimTime::milliseconds(120));
  // Bulk transfers to/from the gateway.
  net.add_flow(FlowSpec::best_effort(100, 0, 7, 1200, 4e6));
  net.add_flow(FlowSpec::best_effort(101, 11, 0, 1200, 4e6));

  auto plan = net.compute_plan();
  if (!plan.has_value()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.error().c_str());
    return 1;
  }
  std::printf("topology: %d nodes; guaranteed slots %d/%d; guard %s\n",
              cfg.topology.node_count(), (*plan)->guaranteed_slots_used,
              cfg.emulation.frame.data_slots,
              net.effective_guard().to_string().c_str());

  report("TDMA overlay (voice isolated in reserved slots):",
         net.run(MacMode::kTdmaOverlay, SimTime::seconds(10)));
  report("802.11 DCF (voice contends with bulk traffic):",
         net.run(MacMode::kDcf, SimTime::seconds(10)));
  return 0;
}
