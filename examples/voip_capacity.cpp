// VoIP capacity of an emulated 802.16 mesh gateway.
//
// The scenario the paper's introduction motivates: a community mesh where
// every subscriber node carries phone calls to the gateway (node 0).
// Call requests arrive one at a time from nodes in round-robin order; the
// delay-aware ILP admission control accepts calls until the TDMA data
// subframe is exhausted or a delay bound would break. The admitted set is
// then simulated to confirm every accepted call actually meets its QoS.

#include <cstdio>

#include "wimesh/core/mesh_network.h"

using namespace wimesh;

int main() {
  MeshConfig cfg;
  cfg.topology = make_grid(3, 3, 100.0);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(20);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 196;

  MeshNetwork net(cfg);
  const VoipCodec codec = VoipCodec::g729();
  // Offer far more calls than can fit; admission decides.
  int id = 0;
  for (int round = 0; round < 8; ++round) {
    for (NodeId subscriber = 1; subscriber < cfg.topology.node_count();
         ++subscriber) {
      net.add_voip_call(id, subscriber, /*gateway=*/0, codec,
                        SimTime::milliseconds(100));
      id += 2;
    }
  }

  const std::size_t admitted_flows = net.admit_incrementally();
  std::printf("offered %d flows (%d calls), admitted %zu flows (%zu calls)\n",
              id, id / 2, admitted_flows, admitted_flows / 2);
  std::printf("data subframe usage: %d / %d minislots\n",
              net.plan().guaranteed_slots_used,
              cfg.emulation.frame.data_slots);

  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(10));
  int met = 0;
  double worst_p99 = 0.0, worst_loss = 0.0;
  for (const FlowResult& f : r.flows) {
    if (!f.stats.delays_ms().empty()) {
      worst_p99 = std::max(worst_p99, f.stats.delays_ms().quantile(0.99));
    }
    worst_loss = std::max(worst_loss, f.stats.loss_rate());
    met += f.delay_bound_met;
  }
  std::printf("simulated: worst p99 delay %.2f ms, worst loss %.4f, "
              "%d/%zu analytic bounds met\n",
              worst_p99, worst_loss, met, r.flows.size());
  std::printf("overlay blocks skipped because the MAC was busy: %llu\n",
              static_cast<unsigned long long>(r.overlay_busy_at_slot_start));
  return 0;
}
