// Schedule explorer: visualizes what the delay-aware ILP actually decides.
//
// Builds a 6-node chain carrying one VoIP call end-to-end, prints the
// conflict graph, then renders the minislot assignment of each scheduler
// (delay-aware ILP, delay-unaware ILP, greedy, round-robin) as an ASCII
// frame map together with each flow's frame-wrap count and worst-case
// delay. This is the quickest way to *see* the paper's idea: same
// bandwidth, different transmission order, very different delay.

#include <cstdio>
#include <string>

#include "wimesh/qos/planner.h"

using namespace wimesh;

namespace {

void render(const char* label, const MeshPlan& plan,
            const EmulationParams& params) {
  std::printf("\n%s (schedule length %d slots)\n", label,
              plan.guaranteed_slots_used);
  const int width = plan.schedule.used_slots();
  for (LinkId l = 0; l < plan.links.count(); ++l) {
    const auto g = plan.schedule.grant(l);
    if (!g) continue;
    std::string bar(static_cast<std::size_t>(width), '.');
    for (int s = g->start; s < g->end(); ++s) {
      bar[static_cast<std::size_t>(s)] = '#';
    }
    std::printf("  %d->%d  |%s|\n", plan.links.link(l).from,
                plan.links.link(l).to, bar.c_str());
  }
  for (const FlowPlan& f : plan.guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    std::printf("  flow %d: wraps %d, worst-case delay %s (%s)\n", f.spec.id,
                count_frame_wraps(plan.schedule, fp),
                f.worst_case_delay.to_string().c_str(),
                f.delay_bound_met ? "bound met" : "BOUND MISSED");
  }
  (void)params;
}

}  // namespace

int main() {
  EmulationParams params;
  params.frame.frame_duration = SimTime::milliseconds(10);
  params.frame.control_slots = 4;
  params.frame.data_slots = 96;
  params.guard_time = SimTime::microseconds(50);

  const Topology topo = make_chain(6, 100.0);
  const RadioModel radio(110.0, 220.0);
  QosPlanner planner(topo, radio, params, PhyMode::ofdm_802_11a(54));

  const std::vector<FlowSpec> flows{
      FlowSpec::voip(0, 0, 5, VoipCodec::g729(), SimTime::milliseconds(60)),
      FlowSpec::voip(1, 5, 0, VoipCodec::g729(), SimTime::milliseconds(60)),
  };

  // Conflict graph summary.
  {
    auto probe = planner.plan(flows, SchedulerKind::kGreedy);
    if (!probe.has_value()) {
      std::fprintf(stderr, "planning failed: %s\n", probe.error().c_str());
      return 1;
    }
    std::printf("links: %d, conflict edges: %d\n", probe->links.count(),
                probe->conflicts.edge_count());
    for (EdgeId e = 0; e < probe->conflicts.edge_count(); ++e) {
      const Link& a = probe->links.link(probe->conflicts.edge(e).u);
      const Link& b = probe->links.link(probe->conflicts.edge(e).v);
      std::printf("  (%d->%d) x (%d->%d)\n", a.from, a.to, b.from, b.to);
    }
  }

  struct Entry {
    const char* label;
    SchedulerKind kind;
  };
  for (const Entry& entry :
       {Entry{"delay-aware ILP (the paper)", SchedulerKind::kIlpDelayAware},
        Entry{"delay-unaware ILP", SchedulerKind::kIlpDelayUnaware},
        Entry{"greedy first-fit", SchedulerKind::kGreedy},
        Entry{"round-robin", SchedulerKind::kRoundRobin}}) {
    auto plan = planner.plan(flows, entry.kind);
    if (!plan.has_value()) {
      std::printf("\n%s: infeasible (%s)\n", entry.label,
                  plan.error().c_str());
      continue;
    }
    render(entry.label, *plan, params);
  }
  return 0;
}
