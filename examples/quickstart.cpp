// Quickstart: one VoIP call across a 4-node chain mesh.
//
// Builds the topology, admits the call through the delay-aware ILP
// scheduler, runs the packet-level simulation under the paper's
// TDMA-over-WiFi overlay and under plain 802.11 DCF, and prints the
// per-flow QoS both ways.

#include <cstdio>

#include "wimesh/core/mesh_network.h"

using namespace wimesh;

namespace {

void print_flows(const char* label, const SimulationResult& r) {
  std::printf("\n%s\n", label);
  std::printf("  %-6s %-10s %-10s %-10s %-10s %-10s\n", "flow", "sent",
              "delivered", "loss", "mean_ms", "p99_ms");
  for (const FlowResult& f : r.flows) {
    const bool has_delays = !f.stats.delays_ms().empty();
    std::printf("  %-6d %-10llu %-10llu %-10.4f %-10.3f %-10.3f\n",
                f.spec.id,
                static_cast<unsigned long long>(f.stats.sent_packets()),
                static_cast<unsigned long long>(f.stats.delivered_packets()),
                f.stats.loss_rate(),
                has_delays ? f.stats.delays_ms().mean() : 0.0,
                has_delays ? f.stats.delays_ms().quantile(0.99) : 0.0);
  }
}

}  // namespace

int main() {
  MeshConfig cfg;
  cfg.topology = make_chain(4, 100.0);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  cfg.phy = PhyMode::ofdm_802_11a(54);
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(10);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 96;

  MeshNetwork net(cfg);
  net.add_voip_call(/*id_base=*/0, /*a=*/0, /*b=*/3, VoipCodec::g729(),
                    /*max_delay=*/SimTime::milliseconds(100));

  auto plan = net.compute_plan();
  if (!plan.has_value()) {
    std::fprintf(stderr, "admission failed: %s\n", plan.error().c_str());
    return 1;
  }

  std::printf("plan: %d of %d data minislots reserved, guard %s\n",
              (*plan)->guaranteed_slots_used, cfg.emulation.frame.data_slots,
              net.effective_guard().to_string().c_str());
  for (const FlowPlan& f : (*plan)->guaranteed) {
    std::printf("  flow %d: %zu hops, worst-case delay %s (bound %s) %s\n",
                f.spec.id, f.links.size(),
                f.worst_case_delay.to_string().c_str(),
                f.spec.max_delay.to_string().c_str(),
                f.delay_bound_met ? "OK" : "VIOLATED");
  }

  const SimTime duration = SimTime::seconds(10);
  print_flows("TDMA-over-WiFi overlay (the paper's system):",
              net.run(MacMode::kTdmaOverlay, duration));
  print_flows("Plain 802.11 DCF baseline:",
              net.run(MacMode::kDcf, duration));
  return 0;
}
