// Video surveillance mesh: VBR camera streams with rtPS-style average-rate
// reservations, alongside VoIP and background transfers.
//
// Video reserves its MEAN rate; I-frame bursts exceed the per-frame grant
// and ride the queue, so video delay has a tail the reservation does not
// bound — exactly the rtPS trade-off. VoIP keeps its hard bound, and both
// are isolated from the bulk traffic. Compare against DCF, where the same
// mix collapses.

#include <cstdio>

#include "wimesh/core/mesh_network.h"

using namespace wimesh;

namespace {

void report(const char* label, const SimulationResult& r) {
  std::printf("\n%s\n", label);
  std::printf("  %-6s %-8s %-9s %-9s %-10s %-11s\n", "flow", "kind", "loss",
              "mean_ms", "p99_ms", "tput_kbps");
  for (const FlowResult& f : r.flows) {
    const char* kind =
        f.spec.shape == TrafficShape::kVbrVideo
            ? "video"
            : (f.spec.service == ServiceClass::kGuaranteed ? "voip" : "bulk");
    const bool has_delays = !f.stats.delays_ms().empty();
    std::printf("  %-6d %-8s %-9.4f %-9.2f %-10.2f %-11.1f\n", f.spec.id,
                kind, f.stats.loss_rate(),
                has_delays ? f.stats.delays_ms().mean() : 0.0,
                has_delays ? f.stats.delays_ms().quantile(0.99) : 0.0,
                f.stats.throughput_bps(r.measured_interval) / 1000.0);
  }
}

}  // namespace

int main() {
  MeshConfig cfg;
  cfg.topology = make_grid(3, 3, 100.0);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(20);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 196;

  MeshNetwork net(cfg);
  // Two cameras streaming 700 kbit/s to the gateway (node 0).
  net.add_flow(FlowSpec::video(0, 8, 0, 700e3));
  net.add_flow(FlowSpec::video(1, 6, 0, 700e3));
  // One phone call.
  net.add_voip_call(10, 2, 0, VoipCodec::g729(), SimTime::milliseconds(100));
  // Background maintenance transfer.
  net.add_flow(FlowSpec::best_effort(20, 0, 4, 1200, 2e6));

  auto plan = net.compute_plan();
  if (!plan.has_value()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.error().c_str());
    return 1;
  }
  std::printf("reserved %d/%d data minislots for the guaranteed class\n",
              (*plan)->guaranteed_slots_used,
              cfg.emulation.frame.data_slots);

  report("TDMA overlay:", net.run(MacMode::kTdmaOverlay, SimTime::seconds(10)));
  report("802.11 DCF:", net.run(MacMode::kDcf, SimTime::seconds(10)));
  report("802.11e EDCA:", net.run(MacMode::kEdca, SimTime::seconds(10)));
  return 0;
}
