// Parameterized property suite for the LP/ILP stack on randomized
// instances: optimality certificates by cross-checking against exhaustive
// search, feasibility of every returned point, and invariance under model
// transformations that must not change the optimum (row scaling, variable
// order permutation, redundant rows).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/ilp/ilp.h"

namespace wimesh {
namespace {

struct RandomLp {
  LpModel model;
  std::vector<double> feasible_point;  // by construction
};

RandomLp make_random_lp(Rng& rng, int n, int rows) {
  RandomLp out;
  for (int j = 0; j < n; ++j) {
    const double lo = std::floor(rng.uniform(-4.0, 0.0));
    const double up = std::floor(rng.uniform(1.0, 8.0));
    out.model.add_variable(lo, up, std::floor(rng.uniform(-5.0, 6.0)));
    out.feasible_point.push_back(std::floor(rng.uniform(lo, up)));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<LpTerm> terms;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!rng.chance(0.7)) continue;
      const double c = std::floor(rng.uniform(-4.0, 5.0));
      if (c == 0.0) continue;
      terms.push_back({j, c});
      lhs += c * out.feasible_point[static_cast<std::size_t>(j)];
    }
    if (terms.empty()) continue;
    out.model.add_constraint(terms, RowSense::kLessEqual,
                             lhs + std::floor(rng.uniform(0.0, 5.0)));
  }
  return out;
}

class LpRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRandomSweep, OptimalPointIsFeasibleAndBeatsConstruction) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(6));
    const int rows = 1 + static_cast<int>(rng.next_below(10));
    RandomLp lp = make_random_lp(rng, n, rows);
    const LpResult r = solve_lp(lp.model);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_LE(lp.model.max_violation(r.x), 1e-6);
    EXPECT_LE(r.objective, lp.model.objective_value(lp.feasible_point) + 1e-6);
  }
}

TEST_P(LpRandomSweep, RowScalingDoesNotChangeTheOptimum) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));
    RandomLp lp = make_random_lp(rng, n, 6);
    const LpResult base = solve_lp(lp.model);
    ASSERT_EQ(base.status, LpStatus::kOptimal);

    // Rebuild with every row scaled by a positive constant.
    LpModel scaled;
    for (int j = 0; j < lp.model.variable_count(); ++j) {
      scaled.add_variable(lp.model.lower_bound(j), lp.model.upper_bound(j),
                          lp.model.objective_coef(j));
    }
    for (int i = 0; i < lp.model.constraint_count(); ++i) {
      const auto& row = lp.model.row(i);
      const double k = 0.5 + rng.uniform() * 4.0;
      std::vector<LpTerm> terms;
      for (const LpTerm& t : row.terms) terms.push_back({t.var, t.coef * k});
      scaled.add_constraint(terms, row.sense, row.rhs * k);
    }
    const LpResult r = solve_lp(scaled);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, base.objective, 1e-6);
  }
}

TEST_P(LpRandomSweep, RedundantRowsDoNotChangeTheOptimum) {
  Rng rng(GetParam() ^ 0x123456);
  for (int trial = 0; trial < 10; ++trial) {
    RandomLp lp = make_random_lp(rng, 4, 5);
    const LpResult base = solve_lp(lp.model);
    ASSERT_EQ(base.status, LpStatus::kOptimal);
    // Duplicate each row with a slacker rhs — cannot bind.
    LpModel loose = lp.model;
    for (int i = 0; i < lp.model.constraint_count(); ++i) {
      const auto& row = lp.model.row(i);
      loose.add_constraint(row.terms, row.sense, row.rhs + 10.0);
    }
    const LpResult r = solve_lp(loose);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    EXPECT_NEAR(r.objective, base.objective, 1e-6);
  }
}

TEST_P(LpRandomSweep, MaximizeIsNegatedMinimize) {
  Rng rng(GetParam() ^ 0x777);
  for (int trial = 0; trial < 10; ++trial) {
    RandomLp lp = make_random_lp(rng, 4, 5);
    lp.model.set_objective_sense(ObjSense::kMaximize);
    const LpResult maxr = solve_lp(lp.model);
    ASSERT_EQ(maxr.status, LpStatus::kOptimal);

    LpModel negated;
    for (int j = 0; j < lp.model.variable_count(); ++j) {
      negated.add_variable(lp.model.lower_bound(j), lp.model.upper_bound(j),
                           -lp.model.objective_coef(j));
    }
    for (int i = 0; i < lp.model.constraint_count(); ++i) {
      const auto& row = lp.model.row(i);
      negated.add_constraint(row.terms, row.sense, row.rhs);
    }
    const LpResult minr = solve_lp(negated);
    ASSERT_EQ(minr.status, LpStatus::kOptimal);
    EXPECT_NEAR(maxr.objective, -minr.objective, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomSweep,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

class IlpRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpRandomSweep, MatchesExhaustiveSearchOnMixedPrograms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    // Small mixed program: binaries plus one bounded integer.
    const int nb = 5;
    IlpModel m;
    m.set_objective_sense(ObjSense::kMaximize);
    std::vector<double> obj;
    for (int j = 0; j < nb; ++j) {
      obj.push_back(std::floor(rng.uniform(-4.0, 8.0)));
      m.add_binary(obj.back());
    }
    const double int_obj = std::floor(rng.uniform(-2.0, 4.0));
    const VarId z = m.add_integer(0, 3, int_obj, "z");
    std::vector<std::vector<double>> rows;
    std::vector<double> zcoef, rhs;
    const int nrows = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < nrows; ++i) {
      std::vector<LpTerm> terms;
      std::vector<double> crow(nb, 0.0);
      for (int j = 0; j < nb; ++j) {
        const double c = std::floor(rng.uniform(-3.0, 5.0));
        if (c == 0.0) continue;
        crow[static_cast<std::size_t>(j)] = c;
        terms.push_back({j, c});
      }
      const double zc = std::floor(rng.uniform(0.0, 3.0));
      if (zc != 0.0) terms.push_back({z, zc});
      if (terms.empty()) continue;
      const double b = std::floor(rng.uniform(1.0, 10.0));
      m.add_constraint(terms, RowSense::kLessEqual, b);
      rows.push_back(crow);
      zcoef.push_back(zc);
      rhs.push_back(b);
    }

    double best = -1e100;
    for (int mask = 0; mask < (1 << nb); ++mask) {
      for (int zv = 0; zv <= 3; ++zv) {
        bool ok = true;
        for (std::size_t i = 0; i < rows.size() && ok; ++i) {
          double lhs = zcoef[i] * zv;
          for (int j = 0; j < nb; ++j) {
            if (mask & (1 << j)) lhs += rows[i][static_cast<std::size_t>(j)];
          }
          ok = lhs <= rhs[i] + 1e-9;
        }
        if (!ok) continue;
        double val = int_obj * zv;
        for (int j = 0; j < nb; ++j) {
          if (mask & (1 << j)) val += obj[static_cast<std::size_t>(j)];
        }
        best = std::max(best, val);
      }
    }

    const IlpResult r = solve_ilp(m);
    if (best < -1e99) {
      EXPECT_EQ(r.status, IlpStatus::kInfeasible);
      continue;
    }
    ASSERT_EQ(r.status, IlpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(r.objective, best, 1e-6) << "trial " << trial;
    EXPECT_LE(m.lp().max_violation(r.x), 1e-6);
  }
}

TEST_P(IlpRandomSweep, BranchPriorityDoesNotChangeTheOptimum) {
  Rng rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 8; ++trial) {
    IlpModel a;
    a.set_objective_sense(ObjSense::kMaximize);
    std::vector<VarId> vars;
    for (int j = 0; j < 6; ++j) {
      vars.push_back(a.add_binary(std::floor(rng.uniform(-3.0, 6.0))));
    }
    std::vector<LpTerm> terms;
    for (VarId v : vars) {
      terms.push_back({v, std::floor(rng.uniform(1.0, 4.0))});
    }
    a.add_constraint(terms, RowSense::kLessEqual, 7.0);

    IlpModel b = a;
    for (VarId v : vars) b.set_branch_priority(v, rng.uniform(0.0, 10.0));

    const IlpResult ra = solve_ilp(a);
    const IlpResult rb = solve_ilp(b);
    ASSERT_EQ(ra.status, IlpStatus::kOptimal);
    ASSERT_EQ(rb.status, IlpStatus::kOptimal);
    EXPECT_NEAR(ra.objective, rb.objective, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpRandomSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace wimesh
