#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/ilp/ilp.h"

namespace wimesh {
namespace {

TEST(IlpModelTest, TracksIntegerVariables) {
  IlpModel m;
  const VarId c = m.add_continuous(0, 5, 1.0, "c");
  const VarId i = m.add_integer(0, 5, 1.0, "i");
  const VarId b = m.add_binary(0.0, "b");
  EXPECT_FALSE(m.is_integer_var(c));
  EXPECT_TRUE(m.is_integer_var(i));
  EXPECT_TRUE(m.is_integer_var(b));
  EXPECT_EQ(m.integer_vars().size(), 2u);
}

TEST(IlpSolveTest, PureLpPassesThrough) {
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  m.add_continuous(0, 4, 3.0, "x");
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 12.0, 1e-7);
  EXPECT_EQ(r.nodes_explored, 1);
}

TEST(IlpSolveTest, KnapsackSmall) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binaries. LP relax is
  // fractional; ILP optimum is {a,c} = 17 or {b,c} = 20? 4+2=6 → 13+7=20.
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId a = m.add_binary(10.0, "a");
  const VarId b = m.add_binary(13.0, "b");
  const VarId c = m.add_binary(7.0, "c");
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, RowSense::kLessEqual, 6.0);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(c)], 1.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(a)], 0.0, 1e-9);
}

TEST(IlpSolveTest, IntegerRounding) {
  // max x with 2x <= 7, x integer → 3 (LP gives 3.5).
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId x = m.add_integer(0, 100, 1.0, "x");
  m.add_constraint({{x, 2.0}}, RowSense::kLessEqual, 7.0);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.x[0], 3.0);
}

TEST(IlpSolveTest, InfeasibleIntegerProgram) {
  // 2 <= 3x <= 4 has no integer solution (x must be in (0.66, 1.33) … x=1
  // gives 3 which IS in [2,4] — so make it tighter: 4 <= 3x <= 5).
  IlpModel m;
  const VarId x = m.add_integer(0, 10, 1.0, "x");
  m.add_constraint({{x, 3.0}}, RowSense::kGreaterEqual, 4.0);
  m.add_constraint({{x, 3.0}}, RowSense::kLessEqual, 5.0);
  EXPECT_EQ(solve_ilp(m).status, IlpStatus::kInfeasible);
}

TEST(IlpSolveTest, MixedIntegerProblem) {
  // max 2x + y, x integer, y continuous; x + y <= 3.5, x <= 2.2.
  // Optimum: x = 2, y = 1.5 → 5.5.
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId x = m.add_integer(0, 10, 2.0, "x");
  const VarId y = m.add_continuous(0, kLpInfinity, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 3.5);
  m.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 2.2);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.5, 1e-6);
  EXPECT_DOUBLE_EQ(r.x[static_cast<std::size_t>(x)], 2.0);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 1.5, 1e-6);
}

TEST(IlpSolveTest, StopAtFirstFeasibleReturnsQuickly) {
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  std::vector<VarId> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(m.add_binary(1.0));
  std::vector<LpTerm> row;
  for (VarId v : xs) row.push_back({v, 1.0});
  m.add_constraint(row, RowSense::kLessEqual, 5.0);
  IlpOptions opt;
  opt.stop_at_first_feasible = true;
  const IlpResult r = solve_ilp(m, opt);
  ASSERT_TRUE(r.has_solution());
  EXPECT_EQ(r.status, IlpStatus::kFeasible);
  // Any feasible point has at most 5 ones.
  double total = 0.0;
  for (VarId v : xs) total += r.x[static_cast<std::size_t>(v)];
  EXPECT_LE(total, 5.0 + 1e-9);
}

TEST(IlpSolveTest, NodeLimitReportsLimitReached) {
  // A deliberately fractional-everywhere instance with a 1-node budget and
  // no chance to find an incumbent at the root.
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId a = m.add_binary(2.0, "a");
  const VarId b = m.add_binary(2.0, "b");
  m.add_constraint({{a, 2.0}, {b, 2.0}}, RowSense::kLessEqual, 1.0);
  IlpOptions opt;
  opt.max_nodes = 1;
  const IlpResult r = solve_ilp(m, opt);
  EXPECT_EQ(r.status, IlpStatus::kLimitReached);
}

TEST(IlpSolveTest, EqualityWithBinariesSelectsExactCover) {
  // a + b + c = 2 with costs; min cost picks the two cheapest.
  IlpModel m;
  const VarId a = m.add_binary(5.0, "a");
  const VarId b = m.add_binary(1.0, "b");
  const VarId c = m.add_binary(2.0, "c");
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, RowSense::kEqual, 2.0);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.x[static_cast<std::size_t>(a)], 0.0);
}

TEST(IlpSolveTest, ObjectiveGapTolPrunesIntegralObjectives) {
  // With an integral objective, setting gap tol ~1 prunes any node whose
  // bound cannot improve by a whole unit — same optimum, fewer nodes.
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  std::vector<VarId> xs;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(m.add_binary(static_cast<double>(1 + i % 3)));
  }
  std::vector<LpTerm> row;
  for (VarId v : xs) row.push_back({v, 2.0});
  m.add_constraint(row, RowSense::kLessEqual, 9.0);

  const IlpResult base = solve_ilp(m);
  IlpOptions opt;
  opt.objective_gap_tol = 1.0 - 1e-6;
  const IlpResult pruned = solve_ilp(m, opt);
  ASSERT_EQ(base.status, IlpStatus::kOptimal);
  ASSERT_EQ(pruned.status, IlpStatus::kOptimal);
  EXPECT_NEAR(base.objective, pruned.objective, 1e-9);
  EXPECT_LE(pruned.nodes_explored, base.nodes_explored);
}

TEST(IlpSolveTest, DiagnosticsArePopulated) {
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId a = m.add_binary(3.0);
  const VarId b = m.add_binary(2.0);
  m.add_constraint({{a, 2.0}, {b, 2.0}}, RowSense::kLessEqual, 3.0);
  const IlpResult r = solve_ilp(m);
  ASSERT_EQ(r.status, IlpStatus::kOptimal);
  EXPECT_GE(r.nodes_explored, 1);
  EXPECT_GT(r.lp_iterations, 0);
}

// Brute-force cross-check on random small binary programs: branch & bound
// must match exhaustive enumeration exactly (objective), and its point must
// be feasible.
TEST(IlpSolveTest, MatchesBruteForceOnRandomBinaryPrograms) {
  Rng rng(999);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 6;
    IlpModel m;
    m.set_objective_sense(ObjSense::kMaximize);
    std::vector<double> obj;
    for (int j = 0; j < n; ++j) {
      obj.push_back(std::floor(rng.uniform(-5.0, 10.0)));
      m.add_binary(obj.back());
    }
    const int rows = 1 + static_cast<int>(rng.next_below(4));
    std::vector<std::vector<double>> coefs;
    std::vector<double> rhs;
    for (int i = 0; i < rows; ++i) {
      std::vector<LpTerm> terms;
      std::vector<double> crow(static_cast<std::size_t>(n), 0.0);
      for (int j = 0; j < n; ++j) {
        const double c = std::floor(rng.uniform(-3.0, 6.0));
        if (c == 0.0) continue;
        crow[static_cast<std::size_t>(j)] = c;
        terms.push_back({j, c});
      }
      const double b = std::floor(rng.uniform(0.0, 8.0));
      if (terms.empty()) continue;
      m.add_constraint(terms, RowSense::kLessEqual, b);
      coefs.push_back(crow);
      rhs.push_back(b);
    }

    // Exhaustive enumeration.
    double best = -1e100;
    bool any_feasible = false;
    for (int mask = 0; mask < (1 << n); ++mask) {
      bool ok = true;
      for (std::size_t i = 0; i < coefs.size() && ok; ++i) {
        double lhs = 0.0;
        for (int j = 0; j < n; ++j) {
          if (mask & (1 << j)) lhs += coefs[i][static_cast<std::size_t>(j)];
        }
        ok = lhs <= rhs[i] + 1e-9;
      }
      if (!ok) continue;
      any_feasible = true;
      double val = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1 << j)) val += obj[static_cast<std::size_t>(j)];
      }
      best = std::max(best, val);
    }

    const IlpResult r = solve_ilp(m);
    if (!any_feasible) {
      EXPECT_EQ(r.status, IlpStatus::kInfeasible) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(r.status, IlpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(r.objective, best, 1e-6) << "trial " << trial;
    EXPECT_LE(m.lp().max_violation(r.x), 1e-6) << "trial " << trial;
    for (VarId v : m.integer_vars()) {
      const double val = r.x[static_cast<std::size_t>(v)];
      EXPECT_DOUBLE_EQ(val, std::round(val)) << "trial " << trial;
    }
  }
}

// ------------------------------------------------- dual bound & gap report

TEST(IlpSolveTest, GapIsInfiniteWithoutIncumbent) {
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId a = m.add_binary(2.0, "a");
  const VarId b = m.add_binary(2.0, "b");
  m.add_constraint({{a, 2.0}, {b, 2.0}}, RowSense::kLessEqual, 1.0);
  IlpOptions opt;
  opt.max_nodes = 1;
  const IlpResult r = solve_ilp(m, opt);
  ASSERT_EQ(r.status, IlpStatus::kLimitReached);
  EXPECT_TRUE(std::isinf(r.gap()));
}

TEST(IlpSolveTest, BestBoundBracketsOptimumUnderNodeLimits) {
  // A knapsack whose search tree is nontrivial. The full solve fixes the
  // true optimum; every limited solve must report an incumbent no better
  // than it and a dual bound no worse than it, with a nonnegative gap.
  Rng rng(99);
  IlpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  std::vector<VarId> xs;
  std::vector<LpTerm> row;
  for (int i = 0; i < 12; ++i) {
    const VarId v = m.add_binary(std::floor(rng.uniform(3.0, 20.0)));
    xs.push_back(v);
    row.push_back({v, std::floor(rng.uniform(2.0, 9.0))});
  }
  double cap = 0.0;
  for (const LpTerm& t : row) cap += t.coef;
  m.add_constraint(row, RowSense::kLessEqual, std::floor(cap / 2.0));

  const IlpResult full = solve_ilp(m);
  ASSERT_EQ(full.status, IlpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(full.gap(), 0.0);
  EXPECT_DOUBLE_EQ(full.best_bound, full.objective);

  for (long budget : {2L, 4L, 8L, 16L, 64L}) {
    IlpOptions opt;
    opt.max_nodes = budget;
    const IlpResult r = solve_ilp(m, opt);
    EXPECT_GE(r.best_bound, full.objective - 1e-6) << "budget " << budget;
    if (!r.has_solution()) continue;
    EXPECT_LE(r.objective, full.objective + 1e-6) << "budget " << budget;
    EXPECT_GE(r.gap(), 0.0) << "budget " << budget;
    if (r.status == IlpStatus::kOptimal) {
      EXPECT_DOUBLE_EQ(r.gap(), 0.0) << "budget " << budget;
    }
  }
}

// -------------------------------------------------- portfolio determinism

TEST(IlpSolveTest, PortfolioDeterministicAcrossThreads) {
  // The portfolio synchronizes strategies at round barriers and selects the
  // returned incumbent deterministically, so `threads` must be a pure
  // wall-clock knob: identical status, objective, point and node count for
  // any thread count.
  for (unsigned trial = 0; trial < 5; ++trial) {
    Rng rng(500 + trial);
    IlpModel m;
    m.set_objective_sense(ObjSense::kMaximize);
    const int n = 10;
    std::vector<VarId> xs;
    for (int j = 0; j < n; ++j) {
      xs.push_back(m.add_binary(std::floor(rng.uniform(1.0, 12.0))));
    }
    for (int i = 0; i < 4; ++i) {
      std::vector<LpTerm> terms;
      double cap = 0.0;
      for (VarId v : xs) {
        if (!rng.chance(0.6)) continue;
        const double c = std::floor(rng.uniform(1.0, 6.0));
        terms.push_back({v, c});
        cap += c;
      }
      if (terms.empty()) continue;
      m.add_constraint(terms, RowSense::kLessEqual, std::floor(cap / 2.0));
    }

    std::vector<IlpResult> runs;
    for (int threads : {1, 4, 8}) {
      IlpOptions opt;
      opt.portfolio = 4;
      opt.threads = threads;
      runs.push_back(solve_ilp(m, opt));
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].status, runs[0].status) << "trial " << trial;
      EXPECT_EQ(runs[i].objective, runs[0].objective) << "trial " << trial;
      EXPECT_EQ(runs[i].x, runs[0].x) << "trial " << trial;
      EXPECT_EQ(runs[i].nodes_explored, runs[0].nodes_explored)
          << "trial " << trial;
      EXPECT_EQ(runs[i].winning_strategy, runs[0].winning_strategy)
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace wimesh
