#include <gtest/gtest.h>

#include "wimesh/wimax/mesh_frame.h"

namespace wimesh {
namespace {

TEST(LinkSetTest, AddDeduplicates) {
  LinkSet ls;
  const LinkId a = ls.add({0, 1});
  const LinkId b = ls.add({1, 0});  // reverse direction is a distinct link
  const LinkId c = ls.add({0, 1});  // duplicate
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(ls.count(), 2);
}

TEST(LinkSetTest, FindMissingReturnsInvalid) {
  LinkSet ls;
  ls.add({0, 1});
  EXPECT_EQ(ls.find({2, 3}), kInvalidLink);
  EXPECT_FALSE(ls.contains({2, 3}));
  EXPECT_TRUE(ls.contains({0, 1}));
}

TEST(FrameConfigTest, SlotArithmetic) {
  FrameConfig f;
  f.frame_duration = SimTime::milliseconds(10);
  f.control_slots = 4;
  f.data_slots = 96;
  EXPECT_EQ(f.total_slots(), 100);
  EXPECT_EQ(f.slot_duration(), SimTime::microseconds(100));
  EXPECT_EQ(f.data_slot_offset(0), SimTime::microseconds(400));
  EXPECT_EQ(f.data_slot_offset(95), SimTime::microseconds(9900));
}

TEST(FrameConfigTest, FrameIndexing) {
  FrameConfig f;
  f.frame_duration = SimTime::milliseconds(10);
  EXPECT_EQ(f.frame_index(SimTime::zero()), 0);
  EXPECT_EQ(f.frame_index(SimTime::milliseconds(9)), 0);
  EXPECT_EQ(f.frame_index(SimTime::milliseconds(10)), 1);
  EXPECT_EQ(f.frame_index(SimTime::milliseconds(25)), 2);
  EXPECT_EQ(f.frame_start(3), SimTime::milliseconds(30));
}

TEST(SlotRangeTest, OverlapCases) {
  const SlotRange a{0, 4};   // [0,4)
  const SlotRange b{4, 4};   // [4,8) — adjacent, no overlap
  const SlotRange c{3, 2};   // [3,5)
  const SlotRange empty{2, 0};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
  EXPECT_FALSE(a.overlaps(empty));
  EXPECT_EQ(a.end(), 4);
}

TEST(MeshScheduleTest, GrantBookkeeping) {
  LinkSet ls;
  const LinkId l0 = ls.add({0, 1});
  const LinkId l1 = ls.add({1, 2});
  MeshSchedule s(ls, 32);
  EXPECT_FALSE(s.grant(l0).has_value());
  s.set_grant(l0, SlotRange{0, 8});
  s.set_grant(l1, SlotRange{8, 4});
  ASSERT_TRUE(s.grant(l0).has_value());
  EXPECT_EQ(s.grant(l0)->length, 8);
  EXPECT_EQ(s.used_slots(), 12);
  EXPECT_EQ(s.granted_slots(), 12);
  EXPECT_EQ(s.frame_slots(), 32);
}

TEST(MeshScheduleTest, UsedSlotsTracksHighestEnd) {
  LinkSet ls;
  const LinkId l0 = ls.add({0, 1});
  const LinkId l1 = ls.add({2, 3});
  MeshSchedule s(ls, 64);
  s.set_grant(l1, SlotRange{50, 10});
  s.set_grant(l0, SlotRange{0, 5});
  EXPECT_EQ(s.used_slots(), 60);
  EXPECT_EQ(s.granted_slots(), 15);
}

}  // namespace
}  // namespace wimesh
