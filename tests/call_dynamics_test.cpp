// Call-level admission dynamics tests: conservation, determinism, and the
// Erlang-shaped response to offered load.

#include <gtest/gtest.h>

#include "wimesh/qos/call_dynamics.h"

namespace wimesh {
namespace {

EmulationParams default_params() {
  EmulationParams p;
  p.frame.frame_duration = SimTime::milliseconds(10);
  p.frame.control_slots = 4;
  p.frame.data_slots = 96;
  p.guard_time = SimTime::microseconds(50);
  return p;
}

CallDynamicsConfig base_config(const Topology& topo) {
  CallDynamicsConfig cfg;
  cfg.endpoints.clear();
  for (NodeId n = 1; n < topo.node_count(); ++n) {
    cfg.endpoints.push_back({n, 0});
  }
  cfg.horizon = SimTime::seconds(600);
  cfg.arrival_rate_per_s = 0.05;
  cfg.mean_holding_s = 60.0;
  return cfg;
}

TEST(CallDynamicsTest, CountsAreConserved) {
  const Topology topo = make_chain(4, 100.0);
  const auto cfg = base_config(topo);
  const auto r = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                        default_params(),
                                        PhyMode::ofdm_802_11a(54), cfg);
  EXPECT_EQ(r.offered, r.admitted + r.blocked);
  EXPECT_EQ(r.plans_attempted, r.offered);
  EXPECT_GT(r.offered, 0);
  EXPECT_GE(r.peak_carried_calls, 1);
  EXPECT_GE(r.mean_carried_calls, 0.0);
  EXPECT_LE(r.mean_carried_calls, r.peak_carried_calls);
}

TEST(CallDynamicsTest, LightLoadIsNeverBlocked) {
  const Topology topo = make_chain(4, 100.0);
  auto cfg = base_config(topo);
  cfg.arrival_rate_per_s = 0.01;  // 0.6 Erlangs on a ~17-call chain
  cfg.mean_holding_s = 60.0;
  const auto r = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                        default_params(),
                                        PhyMode::ofdm_802_11a(54), cfg);
  EXPECT_GT(r.offered, 0);
  EXPECT_EQ(r.blocked, 0);
  EXPECT_DOUBLE_EQ(r.blocking_probability(), 0.0);
}

TEST(CallDynamicsTest, OverloadBlocksAndCarriedLoadSaturates) {
  const Topology topo = make_chain(4, 100.0);
  auto cfg = base_config(topo);
  cfg.arrival_rate_per_s = 1.0;  // 60 Erlangs offered — far beyond capacity
  cfg.mean_holding_s = 60.0;
  cfg.horizon = SimTime::seconds(200);
  const auto r = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                        default_params(),
                                        PhyMode::ofdm_802_11a(54), cfg);
  EXPECT_GT(r.blocking_probability(), 0.4);
  // The carried load saturates near capacity: ~17 three-hop G.729 calls on
  // this chain, more when short calls slip in (mixed endpoint draws).
  EXPECT_GE(r.peak_carried_calls, 10);
  EXPECT_LE(r.peak_carried_calls, 40);
}

TEST(CallDynamicsTest, BlockingIsMonotoneInOfferedLoad) {
  const Topology topo = make_chain(4, 100.0);
  double prev = -1.0;
  for (double rate : {0.05, 0.3, 1.5}) {
    auto cfg = base_config(topo);
    cfg.arrival_rate_per_s = rate;
    cfg.horizon = SimTime::seconds(400);
    const auto r = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                          default_params(),
                                          PhyMode::ofdm_802_11a(54), cfg);
    EXPECT_GE(r.blocking_probability(), prev - 0.05)
        << "rate " << rate;  // allow small statistical wiggle
    prev = r.blocking_probability();
  }
  EXPECT_GT(prev, 0.2);  // the heaviest load must visibly block
}

TEST(CallDynamicsTest, DeterministicPerSeed) {
  const Topology topo = make_chain(4, 100.0);
  auto cfg = base_config(topo);
  cfg.arrival_rate_per_s = 0.5;
  cfg.horizon = SimTime::seconds(200);
  const auto a = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                        default_params(),
                                        PhyMode::ofdm_802_11a(54), cfg);
  const auto b = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                        default_params(),
                                        PhyMode::ofdm_802_11a(54), cfg);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  cfg.seed = 2;
  const auto c = simulate_call_dynamics(topo, RadioModel(110.0, 220.0),
                                        default_params(),
                                        PhyMode::ofdm_802_11a(54), cfg);
  EXPECT_NE(a.offered, c.offered);
}

}  // namespace
}  // namespace wimesh
