// Tests for the 802.16 mesh extensions: distributed election scheduling
// and MSH-DSCH control-message encoding.

#include <gtest/gtest.h>

#include "wimesh/common/rng.h"
#include "wimesh/graph/topology.h"
#include "wimesh/phy/radio_model.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/sched/scheduler.h"
#include "wimesh/wimax/control_messages.h"
#include "wimesh/wimax/distributed_scheduler.h"
#include "wimesh/wimax/election.h"

namespace wimesh {
namespace {

// ---------------------------------------------------------------- election

TEST(MeshElectionHashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(mesh_election_hash(3, 7, 1), mesh_election_hash(3, 7, 1));
  EXPECT_NE(mesh_election_hash(3, 7, 1), mesh_election_hash(3, 7, 2));
  EXPECT_NE(mesh_election_hash(3, 7, 1), mesh_election_hash(4, 7, 1));
  EXPECT_NE(mesh_election_hash(3, 7, 1), mesh_election_hash(3, 8, 1));
}

TEST(MeshElectionHashTest, WinnerVariesAcrossSlots) {
  // The point of the election: no competitor wins every slot.
  int wins_a = 0;
  for (std::uint32_t slot = 0; slot < 64; ++slot) {
    if (mesh_election_hash(1, slot, 0) > mesh_election_hash(2, slot, 0)) {
      ++wins_a;
    }
  }
  EXPECT_GT(wins_a, 16);
  EXPECT_LT(wins_a, 48);
}

struct ElectionFixture {
  LinkSet links;
  std::vector<int> demand;
  Graph conflicts;

  explicit ElectionFixture(NodeId chain_n, int per_link) {
    const Topology topo = make_chain(chain_n, 100.0);
    const RadioModel radio(110.0, 220.0);
    for (NodeId i = 0; i + 1 < chain_n; ++i) {
      links.add({i, i + 1});
      links.add({i + 1, i});
    }
    demand.assign(static_cast<std::size_t>(links.count()), per_link);
    conflicts = build_conflict_graph(links, topo.positions, radio);
  }
};

TEST(ElectionSchedulerTest, ConflictFreeAndDemandMetWithAmpleSlots) {
  ElectionFixture fx(5, 2);
  const auto s = schedule_by_election(fx.links, fx.demand, fx.conflicts, 96);
  EXPECT_TRUE(election_conflict_free(s, fx.conflicts));
  EXPECT_EQ(s.total_unmet(), 0);
  for (LinkId l = 0; l < fx.links.count(); ++l) {
    EXPECT_EQ(s.granted_slots(l), 2) << "link " << l;
  }
}

TEST(ElectionSchedulerTest, ReportsUnmetDemandWhenFrameTooSmall) {
  ElectionFixture fx(4, 4);
  // All six links mutually conflict on a 4-chain: need 24 slots, give 10.
  const auto s = schedule_by_election(fx.links, fx.demand, fx.conflicts, 10);
  EXPECT_TRUE(election_conflict_free(s, fx.conflicts));
  EXPECT_GT(s.total_unmet(), 0);
  int granted = 0;
  for (LinkId l = 0; l < fx.links.count(); ++l) granted += s.granted_slots(l);
  EXPECT_EQ(granted + s.total_unmet(), 24);
}

TEST(ElectionSchedulerTest, DeterministicPerSeedAndDifferentAcrossSeeds) {
  ElectionFixture fx(5, 2);
  const auto a = schedule_by_election(fx.links, fx.demand, fx.conflicts, 96, 1);
  const auto b = schedule_by_election(fx.links, fx.demand, fx.conflicts, 96, 1);
  const auto c = schedule_by_election(fx.links, fx.demand, fx.conflicts, 96, 2);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_NE(a.grants, c.grants);
}

TEST(ElectionSchedulerTest, NeverBeatsTheCentralizedOptimum) {
  // The election's span is at least the ILP minimum (it cannot do better
  // than optimal) — and in practice worse: that gap is the value of
  // centralized scheduling (ablation R-A2).
  for (NodeId n : {4, 5, 6}) {
    ElectionFixture fx(n, 2);
    SchedulingProblem p;
    p.links = fx.links;
    p.demand = fx.demand;
    p.conflicts = fx.conflicts;
    const auto ilp = min_slots_search(p, 96);
    ASSERT_TRUE(ilp.has_value());
    const auto el = schedule_by_election(fx.links, fx.demand, fx.conflicts, 96);
    ASSERT_EQ(el.total_unmet(), 0);
    EXPECT_GE(el.used_slots(), ilp->frame_slots) << "chain-" << n;
  }
}

TEST(ElectionSchedulerTest, CoalescesContiguousWins) {
  LinkSet ls;
  ls.add({0, 1});
  Graph conflicts(1);
  const auto s = schedule_by_election(ls, {5}, conflicts, 96);
  // A lone link wins every slot: one coalesced block of 5.
  ASSERT_EQ(s.grants[0].size(), 1u);
  EXPECT_EQ(s.grants[0][0], (SlotRange{0, 5}));
}

// ------------------------------------------- distributed 3-way handshake

TEST(DistributedSchedulerTest, ConvergesConflictFreeOnChains) {
  for (NodeId n : {4, 6, 8}) {
    ElectionFixture fx(n, 2);
    const auto r =
        run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96);
    EXPECT_TRUE(r.converged) << "chain-" << n;
    EXPECT_TRUE(distributed_schedule_conflict_free(r, fx.conflicts));
    for (LinkId l = 0; l < fx.links.count(); ++l) {
      EXPECT_EQ(r.grants[static_cast<std::size_t>(l)].length, 2);
    }
    EXPECT_GE(r.rounds, 1);
    EXPECT_GE(r.handshakes, fx.links.count());
  }
}

TEST(DistributedSchedulerTest, RejectionsHappenAndAreRetried) {
  // Mutually-conflicting links all request the same first-fit range in
  // round one; only the election winner confirms, the rest are rejected
  // and succeed in later rounds.
  ElectionFixture fx(4, 3);  // 6 links, full clique on a 4-chain
  const auto r =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.rejections, 0);
  EXPECT_GT(r.rounds, 1);
  EXPECT_EQ(r.handshakes, fx.links.count() + r.rejections);
}

TEST(DistributedSchedulerTest, ReportsNonConvergenceWhenFrameTooSmall) {
  ElectionFixture fx(4, 4);  // needs 24 slots in a clique
  const auto r =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 10);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(distributed_schedule_conflict_free(r, fx.conflicts));
  int unmet = 0;
  for (int u : r.unmet) unmet += u;
  EXPECT_GT(unmet, 0);
}

TEST(DistributedSchedulerTest, MatchesCentralizedSlotUsageOnCliques) {
  // On a clique every schedule is a permutation: the handshake must land
  // on the same span the centralized optimum uses.
  ElectionFixture fx(4, 2);
  SchedulingProblem p;
  p.links = fx.links;
  p.demand = fx.demand;
  p.conflicts = fx.conflicts;
  const auto central = min_slots_search(p, 96);
  ASSERT_TRUE(central.has_value());
  const auto dist =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96);
  ASSERT_TRUE(dist.converged);
  EXPECT_EQ(dist.used_slots(), central->frame_slots);
}

TEST(DistributedSchedulerTest, DeterministicPerSeed) {
  ElectionFixture fx(6, 2);
  DistributedSchedulerConfig cfg;
  const auto a =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  const auto b =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.rounds, b.rounds);
  cfg.election_seed = 77;
  const auto c =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  EXPECT_TRUE(c.converged);
}

// ------------------------------------- handshake hardening (fault paths)

TEST(DistributedSchedulerTest, AttemptCapBoundsHandshakesUnderTotalLoss) {
  // With every control message lost, persistent retry means a link would
  // burn one handshake every round until max_rounds. The per-link give-up
  // cap is what bounds the work and terminates the run early.
  ElectionFixture fx(4, 2);
  DistributedSchedulerConfig cfg;
  cfg.control_loss_rate = 1.0;
  cfg.max_rounds = 50;

  const auto uncapped =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  EXPECT_FALSE(uncapped.converged);
  EXPECT_EQ(uncapped.rounds, cfg.max_rounds + 1);  // ran the cap dry
  EXPECT_EQ(uncapped.handshakes, cfg.max_rounds * fx.links.count());
  EXPECT_EQ(uncapped.messages_lost, uncapped.handshakes);
  EXPECT_TRUE(uncapped.abandoned.empty());

  cfg.max_link_attempts = 3;
  const auto capped =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  EXPECT_FALSE(capped.converged);
  EXPECT_EQ(capped.handshakes, 3 * fx.links.count());
  EXPECT_LT(capped.rounds, 10);  // terminated as soon as everyone gave up
  ASSERT_EQ(capped.abandoned.size(),
            static_cast<std::size_t>(fx.links.count()));
  for (LinkId l = 0; l < fx.links.count(); ++l) {
    EXPECT_EQ(capped.abandoned[static_cast<std::size_t>(l)], l);  // sorted
    EXPECT_GT(capped.unmet[static_cast<std::size_t>(l)], 0);
  }
}

TEST(DistributedSchedulerTest, BackoffSpacesRetriesExponentially) {
  // A lone link, every handshake lost: attempts land at rounds 1, 3, 6, 11
  // (waits of 1, 2, 4 rounds), then the 4th failure abandons the link.
  LinkSet ls;
  ls.add({0, 1});
  Graph conflicts(1);
  DistributedSchedulerConfig cfg;
  cfg.control_loss_rate = 1.0;
  cfg.backoff_base_rounds = 1;
  cfg.max_link_attempts = 4;
  const auto r = run_distributed_scheduling(ls, {2}, conflicts, 96, cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.handshakes, 4);
  EXPECT_EQ(r.messages_lost, 4);
  EXPECT_GE(r.rounds, 11);  // backoff stretched 4 attempts over 11+ rounds
  EXPECT_LT(r.rounds, 20);
  ASSERT_EQ(r.abandoned.size(), 1u);
  EXPECT_EQ(r.abandoned[0], 0);
}

TEST(DistributedSchedulerTest, ConvergesUnderModerateControlLoss) {
  ElectionFixture fx(5, 2);
  DistributedSchedulerConfig cfg;
  cfg.control_loss_rate = 0.3;
  cfg.backoff_base_rounds = 1;
  const auto r =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(distributed_schedule_conflict_free(r, fx.conflicts));
  EXPECT_GT(r.messages_lost, 0);
  EXPECT_TRUE(r.abandoned.empty());
  // Deterministic: the loss stream comes from loss_seed, nothing else.
  const auto again =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 96, cfg);
  EXPECT_EQ(r.grants, again.grants);
  EXPECT_EQ(r.messages_lost, again.messages_lost);
}

TEST(DistributedSchedulerTest, DefaultConfigNeverAbandons) {
  // Legacy semantics: with hardening off, a too-small frame still ends via
  // the stall exit with no link marked abandoned and no losses.
  ElectionFixture fx(4, 4);
  const auto r =
      run_distributed_scheduling(fx.links, fx.demand, fx.conflicts, 10);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.abandoned.empty());
  EXPECT_EQ(r.messages_lost, 0);
}

// ---------------------------------------------------- control messages

TEST(ControlMessagesTest, EncodedSizeArithmetic) {
  MshDschMessage msg;
  msg.grants.resize(3);
  EXPECT_EQ(encoded_size(msg), kMshDschHeaderBytes + 3 * kGrantIeBytes);
}

TEST(ControlMessagesTest, RoundTripsExactly) {
  MshDschMessage msg;
  msg.frame_sequence = 0xdeadbeef;
  msg.grants = {GrantIe{7, 0, 12}, GrantIe{300, 200, 255}, GrantIe{0, 1, 1}};
  const auto bytes = encode(msg);
  EXPECT_EQ(bytes.size(), encoded_size(msg));
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ControlMessagesTest, DecodeRejectsTruncation) {
  MshDschMessage msg;
  msg.grants = {GrantIe{1, 2, 3}};
  auto bytes = encode(msg);
  bytes.pop_back();
  EXPECT_FALSE(decode(bytes).has_value());
  EXPECT_FALSE(decode({1, 2, 3}).has_value());  // shorter than the header
}

TEST(ControlMessagesTest, DecodeRejectsCountMismatch) {
  MshDschMessage msg;
  msg.grants = {GrantIe{1, 2, 3}};
  auto bytes = encode(msg);
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(ControlMessagesTest, BuildFromScheduleCoversAllGrants) {
  LinkSet ls;
  const LinkId a = ls.add({0, 1});
  const LinkId b = ls.add({1, 2});
  MeshSchedule s(ls, 64);
  s.set_grant(a, SlotRange{0, 4});
  s.set_grant(b, SlotRange{4, 2});
  s.add_extra_grant(a, SlotRange{10, 3});
  const auto msg = build_schedule_message(s, 42);
  EXPECT_EQ(msg.frame_sequence, 42u);
  ASSERT_EQ(msg.grants.size(), 3u);
  // Round trip preserves everything.
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(ControlMessagesTest, ControlSubframeCapacityIsSane) {
  FrameConfig frame;
  frame.frame_duration = SimTime::milliseconds(10);
  frame.control_slots = 4;
  frame.data_slots = 96;
  const PhyMode phy = PhyMode::ofdm_802_11a(6);  // control at base rate
  const std::size_t cap = control_subframe_capacity_bytes(frame, phy);
  // 4 slots of 100us = 400us at 6 Mbps ≈ 300 B minus preamble/DIFS.
  EXPECT_GT(cap, 100u);
  EXPECT_LT(cap, 300u);
  // Capacity grows with the subframe.
  frame.control_slots = 8;
  EXPECT_GT(control_subframe_capacity_bytes(frame, phy), cap);
}

TEST(ControlMessagesTest, TypicalScheduleFitsTheControlSubframe) {
  FrameConfig frame;
  frame.frame_duration = SimTime::milliseconds(10);
  frame.control_slots = 4;
  frame.data_slots = 96;
  LinkSet ls;
  MeshSchedule s(ls, 96);
  // Empty schedule always fits.
  EXPECT_TRUE(
      schedule_fits_control_subframe(s, frame, PhyMode::ofdm_802_11a(6)));
}

}  // namespace
}  // namespace wimesh
