#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "wimesh/graph/graph.h"
#include "wimesh/graph/shortest_path.h"
#include "wimesh/graph/topology.h"

namespace wimesh {
namespace {

// ------------------------------------------------------------------ Graph

TEST(GraphTest, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3);
  const EdgeId e = g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_EQ(g.edge(e).u, 0);
  EXPECT_EQ(g.edge(e).v, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphTest, OtherEndAndNeighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  auto nbrs = g.neighbors(0);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(g.other_end(g.find_edge(0, 2), 2), 0);
}

TEST(GraphTest, FindEdgeReturnsInvalidWhenMissing) {
  Graph g(2);
  EXPECT_EQ(g.find_edge(0, 1), kInvalidEdge);
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  g.add_edge(1, 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(GraphTest, SingleNodeIsConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(GraphTest, BfsHops) {
  const Topology t = make_chain(5);
  const auto hops = bfs_hops(t.graph, 0);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(hops[static_cast<std::size_t>(i)], i);
}

TEST(GraphTest, BfsHopsUnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[2], -1);
}

// ---------------------------------------------------------------- Digraph

TEST(DigraphTest, ArcsAreDirected) {
  Digraph g(3);
  g.add_arc(0, 1, 2.0);
  EXPECT_EQ(g.arc_count(), 1);
  EXPECT_EQ(g.out_arcs(0).size(), 1u);
  EXPECT_TRUE(g.out_arcs(1).empty());
}

TEST(DigraphTest, ParallelArcsAllowed) {
  Digraph g(2);
  g.add_arc(0, 1, 1.0);
  g.add_arc(0, 1, 5.0);
  EXPECT_EQ(g.arc_count(), 2);
}

// --------------------------------------------------------------- Dijkstra

TEST(DijkstraTest, FindsShortestPathInWeightedDigraph) {
  Digraph g(5);
  g.add_arc(0, 1, 1.0);
  g.add_arc(1, 2, 1.0);
  g.add_arc(0, 2, 5.0);
  g.add_arc(2, 3, 1.0);
  g.add_arc(0, 4, 10.0);
  const auto t = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(t.dist[2], 2.0);
  EXPECT_DOUBLE_EQ(t.dist[3], 3.0);
  EXPECT_DOUBLE_EQ(t.dist[4], 10.0);
  EXPECT_EQ(t.path_to(g, 3), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(DijkstraTest, UnreachableNode) {
  Digraph g(3);
  g.add_arc(0, 1, 1.0);
  const auto t = dijkstra(g, 0);
  EXPECT_FALSE(t.reachable(2));
  EXPECT_TRUE(t.path_to(g, 2).empty());
}

// ------------------------------------------------------------ BellmanFord

TEST(BellmanFordTest, MatchesDijkstraOnNonNegativeWeights) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 8;
    Digraph g(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (u != v && rng.chance(0.4)) g.add_arc(u, v, rng.uniform(0.0, 10.0));
      }
    }
    const auto d = dijkstra(g, 0);
    const auto b = bellman_ford(g, 0);
    ASSERT_FALSE(b.has_negative_cycle);
    for (NodeId v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (d.dist[sv] == std::numeric_limits<double>::infinity()) {
        EXPECT_FALSE(b.tree.reachable(v));
      } else {
        EXPECT_NEAR(d.dist[sv], b.tree.dist[sv], 1e-9);
      }
    }
  }
}

TEST(BellmanFordTest, HandlesNegativeWeights) {
  Digraph g(4);
  g.add_arc(0, 1, 4.0);
  g.add_arc(0, 2, 2.0);
  g.add_arc(2, 1, -3.0);
  g.add_arc(1, 3, 1.0);
  const auto r = bellman_ford(g, 0);
  ASSERT_FALSE(r.has_negative_cycle);
  EXPECT_DOUBLE_EQ(r.tree.dist[1], -1.0);
  EXPECT_DOUBLE_EQ(r.tree.dist[3], 0.0);
}

TEST(BellmanFordTest, DetectsNegativeCycleAndReturnsWitness) {
  Digraph g(4);
  g.add_arc(0, 1, 1.0);
  g.add_arc(1, 2, -2.0);
  g.add_arc(2, 1, 1.0);  // cycle 1->2->1 has weight -1
  g.add_arc(2, 3, 1.0);
  const auto r = bellman_ford(g, 0);
  ASSERT_TRUE(r.has_negative_cycle);
  ASSERT_FALSE(r.negative_cycle.empty());
  // The witness must be a closed walk with negative total weight.
  double total = 0.0;
  for (std::size_t i = 0; i < r.negative_cycle.size(); ++i) {
    const auto& arc = g.arc(r.negative_cycle[i]);
    total += arc.weight;
    const auto& next =
        g.arc(r.negative_cycle[(i + 1) % r.negative_cycle.size()]);
    EXPECT_EQ(arc.to, next.from);
  }
  EXPECT_LT(total, 0.0);
}

TEST(BellmanFordTest, NegativeCycleNotReachableIsIgnored) {
  Digraph g(4);
  g.add_arc(0, 1, 1.0);
  g.add_arc(2, 3, -5.0);
  g.add_arc(3, 2, 1.0);  // negative cycle, but not reachable from 0
  const auto r = bellman_ford(g, 0);
  EXPECT_FALSE(r.has_negative_cycle);
  EXPECT_DOUBLE_EQ(r.tree.dist[1], 1.0);
}

// ---------------------------------------------- difference constraints

TEST(DifferenceConstraintsTest, FeasibleSystemSatisfiesAllInequalities) {
  // x1 - x0 <= 3, x2 - x1 <= -2, x2 - x0 <= 0
  Digraph g(3);
  g.add_arc(0, 1, 3.0);
  g.add_arc(1, 2, -2.0);
  g.add_arc(0, 2, 0.0);
  const auto x = solve_difference_constraints(g);
  ASSERT_TRUE(x.has_value());
  EXPECT_LE((*x)[1] - (*x)[0], 3.0 + 1e-9);
  EXPECT_LE((*x)[2] - (*x)[1], -2.0 + 1e-9);
  EXPECT_LE((*x)[2] - (*x)[0], 0.0 + 1e-9);
}

TEST(DifferenceConstraintsTest, InfeasibleSystemReturnsNullopt) {
  // x1 - x0 <= -1 and x0 - x1 <= -1 cannot both hold.
  Digraph g(2);
  g.add_arc(0, 1, -1.0);
  g.add_arc(1, 0, -1.0);
  EXPECT_FALSE(solve_difference_constraints(g).has_value());
}

TEST(DifferenceConstraintsTest, RandomFeasibleSystems) {
  // Build systems from a known feasible point; the solver must find *some*
  // feasible point (not necessarily the same one).
  Rng rng(77);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId n = 10;
    std::vector<double> ref(static_cast<std::size_t>(n));
    for (auto& v : ref) v = std::floor(rng.uniform(-20.0, 20.0));
    Digraph g(n);
    for (int k = 0; k < 40; ++k) {
      const NodeId a = static_cast<NodeId>(rng.next_below(10));
      const NodeId b = static_cast<NodeId>(rng.next_below(10));
      if (a == b) continue;
      const double slack = std::floor(rng.uniform(0.0, 5.0));
      g.add_arc(a, b,
                ref[static_cast<std::size_t>(b)] -
                    ref[static_cast<std::size_t>(a)] + slack);
    }
    const auto x = solve_difference_constraints(g);
    ASSERT_TRUE(x.has_value());
    for (const auto& arc : g.arcs()) {
      EXPECT_LE((*x)[static_cast<std::size_t>(arc.to)] -
                    (*x)[static_cast<std::size_t>(arc.from)],
                arc.weight + 1e-9);
    }
  }
}

// --------------------------------------------------------------- Topology

TEST(TopologyTest, ChainShape) {
  const Topology t = make_chain(6, 50.0);
  EXPECT_EQ(t.node_count(), 6);
  EXPECT_EQ(t.graph.edge_count(), 5);
  EXPECT_TRUE(is_connected(t.graph));
  EXPECT_DOUBLE_EQ(distance(t.positions[0], t.positions[1]), 50.0);
}

TEST(TopologyTest, RingShape) {
  const Topology t = make_ring(8);
  EXPECT_EQ(t.graph.edge_count(), 8);
  EXPECT_TRUE(t.graph.has_edge(7, 0));
  for (NodeId i = 0; i < 8; ++i) EXPECT_EQ(t.graph.degree(i), 2);
}

TEST(TopologyTest, GridShape) {
  const Topology t = make_grid(3, 4);
  EXPECT_EQ(t.node_count(), 12);
  // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8 = 17.
  EXPECT_EQ(t.graph.edge_count(), 17);
  EXPECT_TRUE(is_connected(t.graph));
  // Corner degree 2, center degree 4.
  EXPECT_EQ(t.graph.degree(0), 2);
  EXPECT_EQ(t.graph.degree(5), 4);  // row 1, col 1
}

TEST(TopologyTest, RandomGeometricIsConnectedAndRespectsRange) {
  Rng rng(2024);
  const Topology t = make_random_geometric(20, 500.0, 180.0, rng);
  EXPECT_EQ(t.node_count(), 20);
  EXPECT_TRUE(is_connected(t.graph));
  for (EdgeId e = 0; e < t.graph.edge_count(); ++e) {
    const auto& ed = t.graph.edge(e);
    EXPECT_LE(distance(t.positions[static_cast<std::size_t>(ed.u)],
                       t.positions[static_cast<std::size_t>(ed.v)]),
              180.0);
  }
}

TEST(TopologyTest, TreeShape) {
  const Topology t = make_tree(2, 3);
  // 1 + 2 + 4 + 8 = 15 nodes, 14 edges.
  EXPECT_EQ(t.node_count(), 15);
  EXPECT_EQ(t.graph.edge_count(), 14);
  EXPECT_TRUE(is_connected(t.graph));
  EXPECT_EQ(t.graph.degree(0), 2);
}

TEST(TopologyTest, SpanningTreeParents) {
  const Topology t = make_grid(3, 3);
  const auto parent = spanning_tree_parents(t.graph, 0);
  EXPECT_EQ(parent[0], kInvalidNode);
  int roots = 0;
  for (NodeId v = 0; v < t.node_count(); ++v) {
    if (parent[static_cast<std::size_t>(v)] == kInvalidNode) {
      ++roots;
    } else {
      EXPECT_TRUE(t.graph.has_edge(v, parent[static_cast<std::size_t>(v)]));
    }
  }
  EXPECT_EQ(roots, 1);
}

// try_make_grid must reject bad dimensions as typed errors — including
// node counts whose rows * cols product would overflow a plain int before
// widening (the historical bug: `resize(rows * cols)` multiplied 32-bit
// ints and resized to a garbage count instead of failing).
TEST(TopologyTest, TryMakeGridRejectsBadDimensions) {
  EXPECT_FALSE(try_make_grid(0, 5).has_value());
  EXPECT_FALSE(try_make_grid(5, 0).has_value());
  EXPECT_FALSE(try_make_grid(-3, 4).has_value());
  const auto r = try_make_grid(0, 4);
  ASSERT_FALSE(r.has_value());
  EXPECT_NE(r.error().find(">= 1"), std::string::npos);
}

TEST(TopologyTest, TryMakeGridRejectsNodeCountBeyondNodeIdRange) {
  // 70000 * 70000 = 4.9e9 overflows int32 to a small positive number; the
  // 64-bit validation must catch it instead.
  const auto huge = try_make_grid(70'000, 70'000);
  ASSERT_FALSE(huge.has_value());
  EXPECT_NE(huge.error().find("NodeId range"), std::string::npos);
  // A single dimension beyond the range fails even when the other is 1.
  EXPECT_FALSE(try_make_grid(3'000'000'000LL, 1).has_value());
  // 2^31 - 1 rows of one node is within the NodeId range *numerically*,
  // but 46341 * 46341 just exceeds it.
  EXPECT_FALSE(try_make_grid(46'341, 46'341).has_value());
}

TEST(TopologyTest, TryMakeGridMatchesMakeGrid) {
  const auto r = try_make_grid(3, 4, 120.0);
  ASSERT_TRUE(r.has_value()) << r.error();
  const Topology direct = make_grid(3, 4, 120.0);
  EXPECT_EQ(r->graph.node_count(), direct.graph.node_count());
  EXPECT_EQ(r->graph.edge_count(), direct.graph.edge_count());
  for (NodeId v = 0; v < direct.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(r->positions[static_cast<std::size_t>(v)].x,
                     direct.positions[static_cast<std::size_t>(v)].x);
    EXPECT_DOUBLE_EQ(r->positions[static_cast<std::size_t>(v)].y,
                     direct.positions[static_cast<std::size_t>(v)].y);
  }
}

}  // namespace
}  // namespace wimesh
