// wimesh::admit tests: the online engine's decision-equivalence contract
// against the cold full re-solve oracle (differential replay over several
// topologies and seeds), the departure/consistency properties, schedule
// safety of every hot-swapped deployment, thread-count determinism, and an
// Erlang-B M/M/C/C cross-check of the measured blocking probability.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "wimesh/admit/engine.h"
#include "wimesh/sched/conflict_graph.h"

namespace wimesh::admit {
namespace {

EmulationParams canonical_params() {
  EmulationParams params;
  params.frame.frame_duration = SimTime::milliseconds(10);
  params.frame.control_slots = 4;
  params.frame.data_slots = 96;
  params.guard_time = SimTime::microseconds(50);
  return params;
}

RadioModel radio() { return RadioModel(110.0, 220.0); }
PhyMode phy() { return PhyMode::ofdm_802_11a(54); }

EngineConfig engine_config() {
  EngineConfig ec;
  ec.scheduler = SchedulerKind::kIlpDelayAware;
  return ec;
}

ChurnSpec churn_spec(double rate, std::uint64_t events, std::uint64_t seed) {
  ChurnSpec spec;
  spec.arrival_rate_per_s = rate;
  spec.mean_holding_s = 30.0;
  spec.horizon_s = 1e7;
  spec.max_events = events;
  spec.seed = seed;
  return spec;
}

// ------------------------------------------------- differential vs oracle

// Every incremental decision must match a cold full re-solve of the same
// flow set, across topology shapes and seeds; >= 1000 randomized events in
// total, zero mismatches, zero per-event invariant violations.
TEST(AdmitDifferentialTest, MatchesColdOracleAcrossTopologiesAndSeeds) {
  struct Case {
    const char* tag;
    Topology topo;
    double rate;
  };
  std::vector<Case> cases;
  cases.push_back({"chain-5", make_chain(5, 100.0), 3.0});
  cases.push_back({"grid-3x3", make_grid(3, 3, 100.0), 4.0});
  cases.push_back({"tree-2x3", make_tree(2, 3, 100.0), 4.0});

  std::uint64_t total_events = 0;
  for (const Case& c : cases) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const DifferentialReport d =
          differential_replay(c.topo, radio(), canonical_params(), phy(),
                              engine_config(), churn_spec(c.rate, 200, seed));
      total_events += d.events;
      EXPECT_GT(d.decisions, 0u) << c.tag << " seed " << seed;
      EXPECT_EQ(d.mismatches, 0u)
          << c.tag << " seed " << seed << ": " << d.first_mismatch;
      EXPECT_EQ(d.consistency_failures, 0u) << c.tag << " seed " << seed;
    }
  }
  EXPECT_GE(total_events, 1000u);
}

// The degrade path must not change any admit/reject verdict — degraded
// arrivals are rejected-by-the-solver arrivals served as best effort.
TEST(AdmitDifferentialTest, DegradeModeStillMatchesOracle) {
  EngineConfig ec = engine_config();
  ec.degrade_on_reject = true;
  const DifferentialReport d =
      differential_replay(make_grid(3, 3, 100.0), radio(), canonical_params(),
                          phy(), ec, churn_spec(6.0, 300, 11));
  EXPECT_GT(d.decisions, 0u);
  EXPECT_EQ(d.mismatches, 0u) << d.first_mismatch;
  EXPECT_EQ(d.consistency_failures, 0u);
  EXPECT_GT(d.churn.stats.degraded, 0u);
}

// ----------------------------------------------------- departure properties

// Admission is monotone under departure: releasing a call can only free
// capacity, so a clone of a call the engine was already carrying must be
// admitted again after any one call departs. The engine must also stay
// live-consistent through every lazy (uncompacted) departure.
TEST(AdmitPropertyTest, AdmissionIsMonotoneUnderDeparture) {
  const Topology topo = make_chain(4, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  const VoipCodec codec = VoipCodec::g729();

  // Fill to capacity with identical gateway calls.
  std::vector<int> admitted;
  int next_id = 0;
  for (int i = 0; i < 200; ++i) {
    const FlowSpec f = FlowSpec::voip(next_id, 3, 0, codec);
    const Decision d = engine.offer(f, SimTime::seconds(i));
    if (d.outcome != Outcome::kAdmitted) break;
    admitted.push_back(next_id);
    ++next_id;
  }
  ASSERT_GE(admitted.size(), 2u) << "mesh should carry at least two calls";
  ASSERT_TRUE(engine.live_consistent());

  // Each release must keep the engine consistent (grants may linger — lazy
  // compaction — but every surviving flow stays covered)...
  for (std::size_t k = 0; k < admitted.size() / 2; ++k) {
    ASSERT_TRUE(engine.release(admitted[k], SimTime::seconds(300 + (int)k)));
    EXPECT_TRUE(engine.live_consistent()) << "after release " << k;
    // ...and an identical replacement call must be admitted again.
    const FlowSpec clone = FlowSpec::voip(1000 + (int)k, 3, 0, codec);
    const Decision d = engine.offer(clone, SimTime::seconds(400 + (int)k));
    EXPECT_EQ(d.outcome, Outcome::kAdmitted)
        << "replacement after departure " << k << " rejected: " << d.reason;
    ASSERT_TRUE(engine.release(1000 + (int)k, SimTime::seconds(500 + (int)k)));
  }
}

TEST(AdmitPropertyTest, ReleaseOfUnknownFlowIsRejected) {
  const Topology topo = make_chain(3, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  EXPECT_FALSE(engine.release(42, SimTime::seconds(1)));
  EXPECT_TRUE(engine.live_consistent());
}

// Forced compaction after lazy departures shrinks the incumbent back to
// the survivors and stays consistent.
TEST(AdmitPropertyTest, CompactionReclaimsDepartedGrants) {
  EngineConfig ec = engine_config();
  ec.compaction_departures = 1000;  // keep departures lazy until compact()
  const Topology topo = make_chain(4, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(), ec);
  const VoipCodec codec = VoipCodec::g729();
  std::vector<int> ids;
  for (int i = 0; i < 6; ++i) {
    const Decision d =
        engine.offer(FlowSpec::voip(i, 3, 0, codec), SimTime::seconds(i));
    if (d.outcome == Outcome::kAdmitted) ids.push_back(i);
  }
  ASSERT_GE(ids.size(), 2u);
  const int slots_full = engine.schedule().used_slots();
  for (std::size_t k = 0; k + 1 < ids.size(); ++k) {
    ASSERT_TRUE(engine.release(ids[k], SimTime::seconds(100 + (int)k)));
  }
  ASSERT_TRUE(engine.compact(SimTime::seconds(200)));
  EXPECT_TRUE(engine.live_consistent());
  EXPECT_LT(engine.schedule().used_slots(), slots_full);
  EXPECT_EQ(engine.active().size(), 1u);
}

// ------------------------------------------------------ deployment safety

// Every hot-swapped deployment must be conflict-free: no two grants of
// mutually interfering links may overlap in slot space. This is exactly
// the invariant the runtime conflict monitor audits.
TEST(AdmitPropertyTest, DeployedSchedulesAreConflictFree) {
  const Topology topo = make_grid(3, 3, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  std::uint64_t deployments = 0;
  std::uint64_t last_generation = 0;
  engine.set_deploy_callback([&](const Deployment& d) {
    ++deployments;
    EXPECT_GT(d.generation, last_generation) << "generations must increase";
    last_generation = d.generation;
    const Graph conflicts =
        build_conflict_graph(d.links, topo.positions, radio());
    for (LinkId l = 0; l < d.links.count(); ++l) {
      for (LinkId m = l + 1; m < d.links.count(); ++m) {
        if (!conflicts.has_edge(l, m)) continue;
        for (const SlotRange& a : d.schedule.all_grants(l)) {
          for (const SlotRange& b : d.schedule.all_grants(m)) {
            EXPECT_FALSE(a.overlaps(b))
                << "conflicting links " << l << " and " << m
                << " overlap in deployment generation " << d.generation;
          }
        }
      }
    }
  });
  replay_poisson_churn(engine, churn_spec(4.0, 300, 3));
  EXPECT_GT(deployments, 0u);
  EXPECT_EQ(deployments, engine.stats().hot_swaps);
}

// --------------------------------------------------- determinism properties

std::vector<int> decision_trace(int threads, int portfolio) {
  EngineConfig ec = engine_config();
  ec.ilp.threads = threads;
  ec.ilp.portfolio = portfolio;
  const Topology topo = make_grid(3, 3, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(), ec);
  std::vector<int> outcomes;
  ChurnObserver obs;
  obs.on_arrival = [&](SimTime, const FlowSpec&, const Decision& d) {
    outcomes.push_back(static_cast<int>(d.outcome) * 10 +
                       static_cast<int>(d.path));
  };
  replay_poisson_churn(engine, churn_spec(5.0, 250, 5), &obs);
  return outcomes;
}

// ILP worker threads and portfolio width are pure wall-clock knobs: the
// decision sequence (outcome AND pipeline stage) must be bit-identical.
TEST(AdmitPropertyTest, DecisionsIdenticalForAnyThreadCount) {
  const std::vector<int> base = decision_trace(1, 1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, decision_trace(2, 1));
  EXPECT_EQ(base, decision_trace(4, 2));
}

// Replaying the same spec twice is bit-identical end to end.
TEST(AdmitPropertyTest, ReplayIsDeterministic) {
  const std::vector<int> a = decision_trace(1, 1);
  const std::vector<int> b = decision_trace(1, 1);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------- Erlang-B cross-check

// Erlang-B blocking probability B(C, a) via the standard recurrence.
double erlang_b(int c, double a) {
  double b = 1.0;
  for (int n = 1; n <= c; ++n) b = a * b / (static_cast<double>(n) + a * b);
  return b;
}

// On a single gateway pair the engine is exactly an M/M/C/C loss system:
// calls are identical, so admission is "fewer than C active". The measured
// blocking probability must match the Erlang-B formula at the offered
// load, and the capacity C itself is a pinned golden (a schedule-packing
// regression if it moves).
TEST(AdmitErlangTest, BlockingMatchesErlangB) {
  const Topology topo = make_chain(2, 100.0);
  AdmissionEngine probe(topo, radio(), canonical_params(), phy(),
                        engine_config());
  // Deterministic fill to find C.
  int capacity = 0;
  for (int i = 0; i < 200; ++i) {
    const Decision d = probe.offer(
        FlowSpec::voip(i, 1, 0, VoipCodec::g729()), SimTime::seconds(i));
    if (d.outcome != Outcome::kAdmitted) break;
    ++capacity;
  }
  ASSERT_GT(capacity, 1);
  // Pinned golden: one-hop G.729 calls share minislots (per-link demand
  // aggregates packet busy time before rounding up to whole slots), so a
  // 96-minislot data subframe carries 73 calls, not 96/2. A change here is
  // a schedule-packing regression.
  EXPECT_EQ(capacity, 73);

  // Offer a = C Erlangs of load (the knee), long replay, single pair.
  ChurnSpec spec;
  spec.endpoints = {{1, 0}};
  spec.mean_holding_s = 10.0;
  spec.arrival_rate_per_s = static_cast<double>(capacity) / spec.mean_holding_s;
  spec.horizon_s = 1e7;
  spec.max_events = 6000;
  spec.seed = 9;
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  const ChurnResult r = replay_poisson_churn(engine, spec);
  ASSERT_GT(r.arrivals, 2000u);

  const double analytic = erlang_b(capacity, static_cast<double>(capacity));
  const double measured = r.stats.blocking_probability();
  EXPECT_NEAR(measured, analytic, 0.05)
      << "C=" << capacity << " a=" << capacity << " analytic=" << analytic;
  // The carried load must sit below C and near a(1 - B).
  EXPECT_LE(r.peak_carried, capacity);
  const double carried_expected =
      static_cast<double>(capacity) * (1.0 - analytic);
  EXPECT_NEAR(r.mean_carried, carried_expected, 0.15 * carried_expected);
}

// ------------------------------------------------------------ stats basics

TEST(AdmitStatsTest, CountersAddUp) {
  const Topology topo = make_grid(3, 3, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  ChurnSpec spec = churn_spec(5.0, 400, 2);
  spec.best_effort_fraction = 0.3;
  const ChurnResult r = replay_poisson_churn(engine, spec);
  const EngineStats& s = r.stats;
  EXPECT_EQ(r.events, r.arrivals + r.departures);
  EXPECT_EQ(s.offered, r.arrivals);
  EXPECT_EQ(s.admitted + s.degraded + s.rejected, s.offered);
  EXPECT_EQ(s.guaranteed_offered + s.best_effort_fast, s.offered);
  EXPECT_EQ(s.decision_latency_ns.count(), s.offered);
  EXPECT_GT(s.best_effort_fast, 0u);
  EXPECT_EQ(s.released, r.departures);
}

// ------------------------------------------------------- topology epochs

TEST(AdmitEpochTest, TypedLivenessRejectsAndEviction) {
  const Topology topo = make_chain(4, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  const VoipCodec codec = VoipCodec::g729();

  // Baseline: a healthy mesh admits end-to-end with no typed reason.
  const Decision d0 = engine.offer(FlowSpec::voip(1, 0, 3, codec),
                                   SimTime::zero());
  ASSERT_NE(d0.outcome, Outcome::kRejected);
  EXPECT_EQ(d0.reject, RejectReason::kNone);

  // Epoch 1: node 3 crashes. The booked flow to it is evicted and new
  // offers touching it fast-reject as endpoint_down.
  std::vector<char> alive{1, 1, 1, 0};
  const std::vector<int> evicted =
      engine.set_topology_epoch(alive, SimTime::seconds(1));
  EXPECT_EQ(evicted, (std::vector<int>{1}));
  EXPECT_TRUE(engine.live_consistent());
  const Decision dead = engine.offer(FlowSpec::voip(2, 0, 3, codec),
                                     SimTime::seconds(2));
  EXPECT_EQ(dead.outcome, Outcome::kRejected);
  EXPECT_EQ(dead.reject, RejectReason::kEndpointDown);

  // Epoch 2: everyone is back up but the 1-2 link is cut, splitting
  // {0,1} from {2,3}: cross-cut offers type as no_route, same-island
  // offers still admit.
  alive = {1, 1, 1, 1};
  engine.set_topology_epoch(alive, SimTime::seconds(3), {{1, 2}});
  const Decision cut = engine.offer(FlowSpec::voip(3, 0, 3, codec),
                                    SimTime::seconds(4));
  EXPECT_EQ(cut.outcome, Outcome::kRejected);
  EXPECT_EQ(cut.reject, RejectReason::kNoRoute);
  const Decision intra = engine.offer(FlowSpec::voip(4, 2, 3, codec),
                                      SimTime::seconds(5));
  EXPECT_NE(intra.outcome, Outcome::kRejected);
  EXPECT_EQ(intra.reject, RejectReason::kNone);

  // Epoch 3: the link heals; the previously unroutable pair admits again.
  engine.set_topology_epoch(alive, SimTime::seconds(6));
  const Decision healed = engine.offer(FlowSpec::voip(5, 0, 3, codec),
                                       SimTime::seconds(7));
  EXPECT_NE(healed.outcome, Outcome::kRejected);
  EXPECT_TRUE(engine.live_consistent());

  const EngineStats& s = engine.stats();
  EXPECT_EQ(s.epoch_updates, 3u);
  EXPECT_EQ(s.epoch_evictions, 1u);
  EXPECT_EQ(s.rejected_endpoint_down, 1u);
  EXPECT_EQ(s.rejected_no_route, 1u);
  // Liveness rejects still count against the offered-load denominator.
  EXPECT_EQ(s.guaranteed_offered, 5u);
}

TEST(AdmitEpochTest, RejectReasonNamesAreStable) {
  EXPECT_STREQ(reject_reason_name(RejectReason::kNone), "none");
  EXPECT_STREQ(reject_reason_name(RejectReason::kInfeasible), "infeasible");
  EXPECT_STREQ(reject_reason_name(RejectReason::kEndpointDown),
               "endpoint_down");
  EXPECT_STREQ(reject_reason_name(RejectReason::kNoRoute), "no_route");
}

TEST(AdmitEpochTest, FaultFreePathIsUntouchedUntilFirstEpoch) {
  // Until set_topology_epoch is called the engine must behave exactly as
  // before: no epoch counters, no liveness gating.
  const Topology topo = make_chain(4, 100.0);
  AdmissionEngine engine(topo, radio(), canonical_params(), phy(),
                         engine_config());
  const ChurnResult r = replay_poisson_churn(engine, churn_spec(4.0, 200, 3));
  EXPECT_EQ(r.stats.epoch_updates, 0u);
  EXPECT_EQ(r.stats.epoch_evictions, 0u);
  EXPECT_EQ(r.stats.rejected_endpoint_down, 0u);
  EXPECT_EQ(r.stats.rejected_no_route, 0u);
  EXPECT_EQ(r.stats.rejected_infeasible, r.stats.rejected);
}

}  // namespace
}  // namespace wimesh::admit
