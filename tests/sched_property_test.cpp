// Parameterized property suite for the scheduling stack: every scheduler,
// on every topology family, across demand scales and delay budgets, must
// produce schedules that are conflict-free, demand-exact, frame-bounded
// and (for the delay-aware ILP) within the wrap budget. These sweeps are
// the safety net under the ILP/heuristic fast paths — a bug in any of the
// pieces shows up here as an invariant violation, not a subtle bias.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wimesh/common/rng.h"
#include "wimesh/graph/topology.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/sched/scheduler.h"

namespace wimesh {
namespace {

enum class TopoFamily { kChain, kRing, kGrid, kRandom, kTree };

std::string family_name(TopoFamily f) {
  switch (f) {
    case TopoFamily::kChain: return "chain";
    case TopoFamily::kRing: return "ring";
    case TopoFamily::kGrid: return "grid";
    case TopoFamily::kRandom: return "random";
    case TopoFamily::kTree: return "tree";
  }
  return "?";
}

Topology make_family(TopoFamily f, Rng& rng) {
  switch (f) {
    case TopoFamily::kChain: return make_chain(6, 100.0);
    case TopoFamily::kRing: return make_ring(8, 160.0);
    case TopoFamily::kGrid: return make_grid(3, 3, 100.0);
    case TopoFamily::kRandom:
      return make_random_geometric(10, 450.0, 170.0, rng);
    case TopoFamily::kTree: return make_tree(2, 3, 100.0);
  }
  return make_chain(3, 100.0);
}

double family_range(TopoFamily f) {
  switch (f) {
    case TopoFamily::kRing: return 130.0;   // ring edge length at r=160
    case TopoFamily::kRandom: return 170.0;
    default: return 110.0;
  }
}

// (family, slots per hop, delay budget frames, seed)
using Params = std::tuple<TopoFamily, int, int, std::uint64_t>;

class SchedulerSweep : public ::testing::TestWithParam<Params> {
 protected:
  // Builds a problem with 2 random-endpoint flows routed over BFS paths.
  SchedulingProblem build() {
    const auto [family, slots, budget, seed] = GetParam();
    Rng rng(seed);
    Rng topo_rng = rng.split();
    const Topology topo = make_family(family, topo_rng);
    const double range = family_range(family);
    const RadioModel radio(range, range * 2);

    SchedulingProblem p;
    const NodeId n = topo.node_count();
    for (int f = 0; f < 2; ++f) {
      const NodeId src = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      NodeId dst = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (dst == src) dst = (dst + 1) % n;
      const auto parents = spanning_tree_parents(topo.graph, src);
      std::vector<NodeId> path{dst};
      while (path.back() != src) {
        path.push_back(parents[static_cast<std::size_t>(path.back())]);
      }
      std::reverse(path.begin(), path.end());
      FlowPath flow;
      flow.delay_budget_frames = budget;
      for (std::size_t i = 1; i < path.size(); ++i) {
        const LinkId l = p.links.add({path[i - 1], path[i]});
        if (static_cast<std::size_t>(l) >= p.demand.size()) {
          p.demand.resize(static_cast<std::size_t>(l) + 1, 0);
        }
        p.demand[static_cast<std::size_t>(l)] += slots;
        flow.links.push_back(l);
      }
      p.flows.push_back(std::move(flow));
    }
    p.demand.resize(static_cast<std::size_t>(p.links.count()), 0);
    p.conflicts = build_conflict_graph(p.links, topo.positions, radio);
    return p;
  }

  static constexpr int kFrameSlots = 160;
};

TEST_P(SchedulerSweep, GreedyInvariants) {
  const SchedulingProblem p = build();
  const auto r = schedule_greedy(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_LE(r->schedule.used_slots(), kFrameSlots);
  EXPECT_GE(r->schedule.used_slots(),
            schedule_length_lower_bound(p.links, p.demand));
}

TEST_P(SchedulerSweep, RoundRobinInvariants) {
  const SchedulingProblem p = build();
  const auto r = schedule_round_robin(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_schedule(p, r->schedule));
}

TEST_P(SchedulerSweep, FlowOrderGreedyInvariantsAndZeroWrapsWhenMonotone) {
  const SchedulingProblem p = build();
  const auto r = schedule_flow_order_greedy(p, kFrameSlots);
  if (!r.has_value()) return;  // dense instances may not fit monotone
  EXPECT_TRUE(validate_schedule(p, r->schedule));
}

TEST_P(SchedulerSweep, IlpMeetsEveryInvariantAndBudget) {
  const SchedulingProblem p = build();
  const auto r = min_slots_search(p, kFrameSlots);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(validate_schedule(p, r->result.schedule));
  EXPECT_GE(r->frame_slots,
            schedule_length_lower_bound(p.links, p.demand, p.conflicts));
  for (const FlowPath& f : p.flows) {
    EXPECT_LE(count_frame_wraps(r->result.schedule, f),
              f.delay_budget_frames);
  }
}

TEST_P(SchedulerSweep, OrderRoundTripPreservesValidity) {
  const SchedulingProblem p = build();
  const auto r = schedule_greedy(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  const TransmissionOrder order = order_from_schedule(p, r->schedule);
  const auto rebuilt = order_to_schedule(p, order, kFrameSlots);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(validate_schedule(p, *rebuilt));
  // Bellman–Ford compacts: never longer than the source schedule.
  EXPECT_LE(rebuilt->used_slots(), r->schedule.used_slots());
  // Wrap counts cannot increase for any flow: the rebuilt schedule honors
  // the same pairwise order, and compaction only moves blocks earlier.
  for (const FlowPath& f : p.flows) {
    EXPECT_LE(count_frame_wraps(*rebuilt, f),
              count_frame_wraps(r->schedule, f));
  }
}

TEST_P(SchedulerSweep, OrderRoundTripPreservesWrapCountsExactly) {
  // Stronger than OrderRoundTripPreservesValidity: consecutive hops of a
  // flow share a node, so their links conflict and their relative order is
  // part of order_from_schedule's output. A hop wraps iff the outbound
  // block precedes the inbound one, and order_to_schedule enforces exactly
  // those precedences — so the rebuilt schedule must reproduce every
  // flow's wrap count EXACTLY, for every scheduler's output. The batch
  // runner's cached order→schedule replays depend on this.
  const SchedulingProblem p = build();
  const auto check = [&](const MeshSchedule& s) {
    const TransmissionOrder order = order_from_schedule(p, s);
    const auto rebuilt = order_to_schedule(p, order, kFrameSlots);
    ASSERT_TRUE(rebuilt.has_value());
    EXPECT_TRUE(validate_schedule(p, *rebuilt));
    for (const FlowPath& f : p.flows) {
      EXPECT_EQ(count_frame_wraps(*rebuilt, f), count_frame_wraps(s, f));
    }
  };
  const auto greedy = schedule_greedy(p, kFrameSlots);
  ASSERT_TRUE(greedy.has_value());
  check(greedy->schedule);
  const auto rr = schedule_round_robin(p, kFrameSlots);
  ASSERT_TRUE(rr.has_value());
  check(rr->schedule);
  const auto ilp = min_slots_search(p, kFrameSlots);
  ASSERT_TRUE(ilp.has_value()) << ilp.error();
  check(ilp->result.schedule);
}

TEST_P(SchedulerSweep, DelayMetricIsConsistentWithWraps) {
  const SchedulingProblem p = build();
  const auto r = min_slots_search(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  const int total_slots = kFrameSlots + 8;
  for (const FlowPath& f : p.flows) {
    const int wraps = count_frame_wraps(r->result.schedule, f);
    const int delay =
        worst_case_delay_slots(r->result.schedule, f, total_slots);
    // delay >= initial frame + per-hop blocks; delay <= (wraps+2) frames.
    EXPECT_GE(delay, total_slots);
    EXPECT_LE(delay, (wraps + 2) * total_slots);
  }
}

std::string sweep_name(const ::testing::TestParamInfo<Params>& info) {
  const TopoFamily family = std::get<0>(info.param);
  const int slots = std::get<1>(info.param);
  const int budget = std::get<2>(info.param);
  const std::uint64_t seed = std::get<3>(info.param);
  return family_name(family) + "_s" + std::to_string(slots) + "_b" +
         std::to_string(budget) + "_r" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SchedulerSweep,
    ::testing::Combine(
        ::testing::Values(TopoFamily::kChain, TopoFamily::kRing,
                          TopoFamily::kGrid, TopoFamily::kRandom,
                          TopoFamily::kTree),
        ::testing::Values(1, 3),            // slots per hop
        ::testing::Values(0, 2, 8),         // delay budget frames
        ::testing::Values(1u, 2u, 3u)),     // seeds
    sweep_name);

}  // namespace
}  // namespace wimesh
