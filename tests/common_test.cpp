#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "wimesh/common/expected.h"
#include "wimesh/common/rng.h"
#include "wimesh/common/strings.h"
#include "wimesh/common/time.h"

namespace wimesh {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::microseconds(5).ns(), 5'000);
  EXPECT_EQ(SimTime::milliseconds(10).ns(), 10'000'000);
  EXPECT_EQ(SimTime::seconds(2).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(10).to_seconds(), 0.010);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(1500).to_ms(), 1.5);
}

TEST(SimTimeTest, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(2.5e-9).ns(), 3);
  EXPECT_EQ(SimTime::from_seconds(0.02).ns(), 20'000'000);
  EXPECT_EQ(SimTime::from_seconds(-1e-9).ns(), -1);
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const SimTime a = SimTime::milliseconds(3);
  const SimTime b = SimTime::milliseconds(7);
  EXPECT_EQ((a + b).ns(), SimTime::milliseconds(10).ns());
  EXPECT_EQ((b - a).ns(), SimTime::milliseconds(4).ns());
  EXPECT_LT(a, b);
  EXPECT_EQ(a * 2, SimTime::milliseconds(6));
  EXPECT_EQ(2 * a, SimTime::milliseconds(6));
  EXPECT_EQ(b / a, 2);  // integer frame count
  EXPECT_EQ(b % a, SimTime::milliseconds(1));
  EXPECT_EQ((-a).ns(), -3'000'000);
}

TEST(SimTimeTest, ToStringPicksAdaptiveUnit) {
  EXPECT_EQ(SimTime::nanoseconds(12).to_string(), "12ns");
  EXPECT_EQ(SimTime::microseconds(9).to_string(), "9.000us");
  EXPECT_EQ(SimTime::milliseconds(10).to_string(), "10.000ms");
  EXPECT_EQ(SimTime::seconds(3).to_string(), "3.000s");
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentDraws) {
  // Splitting must not depend on how much the parent has been consumed
  // after seeding: child identity is (seed, split index).
  Rng parent1(7);
  Rng child1 = parent1.split();
  Rng parent2(7);
  parent2.next_u64();  // consume some parent output first
  parent2.next_u64();
  Rng child2 = parent2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, SuccessiveSplitsDiffer) {
  Rng parent(7);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, UniformWithinRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowIsInRangeAndCoversAll) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ChanceFrequencyMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// --------------------------------------------------------------- Expected

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 5);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e = make_error("boom");
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error(), "boom");
}

TEST(ExpectedTest, StringValueDisambiguatedFromError) {
  Expected<std::string> ok(std::string("payload"));
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, "payload");
  Expected<std::string> bad = make_error("err");
  ASSERT_FALSE(bad);
  EXPECT_EQ(bad.error(), "err");
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::vector<int>> e(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(e).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, StrCat) {
  EXPECT_EQ(str_cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(str_cat(), "");
}

TEST(StringsTest, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0), "2.000");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

}  // namespace
}  // namespace wimesh
