// Tests for the load-aware routing extension.

#include <gtest/gtest.h>

#include <set>

#include "wimesh/core/mesh_network.h"
#include "wimesh/qos/planner.h"

namespace wimesh {
namespace {

EmulationParams default_params() {
  EmulationParams p;
  p.frame.frame_duration = SimTime::milliseconds(10);
  p.frame.control_slots = 4;
  p.frame.data_slots = 96;
  p.guard_time = SimTime::microseconds(50);
  return p;
}

TEST(RoutingPolicyTest, HopCountAndLoadAwareAgreeOnAChain) {
  // Only one path exists: policies must coincide.
  const Topology topo = make_chain(5, 100.0);
  for (RoutingPolicy policy :
       {RoutingPolicy::kHopCount, RoutingPolicy::kLoadAware}) {
    QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                       PhyMode::ofdm_802_11a(54), policy);
    const auto plan = planner.plan({FlowSpec::voip(0, 0, 4, VoipCodec::g729())},
                                   SchedulerKind::kGreedy);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->guaranteed[0].node_path,
              (std::vector<NodeId>{0, 1, 2, 3, 4}));
  }
}

TEST(RoutingPolicyTest, LoadAwareUsesShortestPathsWhenUnloaded) {
  const Topology topo = make_grid(3, 3, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54), RoutingPolicy::kLoadAware);
  const auto plan = planner.plan({FlowSpec::voip(0, 0, 8, VoipCodec::g729())},
                                 SchedulerKind::kGreedy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->guaranteed[0].node_path.size(), 5u);  // 4 hops on a grid
}

TEST(RoutingPolicyTest, LoadAwareSpreadsParallelFlows) {
  // Ring: two node-disjoint paths of equal length between opposite nodes.
  // Hop-count routing puts every flow on the same (tie-broken) side; the
  // load-aware router must move later flows to the other side.
  const Topology topo = make_ring(8, 160.0);
  const RadioModel radio(130.0, 260.0);
  std::vector<FlowSpec> flows;
  for (int c = 0; c < 4; ++c) {
    flows.push_back(FlowSpec::voip(c, 0, 4, VoipCodec::g711()));
  }

  QosPlanner hop(topo, radio, default_params(), PhyMode::ofdm_802_11a(54),
                 RoutingPolicy::kHopCount);
  QosPlanner load(topo, radio, default_params(), PhyMode::ofdm_802_11a(54),
                  RoutingPolicy::kLoadAware);

  const auto hop_plan = hop.plan(flows, SchedulerKind::kGreedy);
  const auto load_plan = load.plan(flows, SchedulerKind::kGreedy);
  ASSERT_TRUE(hop_plan.has_value());
  ASSERT_TRUE(load_plan.has_value());

  const auto distinct_second_hops = [](const MeshPlan& plan) {
    std::set<NodeId> hops;
    for (const FlowPlan& f : plan.guaranteed) hops.insert(f.node_path[1]);
    return hops.size();
  };
  EXPECT_EQ(distinct_second_hops(*hop_plan), 1u);   // all piled on one side
  EXPECT_EQ(distinct_second_hops(*load_plan), 2u);  // split across the ring
}

TEST(RoutingPolicyTest, LoadAwareNeverLengthensBeyondReason) {
  // With the +1 base weight, a detour is taken only to dodge congestion;
  // single unloaded flows stay on shortest paths across topologies.
  Rng rng(99);
  const Topology topo = make_random_geometric(12, 450.0, 170.0, rng);
  const RadioModel radio(170.0, 340.0);
  QosPlanner planner(topo, radio, default_params(),
                     PhyMode::ofdm_802_11a(54), RoutingPolicy::kLoadAware);
  QosPlanner hop_planner(topo, radio, default_params(),
                         PhyMode::ofdm_802_11a(54), RoutingPolicy::kHopCount);
  for (NodeId dst = 1; dst < 12; ++dst) {
    const std::vector<FlowSpec> flows{
        FlowSpec::voip(0, 0, dst, VoipCodec::g729())};
    const auto a = planner.plan(flows, SchedulerKind::kGreedy);
    const auto b = hop_planner.plan(flows, SchedulerKind::kGreedy);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->guaranteed[0].node_path.size(),
              b->guaranteed[0].node_path.size())
        << "dst " << dst;
  }
}

TEST(RoutingPolicyTest, GuaranteedFlowsRoutedBeforeBestEffort) {
  // A heavy BE flow declared FIRST must not push the voice flow off the
  // short side of the ring (guaranteed class routes first).
  const Topology topo = make_ring(8, 160.0);
  const RadioModel radio(130.0, 260.0);
  QosPlanner planner(topo, radio, default_params(),
                     PhyMode::ofdm_802_11a(54), RoutingPolicy::kLoadAware);
  const std::vector<FlowSpec> flows{
      FlowSpec::best_effort(100, 0, 4, 1500, 8e6),
      FlowSpec::voip(0, 0, 4, VoipCodec::g729()),
  };
  const auto plan = planner.plan(flows, SchedulerKind::kGreedy);
  ASSERT_TRUE(plan.has_value());
  // Voice keeps a 4-hop path (one of the two sides).
  EXPECT_EQ(plan->guaranteed[0].node_path.size(), 5u);
}

TEST(RoutingPolicyTest, CoreConfigPlumbsThePolicy) {
  MeshConfig cfg;
  cfg.topology = make_ring(8, 160.0);
  cfg.comm_range = 130.0;
  cfg.interference_range = 260.0;
  cfg.routing = RoutingPolicy::kLoadAware;
  MeshNetwork net(cfg);
  for (int c = 0; c < 2; ++c) {
    net.add_voip_call(2 * c, 0, 4, VoipCodec::g729());
  }
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.01);
  }
}

}  // namespace
}  // namespace wimesh
