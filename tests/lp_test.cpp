#include <gtest/gtest.h>

#include <cmath>

#include "wimesh/common/rng.h"
#include "wimesh/lp/lp.h"

namespace wimesh {
namespace {

TEST(LpModelTest, MergesDuplicateTerms) {
  LpModel m;
  const VarId x = m.add_variable(0, 10, 1.0, "x");
  m.add_constraint({{x, 1.0}, {x, 2.0}}, RowSense::kLessEqual, 6.0);
  ASSERT_EQ(m.row(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0).terms[0].coef, 3.0);
}

TEST(LpModelTest, ObjectiveValueAndViolation) {
  LpModel m;
  const VarId x = m.add_variable(0, 10, 2.0, "x");
  const VarId y = m.add_variable(0, 10, -1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 5.0);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({4.0, 4.0}), 3.0);   // row violated by 3
  EXPECT_DOUBLE_EQ(m.max_violation({11.0, 0.0}), 6.0);  // bound + row
}

// Classic 2-variable LP with a known optimum.
TEST(LpSolveTest, SimpleMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with objective 36.
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId x = m.add_variable(0, kLpInfinity, 3.0, "x");
  const VarId y = m.add_variable(0, kLpInfinity, 5.0, "y");
  m.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, RowSense::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, RowSense::kLessEqual, 18.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 6.0, 1e-7);
}

TEST(LpSolveTest, MinimizationWithGreaterEqualRows) {
  // min 2x + 3y  s.t. x + y >= 4, x + 2y >= 6, x,y >= 0. Optimum (2,2): 10.
  LpModel m;
  const VarId x = m.add_variable(0, kLpInfinity, 2.0, "x");
  const VarId y = m.add_variable(0, kLpInfinity, 3.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kGreaterEqual, 4.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, RowSense::kGreaterEqual, 6.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 2.0, 1e-7);
}

TEST(LpSolveTest, EqualityConstraints) {
  // min x + y  s.t. x + y = 3, x - y = 1 → unique point (2, 1).
  LpModel m;
  const VarId x = m.add_variable(0, kLpInfinity, 1.0, "x");
  const VarId y = m.add_variable(0, kLpInfinity, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kEqual, 3.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, RowSense::kEqual, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 1.0, 1e-7);
}

TEST(LpSolveTest, DetectsInfeasibility) {
  LpModel m;
  const VarId x = m.add_variable(0, kLpInfinity, 1.0, "x");
  m.add_constraint({{x, 1.0}}, RowSense::kLessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, RowSense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(LpSolveTest, DetectsUnboundedness) {
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId x = m.add_variable(0, kLpInfinity, 1.0, "x");
  const VarId y = m.add_variable(0, kLpInfinity, 0.0, "y");
  m.add_constraint({{x, 1.0}, {y, -1.0}}, RowSense::kLessEqual, 1.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(LpSolveTest, EmptyVariableDomainIsInfeasible) {
  LpModel m;
  const VarId x = m.add_variable(0, 5, 1.0, "x");
  m.set_bounds(x, 3.0, 2.0);  // branch & bound produces these
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(LpSolveTest, UpperBoundedVariablesBindWithoutRows) {
  // max x + y with x <= 2, y <= 3 as *bounds* only.
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  m.add_variable(0, 2, 1.0, "x");
  m.add_variable(0, 3, 1.0, "y");
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-8);
}

TEST(LpSolveTest, NegativeLowerBounds) {
  // min x + y with x >= -5, y >= -2, x + y >= -4 → optimum -4 on the row.
  LpModel m;
  m.add_variable(-5, kLpInfinity, 1.0, "x");
  m.add_variable(-2, kLpInfinity, 1.0, "y");
  m.add_constraint({{0, 1.0}, {1, 1.0}}, RowSense::kGreaterEqual, -4.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-8);
}

TEST(LpSolveTest, FreeVariables) {
  // min |style| problem: x free, min x s.t. x >= -7 via row.
  LpModel m;
  const VarId x = m.add_variable(-kLpInfinity, kLpInfinity, 1.0, "x");
  m.add_constraint({{x, 1.0}}, RowSense::kGreaterEqual, -7.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -7.0, 1e-8);
}

TEST(LpSolveTest, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex (classic degeneracy).
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  const VarId x = m.add_variable(0, kLpInfinity, 1.0, "x");
  const VarId y = m.add_variable(0, kLpInfinity, 1.0, "y");
  for (int k = 1; k <= 8; ++k) {
    m.add_constraint({{x, static_cast<double>(k)}, {y, static_cast<double>(k)}},
                     RowSense::kLessEqual, 10.0 * k);
  }
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-7);
}

TEST(LpSolveTest, TransportationProblem) {
  // 2 supplies (10, 15) to 3 demands (8, 9, 8); costs chosen so the optimum
  // is hand-checkable: c = [[2,4,5],[3,1,7]].
  LpModel m;
  std::vector<std::vector<VarId>> x(2, std::vector<VarId>(3));
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          m.add_variable(0, kLpInfinity, cost[i][j]);
    }
  }
  const double supply[2] = {10, 15};
  const double demand[3] = {8, 9, 8};
  for (int i = 0; i < 2; ++i) {
    m.add_constraint({{x[static_cast<std::size_t>(i)][0], 1.0},
                      {x[static_cast<std::size_t>(i)][1], 1.0},
                      {x[static_cast<std::size_t>(i)][2], 1.0}},
                     RowSense::kLessEqual, supply[i]);
  }
  for (int j = 0; j < 3; ++j) {
    m.add_constraint({{x[0][static_cast<std::size_t>(j)], 1.0},
                      {x[1][static_cast<std::size_t>(j)], 1.0}},
                     RowSense::kGreaterEqual, demand[j]);
  }
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Optimal: s2 ships 9 to d2 and 6 to d1; s1 ships 2 to d1 and 8 to d3:
  // 9*1 + 6*3 + 2*2 + 8*5 = 71.
  EXPECT_NEAR(r.objective, 71.0, 1e-6);
  EXPECT_LE(m.max_violation(r.x), 1e-7);
}

// Property test: on random feasible-by-construction LPs the simplex solution
// must be feasible and at least as good as the construction point.
TEST(LpSolveTest, RandomFeasibleInstances) {
  Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(6));
    const int rows = 1 + static_cast<int>(rng.next_below(8));
    LpModel m;
    std::vector<double> ref;
    for (int j = 0; j < n; ++j) {
      const double lo = std::floor(rng.uniform(-5.0, 0.0));
      const double up = std::floor(rng.uniform(1.0, 10.0));
      m.add_variable(lo, up, rng.uniform(-3.0, 3.0));
      ref.push_back(std::floor(rng.uniform(lo, up)));
    }
    for (int i = 0; i < rows; ++i) {
      std::vector<LpTerm> terms;
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        if (!rng.chance(0.6)) continue;
        const double c = std::floor(rng.uniform(-4.0, 5.0));
        if (c == 0.0) continue;
        terms.push_back({j, c});
        lhs += c * ref[static_cast<std::size_t>(j)];
      }
      if (terms.empty()) continue;
      // rhs set so the reference point satisfies the row.
      m.add_constraint(terms, RowSense::kLessEqual,
                       lhs + std::floor(rng.uniform(0.0, 4.0)));
    }
    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_LE(m.max_violation(r.x), 1e-6) << "trial " << trial;
    EXPECT_LE(r.objective, m.objective_value(ref) + 1e-6) << "trial " << trial;
  }
}

// -------------------------------------------------------------- warm starts

TEST(LpWarmStartTest, PerturbedRhsReusesBasisAndMatchesColdOptimum) {
  // Solve a small LP cold, capture the optimal basis, nudge the right-hand
  // sides, and re-solve warm: the warm solve must install the basis, agree
  // with a fresh cold solve of the perturbed model, and never pivot more.
  const auto build = [](double cap1, double cap2) {
    LpModel m;
    m.set_objective_sense(ObjSense::kMaximize);
    const VarId x = m.add_variable(0, 1e6, 3.0, "x");
    const VarId y = m.add_variable(0, 1e6, 5.0, "y");
    const VarId z = m.add_variable(0, 1e6, 4.0, "z");
    m.add_constraint({{x, 1.0}, {y, 2.0}, {z, 1.0}}, RowSense::kLessEqual,
                     cap1);
    m.add_constraint({{x, 3.0}, {y, 1.0}, {z, 2.0}}, RowSense::kLessEqual,
                     cap2);
    return m;
  };

  const LpModel base = build(10.0, 15.0);
  LpBasis basis;
  const LpResult seed = solve_lp(base, LpOptions{}, nullptr, &basis);
  ASSERT_EQ(seed.status, LpStatus::kOptimal);
  ASSERT_FALSE(basis.empty());

  const LpModel bumped = build(11.0, 14.0);
  const LpResult cold = solve_lp(bumped);
  const LpResult warm = solve_lp(bumped, LpOptions{}, &basis, nullptr);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_TRUE(warm.warm_start_used);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(LpWarmStartTest, MismatchedBasisFallsBackToColdStart) {
  LpModel small;
  small.set_objective_sense(ObjSense::kMaximize);
  const VarId a = small.add_variable(0, 4, 1.0, "a");
  small.add_constraint({{a, 1.0}}, RowSense::kLessEqual, 3.0);
  LpBasis basis;
  ASSERT_EQ(solve_lp(small, LpOptions{}, nullptr, &basis).status,
            LpStatus::kOptimal);
  ASSERT_FALSE(basis.empty());

  // Different dimensions: the stale basis must be rejected, not installed.
  LpModel big;
  big.set_objective_sense(ObjSense::kMaximize);
  const VarId x = big.add_variable(0, 5, 2.0, "x");
  const VarId y = big.add_variable(0, 5, 1.0, "y");
  big.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::kLessEqual, 6.0);
  big.add_constraint({{x, 2.0}, {y, 1.0}}, RowSense::kLessEqual, 8.0);
  const LpResult warm = solve_lp(big, LpOptions{}, &basis, nullptr);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_FALSE(warm.warm_start_used);
  EXPECT_NEAR(warm.objective, solve_lp(big).objective, 1e-9);
}

TEST(LpWarmStartTest, RandomRhsPerturbationsAgreeWithColdSolves) {
  // Property check mirroring how branch & bound and the min-slot search use
  // bases: re-solving a relaxed copy of the model warm from the original's
  // optimal basis must reach the same optimum a cold solve finds.
  for (unsigned trial = 0; trial < 20; ++trial) {
    Rng rng(4000 + trial);
    const int n = 3 + static_cast<int>(rng.uniform(0.0, 3.0));
    const int rows = 2 + static_cast<int>(rng.uniform(0.0, 3.0));
    LpModel m;
    m.set_objective_sense(ObjSense::kMaximize);
    for (int j = 0; j < n; ++j) {
      m.add_variable(0.0, std::floor(rng.uniform(2.0, 9.0)),
                     std::floor(rng.uniform(1.0, 6.0)));
    }
    std::vector<double> bumps;
    for (int i = 0; i < rows; ++i) {
      std::vector<LpTerm> terms;
      for (int j = 0; j < n; ++j) {
        if (!rng.chance(0.7)) continue;
        terms.push_back({j, std::floor(rng.uniform(1.0, 4.0))});
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      m.add_constraint(terms, RowSense::kLessEqual,
                       std::floor(rng.uniform(4.0, 16.0)));
      bumps.push_back(std::floor(rng.uniform(0.0, 4.0)));
    }
    LpBasis basis;
    const LpResult seed = solve_lp(m, LpOptions{}, nullptr, &basis);
    ASSERT_EQ(seed.status, LpStatus::kOptimal) << "trial " << trial;

    // Rebuild the model with bumped right-hand sides (the LpModel API is
    // append-only, so rebuild rather than mutate).
    LpModel relaxed;
    relaxed.set_objective_sense(ObjSense::kMaximize);
    for (int j = 0; j < n; ++j) {
      relaxed.add_variable(m.lower_bound(j), m.upper_bound(j),
                           m.objective_coef(j));
    }
    for (int k = 0; k < rows; ++k) {
      relaxed.add_constraint(m.row(k).terms, RowSense::kLessEqual,
                             m.row(k).rhs + bumps[static_cast<std::size_t>(k)]);
    }
    const LpResult cold = solve_lp(relaxed);
    const LpResult warm = solve_lp(relaxed, LpOptions{}, &basis, nullptr);
    ASSERT_EQ(cold.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_EQ(warm.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
    EXPECT_LE(relaxed.max_violation(warm.x), 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace wimesh
