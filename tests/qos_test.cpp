#include <gtest/gtest.h>

#include <vector>

#include "wimesh/graph/topology.h"
#include "wimesh/qos/planner.h"

namespace wimesh {
namespace {

EmulationParams default_params() {
  EmulationParams p;
  p.frame.frame_duration = SimTime::milliseconds(10);
  p.frame.control_slots = 4;
  p.frame.data_slots = 96;
  p.guard_time = SimTime::microseconds(50);
  return p;
}

// Conflict-freeness across ALL grants (primary + best-effort extras).
bool plan_schedule_conflict_free(const MeshPlan& plan) {
  for (EdgeId e = 0; e < plan.conflicts.edge_count(); ++e) {
    const LinkId a = plan.conflicts.edge(e).u;
    const LinkId b = plan.conflicts.edge(e).v;
    for (const SlotRange& ga : plan.schedule.all_grants(a)) {
      for (const SlotRange& gb : plan.schedule.all_grants(b)) {
        if (ga.overlaps(gb)) return false;
      }
    }
  }
  return true;
}

TEST(FlowSpecTest, VoipFactory) {
  const FlowSpec f = FlowSpec::voip(3, 0, 4, VoipCodec::g729(),
                                    SimTime::milliseconds(80));
  EXPECT_EQ(f.service, ServiceClass::kGuaranteed);
  EXPECT_EQ(f.packet_bytes, 60u);
  EXPECT_EQ(f.max_delay, SimTime::milliseconds(80));
  EXPECT_NEAR(f.rate_bps(), 24000.0, 1.0);
}

TEST(FlowSpecTest, BestEffortFactory) {
  const FlowSpec f = FlowSpec::best_effort(9, 1, 2, 1000, 2e6);
  EXPECT_EQ(f.service, ServiceClass::kBestEffort);
  EXPECT_NEAR(f.rate_bps(), 2e6, 1e3);
}

TEST(QosPlannerTest, RoutesAreShortestPaths) {
  const Topology topo = make_grid(3, 3, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, 8, VoipCodec::g729())},
      SchedulerKind::kIlpDelayAware);
  ASSERT_TRUE(plan.has_value()) << plan.error();
  // 0 → 8 on a 3x3 grid requires exactly 4 hops.
  EXPECT_EQ(plan->guaranteed[0].node_path.size(), 5u);
  EXPECT_EQ(plan->guaranteed[0].links.size(), 4u);
}

TEST(QosPlannerTest, SingleCallOnChainIsFeasibleAndMeetsDelay) {
  const Topology topo = make_chain(5, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, 4, VoipCodec::g729()),
       FlowSpec::voip(1, 4, 0, VoipCodec::g729())},
      SchedulerKind::kIlpDelayAware);
  ASSERT_TRUE(plan.has_value()) << plan.error();
  EXPECT_EQ(plan->guaranteed.size(), 2u);
  for (const FlowPlan& f : plan->guaranteed) {
    EXPECT_TRUE(f.delay_bound_met);
    EXPECT_LE(f.worst_case_delay, f.spec.max_delay);
    EXPECT_GT(f.packets_per_frame, 0);
  }
  EXPECT_TRUE(plan_schedule_conflict_free(*plan));
  EXPECT_GT(plan->guaranteed_slots_used, 0);
}

TEST(QosPlannerTest, DemandsCoverAllPathLinks) {
  const Topology topo = make_chain(4, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto plan = planner.plan({FlowSpec::voip(0, 0, 3, VoipCodec::g711())},
                                 SchedulerKind::kIlpDelayAware);
  ASSERT_TRUE(plan.has_value()) << plan.error();
  for (LinkId l : plan->guaranteed[0].links) {
    EXPECT_GT(plan->guaranteed_demand[static_cast<std::size_t>(l)], 0);
    EXPECT_TRUE(plan->schedule.grant(l).has_value());
  }
}

TEST(QosPlannerTest, SharedLinkAggregatesDemand) {
  // Two calls from different leaves through the same middle links.
  const Topology topo = make_chain(4, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto one = planner.plan({FlowSpec::voip(0, 0, 3, VoipCodec::g711())},
                                SchedulerKind::kGreedy);
  const auto two = planner.plan({FlowSpec::voip(0, 0, 3, VoipCodec::g711()),
                                 FlowSpec::voip(1, 0, 3, VoipCodec::g711())},
                                SchedulerKind::kGreedy);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(two.has_value());
  // Same link (0→1) must carry roughly twice the slots.
  const LinkId l = two->links.find({0, 1});
  ASSERT_NE(l, kInvalidLink);
  const LinkId l1 = one->links.find({0, 1});
  EXPECT_GT(two->guaranteed_demand[static_cast<std::size_t>(l)],
            one->guaranteed_demand[static_cast<std::size_t>(l1)]);
}

TEST(QosPlannerTest, InfeasibleWhenDemandExceedsCapacity) {
  // 30 bidirectional G.711 calls across a 5-chain vastly exceed what the
  // data subframe can serialize around the middle node.
  const Topology topo = make_chain(5, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  std::vector<FlowSpec> flows;
  for (int c = 0; c < 30; ++c) {
    flows.push_back(FlowSpec::voip(2 * c, 0, 4, VoipCodec::g711()));
    flows.push_back(FlowSpec::voip(2 * c + 1, 4, 0, VoipCodec::g711()));
  }
  const auto plan = planner.plan(flows, SchedulerKind::kIlpDelayAware);
  EXPECT_FALSE(plan.has_value());
}

TEST(QosPlannerTest, BestEffortGetsLeftoverGrants) {
  const Topology topo = make_chain(4, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, 3, VoipCodec::g729()),
       FlowSpec::best_effort(10, 3, 0, 1000, 3e6)},
      SchedulerKind::kIlpDelayAware);
  ASSERT_TRUE(plan.has_value()) << plan.error();
  ASSERT_EQ(plan->best_effort.size(), 1u);
  // BE links received extra grants.
  int be_slots = 0;
  for (LinkId l : plan->best_effort[0].links) {
    for (const SlotRange& g : plan->schedule.extra_grants(l)) {
      be_slots += g.length;
    }
  }
  EXPECT_GT(be_slots, 0);
  EXPECT_TRUE(plan_schedule_conflict_free(*plan));
}

TEST(QosPlannerTest, BestEffortNeverBlocksGuaranteed) {
  // Saturating BE demand must not make the plan infeasible.
  const Topology topo = make_chain(4, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  std::vector<FlowSpec> flows{FlowSpec::voip(0, 0, 3, VoipCodec::g711())};
  for (int i = 0; i < 5; ++i) {
    flows.push_back(FlowSpec::best_effort(100 + i, 0, 3, 1500, 10e6));
  }
  const auto plan = planner.plan(flows, SchedulerKind::kIlpDelayAware);
  ASSERT_TRUE(plan.has_value()) << plan.error();
  EXPECT_TRUE(plan->guaranteed[0].delay_bound_met);
  EXPECT_TRUE(plan_schedule_conflict_free(*plan));
}

TEST(QosPlannerTest, GreedyIgnoresDelayButSchedules) {
  const Topology topo = make_chain(6, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto plan = planner.plan({FlowSpec::voip(0, 0, 5, VoipCodec::g729())},
                                 SchedulerKind::kGreedy);
  ASSERT_TRUE(plan.has_value()) << plan.error();
  EXPECT_TRUE(plan_schedule_conflict_free(*plan));
  // delay_bound_met may be false here — greedy gives no ordering guarantee.
}

TEST(QosPlannerTest, NextHopAndOutLinkFollowThePath) {
  const Topology topo = make_chain(4, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const auto plan = planner.plan({FlowSpec::voip(7, 0, 3, VoipCodec::g729())},
                                 SchedulerKind::kGreedy);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->next_hop(7, 0), 1);
  EXPECT_EQ(plan->next_hop(7, 2), 3);
  EXPECT_EQ(plan->next_hop(7, 3), kInvalidNode);  // destination
  EXPECT_EQ(plan->next_hop(99, 0), kInvalidNode); // unknown flow
  const LinkId l = plan->out_link(7, 1);
  ASSERT_NE(l, kInvalidLink);
  EXPECT_EQ(plan->links.link(l).from, 1);
  EXPECT_EQ(plan->links.link(l).to, 2);
}

TEST(QosPlannerTest, IncrementalAdmissionFindsCapacity) {
  const Topology topo = make_chain(4, 100.0);
  EmulationParams p = default_params();
  p.frame.data_slots = 48;  // shrink capacity so admission bites
  QosPlanner planner(topo, RadioModel(110.0, 220.0), p,
                     PhyMode::ofdm_802_11a(54));
  std::vector<FlowSpec> flows;
  for (int c = 0; c < 20; ++c) {
    flows.push_back(FlowSpec::voip(2 * c, 0, 3, VoipCodec::g711()));
    flows.push_back(FlowSpec::voip(2 * c + 1, 3, 0, VoipCodec::g711()));
  }
  const auto result =
      planner.admit_incrementally(flows, SchedulerKind::kIlpDelayAware);
  EXPECT_GT(result.admitted, 0u);
  EXPECT_LT(result.admitted, flows.size());  // capacity must bind
  EXPECT_TRUE(plan_schedule_conflict_free(result.plan));
  for (const FlowPlan& f : result.plan.guaranteed) {
    EXPECT_TRUE(f.delay_bound_met);
  }
}

TEST(QosPlannerTest, DelayAwareAdmitsNoFewerSlotsThanUnaware) {
  const Topology topo = make_chain(5, 100.0);
  QosPlanner planner(topo, RadioModel(110.0, 220.0), default_params(),
                     PhyMode::ofdm_802_11a(54));
  const std::vector<FlowSpec> flows{
      FlowSpec::voip(0, 0, 4, VoipCodec::g729()),
      FlowSpec::voip(1, 4, 0, VoipCodec::g729())};
  const auto aware = planner.plan(flows, SchedulerKind::kIlpDelayAware);
  const auto unaware = planner.plan(flows, SchedulerKind::kIlpDelayUnaware);
  ASSERT_TRUE(aware.has_value()) << aware.error();
  ASSERT_TRUE(unaware.has_value()) << unaware.error();
  // The delay constraint can only lengthen (never shorten) the schedule.
  EXPECT_GE(aware->guaranteed_slots_used, unaware->guaranteed_slots_used);
}

}  // namespace
}  // namespace wimesh
