// Determinism regression suite for the batch runner: the same sweep must
// produce bit-identical per-run results (per-flow delay samples, counts,
// JSON document) no matter how many worker threads execute it, across
// repeated invocations, and with the schedule cache on or off. Plus unit
// coverage of the executor (exactly-once, exception propagation) and the
// cache (single computation per key under concurrent hammering).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/batch/runner.h"
#include "wimesh/common/rng.h"

namespace wimesh {
namespace {

// Small but non-trivial scenario: a 3-chain with one relayed VoIP call and
// a best-effort stream, 1 simulated second — enough packets for the delay
// distributions to differ across seeds.
constexpr const char* kScenario = R"(topology = chain 3 100
comm_range = 110
interference_range = 220
phy = ofdm54
frame_ms = 10
control_slots = 4
data_slots = 96
scheduler = ilp-delay
routing = hop
mac = tdma
duration_s = 1
seed = 7

voip 0 0 2 g729 100
bulk 10 2 0 600 500000
)";

Scenario test_scenario() {
  auto s = parse_scenario(kScenario);
  EXPECT_TRUE(s.has_value()) << s.error();
  return *s;
}

std::vector<batch::RunOutcome> run_sweep(int jobs, ScheduleCache* cache) {
  batch::BatchOptions options;
  options.jobs = jobs;
  options.schedule_cache = cache;
  return batch::run_batch(batch::seed_sweep(test_scenario(), 0, 5), options);
}

TEST(DeriveStream, PureAndDistinct) {
  // Pure: same inputs, same stream.
  EXPECT_EQ(Rng::derive_stream(1, 0), Rng::derive_stream(1, 0));
  EXPECT_EQ(Rng::derive_stream(42, 17), Rng::derive_stream(42, 17));
  // Distinct across indices and across base seeds.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t base : {1ull, 2ull, 99ull}) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      seen.push_back(Rng::derive_stream(base, i));
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Executor, EffectiveJobsClamps) {
  EXPECT_EQ(batch::effective_jobs(0, 10), 1);
  EXPECT_EQ(batch::effective_jobs(-3, 10), 1);
  EXPECT_EQ(batch::effective_jobs(4, 10), 4);
  EXPECT_EQ(batch::effective_jobs(16, 3), 3);
  EXPECT_EQ(batch::effective_jobs(8, 0), 1);
}

TEST(Executor, EveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  batch::run_indexed(8, kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Executor, PropagatesFirstException) {
  EXPECT_THROW(batch::run_indexed(4, 100,
                                  [](std::size_t i) {
                                    if (i == 37) {
                                      throw std::runtime_error("job 37");
                                    }
                                  }),
               std::runtime_error);
}

TEST(ScheduleCacheTest, ComputesOncePerKeyUnderContention) {
  ScheduleCache cache;
  std::atomic<int> computed{0};
  batch::run_indexed(8, 64, [&](std::size_t) {
    const CachedSchedule got =
        cache.get_or_compute("same-key", [&] {
          computed.fetch_add(1, std::memory_order_relaxed);
          CachedSchedule v;
          v.feasible = true;
          v.ilp_nodes = 123;
          return v;
        });
    EXPECT_TRUE(got.feasible);
    EXPECT_EQ(got.ilp_nodes, 123);
  });
  EXPECT_EQ(computed.load(), 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 63u);
  EXPECT_EQ(stats.lookups(), 64u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BatchRunner, SweepIdenticalAcrossJobCounts) {
  ScheduleCache cache1, cache8;
  const auto serial = run_sweep(1, &cache1);
  const auto parallel = run_sweep(8, &cache8);
  ASSERT_EQ(serial.size(), parallel.size());

  for (std::size_t r = 0; r < serial.size(); ++r) {
    const auto& a = serial[r];
    const auto& b = parallel[r];
    EXPECT_EQ(a.run_index, b.run_index);
    EXPECT_EQ(a.derived_seed, b.derived_seed);
    EXPECT_EQ(a.ok, b.ok);
    ASSERT_EQ(a.result.flows.size(), b.result.flows.size());
    for (std::size_t f = 0; f < a.result.flows.size(); ++f) {
      const FlowStats& fa = a.result.flows[f].stats;
      const FlowStats& fb = b.result.flows[f].stats;
      EXPECT_EQ(fa.sent_packets(), fb.sent_packets());
      EXPECT_EQ(fa.delivered_packets(), fb.delivered_packets());
      EXPECT_EQ(fa.loss_rate(), fb.loss_rate());
      // Bit-identical delay streams, not just matching summaries.
      EXPECT_EQ(fa.delays_ms().samples(), fb.delays_ms().samples());
    }
    EXPECT_EQ(a.result.frames_transmitted, b.result.frames_transmitted);
    EXPECT_EQ(a.result.receptions_corrupted, b.result.receptions_corrupted);
    EXPECT_EQ(a.result.mac_drops, b.result.mac_drops);
  }
  EXPECT_EQ(batch::results_json(serial), batch::results_json(parallel));
}

TEST(BatchRunner, RepeatedSweepIsBitIdentical) {
  ScheduleCache cache_a, cache_b;
  EXPECT_EQ(batch::results_json(run_sweep(4, &cache_a)),
            batch::results_json(run_sweep(4, &cache_b)));
}

TEST(BatchRunner, CacheDoesNotChangeResults) {
  ScheduleCache cache;
  const auto with_cache = run_sweep(4, &cache);
  const auto without = run_sweep(4, nullptr);
  EXPECT_EQ(batch::results_json(with_cache), batch::results_json(without));
  // Fixed topology and demands: 6 runs, one distinct problem — everything
  // after the first solve is a hit.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups(), 6u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 5u);
}

TEST(BatchRunner, SeedsVaryAcrossRuns) {
  ScheduleCache cache;
  const auto outcomes = run_sweep(2, &cache);
  ASSERT_EQ(outcomes.size(), 6u);
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    EXPECT_TRUE(outcomes[r].ok) << outcomes[r].error;
    EXPECT_EQ(outcomes[r].run_index, r);
    EXPECT_EQ(outcomes[r].derived_seed, Rng::derive_stream(7, r));
    EXPECT_EQ(outcomes[r].label, "seed=" + std::to_string(r));
  }
  // Different streams must actually change the packet-level outcome for
  // at least one pair of runs (delay samples are seed-sensitive).
  bool any_difference = false;
  for (std::size_t r = 1; r < outcomes.size() && !any_difference; ++r) {
    any_difference = outcomes[0].result.flows[0].stats.delays_ms().samples() !=
                     outcomes[r].result.flows[0].stats.delays_ms().samples();
  }
  EXPECT_TRUE(any_difference);
}

TEST(JsonWriterTest, EscapesAndFormats) {
  batch::JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value("a\"b\\c\nd");
  w.key("d");
  w.value(0.1);
  w.key("i");
  w.value(std::int64_t{-3});
  w.key("b");
  w.value(true);
  w.key("n");
  w.null();
  w.key("arr");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"d\":0.10000000000000001,"
            "\"i\":-3,\"b\":true,\"n\":null,\"arr\":[1,2]}");
}

}  // namespace
}  // namespace wimesh
