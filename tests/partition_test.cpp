// Split-brain survivability tests: a 4x4 grid cut into two islands must
// keep both halves running (independent audited schedules, per-island sync
// roots), shed only the flows that genuinely cross the cut with the typed
// `partitioned` reason, and on heal merge back into one audited schedule
// with deterministic re-admission of the severed flows.

#include <gtest/gtest.h>

#include "wimesh/batch/runner.h"
#include "wimesh/core/scenario.h"
#include "wimesh/faults/plan.h"

namespace wimesh {
namespace {

// 4x4 grid, nodes r*4+c. Cutting the four column-1<->column-2 links splits
// it into a left island {cols 0,1} and a right island {cols 2,3}.
constexpr char kGrid4Scenario[] =
    "topology = grid 4 4 100\n"
    "duration_s = 4\n"
    "mac = tdma\n"
    "voip 0 0 5 g729 100\n"    // intra-left call
    "voip 2 10 15 g729 100\n"  // intra-right call
    "voip 4 1 14 g729 100\n";  // crosses the cut: severed while split

// Staggered cuts (the last one completes the partition), then staggered
// heals (the first one reconnects the halves). 100 ms spacing with a 50 ms
// detection delay keeps every recovery pass unambiguous.
constexpr char kSplitHealSpec[] =
    "link-down@1 link=1-2; link-down@1.1 link=5-6; "
    "link-down@1.2 link=9-10; link-down@1.3 link=13-14; "
    "link-up@2 link=1-2; link-up@2.1 link=5-6; "
    "link-up@2.2 link=9-10; link-up@2.3 link=13-14; detect_ms=50";

Scenario make_faulted(const char* scenario_text, const char* fault_spec) {
  auto sc = parse_scenario(scenario_text);
  WIMESH_ASSERT(sc.has_value());
  auto plan = faults::parse_fault_plan(fault_spec);
  WIMESH_ASSERT(plan.has_value());
  sc->config.faults = std::move(*plan);
  sc->config.audit = true;
  return std::move(*sc);
}

SimulationResult run_faulted(const char* scenario_text,
                             const char* fault_spec) {
  const Scenario sc = make_faulted(scenario_text, fault_spec);
  MeshNetwork net(sc.config);
  for (const FlowSpec& f : sc.flows) net.add_flow(f);
  WIMESH_ASSERT(net.compute_plan().has_value());
  return net.run(sc.mac, sc.duration);
}

TEST(PartitionTest, GridSplitsIntoTwoAuditedIslandsAndHeals) {
  const SimulationResult r = run_faulted(kGrid4Scenario, kSplitHealSpec);

  // Both islands' schedules (and the merged one) run audit-clean: zero
  // conflict/guard violations outside the waived repair windows.
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();

  const faults::FaultReport& f = r.faults;
  ASSERT_TRUE(f.enabled);
  EXPECT_EQ(f.events_applied, 8);
  EXPECT_EQ(f.max_islands, 2);
  EXPECT_EQ(f.heals, 1);
  EXPECT_EQ(f.flows_partitioned, 2);  // both directions of the cross call
  EXPECT_EQ(f.flows_shed, 0);         // partition is typed, not a shed
  EXPECT_EQ(f.flows_preserved, 6);    // final merged plan carries all six

  // One repair record per structural event, in order.
  ASSERT_EQ(f.repair_history.size(), 8u);

  // The cut completes at t=1.3: two islands, one master each. Island 0
  // holds node 0 so the incumbent master keeps it; island 1 elects its
  // lowest surviving node, which is node 2 (row 0, column 2).
  const faults::RepairRecord& split = f.repair_history[3];
  EXPECT_EQ(split.at, SimTime::from_seconds(1.3));
  EXPECT_EQ(split.islands, 2);
  ASSERT_EQ(split.masters.size(), 2u);
  EXPECT_EQ(split.masters[0], 0);
  EXPECT_EQ(split.masters[1], 2);
  EXPECT_EQ(split.flows_severed, 2);
  EXPECT_EQ(split.flows_planned, 4);  // the four intra-island flows

  // The first link-up at t=2 reconnects the halves: heal-time merge back
  // to one schedule under a single sync root, severed flows re-admitted.
  const faults::RepairRecord& heal = f.repair_history[4];
  EXPECT_EQ(heal.at, SimTime::seconds(2));
  EXPECT_EQ(heal.islands, 1);
  ASSERT_EQ(heal.masters.size(), 1u);
  EXPECT_EQ(heal.masters[0], 0);
  EXPECT_EQ(heal.flows_severed, 0);
  EXPECT_EQ(heal.flows_planned, 6);

  // Severed flows carry the typed reason and are restored after the heal;
  // intra-island flows ride through hot-swaps without being partitioned
  // or shed.
  bool saw_partitioned_4 = false, saw_partitioned_5 = false;
  for (const auto& rec : f.outages) {
    if (rec.partitioned) {
      // Only the cross-cut call is ever typed as partitioned, its outage
      // spans the whole split, and the heal restores it.
      EXPECT_TRUE(rec.flow_id == 4 || rec.flow_id == 5)
          << "flow " << rec.flow_id;
      (rec.flow_id == 4 ? saw_partitioned_4 : saw_partitioned_5) = true;
      EXPECT_TRUE(rec.restored()) << "flow " << rec.flow_id;
      EXPECT_GT(rec.restored_at, SimTime::seconds(2));
    } else {
      EXPECT_FALSE(rec.shed) << "flow " << rec.flow_id;
      EXPECT_TRUE(rec.restored()) << "flow " << rec.flow_id;
    }
  }
  EXPECT_TRUE(saw_partitioned_4);
  EXPECT_TRUE(saw_partitioned_5);
}

TEST(PartitionTest, MasterAndBackupCrashingTheSameInstantStillElects) {
  // The incumbent master (0) and the next-lowest candidate (1) die in the
  // same frame; the election must skip both and root the island at node 2.
  constexpr char kGrid3[] =
      "topology = grid 3 3 100\n"
      "duration_s = 3\n"
      "mac = tdma\n"
      "voip 0 2 6 g729 100\n"
      "voip 2 5 7 g729 100\n";
  const SimulationResult r = run_faulted(
      kGrid3, "node-crash@1 node=0; node-crash@1 node=1; detect_ms=50");
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  const faults::FaultReport& f = r.faults;
  EXPECT_EQ(f.events_applied, 2);
  EXPECT_GE(f.failovers, 1);
  EXPECT_EQ(f.max_islands, 1);  // survivors stay connected
  ASSERT_FALSE(f.repair_history.empty());
  const faults::RepairRecord& last = f.repair_history.back();
  ASSERT_EQ(last.masters.size(), 1u);
  EXPECT_EQ(last.masters[0], 2);
  EXPECT_EQ(f.flows_preserved, 4);
  EXPECT_EQ(f.flows_shed, 0);
}

TEST(PartitionTest, CrashIsolatingTheMasterRootsBothIslands) {
  // Killing node 1 of a 3-chain strands the master (0) alone: its island
  // keeps the incumbent as a zero-neighbor root while the far side elects
  // node 2. No flow survives the cut, so the repaired plan is empty.
  constexpr char kChain3[] =
      "topology = chain 3 100\n"
      "duration_s = 3\n"
      "mac = tdma\n"
      "voip 0 0 2 g729 100\n";
  const SimulationResult r =
      run_faulted(kChain3, "node-crash@1 node=1; detect_ms=50");
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  const faults::FaultReport& f = r.faults;
  EXPECT_EQ(f.max_islands, 2);
  ASSERT_EQ(f.repair_history.size(), 1u);
  const faults::RepairRecord& rec = f.repair_history.front();
  EXPECT_EQ(rec.islands, 2);
  ASSERT_EQ(rec.masters.size(), 2u);
  EXPECT_EQ(rec.masters[0], 0);
  EXPECT_EQ(rec.masters[1], 2);
  EXPECT_EQ(rec.flows_severed, 2);
  EXPECT_EQ(rec.flows_planned, 0);
  EXPECT_EQ(f.flows_partitioned, 2);
}

// ------------------------------------------------------------ determinism

TEST(PartitionTest, SplitHealRunIsDeterministic) {
  const Scenario sc = make_faulted(kGrid4Scenario, kSplitHealSpec);
  const auto run_once = [&] {
    MeshNetwork net(sc.config);
    for (const FlowSpec& f : sc.flows) net.add_flow(f);
    WIMESH_ASSERT(net.compute_plan().has_value());
    return net.run(sc.mac, sc.duration);
  };
  const SimulationResult a = run_once();
  const SimulationResult b = run_once();
  ASSERT_EQ(a.faults.repair_history.size(), b.faults.repair_history.size());
  for (std::size_t i = 0; i < a.faults.repair_history.size(); ++i) {
    const faults::RepairRecord& ra = a.faults.repair_history[i];
    const faults::RepairRecord& rb = b.faults.repair_history[i];
    EXPECT_EQ(ra.at, rb.at);
    EXPECT_EQ(ra.activation, rb.activation);
    EXPECT_EQ(ra.islands, rb.islands);
    EXPECT_EQ(ra.masters, rb.masters);
    EXPECT_EQ(ra.flows_planned, rb.flows_planned);
    EXPECT_EQ(ra.flows_severed, rb.flows_severed);
  }
}

TEST(PartitionTest, SplitHealSweepIsBitIdenticalAcrossJobs) {
  Scenario sc = make_faulted(kGrid4Scenario, kSplitHealSpec);
  sc.duration = SimTime::seconds(3);
  const auto specs = batch::seed_sweep(sc, 1, 3);
  batch::BatchOptions serial;
  serial.jobs = 1;
  batch::BatchOptions parallel;
  parallel.jobs = 4;
  const std::string a = batch::results_json(batch::run_batch(specs, serial));
  const std::string b =
      batch::results_json(batch::run_batch(specs, parallel));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"max_islands\""), std::string::npos);
  EXPECT_NE(a.find("\"repairs_log\""), std::string::npos);
}

}  // namespace
}  // namespace wimesh
