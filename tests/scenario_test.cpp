// Scenario parser tests: grammar coverage, defaults, and precise error
// reporting (a typo must fail loudly, never silently change a run).

#include <gtest/gtest.h>

#include "wimesh/core/scenario.h"

namespace wimesh {
namespace {

constexpr const char* kMinimal =
    "topology = chain 4 100\n"
    "voip 0 0 3 g729 100\n";

TEST(ScenarioParserTest, MinimalScenarioWithDefaults) {
  const auto sc = parse_scenario(kMinimal);
  ASSERT_TRUE(sc.has_value()) << sc.error();
  EXPECT_EQ(sc->config.topology.node_count(), 4);
  EXPECT_EQ(sc->flows.size(), 2u);  // a call is two flows
  EXPECT_EQ(sc->mac, MacMode::kTdmaOverlay);
  EXPECT_EQ(sc->duration, SimTime::seconds(10));
  EXPECT_EQ(sc->config.scheduler, SchedulerKind::kIlpDelayAware);
}

TEST(ScenarioParserTest, FullGrammarRoundTrip) {
  const auto sc = parse_scenario(
      "# full scenario\n"
      "topology = grid 2 3 120\n"
      "comm_range = 130\n"
      "interference_range = 260\n"
      "phy = dsss11\n"
      "frame_ms = 20\n"
      "control_slots = 8\n"
      "data_slots = 192\n"
      "guard_us = 75\n"
      "scheduler = greedy\n"
      "routing = load-aware\n"
      "mac = edca\n"
      "duration_s = 2.5\n"
      "seed = 99\n"
      "packet_error_rate = 0.01\n"
      "voip 0 0 5 g711 80\n"
      "video 10 5 0 500000\n"
      "bulk 20 1 4 1000 1000000\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  EXPECT_EQ(sc->config.topology.node_count(), 6);
  EXPECT_DOUBLE_EQ(sc->config.comm_range, 130.0);
  EXPECT_EQ(sc->config.phy.name(), "802.11b-11Mbps");
  EXPECT_EQ(sc->config.emulation.frame.frame_duration,
            SimTime::milliseconds(20));
  EXPECT_EQ(sc->config.emulation.frame.control_slots, 8);
  EXPECT_EQ(sc->config.emulation.frame.data_slots, 192);
  EXPECT_FALSE(sc->config.auto_guard);
  EXPECT_EQ(sc->config.emulation.guard_time, SimTime::microseconds(75));
  EXPECT_EQ(sc->config.scheduler, SchedulerKind::kGreedy);
  EXPECT_EQ(sc->config.routing, RoutingPolicy::kLoadAware);
  EXPECT_EQ(sc->mac, MacMode::kEdca);
  EXPECT_EQ(sc->duration, SimTime::from_seconds(2.5));
  EXPECT_EQ(sc->config.seed, 99u);
  EXPECT_DOUBLE_EQ(sc->config.packet_error_rate, 0.01);
  ASSERT_EQ(sc->flows.size(), 4u);  // voip pair + video + bulk
  EXPECT_EQ(sc->flows[2].shape, TrafficShape::kVbrVideo);
  EXPECT_EQ(sc->flows[3].service, ServiceClass::kBestEffort);
}

TEST(ScenarioParserTest, GuardAuto) {
  const auto sc = parse_scenario(
      "topology = chain 3 100\nguard_us = auto\nvoip 0 0 2 g729 100\n");
  ASSERT_TRUE(sc.has_value());
  EXPECT_TRUE(sc->config.auto_guard);
}

TEST(ScenarioParserTest, AllTopologyKinds) {
  for (const char* t :
       {"chain 5 100", "grid 2 2 100", "ring 6 150", "random 8 400 170 7",
        "tree 2 2 100"}) {
    const auto sc = parse_scenario(
        std::string("topology = ") + t + "\nvoip 0 0 1 g729 100\n");
    EXPECT_TRUE(sc.has_value()) << t << ": "
                                << (sc.has_value() ? "" : sc.error());
  }
}

TEST(ScenarioParserTest, ErrorsNameTheOffendingLine) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "bogus_key = 3\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_FALSE(sc.has_value());
  EXPECT_NE(sc.error().find("line 2"), std::string::npos);
  EXPECT_NE(sc.error().find("bogus_key"), std::string::npos);
}

TEST(ScenarioParserTest, RejectsBadValues) {
  EXPECT_FALSE(parse_scenario("topology = blob 1\nvoip 0 0 1 g729 1\n")
                   .has_value());
  EXPECT_FALSE(parse_scenario(
                   "topology = chain 4 100\nphy = ofdm7\nvoip 0 0 3 g729 1\n")
                   .has_value());
  EXPECT_FALSE(
      parse_scenario(
          "topology = chain 4 100\nscheduler = magic\nvoip 0 0 3 g729 1\n")
          .has_value());
  EXPECT_FALSE(parse_scenario(
                   "topology = chain 4 100\nvoip 0 0 3 g999 100\n")
                   .has_value());
  EXPECT_FALSE(parse_scenario("topology = chain 4 100\nfrobnicate 1 2\n")
                   .has_value());
}

TEST(ScenarioParserTest, AuditKeyParsesAllModes) {
  const std::string base = "topology = chain 3 100\nvoip 0 0 2 g729 100\n";
  const auto off = parse_scenario(base + "audit = off\n");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->config.audit);
  const auto on = parse_scenario(base + "audit = on\n");
  ASSERT_TRUE(on.has_value());
  EXPECT_TRUE(on->config.audit);
  EXPECT_FALSE(on->config.audit_fail_fast);
  const auto ff = parse_scenario(base + "audit = fail-fast\n");
  ASSERT_TRUE(ff.has_value());
  EXPECT_TRUE(ff->config.audit);
  EXPECT_TRUE(ff->config.audit_fail_fast);
  EXPECT_FALSE(parse_scenario(base + "audit = maybe\n").has_value());
}

TEST(ScenarioParserTest, AuditedRunReportsSummary) {
  const auto sc = parse_scenario(
      "topology = chain 3 100\n"
      "duration_s = 1\n"
      "audit = on\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  MeshNetwork net(sc->config);
  for (const FlowSpec& f : sc->flows) net.add_flow(f);
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(sc->mac, sc->duration);
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_EQ(r.audit.total_violations(), 0u);
  const std::string report = format_report(*sc, r);
  EXPECT_NE(report.find("audit: ok"), std::string::npos);
}

TEST(ScenarioParserTest, FaultKeyParsesIntoThePlan) {
  const auto sc = parse_scenario(
      "topology = grid 3 3 100\n"
      "fault = node-crash@2 node=4; master-fail@3\n"
      "voip 0 0 8 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  ASSERT_TRUE(sc->config.faults.enabled());
  ASSERT_EQ(sc->config.faults.events.size(), 2u);
  EXPECT_EQ(sc->config.faults.events[0].kind, faults::FaultKind::kNodeCrash);
  EXPECT_EQ(sc->config.faults.events[0].node, 4);
  EXPECT_EQ(sc->config.faults.events[0].at, SimTime::seconds(2));
  EXPECT_EQ(sc->config.faults.events[1].kind, faults::FaultKind::kMasterFail);
}

TEST(ScenarioParserTest, MultipleFaultLinesMergeSortedByTime) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "fault = link-down@5 link=1-2\n"
      "fault = node-crash@1 node=3; detect_ms=50\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  ASSERT_EQ(sc->config.faults.events.size(), 2u);
  EXPECT_EQ(sc->config.faults.events[0].kind, faults::FaultKind::kNodeCrash);
  EXPECT_EQ(sc->config.faults.events[1].kind, faults::FaultKind::kLinkDown);
  EXPECT_EQ(sc->config.faults.detection_delay, SimTime::milliseconds(50));
}

TEST(ScenarioParserTest, BadFaultSpecNamesLineAndKey) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "fault = node-crash@2 nod=4\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_FALSE(sc.has_value());
  EXPECT_NE(sc.error().find("line 2"), std::string::npos);
  EXPECT_NE(sc.error().find("nod"), std::string::npos);
}

TEST(ScenarioParserTest, RequiresTopologyAndTraffic) {
  EXPECT_FALSE(parse_scenario("voip 0 0 1 g729 100\n").has_value());
  EXPECT_FALSE(parse_scenario("topology = chain 4 100\n").has_value());
}

TEST(ScenarioParserTest, ParsedScenarioActuallyRuns) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "duration_s = 1\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_TRUE(sc.has_value());
  MeshNetwork net(sc->config);
  for (const FlowSpec& f : sc->flows) net.add_flow(f);
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(sc->mac, sc->duration);
  EXPECT_EQ(r.flows.size(), 2u);
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.01);
  }
  // The report mentions every flow id.
  const std::string report = format_report(*sc, r);
  EXPECT_NE(report.find("voip"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
}

// ------------------------------------------------------------ ilp knob key

TEST(ScenarioParserTest, IlpKeyParsesEveryKnob) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "ilp = no-cuts, no-symmetry, no-warm, no-tree, portfolio=2, threads=8,"
      " max_nodes=1234, time_limit_s=2.5\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  const IlpSchedulerOptions& ilp = sc->config.ilp;
  EXPECT_FALSE(ilp.clique_cuts);
  EXPECT_FALSE(ilp.symmetry_breaking);
  EXPECT_FALSE(ilp.warm_start);
  EXPECT_FALSE(ilp.tree_fast_path);
  EXPECT_EQ(ilp.portfolio, 2);
  EXPECT_EQ(ilp.threads, 8);
  EXPECT_EQ(ilp.max_nodes, 1234);
  EXPECT_DOUBLE_EQ(ilp.time_limit_seconds, 2.5);
}

TEST(ScenarioParserTest, IlpLinesAccumulateWithLaterTokensWinning) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "ilp = no-tree,threads=2\n"
      "ilp = tree,portfolio=1\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  EXPECT_TRUE(sc->config.ilp.tree_fast_path);  // re-enabled by line 3
  EXPECT_EQ(sc->config.ilp.threads, 2);        // untouched by line 3
  EXPECT_EQ(sc->config.ilp.portfolio, 1);
  // Untouched knobs keep their defaults.
  EXPECT_TRUE(sc->config.ilp.clique_cuts);
  EXPECT_TRUE(sc->config.ilp.warm_start);
}

TEST(ScenarioParserTest, BadIlpTokensNameTheLine) {
  const auto flag = parse_scenario(
      "topology = chain 4 100\n"
      "ilp = frobnicate\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_FALSE(flag.has_value());
  EXPECT_NE(flag.error().find("line 2"), std::string::npos);
  EXPECT_NE(flag.error().find("unknown ilp token"), std::string::npos);

  const auto knob = parse_scenario(
      "topology = chain 4 100\n"
      "ilp = gizmo=3\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_FALSE(knob.has_value());
  EXPECT_NE(knob.error().find("unknown ilp knob"), std::string::npos);
}

TEST(ScenarioParserTest, AdmitKeyParsesEveryKnob) {
  const auto sc = parse_scenario(
      "topology = grid 3 3 100\n"
      "admit = rate=2.5,holding=45,horizon=120,events=500,codec=g711,"
      "max_delay_ms=80,be_fraction=0.25,seed=7,compaction=16,degrade,check\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  EXPECT_TRUE(sc->admit_enabled);
  EXPECT_TRUE(sc->admit_degrade);
  EXPECT_TRUE(sc->admit_check);
  EXPECT_EQ(sc->admit_compaction, 16);
  EXPECT_DOUBLE_EQ(sc->admit_churn.arrival_rate_per_s, 2.5);
  EXPECT_DOUBLE_EQ(sc->admit_churn.mean_holding_s, 45.0);
  EXPECT_DOUBLE_EQ(sc->admit_churn.horizon_s, 120.0);
  EXPECT_EQ(sc->admit_churn.max_events, 500u);
  EXPECT_EQ(sc->admit_churn.codec.name, VoipCodec::g711().name);
  EXPECT_EQ(sc->admit_churn.max_delay, SimTime::milliseconds(80));
  EXPECT_DOUBLE_EQ(sc->admit_churn.best_effort_fraction, 0.25);
  EXPECT_EQ(sc->admit_churn.seed, 7u);
}

TEST(ScenarioParserTest, AdmitLinesAccumulateWithLaterTokensWinning) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "admit = rate=1,degrade,check\n"
      "admit = rate=9,no-degrade\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  EXPECT_TRUE(sc->admit_enabled);
  EXPECT_DOUBLE_EQ(sc->admit_churn.arrival_rate_per_s, 9.0);
  EXPECT_FALSE(sc->admit_degrade);
  EXPECT_TRUE(sc->admit_check);  // untouched by the second line
}

// 'admit =' scenarios synthesize their own arrivals, so they may omit
// traffic declarations — but plain scenarios still must not.
TEST(ScenarioParserTest, AdmitScenarioMayOmitTraffic) {
  EXPECT_TRUE(parse_scenario("topology = chain 4 100\nadmit = on\n")
                  .has_value());
  EXPECT_FALSE(parse_scenario("topology = chain 4 100\n").has_value());
}

TEST(ScenarioParserTest, BadAdmitTokensNameTheLine) {
  const auto token = parse_scenario(
      "topology = chain 4 100\n"
      "admit = frobnicate\n");
  ASSERT_FALSE(token.has_value());
  EXPECT_NE(token.error().find("line 2"), std::string::npos);
  EXPECT_NE(token.error().find("unknown admit token"), std::string::npos);

  const auto knob = parse_scenario(
      "topology = chain 4 100\n"
      "admit = gizmo=3\n");
  ASSERT_FALSE(knob.has_value());
  EXPECT_NE(knob.error().find("unknown admit knob"), std::string::npos);

  const auto codec = parse_scenario(
      "topology = chain 4 100\n"
      "admit = codec=g999\n");
  EXPECT_FALSE(codec.has_value());
}

// --------------------------------------------------- custom topology lines

TEST(ScenarioParserTest, CustomTopologyBuildsDeclaredGraph) {
  const auto sc = parse_scenario(
      "topology = custom\n"
      "node 0 0 0\n"
      "node 1 100 0\n"
      "node 2 100 100\n"
      "link 0 1\n"
      "link 1 2\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  const Topology& t = sc->config.topology;
  ASSERT_EQ(t.node_count(), 3);
  EXPECT_EQ(t.graph.edge_count(), 2);
  EXPECT_TRUE(t.graph.has_edge(0, 1));
  EXPECT_TRUE(t.graph.has_edge(1, 2));
  EXPECT_FALSE(t.graph.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(t.positions[1].x, 100.0);
  EXPECT_DOUBLE_EQ(t.positions[2].y, 100.0);
}

// A parallel edge used to be an assertion failure inside Graph::add_edge —
// a crash, with the message blaming the graph library instead of the
// scenario. It must be an ordinary scenario error naming the line.
TEST(ScenarioParserTest, CustomTopologyRejectsDuplicateLinkAsError) {
  const auto sc = parse_scenario(
      "topology = custom\n"
      "node 0 0 0\n"
      "node 1 100 0\n"
      "link 0 1\n"
      "link 1 0\n"
      "voip 0 0 1 g729 100\n");
  ASSERT_FALSE(sc.has_value());
  EXPECT_NE(sc.error().find("line 5"), std::string::npos);
  EXPECT_NE(sc.error().find("duplicate link"), std::string::npos);
}

TEST(ScenarioParserTest, CustomTopologyRejectsBadDeclarations) {
  const std::string head = "topology = custom\nnode 0 0 0\nnode 1 100 0\n";
  const std::string tail = "voip 0 0 1 g729 100\n";

  const auto self_loop = parse_scenario(head + "link 1 1\n" + tail);
  ASSERT_FALSE(self_loop.has_value());
  EXPECT_NE(self_loop.error().find("self-loop"), std::string::npos);

  const auto undeclared = parse_scenario(head + "link 0 7\n" + tail);
  ASSERT_FALSE(undeclared.has_value());
  EXPECT_NE(undeclared.error().find("undeclared node"), std::string::npos);

  const auto dup_node =
      parse_scenario(head + "node 1 0 100\nlink 0 1\n" + tail);
  ASSERT_FALSE(dup_node.has_value());
  EXPECT_NE(dup_node.error().find("duplicate node id"), std::string::npos);

  // Node ids must be dense 0..N-1.
  const auto gap = parse_scenario(
      "topology = custom\nnode 0 0 0\nnode 5 100 0\nlink 0 5\n" + tail);
  ASSERT_FALSE(gap.has_value());
  EXPECT_NE(gap.error().find("out of range"), std::string::npos);

  const auto empty = parse_scenario("topology = custom\n" + tail);
  ASSERT_FALSE(empty.has_value());
  EXPECT_NE(empty.error().find("no nodes"), std::string::npos);
}

TEST(ScenarioParserTest, NodeLinkLinesRequireCustomTopology) {
  const auto sc = parse_scenario(
      "topology = chain 4 100\n"
      "node 0 0 0\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_FALSE(sc.has_value());
  EXPECT_NE(sc.error().find("line 2"), std::string::npos);
  EXPECT_NE(sc.error().find("topology = custom"), std::string::npos);
}

TEST(ScenarioParserTest, CustomTopologyActuallyRuns) {
  const auto sc = parse_scenario(
      "topology = custom\n"
      "node 0 0 0\n"
      "node 1 100 0\n"
      "node 2 200 0\n"
      "link 0 1\n"
      "link 1 2\n"
      "duration_s = 1\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  MeshNetwork net(sc->config);
  for (const FlowSpec& f : sc->flows) net.add_flow(f);
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(sc->mac, sc->duration);
  for (const FlowResult& f : r.flows) EXPECT_LT(f.stats.loss_rate(), 0.01);
}

// ------------------------------------------------- zones / event_queue keys

TEST(ScenarioParserTest, ZonesKeyParses) {
  const std::string base = "topology = grid 3 3 100\nvoip 0 8 0 g729 100\n";
  const auto off = parse_scenario(base);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->config.zones, 0);  // default: global solve
  const auto on = parse_scenario(base + "zones = 4\n");
  ASSERT_TRUE(on.has_value()) << on.error();
  EXPECT_EQ(on->config.zones, 4);
  const auto neg = parse_scenario(base + "zones = -1\n");
  ASSERT_FALSE(neg.has_value());
  EXPECT_NE(neg.error().find("zones"), std::string::npos);
}

TEST(ScenarioParserTest, EventQueueKeyParses) {
  const std::string base = "topology = chain 3 100\nvoip 0 0 2 g729 100\n";
  const auto def = parse_scenario(base);
  ASSERT_TRUE(def.has_value());
  EXPECT_EQ(def->config.event_queue, EventQueueKind::kCalendarQueue);
  const auto heap = parse_scenario(base + "event_queue = heap\n");
  ASSERT_TRUE(heap.has_value());
  EXPECT_EQ(heap->config.event_queue, EventQueueKind::kBinaryHeap);
  const auto cal = parse_scenario(base + "event_queue = calendar\n");
  ASSERT_TRUE(cal.has_value());
  EXPECT_EQ(cal->config.event_queue, EventQueueKind::kCalendarQueue);
  const auto bad = parse_scenario(base + "event_queue = skiplist\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().find("calendar|heap"), std::string::npos);
}

// A zoned scenario must plan and run end-to-end, with the zone accounting
// visible in the plan and the schedule conflict-free (audit on).
TEST(ScenarioParserTest, ZonedScenarioPlansAndRuns) {
  const auto sc = parse_scenario(
      "topology = grid 4 4 100\n"
      "zones = 4\n"
      "duration_s = 1\n"
      "audit = on\n"
      "voip 0 15 0 g729 100\n"
      "voip 2 12 3 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  MeshNetwork net(sc->config);
  for (const FlowSpec& f : sc->flows) net.add_flow(f);
  ASSERT_TRUE(net.compute_plan().has_value());
  EXPECT_EQ(net.plan().zone_count, 4);
  EXPECT_EQ(net.plan().zone_slots.size(), 4u);
  const SimulationResult r = net.run(sc->mac, sc->duration);
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_EQ(r.audit.total_violations(), 0u);
}

// ------------------------------------------------------------ radio grammar

TEST(ScenarioParserTest, RadioKeyParsesEveryKnob) {
  const auto sc = parse_scenario(
      "topology = chain 3 100\n"
      "radio = on,shadowing=4.5,fading=jakes,doppler=12,oscillators=16\n"
      "radio = txpower=20,noise=-92,capture=8,cs=-80,cutoff=-85\n"
      "radio = exponent_los=19,exponent_obstructed=22,floor_loss=15,freq=2.4\n"
      "radio = adapt=on,probe=8,ewma=0.5,seed=42\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  const auto& rc = sc->config.radio;
  EXPECT_TRUE(rc.enabled);
  EXPECT_DOUBLE_EQ(rc.shadowing_sigma_db, 4.5);
  EXPECT_EQ(rc.fading.kind, radio::FadingConfig::Kind::kJakes);
  EXPECT_DOUBLE_EQ(rc.fading.doppler_hz, 12.0);
  EXPECT_EQ(rc.fading.oscillators, 16);
  EXPECT_DOUBLE_EQ(rc.tx_power_dbm, 20.0);
  EXPECT_DOUBLE_EQ(rc.noise_floor_dbm, -92.0);
  EXPECT_DOUBLE_EQ(rc.capture_threshold_db, 8.0);
  EXPECT_DOUBLE_EQ(rc.cs_threshold_dbm, -80.0);
  EXPECT_DOUBLE_EQ(rc.interference_cutoff_dbm, -85.0);
  EXPECT_DOUBLE_EQ(rc.propagation.exponent_los, 19.0);
  EXPECT_DOUBLE_EQ(rc.propagation.exponent_obstructed, 22.0);
  EXPECT_DOUBLE_EQ(rc.propagation.floor_loss_db, 15.0);
  EXPECT_DOUBLE_EQ(rc.propagation.frequency_ghz, 2.4);
  EXPECT_TRUE(rc.rate_adapt.enabled);
  EXPECT_EQ(rc.rate_adapt.probe_interval, 8);
  EXPECT_DOUBLE_EQ(rc.rate_adapt.ewma_alpha, 0.5);
  EXPECT_EQ(rc.seed, 42u);
}

TEST(ScenarioParserTest, RadioDefaultsOffAndProtocolKeepsItOff) {
  const auto off = parse_scenario(kMinimal);
  ASSERT_TRUE(off.has_value()) << off.error();
  EXPECT_FALSE(off->config.radio.enabled);

  const auto protocol = parse_scenario(
      "topology = chain 4 100\n"
      "radio = model=protocol,shadowing=3\n"
      "voip 0 0 3 g729 100\n");
  ASSERT_TRUE(protocol.has_value()) << protocol.error();
  EXPECT_FALSE(protocol->config.radio.enabled);
  // The knob still landed (a later 'radio = on' line would use it).
  EXPECT_DOUBLE_EQ(protocol->config.radio.shadowing_sigma_db, 3.0);
}

TEST(ScenarioParserTest, WallAndFloorLinesParse) {
  const auto sc = parse_scenario(
      "topology = chain 3 100\n"
      "radio = on\n"
      "wall 50 -10 50 10\n"
      "wall 150 -10 150 10 7.5\n"
      "floor 1 1\n"
      "floor 2 2\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_TRUE(sc.has_value()) << sc.error();
  const auto& walls = sc->config.radio.propagation.walls;
  ASSERT_EQ(walls.size(), 2u);
  EXPECT_DOUBLE_EQ(walls[0].a.x, 50.0);
  EXPECT_DOUBLE_EQ(walls[0].loss_db, 12.0);  // default
  EXPECT_DOUBLE_EQ(walls[1].loss_db, 7.5);
  ASSERT_EQ(sc->config.radio.floors.size(), 3u);
  EXPECT_EQ(sc->config.radio.floors[0], 0);  // undeclared -> ground floor
  EXPECT_EQ(sc->config.radio.floors[1], 1);
  EXPECT_EQ(sc->config.radio.floors[2], 2);
}

TEST(ScenarioParserTest, BadRadioTokensNameTheLine) {
  auto bad_model = parse_scenario(
      "topology = chain 3 100\n"
      "radio = model=quantum\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(bad_model.has_value());
  EXPECT_NE(bad_model.error().find("line 2"), std::string::npos)
      << bad_model.error();
  EXPECT_NE(bad_model.error().find("quantum"), std::string::npos);

  auto neg_shadow = parse_scenario(
      "topology = chain 3 100\n"
      "radio = shadowing=-2\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(neg_shadow.has_value());
  EXPECT_NE(neg_shadow.error().find("shadowing"), std::string::npos)
      << neg_shadow.error();

  auto unknown_knob = parse_scenario(
      "topology = chain 3 100\n"
      "radio = gain=3\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(unknown_knob.has_value());
  EXPECT_NE(unknown_knob.error().find("unknown radio knob"),
            std::string::npos)
      << unknown_knob.error();

  auto bad_ewma = parse_scenario(
      "topology = chain 3 100\n"
      "radio = ewma=1.5\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(bad_ewma.has_value());
  EXPECT_NE(bad_ewma.error().find("ewma"), std::string::npos)
      << bad_ewma.error();
}

TEST(ScenarioParserTest, RadioRangeAndWallValidationNameTheProblem) {
  // interference_range < comm_range: caught for every scenario via
  // RadioModel::try_make, radio line or not.
  auto inverted = parse_scenario(
      "topology = chain 3 100\n"
      "comm_range = 200\n"
      "interference_range = 100\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(inverted.has_value());
  EXPECT_NE(inverted.error().find("radio ranges:"), std::string::npos)
      << inverted.error();
  EXPECT_NE(inverted.error().find("interference_range"), std::string::npos);

  // Zero-length wall: caught post-parse via Propagation::try_make.
  auto degenerate = parse_scenario(
      "topology = chain 3 100\n"
      "radio = on\n"
      "wall 5 5 5 5\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(degenerate.has_value());
  EXPECT_NE(degenerate.error().find("radio: wall 1"), std::string::npos)
      << degenerate.error();
}

TEST(ScenarioParserTest, FloorForUndeclaredNodeIsAnError) {
  auto bad = parse_scenario(
      "topology = chain 3 100\n"
      "radio = on\n"
      "floor 7 1\n"
      "voip 0 0 2 g729 100\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().find("line 3"), std::string::npos) << bad.error();
  EXPECT_NE(bad.error().find("7"), std::string::npos) << bad.error();
}

}  // namespace
}  // namespace wimesh
