// wimesh::zones tests: partition determinism and coverage, conflict-free
// composition, degenerate single-zone equivalence with the global search,
// and worker-count invariance of the composed schedule.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wimesh/common/strings.h"
#include "wimesh/graph/topology.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/sched/scheduler.h"
#include "wimesh/zones/zones.h"

namespace wimesh {
namespace {

IlpSchedulerOptions deterministic_options() {
  // Wall-clock limits make results depend on machine load; only the node
  // budget may bound these solves (same rationale as the golden tests).
  IlpSchedulerOptions opt;
  opt.time_limit_seconds = 600.0;
  return opt;
}

// Row flows across an R x C grid (each row's nodes right-to-left), unit
// demand per hop — enough cross-zone structure that a vertical-cut
// partition produces genuine border links.
SchedulingProblem grid_row_problem(NodeId rows, NodeId cols,
                                   const Topology& topo) {
  SchedulingProblem p;
  for (NodeId r = 0; r < rows; ++r) {
    FlowPath flow;
    flow.delay_budget_frames = 2;
    for (NodeId c = cols - 1; c > 0; --c) {
      flow.links.push_back(
          p.links.add({r * cols + c, r * cols + c - 1}));
    }
    p.flows.push_back(flow);
  }
  p.demand.assign(static_cast<std::size_t>(p.links.count()), 1);
  p.conflicts =
      build_conflict_graph(p.links, topo.positions, RadioModel(110.0, 220.0));
  return p;
}

// Chain-6 with two opposite end-to-end flows (the golden tests' pattern).
SchedulingProblem chain6_problem(const Topology& topo) {
  SchedulingProblem p;
  FlowPath down, up;
  down.delay_budget_frames = 1;
  up.delay_budget_frames = 1;
  for (NodeId n = 0; n < 5; ++n) down.links.push_back(p.links.add({n, n + 1}));
  for (NodeId n = 5; n > 0; --n) up.links.push_back(p.links.add({n, n - 1}));
  p.demand.assign(static_cast<std::size_t>(p.links.count()), 2);
  p.flows.push_back(down);
  p.flows.push_back(up);
  p.conflicts =
      build_conflict_graph(p.links, topo.positions, RadioModel(110.0, 220.0));
  return p;
}

std::string render(const SchedulingProblem& p, const MeshSchedule& s) {
  std::string out;
  for (LinkId l = 0; l < p.links.count(); ++l) {
    if (p.demand[static_cast<std::size_t>(l)] == 0) continue;
    const auto g = s.grant(l);
    out += str_cat("l", l, ":");
    out += g.has_value() ? str_cat(g->start, "+", g->length) : "none";
    out += " ";
  }
  return out;
}

TEST(ZonePartitionTest, CoversEveryNodeWithExactlyKZones) {
  const Topology topo = make_grid(6, 6, 100.0);
  const zones::ZonePartition part = zones::partition_zones(topo.graph, 4);
  ASSERT_EQ(part.zone_count, 4);
  ASSERT_EQ(part.zone_of_node.size(), 36u);
  std::vector<int> population(4, 0);
  for (const int z : part.zone_of_node) {
    ASSERT_GE(z, 0);
    ASSERT_LT(z, 4);
    ++population[static_cast<std::size_t>(z)];
  }
  for (const int n : population) EXPECT_EQ(n, 9);  // 36 nodes, even split
}

TEST(ZonePartitionTest, IsDeterministic) {
  const Topology topo = make_grid(7, 5, 100.0);
  const zones::ZonePartition a = zones::partition_zones(topo.graph, 3);
  const zones::ZonePartition b = zones::partition_zones(topo.graph, 3);
  EXPECT_EQ(a.zone_of_node, b.zone_of_node);
}

TEST(ZonePartitionTest, ClampsZoneCountToNodeCount) {
  const Topology topo = make_chain(4, 100.0);
  const zones::ZonePartition many = zones::partition_zones(topo.graph, 100);
  EXPECT_EQ(many.zone_count, 4);  // one node per zone
  const zones::ZonePartition one = zones::partition_zones(topo.graph, 1);
  EXPECT_EQ(one.zone_count, 1);
  for (const int z : one.zone_of_node) EXPECT_EQ(z, 0);
}

TEST(ZonedScheduleTest, ComposedScheduleIsConflictFree) {
  const Topology topo = make_grid(6, 6, 100.0);
  const SchedulingProblem p = grid_row_problem(6, 6, topo);
  const zones::ZonePartition part = zones::partition_zones(topo.graph, 4);
  zones::ZoneOptions opt;
  opt.zone_count = 4;
  opt.ilp = deterministic_options();
  const auto r = zones::schedule_zoned(p, part, 96, opt);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_LE(r->frame_slots, 96);
  // Per-link accounting is self-consistent.
  ASSERT_EQ(r->zone_of_link.size(), static_cast<std::size_t>(p.links.count()));
  ASSERT_EQ(r->border_link.size(), static_cast<std::size_t>(p.links.count()));
  int borders = 0;
  for (LinkId l = 0; l < p.links.count(); ++l) {
    EXPECT_EQ(r->zone_of_link[static_cast<std::size_t>(l)],
              part.zone_of_node[static_cast<std::size_t>(p.links.link(l).from)]);
    if (r->border_link[static_cast<std::size_t>(l)]) ++borders;
  }
  EXPECT_EQ(borders, r->border_links);
  // A vertical/horizontal cut of a grid with row flows must produce at
  // least one genuine border link, or the test is not exercising phase 2.
  EXPECT_GT(r->border_links, 0);
  ASSERT_EQ(r->zones.size(), 4u);
}

TEST(ZonedScheduleTest, SingleZoneMatchesGlobalSearch) {
  const Topology topo = make_chain(6, 100.0);
  const SchedulingProblem p = chain6_problem(topo);
  const IlpSchedulerOptions ilp = deterministic_options();

  const auto global = min_slots_search(p, 48, ilp);
  ASSERT_TRUE(global.has_value()) << global.error();

  const zones::ZonePartition part = zones::partition_zones(topo.graph, 1);
  zones::ZoneOptions opt;
  opt.zone_count = 1;
  opt.ilp = ilp;
  const auto zoned = zones::schedule_zoned(p, part, 48, opt);
  ASSERT_TRUE(zoned.has_value()) << zoned.error();

  // One zone means phase 1 IS the global search and phase 2 has nothing to
  // move: the composed schedule must be grant-for-grant identical.
  EXPECT_EQ(render(p, zoned->schedule), render(p, global->result.schedule));
  EXPECT_EQ(zoned->frame_slots, global->frame_slots);
  EXPECT_EQ(zoned->border_links, 0);
  EXPECT_EQ(zoned->relocated_border_links, 0);
  EXPECT_EQ(zoned->proven_minimal, global->proven_minimal);
}

TEST(ZonedScheduleTest, ResultIsInvariantAcrossWorkerCounts) {
  const Topology topo = make_grid(6, 6, 100.0);
  const SchedulingProblem p = grid_row_problem(6, 6, topo);
  const zones::ZonePartition part = zones::partition_zones(topo.graph, 4);
  const auto solve = [&](int jobs) {
    zones::ZoneOptions opt;
    opt.zone_count = 4;
    opt.jobs = jobs;
    opt.ilp = deterministic_options();
    const auto r = zones::schedule_zoned(p, part, 96, opt);
    EXPECT_TRUE(r.has_value()) << (r.has_value() ? "" : r.error());
    return r.has_value() ? render(p, r->schedule) : std::string();
  };
  const std::string serial = solve(1);
  EXPECT_EQ(solve(4), serial);
  EXPECT_EQ(solve(8), serial);
}

TEST(ZonedScheduleTest, TightCapReportsTypedError) {
  const Topology topo = make_grid(6, 6, 100.0);
  const SchedulingProblem p = grid_row_problem(6, 6, topo);
  const zones::ZonePartition part = zones::partition_zones(topo.graph, 4);
  zones::ZoneOptions opt;
  opt.zone_count = 4;
  opt.ilp = deterministic_options();
  // Each row alone needs 5 slots of mutually-conflicting demand; 2 slots
  // cannot fit any zone. The error must be a value, not a crash.
  const auto r = zones::schedule_zoned(p, part, 2, opt);
  ASSERT_FALSE(r.has_value());
  EXPECT_FALSE(r.error().empty());
}

}  // namespace
}  // namespace wimesh
