// Golden-schedule regression tests: the exact grant tables produced by
// each scheduler on two canonical problems are pinned byte-for-byte. The
// schedulers are deterministic, so any change to these outputs is either a
// deliberate algorithm change (update the goldens, explain why in the
// commit) or an accidental behaviour change (a real regression). The
// batch runner's cross-run memoization relies on this determinism: a
// cache hit must be indistinguishable from a fresh solve.

#include <gtest/gtest.h>

#include <string>

#include "wimesh/common/strings.h"
#include "wimesh/graph/topology.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/sched/schedule_cache.h"
#include "wimesh/sched/scheduler.h"

namespace wimesh {
namespace {

constexpr int kFrameSlots = 48;

// The default wall-clock ILP limit makes results depend on machine load
// (a loaded CI box could hit it mid-solve and change the schedule); golden
// tests must be a pure function of the problem, so only the deterministic
// node budget may bound the search here.
IlpSchedulerOptions golden_options() {
  IlpSchedulerOptions opt;
  opt.time_limit_seconds = 600.0;
  return opt;
}

// Chain-6 gateway pattern: two opposite end-to-end flows, 2 slots/hop each
// direction, tight budget — exercises spatial reuse and wrap accounting.
SchedulingProblem chain6_problem() {
  const Topology topo = make_chain(6, 100.0);
  SchedulingProblem p;
  FlowPath down, up;
  down.delay_budget_frames = 1;
  up.delay_budget_frames = 1;
  for (NodeId n = 0; n < 5; ++n) {
    down.links.push_back(p.links.add({n, n + 1}));
  }
  for (NodeId n = 5; n > 0; --n) {
    up.links.push_back(p.links.add({n, n - 1}));
  }
  p.demand.assign(static_cast<std::size_t>(p.links.count()), 2);
  p.flows.push_back(down);
  p.flows.push_back(up);
  p.conflicts =
      build_conflict_graph(p.links, topo.positions, RadioModel(110.0, 220.0));
  return p;
}

// Grid-3x3 gateway pattern: a 4-hop flow from the far corner and a 2-hop
// flow along the top row, mixed demands and budgets.
SchedulingProblem grid3x3_problem() {
  const Topology topo = make_grid(3, 3, 100.0);
  SchedulingProblem p;
  FlowPath corner, edge;
  corner.delay_budget_frames = 2;
  edge.delay_budget_frames = 0;
  const NodeId corner_path[] = {8, 7, 6, 3, 0};  // bottom row, left column
  for (std::size_t i = 1; i < std::size(corner_path); ++i) {
    corner.links.push_back(
        p.links.add({corner_path[i - 1], corner_path[i]}));
  }
  const NodeId edge_path[] = {2, 1, 0};  // along the top row
  for (std::size_t i = 1; i < std::size(edge_path); ++i) {
    edge.links.push_back(p.links.add({edge_path[i - 1], edge_path[i]}));
  }
  p.demand.assign(static_cast<std::size_t>(p.links.count()), 0);
  for (LinkId l : corner.links) p.demand[static_cast<std::size_t>(l)] = 1;
  for (LinkId l : edge.links) p.demand[static_cast<std::size_t>(l)] = 3;
  p.flows.push_back(corner);
  p.flows.push_back(edge);
  p.conflicts =
      build_conflict_graph(p.links, topo.positions, RadioModel(110.0, 220.0));
  return p;
}

// Canonical text form of a schedule: per-link "id:start+length" for every
// demanded link, then per-flow wrap counts. This is what the goldens pin.
std::string render(const SchedulingProblem& p, const MeshSchedule& s) {
  std::string out;
  for (LinkId l = 0; l < p.links.count(); ++l) {
    if (p.demand[static_cast<std::size_t>(l)] == 0) continue;
    const auto g = s.grant(l);
    out += str_cat("l", l, ":");
    out += g.has_value() ? str_cat(g->start, "+", g->length) : "none";
    out += " ";
  }
  out += "| wraps";
  for (const FlowPath& f : p.flows) {
    out += str_cat(" ", count_frame_wraps(s, f));
  }
  return out;
}

TEST(GoldenSchedule, GreedyChain6) {
  const SchedulingProblem p = chain6_problem();
  const auto r = schedule_greedy(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_EQ(render(p, r->schedule), "l0:0+2 l1:2+2 l2:4+2 l3:6+2 l4:0+2 l5:8+2 l6:10+2 l7:12+2 l8:14+2 l9:8+2 | wraps 1 1");
}

TEST(GoldenSchedule, RoundRobinChain6) {
  const SchedulingProblem p = chain6_problem();
  const auto r = schedule_round_robin(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_EQ(render(p, r->schedule), "l0:0+2 l1:2+2 l2:4+2 l3:6+2 l4:8+2 l5:10+2 l6:12+2 l7:14+2 l8:16+2 l9:18+2 | wraps 0 0");
}

TEST(GoldenSchedule, IlpChain6) {
  const SchedulingProblem p = chain6_problem();
  const auto r = schedule_ilp(p, kFrameSlots, golden_options());
  ASSERT_TRUE(r.has_value()) << r.error();
  ASSERT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_TRUE(budgets_satisfied(p, r->schedule));
  // Pinned output of the tree-topology fast path: the chain's undirected
  // support is a path, so the canonical monotone order schedules both
  // end-to-end flows wrap-free (strictly better than the old B&B pick,
  // which wrapped each flow once).
  EXPECT_TRUE(r->used_tree_fast_path);
  EXPECT_EQ(render(p, r->schedule), "l0:10+2 l1:12+2 l2:14+2 l3:16+2 l4:18+2 l5:0+2 l6:2+2 l7:4+2 l8:6+2 l9:8+2 | wraps 0 0");
}

TEST(GoldenSchedule, GreedyGrid3x3) {
  const SchedulingProblem p = grid3x3_problem();
  const auto r = schedule_greedy(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_EQ(render(p, r->schedule), "l0:6+1 l1:7+1 l2:8+1 l3:9+1 l4:0+3 l5:3+3 | wraps 0 0");
}

TEST(GoldenSchedule, RoundRobinGrid3x3) {
  const SchedulingProblem p = grid3x3_problem();
  const auto r = schedule_round_robin(p, kFrameSlots);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_EQ(render(p, r->schedule), "l0:0+1 l1:1+1 l2:2+1 l3:3+1 l4:4+3 l5:7+3 | wraps 0 0");
}

TEST(GoldenSchedule, IlpGrid3x3) {
  const SchedulingProblem p = grid3x3_problem();
  const auto r = schedule_ilp(p, kFrameSlots, golden_options());
  ASSERT_TRUE(r.has_value()) << r.error();
  ASSERT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_TRUE(budgets_satisfied(p, r->schedule));
  // The two routed paths' support is a tree, so the fast path applies and
  // eliminates the corner flow's two wraps.
  EXPECT_TRUE(r->used_tree_fast_path);
  EXPECT_EQ(render(p, r->schedule), "l0:0+1 l1:1+1 l2:2+1 l3:6+1 l4:3+3 l5:7+3 | wraps 0 0");
}

// A cache hit must reproduce the solver's grants exactly — same key, same
// rendered schedule, one computation.
TEST(GoldenSchedule, CacheHitReproducesSolve) {
  const SchedulingProblem p = chain6_problem();
  const IlpSchedulerOptions options = golden_options();
  ScheduleCache cache;
  const std::string key = schedule_cache_key(p, kFrameSlots, 0, 0, options);
  int computed = 0;
  auto solve = [&] {
    ++computed;
    CachedSchedule out;
    const auto r = schedule_ilp(p, kFrameSlots, options);
    out.feasible = r.has_value();
    if (r.has_value()) out.schedule = r->schedule;
    return out;
  };
  const CachedSchedule first = cache.get_or_compute(key, solve);
  const CachedSchedule second = cache.get_or_compute(key, solve);
  ASSERT_TRUE(first.feasible);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(render(p, first.schedule), render(p, second.schedule));
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different policy tag or a different problem must change the key.
  EXPECT_NE(key, schedule_cache_key(p, kFrameSlots, 1, 0, options));
  EXPECT_NE(key, schedule_cache_key(grid3x3_problem(), kFrameSlots, 0, 0,
                                    options));
  EXPECT_NE(key, schedule_cache_key(p, kFrameSlots + 1, 0, 0, options));
}

}  // namespace
}  // namespace wimesh
