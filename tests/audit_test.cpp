#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wimesh/batch/runner.h"
#include "wimesh/core/mesh_network.h"

namespace wimesh {
namespace {

MeshConfig chain_config(NodeId n) {
  MeshConfig cfg;
  cfg.topology = make_chain(n, 100.0);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(10);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 96;
  return cfg;
}

bool ledger_balanced(const audit::AuditReport& a) {
  return a.packets_created ==
         a.packets_delivered + a.packets_dropped + a.packets_residual;
}

// Every link gets the same minislot block: hidden-terminal pairs (two hops
// apart, outside carrier sense but inside interference range) then transmit
// concurrently, which the conflict monitor must flag.
MeshSchedule double_booked_schedule(const MeshNetwork& net, int data_slots) {
  const LinkSet& links = net.plan().links;
  MeshSchedule sched(links, data_slots);
  for (LinkId l = 0; l < static_cast<LinkId>(links.count()); ++l) {
    sched.set_grant(l, SlotRange{0, 16});
  }
  return sched;
}

TEST(AuditTest, DisabledByDefaultAndReportsNothing) {
  MeshConfig cfg = chain_config(4);
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(1));
  EXPECT_FALSE(r.audit.enabled);
  EXPECT_EQ(r.audit.packets_created, 0u);
  EXPECT_EQ(r.audit.total_violations(), 0u);
}

TEST(AuditTest, CleanTdmaRunHasZeroViolationsAndBalancedLedger) {
  MeshConfig cfg = chain_config(4);
  cfg.audit = true;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  net.add_flow(FlowSpec::best_effort(50, 3, 0, 1000, 2e6));
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(3));
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  EXPECT_GT(r.audit.packets_created, 0u);
  EXPECT_GT(r.audit.packets_delivered, 0u);
  EXPECT_TRUE(ledger_balanced(r.audit)) << r.audit.summary();
}

TEST(AuditTest, ObservationDoesNotPerturbResults) {
  auto run = [](bool audit) {
    MeshConfig cfg = chain_config(4);
    cfg.audit = audit;
    MeshNetwork net(cfg);
    net.add_voip_call(0, 0, 3, VoipCodec::g711());
    net.add_flow(FlowSpec::best_effort(50, 0, 3, 1200, 2e6));
    WIMESH_ASSERT(net.compute_plan().has_value());
    const SimulationResult r =
        net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
    return std::make_tuple(r.flows[0].stats.delivered_packets(),
                           r.flows[0].stats.delays_ms().mean(),
                           r.frames_transmitted, r.receptions_corrupted);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(AuditTest, DoubleBookedScheduleTripsConflictMonitor) {
  MeshConfig cfg = chain_config(4);
  cfg.audit = true;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g711());
  ASSERT_TRUE(net.compute_plan().has_value());
  net.override_schedule(
      double_booked_schedule(net, cfg.emulation.frame.data_slots));
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_GT(r.audit.count(audit::ViolationKind::kScheduleConflict), 0u)
      << r.audit.summary();
  // Records carry debuggable context for at least the first conflicts.
  ASSERT_FALSE(r.audit.records.empty());
  bool found = false;
  for (const auto& rec : r.audit.records) {
    if (rec.kind != audit::ViolationKind::kScheduleConflict) continue;
    found = true;
    EXPECT_NE(rec.link, kInvalidLink);
    EXPECT_GT(rec.magnitude_ns, 0);
    EXPECT_FALSE(rec.detail.empty());
  }
  EXPECT_TRUE(found);
}

TEST(AuditTest, UndersizedGuardTripsSlotMonitor) {
  MeshConfig cfg = chain_config(4);
  cfg.audit = true;
  // Clocks far sloppier than the guard can absorb: the overlay releases
  // frames outside their nominal minislot windows.
  cfg.auto_guard = false;
  cfg.emulation.guard_time = SimTime::microseconds(1);
  cfg.sync.per_hop_error_stddev = SimTime::microseconds(150);
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g711());
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_GT(r.audit.count(audit::ViolationKind::kSlotOverrun), 0u)
      << r.audit.summary();
  EXPECT_TRUE(ledger_balanced(r.audit)) << r.audit.summary();
}

TEST(AuditTest, LossyDcfKeepsLedgerBalancedWithTypedRetryDrops) {
  MeshConfig cfg = chain_config(3);
  cfg.audit = true;
  cfg.packet_error_rate = 0.5;  // retry exhaustion ~10% per hop attempt
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 2, VoipCodec::g711());
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(MacMode::kDcf, SimTime::seconds(2));
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  EXPECT_GT(r.audit.drop_count(audit::DropReason::kRetryExhausted), 0u);
  EXPECT_GT(r.audit.packets_delivered, 0u);
  EXPECT_TRUE(ledger_balanced(r.audit)) << r.audit.summary();
}

TEST(AuditTest, BestEffortOverflowIsATypedDropNotALeak) {
  MeshConfig cfg = chain_config(4);
  cfg.audit = true;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  // Saturating best-effort: far beyond the leftover-slot capacity, so the
  // overlay's drop-tail queue must overflow.
  net.add_flow(FlowSpec::best_effort(50, 0, 3, 1200, 8e6));
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
  ASSERT_TRUE(r.audit.enabled);
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  EXPECT_GT(r.audit.drop_count(audit::DropReason::kBestEffortOverflow), 0u);
  EXPECT_TRUE(ledger_balanced(r.audit)) << r.audit.summary();
}

TEST(AuditDeathTest, FailFastAbortsOnFirstViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MeshConfig cfg = chain_config(4);
  cfg.audit = true;
  cfg.audit_fail_fast = true;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g711());
  ASSERT_TRUE(net.compute_plan().has_value());
  net.override_schedule(
      double_booked_schedule(net, cfg.emulation.frame.data_slots));
  EXPECT_DEATH(net.run(MacMode::kTdmaOverlay, SimTime::seconds(2)),
               "audit violation");
}

TEST(AuditTest, AuditedSweepIsBitIdenticalAcrossJobs) {
  Scenario base;
  base.config = chain_config(4);
  base.config.audit = true;
  base.config.seed = 42;
  base.flows.push_back(FlowSpec::voip(0, 0, 3, VoipCodec::g729()));
  base.flows.push_back(FlowSpec::voip(1, 3, 0, VoipCodec::g729()));
  base.mac = MacMode::kTdmaOverlay;
  base.duration = SimTime::seconds(1);
  const auto specs = batch::seed_sweep(base, 0, 3);

  batch::BatchOptions serial;
  serial.jobs = 1;
  batch::BatchOptions threaded;
  threaded.jobs = 4;
  const std::string a = batch::results_json(batch::run_batch(specs, serial));
  const std::string b = batch::results_json(batch::run_batch(specs, threaded));
  EXPECT_EQ(a, b);
  // The audit block is present and clean in the serialized output.
  EXPECT_NE(a.find("\"audit\""), std::string::npos);
  EXPECT_NE(a.find("\"schedule_conflict\":0"), std::string::npos);
  EXPECT_NE(a.find("\"packet_leak\":0"), std::string::npos);
}

}  // namespace
}  // namespace wimesh
