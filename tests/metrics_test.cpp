#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "wimesh/common/rng.h"
#include "wimesh/metrics/flow_stats.h"
#include "wimesh/metrics/stats.h"

namespace wimesh {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleSampleVarianceIsZero) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, MatchesNaiveComputationOnRandomData) {
  Rng rng(4242);
  RunningStat s;
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(rng.uniform(-50.0, 50.0));
    s.add(data.back());
  }
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= static_cast<double>(data.size());
  double var = 0.0;
  for (double v : data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(data.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 1.5);  // interpolated
}

TEST(SampleSetTest, UnsortedInsertOrderIrrelevant) {
  SampleSet a, b;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) a.add(v);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(v);
  EXPECT_DOUBLE_EQ(a.median(), b.median());
  EXPECT_DOUBLE_EQ(a.quantile(0.9), b.quantile(0.9));
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(SampleSetTest, CdfMonotoneAndCorrect) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  const auto cdf = s.cdf({0.0, 5.0, 5.5, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);
  EXPECT_DOUBLE_EQ(cdf[2], 0.5);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
}

TEST(SampleSetTest, AddAfterQuantileStillCorrect) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  s.add(0.0);  // resorting must kick in
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(SampleSetTest, SamplesStayInInsertionOrderAfterQuantile) {
  SampleSet s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);  // builds the sorted cache
  const std::vector<double> expected = {5.0, 1.0, 3.0};
  EXPECT_EQ(s.samples(), expected);  // insertion order untouched
}

TEST(SampleSetTest, CopyAndAssignCarrySamples) {
  SampleSet a;
  for (double v : {4.0, 2.0, 6.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.median(), 4.0);
  SampleSet b(a);  // copy after the cache was built
  EXPECT_DOUBLE_EQ(b.median(), 4.0);
  SampleSet c;
  c.add(99.0);
  c = a;
  EXPECT_DOUBLE_EQ(c.median(), 4.0);
  EXPECT_EQ(c.count(), 3u);
}

// Regression for the const_cast lazy-sort data race: concurrent const
// readers on one shared SampleSet (the parallel batch aggregation pattern)
// must be safe and agree. Run under -DWIMESH_SANITIZE=thread to prove it.
TEST(SampleSetTest, ConcurrentQuantileReadersAgree) {
  SampleSet s;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) s.add(rng.uniform(0.0, 100.0));
  const double expected = s.quantile(0.5);

  SampleSet shared;
  for (double v : s.samples()) shared.add(v);  // cache not yet built
  constexpr int kReaders = 8;
  std::vector<double> medians(kReaders, 0.0);
  {
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&shared, &medians, r] {
        medians[static_cast<std::size_t>(r)] = shared.quantile(0.5);
      });
    }
    for (auto& t : readers) t.join();
  }
  for (double m : medians) EXPECT_DOUBLE_EQ(m, expected);
}

TEST(HistogramTest, BinsAndOutOfRangeCounters) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // underflow, not bin 0
  h.add(42.0);   // overflow, not bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lower(5), 5.0);
}

TEST(HistogramTest, EdgeValuesLandInEdgeBinsNotCounters) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);  // inclusive lower edge: bin 0
  h.add(9.999999);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, CsvHasOneRowPerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const auto csv = h.to_csv();
  EXPECT_NE(csv.find("0.000000,1"), std::string::npos);
  EXPECT_NE(csv.find("1.000000,0"), std::string::npos);
  // In-range-only histograms keep the legacy two-row shape.
  EXPECT_EQ(csv.find("underflow"), std::string::npos);
  EXPECT_EQ(csv.find("overflow"), std::string::npos);
}

TEST(HistogramTest, CsvReportsOutOfRangeRows) {
  Histogram h(0.0, 2.0, 2);
  h.add(-1.0);
  h.add(3.0);
  h.add(3.5);
  const auto csv = h.to_csv();
  EXPECT_NE(csv.find("underflow,1"), std::string::npos);
  EXPECT_NE(csv.find("overflow,2"), std::string::npos);
}

TEST(FlowStatsTest, CountsAndLoss) {
  FlowStats f;
  for (int i = 0; i < 10; ++i) f.on_sent(100);
  for (int i = 0; i < 8; ++i) {
    f.on_delivered(100, SimTime::milliseconds(5));
  }
  EXPECT_EQ(f.sent_packets(), 10u);
  EXPECT_EQ(f.delivered_packets(), 8u);
  EXPECT_NEAR(f.loss_rate(), 0.2, 1e-12);
  EXPECT_EQ(f.delivered_bytes(), 800u);
}

TEST(FlowStatsTest, ThroughputOverInterval) {
  FlowStats f;
  f.on_sent(1000);
  f.on_delivered(1000, SimTime::milliseconds(1));
  // 1000 bytes in 1 second = 8000 bps.
  EXPECT_DOUBLE_EQ(f.throughput_bps(SimTime::seconds(1)), 8000.0);
  EXPECT_DOUBLE_EQ(f.throughput_bps(SimTime::zero()), 0.0);
}

TEST(FlowStatsTest, DelayAndJitter) {
  FlowStats f;
  f.on_sent(100);
  f.on_sent(100);
  f.on_sent(100);
  f.on_delivered(100, SimTime::milliseconds(10));
  f.on_delivered(100, SimTime::milliseconds(14));
  f.on_delivered(100, SimTime::milliseconds(12));
  EXPECT_DOUBLE_EQ(f.delays_ms().mean(), 12.0);
  // Jitter samples: |14-10| = 4, |12-14| = 2 → mean 3.
  EXPECT_DOUBLE_EQ(f.mean_jitter_ms(), 3.0);
}

TEST(FlowStatsTest, NoTrafficMeansZeroLoss) {
  FlowStats f;
  EXPECT_DOUBLE_EQ(f.loss_rate(), 0.0);
}

}  // namespace
}  // namespace wimesh
