#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "wimesh/traffic/sources.h"

namespace wimesh {
namespace {

TEST(VoipCodecTest, StandardRates) {
  const VoipCodec g711 = VoipCodec::g711();
  EXPECT_EQ(g711.packet_bytes(), 200u);  // 160 + 40
  EXPECT_NEAR(g711.rate_bps(), 80'000.0, 1.0);  // classic 80 kbps on-wire

  const VoipCodec g729 = VoipCodec::g729();
  EXPECT_EQ(g729.packet_bytes(), 60u);  // 20 + 40
  EXPECT_NEAR(g729.rate_bps(), 24'000.0, 1.0);

  const VoipCodec g723 = VoipCodec::g723();
  EXPECT_EQ(g723.packet_bytes(), 64u);
  EXPECT_NEAR(g723.rate_bps(), 64.0 * 8.0 / 0.030, 1.0);
}

TEST(CbrSourceTest, EmitsAtExactInterval) {
  Simulator sim;
  std::vector<SimTime> stamps;
  CbrSource src(sim, 1, [&](MacPacket p) {
    stamps.push_back(p.created_at);
    EXPECT_EQ(p.bytes, 100u);
    EXPECT_EQ(p.flow_id, 1);
  }, 100, SimTime::milliseconds(20));
  src.start(SimTime::zero(), SimTime::seconds(1));
  sim.run_all();
  ASSERT_EQ(stamps.size(), 50u);  // 0, 20, …, 980 ms
  EXPECT_EQ(src.packets_emitted(), 50u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_EQ((stamps[i] - stamps[i - 1]), SimTime::milliseconds(20));
  }
}

TEST(CbrSourceTest, PhaseShiftsFirstPacket) {
  Simulator sim;
  std::vector<SimTime> stamps;
  CbrSource src(sim, 1, [&](MacPacket p) { stamps.push_back(p.created_at); },
                100, SimTime::milliseconds(20), SimTime::milliseconds(7));
  src.start(SimTime::zero(), SimTime::milliseconds(100));
  sim.run_all();
  ASSERT_FALSE(stamps.empty());
  EXPECT_EQ(stamps[0], SimTime::milliseconds(7));
}

TEST(CbrSourceTest, StopsAtStopTime) {
  Simulator sim;
  int count = 0;
  CbrSource src(sim, 1, [&](MacPacket) { ++count; }, 100,
                SimTime::milliseconds(10));
  src.start(SimTime::zero(), SimTime::milliseconds(35));
  sim.run_all();
  EXPECT_EQ(count, 4);  // 0, 10, 20, 30 ms
}

TEST(CbrSourceTest, VoipFactoryUsesCodec) {
  Simulator sim;
  std::vector<MacPacket> pkts;
  auto src = CbrSource::voip(sim, 3, [&](MacPacket p) { pkts.push_back(p); },
                             VoipCodec::g729());
  src->start(SimTime::zero(), SimTime::milliseconds(100));
  sim.run_all();
  ASSERT_EQ(pkts.size(), 5u);
  EXPECT_EQ(pkts[0].bytes, 60u);
}

TEST(TrafficTest, PacketIdsAreUnique) {
  Simulator sim;
  std::vector<std::uint64_t> ids;
  CbrSource a(sim, 1, [&](MacPacket p) { ids.push_back(p.id); }, 100,
              SimTime::milliseconds(10));
  CbrSource b(sim, 2, [&](MacPacket p) { ids.push_back(p.id); }, 100,
              SimTime::milliseconds(10));
  a.start(SimTime::zero(), SimTime::milliseconds(100));
  b.start(SimTime::zero(), SimTime::milliseconds(100));
  sim.run_all();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(PoissonSourceTest, MeanRateMatches) {
  Simulator sim;
  std::uint64_t bytes = 0;
  PoissonSource src(sim, 1, [&](MacPacket p) { bytes += p.bytes; }, 500,
                    1e6, Rng(42));  // 1 Mbps of 500 B packets
  src.start(SimTime::zero(), SimTime::seconds(50));
  sim.run_all();
  const double rate = static_cast<double>(bytes) * 8.0 / 50.0;
  EXPECT_NEAR(rate, 1e6, 5e4);  // within 5%
}

TEST(PoissonSourceTest, InterarrivalsAreVariable) {
  Simulator sim;
  std::vector<SimTime> stamps;
  PoissonSource src(sim, 1, [&](MacPacket p) { stamps.push_back(p.created_at); },
                    500, 1e6, Rng(43));
  src.start(SimTime::zero(), SimTime::seconds(1));
  sim.run_all();
  ASSERT_GT(stamps.size(), 10u);
  bool all_equal = true;
  for (std::size_t i = 2; i < stamps.size(); ++i) {
    if (stamps[i] - stamps[i - 1] != stamps[1] - stamps[0]) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(OnOffSourceTest, RespectsMeanRateRoughly) {
  Simulator sim;
  std::uint64_t bytes = 0;
  // Peak 2 Mbps, on half the time → ~1 Mbps average.
  OnOffSource src(sim, 1, [&](MacPacket p) { bytes += p.bytes; }, 500, 2e6,
                  SimTime::milliseconds(100), SimTime::milliseconds(100),
                  Rng(44));
  src.start(SimTime::zero(), SimTime::seconds(60));
  sim.run_all();
  const double rate = static_cast<double>(bytes) * 8.0 / 60.0;
  EXPECT_GT(rate, 0.6e6);
  EXPECT_LT(rate, 1.4e6);
}

TEST(OnOffSourceTest, SilentDuringOffPeriods) {
  Simulator sim;
  std::vector<SimTime> stamps;
  OnOffSource src(sim, 1, [&](MacPacket p) { stamps.push_back(p.created_at); },
                  500, 2e6, SimTime::milliseconds(50),
                  SimTime::milliseconds(50), Rng(45));
  src.start(SimTime::zero(), SimTime::seconds(10));
  sim.run_all();
  ASSERT_GT(stamps.size(), 100u);
  // There must exist at least one gap much longer than the packet interval
  // (2 ms at peak): an off period.
  const SimTime packet_interval = SimTime::milliseconds(2);
  bool found_gap = false;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i] - stamps[i - 1] > packet_interval * 5) found_gap = true;
  }
  EXPECT_TRUE(found_gap);
}

// ---------------------------------------------------------------- VBR video

TEST(VbrVideoSourceTest, MeanRateMatchesProfile) {
  Simulator sim;
  std::uint64_t bytes = 0;
  VbrVideoSource::Profile profile;  // defaults: 25 fps, ~6 kB P frames
  VbrVideoSource src(sim, 1, [&](MacPacket p) { bytes += p.bytes; }, profile,
                     Rng(7));
  src.start(SimTime::zero(), SimTime::seconds(60));
  sim.run_all();
  const double rate = static_cast<double>(bytes) * 8.0 / 60.0;
  EXPECT_NEAR(rate, src.mean_rate_bps(), src.mean_rate_bps() * 0.1);
}

TEST(VbrVideoSourceTest, PacketsRespectMtu) {
  Simulator sim;
  VbrVideoSource::Profile profile;
  profile.mtu_bytes = 1000;
  bool all_within = true;
  VbrVideoSource src(sim, 1, [&](MacPacket p) {
    if (p.bytes > 1000) all_within = false;
  }, profile, Rng(8));
  src.start(SimTime::zero(), SimTime::seconds(5));
  sim.run_all();
  EXPECT_TRUE(all_within);
}

TEST(VbrVideoSourceTest, IntraFramesAreLarger) {
  Simulator sim;
  VbrVideoSource::Profile profile;
  profile.size_stddev_factor = 0.0;  // deterministic sizes
  profile.gop = 4;
  std::vector<std::pair<SimTime, std::size_t>> packets;
  VbrVideoSource src(sim, 1, [&](MacPacket p) {
    packets.emplace_back(p.created_at, p.bytes);
  }, profile, Rng(9));
  src.start(SimTime::zero(), SimTime::milliseconds(400));
  sim.run_all();
  // Group packets by emission instant = one video frame each.
  std::map<std::int64_t, std::size_t> frame_bytes;
  for (const auto& [t, b] : packets) frame_bytes[t.ns()] += b;
  ASSERT_GE(frame_bytes.size(), 8u);
  std::vector<std::size_t> sizes;
  for (const auto& [t, b] : frame_bytes) sizes.push_back(b);
  // Frames 0, 4, 8 are intra and ~2.5x the size of inter frames.
  EXPECT_GT(sizes[0], 2 * sizes[1]);
  EXPECT_GT(sizes[4], 2 * sizes[5]);
  EXPECT_NEAR(static_cast<double>(sizes[1]),
              static_cast<double>(sizes[2]), 1.0);
}

// -------------------------------------------------------------- trace replay

TEST(TraceReplaySourceTest, ParsesWellFormedTraces) {
  const auto trace = TraceReplaySource::parse(
      "# a comment\n"
      "0,100\n"
      "2000,200\n"
      "\n"
      "2000,50   # same-instant packet\n"
      "10000,1500\n");
  ASSERT_TRUE(trace.has_value()) << trace.error();
  ASSERT_EQ(trace->size(), 4u);
  EXPECT_EQ((*trace)[0].offset, SimTime::zero());
  EXPECT_EQ((*trace)[1].offset, SimTime::microseconds(2000));
  EXPECT_EQ((*trace)[3].bytes, 1500u);
}

TEST(TraceReplaySourceTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(TraceReplaySource::parse("nonsense").has_value());
  EXPECT_FALSE(TraceReplaySource::parse("100;200").has_value());
  EXPECT_FALSE(TraceReplaySource::parse("5,-3").has_value());
  EXPECT_FALSE(TraceReplaySource::parse("100,10\n50,10").has_value());
  EXPECT_FALSE(TraceReplaySource::parse("").has_value());
  EXPECT_FALSE(TraceReplaySource::parse("# only comments\n").has_value());
}

TEST(TraceReplaySourceTest, ReplaysAtExactOffsets) {
  Simulator sim;
  std::vector<std::pair<SimTime, std::size_t>> got;
  const auto trace = TraceReplaySource::parse("0,100\n1500,200\n4000,300\n");
  ASSERT_TRUE(trace.has_value());
  TraceReplaySource src(sim, 1, [&](MacPacket p) {
    got.emplace_back(p.created_at, p.bytes);
  }, *trace);
  src.start(SimTime::milliseconds(10), SimTime::seconds(1));
  sim.run_all();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, SimTime::milliseconds(10));
  EXPECT_EQ(got[1].first,
            SimTime::milliseconds(10) + SimTime::microseconds(1500));
  EXPECT_EQ(got[2].second, 300u);
}

TEST(TraceReplaySourceTest, LoopRepeatsTheTrace) {
  Simulator sim;
  int count = 0;
  const auto trace = TraceReplaySource::parse("0,100\n1000,100\n");
  ASSERT_TRUE(trace.has_value());
  TraceReplaySource src(sim, 1, [&](MacPacket) { ++count; }, *trace,
                        /*loop=*/true);
  // Trace span = 1 ms; in 10 ms it should replay ~10 times (20 packets).
  src.start(SimTime::zero(), SimTime::milliseconds(10));
  sim.run_all();
  EXPECT_GE(count, 18);
  EXPECT_LE(count, 22);
}

TEST(TraceReplaySourceTest, StopsAtStopTime) {
  Simulator sim;
  int count = 0;
  const auto trace = TraceReplaySource::parse("0,10\n5000,10\n9000,10\n");
  ASSERT_TRUE(trace.has_value());
  TraceReplaySource src(sim, 1, [&](MacPacket) { ++count; }, *trace);
  src.start(SimTime::zero(), SimTime::microseconds(6000));
  sim.run_all();
  EXPECT_EQ(count, 2);  // entries at 0 and 5000 us only
}

}  // namespace
}  // namespace wimesh
