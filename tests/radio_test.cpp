// wimesh::radio test suite: propagation geometry, Jakes fading determinism,
// SNR -> PER curve shape, the assembled RadioEnvironment power budget,
// Minstrel rate adaptation, and the two cross-model contracts —
//  * the high-SINR differential: with shadowing/fading off and the
//    interference cutoff placed at exactly the protocol model's
//    interference range, the SINR conflict graph must match the protocol
//    builder edge-for-edge (same EdgeIds) on every topology family;
//  * batch determinism: a fading-enabled sweep is byte-identical for any
//    --jobs value (fading is a pure function of (seed, pair, t)).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "wimesh/batch/runner.h"
#include "wimesh/common/rng.h"
#include "wimesh/core/mesh_network.h"
#include "wimesh/core/scenario.h"
#include "wimesh/graph/topology.h"
#include "wimesh/phy/radio_model.h"
#include "wimesh/radio/fading.h"
#include "wimesh/radio/medium.h"
#include "wimesh/radio/minstrel.h"
#include "wimesh/radio/propagation.h"
#include "wimesh/radio/reception.h"
#include "wimesh/sched/conflict_graph.h"

namespace wimesh {
namespace {

using radio::FadingConfig;
using radio::Modulation;
using radio::Propagation;
using radio::PropagationConfig;
using radio::RadioConfig;
using radio::RadioEnvironment;
using radio::RateTable;
using radio::WallSegment;

// ------------------------------------------------------------- propagation

TEST(PropagationTest, OpenLossMonotoneAndInvertible) {
  const Propagation prop((PropagationConfig()));
  double prev = prop.open_loss_db(1.0);
  for (double d : {2.0, 5.0, 20.0, 100.0, 400.0}) {
    const double loss = prop.open_loss_db(d);
    EXPECT_GT(loss, prev) << "loss not increasing at d=" << d;
    // Exact inverse: same log10 code path both ways.
    EXPECT_NEAR(prop.distance_for_open_loss(loss), d, 1e-9);
    prev = loss;
  }
}

TEST(PropagationTest, ReferenceDistanceFloorsTheLoss) {
  const Propagation prop((PropagationConfig()));
  const double at_ref = prop.open_loss_db(1.0);
  EXPECT_DOUBLE_EQ(prop.open_loss_db(0.5), at_ref);
  EXPECT_DOUBLE_EQ(prop.open_loss_db(0.0), at_ref);
  EXPECT_DOUBLE_EQ(prop.loss_db({0, 0}, {0, 0}), at_ref);
}

TEST(PropagationTest, WallCrossingAddsLossAndSwitchesExponent) {
  PropagationConfig cfg;
  cfg.walls.push_back(WallSegment{{50.0, -100.0}, {50.0, 100.0}, 12.0});
  const Propagation prop(cfg);

  const Point a{0.0, 0.0};
  const Point through{100.0, 0.0};  // crosses x=50
  const Point clear{0.0, 80.0};     // same distance-ish, no wall

  EXPECT_EQ(prop.wall_crossings(a, through), 1);
  EXPECT_EQ(prop.wall_crossings(a, clear), 0);

  // Obstructed path: obstructed exponent/intercept + 12 dB wall loss.
  const double d = 100.0;
  const double expect_obstructed =
      cfg.exponent_obstructed * std::log10(d / cfg.reference_distance_m) +
      cfg.intercept_obstructed_db + 12.0;
  EXPECT_NEAR(prop.loss_db(a, through), expect_obstructed, 1e-9);

  // Clear path uses the LOS pair.
  const double expect_los =
      cfg.exponent_los * std::log10(80.0 / cfg.reference_distance_m) +
      cfg.intercept_los_db;
  EXPECT_NEAR(prop.loss_db(a, clear), expect_los, 1e-9);
}

TEST(PropagationTest, EachWallCrossedCountsOnce) {
  PropagationConfig cfg;
  cfg.walls.push_back(WallSegment{{25.0, -10.0}, {25.0, 10.0}, 10.0});
  cfg.walls.push_back(WallSegment{{75.0, -10.0}, {75.0, 10.0}, 7.0});
  const Propagation prop(cfg);
  EXPECT_EQ(prop.wall_crossings({0.0, 0.0}, {100.0, 0.0}), 2);
  // Total penetration loss is the sum of the individual walls.
  const double base = prop.loss_db({0.0, 0.0}, {100.0, 0.0});
  PropagationConfig no_walls = cfg;
  no_walls.walls.clear();
  // Same exponent comparison requires an obstructed reference, so compare
  // against a single-wall variant instead: removing one wall removes
  // exactly its loss.
  PropagationConfig one_wall = cfg;
  one_wall.walls.pop_back();
  const Propagation prop_one(one_wall);
  EXPECT_NEAR(base - prop_one.loss_db({0.0, 0.0}, {100.0, 0.0}), 7.0, 1e-9);
}

TEST(PropagationTest, FloorSeparationAddsPerFloorPenalty) {
  PropagationConfig cfg;
  cfg.floor_loss_db = 18.0;
  const Propagation prop(cfg);
  const Point a{0.0, 0.0};
  const Point b{30.0, 0.0};
  // Same floor, no walls: pure LOS.
  const double same = prop.loss_db(a, b, 0, 0);
  EXPECT_NEAR(prop.loss_db(a, b, 1, 1), same, 1e-9);
  // A cross-floor path counts as obstructed (ceiling = obstacle), so its
  // baseline is the obstructed exponent/intercept, plus 18 dB per storey.
  const double obstructed_base =
      cfg.exponent_obstructed * std::log10(30.0 / cfg.reference_distance_m) +
      cfg.intercept_obstructed_db;
  EXPECT_NEAR(prop.loss_db(a, b, 0, 1), obstructed_base + 18.0, 1e-9);
  EXPECT_NEAR(prop.loss_db(a, b, 2, 0), obstructed_base + 36.0, 1e-9);
  // Each extra storey costs exactly floor_loss_db on top of the last.
  EXPECT_NEAR(prop.loss_db(a, b, 0, 2) - prop.loss_db(a, b, 0, 1), 18.0,
              1e-9);
}

TEST(PropagationTest, TryMakeNamesTheOffendingField) {
  PropagationConfig bad_exponent;
  bad_exponent.exponent_los = 0.0;
  auto r1 = Propagation::try_make(bad_exponent);
  ASSERT_FALSE(r1.has_value());
  EXPECT_NE(r1.error().find("exponent"), std::string::npos) << r1.error();

  PropagationConfig zero_wall;
  zero_wall.walls.push_back(WallSegment{{5.0, 5.0}, {5.0, 5.0}, 12.0});
  auto r2 = Propagation::try_make(zero_wall);
  ASSERT_FALSE(r2.has_value());
  // Wall indices in errors are 1-based (matching scenario-file counting).
  EXPECT_NE(r2.error().find("wall 1"), std::string::npos) << r2.error();
  EXPECT_NE(r2.error().find("zero length"), std::string::npos) << r2.error();

  PropagationConfig neg_wall;
  neg_wall.walls.push_back(WallSegment{{0.0, 0.0}, {1.0, 0.0}, 12.0});
  neg_wall.walls.push_back(WallSegment{{0.0, 0.0}, {0.0, 1.0}, -3.0});
  auto r3 = Propagation::try_make(neg_wall);
  ASSERT_FALSE(r3.has_value());
  EXPECT_NE(r3.error().find("wall 2"), std::string::npos) << r3.error();

  EXPECT_TRUE(Propagation::try_make(PropagationConfig()).has_value());
}

TEST(RadioModelTest, TryMakeNamesTheOffendingRange) {
  auto bad_comm = RadioModel::try_make(0.0, 220.0);
  ASSERT_FALSE(bad_comm.has_value());
  EXPECT_NE(bad_comm.error().find("comm_range"), std::string::npos)
      << bad_comm.error();

  auto inverted = RadioModel::try_make(110.0, 50.0);
  ASSERT_FALSE(inverted.has_value());
  EXPECT_NE(inverted.error().find("interference_range"), std::string::npos)
      << inverted.error();

  auto ok = RadioModel::try_make(110.0, 220.0);
  ASSERT_TRUE(ok.has_value()) << ok.error();
  EXPECT_TRUE(ok->can_communicate({0.0, 0.0}, {10.0, 0.0}));
}

// ------------------------------------------------------------------ fading

TEST(FadingTest, PairStreamKeyIsUnorderedAndCollisionFree) {
  EXPECT_EQ(radio::pair_stream_key(3, 7), radio::pair_stream_key(7, 3));
  EXPECT_NE(radio::pair_stream_key(0, 1), radio::pair_stream_key(0, 2));
  EXPECT_NE(radio::pair_stream_key(1, 2), radio::pair_stream_key(0, 3));
}

TEST(FadingTest, DisabledFadingIsAlwaysZero) {
  radio::FadingProcess off(99, FadingConfig{});
  EXPECT_DOUBLE_EQ(off.gain_db(0, 1, SimTime::seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(off.gain_db(4, 2, SimTime::milliseconds(17)), 0.0);
}

TEST(FadingTest, GainIsPureFunctionOfSeedPairAndTime) {
  FadingConfig cfg;
  cfg.kind = FadingConfig::Kind::kJakes;
  radio::FadingProcess p1(42, cfg);
  radio::FadingProcess p2(42, cfg);

  // Query p1 and p2 in opposite pair orders: values must agree anyway.
  const SimTime t = SimTime::milliseconds(13);
  const double g01_first = p1.gain_db(0, 1, t);
  const double g23_first = p1.gain_db(2, 3, t);
  const double g23_second = p2.gain_db(2, 3, t);
  const double g01_second = p2.gain_db(0, 1, t);
  EXPECT_DOUBLE_EQ(g01_first, g01_second);
  EXPECT_DOUBLE_EQ(g23_first, g23_second);

  // Unordered pair: both directions fade identically (reciprocity).
  EXPECT_DOUBLE_EQ(p1.gain_db(1, 0, t), g01_first);

  // Different seed, different channel.
  radio::FadingProcess p3(43, cfg);
  EXPECT_NE(p3.gain_db(0, 1, t), g01_first);
}

TEST(FadingTest, JakesEnvelopeHasUnitMeanPowerAndVaries) {
  FadingConfig cfg;
  cfg.kind = FadingConfig::Kind::kJakes;
  cfg.doppler_hz = 10.0;
  radio::FadingProcess p(7, cfg);

  double sum_linear = 0.0;
  double min_db = 1e9;
  double max_db = -1e9;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    // ~20 s at 5 ms spacing: many decorrelation times at 10 Hz Doppler.
    const double g = p.gain_db(0, 1, SimTime::milliseconds(5 * i));
    sum_linear += std::pow(10.0, g / 10.0);
    min_db = std::min(min_db, g);
    max_db = std::max(max_db, g);
  }
  // Unit mean power: 0 dB average gain (loose band; finite oscillators).
  const double mean_db = 10.0 * std::log10(sum_linear / kSamples);
  EXPECT_NEAR(mean_db, 0.0, 1.5);
  // Rayleigh fading actually swings: several dB up, deep fades down.
  EXPECT_GT(max_db, 3.0);
  EXPECT_LT(min_db, -10.0);
  // The -60 dB floor holds.
  EXPECT_GE(min_db, -60.0);
}

// --------------------------------------------------------------- reception

TEST(ReceptionTest, DbmMilliwattRoundTrip) {
  EXPECT_NEAR(radio::dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(radio::dbm_to_mw(10.0), 10.0, 1e-9);
  EXPECT_NEAR(radio::mw_to_dbm(radio::dbm_to_mw(-82.5)), -82.5, 1e-9);
  // No interference: SINR equals SNR.
  EXPECT_NEAR(radio::sinr_db(-60.0, 0.0, -96.0), 36.0, 1e-9);
  // Interference at the signal level: SINR ~ 0 dB.
  EXPECT_NEAR(radio::sinr_db(-60.0, radio::dbm_to_mw(-60.0), -200.0), 0.0,
              1e-6);
}

TEST(ReceptionTest, PerMonotoneInSnrAndOrderedAcrossRates) {
  const RateTable ofdm = RateTable::ofdm_802_11a();
  ASSERT_EQ(ofdm.size(), 8u);
  for (std::size_t i = 0; i < ofdm.size(); ++i) {
    double prev = 1.0;
    for (double snr = -5.0; snr <= 40.0; snr += 0.5) {
      const double per = ofdm.per(i, snr, 1000);
      EXPECT_GE(per, 0.0);
      EXPECT_LE(per, 1.0);
      EXPECT_LE(per, prev + 1e-12)
          << "PER not monotone for rate " << i << " at snr " << snr;
      prev = per;
    }
  }
  // At a mid SNR the faster rate must be lossier than the slower one —
  // except 9 vs 12 Mbps, the documented BPSK-3/4 / QPSK-1/2 crossover
  // where the punctured code is genuinely the weaker receiver.
  for (std::size_t i = 0; i + 1 < ofdm.size(); ++i) {
    if (i == 1) continue;  // 9 Mbps crossover
    const double snr = ofdm.min_snr_db(i + 1);  // edge of the faster rate
    EXPECT_LE(ofdm.per(i, snr, 1000), ofdm.per(i + 1, snr, 1000) + 1e-12);
  }
}

TEST(ReceptionTest, MinSnrStrictlyIncreasesAlongTheLadder) {
  // DSSS: strictly ordered throughout.
  const RateTable dsss = RateTable::dsss_802_11b();
  for (std::size_t i = 0; i + 1 < dsss.size(); ++i) {
    EXPECT_LT(dsss.min_snr_db(i), dsss.min_snr_db(i + 1))
        << "DSSS ladder not ordered at index " << i;
  }
  // OFDM: strictly ordered except the 9/12 Mbps crossover, where 9 Mbps
  // (BPSK 3/4, d_free 5) needs a fraction of a dB MORE than 12 Mbps
  // (QPSK 1/2, d_free 10) — the real-hardware anomaly the header pins.
  const RateTable ofdm_t = RateTable::ofdm_802_11a();
  for (std::size_t i = 0; i + 1 < ofdm_t.size(); ++i) {
    if (i == 1) {
      EXPECT_GT(ofdm_t.min_snr_db(1), ofdm_t.min_snr_db(2));
      EXPECT_NEAR(ofdm_t.min_snr_db(1), ofdm_t.min_snr_db(2), 1.0);
      EXPECT_GT(ofdm_t.min_snr_db(2), ofdm_t.min_snr_db(0));
      continue;
    }
    EXPECT_LT(ofdm_t.min_snr_db(i), ofdm_t.min_snr_db(i + 1))
        << "OFDM ladder not ordered at index " << i;
  }
  // Sanity: 6 Mbps BPSK decodes near the single-digit SNRs, 54 Mbps needs
  // north of 20 dB — the conventional ~20 dB spread.
  const RateTable ofdm = RateTable::ofdm_802_11a();
  EXPECT_LT(ofdm.min_snr_db(0), 10.0);
  EXPECT_GT(ofdm.min_snr_db(7), 20.0);
}

TEST(ReceptionTest, LongerFramesAreLossier) {
  const RateTable ofdm = RateTable::ofdm_802_11a();
  const std::size_t i = ofdm.index_of(24);
  const double snr = ofdm.min_snr_db(i);  // PER(1000B) ~ 0.1 here
  EXPECT_LT(ofdm.per(i, snr, 100), ofdm.per(i, snr, 1500));
}

TEST(ReceptionTest, RateTableForPhyPicksTheFamily) {
  EXPECT_EQ(RateTable::for_phy(PhyMode::ofdm_802_11a(54)).size(), 8u);
  EXPECT_EQ(RateTable::for_phy(PhyMode::dsss_802_11b(11)).size(), 4u);
  const RateTable ofdm = RateTable::for_phy(PhyMode::ofdm_802_11a(6));
  EXPECT_EQ(ofdm.index_of(6), 0u);
  EXPECT_EQ(ofdm.index_of(54), 7u);
  EXPECT_EQ(ofdm.phy_mode(7).nominal_rate_mbps(), 54);
}

// ------------------------------------------------------------- environment

RadioConfig plain_radio() {
  RadioConfig rc;
  rc.enabled = true;
  rc.shadowing_sigma_db = 0.0;
  rc.fading.kind = FadingConfig::Kind::kNone;
  return rc;
}

TEST(RadioEnvironmentTest, MeanPowerIsTxMinusLossWhenShadowingOff) {
  const Topology topo = make_chain(3, 100.0);
  const RadioConfig rc = plain_radio();
  const RadioEnvironment env(rc, topo.positions, PhyMode::ofdm_802_11a(54),
                             1);
  const double loss = env.propagation().loss_db(topo.positions[0],
                                                topo.positions[1]);
  EXPECT_DOUBLE_EQ(env.mean_rx_power_dbm(0, 1), rc.tx_power_dbm - loss);
  // Symmetric, distance-monotone.
  EXPECT_DOUBLE_EQ(env.mean_rx_power_dbm(1, 0), env.mean_rx_power_dbm(0, 1));
  EXPECT_LT(env.mean_rx_power_dbm(0, 2), env.mean_rx_power_dbm(0, 1));
  // No fading either: instantaneous == mean.
  EXPECT_DOUBLE_EQ(env.rx_power_dbm(0, 1, SimTime::seconds(3)),
                   env.mean_rx_power_dbm(0, 1));
}

TEST(RadioEnvironmentTest, ShadowingIsPerPairStaticAndSeeded) {
  const Topology topo = make_grid(3, 3, 100.0);
  RadioConfig rc = plain_radio();
  rc.shadowing_sigma_db = 6.0;
  const RadioEnvironment e1(rc, topo.positions, PhyMode::ofdm_802_11a(54),
                            5);
  const RadioEnvironment e2(rc, topo.positions, PhyMode::ofdm_802_11a(54),
                            5);
  const RadioEnvironment e3(rc, topo.positions, PhyMode::ofdm_802_11a(54),
                            6);

  // Same seed -> identical offsets, regardless of query order.
  EXPECT_DOUBLE_EQ(e2.mean_rx_power_dbm(4, 8), e1.mean_rx_power_dbm(4, 8));
  EXPECT_DOUBLE_EQ(e2.mean_rx_power_dbm(0, 1), e1.mean_rx_power_dbm(0, 1));
  // Symmetric and static in time.
  EXPECT_DOUBLE_EQ(e1.mean_rx_power_dbm(8, 4), e1.mean_rx_power_dbm(4, 8));
  EXPECT_DOUBLE_EQ(e1.rx_power_dbm(4, 8, SimTime::seconds(1)),
                   e1.rx_power_dbm(4, 8, SimTime::seconds(2)));
  // Different seed -> a different channel on at least one pair.
  bool any_differs = false;
  for (NodeId a = 0; a < 9 && !any_differs; ++a)
    for (NodeId b = static_cast<NodeId>(a + 1); b < 9; ++b)
      if (e3.mean_rx_power_dbm(a, b) != e1.mean_rx_power_dbm(a, b)) {
        any_differs = true;
        break;
      }
  EXPECT_TRUE(any_differs);
}

TEST(RadioEnvironmentTest, AutoInterferenceCutoffIsNoisePlusSixDb) {
  const Topology topo = make_chain(2, 50.0);
  RadioConfig rc = plain_radio();
  const RadioEnvironment auto_env(rc, topo.positions,
                                  PhyMode::ofdm_802_11a(54), 1);
  EXPECT_DOUBLE_EQ(auto_env.interference_cutoff_dbm(),
                   rc.noise_floor_dbm + 6.0);

  rc.interference_cutoff_dbm = -77.5;
  const RadioEnvironment explicit_env(rc, topo.positions,
                                      PhyMode::ofdm_802_11a(54), 1);
  EXPECT_DOUBLE_EQ(explicit_env.interference_cutoff_dbm(), -77.5);
}

TEST(RadioEnvironmentTest, FloorsFeedThePropagationModel) {
  const Topology topo = make_chain(2, 30.0);
  RadioConfig rc = plain_radio();
  rc.floors = {0, 2};
  rc.propagation.floor_loss_db = 18.0;
  const RadioEnvironment env(rc, topo.positions, PhyMode::ofdm_802_11a(54),
                             1);
  RadioConfig one_floor = plain_radio();
  one_floor.floors = {0, 1};
  one_floor.propagation.floor_loss_db = 18.0;
  const RadioEnvironment base(one_floor, topo.positions,
                              PhyMode::ofdm_802_11a(54), 1);
  EXPECT_EQ(env.floor_of(1), 2);
  EXPECT_EQ(base.floor_of(1), 1);
  // One extra storey of separation costs exactly floor_loss_db (both
  // paths are cross-floor, so the obstructed baseline cancels).
  EXPECT_NEAR(base.mean_rx_power_dbm(0, 1) - env.mean_rx_power_dbm(0, 1),
              18.0, 1e-9);
}

// ------------------------------------------- high-SINR differential (sched)

// Both directions of every topology edge, in edge order.
LinkSet all_directed_links(const Graph& g) {
  LinkSet links;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    links.add({g.edge(e).u, g.edge(e).v});
    links.add({g.edge(e).v, g.edge(e).u});
  }
  return links;
}

void expect_same_graph(const Graph& sinr, const Graph& protocol,
                       const std::string& what) {
  ASSERT_EQ(sinr.node_count(), protocol.node_count()) << what;
  ASSERT_EQ(sinr.edge_count(), protocol.edge_count()) << what;
  for (EdgeId e = 0; e < sinr.edge_count(); ++e) {
    EXPECT_EQ(sinr.edge(e).u, protocol.edge(e).u) << what << " edge " << e;
    EXPECT_EQ(sinr.edge(e).v, protocol.edge(e).v) << what << " edge " << e;
  }
}

// With shadowing and fading off, mean rx power is exactly
// tx_power - open_loss_db(distance), and open_loss_db is strictly monotone
// in distance through the same code path distance_for_open_loss inverts.
// Setting the conflict cutoff to tx_power - open_loss_db(R) therefore makes
//   power >= cutoff  <=>  open_loss(d) <= open_loss(R)  <=>  d <= R
// exact in floating point, and the SINR builder must reproduce the
// protocol builder's graph edge-for-edge.
TEST(SinrConflictGraphTest, MatchesProtocolModelAtHighSinr) {
  const double comm = 110.0;
  const double interference = 220.0;
  const RadioModel protocol(comm, interference);

  std::vector<std::pair<std::string, Topology>> topos;
  topos.emplace_back("chain20", make_chain(20, 100.0));
  topos.emplace_back("grid7x7", make_grid(7, 7, 100.0));
  topos.emplace_back("tree2x3", make_tree(2, 3, 100.0));
  Rng rng(7);
  topos.emplace_back("random40",
                     make_random_geometric(40, 600.0, 170.0, rng));

  for (const auto& [name, topo] : topos) {
    RadioConfig rc = plain_radio();
    rc.interference_cutoff_dbm =
        rc.tx_power_dbm -
        Propagation(rc.propagation).open_loss_db(interference);
    const RadioEnvironment env(rc, topo.positions,
                               PhyMode::ofdm_802_11a(54), 1);
    const LinkSet links = all_directed_links(topo.graph);
    expect_same_graph(build_conflict_graph_sinr(links, env),
                      build_conflict_graph_naive(links, topo.positions,
                                                 protocol),
                      name);
  }
}

TEST(SinrConflictGraphTest, WallsAddConflictEdgesProtocolModelCannotSee) {
  // Two parallel chains 150 m apart: without walls they interfere
  // (150 < interference range proxy); with a long wall between them the
  // cross-chain power drops below the cutoff and the conflict edges
  // disappear, while intra-chain edges survive.
  Topology topo;
  topo.positions = {{0.0, 0.0}, {100.0, 0.0}, {0.0, 150.0}, {100.0, 150.0}};
  topo.graph = Graph(4);
  topo.graph.add_edge(0, 1);
  topo.graph.add_edge(2, 3);
  const LinkSet links = all_directed_links(topo.graph);

  RadioConfig rc = plain_radio();
  rc.interference_cutoff_dbm =
      rc.tx_power_dbm - Propagation(rc.propagation).open_loss_db(220.0);
  const RadioEnvironment open_env(rc, topo.positions,
                                  PhyMode::ofdm_802_11a(54), 1);
  const Graph open_graph = build_conflict_graph_sinr(links, open_env);

  rc.propagation.walls.push_back(
      WallSegment{{-50.0, 75.0}, {150.0, 75.0}, 40.0});
  const RadioEnvironment walled_env(rc, topo.positions,
                                    PhyMode::ofdm_802_11a(54), 1);
  const Graph walled_graph = build_conflict_graph_sinr(links, walled_env);

  EXPECT_GT(open_graph.edge_count(), walled_graph.edge_count());
  // Intra-chain conflicts (shared endpoints) are still there.
  EXPECT_GT(walled_graph.edge_count(), 0u);
}

// ---------------------------------------------------------------- minstrel

// Simulated static link: success drawn against the analytic PER at a
// fixed SNR. The controller must settle on (or next to) the rate
// maximizing nominal * (1 - PER).
void expect_converges_near_best(double snr_db, std::uint64_t seed) {
  const RateTable table = RateTable::ofdm_802_11a();
  radio::RateAdaptConfig cfg;
  cfg.enabled = true;
  radio::MinstrelLink link(&table, 0, cfg);
  Rng rng(seed);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t idx = link.pick_rate();
    const bool ok = !rng.chance(table.per(idx, snr_db, 1000));
    link.on_result(idx, ok);
  }
  std::size_t best_fixed = 0;
  double best_tp = -1.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const double tp =
        table.entry(i).rate_mbps * (1.0 - table.per(i, snr_db, 1000));
    if (tp > best_tp) {
      best_tp = tp;
      best_fixed = i;
    }
  }
  const std::size_t got = link.best_rate();
  const std::size_t lo = best_fixed == 0 ? 0 : best_fixed - 1;
  EXPECT_GE(got, lo) << "snr " << snr_db;
  EXPECT_LE(got, best_fixed + 1) << "snr " << snr_db;
}

TEST(MinstrelTest, ConvergesToBestFixedRateOnStaticLink) {
  expect_converges_near_best(8.0, 11);   // low SNR: a robust low rate
  expect_converges_near_best(18.0, 12);  // mid SNR: a middle rung
  expect_converges_near_best(35.0, 13);  // clean link: top of the ladder
}

TEST(MinstrelTest, CleanLinkClimbsToTopRateAndStays) {
  const RateTable table = RateTable::ofdm_802_11a();
  radio::RateAdaptConfig cfg;
  cfg.enabled = true;
  radio::MinstrelLink link(&table, 0, cfg);
  for (int i = 0; i < 200; ++i) link.on_result(link.pick_rate(), true);
  EXPECT_EQ(link.best_rate(), table.size() - 1);
  EXPECT_DOUBLE_EQ(link.ewma_success(table.size() - 1), 1.0);
}

TEST(MinstrelTest, ProbesEveryNthTransmissionRoundRobin) {
  const RateTable table = RateTable::ofdm_802_11a();
  radio::RateAdaptConfig cfg;
  cfg.enabled = true;
  cfg.probe_interval = 4;
  radio::MinstrelLink link(&table, 0, cfg);
  int probes = 0;
  std::vector<std::size_t> probed;
  for (int i = 1; i <= 32; ++i) {
    const std::size_t idx = link.pick_rate();
    if (idx != link.best_rate()) {
      ++probes;
      probed.push_back(idx);
      EXPECT_EQ(i % 4, 0) << "probe off schedule at tx " << i;
    }
    link.on_result(idx, true);
  }
  EXPECT_EQ(probes, 8);
  // Round-robin: consecutive probes hit different rungs.
  ASSERT_GE(probed.size(), 2u);
  EXPECT_NE(probed[0], probed[1]);
}

TEST(MinstrelTest, NeverPicksBelowThePlanningFloor) {
  const RateTable table = RateTable::ofdm_802_11a();
  const std::size_t floor_idx = table.index_of(24);
  radio::RateAdaptConfig cfg;
  cfg.enabled = true;
  cfg.probe_interval = 2;  // probe hard
  radio::MinstrelLink link(&table, floor_idx, cfg);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::size_t idx = link.pick_rate();
    EXPECT_GE(idx, floor_idx);
    link.on_result(idx, rng.chance(0.5));
  }
  EXPECT_GE(link.best_rate(), floor_idx);
}

TEST(MinstrelTest, ControllerKeysLinksByDirection) {
  const RateTable table = RateTable::ofdm_802_11a();
  radio::RateAdaptConfig cfg;
  cfg.enabled = true;
  radio::RateController ctrl(&table, 0, cfg);
  radio::MinstrelLink& ab = ctrl.link(0, 1);
  radio::MinstrelLink& ba = ctrl.link(1, 0);
  EXPECT_NE(&ab, &ba);
  // Failures on 0->1 do not touch 1->0.
  for (int i = 0; i < 50; ++i) ab.on_result(table.size() - 1, false);
  EXPECT_LT(ab.ewma_success(table.size() - 1), 0.1);
  EXPECT_DOUBLE_EQ(ctrl.link(1, 0).ewma_success(table.size() - 1), 1.0);
  EXPECT_EQ(&ctrl.link(0, 1), &ab);  // stable across lookups
}

// --------------------------------------------------- end-to-end + determinism

constexpr char kFadingScenario[] = R"(topology = chain 4 100
comm_range = 110
interference_range = 220
phy = ofdm24
radio = on,shadowing=3,fading=jakes,doppler=8
frame_ms = 10
control_slots = 4
data_slots = 96
scheduler = greedy
routing = hop
mac = tdma
duration_s = 1
seed = 7

voip 0 0 3 g729 100
)";

TEST(RadioEndToEndTest, RadioEnabledRunDeliversTraffic) {
  auto s = parse_scenario(kFadingScenario);
  ASSERT_TRUE(s.has_value()) << s.error();
  MeshNetwork net(s->config);
  for (const auto& f : s->flows) net.add_flow(f);
  auto plan = net.compute_plan();
  ASSERT_TRUE(plan.has_value()) << plan.error();
  const SimulationResult r = net.run(MacMode::kTdmaOverlay, s->duration);
  ASSERT_FALSE(r.flows.empty());
  std::uint64_t delivered = 0;
  for (const auto& f : r.flows) delivered += f.stats.delivered_packets();
  EXPECT_GT(delivered, 0u);
}

TEST(RadioEndToEndTest, FadingSweepIsBitIdenticalForAnyJobCount) {
  auto s = parse_scenario(kFadingScenario);
  ASSERT_TRUE(s.has_value()) << s.error();
  const auto specs = batch::seed_sweep(*s, 0, 5);
  batch::BatchOptions serial;
  serial.jobs = 1;
  batch::BatchOptions parallel_opts;
  parallel_opts.jobs = 4;
  const std::string a = batch::results_json(batch::run_batch(specs, serial));
  const std::string b =
      batch::results_json(batch::run_batch(specs, parallel_opts));
  EXPECT_EQ(a, b);
}

// ----------------------------------------------- shipped scenario goldens

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Golden pins for the three shipped physical-layer scenarios. The radio
// stack is deterministic end to end (seeded shadowing/fading, RNG-free
// rate adaptation), so these exact counters must reproduce on every
// platform; a drift here means the physical model changed behavior.
TEST(RadioScenarioGoldenTest, ShippedScenarioPinsHold) {
  struct Pin {
    const char* file;
    std::uint64_t frames_transmitted;
    std::uint64_t receptions_corrupted;
    std::uint64_t delivered_packets;
  };
  const Pin pins[] = {
      {"office_3floor.wimesh", 4502, 0, 617},
      {"campus_outdoor.wimesh", 3748, 136, 503},
      {"mixed_rate.wimesh", 1872, 0, 312},
  };
  const std::string dir = WIMESH_SCENARIO_DIR;
  for (const Pin& pin : pins) {
    const auto sc = parse_scenario(read_file_or_die(dir + "/" + pin.file));
    ASSERT_TRUE(sc.has_value()) << pin.file << ": " << sc.error();
    EXPECT_TRUE(sc->config.radio.enabled) << pin.file;
    MeshNetwork net(sc->config);
    for (const auto& f : sc->flows) net.add_flow(f);
    auto plan = net.compute_plan();
    ASSERT_TRUE(plan.has_value()) << pin.file << ": " << plan.error();
    const SimulationResult r = net.run(sc->mac, sc->duration);
    std::uint64_t delivered = 0;
    for (const auto& f : r.flows) delivered += f.stats.delivered_packets();
    EXPECT_EQ(r.frames_transmitted, pin.frames_transmitted) << pin.file;
    EXPECT_EQ(r.receptions_corrupted, pin.receptions_corrupted) << pin.file;
    EXPECT_EQ(delivered, pin.delivered_packets) << pin.file;
  }
}

}  // namespace
}  // namespace wimesh
