#include <gtest/gtest.h>

#include "wimesh/core/mesh_network.h"

namespace wimesh {
namespace {

MeshConfig chain_config(NodeId n) {
  MeshConfig cfg;
  cfg.topology = make_chain(n, 100.0);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(10);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 96;
  return cfg;
}

TEST(MeshNetworkTest, PlanThenRunVoipOverTdma) {
  MeshConfig cfg = chain_config(4);
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  const auto plan = net.compute_plan();
  ASSERT_TRUE(plan.has_value()) << plan.error();

  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(5));
  ASSERT_EQ(r.flows.size(), 2u);
  for (const FlowResult& f : r.flows) {
    EXPECT_GT(f.stats.sent_packets(), 200u);
    EXPECT_LT(f.stats.loss_rate(), 0.01) << "flow " << f.spec.id;
    EXPECT_TRUE(f.delay_bound_met);
    // Measured delay must respect the analytic worst case.
    EXPECT_LE(f.stats.delays_ms().max(),
              f.planned_worst_delay.to_ms() + 1e-6)
        << "flow " << f.spec.id;
  }
  EXPECT_EQ(r.overlay_busy_at_slot_start, 0u);
  EXPECT_EQ(r.receptions_corrupted, 0u);  // conflict-free by construction
}

TEST(MeshNetworkTest, VoipOverDcfLightLoadAlsoWorks) {
  MeshConfig cfg = chain_config(4);
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(MacMode::kDcf, SimTime::seconds(5));
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.05);
    // Lightly loaded DCF is fast: mean delay well under a frame.
    EXPECT_LT(f.stats.delays_ms().mean(), 10.0);
  }
}

TEST(MeshNetworkTest, TdmaDelaysAreBoundedUnderSaturation) {
  // Load the chain with several calls; TDMA keeps every admitted call
  // within its bound while DCF (tested elsewhere) degrades.
  MeshConfig cfg = chain_config(5);
  MeshNetwork net(cfg);
  for (int c = 0; c < 3; ++c) {
    net.add_voip_call(2 * c, 0, 4, VoipCodec::g729());
  }
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(5));
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.01);
    EXPECT_LE(f.stats.delays_ms().quantile(0.999),
              f.spec.max_delay.to_ms());
  }
}

TEST(MeshNetworkTest, AdmissionCapsCalls) {
  MeshConfig cfg = chain_config(4);
  cfg.emulation.frame.data_slots = 48;
  MeshNetwork net(cfg);
  for (int c = 0; c < 15; ++c) {
    net.add_voip_call(2 * c, 0, 3, VoipCodec::g711());
  }
  const std::size_t admitted = net.admit_incrementally();
  EXPECT_GT(admitted, 0u);
  EXPECT_LT(admitted, 30u);
  // The admitted set must actually run cleanly.
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
  EXPECT_EQ(r.flows.size(), admitted);
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.01);
  }
}

TEST(MeshNetworkTest, BestEffortCoexistsWithoutHurtingVoip) {
  MeshConfig cfg = chain_config(4);
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  net.add_flow(FlowSpec::best_effort(50, 3, 0, 1000, 2e6));
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(5));
  const FlowResult* voip = r.find_flow(0);
  const FlowResult* be = r.find_flow(50);
  ASSERT_NE(voip, nullptr);
  ASSERT_NE(be, nullptr);
  EXPECT_LT(voip->stats.loss_rate(), 0.01);
  EXPECT_LE(voip->stats.delays_ms().max(),
            voip->planned_worst_delay.to_ms() + 1e-6);
  // Best effort moves real traffic through the leftover slots.
  EXPECT_GT(be->stats.delivered_packets(), 0u);
}

TEST(MeshNetworkTest, DcfDegradesUnderLoadWhileTdmaHolds) {
  // The headline qualitative claim: with saturating background traffic in
  // the mesh, DCF gives VoIP no isolation (shared FIFO + contention) while
  // the TDMA overlay keeps the guaranteed class clean in its own slots.
  auto build = [] {
    MeshConfig cfg = chain_config(4);
    MeshNetwork net(cfg);
    net.add_voip_call(0, 0, 3, VoipCodec::g711());
    // Heavy best-effort in both directions across the same chain.
    net.add_flow(FlowSpec::best_effort(10, 0, 3, 1200, 8e6));
    net.add_flow(FlowSpec::best_effort(11, 3, 0, 1200, 8e6));
    return net;
  };
  MeshNetwork tdma_net = build();
  ASSERT_TRUE(tdma_net.compute_plan().has_value());
  const SimulationResult tdma =
      tdma_net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));

  MeshNetwork dcf_net = build();
  ASSERT_TRUE(dcf_net.compute_plan().has_value());
  const SimulationResult dcf = dcf_net.run(MacMode::kDcf, SimTime::seconds(2));

  // TDMA: VoIP stays within its guarantees despite the saturating BE load.
  for (int flow_id : {0, 1}) {
    const FlowResult* f = tdma.find_flow(flow_id);
    ASSERT_NE(f, nullptr);
    EXPECT_LT(f->stats.loss_rate(), 0.01);
    EXPECT_LE(f->stats.delays_ms().max(),
              f->planned_worst_delay.to_ms() + 1e-6);
  }
  // DCF: the same VoIP flows suffer visibly on delay or loss.
  double dcf_voip_p99 = 0.0, dcf_voip_loss = 0.0;
  double tdma_voip_p99 = 0.0;
  for (int flow_id : {0, 1}) {
    const FlowResult* fd = dcf.find_flow(flow_id);
    const FlowResult* ft = tdma.find_flow(flow_id);
    ASSERT_NE(fd, nullptr);
    if (!fd->stats.delays_ms().empty()) {
      dcf_voip_p99 = std::max(dcf_voip_p99, fd->stats.delays_ms().quantile(0.99));
    }
    dcf_voip_loss = std::max(dcf_voip_loss, fd->stats.loss_rate());
    tdma_voip_p99 =
        std::max(tdma_voip_p99, ft->stats.delays_ms().quantile(0.99));
  }
  EXPECT_TRUE(dcf_voip_p99 > 2.0 * tdma_voip_p99 || dcf_voip_loss > 0.05)
      << "dcf p99 " << dcf_voip_p99 << "ms loss " << dcf_voip_loss
      << " | tdma p99 " << tdma_voip_p99 << "ms";
}

TEST(MeshNetworkTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    MeshConfig cfg = chain_config(4);
    cfg.seed = seed;
    MeshNetwork net(cfg);
    net.add_voip_call(0, 0, 3, VoipCodec::g729());
    WIMESH_ASSERT(net.compute_plan().has_value());
    const SimulationResult r =
        net.run(MacMode::kTdmaOverlay, SimTime::seconds(2));
    return std::make_tuple(r.flows[0].stats.delivered_packets(),
                           r.flows[0].stats.delays_ms().mean(),
                           r.frames_transmitted);
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(MeshNetworkTest, AutoGuardTracksSyncConfig) {
  MeshConfig cfg = chain_config(6);
  cfg.auto_guard = true;
  cfg.sync.drift_ppm_stddev = 50.0;  // terrible crystals
  MeshNetwork sloppy(cfg);
  // Guard equals the sync bound at the mesh diameter (depth 5 from node 0).
  EXPECT_EQ(sloppy.effective_guard(), cfg.sync.recommended_guard(5));
  cfg.sync.drift_ppm_stddev = 1.0;
  MeshNetwork tight(cfg);
  EXPECT_GT(sloppy.effective_guard(), tight.effective_guard());

  cfg.auto_guard = false;
  cfg.emulation.guard_time = SimTime::microseconds(123);
  MeshNetwork manual(cfg);
  EXPECT_EQ(manual.effective_guard(), SimTime::microseconds(123));
}

TEST(MeshNetworkTest, EdcaModeRunsEndToEnd) {
  MeshConfig cfg = chain_config(4);
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g729());
  net.add_flow(FlowSpec::best_effort(50, 3, 0, 1000, 1e6));
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(MacMode::kEdca, SimTime::seconds(3));
  const FlowResult* voip = r.find_flow(0);
  const FlowResult* be = r.find_flow(50);
  ASSERT_NE(voip, nullptr);
  ASSERT_NE(be, nullptr);
  EXPECT_GT(voip->stats.delivered_packets(), 100u);
  EXPECT_GT(be->stats.delivered_packets(), 100u);
  // Light load: EDCA keeps voice fast.
  EXPECT_LT(voip->stats.delays_ms().mean(), 10.0);
}

TEST(MeshNetworkTest, VideoFlowRunsOverTdma) {
  MeshConfig cfg = chain_config(4);
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(20);
  cfg.emulation.frame.data_slots = 196;
  MeshNetwork net(cfg);
  net.add_flow(FlowSpec::video(0, 3, 0, 600e3));
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(5));
  const FlowResult* video = r.find_flow(0);
  ASSERT_NE(video, nullptr);
  // Mean goodput within 20% of the reserved rate, zero loss (bursts queue,
  // they do not drop — the guaranteed queue is unbounded).
  EXPECT_LT(video->stats.loss_rate(), 0.001);
  EXPECT_NEAR(video->stats.throughput_bps(r.measured_interval), 600e3,
              120e3);
}

TEST(MeshNetworkTest, DcfRtsCtsModeRunsEndToEnd) {
  MeshConfig cfg = chain_config(4);
  cfg.dcf_rts_cts = true;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 3, VoipCodec::g711());
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(MacMode::kDcf, SimTime::seconds(3));
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.02);
  }
  // RTS/CTS mode puts four frames on air per packet exchange: the channel
  // must show far more transmissions than packets delivered.
  std::uint64_t delivered = 0;
  for (const FlowResult& f : r.flows) delivered += f.stats.delivered_packets();
  EXPECT_GT(r.frames_transmitted, 3 * delivered);
}

TEST(MeshNetworkTest, OverrideScheduleRecomputesDelayAnalytics) {
  MeshConfig cfg = chain_config(4);
  MeshNetwork net(cfg);
  net.add_flow(FlowSpec::voip(0, 0, 3, VoipCodec::g729()));
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimTime before = net.plan().guaranteed[0].worst_case_delay;

  // Build a deliberately bad (reversed) schedule over the same links.
  const MeshPlan& plan = net.plan();
  SchedulingProblem p;
  p.links = plan.links;
  p.demand = plan.guaranteed_demand;
  p.conflicts = plan.conflicts;
  p.flows.push_back(FlowPath{plan.guaranteed[0].links, 10});
  // Reverse order: every hop transmits after its downstream hop. Complete
  // the relation by reversed path rank so it stays acyclic.
  TransmissionOrder order(p.links.count());
  const auto& links = plan.guaranteed[0].links;
  const auto rank = [&](LinkId l) {
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i] == l) return static_cast<int>(i);
    }
    return -1;
  };
  for (EdgeId e = 0; e < p.conflicts.edge_count(); ++e) {
    const LinkId a = p.conflicts.edge(e).u;
    const LinkId b = p.conflicts.edge(e).v;
    if (rank(a) > rank(b)) {
      order.set_before(a, b);  // later hops first
    } else {
      order.set_before(b, a);
    }
  }
  const auto bad = order_to_schedule(p, order,
                                     cfg.emulation.frame.data_slots);
  ASSERT_TRUE(bad.has_value());
  net.override_schedule(*bad);
  const SimTime after = net.plan().guaranteed[0].worst_case_delay;
  EXPECT_GT(after, before);  // reversed order must look worse analytically
}

TEST(MeshNetworkTest, DrainPeriodFlushesInFlightPackets) {
  // With a zero drain, packets in flight at the horizon count as lost;
  // with the default drain they complete. Compare the same seed.
  MeshConfig cfg = chain_config(5);
  auto run = [&](SimTime drain) {
    MeshNetwork net(cfg);
    net.add_voip_call(0, 0, 4, VoipCodec::g729());
    WIMESH_ASSERT(net.compute_plan().has_value());
    return net.run(MacMode::kTdmaOverlay, SimTime::seconds(2), drain);
  };
  const SimulationResult no_drain = run(SimTime::zero());
  const SimulationResult with_drain = run(SimTime::milliseconds(500));
  double no_drain_loss = 0.0, drain_loss = 0.0;
  for (const FlowResult& f : no_drain.flows) {
    no_drain_loss = std::max(no_drain_loss, f.stats.loss_rate());
  }
  for (const FlowResult& f : with_drain.flows) {
    drain_loss = std::max(drain_loss, f.stats.loss_rate());
  }
  EXPECT_LE(drain_loss, no_drain_loss);
  EXPECT_DOUBLE_EQ(drain_loss, 0.0);
}

TEST(MeshNetworkTest, GridMeshEndToEnd) {
  MeshConfig cfg;
  cfg.topology = make_grid(3, 3, 100.0);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 8, VoipCodec::g729());
  net.add_voip_call(2, 2, 6, VoipCodec::g729());
  const auto plan = net.compute_plan();
  ASSERT_TRUE(plan.has_value()) << plan.error();
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(3));
  for (const FlowResult& f : r.flows) {
    EXPECT_LT(f.stats.loss_rate(), 0.01) << "flow " << f.spec.id;
    EXPECT_TRUE(f.delay_bound_met);
  }
  EXPECT_EQ(r.receptions_corrupted, 0u);
}

}  // namespace
}  // namespace wimesh
