// Golden scale-equivalence suite: the two optimizations that make
// city-scale runs tractable must be invisible to every result.
//
//  * The sparse conflict-graph builders (spatial hash / graph
//    neighborhoods) must produce the exact graph — node count, edge count,
//    edge insertion order, hence EdgeIds — of the O(L^2) pairwise
//    reference builders, across every topology family and every shipped
//    scenario file.
//  * The calendar-queue DES kernel must reproduce the binary heap's
//    simulation results byte-for-byte (compared through the batch
//    runner's deterministic JSON serialization).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "wimesh/batch/runner.h"
#include "wimesh/common/rng.h"
#include "wimesh/core/scenario.h"
#include "wimesh/graph/topology.h"
#include "wimesh/phy/radio_model.h"
#include "wimesh/qos/planner.h"
#include "wimesh/sched/conflict_graph.h"

namespace wimesh {
namespace {

// Both directions of every topology edge, in edge order — the densest
// link set a schedule can cover.
LinkSet all_directed_links(const Graph& g) {
  LinkSet links;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    links.add({g.edge(e).u, g.edge(e).v});
    links.add({g.edge(e).v, g.edge(e).u});
  }
  return links;
}

// Bit-for-bit graph equality: same nodes, same edges, same insertion
// order. EdgeIds index per-edge attribute vectors downstream, so "same
// edges in a different order" would NOT be equivalent.
void expect_same_graph(const Graph& sparse, const Graph& naive,
                       const std::string& what) {
  ASSERT_EQ(sparse.node_count(), naive.node_count()) << what;
  ASSERT_EQ(sparse.edge_count(), naive.edge_count()) << what;
  for (EdgeId e = 0; e < sparse.edge_count(); ++e) {
    EXPECT_EQ(sparse.edge(e).u, naive.edge(e).u) << what << " edge " << e;
    EXPECT_EQ(sparse.edge(e).v, naive.edge(e).v) << what << " edge " << e;
  }
}

std::vector<std::pair<std::string, Topology>> topology_family() {
  std::vector<std::pair<std::string, Topology>> topos;
  topos.emplace_back("chain20", make_chain(20, 100.0));
  topos.emplace_back("ring12", make_ring(12, 200.0));
  topos.emplace_back("grid7x7", make_grid(7, 7, 100.0));
  topos.emplace_back("tree2x3", make_tree(2, 3, 100.0));
  Rng rng(7);
  topos.emplace_back("random40",
                     make_random_geometric(40, 600.0, 170.0, rng));
  // Dense cluster: every node within interference range of every other —
  // the spatial hash's worst case (all candidates in one 3x3 block).
  topos.emplace_back("grid3x3_dense", make_grid(3, 3, 50.0));
  return topos;
}

TEST(ScaleEquivalenceTest, SparseGeometricBuilderMatchesNaive) {
  for (const auto& [name, topo] : topology_family()) {
    const LinkSet links = all_directed_links(topo.graph);
    for (const double interference : {110.0, 220.0, 330.0}) {
      const RadioModel radio(110.0, interference);
      expect_same_graph(
          build_conflict_graph(links, topo.positions, radio),
          build_conflict_graph_naive(links, topo.positions, radio),
          name + " @" + std::to_string(interference));
    }
  }
}

TEST(ScaleEquivalenceTest, SparseConnectivityBuilderMatchesNaive) {
  for (const auto& [name, topo] : topology_family()) {
    const LinkSet links = all_directed_links(topo.graph);
    expect_same_graph(build_conflict_graph(links, topo.graph),
                      build_conflict_graph_naive(links, topo.graph), name);
  }
}

// The builders must also agree on sparse link subsets (routed flows touch
// a fraction of the links, and zone subproblems even fewer).
TEST(ScaleEquivalenceTest, SparseBuildersMatchNaiveOnLinkSubsets) {
  const Topology topo = make_grid(7, 7, 100.0);
  const LinkSet all = all_directed_links(topo.graph);
  LinkSet subset;
  for (LinkId l = 0; l < all.count(); l += 3) subset.add(all.link(l));
  const RadioModel radio(110.0, 220.0);
  expect_same_graph(build_conflict_graph(subset, topo.positions, radio),
                    build_conflict_graph_naive(subset, topo.positions, radio),
                    "grid7x7 subset geometric");
  expect_same_graph(build_conflict_graph(subset, topo.graph),
                    build_conflict_graph_naive(subset, topo.graph),
                    "grid7x7 subset connectivity");
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Every shipped scenario's BuiltProblem — the exact conflict graph the
// planner schedules against — must be reproduced by the naive builder.
TEST(ScaleEquivalenceTest, ScenarioFileProblemsMatchNaive) {
  const std::string dir = WIMESH_SCENARIO_DIR;
  for (const char* file : {"community.wimesh", "hidden_terminal.wimesh",
                           "video_surveillance.wimesh"}) {
    const auto sc = parse_scenario(read_file_or_die(dir + "/" + file));
    ASSERT_TRUE(sc.has_value()) << file << ": " << sc.error();
    const RadioModel radio(sc->config.comm_range,
                           sc->config.interference_range);
    const QosPlanner planner(sc->config.topology, radio,
                             sc->config.emulation, sc->config.phy,
                             sc->config.routing);
    const BuiltProblem built = planner.build_problem(sc->flows);
    ASSERT_GT(built.problem.links.count(), 0) << file;
    expect_same_graph(
        built.problem.conflicts,
        build_conflict_graph_naive(built.problem.links,
                                   sc->config.topology.positions, radio),
        file);
  }
}

// Full-run differential: the same scenario simulated on the calendar
// queue and on the binary heap must serialize to the same bytes.
TEST(ScaleEquivalenceTest, CalendarQueueRunsMatchHeapByteForByte) {
  const std::string scenarios[] = {
      "topology = chain 4 100\n"
      "duration_s = 2\n"
      "audit = on\n"
      "voip 0 0 3 g729 100\n"
      "bulk 10 3 0 1200 500000\n",
      "topology = grid 3 3 100\n"
      "duration_s = 1\n"
      "scheduler = ilp-delay\n"
      "voip 0 8 0 g711 100\n"
      "video 1 6 0 400000\n",
      "topology = chain 5 100\n"
      "duration_s = 1\n"
      "mac = dcf\n"
      "voip 0 0 4 g711 150\n",
  };
  for (const std::string& base : scenarios) {
    const auto run = [&](const char* queue) {
      const auto sc =
          parse_scenario(base + "event_queue = " + queue + "\n");
      EXPECT_TRUE(sc.has_value()) << (sc.has_value() ? "" : sc.error());
      if (!sc.has_value()) return std::string();
      const std::vector<batch::RunSpec> specs = batch::seed_sweep(*sc, 1, 2);
      return batch::results_json(batch::run_batch(specs, {}));
    };
    const std::string calendar = run("calendar");
    const std::string heap = run("heap");
    EXPECT_FALSE(calendar.empty());
    EXPECT_EQ(calendar, heap);
  }
}

}  // namespace
}  // namespace wimesh
