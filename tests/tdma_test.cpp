#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wimesh/tdma/overlay.h"

namespace wimesh {
namespace {

EmulationParams params_10ms(int data_slots = 96, int control_slots = 4,
                            SimTime guard = SimTime::microseconds(50)) {
  EmulationParams p;
  p.frame.frame_duration = SimTime::milliseconds(10);
  p.frame.control_slots = control_slots;
  p.frame.data_slots = data_slots;
  p.guard_time = guard;
  return p;
}

TEST(EmulationMathTest, PacketsPerBlockBasics) {
  const EmulationParams p = params_10ms();
  const PhyMode phy = PhyMode::ofdm_802_11a(54);
  // Slot = 100 us; G.729 packet (60 B) service ≈ 34+16+44+airtime(94B) us.
  EXPECT_EQ(packets_per_block(p, phy, 0, 60), 0);
  EXPECT_GT(packets_per_block(p, phy, 10, 60), 0);
  // Monotone in block size.
  EXPECT_LE(packets_per_block(p, phy, 5, 60),
            packets_per_block(p, phy, 10, 60));
  // More bytes → fewer packets.
  EXPECT_GE(packets_per_block(p, phy, 10, 60),
            packets_per_block(p, phy, 10, 1500));
}

TEST(EmulationMathTest, BlockForPacketsInvertsPacketsPerBlock) {
  const EmulationParams p = params_10ms();
  const PhyMode phy = PhyMode::ofdm_802_11a(54);
  for (int packets = 1; packets <= 20; ++packets) {
    for (std::size_t bytes : {60u, 200u, 1500u}) {
      const int k = block_for_packets(p, phy, packets, bytes);
      if (k < 0) continue;  // does not fit the data subframe
      EXPECT_GE(packets_per_block(p, phy, k, bytes), packets)
          << packets << " pkts of " << bytes;
      if (k > 1) {
        EXPECT_LT(packets_per_block(p, phy, k - 1, bytes), packets)
            << packets << " pkts of " << bytes;
      }
    }
  }
}

TEST(EmulationMathTest, BlockForPacketsRejectsOversize) {
  const EmulationParams p = params_10ms(8);  // tiny data subframe
  const PhyMode phy = PhyMode::ofdm_802_11a(6);
  EXPECT_EQ(block_for_packets(p, phy, 100, 1500), -1);
}

TEST(EmulationMathTest, EfficiencyDecreasesWithGuard) {
  const PhyMode phy = PhyMode::ofdm_802_11a(54);
  const double e_small =
      emulation_efficiency(params_10ms(96, 4, SimTime::microseconds(10)),
                           phy, 1500);
  const double e_large =
      emulation_efficiency(params_10ms(96, 4, SimTime::microseconds(500)),
                           phy, 1500);
  EXPECT_GT(e_small, e_large);
  EXPECT_GT(e_small, 0.0);
  EXPECT_LT(e_small, 1.0);
}

TEST(EmulationMathTest, EfficiencyHigherForLargerPackets) {
  // Per-packet MAC overhead amortizes over bigger payloads.
  const EmulationParams p = params_10ms();
  const PhyMode phy = PhyMode::ofdm_802_11a(54);
  EXPECT_GT(emulation_efficiency(p, phy, 1500),
            emulation_efficiency(p, phy, 60));
}

// ---- Integration rig: 3-node chain, manual 2-block schedule, perfect sync.

struct OverlayRig {
  Simulator sim;
  std::unique_ptr<WifiChannel> channel;
  std::vector<std::unique_ptr<DcfMac>> macs;
  std::unique_ptr<SyncProtocol> sync;
  std::vector<std::unique_ptr<TdmaOverlayNode>> overlays;
  Topology topo;
  EmulationParams params;
  std::vector<std::pair<NodeId, MacPacket>> delivered;

  explicit OverlayRig(SimTime guard = SimTime::microseconds(50),
                      double drift_ppm = 0.0,
                      SimTime hop_err = SimTime::zero())
      : topo(make_chain(3, 100.0)), params(params_10ms(96, 4, guard)) {
    Rng root(4242);
    channel = std::make_unique<WifiChannel>(
        sim, topo.positions, RadioModel(110.0, 220.0),
        PhyMode::ofdm_802_11a(54), ErrorModel{0.0}, root.split());
    for (NodeId i = 0; i < 3; ++i) {
      DcfMac::Callbacks cb;
      cb.on_delivered = [this, i](const MacPacket& p) {
        delivered.emplace_back(i, p);
      };
      DcfMac::Config cfg;
      cfg.zero_backoff = true;
      macs.push_back(std::make_unique<DcfMac>(sim, *channel, i, root.split(),
                                              std::move(cb), cfg));
    }
    SyncConfig scfg;
    scfg.drift_ppm_stddev = drift_ppm;
    scfg.per_hop_error_stddev = hop_err;
    sync = std::make_unique<SyncProtocol>(sim, topo.graph, 0, scfg,
                                          root.split(),
                                          /*initial_offset_bound=*/SimTime::zero());
    sync->start();
    for (NodeId i = 0; i < 3; ++i) {
      overlays.push_back(std::make_unique<TdmaOverlayNode>(
          sim, *macs[static_cast<std::size_t>(i)], *sync, i, params));
    }
  }
};

TEST(TdmaOverlayTest, PacketsFlowOnlyDuringGrantsAndArriveInOrder) {
  OverlayRig rig;
  // Link 0: node0→node1 gets slots [0, 20); link 1: node1→node2 [20, 40).
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, 20}}});
  rig.overlays[1]->set_grants(
      {TdmaOverlayNode::TxGrant{1, 2, SlotRange{20, 20}}});
  rig.overlays[2]->set_grants({});
  for (auto& o : rig.overlays) o->start(SimTime::seconds(1));

  // Node 1 forwards on its own link when packets land on it.
  // (Manual forwarding for the rig; core automates this.)
  MacPacket p;
  p.id = 1;
  p.flow_id = 9;
  p.bytes = 200;
  p.created_at = SimTime::zero();
  rig.overlays[0]->enqueue(0, p);

  rig.sim.schedule_at(SimTime::milliseconds(5), [&] {
    // By mid-frame the first hop must have delivered to node 1.
    ASSERT_EQ(rig.delivered.size(), 1u);
    EXPECT_EQ(rig.delivered[0].first, 1);
    MacPacket fwd = rig.delivered[0].second;
    rig.overlays[1]->enqueue(1, fwd);
  });
  rig.sim.run_until(SimTime::milliseconds(40));

  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.delivered[1].first, 2);
  EXPECT_EQ(rig.overlays[0]->busy_at_slot_start(), 0u);
  EXPECT_EQ(rig.overlays[1]->busy_at_slot_start(), 0u);
  EXPECT_EQ(rig.overlays[0]->packets_released(), 1u);
}

TEST(TdmaOverlayTest, FirstHopDeliveryHappensInsideItsBlock) {
  OverlayRig rig;
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{10, 10}}});
  rig.overlays[1]->set_grants({});
  rig.overlays[2]->set_grants({});
  for (auto& o : rig.overlays) o->start(SimTime::seconds(1));
  MacPacket p;
  p.id = 1;
  p.bytes = 200;
  rig.overlays[0]->enqueue(0, p);
  rig.sim.run_until(SimTime::milliseconds(10));
  ASSERT_EQ(rig.delivered.size(), 1u);
  // Block = data slots [10, 20) → [1.4 ms, 2.4 ms) within the frame.
  // (4 control slots × 100 us precede the data subframe.)
  const SimTime block_start = SimTime::microseconds((4 + 10) * 100);
  const SimTime block_end = SimTime::microseconds((4 + 20) * 100);
  // Delivery event lands inside the block.
  EXPECT_TRUE(rig.sim.now() <= SimTime::milliseconds(10));
  (void)block_start;
  (void)block_end;
  EXPECT_EQ(rig.overlays[0]->busy_at_slot_start(), 0u);
}

TEST(TdmaOverlayTest, OverflowTrafficWaitsForLaterFrames) {
  OverlayRig rig;
  // A block sized for ~4 packets of 200 B.
  const int block = block_for_packets(rig.params, PhyMode::ofdm_802_11a(54),
                                      4, 200);
  ASSERT_GT(block, 0);
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, block}}});
  rig.overlays[1]->set_grants({});
  rig.overlays[2]->set_grants({});
  for (auto& o : rig.overlays) o->start(SimTime::seconds(1));
  for (std::uint64_t i = 1; i <= 10; ++i) {
    MacPacket p;
    p.id = i;
    p.bytes = 200;
    rig.overlays[0]->enqueue(0, p);
  }
  rig.sim.run_until(SimTime::milliseconds(9));
  const std::size_t after_frame1 = rig.delivered.size();
  EXPECT_GE(after_frame1, 4u);
  EXPECT_LT(after_frame1, 10u);  // the rest wait for the next frame
  rig.sim.run_until(SimTime::milliseconds(29));
  EXPECT_EQ(rig.delivered.size(), 10u);
  EXPECT_EQ(rig.overlays[0]->total_queued(), 0u);
}

TEST(TdmaOverlayTest, NoCollisionsUnderDriftWithAdequateGuard) {
  // Conflicting grants back-to-back + drifting clocks: the guard absorbs
  // misalignment, so nothing is ever corrupted.
  SyncConfig probe;
  probe.drift_ppm_stddev = 20.0;
  probe.per_hop_error_stddev = SimTime::microseconds(2);
  const SimTime guard = probe.recommended_guard(2);
  OverlayRig rig(guard, 20.0, SimTime::microseconds(2));
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, 48}}});
  rig.overlays[1]->set_grants(
      {TdmaOverlayNode::TxGrant{1, 2, SlotRange{48, 48}}});
  rig.overlays[2]->set_grants({});
  for (auto& o : rig.overlays) o->start(SimTime::seconds(2));
  // Saturate both links every frame.
  for (int frame = 0; frame < 200; ++frame) {
    rig.sim.schedule_at(SimTime::milliseconds(10 * frame), [&] {
      for (std::uint64_t i = 0; i < 20; ++i) {
        MacPacket p;
        p.id = i + 1;
        p.bytes = 500;
        rig.overlays[0]->enqueue(0, p);
        rig.overlays[1]->enqueue(1, p);
      }
    });
  }
  rig.sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(rig.channel->receptions_corrupted(), 0u);
  EXPECT_GT(rig.delivered.size(), 1000u);
}

TEST(TdmaOverlayTest, MultipleGrantsPerLinkAllServeTheQueue) {
  // A fragmented allocation (primary + best-effort extras) is just several
  // TxGrants on the same link; packets drain across all of them.
  OverlayRig rig;
  rig.overlays[0]->set_grants({
      TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, 4}},
      TdmaOverlayNode::TxGrant{0, 1, SlotRange{40, 4}},
      TdmaOverlayNode::TxGrant{0, 1, SlotRange{80, 4}},
  });
  rig.overlays[1]->set_grants({});
  rig.overlays[2]->set_grants({});
  for (auto& o : rig.overlays) o->start(SimTime::seconds(1));
  const int per_block =
      packets_per_block(rig.params, PhyMode::ofdm_802_11a(54), 4, 200);
  ASSERT_GE(per_block, 1);
  const int total = 3 * per_block;
  for (int i = 0; i < total; ++i) {
    MacPacket p;
    p.id = static_cast<std::uint64_t>(i + 1);
    p.bytes = 200;
    rig.overlays[0]->enqueue(0, p);
  }
  // One frame serves all three blocks.
  rig.sim.run_until(SimTime::milliseconds(10));
  EXPECT_EQ(rig.delivered.size(), static_cast<std::size_t>(total));
  EXPECT_EQ(rig.overlays[0]->busy_at_slot_start(), 0u);
}

TEST(TdmaOverlayTest, BestEffortQueueIsBoundedAndCounted) {
  OverlayRig rig;
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, 1}}});
  rig.overlays[1]->set_grants({});
  rig.overlays[2]->set_grants({});
  // Flood far beyond the 256-packet best-effort cap before any slot fires.
  for (int i = 0; i < 1000; ++i) {
    MacPacket p;
    p.id = static_cast<std::uint64_t>(i + 1);
    p.bytes = 200;
    rig.overlays[0]->enqueue(0, p, /*guaranteed=*/false);
  }
  EXPECT_EQ(rig.overlays[0]->best_effort_drops(), 1000u - 256u);
  EXPECT_EQ(rig.overlays[0]->total_queued(), 256u);
}

TEST(TdmaOverlayTest, GuaranteedQueueIsNeverDropped) {
  OverlayRig rig;
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, 1}}});
  for (int i = 0; i < 1000; ++i) {
    MacPacket p;
    p.id = static_cast<std::uint64_t>(i + 1);
    p.bytes = 200;
    rig.overlays[0]->enqueue(0, p, /*guaranteed=*/true);
  }
  EXPECT_EQ(rig.overlays[0]->best_effort_drops(), 0u);
  EXPECT_EQ(rig.overlays[0]->total_queued(), 1000u);
}

TEST(TdmaOverlayTest, EnqueueOnUnknownLinkIsRejected) {
  // A packet can legitimately race a schedule hot-swap and target a link
  // the node no longer holds; enqueue reports it instead of aborting so
  // the runner can account the drop.
  OverlayRig rig;
  rig.overlays[0]->set_grants(
      {TdmaOverlayNode::TxGrant{0, 1, SlotRange{0, 10}}});
  MacPacket p;
  p.bytes = 100;
  EXPECT_FALSE(rig.overlays[0]->enqueue(5, p));
  EXPECT_EQ(rig.overlays[0]->total_queued(), 0u);
  EXPECT_TRUE(rig.overlays[0]->enqueue(0, p));
  EXPECT_EQ(rig.overlays[0]->total_queued(), 1u);
}

}  // namespace
}  // namespace wimesh
