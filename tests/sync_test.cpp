#include <gtest/gtest.h>

#include <cmath>

#include "wimesh/graph/topology.h"
#include "wimesh/sync/sync.h"

namespace wimesh {
namespace {

TEST(SyncConfigTest, ErrorBoundGrowsWithHopsAndDrift) {
  SyncConfig cfg;
  const SimTime b1 = cfg.max_error_bound(1);
  const SimTime b4 = cfg.max_error_bound(4);
  EXPECT_GT(b4, b1);
  EXPECT_GT(b1, SimTime::zero());

  SyncConfig fast = cfg;
  fast.resync_interval = cfg.resync_interval / 10;
  EXPECT_LT(fast.max_error_bound(4), cfg.max_error_bound(4));

  SyncConfig stable = cfg;
  stable.drift_ppm_stddev = 0.0;
  stable.per_hop_error_stddev = SimTime::zero();
  EXPECT_EQ(stable.max_error_bound(10), SimTime::zero());
}

TEST(SyncConfigTest, GuardIsTwiceTheBound) {
  SyncConfig cfg;
  EXPECT_EQ(cfg.recommended_guard(3), cfg.max_error_bound(3) * 2);
}

TEST(SyncProtocolTest, MasterHasZeroError) {
  Simulator sim;
  const Topology t = make_chain(5, 100.0);
  SyncProtocol sync(sim, t.graph, 0, SyncConfig{}, Rng(7));
  sync.start();
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(sync.error(0, sim.now()), SimTime::zero());
  EXPECT_EQ(sync.local_time(0, sim.now()), sim.now());
}

TEST(SyncProtocolTest, TreeDepthMatchesTopology) {
  Simulator sim;
  const Topology t = make_chain(6, 100.0);
  SyncProtocol sync(sim, t.graph, 0, SyncConfig{}, Rng(7));
  EXPECT_EQ(sync.max_tree_depth(), 5);
  const Topology star = make_tree(5, 1);
  Simulator sim2;
  SyncProtocol sync2(sim2, star.graph, 0, SyncConfig{}, Rng(7));
  EXPECT_EQ(sync2.max_tree_depth(), 1);
}

TEST(SyncProtocolTest, WavesRunPeriodically) {
  Simulator sim;
  const Topology t = make_chain(4, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::milliseconds(100);
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(7));
  sync.start();
  sim.run_until(SimTime::milliseconds(450));
  // Waves at 0, 100, 200, 300, 400 ms.
  EXPECT_EQ(sync.waves_completed(), 5u);
}

TEST(SyncProtocolTest, ErrorsStayWithinBoundAfterSync) {
  Simulator sim;
  const Topology t = make_chain(8, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::milliseconds(200);
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(11));
  sync.start();
  const SimTime bound = cfg.max_error_bound(sync.max_tree_depth());
  int violations = 0;
  int samples = 0;
  for (int step = 1; step <= 50; ++step) {
    const SimTime when = SimTime::milliseconds(step * 37);
    sim.run_until(when);
    for (NodeId n = 0; n < t.node_count(); ++n) {
      const SimTime e = sync.error(n, sim.now());
      ++samples;
      if (e > bound || e < -bound) ++violations;
    }
  }
  // 3-sigma bound: violations must be rare (< 1%).
  EXPECT_LT(violations, samples / 100 + 1);
}

TEST(SyncProtocolTest, ErrorGrowsLinearlyBetweenWaves) {
  Simulator sim;
  const Topology t = make_chain(3, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::seconds(10);  // one wave only
  cfg.per_hop_error_stddev = SimTime::zero();  // isolate drift
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(13));
  sync.start();
  sim.run_until(SimTime::milliseconds(1));
  const SimTime e1 = sync.error(1, SimTime::milliseconds(100));
  const SimTime e2 = sync.error(1, SimTime::milliseconds(200));
  const SimTime e3 = sync.error(1, SimTime::milliseconds(300));
  // Equal spacing → equal increments (pure linear drift).
  EXPECT_NEAR(static_cast<double>((e2 - e1).ns()),
              static_cast<double>((e3 - e2).ns()), 2.0);
}

TEST(SyncProtocolTest, GlobalTimeForLocalInvertsLocalTime) {
  Simulator sim;
  const Topology t = make_chain(5, 100.0);
  SyncConfig cfg;
  cfg.drift_ppm_stddev = 20.0;
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(17));
  sync.start();
  sim.run_until(SimTime::milliseconds(50));
  for (NodeId n = 0; n < t.node_count(); ++n) {
    const SimTime target_local = SimTime::milliseconds(120);
    const SimTime g = sync.global_time_for_local(n, target_local);
    const SimTime roundtrip = sync.local_time(n, g);
    EXPECT_NEAR(static_cast<double>((roundtrip - target_local).ns()), 0.0,
                2.0)
        << "node " << n;
  }
}

TEST(SyncProtocolTest, ZeroNoiseConfigKeepsPerfectClocks) {
  Simulator sim;
  const Topology t = make_grid(3, 3, 100.0);
  SyncConfig cfg;
  cfg.per_hop_error_stddev = SimTime::zero();
  cfg.drift_ppm_stddev = 0.0;
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(19),
                    /*initial_offset_bound=*/SimTime::zero());
  sync.start();
  sim.run_until(SimTime::seconds(1));
  for (NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(sync.error(n, sim.now()), SimTime::zero());
  }
}

TEST(SyncProtocolTest, InitialOffsetsAreSymmetric) {
  // Regression: initial offsets were drawn uniform in [0, bound), biasing
  // every unsynced clock fast. Before the first wave both signs must occur
  // and no offset may leave (-bound, bound).
  const Topology t = make_chain(16, 100.0);
  const SimTime bound = SimTime::microseconds(50);
  int negative = 0, positive = 0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Simulator sim;
    SyncProtocol sync(sim, t.graph, 0, SyncConfig{}, Rng(seed), bound);
    // No start(): probe the cold clocks directly.
    for (NodeId n = 1; n < t.node_count(); ++n) {
      const SimTime e = sync.error(n, SimTime::zero());
      EXPECT_GT(e, -bound);
      EXPECT_LT(e, bound);
      if (e < SimTime::zero()) ++negative;
      if (e > SimTime::zero()) ++positive;
    }
  }
  // 45 draws; each sign misses with probability 2^-45 under the fix.
  EXPECT_GT(negative, 0);
  EXPECT_GT(positive, 0);
}

TEST(SyncProtocolTest, DeterministicForSameSeed) {
  auto sample = [](std::uint64_t seed) {
    Simulator sim;
    const Topology t = make_chain(6, 100.0);
    SyncProtocol sync(sim, t.graph, 0, SyncConfig{}, Rng(seed));
    sync.start();
    sim.run_until(SimTime::seconds(1));
    std::vector<std::int64_t> errors;
    for (NodeId n = 0; n < t.node_count(); ++n) {
      errors.push_back(sync.error(n, sim.now()).ns());
    }
    return errors;
  };
  EXPECT_EQ(sample(5), sample(5));
  EXPECT_NE(sample(5), sample(6));
}

// ------------------------------------------- validation and failover

TEST(SyncValidationTest, RejectsEmptyTopology) {
  const Graph empty(0);
  const auto v = SyncProtocol::validate(empty, 0);
  ASSERT_FALSE(v.has_value());
  EXPECT_NE(v.error().find("no nodes"), std::string::npos);
}

TEST(SyncValidationTest, RejectsOutOfRangeMaster) {
  const Topology t = make_chain(4, 100.0);
  for (NodeId bad : {NodeId{-1}, NodeId{4}, NodeId{99}}) {
    const auto v = SyncProtocol::validate(t.graph, bad);
    ASSERT_FALSE(v.has_value()) << "master " << bad;
    EXPECT_NE(v.error().find("out of range"), std::string::npos);
  }
}

TEST(SyncValidationTest, RejectsDisconnectedTopology) {
  Graph g(4);
  g.add_edge(0, 1);  // 2 and 3 are isolated
  const auto v = SyncProtocol::validate(g, 0);
  ASSERT_FALSE(v.has_value());
  EXPECT_NE(v.error().find("disconnected"), std::string::npos);
}

TEST(SyncValidationTest, CreateFactoryMirrorsValidate) {
  Simulator sim;
  const Topology t = make_chain(4, 100.0);
  auto good = SyncProtocol::create(sim, t.graph, 0, SyncConfig{}, Rng(7));
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ((*good)->max_tree_depth(), 3);
  auto bad = SyncProtocol::create(sim, t.graph, 9, SyncConfig{}, Rng(7));
  EXPECT_FALSE(bad.has_value());
}

TEST(SyncFailoverTest, FailMasterStopsWavesAndReRootRestores) {
  Simulator sim;
  const Topology t = make_chain(4, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::milliseconds(100);
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(7));
  sync.start();
  sim.run_until(SimTime::seconds(1));
  EXPECT_TRUE(sync.master_alive());

  sync.fail_master();
  EXPECT_FALSE(sync.master_alive());

  // Fail over to node 1 with every node alive: the tree re-roots there,
  // the new master reads zero error again, and depth reflects the re-root
  // (node 3 is now 2 hops away instead of 3).
  const std::vector<char> alive(4, 1);
  sync.re_root(1, alive);
  EXPECT_TRUE(sync.master_alive());
  sim.run_until(sim.now() + cfg.resync_interval * 2);
  EXPECT_EQ(sync.error(1, sim.now()), SimTime::zero());
  EXPECT_EQ(sync.max_tree_depth(), 2);
}

TEST(SyncFailoverTest, ReRootExcludesDeadNodes) {
  Simulator sim;
  const Topology t = make_chain(4, 100.0);
  SyncProtocol sync(sim, t.graph, 0, SyncConfig{}, Rng(7));
  sync.start();
  sim.run_until(SimTime::milliseconds(50));
  // Node 1 dies: the chain is severed, so a re-root at 0 can only span
  // node 0 itself — the far side free-runs until the node recovers.
  std::vector<char> alive{1, 0, 1, 1};
  sync.re_root(0, alive);
  EXPECT_EQ(sync.max_tree_depth(), 0);
  alive[1] = 1;
  sync.re_root(0, alive);
  EXPECT_EQ(sync.max_tree_depth(), 3);
}

TEST(SyncFailoverTest, StepClockIsAbsorbedByNextWave) {
  Simulator sim;
  const Topology t = make_chain(3, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::milliseconds(100);
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(7));
  sync.start();
  sim.run_until(SimTime::seconds(1));

  const SimTime step = SimTime::microseconds(500);
  sync.step_clock(2, step);
  const SimTime disturbed = sync.error(2, sim.now());
  EXPECT_GE(disturbed, step - cfg.max_error_bound(2));

  sim.run_until(sim.now() + cfg.resync_interval * 2);
  const SimTime after = sync.error(2, sim.now());
  EXPECT_LT(after < SimTime::zero() ? SimTime::zero() - after : after,
            cfg.max_error_bound(2));
}

// ----------------------------------------------------- partitioned forest

TEST(SyncForestTest, ReRootForestGivesEachIslandItsOwnRoot) {
  Simulator sim;
  const Topology t = make_chain(5, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::milliseconds(100);
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(7));
  sync.start();
  sim.run_until(SimTime::milliseconds(250));

  // Node 2 dies, cutting {0,1} from {3,4}: one sync root per island.
  const std::vector<char> alive{1, 1, 0, 1, 1};
  sync.re_root_forest({0, 3}, alive);
  ASSERT_EQ(sync.masters().size(), 2u);
  EXPECT_EQ(sync.master(), 0);
  EXPECT_EQ(sync.master_of(0), 0);
  EXPECT_EQ(sync.master_of(1), 0);
  EXPECT_EQ(sync.master_of(2), kInvalidNode);
  EXPECT_EQ(sync.master_of(3), 3);
  EXPECT_EQ(sync.master_of(4), 3);
  EXPECT_EQ(sync.max_tree_depth(), 1);

  // Both roots read zero error against their own islands after a wave.
  sim.run_until(sim.now() + cfg.resync_interval * 2);
  EXPECT_EQ(sync.error(0, sim.now()), SimTime::zero());
  EXPECT_EQ(sync.error(3, sim.now()), SimTime::zero());
}

TEST(SyncForestTest, ZeroNeighborIslandMasterFreeRunsAlone) {
  Simulator sim;
  const Topology t = make_chain(4, 100.0);
  SyncConfig cfg;
  cfg.resync_interval = SimTime::milliseconds(100);
  SyncProtocol sync(sim, t.graph, 0, cfg, Rng(7));
  sync.start();
  sim.run_until(SimTime::milliseconds(250));

  // Node 1 dies: the incumbent master is stranded with zero surviving
  // neighbors. It must stay a (degenerate) root while {2,3} re-root.
  const std::vector<char> alive{1, 0, 1, 1};
  sync.re_root_forest({0, 2}, alive);
  ASSERT_EQ(sync.masters().size(), 2u);
  EXPECT_EQ(sync.master_of(0), 0);
  EXPECT_EQ(sync.master_of(1), kInvalidNode);
  EXPECT_EQ(sync.master_of(2), 2);
  EXPECT_EQ(sync.master_of(3), 2);
  EXPECT_EQ(sync.max_tree_depth(), 1);  // deepest island, not the loner

  // Waves keep running without touching the dead node; the loner's clock
  // is trivially exact against itself.
  sim.run_until(sim.now() + cfg.resync_interval * 3);
  EXPECT_EQ(sync.error(0, sim.now()), SimTime::zero());
  EXPECT_EQ(sync.error(2, sim.now()), SimTime::zero());
}

TEST(SyncForestTest, ForestReRootIsDeterministic) {
  const auto depths_after = [] {
    Simulator sim;
    const Topology t = make_grid(3, 3, 100.0);
    SyncProtocol sync(sim, t.graph, 0, SyncConfig{}, Rng(7));
    sync.start();
    sim.run_until(SimTime::milliseconds(500));
    const std::vector<char> alive{1, 1, 1, 0, 0, 0, 1, 1, 1};
    sync.re_root_forest({0, 6}, alive);
    sim.run_until(SimTime::seconds(1));
    std::vector<SimTime> errs;
    for (NodeId n = 0; n < 9; ++n) errs.push_back(sync.error(n, sim.now()));
    return errs;
  };
  EXPECT_EQ(depths_after(), depths_after());
}

}  // namespace
}  // namespace wimesh
