// wimesh::chaos tests: the seeded fuzzer's smoke budget (>= 10k fault and
// churn events across the chain/grid/tree families with zero auditor
// violations and zero oracle mismatches), determinism, the injected-bug
// fixture (caught and shrunk to a handful of events), and the script
// formatter round-tripping through the fault-plan grammar.

#include <gtest/gtest.h>

#include "wimesh/chaos/chaos.h"

namespace wimesh::chaos {
namespace {

ChaosOptions smoke_options() {
  ChaosOptions o;
  o.seed = 20260809;
  o.event_budget = 10000;
  return o;
}

TEST(ChaosSmokeTest, TenThousandEventsRunCleanAcrossFamilies) {
  const ChaosReport r = run_chaos(smoke_options());
  EXPECT_TRUE(r.ok()) << r.summary();
  EXPECT_GE(r.events, 10000u);
  EXPECT_GT(r.trials, 0u);
  EXPECT_GT(r.fault_events, 0u);
  EXPECT_GT(r.churn_events, 0u);
  EXPECT_EQ(r.audit_violations, 0u);
  EXPECT_EQ(r.oracle_mismatches, 0u);
  EXPECT_EQ(r.consistency_failures, 0u);
  EXPECT_FALSE(r.failure.has_value());
}

TEST(ChaosDeterminismTest, SameSeedSameReport) {
  ChaosOptions o;
  o.seed = 7;
  o.event_budget = 600;
  const ChaosReport a = run_chaos(o);
  const ChaosReport b = run_chaos(o);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_TRUE(a.ok()) << a.summary();
}

TEST(ChaosInjectedBugTest, RecoverLossIsCaughtAndShrunk) {
  ChaosOptions o;
  o.seed = 20260809;
  o.event_budget = 10000;
  o.inject_recover_loss_bug = true;
  const ChaosReport r = run_chaos(o);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.failure.has_value()) << r.summary();
  const TrialFailure& f = *r.failure;
  EXPECT_FALSE(f.detail.empty());
  // ddmin must shrink the reproducer to a handful of events — the crash
  // whose recovery the bug swallows plus the recover itself survive.
  EXPECT_LE(f.script.size(), 10u);
  EXPECT_LE(f.script.size(), f.original_events);
  bool has_recover = false;
  for (const auto& e : f.script) {
    has_recover |= e.kind == faults::FaultKind::kNodeRecover;
  }
  EXPECT_TRUE(has_recover) << r.summary();

  // The hunt is deterministic: same options, same minimal script.
  const ChaosReport again = run_chaos(o);
  ASSERT_TRUE(again.failure.has_value());
  EXPECT_EQ(again.failure->trial, f.trial);
  EXPECT_EQ(again.failure->script.size(), f.script.size());
  EXPECT_EQ(format_event_script(again.failure->script,
                                SimTime::milliseconds(o.detect_ms)),
            format_event_script(f.script,
                                SimTime::milliseconds(o.detect_ms)));
}

TEST(ChaosFormatTest, EventScriptRoundTripsThroughTheParser) {
  std::vector<faults::FaultEvent> events;
  faults::FaultEvent crash;
  crash.kind = faults::FaultKind::kNodeCrash;
  crash.at = SimTime::from_seconds(0.2);
  crash.node = 3;
  events.push_back(crash);
  faults::FaultEvent down;
  down.kind = faults::FaultKind::kLinkDown;
  down.at = SimTime::from_seconds(0.3);
  down.link_a = 1;
  down.link_b = 2;
  events.push_back(down);
  faults::FaultEvent recover;
  recover.kind = faults::FaultKind::kNodeRecover;
  recover.at = SimTime::from_seconds(0.4);
  recover.node = 3;
  events.push_back(recover);

  const std::string script =
      format_event_script(events, SimTime::milliseconds(50));
  const auto plan = faults::parse_fault_plan(script);
  ASSERT_TRUE(plan.has_value()) << script << "\n" << plan.error();
  ASSERT_EQ(plan->events.size(), events.size());
  EXPECT_EQ(plan->detection_delay, SimTime::milliseconds(50));
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(plan->events[i].kind, events[i].kind) << i;
    EXPECT_EQ(plan->events[i].at, events[i].at) << i;
    EXPECT_EQ(plan->events[i].node, events[i].node) << i;
    EXPECT_EQ(plan->events[i].link_a, events[i].link_a) << i;
    EXPECT_EQ(plan->events[i].link_b, events[i].link_b) << i;
  }
}

}  // namespace
}  // namespace wimesh::chaos
