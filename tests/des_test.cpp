#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "wimesh/des/simulator.h"

namespace wimesh {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::milliseconds(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::milliseconds(30));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::milliseconds(5), [&, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(SimTime::milliseconds(10), [&] {
    sim.schedule_in(SimTime::milliseconds(5), [&] { fired = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired, SimTime::milliseconds(15));
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::milliseconds(10), [&] { ++count; });
  sim.schedule_at(SimTime::milliseconds(20), [&] { ++count; });
  sim.schedule_at(SimTime::milliseconds(30), [&] { ++count; });
  sim.run_until(SimTime::milliseconds(20));
  EXPECT_EQ(count, 2);  // events at exactly the horizon run
  EXPECT_EQ(sim.now(), SimTime::milliseconds(20));
  sim.run_until(SimTime::milliseconds(100));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), SimTime::milliseconds(100));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h =
      sim.schedule_at(SimTime::milliseconds(10), [&] { fired = true; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelAfterFireIsNoOp) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(SimTime::milliseconds(1), [] {});
  sim.run_all();
  sim.cancel(h);  // must not crash or affect anything
  sim.cancel(h);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) sim.schedule_in(SimTime::microseconds(1), step);
  };
  sim.schedule_at(SimTime::zero(), step);
  sim.run_all();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(sim.now(), SimTime::microseconds(99));
}

TEST(SimulatorTest, StopHaltsTheLoop) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::milliseconds(1), [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(SimTime::milliseconds(2), [&] { ++count; });
  sim.run_all();
  EXPECT_EQ(count, 1);
  sim.run_all();  // resumes with remaining events
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(SimTime::milliseconds(1), [] {});
  sim.schedule_at(SimTime::milliseconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CancelFromWithinEarlierEvent) {
  Simulator sim;
  bool fired = false;
  const EventHandle later =
      sim.schedule_at(SimTime::milliseconds(10), [&] { fired = true; });
  sim.schedule_at(SimTime::milliseconds(5), [&] { sim.cancel(later); });
  sim.run_all();
  EXPECT_FALSE(fired);
}

// schedule_in must reject a negative delay by name — not fall through to
// schedule_at's past-check, whose message would blame the wrong API.
TEST(SimulatorDeathTest, NegativeDelayAsserts) {
  Simulator sim;
  EXPECT_DEATH(sim.schedule_in(SimTime::nanoseconds(-1), [] {}),
               "non-negative delay");
}

TEST(SimulatorTest, NegativeDelayFromWithinEventAsserts) {
  Simulator sim;
  sim.schedule_at(SimTime::milliseconds(5), [&] {
    // now() is 5ms here, so the absolute time would be valid — the delay
    // itself is still a caller bug and must die.
    EXPECT_DEATH(sim.schedule_in(SimTime::milliseconds(-1), [] {}),
                 "non-negative delay");
  });
  sim.run_all();
}

// Regression for the calendar queue's cursor: events pushed out of time
// order before the first pop (no now-barrier constrains them) must still
// execute in time order. The far-future push aims the cursor at its
// bucket; the near push must re-aim it or the sweep returns the wrong
// minimum.
TEST(SimulatorTest, OutOfOrderPushesBeforeFirstPopRunInOrder) {
  Simulator sim;  // calendar queue is the default
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(1), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::nanoseconds(5), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::milliseconds(1), [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_EQ(sim.now(), SimTime::seconds(1));
}

// Heavy cancel traffic on both queue kinds: pending_events must track
// exactly (queued - cancelled), double-cancels must be no-ops, and only
// surviving events may fire.
TEST(SimulatorTest, CancelAccountingStress) {
  for (const EventQueueKind kind :
       {EventQueueKind::kCalendarQueue, EventQueueKind::kBinaryHeap}) {
    Simulator sim(kind);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    const auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    std::vector<EventHandle> handles;
    std::size_t fired = 0;
    constexpr std::size_t kEvents = 3000;
    for (std::size_t i = 0; i < kEvents; ++i) {
      handles.push_back(sim.schedule_at(
          SimTime::nanoseconds(static_cast<std::int64_t>(next() % 1'000'000)),
          [&] { ++fired; }));
    }
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < handles.size(); i += 3) {
      sim.cancel(handles[i]);
      ++cancelled;
    }
    for (std::size_t i = 0; i < handles.size(); i += 9) {
      sim.cancel(handles[i]);  // repeat cancels must not double-count
    }
    sim.cancel(EventHandle{});  // invalid handle is a no-op
    EXPECT_EQ(sim.pending_events(), kEvents - cancelled);
    sim.run_all();
    EXPECT_EQ(fired, kEvents - cancelled);
    EXPECT_EQ(sim.events_executed(), kEvents - cancelled);
    EXPECT_EQ(sim.pending_events(), 0u);
  }
}

// Differential stress: the calendar queue and the binary heap must produce
// the exact same execution — same event order, same clock, same counters —
// on a workload of random times, equal-time bursts (FIFO ties), nested
// scheduling and random cancels. The workload is a pure function of the
// event order, so any ordering divergence desynchronizes the RNG streams
// and shows up as a log mismatch.
struct RunLog {
  std::vector<std::int64_t> times;
  std::vector<int> tags;
  std::uint64_t executed = 0;
  std::int64_t end_ns = 0;

  friend bool operator==(const RunLog&, const RunLog&) = default;
};

TEST(SimulatorTest, CalendarMatchesHeapOnRandomWorkload) {
  const auto run = [](EventQueueKind kind) {
    Simulator sim(kind);
    std::uint64_t x = 0x243f6a8885a308d3ull;
    const auto next = [&x] {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      return x;
    };
    RunLog log;
    std::vector<EventHandle> handles;
    int next_tag = 0;
    std::function<void(SimTime, int)> spawn = [&](SimTime t, int depth) {
      const int tag = next_tag++;
      handles.push_back(sim.schedule_at(t, [&, tag, depth] {
        log.times.push_back(sim.now().ns());
        log.tags.push_back(tag);
        if (depth < 2) {
          const int children = static_cast<int>(next() % 3);
          for (int c = 0; c < children; ++c) {
            spawn(sim.now() + SimTime::nanoseconds(
                                  static_cast<std::int64_t>(next() % 50'000)),
                  depth + 1);
          }
        }
        if (next() % 4 == 0) {
          sim.cancel(handles[next() % handles.size()]);
        }
      }));
    };
    for (int i = 0; i < 400; ++i) {
      spawn(SimTime::nanoseconds(static_cast<std::int64_t>(next() % 2'000'000)),
            0);
    }
    // Equal-time bursts: FIFO tie-breaking must match between the kinds.
    for (int i = 0; i < 64; ++i) spawn(SimTime::microseconds(700), 0);
    sim.run_all();
    log.executed = sim.events_executed();
    log.end_ns = sim.now().ns();
    return log;
  };
  const RunLog calendar = run(EventQueueKind::kCalendarQueue);
  const RunLog heap = run(EventQueueKind::kBinaryHeap);
  EXPECT_EQ(calendar, heap);
  EXPECT_GT(calendar.executed, 400u);  // the workload actually fanned out
}

// run_until interleaved with fresh pushes across horizons exercises the
// calendar cursor through repeated drain/refill cycles and resizes.
TEST(SimulatorTest, CalendarSurvivesDrainRefillCycles) {
  Simulator sim;
  std::size_t fired = 0;
  std::int64_t last_ns = -1;
  for (int round = 0; round < 20; ++round) {
    const std::int64_t base = round * 1'000'000;
    for (int i = 19; i >= 0; --i) {  // descending pushes inside each round
      sim.schedule_at(SimTime::nanoseconds(base + i * 1000), [&] {
        EXPECT_GE(sim.now().ns(), last_ns);
        last_ns = sim.now().ns();
        ++fired;
      });
    }
    sim.run_until(SimTime::nanoseconds(base + 500'000));
  }
  sim.run_all();
  EXPECT_EQ(fired, 400u);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::microseconds((i * 7919) % 100), [&trace, &sim] {
        trace.push_back(sim.now().ns());
      });
    }
    sim.run_all();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace wimesh
