#include <gtest/gtest.h>

#include <vector>

#include "wimesh/des/simulator.h"

namespace wimesh {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::milliseconds(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::milliseconds(30));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::milliseconds(5), [&, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(SimTime::milliseconds(10), [&] {
    sim.schedule_in(SimTime::milliseconds(5), [&] { fired = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired, SimTime::milliseconds(15));
}

TEST(SimulatorTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::milliseconds(10), [&] { ++count; });
  sim.schedule_at(SimTime::milliseconds(20), [&] { ++count; });
  sim.schedule_at(SimTime::milliseconds(30), [&] { ++count; });
  sim.run_until(SimTime::milliseconds(20));
  EXPECT_EQ(count, 2);  // events at exactly the horizon run
  EXPECT_EQ(sim.now(), SimTime::milliseconds(20));
  sim.run_until(SimTime::milliseconds(100));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), SimTime::milliseconds(100));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventHandle h =
      sim.schedule_at(SimTime::milliseconds(10), [&] { fired = true; });
  sim.cancel(h);
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelAfterFireIsNoOp) {
  Simulator sim;
  const EventHandle h = sim.schedule_at(SimTime::milliseconds(1), [] {});
  sim.run_all();
  sim.cancel(h);  // must not crash or affect anything
  sim.cancel(h);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) sim.schedule_in(SimTime::microseconds(1), step);
  };
  sim.schedule_at(SimTime::zero(), step);
  sim.run_all();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(sim.now(), SimTime::microseconds(99));
}

TEST(SimulatorTest, StopHaltsTheLoop) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::milliseconds(1), [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(SimTime::milliseconds(2), [&] { ++count; });
  sim.run_all();
  EXPECT_EQ(count, 1);
  sim.run_all();  // resumes with remaining events
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  const EventHandle a = sim.schedule_at(SimTime::milliseconds(1), [] {});
  sim.schedule_at(SimTime::milliseconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, CancelFromWithinEarlierEvent) {
  Simulator sim;
  bool fired = false;
  const EventHandle later =
      sim.schedule_at(SimTime::milliseconds(10), [&] { fired = true; });
  sim.schedule_at(SimTime::milliseconds(5), [&] { sim.cancel(later); });
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::microseconds((i * 7919) % 100), [&trace, &sim] {
        trace.push_back(sim.now().ns());
      });
    }
    sim.run_all();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace wimesh
