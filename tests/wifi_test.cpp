#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wimesh/des/simulator.h"
#include "wimesh/wifi/channel.h"
#include "wimesh/wifi/dcf_mac.h"

namespace wimesh {
namespace {

// Shared rig: N nodes on a line, `spacing` apart.
struct Rig {
  Simulator sim;
  std::unique_ptr<WifiChannel> channel;
  std::vector<std::unique_ptr<DcfMac>> macs;
  std::vector<MacPacket> delivered;       // with receiving node in `to`… see cb
  std::vector<NodeId> delivered_at;
  std::vector<MacPacket> sent_ok;
  std::vector<MacPacket> dropped;

  Rig(int n, double spacing, double comm, double interference,
      DcfMac::Config cfg = DcfMac::Config{}, double per = 0.0) {
    std::vector<Point> pos;
    for (int i = 0; i < n; ++i) {
      pos.push_back(Point{spacing * i, 0.0});
    }
    Rng root(99);
    channel = std::make_unique<WifiChannel>(
        sim, pos, RadioModel(comm, interference), PhyMode::ofdm_802_11a(54),
        ErrorModel{per}, root.split(), /*deliver_overheard=*/cfg.rts_cts);
    for (NodeId i = 0; i < n; ++i) {
      DcfMac::Callbacks cb;
      cb.on_delivered = [this, i](const MacPacket& p) {
        delivered.push_back(p);
        delivered_at.push_back(i);
      };
      cb.on_sent = [this](const MacPacket& p) { sent_ok.push_back(p); };
      cb.on_dropped = [this](const MacPacket& p, MacDropCause) {
        dropped.push_back(p);
      };
      macs.push_back(std::make_unique<DcfMac>(sim, *channel, i, root.split(),
                                              std::move(cb), cfg));
    }
  }

  MacPacket packet(std::uint64_t id, NodeId to, std::size_t bytes = 200) {
    MacPacket p;
    p.id = id;
    p.flow_id = 1;
    p.to = to;
    p.bytes = bytes;
    p.created_at = sim.now();
    return p;
  }
};

TEST(WifiChannelTest, AirtimeMatchesPhy) {
  Rig rig(2, 100.0, 150.0, 300.0);
  WifiFrame f;
  f.type = WifiFrame::Type::kData;
  f.packet.bytes = 200;
  EXPECT_EQ(rig.channel->frame_airtime(f),
            PhyMode::ofdm_802_11a(54).airtime(200 + kMacOverheadBytes));
  f.type = WifiFrame::Type::kAck;
  EXPECT_EQ(rig.channel->frame_airtime(f),
            PhyMode::ofdm_802_11a(54).ack_airtime());
}

TEST(DcfMacTest, UnicastDeliveryWithAck) {
  Rig rig(2, 100.0, 150.0, 300.0);
  rig.macs[0]->send(rig.packet(1, 1));
  rig.sim.run_until(SimTime::milliseconds(10));
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.delivered[0].id, 1u);
  EXPECT_EQ(rig.delivered_at[0], 1);
  ASSERT_EQ(rig.sent_ok.size(), 1u);  // ACK received back at node 0
  EXPECT_TRUE(rig.dropped.empty());
  EXPECT_EQ(rig.macs[0]->tx_attempts(), 1u);
  EXPECT_EQ(rig.macs[0]->retransmissions(), 0u);
}

TEST(DcfMacTest, DeliveryTimeIsDifsPlusAirtimeOnIdleMedium) {
  Rig rig(2, 100.0, 150.0, 300.0);
  rig.macs[0]->send(rig.packet(1, 1));
  rig.sim.run_until(SimTime::milliseconds(10));
  ASSERT_EQ(rig.delivered.size(), 1u);
  // Immediate access after DIFS (no backoff on an idle medium).
  const PhyMode phy = PhyMode::ofdm_802_11a(54);
  // Delivery callback fires at data frame end = DIFS + airtime.
  // We can't observe the delivery instant directly here, but the ACK round
  // trip must complete at DIFS + airtime + SIFS + ACK.
  EXPECT_EQ(rig.macs[0]->tx_attempts(), 1u);
  const SimTime expected = phy.difs() + phy.airtime(200 + kMacOverheadBytes) +
                           phy.sifs() + phy.ack_airtime();
  (void)expected;  // structural check above; timing asserted in next test
}

TEST(DcfMacTest, ZeroBackoffServiceTimeIsDeterministic) {
  DcfMac::Config cfg;
  cfg.zero_backoff = true;
  Rig rig(2, 100.0, 150.0, 300.0, cfg);
  const int kPackets = 20;
  for (int i = 0; i < kPackets; ++i) {
    rig.macs[0]->send(rig.packet(static_cast<std::uint64_t>(i + 1), 1));
  }
  rig.sim.run_all();
  ASSERT_EQ(rig.sent_ok.size(), static_cast<std::size_t>(kPackets));
  const SimTime per = DcfMac::overlay_service_time(PhyMode::ofdm_802_11a(54),
                                                   200);
  // The whole burst completes in exactly kPackets * service time.
  EXPECT_EQ(rig.sim.now(), per * kPackets);
}

TEST(DcfMacTest, BroadcastReachesAllNeighborsWithoutAck) {
  Rig rig(3, 100.0, 150.0, 300.0);
  rig.macs[1]->send(rig.packet(7, kInvalidNode));
  rig.sim.run_until(SimTime::milliseconds(10));
  EXPECT_EQ(rig.delivered.size(), 2u);  // nodes 0 and 2
  EXPECT_EQ(rig.sent_ok.size(), 1u);    // completion callback, no ACK needed
  EXPECT_EQ(rig.channel->frames_transmitted(), 1u);  // no ACK frames
}

TEST(DcfMacTest, OutOfRangeRetriesThenDrops) {
  Rig rig(2, 400.0, 150.0, 300.0);  // 400 m apart, comm range 150 m
  rig.macs[0]->send(rig.packet(1, 1));
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_TRUE(rig.delivered.empty());
  ASSERT_EQ(rig.dropped.size(), 1u);
  EXPECT_EQ(rig.macs[0]->drops(), 1u);
  // 1 initial + 7 retries.
  EXPECT_EQ(rig.macs[0]->tx_attempts(), 8u);
  EXPECT_EQ(rig.macs[0]->retransmissions(), 7u);
}

TEST(DcfMacTest, TwoContendersBothEventuallyDeliver) {
  Rig rig(3, 100.0, 150.0, 300.0);
  // Nodes 0 and 2 both send bursts to node 1; all three mutually in range,
  // so carrier sense serializes them.
  for (int i = 0; i < 10; ++i) {
    rig.macs[0]->send(rig.packet(static_cast<std::uint64_t>(100 + i), 1));
    rig.macs[2]->send(rig.packet(static_cast<std::uint64_t>(200 + i), 1));
  }
  rig.sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(rig.delivered.size(), 20u);
  EXPECT_TRUE(rig.dropped.empty());
}

TEST(DcfMacTest, HiddenTerminalsCauseCollisions) {
  // 0 and 2 are hidden from each other (interference = comm = 150 < 200)
  // and both blast at node 1.
  Rig rig(3, 100.0, 150.0, 150.0);
  for (int i = 0; i < 50; ++i) {
    rig.macs[0]->send(rig.packet(static_cast<std::uint64_t>(100 + i), 1));
    rig.macs[2]->send(rig.packet(static_cast<std::uint64_t>(200 + i), 1));
  }
  rig.sim.run_until(SimTime::seconds(5));
  EXPECT_GT(rig.channel->receptions_corrupted(), 0u);
  EXPECT_GT(rig.macs[0]->retransmissions() + rig.macs[2]->retransmissions(),
            0u);
  // Random backoff still lets most packets through eventually.
  EXPECT_GT(rig.delivered.size(), 25u);
}

TEST(DcfMacTest, ChannelErrorsForceRetries) {
  Rig rig(2, 100.0, 150.0, 300.0, DcfMac::Config{}, /*per=*/0.3);
  for (int i = 0; i < 30; ++i) {
    rig.macs[0]->send(rig.packet(static_cast<std::uint64_t>(i + 1), 1));
  }
  rig.sim.run_until(SimTime::seconds(2));
  EXPECT_GT(rig.macs[0]->retransmissions(), 0u);
  // With PER 0.3 and 7 retries the per-packet drop probability is ~1e-4, so
  // essentially everything is delivered.
  EXPECT_GE(rig.delivered.size(), 29u);
}

TEST(DcfMacTest, QueueOverflowDropsExcess) {
  DcfMac::Config cfg;
  cfg.max_queue = 5;
  Rig rig(2, 100.0, 150.0, 300.0, cfg);
  for (int i = 0; i < 20; ++i) {
    rig.macs[0]->send(rig.packet(static_cast<std::uint64_t>(i + 1), 1));
  }
  // Dropped synchronously on enqueue: 20 - (1 in service + 5 queued).
  EXPECT_EQ(rig.dropped.size(), 14u);
  rig.sim.run_all();
  EXPECT_EQ(rig.delivered.size(), 6u);
}

TEST(DcfMacTest, FarApartNodesTransmitConcurrently) {
  // Pairs 0-1 and 4-5 are isolated: 100 m within a pair, 300 m between the
  // closest members of different pairs, ranges 150 m.
  Rig rig(6, 100.0, 150.0, 150.0);
  rig.macs[0]->send(rig.packet(1, 1));
  rig.macs[4]->send(rig.packet(2, 5));
  rig.sim.run_all();
  EXPECT_EQ(rig.delivered.size(), 2u);
  // Both finish at exactly the single-packet service time: true spatial
  // reuse, no serialization.
  const SimTime per = PhyMode::ofdm_802_11a(54).difs() +
                      PhyMode::ofdm_802_11a(54).airtime(200 + kMacOverheadBytes) +
                      PhyMode::ofdm_802_11a(54).sifs() +
                      PhyMode::ofdm_802_11a(54).ack_airtime();
  EXPECT_EQ(rig.sim.now(), per);
}

TEST(DcfMacRtsTest, HandshakeDeliversUnicast) {
  DcfMac::Config cfg;
  cfg.rts_cts = true;
  Rig rig(2, 100.0, 150.0, 300.0, cfg);
  rig.macs[0]->send(rig.packet(1, 1, 1000));
  rig.sim.run_until(SimTime::milliseconds(20));
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.sent_ok.size(), 1u);
  // Four frames on air: RTS, CTS, DATA, ACK.
  EXPECT_EQ(rig.channel->frames_transmitted(), 4u);
}

TEST(DcfMacRtsTest, ThresholdSkipsHandshakeForSmallFrames) {
  DcfMac::Config cfg;
  cfg.rts_cts = true;
  cfg.rts_threshold = 500;
  Rig rig(2, 100.0, 150.0, 300.0, cfg);
  rig.macs[0]->send(rig.packet(1, 1, 100));  // below threshold
  rig.sim.run_until(SimTime::milliseconds(20));
  ASSERT_EQ(rig.delivered.size(), 1u);
  EXPECT_EQ(rig.channel->frames_transmitted(), 2u);  // DATA + ACK only
}

TEST(DcfMacRtsTest, BroadcastNeverUsesRts) {
  DcfMac::Config cfg;
  cfg.rts_cts = true;
  Rig rig(3, 100.0, 150.0, 300.0, cfg);
  rig.macs[1]->send(rig.packet(5, kInvalidNode, 1000));
  rig.sim.run_until(SimTime::milliseconds(20));
  EXPECT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.channel->frames_transmitted(), 1u);
}

TEST(DcfMacRtsTest, MitigatesHiddenTerminalDataCollisions) {
  // Nodes 0 and 2 are hidden from each other and blast node 1 with large
  // frames. Without RTS/CTS, long data frames collide at the receiver;
  // with the handshake only the short RTS frames collide and the data
  // rides a NAV-protected medium. Compare total corrupted airtime via the
  // retry counts on the big data frames.
  const int kPackets = 60;
  auto run = [&](bool rts) {
    DcfMac::Config cfg;
    cfg.rts_cts = rts;
    Rig rig(3, 100.0, 150.0, 150.0, cfg);
    for (int i = 0; i < kPackets; ++i) {
      rig.macs[0]->send(rig.packet(static_cast<std::uint64_t>(100 + i), 1,
                                   1400));
      rig.macs[2]->send(rig.packet(static_cast<std::uint64_t>(500 + i), 1,
                                   1400));
    }
    rig.sim.run_until(SimTime::seconds(10));
    return std::make_tuple(rig.delivered.size(), rig.dropped.size(),
                           rig.sim.now());
  };
  const auto [plain_delivered, plain_dropped, t1] = run(false);
  const auto [rts_delivered, rts_dropped, t2] = run(true);
  // The handshake must not lose packets in this scenario.
  EXPECT_EQ(rts_delivered, static_cast<std::size_t>(2 * kPackets));
  EXPECT_EQ(rts_dropped, 0u);
  // And should do at least as well as plain DCF on deliveries.
  EXPECT_GE(rts_delivered, plain_delivered);
}

TEST(DcfMacRtsTest, NavSilencesThirdParties) {
  // 0 → 1 exchange with node 2 in range of node 1 (hears CTS). Node 2's
  // own transmission must defer until the NAV expires.
  DcfMac::Config cfg;
  cfg.rts_cts = true;
  Rig rig(3, 100.0, 150.0, 150.0, cfg);
  rig.macs[0]->send(rig.packet(1, 1, 1400));
  // Node 2 gets a packet for node 1 shortly after the RTS goes out.
  rig.sim.schedule_at(SimTime::microseconds(80), [&] {
    rig.macs[2]->send(rig.packet(2, 1, 1400));
  });
  rig.sim.run_until(SimTime::milliseconds(50));
  EXPECT_EQ(rig.delivered.size(), 2u);
  EXPECT_TRUE(rig.dropped.empty());
}

TEST(DcfMacTest, ServiceTimeAccessors) {
  Rig rig(2, 100.0, 150.0, 300.0);
  const PhyMode phy = PhyMode::ofdm_802_11a(54);
  EXPECT_EQ(rig.macs[0]->max_service_time(200),
            phy.difs() + phy.slot_time() * phy.cw_min() +
                phy.airtime(200 + kMacOverheadBytes) + phy.sifs() +
                phy.ack_airtime());
  EXPECT_LT(rig.macs[0]->mean_service_time(200),
            rig.macs[0]->max_service_time(200));
  EXPECT_EQ(DcfMac::overlay_service_time(phy, 200),
            phy.difs() + phy.airtime(200 + kMacOverheadBytes) + phy.sifs() +
                phy.ack_airtime());
}

}  // namespace
}  // namespace wimesh
