#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "wimesh/common/rng.h"
#include "wimesh/graph/shortest_path.h"
#include "wimesh/graph/topology.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/sched/scheduler.h"

namespace wimesh {
namespace {

// Builds a SchedulingProblem from node paths: each path contributes
// `slots_per_hop` demand on every hop and a FlowPath with the given budget.
SchedulingProblem make_problem(const Topology& topo, const RadioModel& radio,
                               const std::vector<std::vector<NodeId>>& paths,
                               int slots_per_hop, int budget_frames) {
  SchedulingProblem p;
  for (const auto& nodes : paths) {
    FlowPath flow;
    flow.delay_budget_frames = budget_frames;
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      const LinkId l = p.links.add({nodes[i - 1], nodes[i]});
      if (static_cast<std::size_t>(l) >= p.demand.size()) {
        p.demand.resize(static_cast<std::size_t>(l) + 1, 0);
      }
      p.demand[static_cast<std::size_t>(l)] += slots_per_hop;
      flow.links.push_back(l);
    }
    p.flows.push_back(std::move(flow));
  }
  p.demand.resize(static_cast<std::size_t>(p.links.count()), 0);
  p.conflicts = build_conflict_graph(p.links, topo.positions, radio);
  return p;
}

// ---------------------------------------------------------- conflict graph

TEST(ConflictGraphTest, SharedNodeAlwaysConflicts) {
  const Topology t = make_chain(3, 100.0);
  const RadioModel radio(100.0, 100.0);  // no extra interference reach
  LinkSet ls;
  const LinkId a = ls.add({0, 1});
  const LinkId b = ls.add({1, 2});
  const LinkId c = ls.add({1, 0});  // reverse of a
  const Graph g = build_conflict_graph(ls, t.positions, radio);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(a, c));
  EXPECT_TRUE(g.has_edge(b, c));
}

TEST(ConflictGraphTest, InterferenceRangeCreatesTwoHopConflicts) {
  const Topology t = make_chain(6, 100.0);
  const RadioModel radio(100.0, 200.0);
  LinkSet ls;
  const LinkId l01 = ls.add({0, 1});
  const LinkId l23 = ls.add({2, 3});
  const LinkId l34 = ls.add({3, 4});
  const LinkId l45 = ls.add({4, 5});
  const Graph g = build_conflict_graph(ls, t.positions, radio);
  // tx 2 is 100m from rx 1 → conflict.
  EXPECT_TRUE(g.has_edge(l01, l23));
  // tx 3 is 200m from rx 1 → still conflicts (boundary inclusive).
  EXPECT_TRUE(g.has_edge(l01, l34));
  // tx 4 is 300m from rx 1, tx 0 is 500m from rx 5 → no conflict.
  EXPECT_FALSE(g.has_edge(l01, l45));
}

TEST(ConflictGraphTest, ConnectivityVariantMatchesUnitInterference) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 100.0);
  LinkSet ls;
  ls.add({0, 1});
  ls.add({1, 2});
  ls.add({2, 3});
  ls.add({3, 4});
  const Graph geo = build_conflict_graph(ls, t.positions, radio);
  const Graph con = build_conflict_graph(ls, t.graph);
  ASSERT_EQ(geo.node_count(), con.node_count());
  for (LinkId a = 0; a < ls.count(); ++a) {
    for (LinkId b = a + 1; b < ls.count(); ++b) {
      EXPECT_EQ(geo.has_edge(a, b), con.has_edge(a, b))
          << "links " << a << "," << b;
    }
  }
}

TEST(ConflictGraphTest, LowerBoundIsNodeCliqueLoad) {
  LinkSet ls;
  ls.add({0, 1});
  ls.add({1, 2});
  ls.add({3, 1});
  const std::vector<int> demand{2, 3, 4};  // all touch node 1 → 9
  EXPECT_EQ(schedule_length_lower_bound(ls, demand), 9);
}

TEST(ConflictGraphTest, LowerBoundZeroWhenNoDemand) {
  LinkSet ls;
  ls.add({0, 1});
  EXPECT_EQ(schedule_length_lower_bound(ls, {0}), 0);
}

// ------------------------------------------------------------- baselines

TEST(GreedySchedulerTest, ChainScheduleIsValid) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4}}, 2, 10);
  const auto r = schedule_greedy(p, 64);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_GE(r->schedule.used_slots(),
            schedule_length_lower_bound(p.links, p.demand));
}

TEST(GreedySchedulerTest, FailsWhenFrameTooSmall) {
  const Topology t = make_chain(4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3}}, 4, 10);
  // 3 links, all mutually conflicting on a 4-chain → needs 12 slots.
  EXPECT_FALSE(schedule_greedy(p, 11).has_value());
  EXPECT_TRUE(schedule_greedy(p, 12).has_value());
}

TEST(RoundRobinSchedulerTest, ValidButNoTighterThanGreedy) {
  const Topology t = make_grid(3, 3, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p =
      make_problem(t, radio, {{0, 1, 2, 5}, {6, 7, 8}, {0, 3, 6}}, 1, 10);
  const auto rr = schedule_round_robin(p, 64);
  const auto gr = schedule_greedy(p, 64);
  ASSERT_TRUE(rr.has_value());
  ASSERT_TRUE(gr.has_value());
  EXPECT_TRUE(validate_schedule(p, rr->schedule));
  EXPECT_GE(rr->schedule.used_slots(), gr->schedule.used_slots() > 0 ? 1 : 0);
}

// --------------------------------------------------- order reconstruction

TEST(OrderToScheduleTest, RespectsImposedOrder) {
  const Topology t = make_chain(3, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2}}, 3, 10);
  // Force link1 (1→2) before link0 (0→1).
  TransmissionOrder order(p.links.count());
  order.set_before(1, 0);
  const auto s = order_to_schedule(p, order, 16);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(validate_schedule(p, *s));
  EXPECT_GE(s->grant(0)->start, s->grant(1)->end());
}

TEST(OrderToScheduleTest, ProducesCompactSchedules) {
  const Topology t = make_chain(3, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2}}, 3, 10);
  TransmissionOrder order(p.links.count());
  order.set_before(0, 1);
  const auto s = order_to_schedule(p, order, 64);
  ASSERT_TRUE(s.has_value());
  // Bellman–Ford pushes starts as late as the constraints allow relative to
  // the virtual zero, but the shift normalizes the earliest start to >= 0
  // and the pair must be adjacent-or-later; total span >= 6 slots.
  EXPECT_GE(s->grant(1)->start, s->grant(0)->end());
}

TEST(OrderToScheduleTest, TooSmallFrameFails) {
  const Topology t = make_chain(3, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2}}, 3, 10);
  TransmissionOrder order(p.links.count());
  order.set_before(0, 1);
  EXPECT_FALSE(order_to_schedule(p, order, 5).has_value());
  EXPECT_TRUE(order_to_schedule(p, order, 6).has_value());
}

TEST(OrderFromScheduleTest, RoundTripsThroughReconstruction) {
  const Topology t = make_grid(2, 3, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2}, {3, 4, 5}}, 2, 10);
  const auto g = schedule_greedy(p, 64);
  ASSERT_TRUE(g.has_value());
  const TransmissionOrder order = order_from_schedule(p, g->schedule);
  const auto rebuilt = order_to_schedule(p, order, 64);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(validate_schedule(p, *rebuilt));
  // The rebuilt schedule can only be as long or shorter (BF compacts).
  EXPECT_LE(rebuilt->used_slots(), 64);
}

// ------------------------------------------------------------------- ILP

TEST(IlpSchedulerTest, ChainFeasibleAtLowerBound) {
  const Topology t = make_chain(4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3}}, 2, 10);
  // All three links mutually conflict → lower bound = 3 links * 2 = 6.
  const auto r = schedule_ilp(p, 6);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_LE(r->schedule.used_slots(), 6);
}

TEST(IlpSchedulerTest, InfeasibleWhenFrameTooSmall) {
  const Topology t = make_chain(4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3}}, 2, 10);
  const auto r = schedule_ilp(p, 5);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error(), "infeasible");
}

TEST(IlpSchedulerTest, MinSlotsSearchFindsLowerBoundOnChain) {
  const Topology t = make_chain(4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3}}, 2, 10);
  const auto r = min_slots_search(p, 64);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_EQ(r->frame_slots, 6);
  // All three links are mutually conflicting (2-hop interference), so the
  // greedy-clique lower bound is 3 * 2 = 6 and the search succeeds at its
  // very first stage.
  EXPECT_EQ(r->stages, 1);
  EXPECT_TRUE(r->proven_minimal);
}

TEST(IlpSchedulerTest, ZeroDelayBudgetForcesMonotoneOrder) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4}}, 1, 0);
  const auto r = min_slots_search(p, 64);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(validate_schedule(p, r->result.schedule));
  EXPECT_EQ(count_frame_wraps(r->result.schedule, p.flows[0]), 0);
  // Starts strictly increase along the path.
  for (std::size_t i = 1; i < p.flows[0].links.size(); ++i) {
    EXPECT_GE(r->result.schedule.grant(p.flows[0].links[i])->start,
              r->result.schedule.grant(p.flows[0].links[i - 1])->end());
  }
}

TEST(IlpSchedulerTest, DelayUnawareMayWrapButStillValid) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 200.0);
  auto p = make_problem(t, radio, {{0, 1, 2, 3, 4}}, 1, 0);
  IlpSchedulerOptions opt;
  opt.delay_aware = false;
  const auto r = min_slots_search(p, 64, opt);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(validate_schedule(p, r->result.schedule));
}

TEST(IlpSchedulerTest, BudgetIsRespectedExactly) {
  const Topology t = make_chain(6, 100.0);
  const RadioModel radio(100.0, 200.0);
  for (int budget = 0; budget <= 3; ++budget) {
    const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4, 5}}, 1, budget);
    const auto r = min_slots_search(p, 64);
    ASSERT_TRUE(r.has_value()) << "budget " << budget << ": " << r.error();
    EXPECT_LE(count_frame_wraps(r->result.schedule, p.flows[0]), budget);
  }
}

TEST(IlpSchedulerTest, TwoOpposingFlowsWithTightBudgets) {
  const Topology t = make_chain(4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p =
      make_problem(t, radio, {{0, 1, 2, 3}, {3, 2, 1, 0}}, 1, 0);
  const auto r = min_slots_search(p, 64);
  ASSERT_TRUE(r.has_value()) << r.error();
  for (const auto& flow : p.flows) {
    EXPECT_EQ(count_frame_wraps(r->result.schedule, flow), 0);
  }
}

TEST(IlpSchedulerTest, IlpNeverWorseThanGreedy) {
  Rng rng(555);
  for (int trial = 0; trial < 5; ++trial) {
    Rng topo_rng = rng.split();
    const Topology t = make_random_geometric(8, 400.0, 180.0, topo_rng);
    const RadioModel radio(180.0, 360.0);
    // One flow along a BFS path between two random nodes.
    const NodeId src = static_cast<NodeId>(rng.next_below(8));
    NodeId dst = static_cast<NodeId>(rng.next_below(8));
    if (dst == src) dst = (dst + 1) % 8;
    // Recover a path from BFS parents.
    const auto parents = spanning_tree_parents(t.graph, src);
    std::vector<NodeId> path{dst};
    while (path.back() != src) {
      path.push_back(parents[static_cast<std::size_t>(path.back())]);
    }
    std::reverse(path.begin(), path.end());
    const auto p = make_problem(t, radio, {path}, 1, 10);

    const auto greedy = schedule_greedy(p, 64);
    ASSERT_TRUE(greedy.has_value());
    const auto ilp = min_slots_search(p, 64);
    ASSERT_TRUE(ilp.has_value()) << ilp.error();
    EXPECT_LE(ilp->frame_slots, greedy->schedule.used_slots())
        << "trial " << trial;
  }
}

// ------------------------------------------------------ min-max delay ILP

TEST(MinMaxDelayIlpTest, AchievesZeroWrapsWhenSlackAllows) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4}}, 1, 10);
  // Plenty of slots: a monotone order exists, so the optimum is 0 wraps.
  const auto r = schedule_ilp_min_max_delay(p, 64);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_EQ(r->max_wraps, 0);
  EXPECT_TRUE(r->proven);
  EXPECT_TRUE(validate_schedule(p, r->result.schedule));
  EXPECT_EQ(count_frame_wraps(r->result.schedule, p.flows[0]), 0);
}

TEST(MinMaxDelayIlpTest, TightFrameForcesWrapsAndFindsTheMinimum) {
  // At the minimal schedule length, spatial reuse forces some wrap; the
  // min-max solver must find the smallest such count and the realized
  // schedule must match it.
  const Topology t = make_chain(6, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4, 5}}, 2, 10);
  const auto min_s = min_slots_search(p, 64);
  ASSERT_TRUE(min_s.has_value());
  const auto r = schedule_ilp_min_max_delay(p, min_s->frame_slots);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_TRUE(validate_schedule(p, r->result.schedule));
  int realized = 0;
  for (const auto& f : p.flows) {
    realized = std::max(realized,
                        count_frame_wraps(r->result.schedule, f));
  }
  EXPECT_LE(realized, r->max_wraps);
  // And a slightly longer frame must not need more wraps.
  const auto relaxed = schedule_ilp_min_max_delay(p, min_s->frame_slots + 6);
  ASSERT_TRUE(relaxed.has_value());
  EXPECT_LE(relaxed->max_wraps, r->max_wraps);
}

TEST(MinMaxDelayIlpTest, NeverWorseThanFeasibilitySolution) {
  const Topology t = make_chain(6, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p =
      make_problem(t, radio, {{0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}}, 1, 10);
  const auto s = min_slots_search(p, 64);
  ASSERT_TRUE(s.has_value());
  int feas_worst = 0;
  for (const auto& f : p.flows) {
    feas_worst =
        std::max(feas_worst, count_frame_wraps(s->result.schedule, f));
  }
  const auto mm = schedule_ilp_min_max_delay(p, s->frame_slots);
  ASSERT_TRUE(mm.has_value()) << mm.error();
  EXPECT_LE(mm->max_wraps, feas_worst);
}

TEST(MinMaxDelayIlpTest, RespectsExplicitBudgetsToo) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4}}, 1, 0);
  const auto r = schedule_ilp_min_max_delay(p, 64);
  ASSERT_TRUE(r.has_value()) << r.error();
  EXPECT_EQ(r->max_wraps, 0);  // budget 0 forces it regardless of objective
}

// ---------------------------------------------------------- delay metrics

TEST(DelayMetricsTest, WorstCaseDelayHandComputed) {
  // Two-link flow, frame of 10 total slots. Grants: l0 = [0,2), l1 = [4,6).
  LinkSet ls;
  const LinkId l0 = ls.add({0, 1});
  const LinkId l1 = ls.add({1, 2});
  MeshSchedule s(ls, 8);
  s.set_grant(l0, SlotRange{0, 2});
  s.set_grant(l1, SlotRange{4, 2});
  FlowPath flow;
  flow.links = {l0, l1};
  // initial wait 10 + d0 (2) + gap (4-2=2) + d1 (2) = 16.
  EXPECT_EQ(worst_case_delay_slots(s, flow, 10), 16);
  EXPECT_EQ(count_frame_wraps(s, flow), 0);
}

TEST(DelayMetricsTest, WrapAddsAFrame) {
  // Grants reversed: l1 before l0 → the relay waits a frame.
  LinkSet ls;
  const LinkId l0 = ls.add({0, 1});
  const LinkId l1 = ls.add({1, 2});
  MeshSchedule s(ls, 8);
  s.set_grant(l0, SlotRange{4, 2});
  s.set_grant(l1, SlotRange{0, 2});
  FlowPath flow;
  flow.links = {l0, l1};
  // initial wait 10 + d0 (2) + gap ((0-6) mod 10 = 4) + d1 (2) = 18.
  EXPECT_EQ(worst_case_delay_slots(s, flow, 10), 18);
  EXPECT_EQ(count_frame_wraps(s, flow), 1);
}

TEST(DelayMetricsTest, DelayAwareBeatsUnawareOnLongChain) {
  const Topology t = make_chain(7, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto aware_p = make_problem(t, radio, {{0, 1, 2, 3, 4, 5, 6}}, 1, 0);
  const auto r_aware = min_slots_search(aware_p, 64);
  ASSERT_TRUE(r_aware.has_value()) << r_aware.error();

  IlpSchedulerOptions unaware_opt;
  unaware_opt.delay_aware = false;
  // Round robin in *reverse* path order maximizes wraps.
  SchedulingProblem reversed = aware_p;
  const auto rr = schedule_round_robin(reversed, 64);
  ASSERT_TRUE(rr.has_value());

  const int total = 70;  // frame slots incl. control
  const int aware_delay =
      worst_case_delay_slots(r_aware->result.schedule, aware_p.flows[0], total);
  const int rr_delay =
      worst_case_delay_slots(rr->schedule, aware_p.flows[0], total);
  EXPECT_LE(aware_delay, rr_delay);
  EXPECT_EQ(count_frame_wraps(r_aware->result.schedule, aware_p.flows[0]), 0);
}

// ------------------------------------------------------------- properties

TEST(SchedulerPropertyTest, RandomProblemsAllSchedulersValid) {
  Rng rng(808);
  for (int trial = 0; trial < 8; ++trial) {
    Rng topo_rng = rng.split();
    const Topology t = make_random_geometric(10, 500.0, 200.0, topo_rng);
    const RadioModel radio(200.0, 400.0);
    // 2 random BFS-path flows.
    std::vector<std::vector<NodeId>> paths;
    for (int f = 0; f < 2; ++f) {
      const NodeId src = static_cast<NodeId>(rng.next_below(10));
      NodeId dst = static_cast<NodeId>(rng.next_below(10));
      if (dst == src) dst = (dst + 1) % 10;
      const auto parents = spanning_tree_parents(t.graph, src);
      std::vector<NodeId> path{dst};
      while (path.back() != src) {
        path.push_back(parents[static_cast<std::size_t>(path.back())]);
      }
      std::reverse(path.begin(), path.end());
      paths.push_back(std::move(path));
    }
    const auto p = make_problem(t, radio, paths, 1, 2);

    const auto greedy = schedule_greedy(p, 96);
    ASSERT_TRUE(greedy.has_value()) << "trial " << trial;
    EXPECT_TRUE(validate_schedule(p, greedy->schedule));

    const auto ilp = min_slots_search(p, 96);
    ASSERT_TRUE(ilp.has_value()) << "trial " << trial << ": " << ilp.error();
    EXPECT_TRUE(validate_schedule(p, ilp->result.schedule));
    for (const auto& flow : p.flows) {
      EXPECT_LE(count_frame_wraps(ilp->result.schedule, flow),
                flow.delay_budget_frames)
          << "trial " << trial;
    }
    EXPECT_GE(ilp->frame_slots,
              schedule_length_lower_bound(p.links, p.demand));
  }
}

// ----------------------------------------------------------- tree fast path

TEST(TreeFastPathTest, ChainScheduleIsValidAndWrapFree) {
  const Topology t = make_chain(6, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}},
                              2, 1);
  const auto r = schedule_tree_fast_path(p, 40);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->used_tree_fast_path);
  EXPECT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_TRUE(budgets_satisfied(p, r->schedule));
  for (const auto& flow : p.flows) {
    EXPECT_EQ(count_frame_wraps(r->schedule, flow), 0);
  }
}

TEST(TreeFastPathTest, BranchingTreeScheduleIsValidAndWrapFree) {
  const Topology t = make_tree(2, 3, 100.0);
  const RadioModel radio(100.0, 200.0);
  // Two leaf-to-root flows through different branches.
  const auto p = make_problem(t, radio, {{3, 1, 0}, {5, 2, 0}}, 2, 0);
  const auto r = schedule_tree_fast_path(p, 30);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(validate_schedule(p, r->schedule));
  EXPECT_TRUE(budgets_satisfied(p, r->schedule));
}

TEST(TreeFastPathTest, DeclinesOnCyclicSupport) {
  const Topology t = make_grid(2, 2, 100.0);
  const RadioModel radio(100.0, 200.0);
  // Path 0 -> 1 -> 3 -> 2 -> 0 closes a 4-cycle in the undirected support.
  const auto p = make_problem(t, radio, {{0, 1, 3, 2, 0}}, 1, 10);
  EXPECT_FALSE(schedule_tree_fast_path(p, 96).has_value());
}

TEST(TreeFastPathTest, DeclinesWhenFrameTooSmall) {
  const Topology t = make_chain(4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3}}, 2, 10);
  // Three mutually conflicting links of demand 2 need 6 slots serialized.
  EXPECT_FALSE(schedule_tree_fast_path(p, 5).has_value());
}

TEST(IlpSchedulerTest, TreeFastPathFlagTracksTheKnob) {
  const Topology t = make_chain(5, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(t, radio, {{0, 1, 2, 3, 4}}, 2, 1);

  const auto fast = schedule_ilp(p, 40);
  ASSERT_TRUE(fast.has_value()) << fast.error();
  EXPECT_TRUE(fast->used_tree_fast_path);
  EXPECT_TRUE(validate_schedule(p, fast->schedule));

  IlpSchedulerOptions opt;
  opt.tree_fast_path = false;
  const auto slow = schedule_ilp(p, 40, opt);
  ASSERT_TRUE(slow.has_value()) << slow.error();
  EXPECT_FALSE(slow->used_tree_fast_path);
  EXPECT_TRUE(validate_schedule(p, slow->schedule));
}

// ------------------------------------------- accelerator value preservation

TEST(IlpSchedulerTest, AcceleratorsPreserveTheMinimumScheduleLength) {
  // Cuts, symmetry breaking, warm starts and the portfolio may only speed
  // the search up — the minimum feasible S they find must match the plain
  // branch & bound's.
  const Topology t = make_grid(3, 3, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(
      t, radio, {{0, 1, 2, 5}, {6, 7, 8, 5}, {0, 3, 6}}, 1, 1);

  IlpSchedulerOptions accel;
  accel.try_heuristics = false;
  const auto fast = min_slots_search(p, 96, accel);
  ASSERT_TRUE(fast.has_value()) << fast.error();
  EXPECT_TRUE(fast->proven_minimal);

  IlpSchedulerOptions plain;
  plain.try_heuristics = false;
  plain.clique_cuts = false;
  plain.symmetry_breaking = false;
  plain.warm_start = false;
  plain.tree_fast_path = false;
  plain.portfolio = 1;
  const auto base = min_slots_search(p, 96, plain);
  ASSERT_TRUE(base.has_value()) << base.error();
  EXPECT_TRUE(base->proven_minimal);

  EXPECT_EQ(fast->frame_slots, base->frame_slots);
  EXPECT_TRUE(validate_schedule(p, fast->result.schedule));
  EXPECT_TRUE(validate_schedule(p, base->result.schedule));
  EXPECT_TRUE(budgets_satisfied(p, fast->result.schedule));
  EXPECT_TRUE(budgets_satisfied(p, base->result.schedule));
}

TEST(IlpSchedulerTest, SymmetryBreakingKeepsParallelLinksFeasible) {
  // Four identical cross flows over one bottleneck column: heavily
  // symmetric, the classic case the lexicographic fix collapses.
  const Topology t = make_grid(2, 4, 100.0);
  const RadioModel radio(100.0, 200.0);
  const auto p = make_problem(
      t, radio, {{0, 4}, {1, 5}, {2, 6}, {3, 7}}, 2, 0);

  IlpSchedulerOptions on;
  on.try_heuristics = false;
  on.tree_fast_path = false;
  IlpSchedulerOptions off = on;
  off.symmetry_breaking = false;

  const auto a = min_slots_search(p, 96, on);
  const auto b = min_slots_search(p, 96, off);
  ASSERT_TRUE(a.has_value()) << a.error();
  ASSERT_TRUE(b.has_value()) << b.error();
  EXPECT_EQ(a->frame_slots, b->frame_slots);
  EXPECT_TRUE(validate_schedule(p, a->result.schedule));
  EXPECT_TRUE(budgets_satisfied(p, a->result.schedule));
}

}  // namespace
}  // namespace wimesh
