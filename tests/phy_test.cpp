#include <gtest/gtest.h>

#include "wimesh/phy/phy.h"
#include "wimesh/phy/radio_model.h"

namespace wimesh {
namespace {

TEST(PhyModeTest, OfdmConstants) {
  const PhyMode m = PhyMode::ofdm_802_11a(54);
  EXPECT_EQ(m.slot_time(), SimTime::microseconds(9));
  EXPECT_EQ(m.sifs(), SimTime::microseconds(16));
  EXPECT_EQ(m.difs(), SimTime::microseconds(34));
  EXPECT_EQ(m.cw_min(), 15);
  EXPECT_EQ(m.cw_max(), 1023);
  EXPECT_DOUBLE_EQ(m.bitrate_bps(), 54e6);
}

TEST(PhyModeTest, DsssConstants) {
  const PhyMode m = PhyMode::dsss_802_11b(11);
  EXPECT_EQ(m.slot_time(), SimTime::microseconds(20));
  EXPECT_EQ(m.sifs(), SimTime::microseconds(10));
  EXPECT_EQ(m.difs(), SimTime::microseconds(50));
  EXPECT_EQ(m.cw_min(), 31);
  EXPECT_DOUBLE_EQ(m.bitrate_bps(), 11e6);
}

TEST(PhyModeTest, OfdmAirtimeKnownValues) {
  // 1500-byte MAC frame at 54 Mbps: bits = 16 + 12000 + 6 = 12022;
  // symbols = ceil(12022/216) = 56; airtime = 20 + 56*4 = 244 us.
  const PhyMode m54 = PhyMode::ofdm_802_11a(54);
  EXPECT_EQ(m54.airtime(1500), SimTime::microseconds(244));
  // Same frame at 6 Mbps: symbols = ceil(12022/24) = 501 → 20+2004 us.
  const PhyMode m6 = PhyMode::ofdm_802_11a(6);
  EXPECT_EQ(m6.airtime(1500), SimTime::microseconds(2024));
}

TEST(PhyModeTest, OfdmAckAirtime) {
  // ACK: 14 bytes at 6 Mbps base rate: bits = 16+112+6 = 134;
  // symbols = ceil(134/24) = 6 → 20 + 24 = 44 us, independent of data rate.
  EXPECT_EQ(PhyMode::ofdm_802_11a(54).ack_airtime(),
            SimTime::microseconds(44));
  EXPECT_EQ(PhyMode::ofdm_802_11a(6).ack_airtime(),
            SimTime::microseconds(44));
}

TEST(PhyModeTest, DsssAirtime) {
  // 1000 bytes at 11 Mbps: 192us preamble + 8000/11e6 s ≈ 727.27 us.
  const PhyMode m = PhyMode::dsss_802_11b(11);
  const SimTime t = m.airtime(1000);
  EXPECT_NEAR(t.to_us(), 192.0 + 8000.0 / 11.0, 0.01);
}

TEST(PhyModeTest, AirtimeMonotoneInSizeAndRate) {
  const PhyMode fast = PhyMode::ofdm_802_11a(54);
  const PhyMode slow = PhyMode::ofdm_802_11a(6);
  EXPECT_LT(fast.airtime(100), fast.airtime(1500));
  EXPECT_LT(fast.airtime(1500), slow.airtime(1500));
}

TEST(RadioModelTest, RangesAndPredicates) {
  const RadioModel radio(100.0, 200.0);
  const Point a{0, 0}, b{150, 0}, c{250, 0};
  EXPECT_FALSE(radio.can_communicate(a, b));
  EXPECT_TRUE(radio.interferes(a, b));
  EXPECT_FALSE(radio.interferes(a, c));
  EXPECT_TRUE(radio.can_communicate(a, Point{60, 80}));  // dist 100
}

TEST(RadioModelTest, BuildConnectivityMatchesRanges) {
  const RadioModel radio(100.0, 200.0);
  const std::vector<Point> pos{{0, 0}, {90, 0}, {180, 0}, {400, 0}};
  const Graph g = radio.build_connectivity(pos);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));  // 180 > 100
  EXPECT_FALSE(g.has_edge(2, 3));
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(RadioModelTest, InterferenceSetsAreDirectionallySymmetricHere) {
  const RadioModel radio(100.0, 150.0);
  const std::vector<Point> pos{{0, 0}, {120, 0}, {260, 0}};
  const auto sets = radio.build_interference_sets(pos);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<NodeId>{1}));       // node 2 is 260 away
  EXPECT_EQ(sets[1], (std::vector<NodeId>{0, 2}));    // 120 and 140
  EXPECT_EQ(sets[2], (std::vector<NodeId>{1}));
}

TEST(RadioModelTest, ChainTopologyInterference) {
  // Nodes 100m apart, interference 200m: node i interferes with i±1, i±2.
  const RadioModel radio(100.0, 200.0);
  const Topology chain = make_chain(6, 100.0);
  const auto sets = radio.build_interference_sets(chain.positions);
  EXPECT_EQ(sets[0].size(), 2u);
  EXPECT_EQ(sets[2].size(), 4u);
  EXPECT_EQ(sets[5].size(), 2u);
}

}  // namespace
}  // namespace wimesh
