// Fault-injection tests: plan grammar, channel impairments, and the full
// recovery loop (detect -> failover -> re-plan -> frame-boundary hot-swap)
// running audit-clean, with the documented degradation order.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "wimesh/batch/runner.h"
#include "wimesh/core/scenario.h"
#include "wimesh/faults/impairment.h"
#include "wimesh/faults/plan.h"

namespace wimesh {
namespace {

// ------------------------------------------------------------ plan grammar

TEST(FaultPlanParserTest, FullGrammarRoundTrip) {
  const auto p = faults::parse_fault_plan(
      "node-crash@2 node=4; node-recover@3.5 node=4; master-fail@5; "
      "link-down@6 link=1-2; link-up@7 link=1-2; "
      "burst@8..9 link=0-3 p_gb=0.5 p_bg=0.1 per_good=0.01 per_bad=0.9; "
      "clock-step@10 node=2 step_us=250; detect_ms=40");
  ASSERT_TRUE(p.has_value()) << p.error();
  ASSERT_EQ(p->events.size(), 7u);
  EXPECT_TRUE(p->enabled());
  EXPECT_EQ(p->detection_delay, SimTime::milliseconds(40));

  EXPECT_EQ(p->events[0].kind, faults::FaultKind::kNodeCrash);
  EXPECT_EQ(p->events[0].at, SimTime::seconds(2));
  EXPECT_EQ(p->events[0].node, 4);
  EXPECT_EQ(p->events[1].kind, faults::FaultKind::kNodeRecover);
  EXPECT_EQ(p->events[1].at, SimTime::from_seconds(3.5));
  EXPECT_EQ(p->events[2].kind, faults::FaultKind::kMasterFail);
  EXPECT_EQ(p->events[3].kind, faults::FaultKind::kLinkDown);
  EXPECT_EQ(p->events[3].link_a, 1);
  EXPECT_EQ(p->events[3].link_b, 2);
  EXPECT_EQ(p->events[4].kind, faults::FaultKind::kLinkUp);
  EXPECT_EQ(p->events[5].kind, faults::FaultKind::kLinkBurst);
  EXPECT_EQ(p->events[5].until, SimTime::seconds(9));
  EXPECT_DOUBLE_EQ(p->events[5].ge.p_good_to_bad, 0.5);
  EXPECT_DOUBLE_EQ(p->events[5].ge.p_bad_to_good, 0.1);
  EXPECT_DOUBLE_EQ(p->events[5].ge.per_good, 0.01);
  EXPECT_DOUBLE_EQ(p->events[5].ge.per_bad, 0.9);
  EXPECT_EQ(p->events[6].kind, faults::FaultKind::kClockStep);
  EXPECT_EQ(p->events[6].step, SimTime::microseconds(250));
}

TEST(FaultPlanParserTest, EventsSortByTime) {
  const auto p = faults::parse_fault_plan(
      "master-fail@5; node-crash@1 node=0; link-down@3 link=0-1");
  ASSERT_TRUE(p.has_value()) << p.error();
  ASSERT_EQ(p->events.size(), 3u);
  EXPECT_EQ(p->events[0].kind, faults::FaultKind::kNodeCrash);
  EXPECT_EQ(p->events[1].kind, faults::FaultKind::kLinkDown);
  EXPECT_EQ(p->events[2].kind, faults::FaultKind::kMasterFail);
}

TEST(FaultPlanParserTest, EmptySpecIsADisabledPlan) {
  const auto p = faults::parse_fault_plan("");
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->enabled());
}

TEST(FaultPlanParserTest, TypedErrorsNameTheEventAndKey) {
  const auto unknown_key = faults::parse_fault_plan("node-crash@2 nod=4");
  ASSERT_FALSE(unknown_key.has_value());
  EXPECT_NE(unknown_key.error().find("node-crash"), std::string::npos);
  EXPECT_NE(unknown_key.error().find("nod"), std::string::npos);

  EXPECT_FALSE(faults::parse_fault_plan("explode@2 node=4").has_value());
  EXPECT_FALSE(faults::parse_fault_plan("node-crash@x node=4").has_value());
  EXPECT_FALSE(faults::parse_fault_plan("node-crash@2").has_value());
  EXPECT_FALSE(faults::parse_fault_plan("link-down@2 link=5").has_value());
  EXPECT_FALSE(faults::parse_fault_plan("burst@9..8 link=0-1").has_value());
}

TEST(FaultPlanParserTest, ContradictoryScriptsAreRejectedWithEventIndex) {
  // Crashing a node that is already down.
  const auto twice = faults::parse_fault_plan(
      "node-crash@1 node=2; node-crash@2 node=2");
  ASSERT_FALSE(twice.has_value());
  EXPECT_NE(twice.error().find("(event 2)"), std::string::npos)
      << twice.error();
  EXPECT_NE(twice.error().find("already crashed"), std::string::npos);

  // Restoring a link that was never taken down.
  const auto up = faults::parse_fault_plan("link-up@2 link=0-1");
  ASSERT_FALSE(up.has_value());
  EXPECT_NE(up.error().find("(event 1)"), std::string::npos) << up.error();
  EXPECT_NE(up.error().find("not down"), std::string::npos);

  // Two Gilbert-Elliott bursts overlapping on the same link.
  const auto bursts = faults::parse_fault_plan(
      "burst@1..3 link=0-1; burst@2..4 link=0-1");
  ASSERT_FALSE(bursts.has_value());
  EXPECT_NE(bursts.error().find("overlaps"), std::string::npos)
      << bursts.error();
}

TEST(FaultPlanParserTest, CrashRecoverCyclesAndDisjointBurstsAreFine) {
  EXPECT_TRUE(faults::parse_fault_plan(
                  "node-crash@1 node=2; node-recover@2 node=2; "
                  "node-crash@3 node=2")
                  .has_value());
  EXPECT_TRUE(faults::parse_fault_plan(
                  "link-down@1 link=0-1; link-up@2 link=0-1; "
                  "link-down@3 link=0-1")
                  .has_value());
  // Same window on different links, and back-to-back on the same link.
  EXPECT_TRUE(faults::parse_fault_plan(
                  "burst@1..3 link=0-1; burst@1..3 link=1-2; "
                  "burst@3..4 link=0-1")
                  .has_value());
}

// ------------------------------------------------------- link impairments

TEST(LinkImpairmentTest, HardOutageIsSymmetricAndReversible) {
  faults::LinkImpairment imp((Rng(1)));
  imp.set_link_down(2, 5, true);
  EXPECT_TRUE(imp.link_down(5, 2));
  EXPECT_TRUE(imp.corrupts(2, 5, SimTime::seconds(1)));
  EXPECT_TRUE(imp.corrupts(5, 2, SimTime::seconds(1)));
  EXPECT_FALSE(imp.corrupts(2, 4, SimTime::seconds(1)));
  imp.set_link_down(5, 2, false);
  EXPECT_FALSE(imp.corrupts(2, 5, SimTime::seconds(2)));
}

TEST(LinkImpairmentTest, BurstActsOnlyInsideItsWindow) {
  faults::LinkImpairment imp((Rng(1)));
  faults::GilbertElliottParams ge;
  ge.p_good_to_bad = 1.0;  // enter the bad state on the first attempt
  ge.p_bad_to_good = 0.0;  // and stay there
  ge.per_bad = 1.0;
  imp.add_burst(0, 1, SimTime::seconds(1), SimTime::seconds(2), ge);
  EXPECT_FALSE(imp.corrupts(0, 1, SimTime::milliseconds(500)));
  EXPECT_TRUE(imp.corrupts(0, 1, SimTime::milliseconds(1500)));
  EXPECT_TRUE(imp.corrupts(1, 0, SimTime::milliseconds(1900)));
  EXPECT_FALSE(imp.corrupts(0, 1, SimTime::seconds(2)));  // half-open window
  EXPECT_FALSE(imp.corrupts(2, 3, SimTime::milliseconds(1500)));
}

// Statistical pin of the Gilbert–Elliott process (seeded, so deterministic):
// with per_bad = 1 and per_good = 0 every loss is exactly a visit to the bad
// state, which exposes the chain itself. Checks the three derived quantities
// documented in faults/plan.h — steady-state occupancy, geometric burst
// lengths (chi-square), and the long-run loss rate.
TEST(LinkImpairmentTest, GilbertElliottMatchesDerivedStatistics) {
  faults::LinkImpairment imp((Rng(12345)));
  faults::GilbertElliottParams ge;  // defaults: p_gb = 0.2, p_bg = 0.3
  ge.per_good = 0.0;
  ge.per_bad = 1.0;
  const SimTime horizon = SimTime::seconds(1000000);
  imp.add_burst(0, 1, SimTime::zero(), horizon, ge);

  constexpr int kAttempts = 20000;
  std::vector<int> run_lengths;  // completed loss bursts, in attempts
  int losses = 0;
  int current_run = 0;
  for (int i = 0; i < kAttempts; ++i) {
    const bool lost = imp.corrupts(0, 1, SimTime::microseconds(i + 1));
    if (lost) {
      ++losses;
      ++current_run;
    } else if (current_run > 0) {
      run_lengths.push_back(current_run);
      current_run = 0;
    }
  }
  // (A trailing in-progress burst is censored, not counted.)

  // Occupancy: P(bad) = p_gb / (p_gb + p_bg) = 0.2 / 0.5 = 0.4. The chain's
  // autocorrelation (1 - p_gb - p_bg = 0.5) inflates the sample variance
  // threefold vs iid; 0.02 is still > 3 sigma at N = 20000.
  EXPECT_NEAR(static_cast<double>(losses) / kAttempts, 0.4, 0.02);

  // Mean burst length: geometric with mean 1/p_bg = 10/3 attempts.
  ASSERT_GT(run_lengths.size(), 1000u);
  double total = 0.0;
  for (int len : run_lengths) total += len;
  EXPECT_NEAR(total / static_cast<double>(run_lengths.size()), 10.0 / 3.0,
              0.25);

  // Chi-square of the burst-length histogram against the geometric pmf
  // P(L = k) = p_bg * (1 - p_bg)^(k-1), buckets {1,2,3,4,5,>=6}.
  constexpr int kBuckets = 6;
  double observed[kBuckets] = {};
  for (int len : run_lengths)
    ++observed[len >= kBuckets ? kBuckets - 1 : len - 1];
  const double n = static_cast<double>(run_lengths.size());
  const double p = ge.p_bad_to_good;
  double chi2 = 0.0;
  double tail = 1.0;
  for (int k = 0; k < kBuckets; ++k) {
    const double pmf =
        k < kBuckets - 1 ? p * std::pow(1.0 - p, k) : tail;
    tail -= pmf;
    const double expected = n * pmf;
    const double d = observed[k] - expected;
    chi2 += d * d / expected;
  }
  // chi-square critical value, df = 5, alpha = 0.001.
  EXPECT_LT(chi2, 20.515);
}

// Long-run loss rate with partial PERs in both states:
// P(bad)*per_bad + P(good)*per_good.
TEST(LinkImpairmentTest, GilbertElliottLongRunLossRate) {
  faults::LinkImpairment imp((Rng(777)));
  faults::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.1;
  ge.p_bad_to_good = 0.2;  // P(bad) = 1/3
  ge.per_good = 0.05;
  ge.per_bad = 0.8;
  imp.add_burst(2, 3, SimTime::zero(), SimTime::seconds(1000000), ge);

  constexpr int kAttempts = 20000;
  int losses = 0;
  for (int i = 0; i < kAttempts; ++i)
    losses += imp.corrupts(2, 3, SimTime::microseconds(i + 1)) ? 1 : 0;
  // (1/3)*0.8 + (2/3)*0.05 = 0.3
  EXPECT_NEAR(static_cast<double>(losses) / kAttempts, 0.3, 0.02);
}

// ------------------------------------------------------- recovery end-to-end

constexpr char kGridScenario[] =
    "topology = grid 3 3 100\n"
    "duration_s = 3\n"
    "mac = tdma\n"
    "voip 0 0 8 g729 100\n"
    "voip 2 2 6 g729 100\n";

// Ring where the video detour (1 hop -> 5 hops) cannot fit post-fault:
// forces the degradation policy. 30 data minislots, two identical videos.
constexpr char kRingScenario[] =
    "topology = ring 6 100\n"
    "frame_ms = 10\n"
    "control_slots = 4\n"
    "data_slots = 30\n"
    "duration_s = 4\n"
    "mac = tdma\n"
    "voip 0 0 3 g729 100\n"
    "voip 2 1 4 g729 100\n"
    "video 10 1 2 2000000\n"
    "video 11 1 2 2000000\n";

Scenario make_faulted(const char* scenario_text, const char* fault_spec) {
  auto sc = parse_scenario(scenario_text);
  WIMESH_ASSERT(sc.has_value());
  auto plan = faults::parse_fault_plan(fault_spec);
  WIMESH_ASSERT(plan.has_value());
  sc->config.faults = std::move(*plan);
  sc->config.audit = true;
  return std::move(*sc);
}

SimulationResult run_faulted(const char* scenario_text,
                             const char* fault_spec) {
  const Scenario sc = make_faulted(scenario_text, fault_spec);
  MeshNetwork net(sc.config);
  for (const FlowSpec& f : sc.flows) net.add_flow(f);
  WIMESH_ASSERT(net.compute_plan().has_value());
  return net.run(sc.mac, sc.duration);
}

TEST(FaultRecoveryTest, NodeCrashIsRepairedAuditClean) {
  const SimulationResult r =
      run_faulted(kGridScenario, "node-crash@1 node=1");
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  const faults::FaultReport& f = r.faults;
  ASSERT_TRUE(f.enabled);
  EXPECT_EQ(f.events_applied, 1);
  EXPECT_EQ(f.repairs, 1);
  EXPECT_EQ(f.flows_shed, 0);
  EXPECT_EQ(f.flows_preserved, 4);
  EXPECT_GT(f.time_to_restore, SimTime::zero());
  for (const auto& rec : f.outages) {
    EXPECT_TRUE(rec.restored()) << "flow " << rec.flow_id;
    EXPECT_EQ(rec.interrupted_at, SimTime::seconds(1));
  }
}

TEST(FaultRecoveryTest, HotSwapLandsExactlyOnAFrameBoundary) {
  const Scenario sc = make_faulted(kGridScenario, "node-crash@1 node=1");
  MeshNetwork net(sc.config);
  for (const FlowSpec& f : sc.flows) net.add_flow(f);
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(sc.mac, sc.duration);
  const SimTime frame = sc.config.emulation.frame.frame_duration;
  ASSERT_GT(r.faults.last_repair_at, SimTime::seconds(1));
  EXPECT_EQ((r.faults.last_repair_at % frame).ns(), 0);
  // Repair latency = detection delay rounded up to the next frame start.
  EXPECT_GE(r.faults.repair_latency, sc.config.faults.detection_delay);
  EXPECT_LT(r.faults.repair_latency,
            sc.config.faults.detection_delay + frame * 2);
}

TEST(FaultRecoveryTest, MasterFailoverElectsASurvivor) {
  const SimulationResult r = run_faulted(kGridScenario, "master-fail@1");
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  EXPECT_EQ(r.faults.failovers, 1);
  EXPECT_GE(r.faults.repairs, 1);
  EXPECT_EQ(r.faults.flows_shed, 0);
}

TEST(FaultRecoveryTest, CrashThenRecoverReadmitsTheNode) {
  const SimulationResult r = run_faulted(
      kGridScenario, "node-crash@1 node=1; node-recover@2 node=1");
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  EXPECT_EQ(r.faults.events_applied, 2);
  EXPECT_EQ(r.faults.repairs, 2);  // one repair per structural event
  EXPECT_EQ(r.faults.flows_preserved, 4);
  EXPECT_EQ(r.faults.flows_shed, 0);
}

TEST(FaultDegradationTest, ShedsNewestVideoFirstKeepsVoip) {
  // Post-fault the two video detours cannot both fit: the documented order
  // sheds video before VoIP and the newest flow first within a class — so
  // flow 11 is shed, flow 10 and every VoIP flow are restored.
  const SimulationResult r =
      run_faulted(kRingScenario, "link-down@1 link=1-2");
  EXPECT_EQ(r.audit.total_violations(), 0u) << r.audit.summary();
  const faults::FaultReport& f = r.faults;
  EXPECT_EQ(f.flows_shed, 1);
  EXPECT_EQ(f.flows_preserved, 5);
  bool saw_shed_11 = false;
  for (const auto& rec : f.outages) {
    if (rec.flow_id == 11) {
      saw_shed_11 = true;
      EXPECT_TRUE(rec.shed);
      EXPECT_FALSE(rec.restored());
    } else {
      EXPECT_FALSE(rec.shed) << "flow " << rec.flow_id;
      EXPECT_TRUE(rec.restored()) << "flow " << rec.flow_id;
    }
  }
  EXPECT_TRUE(saw_shed_11);
}

TEST(FaultRecoveryTest, ReportAppearsInFormattedOutput) {
  const Scenario sc = make_faulted(kGridScenario, "node-crash@1 node=1");
  MeshNetwork net(sc.config);
  for (const FlowSpec& f : sc.flows) net.add_flow(f);
  ASSERT_TRUE(net.compute_plan().has_value());
  const SimulationResult r = net.run(sc.mac, sc.duration);
  const std::string report = format_report(sc, r);
  EXPECT_NE(report.find("faults:"), std::string::npos);
  EXPECT_NE(report.find("interrupted at"), std::string::npos);
  EXPECT_NE(report.find("restored after"), std::string::npos);
}

// ------------------------------------------------------------ determinism

TEST(FaultDeterminismTest, FaultedSweepIsBitIdenticalAcrossJobs) {
  Scenario sc = make_faulted(kGridScenario, "node-crash@1 node=1");
  sc.duration = SimTime::seconds(2);
  const auto specs = batch::seed_sweep(sc, 1, 3);
  batch::BatchOptions serial;
  serial.jobs = 1;
  batch::BatchOptions parallel;
  parallel.jobs = 4;
  const std::string a = batch::results_json(batch::run_batch(specs, serial));
  const std::string b =
      batch::results_json(batch::run_batch(specs, parallel));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"faults\""), std::string::npos);
  EXPECT_NE(a.find("\"outages\""), std::string::npos);
}

}  // namespace
}  // namespace wimesh
