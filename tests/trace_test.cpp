// wimesh::trace — ring accounting, category filtering, span self-time,
// exporter structure, and the cross-jobs determinism contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "wimesh/batch/json.h"
#include "wimesh/batch/runner.h"
#include "wimesh/common/json.h"
#include "wimesh/core/scenario.h"
#include "wimesh/sched/schedule_cache.h"
#include "wimesh/trace/export.h"
#include "wimesh/trace/trace.h"

using namespace wimesh;

namespace {

constexpr char kScenario[] = R"(# trace_test scenario
topology = chain 3 100
comm_range = 110
interference_range = 220
phy = ofdm54
frame_ms = 10
control_slots = 4
data_slots = 96
scheduler = ilp-delay
routing = hop
mac = tdma
duration_s = 1
seed = 7

voip 0 0 2 g729 100
)";

// Minimal structural JSON validator — enough to catch malformed escaping,
// trailing commas and unbalanced scopes in the exporter's hand-built text.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

trace::Record make_record(std::int64_t stamp) {
  trace::Record r;
  r.t0 = SimTime::nanoseconds(stamp);
  r.t1 = r.t0;
  r.type = trace::EventType::kFrameStart;
  r.node = 0;
  r.a = stamp;
  return r;
}

std::vector<batch::RunOutcome> traced_sweep(int jobs) {
  auto scenario = parse_scenario(kScenario);
  EXPECT_TRUE(scenario.has_value());
  ScheduleCache cache;  // shared within the batch, fresh per call
  batch::BatchOptions options;
  options.jobs = jobs;
  options.schedule_cache = &cache;
  options.trace = trace::TraceConfig{trace::kAll, std::size_t{1} << 16};
  return batch::run_batch(batch::seed_sweep(*scenario, 1, 4), options);
}

TEST(TracerRing, OverflowKeepsNewestAndCountsDrops) {
  trace::Tracer tracer(trace::TraceConfig{trace::kAll, 8});
  for (std::int64_t i = 0; i < 20; ++i) {
    tracer.record(trace::kTdma, make_record(i));
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 8u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, static_cast<std::int64_t>(12 + i));
  }
}

TEST(TracerRing, NoDropsBelowCapacity) {
  trace::Tracer tracer(trace::TraceConfig{trace::kAll, 8});
  for (std::int64_t i = 0; i < 8; ++i) {
    tracer.record(trace::kTdma, make_record(i));
  }
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.snapshot().size(), 8u);
}

TEST(TracerCategories, FilterRecordsOnlyEnabled) {
  trace::Tracer tracer(trace::TraceConfig{trace::kTdma | trace::kSync, 64});
  const trace::Scope scope(&tracer);
  trace::event(trace::EventType::kFrameStart, SimTime::zero(), 0, 1);
  trace::event(trace::EventType::kTxStart, SimTime::zero(), 0, 1);  // wifi
  trace::event(trace::EventType::kSyncWave, SimTime::zero(), 0, 1);
  trace::event(trace::EventType::kDesDispatch, SimTime::zero(), -1, 1);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, trace::EventType::kFrameStart);
  EXPECT_EQ(records[1].type, trace::EventType::kSyncWave);
}

TEST(TracerCategories, ParseNamesAndRejectUnknown) {
  EXPECT_EQ(trace::parse_categories("tdma,sync"), trace::kTdma | trace::kSync);
  EXPECT_EQ(trace::parse_categories("all"), trace::kAll);
  EXPECT_EQ(trace::parse_categories("on"), trace::kAll);
  EXPECT_EQ(trace::parse_categories("off"), 0u);
  EXPECT_EQ(trace::parse_categories(" des , prof "),
            trace::kDes | trace::kProf);
  std::string error;
  EXPECT_EQ(trace::parse_categories("tdma,bogus", &error), 0u);
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(TracerScope, BindsPerThreadAndRestores) {
  EXPECT_EQ(trace::current(), nullptr);
  trace::Tracer outer_tracer(trace::TraceConfig{trace::kAll, 16});
  {
    const trace::Scope outer(&outer_tracer);
    EXPECT_EQ(trace::current(), &outer_tracer);
    trace::Tracer inner_tracer(trace::TraceConfig{trace::kAll, 16});
    {
      const trace::Scope inner(&inner_tracer);
      EXPECT_EQ(trace::current(), &inner_tracer);
    }
    EXPECT_EQ(trace::current(), &outer_tracer);
  }
  EXPECT_EQ(trace::current(), nullptr);
  // And recording without a scope is a silent no-op.
  trace::event(trace::EventType::kFrameStart, SimTime::zero(), 0, 1);
}

TEST(TracerSpans, SelfTimeExcludesChildren) {
  trace::Tracer tracer(trace::TraceConfig{trace::kAll, 64});
  const trace::Scope scope(&tracer);
  {
    trace::Span outer(trace::SpanName::kQosPlan);
    { trace::Span inner(trace::SpanName::kIlpSolve); }
    { trace::Span inner(trace::SpanName::kIlpSolve); }
  }
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 3u);
  // Children pop first; the parent record is last.
  const trace::Record& outer = records[2];
  EXPECT_EQ(outer.name, static_cast<std::uint16_t>(trace::SpanName::kQosPlan));
  const std::int64_t child_total = records[0].a + records[1].a;
  EXPECT_EQ(outer.b, outer.a - child_total);
  EXPECT_GE(outer.b, 0);
}

TEST(TracerSpans, VirtualRangeIsRecorded) {
  trace::Tracer tracer(trace::TraceConfig{trace::kAll, 16});
  const trace::Scope scope(&tracer);
  {
    trace::Span span(trace::SpanName::kFaultRecovery,
                     SimTime::milliseconds(2));
    span.set_virtual_range(SimTime::milliseconds(2),
                           SimTime::milliseconds(30));
  }
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].t0, SimTime::milliseconds(2));
  EXPECT_EQ(records[0].t1, SimTime::milliseconds(30));
}

TEST(TraceExport, ChromeJsonIsStructurallyValid) {
  const auto outcomes = traced_sweep(1);
  ASSERT_FALSE(outcomes.empty());
  ASSERT_TRUE(outcomes.front().ok);
  ASSERT_NE(outcomes.front().trace, nullptr);
  trace::ExportOptions opts;
  opts.pid = 1;
  opts.process_label = "trace_test";
  const std::string json = trace::to_chrome_json(*outcomes.front().trace, opts);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\""), std::string::npos);
  // Wall-clock spans must never leak into the deterministic export.
  EXPECT_EQ(json.find("\"cat\":\"prof\""), std::string::npos);
}

TEST(TraceExport, DroppedCountSurfacesInJson) {
  trace::Tracer tracer(trace::TraceConfig{trace::kAll, 4});
  const trace::Scope scope(&tracer);
  for (std::int64_t i = 0; i < 10; ++i) {
    trace::event(trace::EventType::kFrameStart,
                 SimTime::milliseconds(i), 0, i);
  }
  const std::string json = trace::to_chrome_json(tracer);
  EXPECT_NE(json.find("\"recorded\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":6"), std::string::npos);
}

TEST(TraceExport, OtherDataCountsExcludeProfSpans) {
  // With a shared schedule cache, which run records a solve span depends
  // on thread timing — so span records must not leak into the exported
  // counts either (this broke cross-jobs byte-identity once).
  trace::Tracer tracer(trace::TraceConfig{trace::kAll, 64});
  const trace::Scope scope(&tracer);
  trace::event(trace::EventType::kFrameStart, SimTime::zero(), 0, 1);
  { trace::Span span(trace::SpanName::kIlpSolve); }
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.recorded_in(trace::kAll & ~trace::kProf), 1u);
  const std::string json = trace::to_chrome_json(tracer);
  EXPECT_NE(json.find("\"recorded\":1,"), std::string::npos);
}

TEST(TraceExport, SlotCsvListsGrantBlocks) {
  const auto outcomes = traced_sweep(1);
  ASSERT_TRUE(outcomes.front().ok);
  const std::string csv = trace::to_slot_csv(*outcomes.front().trace);
  ASSERT_EQ(csv.rfind("frame,node,link,slot_start,slot_len,fire_ms\n", 0), 0u);
  // A 1 s TDMA run must release at least one grant block per frame.
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 50);
  // Every row has exactly 6 comma-separated fields.
  std::size_t line_start = csv.find('\n') + 1;
  while (line_start < csv.size()) {
    const std::size_t line_end = csv.find('\n', line_start);
    ASSERT_NE(line_end, std::string::npos);
    const std::string line = csv.substr(line_start, line_end - line_start);
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5) << line;
    line_start = line_end + 1;
  }
}

TEST(TraceExport, SpanSummaryAggregatesRuns) {
  const auto outcomes = traced_sweep(1);
  std::vector<const trace::Tracer*> tracers;
  for (const auto& o : outcomes) tracers.push_back(o.trace.get());
  const std::string summary = trace::span_summary(tracers);
  EXPECT_NE(summary.find("sim.run"), std::string::npos);
  EXPECT_NE(summary.find("qos.plan"), std::string::npos);
  EXPECT_NE(summary.find("batch.run"), std::string::npos);
}

// The acceptance criterion: the virtual-time trace of every run is
// bit-identical whether the sweep ran on 1 worker or 8.
TEST(TraceDeterminism, IdenticalAcrossJobCounts) {
  const auto serial = traced_sweep(1);
  const auto parallel = traced_sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok);
    ASSERT_TRUE(parallel[i].ok);
    ASSERT_NE(serial[i].trace, nullptr);
    ASSERT_NE(parallel[i].trace, nullptr);
    trace::ExportOptions opts;
    opts.pid = static_cast<std::int64_t>(serial[i].run_index);
    opts.process_label = serial[i].label;
    EXPECT_EQ(trace::to_chrome_json(*serial[i].trace, opts),
              trace::to_chrome_json(*parallel[i].trace, opts))
        << serial[i].label;
    EXPECT_EQ(trace::to_slot_csv(*serial[i].trace),
              trace::to_slot_csv(*parallel[i].trace))
        << serial[i].label;
  }
}

TEST(TraceScenarioKey, ParsesAndRejects) {
  const std::string base(kScenario);
  auto with_filter = parse_scenario(base + "trace = tdma,sync\n");
  ASSERT_TRUE(with_filter.has_value());
  EXPECT_EQ(with_filter->config.trace_categories,
            trace::kTdma | trace::kSync);
  auto off = parse_scenario(base + "trace = off\n");
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->config.trace_categories, 0u);
  auto bad = parse_scenario(base + "trace = nonsense\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().find("nonsense"), std::string::npos);
}

// Satellite: the hoisted wimesh::json_escape handles the full control and
// non-ASCII range (the old batch-local version passed invalid bytes raw).
TEST(JsonEscape, ControlCharactersAndUtf8) {
  EXPECT_EQ(json_escape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // Valid UTF-8 passes through byte-for-byte.
  EXPECT_EQ(json_escape("caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80"),
            "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80");
  // Invalid sequences become U+FFFD instead of corrupting the document.
  EXPECT_EQ(json_escape(std::string("\xff", 1)), "\xef\xbf\xbd");
  EXPECT_EQ(json_escape(std::string("a\x80z", 3)), "a\xef\xbf\xbdz");
  // Truncated lead byte and overlong encoding are invalid, not passthrough.
  EXPECT_EQ(json_escape(std::string("\xc3", 1)), "\xef\xbf\xbd");
  EXPECT_EQ(json_escape(std::string("\xc0\xaf", 2)),
            "\xef\xbf\xbd\xef\xbf\xbd");
  // The batch alias still points at the shared implementation.
  EXPECT_EQ(batch::json_escape("\f"), "\\f");
}

}  // namespace
