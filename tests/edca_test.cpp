#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wimesh/des/simulator.h"
#include "wimesh/wifi/edca_mac.h"

namespace wimesh {
namespace {

struct Rig {
  Simulator sim;
  std::unique_ptr<WifiChannel> channel;
  std::vector<std::unique_ptr<EdcaMac>> macs;
  std::vector<std::pair<NodeId, MacPacket>> delivered;
  std::vector<std::pair<MacPacket, AccessCategory>> sent_ok;
  std::vector<std::pair<MacPacket, AccessCategory>> dropped;

  Rig(int n, double spacing, double comm, double interference) {
    std::vector<Point> pos;
    for (int i = 0; i < n; ++i) pos.push_back(Point{spacing * i, 0.0});
    Rng root(123);
    channel = std::make_unique<WifiChannel>(
        sim, pos, RadioModel(comm, interference), PhyMode::ofdm_802_11a(54),
        ErrorModel{0.0}, root.split());
    for (NodeId i = 0; i < n; ++i) {
      EdcaMac::Callbacks cb;
      cb.on_delivered = [this, i](const MacPacket& p) {
        delivered.emplace_back(i, p);
      };
      cb.on_sent = [this](const MacPacket& p, AccessCategory ac) {
        sent_ok.emplace_back(p, ac);
      };
      cb.on_dropped = [this](const MacPacket& p, AccessCategory ac,
                             MacDropCause) {
        dropped.emplace_back(p, ac);
      };
      macs.push_back(std::make_unique<EdcaMac>(sim, *channel, i, root.split(),
                                               std::move(cb)));
    }
  }

  MacPacket packet(std::uint64_t id, NodeId to, std::size_t bytes = 200) {
    MacPacket p;
    p.id = id;
    p.flow_id = 1;
    p.to = to;
    p.bytes = bytes;
    p.created_at = sim.now();
    return p;
  }
};

TEST(EdcaMacTest, UnicastDeliveryWithAckBothCategories) {
  Rig rig(2, 100.0, 150.0, 300.0);
  rig.macs[0]->send(rig.packet(1, 1), AccessCategory::kVoice);
  rig.macs[0]->send(rig.packet(2, 1), AccessCategory::kBestEffort);
  rig.sim.run_until(SimTime::milliseconds(20));
  EXPECT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.sent_ok.size(), 2u);
  EXPECT_TRUE(rig.dropped.empty());
}

TEST(EdcaMacTest, VoiceWinsWhenBothQueuesAreBacklogged) {
  Rig rig(2, 100.0, 150.0, 300.0);
  // Fill both queues simultaneously; voice's AIFS/CW advantage should get
  // its packets out far earlier on average.
  for (std::uint64_t i = 0; i < 20; ++i) {
    rig.macs[0]->send(rig.packet(100 + i, 1, 500), AccessCategory::kVoice);
    rig.macs[0]->send(rig.packet(200 + i, 1, 500),
                      AccessCategory::kBestEffort);
  }
  // Record delivery order.
  rig.sim.run_until(SimTime::seconds(1));
  ASSERT_EQ(rig.delivered.size(), 40u);
  // Position of the last voice packet must come before the position of the
  // last best-effort packet, and the first half of deliveries should be
  // voice-heavy.
  int voice_in_first_half = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (rig.delivered[i].second.id < 200) ++voice_in_first_half;
  }
  EXPECT_GE(voice_in_first_half, 15);
}

TEST(EdcaMacTest, InternalCollisionsAreCountedNotFatal) {
  Rig rig(2, 100.0, 150.0, 300.0);
  for (std::uint64_t i = 0; i < 50; ++i) {
    rig.macs[0]->send(rig.packet(100 + i, 1), AccessCategory::kVoice);
    rig.macs[0]->send(rig.packet(200 + i, 1), AccessCategory::kBestEffort);
  }
  rig.sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(rig.delivered.size(), 100u);  // everything eventually flows
  EXPECT_TRUE(rig.dropped.empty());
}

TEST(EdcaMacTest, RetryLimitDropsUnreachable) {
  Rig rig(2, 400.0, 150.0, 300.0);  // out of range
  rig.macs[0]->send(rig.packet(1, 1), AccessCategory::kVoice);
  rig.sim.run_until(SimTime::seconds(1));
  ASSERT_EQ(rig.dropped.size(), 1u);
  EXPECT_EQ(rig.dropped[0].second, AccessCategory::kVoice);
  EXPECT_EQ(rig.macs[0]->drops(AccessCategory::kVoice), 1u);
  // 1 initial + 7 retries.
  EXPECT_EQ(rig.macs[0]->tx_attempts(AccessCategory::kVoice), 8u);
}

TEST(EdcaMacTest, QueueOverflowDropsPerCategory) {
  Rig rig(2, 400.0, 150.0, 300.0);
  EdcaMac::Config cfg;
  cfg.max_queue_per_ac = 3;
  EdcaMac::Callbacks cb;
  int drops = 0;
  cb.on_dropped = [&](const MacPacket&, AccessCategory, MacDropCause) {
    ++drops;
  };
  // Third node so the attach is fresh (nodes 0/1 already attached).
  // Build a private rig instead:
  Simulator sim;
  Rng root(5);
  WifiChannel ch(sim, {{0, 0}, {100, 0}}, RadioModel(150, 300),
                 PhyMode::ofdm_802_11a(54), ErrorModel{}, root.split());
  EdcaMac mac(sim, ch, 0, root.split(), std::move(cb), cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    MacPacket p;
    p.id = i + 1;
    p.to = 1;
    p.bytes = 100;
    mac.send(p, AccessCategory::kBestEffort);
  }
  // 10 sent: 1 in service + 3 queued -> 6 dropped synchronously.
  EXPECT_EQ(drops, 6);
}

TEST(EdcaMacTest, BroadcastUnacknowledged) {
  Rig rig(3, 100.0, 150.0, 300.0);
  rig.macs[1]->send(rig.packet(9, kInvalidNode), AccessCategory::kVoice);
  rig.sim.run_until(SimTime::milliseconds(10));
  EXPECT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.channel->frames_transmitted(), 1u);  // no ACKs
  ASSERT_EQ(rig.sent_ok.size(), 1u);
  EXPECT_EQ(rig.sent_ok[0].second, AccessCategory::kVoice);
}

TEST(EdcaMacTest, TwoStationsContendAndAllDeliver) {
  Rig rig(3, 100.0, 150.0, 300.0);
  for (std::uint64_t i = 0; i < 15; ++i) {
    rig.macs[0]->send(rig.packet(100 + i, 1), AccessCategory::kVoice);
    rig.macs[2]->send(rig.packet(200 + i, 1), AccessCategory::kBestEffort);
  }
  rig.sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(rig.delivered.size(), 30u);
  EXPECT_TRUE(rig.dropped.empty());
}

}  // namespace
}  // namespace wimesh
