// R-S1 — city-scale scheduling: wall-clock cost of planning and simulating
// meshes from neighborhood size (100 nodes) to city size (2,025 nodes)
// with zone-partitioned scheduling (wimesh::zones).
//
// Each mesh is an R x R grid carrying localized VoIP call pairs spread
// across the area (3-hop calls spaced beyond interference range of each
// other — a city mesh's traffic is local, not all-to-gateway). The guard
// time is fixed explicitly: the auto-guard derivation grows with mesh
// diameter and would change the per-link demand across sizes, polluting
// the scaling comparison.
//
// For every size the bench reports plan wall time, simulation wall-clock
// per simulated second, the composed schedule length, and the zone/border
// accounting; --audit (implied by --smoke) runs the invariant auditor and
// the bench fails on any violation — the composed zone schedule must be
// conflict-free in execution, not just on paper.
//
// Flags:
//   --smoke      small mesh only (10x10), audit forced on, used as the CI
//                gate and as the TSan target for the parallel zone solves
//   --jobs K     worker threads for the phase-1 per-zone solves
//   --json OUT   machine-readable results (BENCH_scale.json in CI)
//   --audit      audit the full-size runs too
//   --trace OUT[:cats]  Perfetto trace (zones.* spans and events)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "wimesh/batch/json.h"
#include "wimesh/core/mesh_network.h"
#include "wimesh/graph/topology.h"
#include "wimesh/qos/flow.h"

namespace wimesh {
namespace {

struct ScaleArgs {
  bench::BenchArgs common;
  bool smoke = false;
  bench::BenchTraceArgs trace;
};

ScaleArgs parse_args(int argc, char** argv) {
  ScaleArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      out.common.jobs = std::atoi(argv[++i]);
      if (out.common.jobs < 1) out.common.jobs = 1;
    } else if (arg == "--json" && i + 1 < argc) {
      out.common.json_path = argv[++i];
    } else if (arg == "--audit") {
      out.common.audit = true;
    } else if (arg == "--smoke") {
      out.smoke = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      out.trace = bench::parse_trace_value(argv[0], argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--jobs K] [--json OUT] [--audit] "
                   "[--trace OUT[:cats]]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return out;
}

// Localized VoIP pairs: a 3-hop call every 3rd row and every 6th column,
// so neighboring calls' endpoints sit >= 300 m apart (beyond the 220 m
// interference range) and traffic covers the whole area evenly.
int add_city_calls(MeshNetwork& net, NodeId rows, NodeId cols) {
  int calls = 0;
  for (NodeId r = 1; r < rows; r += 3) {
    for (NodeId c = 0; c + 3 < cols; c += 6) {
      const NodeId a = r * cols + c;
      const NodeId b = r * cols + c + 3;
      net.add_voip_call(calls * 2, a, b, VoipCodec::g729(),
                        SimTime::milliseconds(100));
      ++calls;
    }
  }
  return calls;
}

struct SizeResult {
  int side = 0;
  int nodes = 0;
  int calls = 0;
  int links = 0;
  int zone_count = 0;
  int border_links = 0;
  int relocated = 0;
  int guaranteed_slots = 0;
  double plan_wall_s = 0.0;
  double sim_wall_per_sim_s = 0.0;
  std::uint64_t audit_violations = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Plans and simulates one R x R mesh; returns false when planning fails
// or the audit reports a violation.
bool run_size(NodeId side, const ScaleArgs& args, SizeResult* out) {
  const auto topo = try_make_grid(side, side, 100.0);
  if (!topo.has_value()) {
    std::fprintf(stderr, "grid %dx%d: %s\n", side, side, topo.error().c_str());
    return false;
  }
  MeshConfig cfg = bench::base_config(*std::move(topo));
  // Fixed guard: the diameter-derived auto guard would change per-slot
  // capacity (and so per-link demand) with mesh size. City-diameter
  // meshes need tight sync for any fixed guard to hold — 100 ms resync
  // waves and 200 ns per-hop timestamping keep the 3-sigma mutual
  // misalignment at 88 hops under the 20 us guard.
  cfg.auto_guard = false;
  cfg.emulation.guard_time = SimTime::microseconds(20);
  cfg.sync.resync_interval = SimTime::milliseconds(100);
  cfg.sync.per_hop_error_stddev = SimTime::nanoseconds(200);
  const int nodes = side * side;
  cfg.zones = std::max(4, std::min(24, nodes / 100));
  cfg.ilp.threads = args.common.jobs;
  cfg.audit = args.common.audit || args.smoke;

  MeshNetwork net(cfg);
  const int calls = add_city_calls(net, side, side);

  const auto plan_t0 = std::chrono::steady_clock::now();
  const auto plan = net.compute_plan();
  const double plan_wall = seconds_since(plan_t0);
  if (!plan.has_value()) {
    std::fprintf(stderr, "grid %dx%d: plan failed: %s\n", side, side,
                 plan.error().c_str());
    return false;
  }

  constexpr auto kSimulated = SimTime::seconds(1);
  const auto sim_t0 = std::chrono::steady_clock::now();
  const SimulationResult r = net.run(MacMode::kTdmaOverlay, kSimulated);
  const double sim_wall = seconds_since(sim_t0);

  out->side = side;
  out->nodes = nodes;
  out->calls = calls;
  out->links = net.plan().links.count();
  out->zone_count = net.plan().zone_count;
  out->border_links = net.plan().border_links;
  out->relocated = net.plan().relocated_border_links;
  out->guaranteed_slots = net.plan().guaranteed_slots_used;
  out->plan_wall_s = plan_wall;
  out->sim_wall_per_sim_s = sim_wall / kSimulated.to_seconds();
  out->audit_violations =
      bench::audit_violations("grid " + std::to_string(side), r);
  return out->audit_violations == 0;
}

std::string to_json(const std::vector<SizeResult>& results, int jobs) {
  batch::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("city_scale");
  w.key("jobs");
  w.value(jobs);
  w.key("rows");
  w.begin_array();
  for (const SizeResult& r : results) {
    w.begin_object();
    w.key("nodes");
    w.value(r.nodes);
    w.key("calls");
    w.value(r.calls);
    w.key("links");
    w.value(r.links);
    w.key("zones");
    w.value(r.zone_count);
    w.key("border_links");
    w.value(r.border_links);
    w.key("relocated_border_links");
    w.value(r.relocated);
    w.key("guaranteed_slots");
    w.value(r.guaranteed_slots);
    w.key("plan_wall_s");
    w.value(r.plan_wall_s);
    w.key("sim_wall_per_sim_s");
    w.value(r.sim_wall_per_sim_s);
    w.key("audit_violations");
    w.value(static_cast<std::uint64_t>(r.audit_violations));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace
}  // namespace wimesh

int main(int argc, char** argv) {
  using namespace wimesh;
  const ScaleArgs args = parse_args(argc, argv);

  std::unique_ptr<trace::Tracer> tracer;
  if (args.trace.enabled) {
    tracer = std::make_unique<trace::Tracer>(
        trace::TraceConfig{args.trace.categories, std::size_t{1} << 18});
  }
  const trace::Scope trace_scope(tracer.get());

  bench::heading("R-S1", args.smoke ? "city-scale scheduling (smoke)"
                                    : "city-scale scheduling");
  bench::row("%7s %7s %7s %6s %8s %6s %9s %11s %12s", "nodes", "calls",
             "links", "zones", "border", "slots", "plan_s", "sim_s/sim_s",
             "audit_viol");

  const std::vector<NodeId> sides =
      args.smoke ? std::vector<NodeId>{10} : std::vector<NodeId>{10, 20, 32, 45};
  std::vector<SizeResult> results;
  bool ok = true;
  for (const NodeId side : sides) {
    SizeResult r;
    if (!run_size(side, args, &r)) ok = false;
    if (r.nodes == 0) continue;  // plan failure: nothing to report
    results.push_back(r);
    bench::row("%7d %7d %7d %6d %8d %6d %9.3f %11.3f %12llu", r.nodes,
               r.calls, r.links, r.zone_count, r.border_links,
               r.guaranteed_slots, r.plan_wall_s, r.sim_wall_per_sim_s,
               static_cast<unsigned long long>(r.audit_violations));
  }

  if (args.smoke) {
    // CI gate: the composed zone schedule must execute without a single
    // conflict/conservation/slot violation, and zoning must actually have
    // been exercised.
    if (results.empty() || results.front().zone_count < 2) {
      std::fprintf(stderr, "smoke: zoned scheduling was not exercised\n");
      ok = false;
    }
    std::printf("smoke: %s\n", ok ? "ok" : "FAILED");
  }

  if (!args.common.json_path.empty() &&
      !bench::write_text_file(args.common.json_path,
                              to_json(results, args.common.jobs))) {
    std::fprintf(stderr, "cannot write '%s'\n",
                 args.common.json_path.c_str());
    return 1;
  }
  if (tracer != nullptr &&
      !bench::export_bench_trace(*tracer, args.trace.path, 1, "city_scale")) {
    return 1;
  }
  return ok ? 0 : 1;
}
