// R-F9 — Call blocking probability vs offered load (Erlang curve).
//
// VoIP calls arrive Poisson at the gateway mesh and hold exponentially;
// each arrival runs the centralized admission control. Expected shape:
// the blocking probability follows the classic Erlang knee — ~0 until the
// offered load approaches the mesh's call capacity, then climbs steeply —
// and the scheduler choice shifts the knee: the ILP (exploiting spatial
// reuse and compact packing) carries at least as much load as greedy,
// which in turn beats the naive round-robin ordering.

#include "bench_util.h"
#include "wimesh/qos/call_dynamics.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

CallDynamicsResult run(const Topology& topo, double erlangs,
                       SchedulerKind kind) {
  CallDynamicsConfig cfg;
  for (NodeId n = 1; n < topo.node_count(); ++n) {
    cfg.endpoints.push_back({n, 0});
  }
  cfg.mean_holding_s = 120.0;
  cfg.arrival_rate_per_s = erlangs / cfg.mean_holding_s;
  cfg.horizon = SimTime::seconds(4000);
  cfg.scheduler = kind;
  EmulationParams params;
  params.frame.frame_duration = SimTime::milliseconds(10);
  params.frame.control_slots = 4;
  params.frame.data_slots = 96;
  params.guard_time = SimTime::microseconds(50);
  return simulate_call_dynamics(topo, RadioModel(110.0, 220.0), params,
                                PhyMode::ofdm_802_11a(54), cfg);
}

}  // namespace

void panel(const char* title, const Topology& topo,
           const std::vector<double>& loads) {
  heading("R-F9", title);
  row("%-9s | %10s %9s | %10s %9s | %10s %9s", "erlangs", "ilp_block",
      "ilp_carry", "grd_block", "grd_carry", "rr_block", "rr_carry");
  for (double erlangs : loads) {
    const auto ilp = run(topo, erlangs, SchedulerKind::kIlpDelayAware);
    const auto greedy = run(topo, erlangs, SchedulerKind::kGreedy);
    const auto rr = run(topo, erlangs, SchedulerKind::kRoundRobin);
    row("%-9.1f | %10.4f %9.2f | %10.4f %9.2f | %10.4f %9.2f", erlangs,
        ilp.blocking_probability(), ilp.mean_carried_calls,
        greedy.blocking_probability(), greedy.mean_carried_calls,
        rr.blocking_probability(), rr.mean_carried_calls);
  }
}

int main() {
  // Grid: the per-node clique bound decides admission, so all schedulers
  // coincide — the Erlang knee itself is the result here.
  panel("call blocking vs offered load (grid-3x3 gateway, G.729)",
        make_grid(3, 3, 100.0), {4.0, 8.0, 12.0, 16.0, 20.0, 28.0});
  // Chain with spatial reuse: transmission ORDER now decides capacity, so
  // the naive round-robin scheduler blocks earlier than greedy/ILP.
  panel("call blocking vs offered load (chain-6 gateway, G.729)",
        make_chain(6, 100.0), {4.0, 8.0, 12.0, 16.0, 20.0});
  return 0;
}
