// R-F9 — Call blocking probability vs offered load (Erlang curve).
//
// VoIP calls arrive Poisson at the gateway mesh and hold exponentially;
// each arrival runs the centralized admission control. Expected shape:
// the blocking probability follows the classic Erlang knee — ~0 until the
// offered load approaches the mesh's call capacity, then climbs steeply —
// and the scheduler choice shifts the knee: the ILP (exploiting spatial
// reuse and compact packing) carries at least as much load as greedy,
// which in turn beats the naive round-robin ordering.
//
// The topology x load x scheduler grid runs on the batch executor
// (--jobs K) with one shared schedule cache; admission re-solves of an
// already-seen call mix hit the cache. Output is identical for any K.

#include "bench_util.h"
#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/qos/call_dynamics.h"
#include "wimesh/sched/schedule_cache.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

constexpr SchedulerKind kKinds[] = {SchedulerKind::kIlpDelayAware,
                                    SchedulerKind::kGreedy,
                                    SchedulerKind::kRoundRobin};
constexpr std::size_t kNumKinds = 3;

CallDynamicsResult run(const Topology& topo, double erlangs,
                       SchedulerKind kind, ScheduleCache* cache) {
  CallDynamicsConfig cfg;
  for (NodeId n = 1; n < topo.node_count(); ++n) {
    cfg.endpoints.push_back({n, 0});
  }
  cfg.mean_holding_s = 120.0;
  cfg.arrival_rate_per_s = erlangs / cfg.mean_holding_s;
  cfg.horizon = SimTime::seconds(4000);
  cfg.scheduler = kind;
  cfg.ilp.cache = cache;
  EmulationParams params;
  params.frame.frame_duration = SimTime::milliseconds(10);
  params.frame.control_slots = 4;
  params.frame.data_slots = 96;
  params.guard_time = SimTime::microseconds(50);
  return simulate_call_dynamics(topo, RadioModel(110.0, 220.0), params,
                                PhyMode::ofdm_802_11a(54), cfg);
}

struct Panel {
  const char* title;
  const char* tag;
  Topology topo;
  std::vector<double> loads;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);

  // Grid: the per-node clique bound decides admission, so all schedulers
  // coincide — the Erlang knee itself is the result here. Chain with
  // spatial reuse: transmission ORDER now decides capacity, so the naive
  // round-robin scheduler blocks earlier than greedy/ILP.
  std::vector<Panel> panels;
  panels.push_back({"call blocking vs offered load (grid-3x3 gateway, G.729)",
                    "grid-3x3", make_grid(3, 3, 100.0),
                    {4.0, 8.0, 12.0, 16.0, 20.0, 28.0}});
  panels.push_back({"call blocking vs offered load (chain-6 gateway, G.729)",
                    "chain-6", make_chain(6, 100.0),
                    {4.0, 8.0, 12.0, 16.0, 20.0}});

  // Flatten the panel x load x scheduler grid into independent work items.
  struct Item {
    std::size_t panel;
    double erlangs;
    SchedulerKind kind;
  };
  std::vector<Item> items;
  for (std::size_t p = 0; p < panels.size(); ++p) {
    for (double erlangs : panels[p].loads) {
      for (SchedulerKind kind : kKinds) items.push_back({p, erlangs, kind});
    }
  }

  ScheduleCache cache;
  std::vector<CallDynamicsResult> results(items.size());
  batch::run_indexed(args.jobs, items.size(), [&](std::size_t i) {
    results[i] = run(panels[items[i].panel].topo, items[i].erlangs,
                     items[i].kind, &cache);
  });

  static constexpr const char* kKindNames[] = {"ilp_delay", "greedy",
                                               "round_robin"};
  std::size_t at = 0;
  for (std::size_t pi = 0; pi < panels.size(); ++pi) {
    const Panel& p = panels[pi];
    heading("R-F9", p.title);
    row("%-9s | %10s %9s | %10s %9s | %10s %9s", "erlangs", "ilp_block",
        "ilp_carry", "grd_block", "grd_carry", "rr_block", "rr_carry");
    for (double erlangs : p.loads) {
      const auto& ilp = results[at++];
      const auto& greedy = results[at++];
      const auto& rr = results[at++];
      row("%-9.1f | %10.4f %9.2f | %10.4f %9.2f | %10.4f %9.2f", erlangs,
          ilp.blocking_probability(), ilp.mean_carried_calls,
          greedy.blocking_probability(), greedy.mean_carried_calls,
          rr.blocking_probability(), rr.mean_carried_calls);
    }
    // Per-decision admission latency across every load of this panel.
    row("%-11s | %9s %9s %9s %9s %9s", "latency_us", "p50", "p90", "p99",
        "mean", "max");
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      SampleSet merged;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].panel != pi || i % kNumKinds != k) continue;
        for (double ns : results[i].decision_latency_ns.samples()) {
          merged.add(ns);
        }
      }
      if (merged.empty()) continue;
      row("%-11s | %9.1f %9.1f %9.1f %9.1f %9.1f", kKindNames[k],
          merged.quantile(0.50) / 1e3, merged.quantile(0.90) / 1e3,
          merged.quantile(0.99) / 1e3, merged.mean() / 1e3,
          merged.max() / 1e3);
    }
  }
  std::printf("%s\n", cache.report().c_str());

  if (!args.json_path.empty()) {
    batch::JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("call_blocking");
    w.key("rows");
    w.begin_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      w.begin_object();
      w.key("topology");
      w.value(panels[items[i].panel].tag);
      w.key("erlangs");
      w.value(items[i].erlangs);
      w.key("scheduler");
      w.value(kKindNames[i % kNumKinds]);
      w.key("blocking_probability");
      w.value(results[i].blocking_probability());
      w.key("mean_carried_calls");
      w.value(results[i].mean_carried_calls);
      const SampleSet& lat = results[i].decision_latency_ns;
      w.key("decision_latency_us");
      if (lat.empty()) {
        w.null();
      } else {
        w.begin_object();
        w.key("p50");
        w.value(lat.quantile(0.50) / 1e3);
        w.key("p90");
        w.value(lat.quantile(0.90) / 1e3);
        w.key("p99");
        w.value(lat.quantile(0.99) / 1e3);
        w.key("mean");
        w.value(lat.mean() / 1e3);
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!write_text_file(args.json_path, w.str())) {
      std::fprintf(stderr, "cannot write '%s'\n", args.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
