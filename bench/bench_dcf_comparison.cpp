// R-F3 — TDMA-over-WiFi vs plain 802.11 DCF as background load grows.
//
// A 3x3 grid carries two fixed G.711 VoIP calls to the gateway while
// best-effort load (bulk transfers crossing the mesh) sweeps from 0 to
// 12 Mbit/s offered. Expected shape: the overlay's VoIP loss stays ~0 and
// p99 delay flat (voice owns reserved slots; BE lives in leftovers), while
// DCF's VoIP p99 delay and loss climb with load — the guaranteed-QoS
// headline of the paper.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

MeshNetwork build(double be_mbps) {
  MeshConfig cfg = base_config(make_grid(3, 3, 100.0));
  MeshNetwork net(cfg);
  net.add_voip_call(0, 8, 0, VoipCodec::g711(), SimTime::milliseconds(100));
  net.add_voip_call(2, 6, 0, VoipCodec::g711(), SimTime::milliseconds(100));
  if (be_mbps > 0) {
    net.add_flow(FlowSpec::best_effort(100, 2, 6, 1200, be_mbps * 1e6 / 2));
    net.add_flow(FlowSpec::best_effort(101, 8, 0, 1200, be_mbps * 1e6 / 2));
  }
  return net;
}

}  // namespace

int main() {
  heading("R-F3",
          "VoIP QoS vs offered best-effort load: TDMA overlay vs 802.11 DCF "
          "vs 802.11e EDCA");
  row("%-8s | %9s %9s | %9s %9s | %9s %9s | %9s", "BE Mbps", "tdma_p99",
      "tdma_loss", "dcf_p99", "dcf_loss", "edca_p99", "edca_loss",
      "be_tdma");
  const SimTime duration = SimTime::seconds(8);
  for (double be : {0.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
    MeshNetwork tdma_net = build(be);
    WIMESH_ASSERT(tdma_net.compute_plan().has_value());
    const SimulationResult tdma =
        tdma_net.run(MacMode::kTdmaOverlay, duration);

    MeshNetwork dcf_net = build(be);
    WIMESH_ASSERT(dcf_net.compute_plan().has_value());
    const SimulationResult dcf = dcf_net.run(MacMode::kDcf, duration);

    MeshNetwork edca_net = build(be);
    WIMESH_ASSERT(edca_net.compute_plan().has_value());
    const SimulationResult edca = edca_net.run(MacMode::kEdca, duration);

    row("%-8.1f | %9.2f %9.4f | %9.2f %9.4f | %9.2f %9.4f | %9.2f", be,
        worst_voip_p99_ms(tdma), worst_voip_loss(tdma),
        worst_voip_p99_ms(dcf), worst_voip_loss(dcf),
        worst_voip_p99_ms(edca), worst_voip_loss(edca),
        best_effort_goodput_mbps(tdma));
  }

  // Second panel: voice contending with voice. EDCA's priority cannot help
  // when every flow is high priority — the voice class's tiny contention
  // window (CWmin 3) collides with itself as calls multiply, while the
  // overlay's admitted calls remain collision-free by construction.
  heading("R-F3b", "VoIP QoS vs number of G.711 calls (grid-3x3, no BE)");
  row("%-7s | %9s %9s | %9s %9s | %9s %9s", "calls", "tdma_p99", "tdma_loss",
      "dcf_p99", "dcf_loss", "edca_p99", "edca_loss");
  for (int calls : {2, 4, 6, 8, 10}) {
    auto build_calls = [calls] {
      MeshConfig cfg = base_config(make_grid(3, 3, 100.0));
      cfg.emulation.frame.frame_duration = SimTime::milliseconds(20);
      cfg.emulation.frame.data_slots = 196;
      MeshNetwork net(cfg);
      int id = 0;
      for (int c = 0; c < calls; ++c) {
        net.add_voip_call(id, 1 + static_cast<NodeId>(c) % 8, 0,
                          VoipCodec::g711(), SimTime::milliseconds(100));
        id += 2;
      }
      return net;
    };
    MeshNetwork tdma_net = build_calls();
    if (!tdma_net.compute_plan().has_value()) {
      row("%-7d | admission rejects this load", calls);
      continue;
    }
    const SimulationResult tdma =
        tdma_net.run(MacMode::kTdmaOverlay, duration);
    MeshNetwork dcf_net = build_calls();
    WIMESH_ASSERT(dcf_net.compute_plan().has_value());
    const SimulationResult dcf = dcf_net.run(MacMode::kDcf, duration);
    MeshNetwork edca_net = build_calls();
    WIMESH_ASSERT(edca_net.compute_plan().has_value());
    const SimulationResult edca = edca_net.run(MacMode::kEdca, duration);
    row("%-7d | %9.2f %9.4f | %9.2f %9.4f | %9.2f %9.4f", calls,
        worst_voip_p99_ms(tdma), worst_voip_loss(tdma),
        worst_voip_p99_ms(dcf), worst_voip_loss(dcf),
        worst_voip_p99_ms(edca), worst_voip_loss(edca));
  }
  return 0;
}
