// R-T2 — ILP solve time and branch & bound effort vs network size.
//
// Times the pure feasibility ILP (heuristics disabled, so branch & bound
// does the work) at the minimal feasible S on chains and grids, plus the
// underlying simplex on the root relaxation. Expected shape: solve time
// grows superlinearly with the number of conflicting link pairs (binary
// variables); chains stay trivial while grids grow quickly — the reason
// the paper treats the ILP as an offline/admission-time tool.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "bench_util.h"
#include "wimesh/qos/planner.h"
#include "wimesh/sched/conflict_graph.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

SchedulingProblem chain_problem(NodeId n) {
  const Topology topo = make_chain(n, 100.0);
  MeshConfig cfg = base_config(topo);
  QosPlanner planner(topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, n - 1, VoipCodec::g729()),
       FlowSpec::voip(1, n - 1, 0, VoipCodec::g729())},
      SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  SchedulingProblem p;
  p.links = plan->links;
  p.demand = plan->guaranteed_demand;
  p.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    p.flows.push_back(FlowPath{f.links, f.delay_budget_frames});
  }
  return p;
}

SchedulingProblem grid_problem(NodeId side) {
  const Topology topo = make_grid(side, side, 100.0);
  MeshConfig cfg = base_config(topo);
  QosPlanner planner(topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  const NodeId last = side * side - 1;
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, last, VoipCodec::g729()),
       FlowSpec::voip(1, last, 0, VoipCodec::g729()),
       FlowSpec::voip(2, side - 1, last - side + 1, VoipCodec::g729())},
      SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  SchedulingProblem p;
  p.links = plan->links;
  p.demand = plan->guaranteed_demand;
  p.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    p.flows.push_back(FlowPath{f.links, f.delay_budget_frames});
  }
  return p;
}

// The solver configurations the bench compares: `kBaseline` is the
// pre-portfolio single-strategy branch & bound with every accelerator off;
// `kAccel` is the default stack (clique cuts, symmetry breaking, warm
// starts, tree fast path, 4-strategy portfolio). The before/after pair is
// what EXPERIMENTS.md R-T2 quotes.
enum class Solver { kBaseline, kAccel };

IlpSchedulerOptions solver_options(Solver solver) {
  IlpSchedulerOptions opt;
  opt.try_heuristics = false;  // time the branch & bound itself
  opt.time_limit_seconds = 10.0;
  opt.max_nodes = 2'000'000;
  if (solver == Solver::kBaseline) {
    opt.clique_cuts = false;
    opt.symmetry_breaking = false;
    opt.warm_start = false;
    opt.tree_fast_path = false;
    opt.portfolio = 1;
  }
  return opt;
}

// slack = extra slots beyond the minimum. At slack 0 the feasibility
// question is hardest (feasible orders are rare); a few slots of slack
// collapse the tree. Reporting both regimes reproduces the paper's
// observation that the exact ILP is an offline tool — and, after the
// portfolio/cuts/tree work, how far the tight-S wall has moved.
void run_ilp(benchmark::State& state, const SchedulingProblem& p, int slack,
             Solver solver) {
  const auto probe = min_slots_search(p, 96);
  WIMESH_ASSERT(probe.has_value());
  const int s = probe->frame_slots + slack;

  const IlpSchedulerOptions opt = solver_options(solver);
  long nodes = 0, lp_iters = 0;
  bool solved = true, tree = false;
  for (auto _ : state) {
    auto r = schedule_ilp(p, s, opt);
    if (!r.has_value()) {
      solved = false;
      state.SkipWithError("DNF: branch & bound limit (the tight-S wall)");
      break;
    }
    nodes = r->ilp_nodes;
    lp_iters = r->lp_iterations;
    tree = r->used_tree_fast_path;
    benchmark::DoNotOptimize(r);
  }
  state.counters["links"] = p.links.count();
  state.counters["conflict_pairs"] = p.conflicts.edge_count();
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
  state.counters["lp_pivots"] = static_cast<double>(lp_iters);
  state.counters["slots"] = s;
  state.counters["solved"] = solved ? 1 : 0;
  // 1 when S is the proven minimum (no stage skipped on limits), i.e. the
  // "proven yes" acceptance signal for the tight-S rows.
  state.counters["proven"] = probe->proven_minimal ? 1 : 0;
  state.counters["tree_fast_path"] = tree ? 1 : 0;
}

void BM_IlpChainTightS(benchmark::State& state) {
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/0, Solver::kAccel);
}

void BM_IlpChainTightSBaseline(benchmark::State& state) {
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/0, Solver::kBaseline);
}

void BM_IlpChainLooseS(benchmark::State& state) {
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/4, Solver::kAccel);
}

void BM_IlpGridTightS(benchmark::State& state) {
  const auto p = grid_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/0, Solver::kAccel);
}

void BM_IlpGridTightSBaseline(benchmark::State& state) {
  const auto p = grid_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/0, Solver::kBaseline);
}

void BM_IlpGridLooseS(benchmark::State& state) {
  const auto p = grid_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/4, Solver::kAccel);
}

void BM_RootLpRelaxation(benchmark::State& state) {
  // Cost of one simplex solve on the chain relaxation (the unit of work
  // branch & bound repeats per node).
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  const auto probe = min_slots_search(p, 96);
  WIMESH_ASSERT(probe.has_value());
  IlpSchedulerOptions opt;
  opt.max_nodes = 1;
  opt.try_heuristics = true;  // rounding path == root LP + reconstruction
  for (auto _ : state) {
    auto r = schedule_ilp(p, probe->frame_slots, opt);
    benchmark::DoNotOptimize(r);
  }
}

std::string render_grants(const SchedulingProblem& p, const MeshSchedule& s) {
  std::string out;
  for (LinkId l = 0; l < p.links.count(); ++l) {
    const auto g = s.grant(l);
    if (!g) continue;
    out += std::to_string(l) + ":" + std::to_string(g->start) + "+" +
           std::to_string(g->length) + " ";
  }
  return out;
}

// --tree-smoke: the tree fast path must be sound against the full ILP on
// forest-support problems. It may decline at the very tightest S (the
// canonical order trades reuse for zero wraps), so the checks are: it
// never undercuts the ILP's proven minimum S, its first accepted schedule
// is valid, budget-clean and wrap-free, and the default solver actually
// takes it there. Returns the number of failed cases.
int tree_smoke() {
  int failures = 0;
  for (const NodeId n : {NodeId{4}, NodeId{6}, NodeId{10}}) {
    const SchedulingProblem p = chain_problem(n);
    IlpSchedulerOptions no_tree;
    no_tree.tree_fast_path = false;
    no_tree.time_limit_seconds = 30.0;
    const auto probe = min_slots_search(p, 96, no_tree);
    if (!probe.has_value()) {
      std::printf("tree-smoke chain-%d: FAIL (no feasible S)\n", n);
      ++failures;
      continue;
    }
    const int s_ilp = probe->frame_slots;
    int s_fast = -1;
    std::optional<ScheduleResult> fast;
    for (int s = s_ilp; s <= 96 && !fast; ++s) {
      fast = schedule_tree_fast_path(p, s);
      if (fast) s_fast = s;
    }
    bool ok = fast.has_value() && validate_schedule(p, fast->schedule) &&
              budgets_satisfied(p, fast->schedule);
    if (ok) {
      for (const FlowPath& f : p.flows) {
        if (count_frame_wraps(fast->schedule, f) != 0) ok = false;
      }
    }
    // Sanity below the ILP minimum: the fast path must never accept there.
    if (ok && s_ilp > 1 && schedule_tree_fast_path(p, s_ilp - 1)) ok = false;
    bool took_fast = false;
    if (ok) {
      const auto dflt = schedule_ilp(p, s_fast);
      took_fast = dflt.has_value() && dflt->used_tree_fast_path;
    }
    if (ok && took_fast) {
      std::printf(
          "tree-smoke chain-%d: PASS (ilp min S=%d, fast path wrap-free at "
          "S=%d)\n",
          n, s_ilp, s_fast);
    } else {
      std::printf("tree-smoke chain-%d: FAIL (ok=%d took_fast=%d)\n", n, ok,
                  took_fast);
      ++failures;
    }
  }
  return failures;
}

// --portfolio-smoke: the portfolio result must be bit-identical for any
// thread count. Forces branch & bound (no heuristics, no tree path) on the
// grid so the portfolio genuinely runs. Returns 0 on pass.
int portfolio_smoke() {
  const SchedulingProblem p = grid_problem(3);
  const auto probe = min_slots_search(p, 96);
  if (!probe.has_value()) {
    std::printf("portfolio-smoke: FAIL (no feasible S)\n");
    return 1;
  }
  IlpSchedulerOptions opt;
  opt.try_heuristics = false;
  opt.tree_fast_path = false;
  // Cuts + symmetry breaking make this root-integral; drop them so branch
  // & bound genuinely runs and the portfolio has something to race on.
  opt.clique_cuts = false;
  opt.symmetry_breaking = false;
  opt.time_limit_seconds = 60.0;
  std::string reference;
  int failures = 0;
  for (const int threads : {1, 2, 8}) {
    opt.threads = threads;
    const auto r = schedule_ilp(p, probe->frame_slots, opt);
    if (!r.has_value()) {
      std::printf("portfolio-smoke threads=%d: FAIL (%s)\n", threads,
                  r.error().c_str());
      ++failures;
      continue;
    }
    const std::string grants = render_grants(p, r->schedule);
    if (reference.empty()) reference = grants;
    if (grants == reference) {
      std::printf("portfolio-smoke threads=%d: PASS (nodes=%ld)\n", threads,
                  r->ilp_nodes);
    } else {
      std::printf("portfolio-smoke threads=%d: FAIL\n  got  %s\n  want %s\n",
                  threads, grants.c_str(), reference.c_str());
      ++failures;
    }
  }
  return failures;
}

}  // namespace

BENCHMARK(BM_IlpChainTightS)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_IlpChainTightSBaseline)->Arg(4)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_IlpChainLooseS)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IlpGridTightS)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_IlpGridTightSBaseline)->Arg(3)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_IlpGridLooseS)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RootLpRelaxation)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags
// it does not know, so --trace OUT[:cats] is stripped before Initialize.
// With no --trace the behaviour (and output) is exactly BENCHMARK_MAIN's.
// With it, every solver call runs under the profiler and the span summary
// accounts the same work the benchmark timings report: ilp.solve wall
// totals are the measured iteration time, sched.schedule_ilp self time is
// the model-build overhead around it.
// Two self-checking modes ride along for CI: --tree-smoke verifies the
// tree fast path against the full ILP, --portfolio-smoke verifies thread-
// count independence of the portfolio result. Either exits nonzero on
// failure instead of running the benchmarks. For a machine-readable
// artifact use google-benchmark's native
//   --benchmark_out=BENCH_ilp.json --benchmark_out_format=json
int main(int argc, char** argv) {
  BenchTraceArgs targs;
  std::vector<char*> keep;
  keep.push_back(argv[0]);
  bool want_tree_smoke = false, want_portfolio_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      targs = parse_trace_value(argv[0], argv[++i]);
    } else if (std::strcmp(argv[i], "--tree-smoke") == 0) {
      want_tree_smoke = true;
    } else if (std::strcmp(argv[i], "--portfolio-smoke") == 0) {
      want_portfolio_smoke = true;
    } else {
      keep.push_back(argv[i]);
    }
  }
  if (want_tree_smoke || want_portfolio_smoke) {
    int failures = 0;
    if (want_tree_smoke) failures += tree_smoke();
    if (want_portfolio_smoke) failures += portfolio_smoke();
    return failures == 0 ? 0 : 1;
  }
  int kept = static_cast<int>(keep.size());

  std::unique_ptr<trace::Tracer> tracer;
  if (targs.enabled) {
    tracer = std::make_unique<trace::Tracer>(
        trace::TraceConfig{targs.categories, std::size_t{1} << 18});
  }
  const trace::Scope scope(tracer.get());

  benchmark::Initialize(&kept, keep.data());
  if (benchmark::ReportUnrecognizedArguments(kept, keep.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (tracer) {
    if (!export_bench_trace(*tracer, targs.path, 0, "bench_ilp_solvetime")) {
      return 1;
    }
    std::fputs(trace::span_summary(*tracer).c_str(), stdout);
  }
  return 0;
}
