// R-T2 — ILP solve time and branch & bound effort vs network size.
//
// Times the pure feasibility ILP (heuristics disabled, so branch & bound
// does the work) at the minimal feasible S on chains and grids, plus the
// underlying simplex on the root relaxation. Expected shape: solve time
// grows superlinearly with the number of conflicting link pairs (binary
// variables); chains stay trivial while grids grow quickly — the reason
// the paper treats the ILP as an offline/admission-time tool.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "bench_util.h"
#include "wimesh/qos/planner.h"
#include "wimesh/sched/conflict_graph.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

SchedulingProblem chain_problem(NodeId n) {
  const Topology topo = make_chain(n, 100.0);
  MeshConfig cfg = base_config(topo);
  QosPlanner planner(topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, n - 1, VoipCodec::g729()),
       FlowSpec::voip(1, n - 1, 0, VoipCodec::g729())},
      SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  SchedulingProblem p;
  p.links = plan->links;
  p.demand = plan->guaranteed_demand;
  p.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    p.flows.push_back(FlowPath{f.links, f.delay_budget_frames});
  }
  return p;
}

SchedulingProblem grid_problem(NodeId side) {
  const Topology topo = make_grid(side, side, 100.0);
  MeshConfig cfg = base_config(topo);
  QosPlanner planner(topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  const NodeId last = side * side - 1;
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, last, VoipCodec::g729()),
       FlowSpec::voip(1, last, 0, VoipCodec::g729()),
       FlowSpec::voip(2, side - 1, last - side + 1, VoipCodec::g729())},
      SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  SchedulingProblem p;
  p.links = plan->links;
  p.demand = plan->guaranteed_demand;
  p.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    p.flows.push_back(FlowPath{f.links, f.delay_budget_frames});
  }
  return p;
}

// slack = extra slots beyond the minimum. At slack 0 the feasibility
// question is hardest (feasible orders are rare); a few slots of slack
// collapse the tree. Reporting both regimes reproduces the paper's
// observation that the exact ILP is an offline tool.
void run_ilp(benchmark::State& state, const SchedulingProblem& p,
             int slack) {
  const auto probe = min_slots_search(p, 96);
  WIMESH_ASSERT(probe.has_value());
  const int s = probe->frame_slots + slack;

  IlpSchedulerOptions opt;
  opt.try_heuristics = false;  // time the branch & bound itself
  opt.time_limit_seconds = 10.0;
  opt.max_nodes = 2'000'000;
  long nodes = 0, lp_iters = 0;
  bool solved = true;
  for (auto _ : state) {
    auto r = schedule_ilp(p, s, opt);
    if (!r.has_value()) {
      solved = false;
      state.SkipWithError("DNF: branch & bound limit (the tight-S wall)");
      break;
    }
    nodes = r->ilp_nodes;
    lp_iters = r->lp_iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["links"] = p.links.count();
  state.counters["conflict_pairs"] = p.conflicts.edge_count();
  state.counters["bnb_nodes"] = static_cast<double>(nodes);
  state.counters["lp_pivots"] = static_cast<double>(lp_iters);
  state.counters["slots"] = s;
  state.counters["solved"] = solved ? 1 : 0;
}

void BM_IlpChainTightS(benchmark::State& state) {
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/0);
}

void BM_IlpChainLooseS(benchmark::State& state) {
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/4);
}

void BM_IlpGridLooseS(benchmark::State& state) {
  const auto p = grid_problem(static_cast<NodeId>(state.range(0)));
  run_ilp(state, p, /*slack=*/4);
}

void BM_RootLpRelaxation(benchmark::State& state) {
  // Cost of one simplex solve on the chain relaxation (the unit of work
  // branch & bound repeats per node).
  const auto p = chain_problem(static_cast<NodeId>(state.range(0)));
  const auto probe = min_slots_search(p, 96);
  WIMESH_ASSERT(probe.has_value());
  IlpSchedulerOptions opt;
  opt.max_nodes = 1;
  opt.try_heuristics = true;  // rounding path == root LP + reconstruction
  for (auto _ : state) {
    auto r = schedule_ilp(p, probe->frame_slots, opt);
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(BM_IlpChainTightS)->Arg(4)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_IlpChainLooseS)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IlpGridLooseS)->Arg(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RootLpRelaxation)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags
// it does not know, so --trace OUT[:cats] is stripped before Initialize.
// With no --trace the behaviour (and output) is exactly BENCHMARK_MAIN's.
// With it, every solver call runs under the profiler and the span summary
// accounts the same work the benchmark timings report: ilp.solve wall
// totals are the measured iteration time, sched.schedule_ilp self time is
// the model-build overhead around it.
int main(int argc, char** argv) {
  BenchTraceArgs targs;
  std::vector<char*> keep;
  keep.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      targs = parse_trace_value(argv[0], argv[++i]);
    } else {
      keep.push_back(argv[i]);
    }
  }
  int kept = static_cast<int>(keep.size());

  std::unique_ptr<trace::Tracer> tracer;
  if (targs.enabled) {
    tracer = std::make_unique<trace::Tracer>(
        trace::TraceConfig{targs.categories, std::size_t{1} << 18});
  }
  const trace::Scope scope(tracer.get());

  benchmark::Initialize(&kept, keep.data());
  if (benchmark::ReportUnrecognizedArguments(kept, keep.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (tracer) {
    if (!export_bench_trace(*tracer, targs.path, 0, "bench_ilp_solvetime")) {
      return 1;
    }
    std::fputs(trace::span_summary(*tracer).c_str(), stdout);
  }
  return 0;
}
