// R-F1 — VoIP capacity: admitted calls vs mesh size and scheduler.
//
// All subscriber nodes call the gateway (node 0) with G.729; admission
// keeps adding calls until the schedule breaks. Expected shape: capacity
// shrinks as paths lengthen (every extra hop consumes slots on every link
// it crosses); the delay-aware ILP admits as many calls as the
// delay-unaware ILP on these workloads (delay budgets are generous at
// 10 ms frames) and at least as many as greedy first-fit, whose padding
// wastes slots on dense conflict graphs.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

std::size_t capacity(Topology topo, SchedulerKind kind) {
  MeshConfig cfg = base_config(std::move(topo));
  cfg.scheduler = kind;
  MeshNetwork net(cfg);
  int id = 0;
  for (int round = 0; round < 10; ++round) {
    for (NodeId sub = 1; sub < cfg.topology.node_count(); ++sub) {
      net.add_voip_call(id, sub, 0, VoipCodec::g729(),
                        SimTime::milliseconds(100));
      id += 2;
    }
  }
  return net.admit_incrementally() / 2;  // flows → calls
}

}  // namespace

int main() {
  heading("R-F1",
          "VoIP capacity (admitted G.729 calls to the gateway) vs topology");
  row("%-12s %10s %12s %8s %8s", "topology", "ilp-delay", "ilp-nodelay",
      "greedy", "rrobin");
  struct Entry {
    std::string name;
    Topology topo;
  };
  std::vector<Entry> entries;
  for (NodeId n : {3, 4, 5, 6, 7}) {
    entries.push_back({"chain-" + std::to_string(n), make_chain(n, 100.0)});
  }
  entries.push_back({"grid-2x3", make_grid(2, 3, 100.0)});
  entries.push_back({"grid-3x3", make_grid(3, 3, 100.0)});

  for (const Entry& e : entries) {
    row("%-12s %10zu %12zu %8zu %8zu", e.name.c_str(),
        capacity(e.topo, SchedulerKind::kIlpDelayAware),
        capacity(e.topo, SchedulerKind::kIlpDelayUnaware),
        capacity(e.topo, SchedulerKind::kGreedy),
        capacity(e.topo, SchedulerKind::kRoundRobin));
  }
  return 0;
}
