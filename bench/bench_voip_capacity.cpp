// R-F1 — VoIP capacity: admitted calls vs mesh size and scheduler.
//
// All subscriber nodes call the gateway (node 0) with G.729; admission
// keeps adding calls until the schedule breaks. Expected shape: capacity
// shrinks as paths lengthen (every extra hop consumes slots on every link
// it crosses); the delay-aware ILP admits as many calls as the
// delay-unaware ILP on these workloads (delay budgets are generous at
// 10 ms frames) and at least as many as greedy first-fit, whose padding
// wastes slots on dense conflict graphs.
//
// The topology x scheduler grid runs on the batch executor (--jobs K);
// every cell shares one schedule cache, so repeated admission subproblems
// are solved once. Output is identical for any K.

#include <iterator>

#include "bench_util.h"
#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/sched/schedule_cache.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

constexpr SchedulerKind kKinds[] = {
    SchedulerKind::kIlpDelayAware, SchedulerKind::kIlpDelayUnaware,
    SchedulerKind::kGreedy, SchedulerKind::kRoundRobin};

std::size_t capacity(Topology topo, SchedulerKind kind, ScheduleCache* cache,
                     bool audit, std::uint64_t* violations) {
  MeshConfig cfg = base_config(std::move(topo));
  cfg.scheduler = kind;
  cfg.ilp.cache = cache;
  cfg.audit = audit;
  MeshNetwork net(cfg);
  int id = 0;
  for (int round = 0; round < 10; ++round) {
    for (NodeId sub = 1; sub < cfg.topology.node_count(); ++sub) {
      net.add_voip_call(id, sub, 0, VoipCodec::g729(),
                        SimTime::milliseconds(100));
      id += 2;
    }
  }
  const std::size_t calls = net.admit_incrementally() / 2;  // flows → calls
  if (audit && calls > 0) {
    // Simulate the admitted set under the auditor: the claimed capacity
    // must actually run conflict-free at full load.
    const SimulationResult r = net.run(MacMode::kTdmaOverlay,
                                       SimTime::seconds(2));
    *violations = r.audit.total_violations();
    if (*violations != 0) {
      std::fprintf(stderr, "%s\n", r.audit.summary().c_str());
    }
  }
  return calls;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  heading("R-F1",
          "VoIP capacity (admitted G.729 calls to the gateway) vs topology");
  row("%-12s %10s %12s %8s %8s", "topology", "ilp-delay", "ilp-nodelay",
      "greedy", "rrobin");
  struct Entry {
    std::string name;
    Topology topo;
  };
  std::vector<Entry> entries;
  for (NodeId n : {3, 4, 5, 6, 7}) {
    entries.push_back({"chain-" + std::to_string(n), make_chain(n, 100.0)});
  }
  entries.push_back({"grid-2x3", make_grid(2, 3, 100.0)});
  entries.push_back({"grid-3x3", make_grid(3, 3, 100.0)});

  ScheduleCache cache;
  constexpr std::size_t kNumKinds = std::size(kKinds);
  std::vector<std::size_t> cells(entries.size() * kNumKinds, 0);
  std::vector<std::uint64_t> violations(cells.size(), 0);
  batch::run_indexed(args.jobs, cells.size(), [&](std::size_t i) {
    cells[i] = capacity(entries[i / kNumKinds].topo, kKinds[i % kNumKinds],
                        &cache, args.audit, &violations[i]);
  });

  for (std::size_t e = 0; e < entries.size(); ++e) {
    row("%-12s %10zu %12zu %8zu %8zu", entries[e].name.c_str(),
        cells[e * kNumKinds + 0], cells[e * kNumKinds + 1],
        cells[e * kNumKinds + 2], cells[e * kNumKinds + 3]);
  }
  std::printf("%s\n", cache.report().c_str());

  if (!args.json_path.empty()) {
    batch::JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("voip_capacity");
    w.key("rows");
    w.begin_array();
    static constexpr const char* kKindNames[] = {"ilp_delay", "ilp_nodelay",
                                                 "greedy", "round_robin"};
    for (std::size_t e = 0; e < entries.size(); ++e) {
      w.begin_object();
      w.key("topology");
      w.value(entries[e].name);
      for (std::size_t k = 0; k < kNumKinds; ++k) {
        w.key(kKindNames[k]);
        w.value(static_cast<std::uint64_t>(cells[e * kNumKinds + k]));
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (!write_text_file(args.json_path, w.str())) {
      std::fprintf(stderr, "cannot write '%s'\n", args.json_path.c_str());
      return 1;
    }
  }
  std::uint64_t total_violations = 0;
  for (std::uint64_t v : violations) total_violations += v;
  return total_violations == 0 ? 0 : 1;
}
