// R-P1 — Channel realism: the physical radio stack end to end, and the
// guard-time/sync story re-validated under drift plus fading.
//
// Two panels:
//  * "families" runs the three shipped physical-layer scenario files
//    (office_3floor / campus_outdoor / mixed_rate) end to end under the
//    runtime invariant auditor and reports the QoS surface of each —
//    walls+floors, shadowing+Jakes fading, and rate adaptation
//    respectively. Any audit violation fails the bench.
//  * "guard sweep" re-runs the paper's guard-time trade-off with the
//    pieces the protocol model could not express: heavy crystal drift
//    (40 ppm) with fading on vs the idealized channel, sweeping the guard
//    time below and above the recommended bound. Expected shape: the
//    idealized channel only cares about slot overruns (busy-at-slot-start
//    climbs as the guard shrinks), while under fading the same guard buys
//    strictly less — corrupted receptions persist at every guard length,
//    so guard time alone cannot restore the loss floor.
//
// All points are independent simulations and run on the batch executor
// (--jobs K, identical output for any K — fading is a pure function of
// (seed, pair, t)); --smoke shrinks durations and the sweep for CI, and
// --json writes BENCH_phy.json for the artifact trajectory.

#include <fstream>
#include <sstream>

#include "bench_util.h"
#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/core/scenario.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open scenario '%s'\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct FamilyResult {
  std::string file;
  SimulationResult sim;
  bool planned = false;
  std::string error;
};

// Panel 1: the shipped scenario families, audited.
std::uint64_t run_families(int jobs, bool smoke, batch::JsonWriter* json) {
  const char* files[] = {"office_3floor.wimesh", "campus_outdoor.wimesh",
                         "mixed_rate.wimesh"};
  const std::string dir = WIMESH_SCENARIO_DIR;
  std::vector<FamilyResult> results(3);
  batch::run_indexed(jobs, 3, [&](std::size_t i) {
    FamilyResult& out = results[i];
    out.file = files[i];
    auto sc = parse_scenario(read_file_or_die(dir + "/" + files[i]));
    if (!sc.has_value()) {
      out.error = sc.error();
      return;
    }
    sc->config.audit = true;
    MeshNetwork net(sc->config);
    for (const auto& f : sc->flows) net.add_flow(f);
    auto plan = net.compute_plan();
    if (!plan.has_value()) {
      out.error = plan.error();
      return;
    }
    out.planned = true;
    const SimTime duration =
        smoke ? SimTime::milliseconds(500) : sc->duration;
    out.sim = net.run(sc->mac, duration);
  });

  heading("R-P1a", "shipped physical-layer scenario families (audited)");
  row("%-24s | %8s %10s %10s %10s %10s", "scenario", "frames", "corrupted",
      "voip_loss", "p99_ms", "be_mbps");
  std::uint64_t violations = 0;
  if (json != nullptr) {
    json->key("families");
    json->begin_array();
  }
  for (const FamilyResult& r : results) {
    if (!r.planned) {
      std::fprintf(stderr, "%s: %s\n", r.file.c_str(), r.error.c_str());
      ++violations;
      continue;
    }
    violations += audit_violations(r.file, r.sim);
    row("%-24s | %8llu %10llu %10.4f %10.2f %10.3f", r.file.c_str(),
        static_cast<unsigned long long>(r.sim.frames_transmitted),
        static_cast<unsigned long long>(r.sim.receptions_corrupted),
        worst_voip_loss(r.sim), worst_voip_p99_ms(r.sim),
        best_effort_goodput_mbps(r.sim));
    if (json != nullptr) {
      json->begin_object();
      json->key("scenario");
      json->value(r.file);
      json->key("frames_transmitted");
      json->value(r.sim.frames_transmitted);
      json->key("receptions_corrupted");
      json->value(r.sim.receptions_corrupted);
      json->key("worst_voip_loss");
      json->value(worst_voip_loss(r.sim));
      json->key("worst_voip_p99_ms");
      json->value(worst_voip_p99_ms(r.sim));
      json->key("best_effort_mbps");
      json->value(best_effort_goodput_mbps(r.sim));
      json->key("audit_violations");
      json->value(r.sim.audit.total_violations());
      json->end_object();
    }
  }
  if (json != nullptr) json->end_array();
  return violations;
}

struct GuardPoint {
  double guard_us = 0.0;
  bool fading = false;
  SimulationResult sim;
};

// Campus-style 3x3 grid at 150 m with heavy crystal drift; the physical
// variant stacks 4 dB shadowing + pedestrian Jakes fading on top.
MeshConfig guard_config(double guard_us, bool fading) {
  MeshConfig cfg = base_config(make_grid(3, 3, 150.0));
  cfg.comm_range = 160.0;
  cfg.interference_range = 320.0;
  cfg.phy = PhyMode::ofdm_802_11a(24);
  cfg.sync.drift_ppm_stddev = 40.0;
  cfg.auto_guard = false;
  cfg.emulation.guard_time = SimTime::nanoseconds(
      static_cast<std::int64_t>(guard_us * 1000.0));
  cfg.audit = true;
  cfg.seed = 1;
  if (fading) {
    cfg.radio.enabled = true;
    cfg.radio.shadowing_sigma_db = 4.0;
    cfg.radio.fading.kind = radio::FadingConfig::Kind::kJakes;
    cfg.radio.fading.doppler_hz = 8.0;
    cfg.radio.seed = 3;
  }
  return cfg;
}

// Panel 2 (R-P1): outage vs guard slots, idealized channel vs drift+fading.
std::uint64_t run_guard_sweep(int jobs, bool smoke, batch::JsonWriter* json) {
  const std::vector<double> guards =
      smoke ? std::vector<double>{20.0, 54.0}
            : std::vector<double>{5.0, 20.0, 54.0, 100.0};
  std::vector<GuardPoint> points;
  for (const double g : guards) {
    points.push_back({g, false, {}});
    points.push_back({g, true, {}});
  }
  const SimTime duration =
      smoke ? SimTime::milliseconds(500) : SimTime::seconds(2);
  batch::run_indexed(jobs, points.size(), [&](std::size_t i) {
    MeshConfig cfg = guard_config(points[i].guard_us, points[i].fading);
    MeshNetwork net(cfg);
    net.add_voip_call(0, 8, 0, VoipCodec::g729());
    net.add_voip_call(2, 6, 2, VoipCodec::g729());
    net.add_flow(FlowSpec::best_effort(50, 4, 0, 1200, 500000.0));
    if (!net.compute_plan().has_value()) return;
    points[i].sim = net.run(MacMode::kTdmaOverlay, duration);
  });

  heading("R-P1b",
          "guard time under 40 ppm drift: idealized vs shadowing+fading");
  row("%-8s %-10s | %10s %10s %10s %10s", "guard_us", "channel", "busy_slot",
      "corrupted", "voip_loss", "p99_ms");
  std::uint64_t violations = 0;
  if (json != nullptr) {
    json->key("guard_sweep");
    json->begin_array();
  }
  for (const GuardPoint& p : points) {
    const char* channel = p.fading ? "fading" : "ideal";
    violations += audit_violations(
        std::string("guard ") + std::to_string(p.guard_us) + " " + channel,
        p.sim);
    row("%-8.0f %-10s | %10llu %10llu %10.4f %10.2f", p.guard_us, channel,
        static_cast<unsigned long long>(p.sim.overlay_busy_at_slot_start),
        static_cast<unsigned long long>(p.sim.receptions_corrupted),
        worst_voip_loss(p.sim), worst_voip_p99_ms(p.sim));
    if (json != nullptr) {
      json->begin_object();
      json->key("guard_us");
      json->value(p.guard_us);
      json->key("channel");
      json->value(channel);
      json->key("busy_at_slot_start");
      json->value(p.sim.overlay_busy_at_slot_start);
      json->key("receptions_corrupted");
      json->value(p.sim.receptions_corrupted);
      json->key("worst_voip_loss");
      json->value(worst_voip_loss(p.sim));
      json->key("worst_voip_p99_ms");
      json->value(worst_voip_p99_ms(p.sim));
      json->end_object();
    }
  }
  if (json != nullptr) json->end_array();
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) jobs = 1;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--jobs K] [--json OUT] [--smoke]\n",
                   argv[0]);
      return 1;
    }
  }

  batch::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("channel_realism");
  w.key("smoke");
  w.value(smoke);

  std::uint64_t violations = 0;
  violations += run_families(jobs, smoke, &w);
  violations += run_guard_sweep(jobs, smoke, &w);
  w.end_object();

  if (!json_path.empty() && !write_text_file(json_path, w.str())) {
    std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
    return 1;
  }
  if (violations != 0) {
    std::fprintf(stderr, "channel realism: %llu violation(s)\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}
