// R-R1 — fault recovery: outage and time-to-restore under mid-run failures.
//
// A 4x4 grid carries three guaranteed VoIP calls plus best-effort bulk
// under the TDMA overlay. Two seconds in, an interior relay (node 5)
// crashes; a second later the sync master's beacon process dies. The mesh
// must detect each failure, fail the sync tree over to a survivor, re-plan
// the schedule around the dead node and hot-swap it into the overlay at a
// frame boundary — all while the invariant auditor watches (violations
// outside the declared outage windows fail the bench).
//
// Expected shape: every guaranteed flow is restored within a few hundred
// ms (detection delay + one re-plan + the swap frame boundary + requeue);
// no flow needs shedding at this load; the repair activation lands exactly
// on a frame boundary. Per-seed rows run on the batch executor (--jobs K,
// byte-identical output for any K); --smoke shortens the run for CI.

#include <cinttypes>
#include <cstring>

#include "bench_util.h"
#include "wimesh/batch/runner.h"
#include "wimesh/faults/plan.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

constexpr char kScenario[] = R"(# R-R1 fault-recovery scenario
topology = grid 4 4 100
comm_range = 110
interference_range = 220
phy = ofdm54
frame_ms = 10
control_slots = 4
data_slots = 96
scheduler = ilp-delay
routing = hop
mac = tdma
duration_s = 8
seed = 1

voip 0 0 15 g729 100
voip 2 3 12 g729 100
voip 4 1 14 g711 100
bulk 50 2 13 1200 1500000
)";

// Node 5 is an interior relay (row 1, col 1) — no guaranteed flow ends
// there, so recovery must reroute around it rather than shed.
constexpr char kFaults[] = "node-crash@2 node=5; master-fail@3";

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  BenchTraceArgs targs;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      args.jobs = std::atoi(argv[++i]);
      if (args.jobs < 1) args.jobs = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      targs = parse_trace_value(argv[0], argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--jobs K] [--json OUT] "
                   "[--trace OUT[:cats]]\n",
                   argv[0]);
      return 1;
    }
  }

  auto scenario = parse_scenario(kScenario);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "scenario error: %s\n", scenario.error().c_str());
    return 1;
  }
  auto plan = faults::parse_fault_plan(kFaults);
  if (!plan.has_value()) {
    std::fprintf(stderr, "faults error: %s\n", plan.error().c_str());
    return 1;
  }
  scenario->config.faults = std::move(*plan);
  scenario->config.audit = true;  // always audited — that is the point
  if (smoke) scenario->duration = SimTime::seconds(5);
  const std::uint64_t seed_hi = smoke ? 2 : 4;

  ScheduleCache cache;
  batch::BatchOptions options;
  options.jobs = args.jobs;
  options.schedule_cache = &cache;
  if (targs.enabled) {
    options.trace =
        trace::TraceConfig{targs.categories, std::size_t{1} << 18};
  }
  const auto specs = batch::seed_sweep(*scenario, 1, seed_hi);
  const auto outcomes = batch::run_batch(specs, options);

  heading("R-R1", "recovery from node crash @2s + sync-master failure @3s "
                  "(4x4 grid, TDMA overlay, audited)");
  row("faults: %s  (detect %s)", kFaults,
      scenario->config.faults.detection_delay.to_string().c_str());
  row("%-8s %7s %9s %11s %10s %5s %11s %5s", "run", "repairs", "failovers",
      "restore_ms", "worst_ms", "shed", "preserved", "viol");

  int failures = 0;
  std::uint64_t violations = 0;
  const SimTime frame = scenario->config.emulation.frame.frame_duration;
  for (const auto& o : outcomes) {
    if (!o.ok) {
      row("%-8s FAIL %s", o.label.c_str(), o.error.c_str());
      ++failures;
      continue;
    }
    const faults::FaultReport& f = o.result.faults;
    double worst_ms = 0.0;
    for (const auto& rec : f.outages) {
      if (!rec.shed) worst_ms = std::max(worst_ms, rec.outage.to_ms());
    }
    violations += audit_violations(o.label, o.result);
    row("%-8s %7d %9d %11.1f %10.1f %5d %11d %5" PRIu64, o.label.c_str(),
        f.repairs, f.failovers, f.time_to_restore.to_ms(), worst_ms,
        f.flows_shed, f.flows_preserved, o.result.audit.total_violations());
    // Both structural faults must have produced a repaired schedule, every
    // guaranteed flow must come back, and the swap must land exactly on a
    // frame boundary — these are the R-R1 claims, so failing them fails
    // the bench.
    if (f.repairs < 2 || f.failovers < 1) {
      std::fprintf(stderr, "%s: expected >=2 repairs and >=1 failover\n",
                   o.label.c_str());
      ++failures;
    }
    for (const auto& rec : f.outages) {
      if (!rec.shed && !rec.restored()) {
        std::fprintf(stderr, "%s: flow %d never restored\n", o.label.c_str(),
                     rec.flow_id);
        ++failures;
      }
    }
    if ((f.last_repair_at % frame).ns() != 0) {
      std::fprintf(stderr, "%s: repair activated off the frame boundary\n",
                   o.label.c_str());
      ++failures;
    }
  }
  std::printf("%s\n", cache.report().c_str());

  // The profiling summary accounts the same recovery work the table
  // reports: faults.recovery virt_ms is the fault->activation latency
  // (restore path), its wall self time is the re-plan cost.
  if (targs.enabled) {
    std::vector<const trace::Tracer*> tracers;
    for (const auto& o : outcomes) {
      if (!o.trace) continue;
      tracers.push_back(o.trace.get());
      if (!export_bench_trace(*o.trace,
                              trace_path_with_label(targs.path, o.label),
                              static_cast<std::int64_t>(o.run_index),
                              o.label)) {
        return 1;
      }
    }
    std::fputs(trace::span_summary(tracers).c_str(), stdout);
  }

  // Per-flow outage detail for the first seed (the quoted exemplar row).
  if (!outcomes.empty() && outcomes.front().ok) {
    row("per-flow outages (%s):", outcomes.front().label.c_str());
    for (const auto& rec : outcomes.front().result.faults.outages) {
      row("  flow %-3d interrupted @%8.1f ms  %s %.1f ms", rec.flow_id,
          rec.interrupted_at.to_ms(),
          rec.shed ? "SHED after" : (rec.restored() ? "restored in"
                                                    : "UNRESTORED for"),
          rec.outage.to_ms());
    }
  }

  if (!args.json_path.empty() &&
      !write_text_file(args.json_path, batch::results_json(outcomes))) {
    std::fprintf(stderr, "cannot write '%s'\n", args.json_path.c_str());
    return 1;
  }
  return failures == 0 && violations == 0 ? 0 : 1;
}
