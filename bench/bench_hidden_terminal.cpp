// R-F8 — Hidden terminals: where CSMA fails structurally.
//
// A chain with interference range == comm range puts every second hop out
// of carrier-sense range: relays suffer collisions carrier sensing cannot
// prevent. Swept over offered VoIP load:
//   * plain DCF collides and retries (loss + delay climb),
//   * DCF with RTS/CTS recovers most of it (short RTS collisions instead
//     of long data collisions; NAV silences the hidden node) at a
//     handshake cost,
//   * the TDMA overlay never collides: the conflict graph covers hidden
//     pairs by construction.
// Expected shape: loss(DCF) > loss(DCF+RTS) > loss(TDMA) = 0 under load.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

MeshNetwork build(double be_mbps, bool rts) {
  MeshConfig cfg = base_config(make_chain(5, 100.0));
  // Hidden-terminal regime: carrier sense reaches one hop only, but the
  // scheduler is told the truth about interference (one hop too — the
  // protocol model with equal ranges).
  cfg.comm_range = 110.0;
  cfg.interference_range = 110.0;
  cfg.dcf_rts_cts = rts;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 4, VoipCodec::g711(), SimTime::milliseconds(150));
  // Long data frames crossing the chain in both directions: the collision
  // fodder hidden terminals feed on.
  net.add_flow(FlowSpec::best_effort(10, 0, 4, 1400, be_mbps * 1e6 / 2));
  net.add_flow(FlowSpec::best_effort(11, 4, 0, 1400, be_mbps * 1e6 / 2));
  return net;
}

double be_loss(const SimulationResult& r) {
  double worst = 0.0;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kBestEffort) continue;
    worst = std::max(worst, f.stats.loss_rate());
  }
  return worst;
}

}  // namespace

int main() {
  heading("R-F8",
          "hidden terminals (chain-5, CS reach = 1 hop, bulk load sweep)");
  row("%-8s | %9s %9s %9s | %9s %9s %9s | %9s %9s", "BE Mbps", "dcf_vloss",
      "dcf_bloss", "dcf_p99", "rts_vloss", "rts_bloss", "rts_p99",
      "tdma_vloss", "tdma_p99");
  const SimTime duration = SimTime::seconds(8);
  for (double be : {1.0, 2.0, 4.0, 6.0}) {
    MeshNetwork dcf_net = build(be, false);
    WIMESH_ASSERT(dcf_net.compute_plan().has_value());
    const SimulationResult dcf = dcf_net.run(MacMode::kDcf, duration);

    MeshNetwork rts_net = build(be, true);
    WIMESH_ASSERT(rts_net.compute_plan().has_value());
    const SimulationResult rts = rts_net.run(MacMode::kDcf, duration);

    MeshNetwork tdma_net = build(be, false);
    WIMESH_ASSERT(tdma_net.compute_plan().has_value());
    const SimulationResult tdma =
        tdma_net.run(MacMode::kTdmaOverlay, duration);

    row("%-8.1f | %9.4f %9.4f %9.2f | %9.4f %9.4f %9.2f | %9.4f %9.2f", be,
        worst_voip_loss(dcf), be_loss(dcf), worst_voip_p99_ms(dcf),
        worst_voip_loss(rts), be_loss(rts), worst_voip_p99_ms(rts),
        worst_voip_loss(tdma), worst_voip_p99_ms(tdma));
  }
  return 0;
}
