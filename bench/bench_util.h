#pragma once

// Shared helpers for the experiment benches (bench_* binaries): canonical
// mesh configurations and small table-printing utilities. Each bench binary
// regenerates one reconstructed table/figure from DESIGN.md §3 and prints
// it as an aligned text table plus CSV-ish rows that EXPERIMENTS.md quotes.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "wimesh/core/mesh_network.h"
#include "wimesh/trace/export.h"
#include "wimesh/trace/trace.h"

namespace wimesh::bench {

// Common CLI surface of the batch-runner benches: --jobs K runs the
// bench's independent simulations on the work-stealing pool (output is
// identical for any K), --json OUT writes the machine-readable results
// next to the text table, --audit runs every simulation under the runtime
// invariant auditor and fails the bench on any violation.
struct BenchArgs {
  int jobs = 1;
  std::string json_path;
  bool audit = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      out.jobs = std::atoi(argv[++i]);
      if (out.jobs < 1) out.jobs = 1;
    } else if (arg == "--json" && i + 1 < argc) {
      out.json_path = argv[++i];
    } else if (arg == "--audit") {
      out.audit = true;
    } else {
      std::fprintf(stderr, "usage: %s [--jobs K] [--json OUT] [--audit]\n",
                   argv[0]);
      std::exit(1);
    }
  }
  return out;
}

// Checks one audited result and prints any violation summary; returns the
// number of violations (0 when the audit is off or clean). Benches
// accumulate this and exit nonzero — making every experiment double as an
// invariant regression test.
inline std::uint64_t audit_violations(const std::string& where,
                                      const SimulationResult& r) {
  if (!r.audit.enabled) return 0;
  const std::uint64_t v = r.audit.total_violations();
  if (v != 0) {
    std::fprintf(stderr, "%s: %s\n", where.c_str(),
                 r.audit.summary().c_str());
  }
  return v;
}

inline bool write_text_file(const std::string& path,
                            const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

// --trace support for benches that opt in: the value is "OUT[:cats]" like
// wimesh_run's flag. The suffix after the last ':' is a category list when
// it looks like one (no '/' or '.'); a malformed list exits with the
// parser's message.
struct BenchTraceArgs {
  bool enabled = false;
  std::string path;
  std::uint32_t categories = trace::kAll;
};

inline BenchTraceArgs parse_trace_value(const char* argv0,
                                        const std::string& value) {
  BenchTraceArgs out;
  out.enabled = true;
  out.path = value;
  const auto colon = value.rfind(':');
  if (colon != std::string::npos) {
    const std::string suffix = value.substr(colon + 1);
    if (!suffix.empty() && suffix.find('/') == std::string::npos &&
        suffix.find('.') == std::string::npos) {
      std::string error;
      const std::uint32_t mask = trace::parse_categories(suffix, &error);
      if (!error.empty()) {
        std::fprintf(stderr, "%s: --trace: %s\n", argv0, error.c_str());
        std::exit(1);
      }
      out.path = value.substr(0, colon);
      if (mask != 0) out.categories = mask;
    }
  }
  if (out.path.empty()) {
    std::fprintf(stderr, "%s: --trace needs an output path\n", argv0);
    std::exit(1);
  }
  return out;
}

// "base.json" + label -> "base.<label>.json" (per-run trace files).
inline std::string trace_path_with_label(const std::string& base,
                                         const std::string& label) {
  const auto dot = base.rfind('.');
  const auto slash = base.find_last_of('/');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    return base.substr(0, dot) + "." + label + base.substr(dot);
  }
  return base + "." + label;
}

// Writes one tracer's Perfetto JSON and reports ring overflow, if any.
inline bool export_bench_trace(const trace::Tracer& tracer,
                               const std::string& path,
                               std::int64_t pid,
                               const std::string& label) {
  trace::ExportOptions opts;
  opts.pid = pid;
  opts.process_label = label;
  if (!write_text_file(path, trace::to_chrome_json(tracer, opts))) {
    std::fprintf(stderr, "cannot write trace '%s'\n", path.c_str());
    return false;
  }
  if (tracer.dropped() > 0) {
    std::fprintf(stderr,
                 "trace %s: ring overflow dropped %llu oldest of %llu "
                 "records\n",
                 label.c_str(),
                 static_cast<unsigned long long>(tracer.dropped()),
                 static_cast<unsigned long long>(tracer.recorded()));
  }
  return true;
}

// The canonical emulation parameters used across experiments unless a
// bench sweeps them: 10 ms frame, 4 control + 96 data minislots (100 us
// minislots), 802.11a @ 54 Mbps, 2x interference range.
inline MeshConfig base_config(Topology topology) {
  MeshConfig cfg;
  cfg.topology = std::move(topology);
  cfg.comm_range = 110.0;
  cfg.interference_range = 220.0;
  cfg.phy = PhyMode::ofdm_802_11a(54);
  cfg.emulation.frame.frame_duration = SimTime::milliseconds(10);
  cfg.emulation.frame.control_slots = 4;
  cfg.emulation.frame.data_slots = 96;
  return cfg;
}

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

// Worst VoIP p99 delay (ms) across guaranteed flows; 0 when none measured.
inline double worst_voip_p99_ms(const SimulationResult& r) {
  double worst = 0.0;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kGuaranteed) continue;
    if (f.stats.delays_ms().empty()) continue;
    worst = std::max(worst, f.stats.delays_ms().quantile(0.99));
  }
  return worst;
}

inline double worst_voip_loss(const SimulationResult& r) {
  double worst = 0.0;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kGuaranteed) continue;
    worst = std::max(worst, f.stats.loss_rate());
  }
  return worst;
}

inline double mean_voip_jitter_ms(const SimulationResult& r) {
  double sum = 0.0;
  int n = 0;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kGuaranteed) continue;
    if (f.stats.delivered_packets() == 0) continue;
    sum += f.stats.mean_jitter_ms();
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

inline double best_effort_goodput_mbps(const SimulationResult& r) {
  double total = 0.0;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kBestEffort) continue;
    total += f.stats.throughput_bps(r.measured_interval);
  }
  return total / 1e6;
}

}  // namespace wimesh::bench
