// R-F4 — VoIP delay distribution (CDF) and jitter under both MACs.
//
// Fixed scenario: 5-chain, one G.729 call end-to-end plus 6 Mbit/s of
// best-effort crossing traffic. Prints the delay CDF of the VoIP flows
// under the TDMA overlay and under DCF at matching quantiles. Expected
// shape: the overlay's CDF is a steep near-step bounded by the analytic
// worst case (delay is set by slot positions, not queueing); DCF's CDF has
// a long right tail once the BE load contends.
//
// The two MAC runs are independent and execute on the batch executor
// (--jobs K); output is identical for any K.

#include "bench_util.h"
#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/sched/schedule_cache.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

constexpr double kQuantiles[] = {0.10, 0.25, 0.50, 0.75, 0.90,
                                 0.95, 0.99, 0.999, 1.0};

MeshNetwork build(ScheduleCache* cache, bool audit) {
  MeshConfig cfg = base_config(make_chain(5, 100.0));
  cfg.ilp.cache = cache;
  cfg.audit = audit;
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 4, VoipCodec::g729(), SimTime::milliseconds(120));
  net.add_flow(FlowSpec::best_effort(100, 4, 0, 1200, 3e6));
  net.add_flow(FlowSpec::best_effort(101, 0, 4, 1200, 3e6));
  return net;
}

// Pools the delay samples of the two VoIP flows.
SampleSet voip_delays(const SimulationResult& r) {
  SampleSet all;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kGuaranteed) continue;
    for (double d : f.stats.delays_ms().samples()) all.add(d);
  }
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  heading("R-F4", "VoIP delay CDF: TDMA overlay vs 802.11 DCF (chain-5 + BE)");

  constexpr MacMode kModes[] = {MacMode::kTdmaOverlay, MacMode::kDcf};
  ScheduleCache cache;
  SimulationResult runs[2];
  double analytic = 0.0;
  batch::run_indexed(args.jobs, 2, [&](std::size_t i) {
    MeshNetwork net = build(&cache, args.audit);
    WIMESH_ASSERT(net.compute_plan().has_value());
    runs[i] = net.run(kModes[i], SimTime::seconds(20));
    if (kModes[i] == MacMode::kTdmaOverlay) {
      for (const FlowPlan& f : net.plan().guaranteed) {
        analytic = std::max(analytic, f.worst_case_delay.to_ms());
      }
    }
  });
  const SimulationResult& tdma = runs[0];
  const SimulationResult& dcf = runs[1];

  const SampleSet td = voip_delays(tdma);
  const SampleSet dd = voip_delays(dcf);
  WIMESH_ASSERT(!td.empty() && !dd.empty());

  row("%-10s %12s %12s", "quantile", "tdma_ms", "dcf_ms");
  for (double q : kQuantiles) {
    row("%-10.3f %12.3f %12.3f", q, td.quantile(q), dd.quantile(q));
  }
  row("%-10s %12.3f %12.3f", "mean", td.mean(), dd.mean());
  row("%-10s %12.3f %12.3f", "jitter", mean_voip_jitter_ms(tdma),
      mean_voip_jitter_ms(dcf));
  row("%-10s %12.4f %12.4f", "loss", worst_voip_loss(tdma),
      worst_voip_loss(dcf));
  row("%-10s %12.3f %12s", "analytic", analytic, "-");
  std::printf("%s\n", cache.report().c_str());

  if (!args.json_path.empty()) {
    batch::JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("delay_cdf");
    w.key("quantiles");
    w.begin_array();
    for (double q : kQuantiles) {
      w.begin_object();
      w.key("q");
      w.value(q);
      w.key("tdma_ms");
      w.value(td.quantile(q));
      w.key("dcf_ms");
      w.value(dd.quantile(q));
      w.end_object();
    }
    w.end_array();
    w.key("tdma_mean_ms");
    w.value(td.mean());
    w.key("dcf_mean_ms");
    w.value(dd.mean());
    w.key("tdma_jitter_ms");
    w.value(mean_voip_jitter_ms(tdma));
    w.key("dcf_jitter_ms");
    w.value(mean_voip_jitter_ms(dcf));
    w.key("tdma_loss");
    w.value(worst_voip_loss(tdma));
    w.key("dcf_loss");
    w.value(worst_voip_loss(dcf));
    w.key("analytic_worst_ms");
    w.value(analytic);
    w.end_object();
    if (!write_text_file(args.json_path, w.str())) {
      std::fprintf(stderr, "cannot write '%s'\n", args.json_path.c_str());
      return 1;
    }
  }
  std::uint64_t violations = 0;
  violations += audit_violations("tdma", tdma);
  violations += audit_violations("dcf", dcf);
  return violations == 0 ? 0 : 1;
}
