// R-F4 — VoIP delay distribution (CDF) and jitter under both MACs.
//
// Fixed scenario: 5-chain, one G.729 call end-to-end plus 6 Mbit/s of
// best-effort crossing traffic. Prints the delay CDF of the VoIP flows
// under the TDMA overlay and under DCF at matching quantiles. Expected
// shape: the overlay's CDF is a steep near-step bounded by the analytic
// worst case (delay is set by slot positions, not queueing); DCF's CDF has
// a long right tail once the BE load contends.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

MeshNetwork build() {
  MeshConfig cfg = base_config(make_chain(5, 100.0));
  MeshNetwork net(cfg);
  net.add_voip_call(0, 0, 4, VoipCodec::g729(), SimTime::milliseconds(120));
  net.add_flow(FlowSpec::best_effort(100, 4, 0, 1200, 3e6));
  net.add_flow(FlowSpec::best_effort(101, 0, 4, 1200, 3e6));
  return net;
}

// Pools the delay samples of the two VoIP flows.
SampleSet voip_delays(const SimulationResult& r) {
  SampleSet all;
  for (const FlowResult& f : r.flows) {
    if (f.spec.service != ServiceClass::kGuaranteed) continue;
    for (double d : f.stats.delays_ms().samples()) all.add(d);
  }
  return all;
}

}  // namespace

int main() {
  heading("R-F4", "VoIP delay CDF: TDMA overlay vs 802.11 DCF (chain-5 + BE)");

  MeshNetwork tdma_net = build();
  WIMESH_ASSERT(tdma_net.compute_plan().has_value());
  const SimulationResult tdma =
      tdma_net.run(MacMode::kTdmaOverlay, SimTime::seconds(20));
  MeshNetwork dcf_net = build();
  WIMESH_ASSERT(dcf_net.compute_plan().has_value());
  const SimulationResult dcf = dcf_net.run(MacMode::kDcf, SimTime::seconds(20));

  const SampleSet td = voip_delays(tdma);
  const SampleSet dd = voip_delays(dcf);
  WIMESH_ASSERT(!td.empty() && !dd.empty());

  row("%-10s %12s %12s", "quantile", "tdma_ms", "dcf_ms");
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0}) {
    row("%-10.3f %12.3f %12.3f", q, td.quantile(q), dd.quantile(q));
  }
  row("%-10s %12.3f %12.3f", "mean", td.mean(), dd.mean());
  row("%-10s %12.3f %12.3f", "jitter", mean_voip_jitter_ms(tdma),
      mean_voip_jitter_ms(dcf));
  row("%-10s %12.4f %12.4f", "loss", worst_voip_loss(tdma),
      worst_voip_loss(dcf));
  double analytic = 0.0;
  for (const FlowPlan& f : tdma_net.plan().guaranteed) {
    analytic = std::max(analytic, f.worst_case_delay.to_ms());
  }
  row("%-10s %12.3f %12s", "analytic", analytic, "-");
  return 0;
}
