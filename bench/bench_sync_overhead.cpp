// R-F5 — What emulating TDMA on WiFi hardware costs.
//
// Three tables:
//  (a) single-link emulation efficiency vs guard time and payload size
//      (pure arithmetic over the frame/PHY model): efficiency falls with
//      guard and rises with payload as per-packet MAC overhead amortizes;
//  (b) the guard a sync configuration requires vs resync interval, drift
//      quality and tree depth (grows with all three);
//  (c) packet-level validation that an *undersized* guard actually breaks
//      the conflict-free property (corrupted receptions appear) while the
//      recommended guard keeps the medium collision-free.

#include "bench_util.h"
#include "wimesh/tdma/overlay.h"

using namespace wimesh;
using namespace wimesh::bench;

int main() {
  const PhyMode phy = PhyMode::ofdm_802_11a(54);

  heading("R-F5a", "emulation efficiency vs guard time (frame 10ms/96 slots)");
  row("%-10s %10s %10s %10s", "guard_us", "60B", "200B", "1500B");
  for (int guard_us : {0, 25, 50, 100, 200, 400, 800}) {
    EmulationParams p;
    p.frame.frame_duration = SimTime::milliseconds(10);
    p.frame.control_slots = 4;
    p.frame.data_slots = 96;
    p.guard_time = SimTime::microseconds(guard_us);
    row("%-10d %10.3f %10.3f %10.3f", guard_us,
        emulation_efficiency(p, phy, 60), emulation_efficiency(p, phy, 200),
        emulation_efficiency(p, phy, 1500));
  }

  heading("R-F5b", "required guard time vs sync quality and mesh depth");
  row("%-12s %-10s %8s %8s %8s", "resync_ms", "drift_ppm", "depth2",
      "depth4", "depth8");
  for (int resync_ms : {100, 250, 500, 1000}) {
    for (double drift : {5.0, 10.0, 20.0}) {
      SyncConfig cfg;
      cfg.resync_interval = SimTime::milliseconds(resync_ms);
      cfg.drift_ppm_stddev = drift;
      row("%-12d %-10.0f %8.1f %8.1f %8.1f", resync_ms, drift,
          cfg.recommended_guard(2).to_us(), cfg.recommended_guard(4).to_us(),
          cfg.recommended_guard(8).to_us());
    }
  }

  heading("R-F5c", "undersized guard breaks conflict-freeness (chain-5, 8s)");
  row("%-22s %12s %12s %12s", "guard", "corrupted", "voip_loss", "voip_p99");
  // Deliberately poor sync (coarse beacons, cheap crystals) so the clock
  // error exceeds the natural ceil-rounding slack inside the blocks: this
  // is the regime where the guard earns its keep.
  SyncConfig sync;
  sync.resync_interval = SimTime::milliseconds(1000);
  sync.drift_ppm_stddev = 50.0;
  sync.per_hop_error_stddev = SimTime::microseconds(25);
  const SimTime recommended = sync.recommended_guard(4);
  struct Case {
    const char* label;
    SimTime guard;
  };
  for (const Case& c :
       {Case{"zero", SimTime::zero()},
        Case{"quarter", recommended / 4},
        Case{"recommended", recommended},
        Case{"double", recommended * 2}}) {
    MeshConfig cfg = base_config(make_chain(5, 100.0));
    cfg.sync = sync;
    cfg.auto_guard = false;
    cfg.emulation.guard_time = c.guard;
    MeshNetwork net(cfg);
    net.add_voip_call(0, 0, 4, VoipCodec::g711(), SimTime::milliseconds(150));
    net.add_voip_call(2, 4, 0, VoipCodec::g729(), SimTime::milliseconds(150));
    if (!net.compute_plan().has_value()) {
      row("%-22s %12s %12s %12s", c.label, "plan-fail", "-", "-");
      continue;
    }
    const SimulationResult r =
        net.run(MacMode::kTdmaOverlay, SimTime::seconds(8));
    char label[64];
    std::snprintf(label, sizeof label, "%s (%.0fus)", c.label,
                  c.guard.to_us());
    row("%-22s %12llu %12.4f %12.2f", label,
        static_cast<unsigned long long>(r.receptions_corrupted),
        worst_voip_loss(r), worst_voip_p99_ms(r));
  }
  return 0;
}
