// R-F7 — Multi-service sharing: best-effort throughput vs VoIP load.
//
// A 3x3 grid offers a fixed 10 Mbit/s of best-effort transfer while the
// number of admitted G.729 calls to the gateway grows. Expected shape:
// best-effort goodput decreases roughly linearly as voice reserves more
// minislots, while every admitted call's QoS stays intact (loss ~0, p99
// under its bound) at every point — the "guaranteed + best effort"
// coexistence the multi-service TDMA mesh is for.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  std::uint64_t violations = 0;
  heading("R-F7",
          "best-effort goodput vs number of guaranteed VoIP calls (grid-3x3)");
  row("%-7s %10s %12s %11s %11s %11s", "calls", "admitted", "voip_slots",
      "be_mbps", "voip_p99", "voip_loss");
  for (int calls : {0, 2, 4, 8, 12, 16}) {
    MeshConfig cfg = base_config(make_grid(3, 3, 100.0));
    cfg.emulation.frame.frame_duration = SimTime::milliseconds(20);
    cfg.emulation.frame.data_slots = 196;
    cfg.audit = args.audit;
    MeshNetwork net(cfg);
    int id = 0;
    for (int c = 0; c < calls; ++c) {
      const NodeId subscriber = 1 + static_cast<NodeId>(c) % 8;
      net.add_voip_call(id, subscriber, 0, VoipCodec::g729(),
                        SimTime::milliseconds(120));
      id += 2;
    }
    net.add_flow(FlowSpec::best_effort(500, 2, 6, 1200, 5e6));
    net.add_flow(FlowSpec::best_effort(501, 8, 0, 1200, 5e6));

    const auto plan = net.compute_plan();
    if (!plan.has_value()) {
      row("%-7d %10s %12s %11s %11s %11s", calls, "reject", "-", "-", "-",
          "-");
      continue;
    }
    const SimulationResult r =
        net.run(MacMode::kTdmaOverlay, SimTime::seconds(8));
    row("%-7d %10d %12d %11.2f %11.2f %11.4f", calls, calls,
        (*plan)->guaranteed_slots_used, best_effort_goodput_mbps(r),
        worst_voip_p99_ms(r), worst_voip_loss(r));
    violations += audit_violations("calls=" + std::to_string(calls), r);
  }
  return violations == 0 ? 0 : 1;
}
