// R-F6 — The frame-length trade-off.
//
// Sweeps the 802.16-style frame duration while holding minislot duration
// (~100 us) fixed. Short frames bound delay tightly but over-provision:
// a 20 ms-period G.729 call still needs a grant in EVERY 5 ms frame
// (persistent per-frame grants), quadrupling its slot share. Long frames
// amortize grants but each wrap costs a whole frame of delay. Expected
// shape: admitted-call capacity rises with frame length (up to the codec
// interval), while worst-case and measured delay rise roughly linearly
// with frame length.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

int main() {
  heading("R-F6", "capacity and delay vs frame duration (chain-4, G.729)");
  row("%-10s %7s %9s %10s %10s %10s", "frame_ms", "slots", "capacity",
      "analyt_ms", "sim_p99", "sim_mean");
  for (int frame_ms : {5, 10, 20, 40}) {
    MeshConfig cfg = base_config(make_chain(4, 100.0));
    cfg.emulation.frame.frame_duration = SimTime::milliseconds(frame_ms);
    cfg.emulation.frame.control_slots = 4;
    // Keep minislots at ~100 us so "a slot" means the same thing per row.
    cfg.emulation.frame.data_slots = frame_ms * 10 - 4;

    MeshNetwork net(cfg);
    int id = 0;
    for (int round = 0; round < 20; ++round) {
      net.add_voip_call(id, 0, 3, VoipCodec::g729(),
                        SimTime::milliseconds(150));
      id += 2;
    }
    const std::size_t calls = net.admit_incrementally() / 2;
    if (calls == 0) {
      row("%-10d %7d %9s %10s %10s %10s", frame_ms,
          cfg.emulation.frame.data_slots, "0", "-", "-", "-");
      continue;
    }
    double analytic = 0.0;
    for (const FlowPlan& f : net.plan().guaranteed) {
      analytic = std::max(analytic, f.worst_case_delay.to_ms());
    }
    const SimulationResult r =
        net.run(MacMode::kTdmaOverlay, SimTime::seconds(8));
    row("%-10d %7d %9zu %10.1f %10.2f %10.2f", frame_ms,
        cfg.emulation.frame.data_slots, calls, analytic,
        worst_voip_p99_ms(r), r.mean_delay_ms());
  }
  return 0;
}
