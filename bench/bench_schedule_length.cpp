// R-T1 — Minimum schedule length across topologies and schedulers.
//
// For each topology carrying bidirectional flows, reports the clique lower
// bound, the ILP minimum (the paper's linear search), and the greedy /
// round-robin baselines. Expected shape: ILP == lower bound on most
// instances; baselines trail by a few slots and the gap widens on denser
// conflict graphs.

#include "bench_util.h"
#include "wimesh/qos/planner.h"
#include "wimesh/sched/conflict_graph.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

struct Scenario {
  std::string name;
  Topology topo;
  std::vector<std::pair<NodeId, NodeId>> calls;  // bidirectional pairs
};

SchedulingProblem build_problem(const Scenario& s, const MeshConfig& cfg) {
  QosPlanner planner(s.topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  std::vector<FlowSpec> flows;
  int id = 0;
  for (const auto& [a, b] : s.calls) {
    flows.push_back(FlowSpec::voip(id++, a, b, VoipCodec::g729()));
    flows.push_back(FlowSpec::voip(id++, b, a, VoipCodec::g729()));
  }
  const auto plan = planner.plan(flows, SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  SchedulingProblem p;
  p.links = plan->links;
  p.demand = plan->guaranteed_demand;
  p.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    fp.delay_budget_frames = f.delay_budget_frames;
    p.flows.push_back(fp);
  }
  return p;
}

}  // namespace

int main() {
  heading("R-T1", "minimum schedule length (slots): ILP vs baselines");

  std::vector<Scenario> scenarios;
  for (NodeId n : {4, 6, 8, 10}) {
    Scenario s;
    s.name = "chain-" + std::to_string(n);
    s.topo = make_chain(n, 100.0);
    s.calls = {{0, n - 1}};
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "grid-3x3-2calls";
    s.topo = make_grid(3, 3, 100.0);
    s.calls = {{0, 8}, {2, 6}};
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "grid-4x4-3calls";
    s.topo = make_grid(4, 4, 100.0);
    s.calls = {{0, 15}, {3, 12}, {1, 14}};
    scenarios.push_back(std::move(s));
  }
  {
    Rng rng(11);
    Scenario s;
    s.name = "random-12";
    s.topo = make_random_geometric(12, 450.0, 160.0, rng);
    s.calls = {{0, 11}, {3, 8}};
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "tree-2x3";
    s.topo = make_tree(2, 3, 100.0);
    s.calls = {{0, 7}, {0, 14}};
    scenarios.push_back(std::move(s));
  }

  row("%-18s %6s %9s %7s %6s %7s %7s %7s", "topology", "links", "conflicts",
      "lower", "ilp", "proven", "greedy", "rrobin");
  for (const Scenario& s : scenarios) {
    // Random/tree topologies have their own geometry; adapt ranges so the
    // connectivity the generator produced is also the radio connectivity.
    MeshConfig cfg = base_config(s.topo);
    if (s.name == "random-12") {
      cfg.comm_range = 160.0;
      cfg.interference_range = 320.0;
    }
    const SchedulingProblem p = build_problem(s, cfg);
    const int lower =
        schedule_length_lower_bound(p.links, p.demand, p.conflicts);

    const auto ilp = min_slots_search(p, cfg.emulation.frame.data_slots);
    const auto greedy = schedule_greedy(p, cfg.emulation.frame.data_slots);
    const auto rr = schedule_round_robin(p, cfg.emulation.frame.data_slots);

    row("%-18s %6d %9d %7d %6s %7s %7s %7s", s.name.c_str(), p.links.count(),
        p.conflicts.edge_count(), lower,
        ilp.has_value() ? std::to_string(ilp->frame_slots).c_str() : "-",
        ilp.has_value() ? (ilp->proven_minimal ? "yes" : "no") : "-",
        greedy.has_value()
            ? std::to_string(greedy->schedule.used_slots()).c_str()
            : "-",
        rr.has_value() ? std::to_string(rr->schedule.used_slots()).c_str()
                       : "-");
  }
  return 0;
}
