// R-A2 — Centralized ILP scheduling vs 802.16 distributed mesh election.
//
// The standard's decentralized alternative needs no central scheduler:
// nodes win minislots through a pseudo-random hash election over their
// 2-hop neighborhood. The price is coordination-free randomness — slots go
// to hash winners, not to the tightest packing, and fragmented grants give
// no delay ordering. Expected shape: the election serves all demand only
// with extra slots (span ≥ ILP minimum, typically 10–50 % worse on dense
// conflict graphs) and leaves demand unmet exactly where the ILP still
// fits.

#include "bench_util.h"
#include "wimesh/qos/planner.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/wimax/distributed_scheduler.h"
#include "wimesh/wimax/election.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

SchedulingProblem build(const Topology& topo, const MeshConfig& cfg,
                        const std::vector<std::pair<NodeId, NodeId>>& calls) {
  QosPlanner planner(topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  std::vector<FlowSpec> flows;
  int id = 0;
  for (const auto& [a, b] : calls) {
    flows.push_back(FlowSpec::voip(id++, a, b, VoipCodec::g729()));
    flows.push_back(FlowSpec::voip(id++, b, a, VoipCodec::g729()));
  }
  const auto plan = planner.plan(flows, SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  SchedulingProblem p;
  p.links = plan->links;
  p.demand = plan->guaranteed_demand;
  p.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    p.flows.push_back(FlowPath{f.links, f.delay_budget_frames});
  }
  return p;
}

}  // namespace

int main() {
  heading("R-A2",
          "centralized ILP vs distributed mesh election (slots to serve the "
          "same demand)");
  row("%-16s %7s %9s | %7s | %12s %9s %7s", "topology", "links", "demand",
      "ilp", "elect_span", "unmet@ilp", "ratio");

  struct Case {
    std::string name;
    Topology topo;
    std::vector<std::pair<NodeId, NodeId>> calls;
  };
  std::vector<Case> cases;
  for (NodeId n : {4, 6, 8, 12, 16}) {
    cases.push_back({"chain-" + std::to_string(n), make_chain(n, 100.0),
                     {{0, n - 1}}});
  }
  cases.push_back({"grid-3x3", make_grid(3, 3, 100.0), {{0, 8}, {2, 6}}});
  cases.push_back({"grid-4x4", make_grid(4, 4, 100.0),
                   {{0, 15}, {3, 12}, {1, 14}}});
  cases.push_back({"tree-2x3", make_tree(2, 3, 100.0), {{0, 7}, {0, 14}}});

  for (const Case& c : cases) {
    const MeshConfig cfg = base_config(c.topo);
    const SchedulingProblem p = build(c.topo, cfg, c.calls);
    int total_demand = 0;
    for (int d : p.demand) total_demand += d;

    const auto ilp = min_slots_search(p, cfg.emulation.frame.data_slots);
    WIMESH_ASSERT(ilp.has_value());

    // Election with a full data subframe: how wide must it spread?
    const auto full = schedule_by_election(p.links, p.demand, p.conflicts,
                                           cfg.emulation.frame.data_slots);
    WIMESH_ASSERT(election_conflict_free(full, p.conflicts));
    // Election confined to the ILP's minimal span: what stays unmet?
    const auto tight = schedule_by_election(p.links, p.demand, p.conflicts,
                                            ilp->frame_slots);

    row("%-16s %7d %9d | %7d | %12d %9d %7.2f", c.name.c_str(),
        p.links.count(), total_demand, ilp->frame_slots, full.used_slots(),
        tight.total_unmet(),
        static_cast<double>(full.used_slots()) /
            static_cast<double>(ilp->frame_slots));
  }

  // Second panel (R-A4): the three-way handshake's convergence cost — how
  // many control rounds and request messages (incl. stale-view rejections)
  // until the distributed schedule settles, and the slot span it lands on.
  heading("R-A4",
          "distributed 3-way handshake: convergence cost vs centralized span");
  row("%-16s %7s | %7s %11s %11s | %10s %7s", "topology", "links", "rounds",
      "handshakes", "rejections", "dist_span", "ilp");
  for (const Case& c : cases) {
    MeshConfig cfg = base_config(c.topo);
    const SchedulingProblem p = build(c.topo, cfg, c.calls);
    const auto ilp = min_slots_search(p, cfg.emulation.frame.data_slots);
    WIMESH_ASSERT(ilp.has_value());
    const auto dist = run_distributed_scheduling(
        p.links, p.demand, p.conflicts, cfg.emulation.frame.data_slots);
    WIMESH_ASSERT(distributed_schedule_conflict_free(dist, p.conflicts));
    row("%-16s %7d | %7d %11d %11d | %10d %7d", c.name.c_str(),
        p.links.count(), dist.rounds, dist.handshakes, dist.rejections,
        dist.converged ? dist.used_slots() : -1, ilp->frame_slots);
  }
  return 0;
}
