// R-F2 — End-to-end delay vs hop count under different transmission orders.
//
// One G.729 flow crosses a chain of increasing length. Three schedules over
// identical per-link grants:
//   * delay-aware ILP (paper): monotone order, zero frame wraps;
//   * greedy first-fit: order falls out of demand sorting;
//   * adversarial reverse order: downstream hops transmit before upstream
//     ones — one full frame of scheduling delay per hop (the worst case the
//     paper's optimization exists to avoid).
// Reported: analytic worst-case delay plus simulated mean/p99 (TDMA
// overlay, 10 s of traffic). Expected shape: ILP delay stays flat (~1–2
// frames) as hops grow; reverse order grows linearly at ~1 frame/hop;
// greedy sits between them.

#include <algorithm>
#include <optional>

#include "bench_util.h"
#include "wimesh/qos/planner.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

// First-fit placement pinning each hop AFTER its downstream hop's block —
// the delay-worst order.
std::optional<MeshSchedule> reverse_order_schedule(const SchedulingProblem& p,
                                                   int frame_slots) {
  MeshSchedule schedule(p.links, frame_slots);
  std::vector<LinkId> order;
  for (const FlowPath& f : p.flows) {
    for (auto it = f.links.rbegin(); it != f.links.rend(); ++it) {
      if (std::find(order.begin(), order.end(), *it) == order.end()) {
        order.push_back(*it);
      }
    }
  }
  for (LinkId l = 0; l < p.links.count(); ++l) {
    if (p.demand[static_cast<std::size_t>(l)] > 0 &&
        std::find(order.begin(), order.end(), l) == order.end()) {
      order.push_back(l);
    }
  }
  for (LinkId l : order) {
    const int d = p.demand[static_cast<std::size_t>(l)];
    int lower_start = 0;
    for (const FlowPath& f : p.flows) {
      for (std::size_t i = 0; i + 1 < f.links.size(); ++i) {
        if (f.links[i] != l) continue;
        if (const auto down = schedule.grant(f.links[i + 1])) {
          lower_start = std::max(lower_start, down->end());
        }
      }
    }
    std::vector<SlotRange> busy;
    for (EdgeId e : p.conflicts.incident(l)) {
      if (const auto g = schedule.grant(p.conflicts.other_end(e, l))) {
        busy.push_back(*g);
      }
    }
    std::sort(busy.begin(), busy.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return a.start < b.start;
              });
    int cursor = lower_start;
    for (const SlotRange& b : busy) {
      if (cursor + d <= b.start) break;
      cursor = std::max(cursor, b.end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  return schedule;
}

struct Measurement {
  double analytic_ms = 0.0;
  double sim_mean_ms = 0.0;
  double sim_p99_ms = 0.0;
};

Measurement measure(MeshNetwork& net, const MeshSchedule& schedule) {
  net.override_schedule(schedule);
  Measurement m;
  m.analytic_ms = net.plan().guaranteed[0].worst_case_delay.to_ms();
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, SimTime::seconds(10));
  const FlowResult& f = r.flows[0];
  if (!f.stats.delays_ms().empty()) {
    m.sim_mean_ms = f.stats.delays_ms().mean();
    m.sim_p99_ms = f.stats.delays_ms().quantile(0.99);
  }
  return m;
}

}  // namespace

int main() {
  heading("R-F2", "end-to-end delay vs hops: transmission order matters");
  row("%-5s | %-27s | %-27s | %-27s", "", "delay-aware ILP", "greedy",
      "reverse order (worst)");
  row("%-5s | %7s %9s %7s | %7s %9s %7s | %7s %9s %7s", "hops", "analyt",
      "sim_mean", "sim_p99", "analyt", "sim_mean", "sim_p99", "analyt",
      "sim_mean", "sim_p99");

  for (NodeId hops = 2; hops <= 8; ++hops) {
    const NodeId n = hops + 1;
    MeshConfig cfg = base_config(make_chain(n, 100.0));
    const RadioModel radio(cfg.comm_range, cfg.interference_range);
    QosPlanner planner(cfg.topology, radio, cfg.emulation, cfg.phy);
    const FlowSpec flow =
        FlowSpec::voip(0, 0, n - 1, VoipCodec::g729(),
                       SimTime::milliseconds(200));

    auto ilp_plan = planner.plan({flow}, SchedulerKind::kIlpDelayAware);
    auto greedy_plan = planner.plan({flow}, SchedulerKind::kGreedy);
    WIMESH_ASSERT(ilp_plan.has_value() && greedy_plan.has_value());

    SchedulingProblem problem;
    problem.links = ilp_plan->links;
    problem.demand = ilp_plan->guaranteed_demand;
    problem.conflicts = ilp_plan->conflicts;
    problem.flows.push_back(FlowPath{ilp_plan->guaranteed[0].links,
                                     ilp_plan->guaranteed[0].delay_budget_frames});
    auto reverse =
        reverse_order_schedule(problem, cfg.emulation.frame.data_slots);
    WIMESH_ASSERT(reverse.has_value());

    MeshNetwork net(cfg);
    net.add_flow(flow);
    WIMESH_ASSERT(net.compute_plan().has_value());

    const Measurement a = measure(net, ilp_plan->schedule);
    const Measurement b = measure(net, greedy_plan->schedule);
    const Measurement c = measure(net, *reverse);
    row("%-5d | %7.1f %9.2f %7.2f | %7.1f %9.2f %7.2f | %7.1f %9.2f %7.2f",
        hops, a.analytic_ms, a.sim_mean_ms, a.sim_p99_ms, b.analytic_ms,
        b.sim_mean_ms, b.sim_p99_ms, c.analytic_ms, c.sim_mean_ms,
        c.sim_p99_ms);
  }
  return 0;
}
