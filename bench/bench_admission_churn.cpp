// R-A5 — Online admission control under call churn at production rates.
//
// Replays Poisson call arrivals / exponential holding through the
// wimesh::admit engine (stage pipeline: clique-bound fast reject ->
// incremental schedule repair -> warm-started cold solve) and measures
// what a deployment cares about: sustained decisions per second, the
// per-decision latency distribution (p50/p90/p99), blocking probability,
// and how often each pipeline stage answered. Expected shape: near and
// past the capacity knee almost every arrival is answered by stage 1 or
// stage 2 in microseconds, so the engine sustains >= 10k decisions/s on a
// 4x4 grid while the cold-solve oracle would grind through an ILP per
// arrival.
//
// All load points share one ScheduleCache (exact-key memoization — shared
// state never changes a decision). --smoke runs short differential
// replays on three topologies in parallel against the cold re-solve
// oracle and fails on any mismatch; under TSan this doubles as the
// sharded-cache race check.

#include <memory>

#include "bench_util.h"
#include "wimesh/admit/engine.h"
#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/sched/schedule_cache.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

struct Panel {
  const char* title;
  const char* tag;
  Topology topo;
  std::vector<double> rates;  // arrivals per second
};

struct Item {
  std::size_t panel;
  double rate;
};

struct ItemResult {
  admit::ChurnResult churn;
  double wall_s = 0.0;

  double decisions_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(churn.stats.offered) / wall_s
                        : 0.0;
  }
  double events_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(churn.events) / wall_s : 0.0;
  }
};

EmulationParams canonical_params() {
  EmulationParams params;
  params.frame.frame_duration = SimTime::milliseconds(10);
  params.frame.control_slots = 4;
  params.frame.data_slots = 96;
  params.guard_time = SimTime::microseconds(50);
  return params;
}

admit::EngineConfig engine_config(ScheduleCache* cache) {
  admit::EngineConfig ec;
  ec.scheduler = SchedulerKind::kIlpDelayAware;
  ec.ilp.cache = cache;
  // Production posture: bound the per-decision solver budget (an online
  // controller cannot grind branch & bound for seconds per call) and
  // compact lazily. The oracle check shares these limits, so decision
  // equivalence is unaffected.
  ec.ilp.max_nodes = 1'000;
  ec.ilp.time_limit_seconds = 0.01;
  ec.compaction_departures = 64;
  return ec;
}

admit::ChurnSpec churn_spec(double rate, std::uint64_t events,
                            std::uint64_t seed) {
  admit::ChurnSpec spec;
  spec.arrival_rate_per_s = rate;
  spec.mean_holding_s = 30.0;
  // The event cap is the stopping rule; the horizon just has to be beyond
  // it at any rate this bench sweeps.
  spec.horizon_s = 1e7;
  spec.max_events = events;
  spec.seed = seed;
  return spec;
}

ItemResult run_item(const Topology& topo, double rate, std::uint64_t events,
                    ScheduleCache* cache) {
  admit::AdmissionEngine engine(topo, RadioModel(110.0, 220.0),
                                canonical_params(), PhyMode::ofdm_802_11a(54),
                                engine_config(cache));
  ItemResult out;
  const std::int64_t wall0 = trace::monotonic_ns();
  out.churn = admit::replay_poisson_churn(engine, churn_spec(rate, events, 1));
  out.wall_s = static_cast<double>(trace::monotonic_ns() - wall0) / 1e9;
  return out;
}

// --smoke: differential oracle checks, one per topology, run in parallel
// with a shared cache. Returns the number of failing replays.
int run_smoke(int jobs, std::uint64_t events, batch::JsonWriter* json) {
  struct SmokeCase {
    const char* tag;
    Topology topo;
    double rate;
  };
  std::vector<SmokeCase> cases;
  cases.push_back({"chain-5", make_chain(5, 100.0), 3.0});
  cases.push_back({"grid-3x3", make_grid(3, 3, 100.0), 4.0});
  cases.push_back({"tree-2x3", make_tree(2, 3, 100.0), 4.0});

  ScheduleCache cache;
  std::vector<admit::DifferentialReport> reports(cases.size());
  batch::run_indexed(jobs, cases.size(), [&](std::size_t i) {
    reports[i] = admit::differential_replay(
        cases[i].topo, RadioModel(110.0, 220.0), canonical_params(),
        PhyMode::ofdm_802_11a(54), engine_config(&cache),
        churn_spec(cases[i].rate, events, 7 + i));
  });

  heading("R-A5", "smoke: engine vs cold re-solve oracle");
  row("%-10s | %8s %10s %10s %12s", "topology", "events", "decisions",
      "mismatch", "consistency");
  int failures = 0;
  if (json != nullptr) {
    json->key("smoke");
    json->begin_array();
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const admit::DifferentialReport& d = reports[i];
    row("%-10s | %8llu %10llu %10llu %12llu", cases[i].tag,
        static_cast<unsigned long long>(d.events),
        static_cast<unsigned long long>(d.decisions),
        static_cast<unsigned long long>(d.mismatches),
        static_cast<unsigned long long>(d.consistency_failures));
    if (d.mismatches != 0 || d.consistency_failures != 0) {
      ++failures;
      if (!d.first_mismatch.empty()) {
        std::fprintf(stderr, "%s: first mismatch: %s\n", cases[i].tag,
                     d.first_mismatch.c_str());
      }
    }
    if (json != nullptr) {
      json->begin_object();
      json->key("topology");
      json->value(cases[i].tag);
      json->key("events");
      json->value(d.events);
      json->key("decisions");
      json->value(d.decisions);
      json->key("mismatches");
      json->value(d.mismatches);
      json->key("consistency_failures");
      json->value(d.consistency_failures);
      json->end_object();
    }
  }
  if (json != nullptr) json->end_array();
  std::printf("%s\n", cache.report().c_str());
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 1;
  std::string json_path;
  std::uint64_t events = 5000;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) jobs = 1;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events = std::strtoull(argv[++i], nullptr, 10);
      if (events == 0) events = 5000;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs K] [--events N] [--json OUT] [--smoke]\n",
                   argv[0]);
      return 1;
    }
  }

  batch::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("admission_churn");

  if (smoke) {
    // Short replays, oracle-checked; clamp so CI/TSan runs stay fast.
    const std::uint64_t smoke_events = events > 400 ? 400 : events;
    const int failures = run_smoke(jobs, smoke_events, &w);
    w.end_object();
    if (!json_path.empty() && !write_text_file(json_path, w.str())) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    return failures == 0 ? 0 : 1;
  }

  // Load points straddle each mesh's capacity knee: underloaded (repairs
  // dominate), near the knee (the hard regime — borderline arrivals fall
  // through to capped solves), and deep overload (fast rejects dominate —
  // the production regime the 10k decisions/s target is about).
  std::vector<Panel> panels;
  panels.push_back({"admission churn (grid-4x4 gateway, G.729)", "grid-4x4",
                    make_grid(4, 4, 100.0),
                    {0.5, 4.0, 200.0}});
  panels.push_back({"admission churn (grid-3x3 gateway, G.729)", "grid-3x3",
                    make_grid(3, 3, 100.0),
                    {0.5, 4.0, 200.0}});
  panels.push_back({"admission churn (chain-8 gateway, G.729)", "chain-8",
                    make_chain(8, 100.0),
                    {0.5, 4.0, 200.0}});

  std::vector<Item> items;
  for (std::size_t p = 0; p < panels.size(); ++p) {
    for (double rate : panels[p].rates) items.push_back({p, rate});
  }

  ScheduleCache cache;
  std::vector<ItemResult> results(items.size());
  batch::run_indexed(jobs, items.size(), [&](std::size_t i) {
    results[i] = run_item(panels[items[i].panel].topo, items[i].rate, events,
                          &cache);
  });

  std::size_t at = 0;
  for (const Panel& p : panels) {
    heading("R-A5", p.title);
    row("%-8s | %9s %8s | %8s %8s %8s | %9s %9s %9s", "rate/s", "decis/s",
        "block", "fastrej", "repair", "solve", "p50_us", "p99_us", "max_us");
    for (double rate : p.rates) {
      const ItemResult& r = results[at++];
      const admit::EngineStats& s = r.churn.stats;
      const SampleSet& lat = s.decision_latency_ns;
      row("%-8.1f | %9.0f %8.4f | %8llu %8llu %8llu | %9.1f %9.1f %9.1f",
          rate, r.decisions_per_s(), s.blocking_probability(),
          static_cast<unsigned long long>(s.fast_rejects),
          static_cast<unsigned long long>(s.repair_admits),
          static_cast<unsigned long long>(s.full_solves),
          lat.empty() ? 0.0 : lat.quantile(0.50) / 1e3,
          lat.empty() ? 0.0 : lat.quantile(0.99) / 1e3,
          lat.empty() ? 0.0 : lat.max() / 1e3);
    }
  }
  std::printf("%s\n", cache.report().c_str());

  w.key("events_per_point");
  w.value(events);
  w.key("rows");
  w.begin_array();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const ItemResult& r = results[i];
    const admit::EngineStats& s = r.churn.stats;
    const SampleSet& lat = s.decision_latency_ns;
    w.begin_object();
    w.key("topology");
    w.value(panels[items[i].panel].tag);
    w.key("arrival_rate_per_s");
    w.value(items[i].rate);
    w.key("events");
    w.value(r.churn.events);
    w.key("decisions_per_s");
    w.value(r.decisions_per_s());
    w.key("events_per_s");
    w.value(r.events_per_s());
    w.key("blocking_probability");
    w.value(s.blocking_probability());
    w.key("mean_carried");
    w.value(r.churn.mean_carried);
    w.key("fast_rejects");
    w.value(s.fast_rejects);
    w.key("repair_admits");
    w.value(s.repair_admits);
    w.key("full_solves");
    w.value(s.full_solves);
    w.key("hot_swaps");
    w.value(s.hot_swaps);
    w.key("compactions");
    w.value(s.compactions);
    w.key("latency_us");
    if (lat.empty()) {
      w.null();
    } else {
      w.begin_object();
      w.key("p50");
      w.value(lat.quantile(0.50) / 1e3);
      w.key("p90");
      w.value(lat.quantile(0.90) / 1e3);
      w.key("p99");
      w.value(lat.quantile(0.99) / 1e3);
      w.key("mean");
      w.value(lat.mean() / 1e3);
      w.key("max");
      w.value(lat.max() / 1e3);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!json_path.empty() && !write_text_file(json_path, w.str())) {
    std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
    return 1;
  }
  return 0;
}
