// R-A3 — Routing policy ablation: hop-count vs load-aware routing.
//
// On topologies with path diversity (ring, grid), spreading flows across
// parallel routes relieves the conflict cliques around popular links and
// admits more guaranteed calls. Expected shape: identical capacity on
// chains (no diversity), a measurable gain on the ring and grid.

#include "bench_util.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

std::size_t capacity(Topology topo, double comm, RoutingPolicy routing,
                     std::vector<std::pair<NodeId, NodeId>> endpoints) {
  MeshConfig cfg = base_config(std::move(topo));
  cfg.comm_range = comm;
  cfg.interference_range = comm * 2;
  cfg.routing = routing;
  MeshNetwork net(cfg);
  int id = 0;
  for (int round = 0; round < 12; ++round) {
    for (const auto& [a, b] : endpoints) {
      net.add_voip_call(id, a, b, VoipCodec::g729(),
                        SimTime::milliseconds(100));
      id += 2;
    }
  }
  return net.admit_incrementally() / 2;
}

}  // namespace

int main() {
  heading("R-A3", "admitted G.729 calls: hop-count vs load-aware routing");
  row("%-12s %12s %12s", "topology", "hop-count", "load-aware");

  {
    const auto calls = std::vector<std::pair<NodeId, NodeId>>{{0, 4}};
    row("%-12s %12zu %12zu", "chain-5",
        capacity(make_chain(5, 100.0), 110.0, RoutingPolicy::kHopCount,
                 calls),
        capacity(make_chain(5, 100.0), 110.0, RoutingPolicy::kLoadAware,
                 calls));
  }
  {
    const auto calls = std::vector<std::pair<NodeId, NodeId>>{{0, 4}};
    row("%-12s %12zu %12zu", "ring-8",
        capacity(make_ring(8, 160.0), 130.0, RoutingPolicy::kHopCount,
                 calls),
        capacity(make_ring(8, 160.0), 130.0, RoutingPolicy::kLoadAware,
                 calls));
  }
  {
    const auto calls =
        std::vector<std::pair<NodeId, NodeId>>{{0, 8}, {2, 6}};
    row("%-12s %12zu %12zu", "grid-3x3",
        capacity(make_grid(3, 3, 100.0), 110.0, RoutingPolicy::kHopCount,
                 calls),
        capacity(make_grid(3, 3, 100.0), 110.0, RoutingPolicy::kLoadAware,
                 calls));
  }
  return 0;
}
