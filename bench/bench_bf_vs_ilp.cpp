// R-A1 — Ablation: order→schedule reconstruction vs full ILP solve.
//
// The paper's split: the *expensive* decision is the relative transmission
// order (binary ILP); turning a fixed order into concrete slot offsets is a
// difference-constraint system solved by Bellman–Ford on the conflict
// graph in polynomial time. This bench times the two, plus the effect of
// the constructive heuristics bolted in front of branch & bound. Expected
// shape: reconstruction is microseconds, the ILP is milliseconds-to-
// seconds, and the heuristic fast path collapses the common case by
// orders of magnitude.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "wimesh/qos/planner.h"

using namespace wimesh;
using namespace wimesh::bench;

namespace {

struct Instance {
  SchedulingProblem problem;
  TransmissionOrder order;  // a known-feasible order
  int frame_slots = 0;
};

Instance make_instance(NodeId chain_n) {
  const Topology topo = make_chain(chain_n, 100.0);
  MeshConfig cfg = base_config(topo);
  QosPlanner planner(topo, RadioModel(cfg.comm_range, cfg.interference_range),
                     cfg.emulation, cfg.phy);
  const auto plan = planner.plan(
      {FlowSpec::voip(0, 0, chain_n - 1, VoipCodec::g729()),
       FlowSpec::voip(1, chain_n - 1, 0, VoipCodec::g729())},
      SchedulerKind::kGreedy);
  WIMESH_ASSERT(plan.has_value());
  Instance inst;
  inst.problem.links = plan->links;
  inst.problem.demand = plan->guaranteed_demand;
  inst.problem.conflicts = plan->conflicts;
  for (const FlowPlan& f : plan->guaranteed) {
    inst.problem.flows.push_back(FlowPath{f.links, f.delay_budget_frames});
  }
  const auto search = min_slots_search(inst.problem, 96);
  WIMESH_ASSERT(search.has_value());
  inst.order = search->result.order;
  inst.frame_slots = search->frame_slots;
  return inst;
}

void BM_BellmanFordReconstruction(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    auto schedule =
        order_to_schedule(inst.problem, inst.order, inst.frame_slots);
    WIMESH_ASSERT(schedule.has_value());
    benchmark::DoNotOptimize(schedule);
  }
  state.counters["links"] = inst.problem.links.count();
}

void BM_FullIlpSolve(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<NodeId>(state.range(0)));
  IlpSchedulerOptions opt;
  opt.try_heuristics = false;
  opt.time_limit_seconds = 10.0;
  for (auto _ : state) {
    auto r = schedule_ilp(inst.problem, inst.frame_slots, opt);
    if (!r.has_value()) {
      state.SkipWithError("DNF: pure branch & bound exceeds its budget at "
                          "the tight S (why the BF construction exists)");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
}

void BM_IlpWithHeuristics(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<NodeId>(state.range(0)));
  IlpSchedulerOptions opt;
  opt.try_heuristics = true;
  opt.time_limit_seconds = 10.0;
  for (auto _ : state) {
    auto r = schedule_ilp(inst.problem, inst.frame_slots, opt);
    if (!r.has_value()) {
      // Root-LP rounding missed and branch & bound hit its budget; the
      // constructive greedies (exercised by BM_MinSlotsSearch) are what
      // rescue this regime in practice.
      state.SkipWithError("DNF: rounding missed, branch & bound at budget");
      break;
    }
    benchmark::DoNotOptimize(r);
  }
}

void BM_MinSlotsSearch(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    auto r = min_slots_search(inst.problem, 96);
    WIMESH_ASSERT(r.has_value());
    benchmark::DoNotOptimize(r);
  }
}

}  // namespace

BENCHMARK(BM_BellmanFordReconstruction)->Arg(5)->Arg(8)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullIlpSolve)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_IlpWithHeuristics)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MinSlotsSearch)->Arg(5)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
