#include "wimesh/radio/propagation.h"

#include <algorithm>
#include <cmath>

#include "wimesh/common/strings.h"

namespace wimesh::radio {
namespace {

// Orientation of the ordered triple (p, q, r): sign of the cross product.
int orientation(const Point& p, const Point& q, const Point& r) {
  const double cross =
      (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
  if (cross > 0.0) return 1;
  if (cross < 0.0) return -1;
  return 0;
}

bool on_segment(const Point& p, const Point& q, const Point& r) {
  return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
         std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
}

// Proper or touching intersection of segments p1..p2 and q1..q2. The
// standard orientation test; collinear overlap counts as one crossing.
bool segments_intersect(const Point& p1, const Point& p2, const Point& q1,
                        const Point& q2) {
  const int o1 = orientation(p1, p2, q1);
  const int o2 = orientation(p1, p2, q2);
  const int o3 = orientation(q1, q2, p1);
  const int o4 = orientation(q1, q2, p2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(p1, q1, p2)) return true;
  if (o2 == 0 && on_segment(p1, q2, p2)) return true;
  if (o3 == 0 && on_segment(q1, p1, q2)) return true;
  if (o4 == 0 && on_segment(q1, p2, q2)) return true;
  return false;
}

}  // namespace

Propagation::Propagation(PropagationConfig config)
    : config_(std::move(config)) {
  WIMESH_ASSERT(config_.exponent_los > 0.0);
  WIMESH_ASSERT(config_.exponent_obstructed > 0.0);
  WIMESH_ASSERT(config_.reference_distance_m > 0.0);
  WIMESH_ASSERT(config_.frequency_ghz > 0.0);
}

Expected<Propagation> Propagation::try_make(PropagationConfig config) {
  if (config.exponent_los <= 0.0 || config.exponent_obstructed <= 0.0) {
    return make_error(
        str_cat("path-loss exponent must be > 0 (got los=",
                fmt_double(config.exponent_los, 2), ", obstructed=",
                fmt_double(config.exponent_obstructed, 2), ")"));
  }
  if (config.reference_distance_m <= 0.0) {
    return make_error(str_cat("reference distance must be > 0 (got ",
                              fmt_double(config.reference_distance_m, 2),
                              ")"));
  }
  if (config.frequency_ghz <= 0.0) {
    return make_error(str_cat("carrier frequency must be > 0 (got ",
                              fmt_double(config.frequency_ghz, 2), " GHz)"));
  }
  if (config.floor_loss_db < 0.0) {
    return make_error(str_cat("floor loss must be >= 0 dB (got ",
                              fmt_double(config.floor_loss_db, 2), ")"));
  }
  for (std::size_t i = 0; i < config.walls.size(); ++i) {
    const WallSegment& w = config.walls[i];
    if (w.a.x == w.b.x && w.a.y == w.b.y) {
      return make_error(str_cat("wall ", i + 1, " has zero length (segment (",
                                fmt_double(w.a.x, 1), ",",
                                fmt_double(w.a.y, 1),
                                ") collapses to a point)"));
    }
    if (w.loss_db < 0.0) {
      return make_error(str_cat("wall ", i + 1, " has negative loss (",
                                fmt_double(w.loss_db, 2), " dB)"));
    }
  }
  return Propagation(std::move(config));
}

int Propagation::wall_crossings(const Point& tx, const Point& rx) const {
  int crossings = 0;
  for (const WallSegment& w : config_.walls) {
    if (segments_intersect(tx, rx, w.a, w.b)) ++crossings;
  }
  return crossings;
}

double Propagation::open_loss_db(double distance_m) const {
  const double d = std::max(distance_m, config_.reference_distance_m);
  return config_.exponent_los *
             std::log10(d / config_.reference_distance_m) +
         config_.intercept_los_db +
         20.0 * std::log10(config_.frequency_ghz / 5.0);
}

double Propagation::distance_for_open_loss(double loss_db) const {
  const double base =
      config_.intercept_los_db + 20.0 * std::log10(config_.frequency_ghz / 5.0);
  if (loss_db <= base) return config_.reference_distance_m;
  return config_.reference_distance_m *
         std::pow(10.0, (loss_db - base) / config_.exponent_los);
}

double Propagation::loss_db(const Point& tx, const Point& rx, int tx_floor,
                            int rx_floor) const {
  const double d = std::max(distance(tx, rx), config_.reference_distance_m);
  double wall_loss = 0.0;
  int crossings = 0;
  if (!config_.walls.empty()) {
    for (const WallSegment& w : config_.walls) {
      if (segments_intersect(tx, rx, w.a, w.b)) {
        ++crossings;
        wall_loss += w.loss_db;
      }
    }
  }
  const bool obstructed = crossings > 0 || tx_floor != rx_floor;
  const double exponent =
      obstructed ? config_.exponent_obstructed : config_.exponent_los;
  const double intercept =
      obstructed ? config_.intercept_obstructed_db : config_.intercept_los_db;
  const double open = exponent * std::log10(d / config_.reference_distance_m) +
                      intercept +
                      20.0 * std::log10(config_.frequency_ghz / 5.0);
  const double floor_loss =
      config_.floor_loss_db * std::abs(tx_floor - rx_floor);
  return open + wall_loss + floor_loss;
}

}  // namespace wimesh::radio
