#include "wimesh/radio/reception.h"

#include <algorithm>
#include <cmath>

#include "wimesh/common/assert.h"

namespace wimesh::radio {
namespace {

constexpr double kMinPowerMw = 1e-15;  // -120 dBm floor keeps logs finite

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

// Uncoded bit error rate of the modulation at per-symbol SNR `snr`
// (linear). OFDM formulas are the Gray-coded AWGN expressions; DSSS/CCK
// use the exponential DPSK bound with the spreading gain folded into an
// effective SNR (11-chip Barker for 1/2 Mbps, 8-chip CCK above).
double raw_bit_error_rate(Modulation mod, double snr) {
  switch (mod) {
    case Modulation::kBpsk:
      return q_function(std::sqrt(2.0 * snr));
    case Modulation::kQpsk:
      return q_function(std::sqrt(snr));
    case Modulation::kQam16:
      return 0.75 * q_function(std::sqrt(snr / 5.0));
    case Modulation::kQam64:
      return (7.0 / 12.0) * q_function(std::sqrt(snr / 21.0));
    case Modulation::kDbpsk:
      return 0.5 * std::exp(-std::min(11.0 * snr, 700.0));
    case Modulation::kDqpsk:
      return 0.5 * std::exp(-std::min(5.5 * snr, 700.0));
    case Modulation::kCck5:
      return 0.5 * std::exp(-std::min(2.0 * snr, 700.0));
    case Modulation::kCck11:
      return 0.5 * std::exp(-std::min(snr, 700.0));
  }
  return 0.5;
}

// Free distance of the 802.11 convolutional code (K=7) at each puncturing.
int d_free(double code_rate) {
  if (code_rate <= 0.5) return 10;
  if (code_rate <= 2.0 / 3.0 + 1e-9) return 6;
  return 5;  // 3/4
}

}  // namespace

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) {
  return 10.0 * std::log10(std::max(mw, kMinPowerMw));
}

double sinr_db(double signal_dbm, double interference_mw,
               double noise_floor_dbm) {
  const double denom_mw = dbm_to_mw(noise_floor_dbm) + interference_mw;
  return signal_dbm - mw_to_dbm(denom_mw);
}

double packet_error_rate(const RateEntry& rate, double snr_db,
                         std::size_t bytes) {
  const double snr = dbm_to_mw(snr_db);  // dB -> linear is the same map
  const double raw = raw_bit_error_rate(rate.modulation, snr);
  double ber = raw;
  if (rate.code_rate < 1.0) {
    // Hard-decision Viterbi first-event-error approximation:
    // Pb ≈ 0.5 * (4 p (1-p))^(d_free / 2).
    const double p = std::min(raw, 0.5);
    ber = 0.5 * std::pow(4.0 * p * (1.0 - p),
                         static_cast<double>(d_free(rate.code_rate)) / 2.0);
  }
  ber = std::clamp(ber, 0.0, 0.5);
  const double bits = 8.0 * static_cast<double>(bytes);
  // PER = 1 - (1 - BER)^bits, evaluated stably via log1p.
  const double log_ok = bits * std::log1p(-ber);
  return 1.0 - std::exp(log_ok);
}

RateTable::RateTable(std::vector<RateEntry> entries, bool ofdm)
    : entries_(std::move(entries)), ofdm_(ofdm) {
  // Decode threshold per rate: bisect the monotone PER curve for the
  // PER(1000 B) == 10% point. Deterministic (pure float math).
  min_snr_db_.reserve(entries_.size());
  for (const RateEntry& e : entries_) {
    double lo = -10.0;
    double hi = 40.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (packet_error_rate(e, mid, 1000) > 0.1) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    min_snr_db_.push_back(0.5 * (lo + hi));
  }
}

RateTable RateTable::ofdm_802_11a() {
  return RateTable(
      {
          {6, Modulation::kBpsk, 0.5},
          {9, Modulation::kBpsk, 0.75},
          {12, Modulation::kQpsk, 0.5},
          {18, Modulation::kQpsk, 0.75},
          {24, Modulation::kQam16, 0.5},
          {36, Modulation::kQam16, 0.75},
          {48, Modulation::kQam64, 2.0 / 3.0},
          {54, Modulation::kQam64, 0.75},
      },
      /*ofdm=*/true);
}

RateTable RateTable::dsss_802_11b() {
  return RateTable(
      {
          {1, Modulation::kDbpsk, 1.0},
          {2, Modulation::kDqpsk, 1.0},
          {5, Modulation::kCck5, 1.0},
          {11, Modulation::kCck11, 1.0},
      },
      /*ofdm=*/false);
}

RateTable RateTable::for_phy(const PhyMode& phy) {
  return phy.is_ofdm() ? ofdm_802_11a() : dsss_802_11b();
}

const RateEntry& RateTable::entry(std::size_t i) const {
  WIMESH_ASSERT(i < entries_.size());
  return entries_[i];
}

PhyMode RateTable::phy_mode(std::size_t i) const {
  const RateEntry& e = entry(i);
  return ofdm_ ? PhyMode::ofdm_802_11a(e.rate_mbps)
               : PhyMode::dsss_802_11b(e.rate_mbps);
}

std::size_t RateTable::index_of(int rate_mbps) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].rate_mbps == rate_mbps) return i;
  }
  WIMESH_ASSERT_MSG(false, "rate is not in this PHY family's ladder");
  return 0;
}

double RateTable::per(std::size_t i, double snr_db, std::size_t bytes) const {
  return packet_error_rate(entry(i), snr_db, bytes);
}

double RateTable::min_snr_db(std::size_t i) const {
  WIMESH_ASSERT(i < min_snr_db_.size());
  return min_snr_db_[i];
}

}  // namespace wimesh::radio
