#include "wimesh/radio/medium.h"

#include <cmath>

#include "wimesh/common/assert.h"

namespace wimesh::radio {
namespace {

// Sub-stream indices under the effective radio seed. Distinct SplitMix64
// derivations keep shadowing and fading decorrelated.
constexpr std::uint64_t kShadowStream = 1;
constexpr std::uint64_t kFadingStream = 2;

}  // namespace

RadioEnvironment::RadioEnvironment(RadioConfig config,
                                   std::vector<Point> positions,
                                   const PhyMode& base_phy,
                                   std::uint64_t effective_seed)
    : config_(std::move(config)),
      positions_(std::move(positions)),
      propagation_(config_.propagation),
      fading_(Rng::derive_stream(effective_seed, kFadingStream),
              config_.fading),
      rates_(RateTable::for_phy(base_phy)),
      shadow_seed_(Rng::derive_stream(effective_seed, kShadowStream)) {
  WIMESH_ASSERT(config_.shadowing_sigma_db >= 0.0);
  WIMESH_ASSERT(config_.floors.empty() ||
                config_.floors.size() == positions_.size());
  base_rate_index_ = rates_.index_of(base_phy.nominal_rate_mbps());
  noise_floor_mw_ = dbm_to_mw(config_.noise_floor_dbm);
  interference_cutoff_dbm_ =
      std::isnan(config_.interference_cutoff_dbm)
          ? config_.noise_floor_dbm + 6.0
          : config_.interference_cutoff_dbm;
}

int RadioEnvironment::floor_of(NodeId n) const {
  WIMESH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < positions_.size());
  if (config_.floors.empty()) return 0;
  return config_.floors[static_cast<std::size_t>(n)];
}

double RadioEnvironment::shadowing_db(NodeId a, NodeId b) const {
  if (config_.shadowing_sigma_db <= 0.0) return 0.0;
  const std::uint64_t key = pair_stream_key(a, b);
  const auto it = shadow_cache_.find(key);
  if (it != shadow_cache_.end()) return it->second;
  // One draw from the pair's private stream: a pure function of
  // (seed, pair), so cache-fill order is irrelevant.
  Rng rng(Rng::derive_stream(shadow_seed_, key));
  const double value = rng.normal(0.0, config_.shadowing_sigma_db);
  shadow_cache_.emplace(key, value);
  return value;
}

double RadioEnvironment::mean_rx_power_dbm(NodeId tx, NodeId rx) const {
  WIMESH_ASSERT(tx >= 0 && static_cast<std::size_t>(tx) < positions_.size());
  WIMESH_ASSERT(rx >= 0 && static_cast<std::size_t>(rx) < positions_.size());
  const double loss = propagation_.loss_db(
      positions_[static_cast<std::size_t>(tx)],
      positions_[static_cast<std::size_t>(rx)], floor_of(tx), floor_of(rx));
  return config_.tx_power_dbm - loss + shadowing_db(tx, rx);
}

double RadioEnvironment::rx_power_dbm(NodeId tx, NodeId rx, SimTime t) const {
  return mean_rx_power_dbm(tx, rx) + fading_.gain_db(tx, rx, t);
}

}  // namespace wimesh::radio
