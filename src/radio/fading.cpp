#include "wimesh/radio/fading.h"

#include <algorithm>
#include <cmath>

namespace wimesh::radio {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMinGainDb = -60.0;  // deep-fade floor

}  // namespace

std::uint64_t pair_stream_key(NodeId a, NodeId b) {
  const auto lo = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(std::min(a, b)));
  const auto hi = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(std::max(a, b)));
  return (hi << 32) | lo;
}

JakesFader::JakesFader(std::uint64_t stream_seed, const FadingConfig& config) {
  const int m = std::max(config.oscillators, 1);
  Rng rng(stream_seed);
  oscillators_.reserve(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) {
    Oscillator osc;
    // Random arrival angle gives each oscillator its Doppler shift; the
    // ensemble approximates the Jakes U-shaped spectrum.
    const double arrival = rng.uniform(0.0, 2.0 * kPi);
    osc.omega = 2.0 * kPi * config.doppler_hz * std::cos(arrival);
    osc.phase_i = rng.uniform(0.0, 2.0 * kPi);
    osc.phase_q = rng.uniform(0.0, 2.0 * kPi);
    oscillators_.push_back(osc);
  }
  scale_ = std::sqrt(1.0 / static_cast<double>(m));
}

double JakesFader::gain_db(SimTime t) const {
  const double ts = t.to_seconds();
  double in_phase = 0.0;
  double quadrature = 0.0;
  for (const Oscillator& osc : oscillators_) {
    in_phase += std::cos(osc.omega * ts + osc.phase_i);
    quadrature += std::cos(osc.omega * ts + osc.phase_q);
  }
  in_phase *= scale_;
  quadrature *= scale_;
  // E[i^2 + q^2] = 1, so the envelope power is already the linear gain.
  const double power = in_phase * in_phase + quadrature * quadrature;
  if (power <= 0.0) return kMinGainDb;
  return std::max(10.0 * std::log10(power), kMinGainDb);
}

double FadingProcess::gain_db(NodeId a, NodeId b, SimTime t) const {
  if (!config_.enabled()) return 0.0;
  const std::uint64_t key = pair_stream_key(a, b);
  auto it = faders_.find(key);
  if (it == faders_.end()) {
    // First query for this pair: derive its private stream and keep the
    // fader. The seed depends only on (root seed, pair), never on how many
    // pairs were materialized before, so lookup order cannot change results.
    it = faders_
             .emplace(key, JakesFader(Rng::derive_stream(root_seed_, key),
                                      config_))
             .first;
  }
  return it->second.gain_db(t);
}

}  // namespace wimesh::radio
