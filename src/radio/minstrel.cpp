#include "wimesh/radio/minstrel.h"

#include "wimesh/common/assert.h"

namespace wimesh::radio {
namespace {

// Directed link key: (tx, rx) order matters — the two directions of a
// link can see asymmetric interference.
std::uint64_t directed_key(NodeId tx, NodeId rx) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rx));
}

}  // namespace

MinstrelLink::MinstrelLink(const RateTable* table, std::size_t floor_index,
                           RateAdaptConfig config)
    : table_(table), floor_(floor_index), config_(config) {
  WIMESH_ASSERT(table_ != nullptr);
  WIMESH_ASSERT(floor_ < table_->size());
  WIMESH_ASSERT(config_.probe_interval >= 2);
  WIMESH_ASSERT(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0);
  stats_.resize(table_->size() - floor_);
  best_ = floor_;
}

std::size_t MinstrelLink::recompute_best() const {
  std::size_t best = floor_;
  double best_tput = -1.0;
  for (std::size_t i = floor_; i < table_->size(); ++i) {
    const double tput = static_cast<double>(table_->entry(i).rate_mbps) *
                        stats_[i - floor_].ewma;
    // Strict '>' keeps ties on the lower (more robust) rate.
    if (tput > best_tput) {
      best_tput = tput;
      best = i;
    }
  }
  return best;
}

std::size_t MinstrelLink::pick_rate() {
  ++tx_count_;
  const std::size_t candidates = table_->size() - floor_;
  if (candidates <= 1) return floor_;
  if (tx_count_ % static_cast<std::uint64_t>(config_.probe_interval) == 0) {
    // Probe: next non-best candidate in round-robin order.
    for (std::size_t step = 0; step < candidates; ++step) {
      probe_cursor_ = (probe_cursor_ + 1) % candidates;
      if (floor_ + probe_cursor_ != best_) return floor_ + probe_cursor_;
    }
  }
  return best_;
}

bool MinstrelLink::on_result(std::size_t rate_index, bool success) {
  WIMESH_ASSERT(rate_index >= floor_ && rate_index < table_->size());
  RateStats& s = stats_[rate_index - floor_];
  ++s.attempts;
  if (success) ++s.successes;
  s.ewma = (1.0 - config_.ewma_alpha) * s.ewma +
           config_.ewma_alpha * (success ? 1.0 : 0.0);
  const std::size_t new_best = recompute_best();
  const bool changed = new_best != best_;
  best_ = new_best;
  return changed;
}

double MinstrelLink::ewma_success(std::size_t rate_index) const {
  WIMESH_ASSERT(rate_index >= floor_ && rate_index < table_->size());
  return stats_[rate_index - floor_].ewma;
}

std::uint64_t MinstrelLink::attempts(std::size_t rate_index) const {
  WIMESH_ASSERT(rate_index >= floor_ && rate_index < table_->size());
  return stats_[rate_index - floor_].attempts;
}

MinstrelLink& RateController::link(NodeId tx, NodeId rx) {
  const std::uint64_t key = directed_key(tx, rx);
  auto it = links_.find(key);
  if (it == links_.end()) {
    it = links_.emplace(key, MinstrelLink(table_, floor_, config_)).first;
  }
  return it->second;
}

}  // namespace wimesh::radio
