#include "wimesh/des/simulator.h"

#include "wimesh/trace/trace.h"

namespace wimesh {

EventHandle Simulator::schedule_at(SimTime t, EventFn fn) {
  WIMESH_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
  WIMESH_ASSERT(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return EventHandle{id};
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  if (handlers_.erase(h.id) > 0) cancelled_.insert(h.id);
}

void Simulator::execute_next() {
  const Entry e = queue_.top();
  queue_.pop();
  const auto cancelled_it = cancelled_.find(e.id);
  if (cancelled_it != cancelled_.end()) {
    cancelled_.erase(cancelled_it);
    return;
  }
  now_ = e.time;
  auto it = handlers_.find(e.id);
  WIMESH_ASSERT(it != handlers_.end());
  // Move the handler out before invoking: the handler may schedule new
  // events and rehash the map.
  EventFn fn = std::move(it->second);
  handlers_.erase(it);
  ++events_executed_;
  trace::event(trace::EventType::kDesDispatch, now_, -1,
               static_cast<std::int64_t>(e.id));
  fn();
}

void Simulator::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.top().time > horizon) break;
    execute_next();
  }
  if (now_ < horizon && !stop_requested_) now_ = horizon;
}

void Simulator::run_all() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) execute_next();
}

}  // namespace wimesh
