#include "wimesh/des/simulator.h"

#include <algorithm>

#include "wimesh/trace/trace.h"

namespace wimesh {

namespace detail {
namespace {

// Bucket-count bounds: the queue never shrinks below kMinBuckets (cheap
// fixed cost) and population thresholds of 2x / 0.5x trigger resizes far
// enough apart that an oscillating population cannot thrash.
constexpr std::size_t kMinBuckets = 16;

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

void CalendarQueue::push(const DesEntry& e) {
  if (count_ + 1 > 2 * buckets_.size()) resize(buckets_.size() * 2);
  const std::int64_t t = e.time.ns();
  std::vector<DesEntry>& bucket = buckets_[bucket_of(t)];
  bucket.insert(std::upper_bound(bucket.begin(), bucket.end(), e),
                e);
  if (count_ == 0 || t < cursor_top_ - width_) {
    // Keep the sweep invariant "no event precedes the cursor's region":
    // re-aim at this event when the queue was empty (the cursor may point
    // an arbitrary distance into the past or future) or when the event
    // lands before the region the cursor currently covers (possible for
    // out-of-order pushes before the first pop, where no now-barrier
    // orders them).
    cursor_ = bucket_of(t);
    cursor_top_ = (t / width_ + 1) * width_;
  }
  ++count_;
}

void CalendarQueue::locate_min() {
  WIMESH_ASSERT(count_ > 0);
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    const std::vector<DesEntry>& bucket = buckets_[cursor_];
    if (!bucket.empty() && bucket.front().time.ns() < cursor_top_) return;
    cursor_ = (cursor_ + 1) & (buckets_.size() - 1);
    cursor_top_ += width_;
  }
  // No event inside the current year: direct search for the global
  // minimum, then jump the cursor to its day.
  std::size_t best = buckets_.size();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    if (best == buckets_.size() ||
        buckets_[b].front() < buckets_[best].front()) {
      best = b;
    }
  }
  WIMESH_ASSERT(best < buckets_.size());
  const std::int64_t t = buckets_[best].front().time.ns();
  cursor_ = best;
  cursor_top_ = (t / width_ + 1) * width_;
}

DesEntry CalendarQueue::pop_min() {
  locate_min();
  std::vector<DesEntry>& bucket = buckets_[cursor_];
  const DesEntry e = bucket.front();
  bucket.erase(bucket.begin());
  --count_;
  if (count_ < buckets_.size() / 2 && buckets_.size() > kMinBuckets) {
    resize(buckets_.size() / 2);
  }
  return e;
}

SimTime CalendarQueue::min_time() {
  locate_min();
  return buckets_[cursor_].front().time;
}

void CalendarQueue::resize(std::size_t nbuckets) {
  std::vector<DesEntry> all;
  all.reserve(count_);
  for (std::vector<DesEntry>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  // Re-derive the bucket width from the live population's spread so each
  // day holds about one event. An empty or single-time population keeps a
  // 1 ns width (all equal-time events share one bucket regardless).
  std::int64_t lo = 0, hi = 0;
  if (!all.empty()) {
    lo = hi = all.front().time.ns();
    for (const DesEntry& e : all) {
      lo = std::min(lo, e.time.ns());
      hi = std::max(hi, e.time.ns());
    }
  }
  const std::int64_t span = hi - lo;
  width_ = std::max<std::int64_t>(
      1, span / static_cast<std::int64_t>(std::max<std::size_t>(all.size(), 1)));
  buckets_.assign(nbuckets, {});
  count_ = 0;
  // Reinsertion restores per-bucket sorted order; the cursor re-aims at
  // the first (minimum) entry pushed into the empty queue.
  std::sort(all.begin(), all.end());
  for (const DesEntry& e : all) push(e);
  if (count_ == 0) {
    cursor_ = 0;
    cursor_top_ = width_;
  }
}

}  // namespace detail

EventHandle Simulator::schedule_at(SimTime t, EventFn fn) {
  WIMESH_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
  WIMESH_ASSERT(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_push(detail::DesEntry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return EventHandle{id};
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  if (handlers_.erase(h.id) > 0) cancelled_.insert(h.id);
}

void Simulator::queue_push(const detail::DesEntry& e) {
  if (queue_kind_ == EventQueueKind::kCalendarQueue) {
    calendar_.push(e);
  } else {
    heap_.push(e);
  }
}

detail::DesEntry Simulator::queue_pop() {
  if (queue_kind_ == EventQueueKind::kCalendarQueue) {
    return calendar_.pop_min();
  }
  const detail::DesEntry e = heap_.top();
  heap_.pop();
  return e;
}

SimTime Simulator::queue_min_time() {
  return queue_kind_ == EventQueueKind::kCalendarQueue ? calendar_.min_time()
                                                       : heap_.top().time;
}

bool Simulator::queue_empty() const {
  return queue_kind_ == EventQueueKind::kCalendarQueue ? calendar_.empty()
                                                       : heap_.empty();
}

std::size_t Simulator::queue_size() const {
  return queue_kind_ == EventQueueKind::kCalendarQueue ? calendar_.size()
                                                       : heap_.size();
}

void Simulator::execute_next() {
  const detail::DesEntry e = queue_pop();
  const auto cancelled_it = cancelled_.find(e.id);
  if (cancelled_it != cancelled_.end()) {
    cancelled_.erase(cancelled_it);
    return;
  }
  now_ = e.time;
  auto it = handlers_.find(e.id);
  WIMESH_ASSERT(it != handlers_.end());
  // Move the handler out before invoking: the handler may schedule new
  // events and rehash the map.
  EventFn fn = std::move(it->second);
  handlers_.erase(it);
  ++events_executed_;
  trace::event(trace::EventType::kDesDispatch, now_, -1,
               static_cast<std::int64_t>(e.id));
  fn();
}

void Simulator::run_until(SimTime horizon) {
  stop_requested_ = false;
  while (!queue_empty() && !stop_requested_) {
    if (queue_min_time() > horizon) break;
    execute_next();
  }
  if (now_ < horizon && !stop_requested_) now_ = horizon;
}

void Simulator::run_all() {
  stop_requested_ = false;
  while (!queue_empty() && !stop_requested_) execute_next();
}

}  // namespace wimesh
