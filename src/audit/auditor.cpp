#include "wimesh/audit/auditor.h"

#include <algorithm>

#include "wimesh/common/strings.h"

namespace wimesh::audit {

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kBestEffortOverflow:
      return "best_effort_overflow";
    case DropReason::kMacQueueOverflow:
      return "mac_queue_overflow";
    case DropReason::kRetryExhausted:
      return "retry_exhausted";
    case DropReason::kNoRoute:
      return "no_route";
    case DropReason::kNoCapacity:
      return "no_capacity";
    case DropReason::kNodeDown:
      return "node_down";
    case DropReason::kScheduleRevoked:
      return "schedule_revoked";
    case DropReason::kPartitioned:
      return "partitioned";
  }
  return "unknown";
}

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kScheduleConflict:
      return "schedule_conflict";
    case ViolationKind::kSlotOverrun:
      return "slot_overrun";
    case ViolationKind::kUnscheduledLink:
      return "unscheduled_link";
    case ViolationKind::kPacketLeak:
      return "packet_leak";
    case ViolationKind::kDuplicateDelivery:
      return "duplicate_delivery";
    case ViolationKind::kDuplicateId:
      return "duplicate_id";
  }
  return "unknown";
}

std::uint64_t AuditReport::total_violations() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : violations) total += v;
  return total;
}

std::uint64_t AuditReport::waived_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t v : waived) total += v;
  return total;
}

std::uint64_t AuditReport::total_drops() const {
  std::uint64_t total = 0;
  for (std::uint64_t d : drops) total += d;
  return total;
}

std::string AuditReport::summary() const {
  if (!enabled) return "audit: disabled";
  std::string out = total_violations() == 0
                        ? "audit: ok"
                        : str_cat("audit: ", total_violations(),
                                  " violation(s)");
  for (std::size_t k = 0; k < kViolationKindCount; ++k) {
    if (violations[k] == 0) continue;
    out += str_cat(" ", violation_kind_name(static_cast<ViolationKind>(k)),
                   "=", violations[k]);
  }
  if (waived_total() > 0) out += str_cat(" waived=", waived_total());
  out += str_cat(" (packets: created=", packets_created,
                 " delivered=", packets_delivered,
                 " dropped=", packets_dropped,
                 " residual=", packets_residual, ")");
  return out;
}

InvariantAuditor::InvariantAuditor(const Simulator& sim, AuditConfig config)
    : sim_(sim), config_(config) {
  report_.enabled = true;
}

void InvariantAuditor::install_schedule(const LinkSet& links,
                                        const Graph& conflicts,
                                        const MeshSchedule& schedule,
                                        const FrameConfig& frame,
                                        SimTime guard) {
  WIMESH_ASSERT(conflicts.node_count() == links.count());
  WIMESH_ASSERT(schedule.link_count() == links.count());
  links_ = &links;
  conflicts_ = &conflicts;
  schedule_ = &schedule;
  frame_ = frame;
  guard_ = guard;
  schedule_installed_ = true;
  // Re-arming after a hot-swap: LinkIds are plan-relative, so in-flight
  // records from the old plan must not be checked against the new one.
  active_.clear();
}

void InvariantAuditor::waive_until(SimTime until) {
  if (until > waive_until_) waive_until_ = until;
}

void InvariantAuditor::record(ViolationKind kind, NodeId node, LinkId link,
                              std::uint64_t packet_id,
                              std::int64_t magnitude_ns, std::string detail) {
  if (sim_.now() < waive_until_) {
    // Inside a declared fault window: expected fallout, tallied apart.
    ++report_.waived[static_cast<std::size_t>(kind)];
    return;
  }
  ++report_.violations[static_cast<std::size_t>(kind)];
  if (config_.fail_fast) {
    WIMESH_ASSERT_MSG(false, str_cat("audit violation [",
                                     violation_kind_name(kind), "] ", detail)
                                 .c_str());
  }
  if (report_.records.size() < config_.max_records) {
    ViolationRecord r;
    r.kind = kind;
    r.time = sim_.now();
    r.node = node;
    r.link = link;
    r.packet_id = packet_id;
    r.magnitude_ns = magnitude_ns;
    r.detail = std::move(detail);
    report_.records.push_back(std::move(r));
  }
}

void InvariantAuditor::on_transmission_start(const WifiFrame& frame,
                                             SimTime end) {
  if (!schedule_installed_) return;
  // Attribute the frame to a scheduled link. A data frame a->b belongs to
  // link (a->b); the link-layer ACK it elicits travels b->a inside the same
  // minislot block, so it is charged to (a->b) as well. RTS/CTS never occur
  // in overlay mode (the overlay runs the MAC with rts_cts off).
  LinkId link = kInvalidLink;
  if (frame.type == WifiFrame::Type::kData) {
    link = links_->find(Link{frame.from, frame.to});
  } else if (frame.type == WifiFrame::Type::kAck) {
    link = links_->find(Link{frame.to, frame.from});
  } else {
    return;
  }
  if (link == kInvalidLink) {
    record(ViolationKind::kUnscheduledLink, frame.from, kInvalidLink,
           frame.packet.id, 0,
           str_cat("frame ", frame.from, "->", frame.to,
                   " on a link outside the scheduled link set"));
    return;
  }
  check_conflicts(link, frame.from, end);
  check_slot_window(link, frame.from, sim_.now(), end);
  active_.push_back(ActiveTx{link, frame.from, end});
}

void InvariantAuditor::check_conflicts(LinkId link, NodeId tx, SimTime end) {
  const SimTime now = sim_.now();
  // Drop finished transmissions first: a frame ending exactly now does not
  // overlap one starting now (zero propagation delay; the channel removes
  // its own record in the same order).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [now](const ActiveTx& t) {
                                 return t.end <= now;
                               }),
                active_.end());
  for (const ActiveTx& other : active_) {
    if (other.link != link && !conflicts_->has_edge(link, other.link)) {
      continue;
    }
    const SimTime overlap = std::min(end, other.end) - now;
    record(ViolationKind::kScheduleConflict, tx, link, 0, overlap.ns(),
           str_cat("links ", link, " and ", other.link,
                   " (nodes ", tx, ", ", other.tx,
                   ") airborne simultaneously for ", overlap.to_string()));
  }
}

void InvariantAuditor::check_slot_window(LinkId link, NodeId tx, SimTime start,
                                         SimTime end) {
  // The transmission must fit some grant of its link. Windows are nominal
  // (global-clock) minislot ranges; the start edge gets one guard time of
  // tolerance because a fast transmitter clock legitimately fires early
  // (the schedule's conflict-freedom absorbs up to guard/2 of skew per
  // node), while the end edge gets none — the overlay's release budget is
  // the block minus the guard, so exceeding the nominal block end means
  // the guard was undersized for the actual clock error.
  const std::vector<SlotRange> grants = schedule_->all_grants(link);
  if (grants.empty()) {
    record(ViolationKind::kUnscheduledLink, tx, link, 0, 0,
           str_cat("transmission on link ", link, " which holds no grant"));
    return;
  }
  const std::int64_t fi = frame_.frame_index(start);
  std::int64_t best_violation_ns = -1;
  for (const SlotRange& g : grants) {
    for (std::int64_t f = fi - 1; f <= fi + 1; ++f) {
      if (f < 0) continue;
      const SimTime block_start =
          frame_.frame_start(f) + frame_.data_slot_offset(g.start);
      const SimTime block_end =
          block_start + frame_.slot_duration() * g.length;
      const std::int64_t early = (block_start - guard_ - start).ns();
      const std::int64_t late = (end - block_end).ns();
      const std::int64_t violation = std::max<std::int64_t>(
          0, std::max(early, late));
      if (violation == 0) return;  // fits this window
      if (best_violation_ns < 0 || violation < best_violation_ns) {
        best_violation_ns = violation;
      }
    }
  }
  record(ViolationKind::kSlotOverrun, tx, link, 0, best_violation_ns,
         str_cat("node ", tx, " link ", link, " transmission [",
                 start.to_string(), ", ", end.to_string(),
                 "] overruns its granted block by ",
                 SimTime::nanoseconds(best_violation_ns).to_string()));
}

void InvariantAuditor::on_packet_created(const MacPacket& p) {
  ++report_.packets_created;
  const auto [it, inserted] = ledger_.try_emplace(p.id, std::uint8_t{0});
  if (!inserted) {
    record(ViolationKind::kDuplicateId, p.from, kInvalidLink, p.id, 0,
           str_cat("packet id ", p.id, " (flow ", p.flow_id,
                   ") created twice"));
  }
}

void InvariantAuditor::on_packet_delivered(const MacPacket& p, NodeId at) {
  auto& flags = ledger_[p.id];
  if (flags & kDelivered) {
    record(ViolationKind::kDuplicateDelivery, at, kInvalidLink, p.id, 0,
           str_cat("packet id ", p.id, " (flow ", p.flow_id,
                   ") delivered twice at node ", at));
  }
  flags |= kDelivered;
}

void InvariantAuditor::on_packet_dropped(const MacPacket& p,
                                         DropReason reason) {
  ++report_.drops[static_cast<std::size_t>(reason)];
  // A MAC-level drop can race ahead of a copy already forwarded (data
  // decoded, ACK lost, retries exhausted): the flags record both facts and
  // finalize() counts the packet once, with delivery taking precedence.
  ledger_[p.id] |= kDropped;
}

void InvariantAuditor::on_block_skipped(NodeId, LinkId) {
  ++report_.blocks_skipped;
}

void InvariantAuditor::finalize(std::uint64_t observed_residual) {
  std::uint64_t delivered = 0, dropped = 0, remaining = 0;
  for (const auto& [id, flags] : ledger_) {
    if (flags & kDelivered) {
      ++delivered;
    } else if (flags & kDropped) {
      ++dropped;
    } else {
      ++remaining;
    }
  }
  report_.packets_delivered = delivered;
  report_.packets_dropped = dropped;
  report_.packets_residual = remaining;
  // Conservation: every unaccounted packet must still be sitting in an
  // overlay queue, a MAC queue, or a MAC's in-service slot. (The observed
  // count can exceed the ledger's remainder — an in-doubt exchange whose
  // data arrived but whose ACK is pending is momentarily counted at both
  // ends — so only the deficit is a leak.)
  if (remaining > observed_residual) {
    const std::uint64_t leaked = remaining - observed_residual;
    record(ViolationKind::kPacketLeak, kInvalidNode, kInvalidLink, 0,
           static_cast<std::int64_t>(leaked),
           str_cat(leaked, " packet(s) neither delivered, dropped, nor "
                           "queued at simulation end (",
                   remaining, " unaccounted vs ", observed_residual,
                   " observed in queues)"));
  }
}

}  // namespace wimesh::audit
