#include "wimesh/exec/executor.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "wimesh/common/assert.h"

namespace wimesh::exec {

int effective_jobs(int requested, std::size_t count) {
  const int clamped = std::max(1, requested);
  if (count == 0) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(clamped), count));
}

namespace {

// One worker's job queue. The owner pops from the front; thieves take from
// the back, so an owner working down a cold stripe and a thief relieving it
// rarely contend on the same end.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::size_t> jobs;

  bool pop_front(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    *out = jobs.front();
    jobs.pop_front();
    return true;
  }

  bool steal_back(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return false;
    *out = jobs.back();
    jobs.pop_back();
    return true;
  }

  std::size_t approx_size() {
    std::lock_guard<std::mutex> lock(mutex);
    return jobs.size();
  }
};

}  // namespace

void run_indexed(int jobs, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  const int n_workers = effective_jobs(jobs, count);
  if (count == 0) return;
  if (n_workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Seed each worker with a contiguous stripe so cache-friendly neighbors
  // start together; stealing rebalances from there.
  std::vector<WorkerQueue> queues(static_cast<std::size_t>(n_workers));
  for (std::size_t i = 0; i < count; ++i) {
    queues[i * static_cast<std::size_t>(n_workers) / count].jobs.push_back(i);
  }

  std::atomic<std::size_t> remaining{count};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&](std::size_t self) {
    std::size_t job = 0;
    while (remaining.load(std::memory_order_acquire) > 0) {
      bool got = queues[self].pop_front(&job);
      if (!got) {
        // Steal from the victim with the most queued work; ties go to the
        // lowest index so the scan is deterministic.
        std::size_t victim = self;
        std::size_t best = 0;
        for (std::size_t v = 0; v < queues.size(); ++v) {
          if (v == self) continue;
          const std::size_t size = queues[v].approx_size();
          if (size > best) {
            best = size;
            victim = v;
          }
        }
        got = victim != self && queues[victim].steal_back(&job);
      }
      if (!got) {
        // Nothing queued anywhere; in-flight jobs may still fail over or
        // finish. Yield until `remaining` settles.
        std::this_thread::yield();
        continue;
      }
      try {
        fn(job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      remaining.fetch_sub(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_workers - 1));
  for (int t = 1; t < n_workers; ++t) {
    threads.emplace_back(worker, static_cast<std::size_t>(t));
  }
  worker(0);
  for (std::thread& t : threads) t.join();
  WIMESH_ASSERT(remaining.load() == 0);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wimesh::exec
