#include "wimesh/traffic/sources.h"

#include <algorithm>
#include <stdexcept>

#include "wimesh/common/strings.h"

namespace wimesh {

VoipCodec VoipCodec::g711() {
  return VoipCodec{"G.711", 160, SimTime::milliseconds(20)};
}
VoipCodec VoipCodec::g729() {
  return VoipCodec{"G.729", 20, SimTime::milliseconds(20)};
}
VoipCodec VoipCodec::g723() {
  return VoipCodec{"G.723.1", 24, SimTime::milliseconds(30)};
}

void TrafficSource::emit_packet(std::size_t bytes) {
  MacPacket p;
  // Ids only need to tell packets apart (MAC duplicate-retry detection),
  // so (flow, sequence) suffices: flow ids are unique per simulation and
  // each flow has one source. Keeping the counter per-source — instead of
  // a process-wide static — makes ids a pure function of the run, which
  // the batch runner's cross-thread determinism guarantee depends on.
  p.id = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(flow_id_))
          << 32) |
         (emitted_ + 1);
  p.flow_id = flow_id_;
  p.bytes = bytes;
  p.created_at = sim_.now();
  ++emitted_;
  emit_(std::move(p));
}

CbrSource::CbrSource(Simulator& sim, int flow_id, EmitFn emit,
                     std::size_t bytes, SimTime interval, SimTime phase)
    : TrafficSource(sim, flow_id, std::move(emit)),
      bytes_(bytes),
      interval_(interval),
      phase_(phase) {
  WIMESH_ASSERT(bytes > 0);
  WIMESH_ASSERT(interval > SimTime::zero());
  WIMESH_ASSERT(phase >= SimTime::zero());
}

std::unique_ptr<CbrSource> CbrSource::voip(Simulator& sim, int flow_id,
                                           EmitFn emit, const VoipCodec& codec,
                                           SimTime phase) {
  return std::make_unique<CbrSource>(sim, flow_id, std::move(emit),
                                     codec.packet_bytes(),
                                     codec.packet_interval, phase);
}

void CbrSource::start(SimTime start, SimTime stop) {
  sim_.schedule_at(start + phase_, [this, stop] { tick(stop); });
}

void CbrSource::tick(SimTime stop) {
  if (sim_.now() >= stop) return;
  emit_packet(bytes_);
  sim_.schedule_in(interval_, [this, stop] { tick(stop); });
}

PoissonSource::PoissonSource(Simulator& sim, int flow_id, EmitFn emit,
                             std::size_t bytes, double rate_bps, Rng rng)
    : TrafficSource(sim, flow_id, std::move(emit)),
      bytes_(bytes),
      mean_interarrival_s_(static_cast<double>(bytes) * 8.0 / rate_bps),
      rng_(rng) {
  WIMESH_ASSERT(bytes > 0);
  WIMESH_ASSERT(rate_bps > 0);
}

void PoissonSource::start(SimTime start, SimTime stop) {
  sim_.schedule_at(start, [this, stop] { schedule_next(stop); });
}

void PoissonSource::schedule_next(SimTime stop) {
  const SimTime gap =
      SimTime::from_seconds(rng_.exponential(mean_interarrival_s_));
  if (sim_.now() + gap >= stop) return;
  sim_.schedule_in(gap, [this, stop] {
    emit_packet(bytes_);
    schedule_next(stop);
  });
}

VbrVideoSource::VbrVideoSource(Simulator& sim, int flow_id, EmitFn emit,
                               Profile profile, Rng rng)
    : TrafficSource(sim, flow_id, std::move(emit)),
      profile_(profile),
      rng_(rng) {
  WIMESH_ASSERT(profile.frame_interval > SimTime::zero());
  WIMESH_ASSERT(profile.mean_frame_bytes > 0);
  WIMESH_ASSERT(profile.gop >= 1);
  WIMESH_ASSERT(profile.mtu_bytes > 0);
}

double VbrVideoSource::mean_rate_bps() const {
  // Average frame size across one GOP: (intra + (gop-1) * inter) / gop,
  // where the configured mean refers to inter (P) frames.
  const double inter = static_cast<double>(profile_.mean_frame_bytes);
  const double per_gop =
      inter * profile_.intra_scale + inter * (profile_.gop - 1);
  const double mean_frame = per_gop / profile_.gop;
  return mean_frame * 8.0 / profile_.frame_interval.to_seconds();
}

void VbrVideoSource::start(SimTime start, SimTime stop) {
  sim_.schedule_at(start, [this, stop] { tick(stop); });
}

void VbrVideoSource::tick(SimTime stop) {
  if (sim_.now() >= stop) return;
  const bool intra = frame_index_ % profile_.gop == 0;
  ++frame_index_;
  double size = rng_.normal(
      static_cast<double>(profile_.mean_frame_bytes),
      profile_.size_stddev_factor *
          static_cast<double>(profile_.mean_frame_bytes));
  if (intra) size *= profile_.intra_scale;
  size = std::max(size, 200.0);  // floor: headers + minimal slice
  auto remaining = static_cast<std::size_t>(size);
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, profile_.mtu_bytes);
    emit_packet(chunk);
    remaining -= chunk;
  }
  sim_.schedule_in(profile_.frame_interval, [this, stop] { tick(stop); });
}

TraceReplaySource::TraceReplaySource(Simulator& sim, int flow_id, EmitFn emit,
                                     std::vector<Entry> trace, bool loop)
    : TrafficSource(sim, flow_id, std::move(emit)),
      trace_(std::move(trace)),
      loop_(loop) {
  WIMESH_ASSERT(!trace_.empty());
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    WIMESH_ASSERT_MSG(trace_[i].offset >= trace_[i - 1].offset,
                      "trace offsets must be non-decreasing");
  }
}

Expected<std::vector<TraceReplaySource::Entry>> TraceReplaySource::parse(
    const std::string& text) {
  std::vector<Entry> out;
  SimTime prev = SimTime::zero();
  std::size_t line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    // Trim whitespace.
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    std::size_t begin = 0;
    while (begin < line.size() &&
           (line[begin] == ' ' || line[begin] == '\t')) {
      ++begin;
    }
    line = line.substr(begin);
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      return make_error(str_cat("line ", line_no, ": expected 'us,bytes'"));
    }
    try {
      const long long us = std::stoll(line.substr(0, comma));
      const long long bytes = std::stoll(line.substr(comma + 1));
      if (us < 0 || bytes <= 0) {
        return make_error(str_cat("line ", line_no, ": values out of range"));
      }
      Entry e{SimTime::microseconds(us), static_cast<std::size_t>(bytes)};
      if (e.offset < prev) {
        return make_error(
            str_cat("line ", line_no, ": offsets must be non-decreasing"));
      }
      prev = e.offset;
      out.push_back(e);
    } catch (const std::exception&) {
      return make_error(str_cat("line ", line_no, ": parse failure"));
    }
  }
  if (out.empty()) return make_error("trace is empty");
  return out;
}

void TraceReplaySource::start(SimTime start, SimTime stop) {
  emit_at(0, start, stop);
}

void TraceReplaySource::emit_at(std::size_t index, SimTime base,
                                SimTime stop) {
  if (index >= trace_.size()) {
    if (!loop_) return;
    // Restart the trace after its own span (plus one entry gap to avoid a
    // zero-length loop when the trace has a single entry at offset 0).
    SimTime span = trace_.back().offset;
    if (span == SimTime::zero()) span = SimTime::milliseconds(1);
    emit_at(0, base + span, stop);
    return;
  }
  const SimTime when = base + trace_[index].offset;
  if (when >= stop) return;
  sim_.schedule_at(when, [this, index, base, stop] {
    emit_packet(trace_[index].bytes);
    emit_at(index + 1, base, stop);
  });
}

OnOffSource::OnOffSource(Simulator& sim, int flow_id, EmitFn emit,
                         std::size_t bytes, double peak_rate_bps,
                         SimTime mean_on, SimTime mean_off, Rng rng)
    : TrafficSource(sim, flow_id, std::move(emit)),
      bytes_(bytes),
      packet_interval_(SimTime::from_seconds(static_cast<double>(bytes) *
                                             8.0 / peak_rate_bps)),
      mean_on_(mean_on),
      mean_off_(mean_off),
      rng_(rng) {
  WIMESH_ASSERT(bytes > 0);
  WIMESH_ASSERT(peak_rate_bps > 0);
  WIMESH_ASSERT(mean_on > SimTime::zero() && mean_off > SimTime::zero());
}

void OnOffSource::start(SimTime start, SimTime stop) {
  sim_.schedule_at(start, [this, stop] { enter_off(stop); });
}

void OnOffSource::enter_on(SimTime stop) {
  if (sim_.now() >= stop) return;
  on_ = true;
  on_until_ = sim_.now() +
              SimTime::from_seconds(rng_.exponential(mean_on_.to_seconds()));
  tick(stop);
}

void OnOffSource::enter_off(SimTime stop) {
  if (sim_.now() >= stop) return;
  on_ = false;
  const SimTime off =
      SimTime::from_seconds(rng_.exponential(mean_off_.to_seconds()));
  sim_.schedule_in(off, [this, stop] { enter_on(stop); });
}

void OnOffSource::tick(SimTime stop) {
  if (sim_.now() >= stop) return;
  if (sim_.now() >= on_until_) {
    enter_off(stop);
    return;
  }
  emit_packet(bytes_);
  sim_.schedule_in(packet_interval_, [this, stop] { tick(stop); });
}

}  // namespace wimesh
