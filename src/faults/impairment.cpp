#include "wimesh/faults/impairment.h"

#include <algorithm>

namespace wimesh::faults {

std::uint64_t LinkImpairment::pair_key(NodeId a, NodeId b) {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

void LinkImpairment::add_burst(NodeId a, NodeId b, SimTime from, SimTime until,
                               GilbertElliottParams params) {
  WIMESH_ASSERT(from < until);
  Burst burst;
  burst.pair = pair_key(a, b);
  burst.from = from;
  burst.until = until;
  burst.params = params;
  bursts_.push_back(burst);
}

void LinkImpairment::set_link_down(NodeId a, NodeId b, bool down) {
  const std::uint64_t key = pair_key(a, b);
  const auto it = std::find(down_pairs_.begin(), down_pairs_.end(), key);
  if (down && it == down_pairs_.end()) down_pairs_.push_back(key);
  if (!down && it != down_pairs_.end()) down_pairs_.erase(it);
}

bool LinkImpairment::link_down(NodeId a, NodeId b) const {
  return std::find(down_pairs_.begin(), down_pairs_.end(), pair_key(a, b)) !=
         down_pairs_.end();
}

bool LinkImpairment::corrupts(NodeId tx, NodeId rx, SimTime now) {
  const std::uint64_t key = pair_key(tx, rx);
  if (std::find(down_pairs_.begin(), down_pairs_.end(), key) !=
      down_pairs_.end()) {
    return true;
  }
  for (Burst& burst : bursts_) {
    if (burst.pair != key || now < burst.from || now >= burst.until) continue;
    // One chain step per delivery attempt, then the state's PER.
    if (burst.bad) {
      if (rng_.chance(burst.params.p_bad_to_good)) burst.bad = false;
    } else {
      if (rng_.chance(burst.params.p_good_to_bad)) burst.bad = true;
    }
    const double per =
        burst.bad ? burst.params.per_bad : burst.params.per_good;
    if (per > 0.0 && rng_.chance(per)) return true;
  }
  return false;
}

}  // namespace wimesh::faults
