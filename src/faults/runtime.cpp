#include "wimesh/faults/runtime.h"

#include <algorithm>

#include "wimesh/common/log.h"
#include "wimesh/common/strings.h"
#include "wimesh/trace/trace.h"

namespace wimesh::faults {

namespace {

// Degradation rank: higher sheds first. Video-class reservations (rtPS-
// style) rank below VoIP (UGS-style); within a class the newest flow
// (highest id) goes first. This is the documented degradation order the
// recovery-invariant tests pin down.
std::pair<int, int> shed_rank(const FlowSpec& spec) {
  const int class_rank = spec.shape == TrafficShape::kVbrVideo ? 1 : 0;
  return {class_rank, spec.id};
}

}  // namespace

FaultRuntime::FaultRuntime(Simulator& sim, FaultPlan plan,
                           const Topology& topology,
                           PlannerInputs planner_inputs,
                           std::vector<FlowSpec> flows,
                           const MeshPlan* initial_plan, bool tdma,
                           WifiChannel& channel, SyncProtocol* sync,
                           audit::InvariantAuditor* auditor, Rng rng,
                           Callbacks callbacks)
    : sim_(sim),
      plan_(std::move(plan)),
      topology_(topology),
      inputs_(std::move(planner_inputs)),
      flows_(std::move(flows)),
      tdma_(tdma),
      channel_(channel),
      sync_(sync),
      auditor_(auditor),
      impairment_(rng),
      callbacks_(std::move(callbacks)),
      alive_(static_cast<std::size_t>(topology.node_count()), 1),
      failed_masters_(static_cast<std::size_t>(topology.node_count()), 0),
      current_plan_(initial_plan),
      island_of_node_(static_cast<std::size_t>(topology.node_count()), 0) {
  WIMESH_ASSERT(initial_plan != nullptr);
  report_.enabled = plan_.enabled();
}

void FaultRuntime::start() {
  if (!plan_.enabled()) return;
  channel_.set_impairment(&impairment_);
  for (const FaultEvent& event : plan_.events) {
    if (event.kind == FaultKind::kLinkBurst) {
      // The burst window is baked into the impairment; the scheduled event
      // below only does the bookkeeping (count + audit waive).
      impairment_.add_burst(event.link_a, event.link_b, event.at, event.until,
                            event.ge);
    }
    sim_.schedule_at(event.at, [this, event] { apply(event); });
  }
}

void FaultRuntime::waive(SimTime until) {
  if (auditor_) auditor_->waive_until(until);
}

void FaultRuntime::apply(const FaultEvent& event) {
  const SimTime now = sim_.now();
  const SimTime frame = inputs_.emulation.frame.frame_duration;
  ++report_.events_applied;
  trace::event(trace::EventType::kFaultApplied, now, event.node,
               static_cast<std::int64_t>(event.kind));
  switch (event.kind) {
    case FaultKind::kNodeCrash: {
      WIMESH_ASSERT(event.node >= 0 && event.node < topology_.node_count());
      const auto idx = static_cast<std::size_t>(event.node);
      if (alive_[idx] == 0) return;  // already down
      alive_[idx] = 0;
      channel_.set_node_up(event.node, false);
      if (callbacks_.node_up_changed) {
        callbacks_.node_up_changed(event.node, false);
      }
      if (sync_ && sync_->master() == event.node) {
        failed_masters_[idx] = 1;
        sync_->fail_master();
      }
      open_outages_through(event.node, now);
      waive(now + plan_.detection_delay + frame);
      schedule_recovery(now);
      break;
    }
    case FaultKind::kNodeRecover: {
      WIMESH_ASSERT(event.node >= 0 && event.node < topology_.node_count());
      const auto idx = static_cast<std::size_t>(event.node);
      if (alive_[idx] != 0) return;
      alive_[idx] = 1;
      channel_.set_node_up(event.node, true);
      if (callbacks_.node_up_changed) {
        callbacks_.node_up_changed(event.node, true);
      }
      waive(now + plan_.detection_delay + frame);
      schedule_recovery(now);
      break;
    }
    case FaultKind::kMasterFail: {
      if (sync_) {
        failed_masters_[static_cast<std::size_t>(sync_->master())] = 1;
        sync_->fail_master();
      }
      waive(now + plan_.detection_delay + frame);
      schedule_recovery(now);
      break;
    }
    case FaultKind::kLinkDown: {
      impairment_.set_link_down(event.link_a, event.link_b, true);
      open_outages_on_link(event.link_a, event.link_b, now);
      waive(now + plan_.detection_delay + frame);
      schedule_recovery(now);
      break;
    }
    case FaultKind::kLinkUp: {
      impairment_.set_link_down(event.link_a, event.link_b, false);
      waive(now + plan_.detection_delay + frame);
      schedule_recovery(now);
      break;
    }
    case FaultKind::kLinkBurst: {
      // Already registered with the impairment; retries during the burst
      // can push transmissions past their block, so waive through it.
      waive(event.until + frame);
      break;
    }
    case FaultKind::kClockStep: {
      WIMESH_ASSERT(event.node >= 0 && event.node < topology_.node_count());
      if (sync_) {
        sync_->step_clock(event.node, event.step);
        // The next resync wave re-absorbs the step.
        waive(now + sync_->config().resync_interval + frame);
      }
      break;
    }
  }
}

void FaultRuntime::schedule_recovery(SimTime fault_at) {
  report_.last_fault_at = fault_at;
  sim_.schedule_at(fault_at + plan_.detection_delay,
                   [this, fault_at] { run_recovery(fault_at); });
}

Topology FaultRuntime::build_survivors() const {
  Topology survivors;
  survivors.positions = topology_.positions;
  survivors.graph.resize(topology_.node_count());
  for (EdgeId e = 0; e < topology_.graph.edge_count(); ++e) {
    const Graph::Edge& edge = topology_.graph.edge(e);
    if (alive_[static_cast<std::size_t>(edge.u)] == 0) continue;
    if (alive_[static_cast<std::size_t>(edge.v)] == 0) continue;
    if (impairment_.link_down(edge.u, edge.v)) continue;
    survivors.graph.add_edge(edge.u, edge.v);
  }
  return survivors;
}

std::vector<int> FaultRuntime::decompose_islands(const Topology& survivors) {
  std::vector<int> prev = island_of_node_;
  const auto n = static_cast<std::size_t>(topology_.node_count());
  island_of_node_.assign(n, -1);
  islands_ = 0;
  int alive_count = 0;
  // Components in ascending-NodeId seed order, so island indices (and the
  // zone partition derived from them) are deterministic.
  for (NodeId s = 0; s < topology_.node_count(); ++s) {
    if (alive_[static_cast<std::size_t>(s)] == 0) continue;
    ++alive_count;
    if (island_of_node_[static_cast<std::size_t>(s)] >= 0) continue;
    island_of_node_[static_cast<std::size_t>(s)] = islands_;
    std::vector<NodeId> queue{s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId v : survivors.graph.neighbors(queue[head])) {
        if (island_of_node_[static_cast<std::size_t>(v)] >= 0) continue;
        island_of_node_[static_cast<std::size_t>(v)] = islands_;
        queue.push_back(v);
      }
    }
    ++islands_;
  }
  if (islands_ == 0) islands_ = 1;  // everything dead; degenerate but sane

  // Flows whose endpoints survive on opposite sides of a cut are severed:
  // excluded from planning and typed kPartitioned at the drop sites, never
  // silently broken.
  severed_ids_.clear();
  const SimTime now = sim_.now();
  for (const FlowSpec& spec : flows_) {
    if (alive_[static_cast<std::size_t>(spec.src)] == 0) continue;
    if (alive_[static_cast<std::size_t>(spec.dst)] == 0) continue;
    if (island_of_node_[static_cast<std::size_t>(spec.src)] ==
        island_of_node_[static_cast<std::size_t>(spec.dst)]) {
      continue;
    }
    severed_ids_.insert(spec.id);
    if (spec.service == ServiceClass::kGuaranteed) {
      ever_severed_.insert(spec.id);
      open_outage(spec.id, now);
      const auto it = open_outage_.find(spec.id);
      if (it != open_outage_.end()) {
        report_.outages[it->second].partitioned = true;
      }
    }
  }
  report_.max_islands = std::max(report_.max_islands, islands_);
  report_.flows_partitioned = static_cast<int>(ever_severed_.size());
  trace::event(trace::EventType::kIslandsFormed, now, -1, islands_,
               alive_count, static_cast<std::int64_t>(severed_ids_.size()));
  return prev;
}

std::vector<NodeId> FaultRuntime::elect_island_masters() const {
  std::vector<NodeId> lowest_healthy(static_cast<std::size_t>(islands_),
                                     kInvalidNode);
  std::vector<NodeId> lowest_alive(static_cast<std::size_t>(islands_),
                                   kInvalidNode);
  for (NodeId i = 0; i < topology_.node_count(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (alive_[idx] == 0) continue;
    const auto island = static_cast<std::size_t>(island_of_node_[idx]);
    if (lowest_alive[island] == kInvalidNode) lowest_alive[island] = i;
    if (failed_masters_[idx] == 0 &&
        lowest_healthy[island] == kInvalidNode) {
      lowest_healthy[island] = i;
    }
  }
  std::vector<NodeId> masters(static_cast<std::size_t>(islands_),
                              kInvalidNode);
  for (std::size_t k = 0; k < masters.size(); ++k) {
    masters[k] = lowest_healthy[k] != kInvalidNode ? lowest_healthy[k]
                                                   : lowest_alive[k];
  }
  // A live, healthy current master keeps its island (no gratuitous
  // failover when the fault was elsewhere).
  if (sync_ != nullptr && sync_->master_alive()) {
    const NodeId master = sync_->master();
    const auto idx = static_cast<std::size_t>(master);
    if (alive_[idx] != 0 && failed_masters_[idx] == 0) {
      masters[static_cast<std::size_t>(island_of_node_[idx])] = master;
    }
  }
  return masters;
}

void FaultRuntime::run_recovery(SimTime fault_at) {
  trace::event(trace::EventType::kRecoveryStart, sim_.now(), -1,
               static_cast<std::int64_t>(report_.events_applied));
  // The surviving topology and its island decomposition feed both the sync
  // forest and the schedule repair.
  const Topology survivors = build_survivors();
  const int prev_islands = islands_;
  const std::vector<int> prev_island_of_node = decompose_islands(survivors);

  // Sync first: the repaired schedule's guard must cover the clock error
  // bound of the forest the mesh will actually run on.
  if (sync_) {
    const NodeId master = sync_->master();
    const bool master_dead =
        !sync_->master_alive() ||
        alive_[static_cast<std::size_t>(master)] == 0;
    if (master_dead) {
      failed_masters_[static_cast<std::size_t>(master)] = 1;
    }
    island_masters_ = elect_island_masters();
    bool electable = false;
    for (const NodeId m : island_masters_) electable |= m != kInvalidNode;
    if (!electable ||
        (islands_ == 1 && island_masters_[0] == kInvalidNode)) {
      log_warn("faults", "no surviving sync master candidate");
      return;
    }
    if (islands_ == 1 && master_dead &&
        failed_masters_[static_cast<std::size_t>(island_masters_[0])] != 0) {
      // Single island and every survivor has already failed as master:
      // keep the pre-partition behavior of giving up rather than
      // re-rooting at a known-bad beacon process.
      log_warn("faults", "no surviving sync master candidate");
      return;
    }
    // Islands whose every node is a failed master get no root at all;
    // drop them from the forest (their nodes free-run, like unreachable
    // ones) rather than re-rooting at a dead beacon process.
    std::vector<NodeId> roots;
    for (std::size_t k = 0; k < island_masters_.size(); ++k) {
      const NodeId m = island_masters_[k];
      if (m == kInvalidNode) continue;
      if (failed_masters_[static_cast<std::size_t>(m)] != 0) continue;
      roots.push_back(m);
      trace::event(trace::EventType::kIslandMaster, sim_.now(), m,
                   static_cast<std::int64_t>(k),
                   std::count(island_of_node_.begin(), island_of_node_.end(),
                              static_cast<int>(k)));
    }
    if (roots.empty()) {
      log_warn("faults", "no surviving sync master candidate");
      return;
    }
    sync_->re_root_forest(roots, alive_);
    if (master_dead) ++report_.failovers;
    // Re-dimension the guard for the new forest depth. Growing is always
    // safe; shrinking mid-run would invalidate the analysis behind grants
    // already queued, so the guard is monotone within a run.
    const SimTime needed =
        sync_->config().recommended_guard(sync_->max_tree_depth());
    if (needed > inputs_.emulation.guard_time) {
      inputs_.emulation.guard_time = needed;
    }
  } else {
    island_masters_ = elect_island_masters();
  }
  if (islands_ == 1 && prev_islands > 1) {
    ++report_.heals;
    trace::event(trace::EventType::kIslandsHealed, sim_.now(), -1,
                 prev_islands,
                 static_cast<std::int64_t>(ever_severed_.size()));
  }
  if (tdma_) {
    repair_schedule(fault_at, survivors, prev_islands, prev_island_of_node);
  }
}

void FaultRuntime::repair_schedule(SimTime fault_at, const Topology& survivors,
                                   int prev_islands,
                                   const std::vector<int>& prev_island_of_node) {
  const SimTime now = sim_.now();
  // Wall clock measures the re-plan cost; the virtual range spans fault to
  // repaired-plan activation, i.e. exactly report_.repair_latency.
  trace::Span span(trace::SpanName::kFaultRecovery, now);

  // Candidate flows: declared flows whose endpoints are alive and in the
  // same island (equivalently: mutually reachable over the surviving
  // topology). The rest are casualties, not degradation choices.
  std::vector<FlowSpec> candidates;
  for (const FlowSpec& spec : flows_) {
    if (alive_[static_cast<std::size_t>(spec.src)] == 0) continue;
    if (alive_[static_cast<std::size_t>(spec.dst)] == 0) continue;
    if (island_of_node_[static_cast<std::size_t>(spec.src)] !=
        island_of_node_[static_cast<std::size_t>(spec.dst)]) {
      continue;
    }
    candidates.push_back(spec);
  }

  const QosPlanner planner(
      survivors, RadioModel(inputs_.comm_range, inputs_.interference_range),
      inputs_.emulation, inputs_.phy, inputs_.routing);

  // Islands are fault-induced zones: a split mesh plans each island
  // independently (in parallel) with the zones border pass resolving
  // cross-island interference, and the first post-heal plan re-runs the
  // same two-phase merge over the pre-heal membership to compose one
  // conflict-free schedule. A connected mesh with no heal pending keeps
  // the exact pre-partition global planning path.
  zones::ZoneOptions island_zones;
  const zones::ZoneOptions* zoned = nullptr;
  if (islands_ > 1 || (islands_ == 1 && prev_islands > 1)) {
    const bool healing = islands_ == 1 && prev_islands > 1;
    const int zone_count = healing ? prev_islands : islands_;
    const std::vector<int>& membership =
        healing ? prev_island_of_node : island_of_node_;
    island_zones.zone_count = zone_count;
    island_zones.jobs = zone_count;
    island_zones.explicit_zone_of_node = membership;
    // Dead nodes (and, on heal, nodes that recovered after the split) have
    // no island of their own; park them in zone 0 — the border pass owns
    // conflict-freedom across zone boundaries regardless of placement.
    for (int& z : island_zones.explicit_zone_of_node) {
      if (z < 0 || z >= zone_count) z = 0;
    }
    zoned = &island_zones;
  }

  // Degradation loop: shed one guaranteed flow per infeasible attempt —
  // video before VoIP, newest first — until the survivors fit.
  std::vector<int> shed_ids;
  Expected<MeshPlan> repaired = make_error("unplanned");
  for (;;) {
    repaired = planner.plan(candidates, inputs_.scheduler, inputs_.ilp,
                            PlanObjective::kMinimizeSlots, zoned);
    if (repaired.has_value()) break;
    auto victim = candidates.end();
    for (auto it = candidates.begin(); it != candidates.end(); ++it) {
      if (it->service != ServiceClass::kGuaranteed) continue;
      if (victim == candidates.end() ||
          shed_rank(*it) > shed_rank(*victim)) {
        victim = it;
      }
    }
    if (victim == candidates.end()) {
      log_warn("faults",
               str_cat("schedule repair infeasible even with no guaranteed "
                       "flows: ",
                       repaired.error()));
      return;
    }
    shed_ids.push_back(victim->id);
    candidates.erase(victim);
  }

  repaired_plans_.push_back(std::move(*repaired));
  current_plan_ = &repaired_plans_.back();

  const FrameConfig& frame = inputs_.emulation.frame;
  Deployment deployment;
  deployment.plan = current_plan_;
  deployment.guard = inputs_.emulation.guard_time;
  deployment.activation_frame = frame.frame_index(now) + 1;
  deployment.activation_time = frame.frame_start(deployment.activation_frame);
  deployment.shed_flow_ids = shed_ids;

  ++report_.repairs;
  report_.last_repair_at = deployment.activation_time;
  report_.repair_latency = deployment.activation_time - fault_at;
  span.set_virtual_range(fault_at, deployment.activation_time);
  trace::event(trace::EventType::kScheduleRepaired, now, -1, report_.repairs,
               static_cast<std::int64_t>(shed_ids.size()),
               deployment.activation_frame);

  RepairRecord repair;
  repair.at = fault_at;
  repair.activation = deployment.activation_time;
  repair.islands = islands_;
  repair.masters = island_masters_;
  repair.flows_planned = static_cast<int>(current_plan_->guaranteed.size());
  for (const FlowSpec& spec : flows_) {
    if (spec.service == ServiceClass::kGuaranteed &&
        severed_ids_.count(spec.id) != 0) {
      ++repair.flows_severed;
    }
  }
  report_.repair_history.push_back(std::move(repair));

  for (int id : shed_ids) {
    open_outage(id, now);
    const auto it = open_outage_.find(id);
    if (it != open_outage_.end()) {
      report_.outages[it->second].shed = true;
      open_outage_.erase(it);  // residual deliveries must not "restore" it
    }
  }
  // A flow the new plan re-admits after an earlier shed (node recovery)
  // gets its outage window re-opened: service genuinely resumes.
  for (const FlowPlan& fp : current_plan_->guaranteed) {
    for (std::size_t i = 0; i < report_.outages.size(); ++i) {
      FlowOutageRecord& rec = report_.outages[i];
      if (rec.flow_id != fp.spec.id || rec.restored() || !rec.shed) continue;
      rec.shed = false;
      open_outage_[rec.flow_id] = i;
    }
  }

  // Violations across the swap transient (old-plan frames still in flight
  // while the monitors re-arm) are expected fallout.
  waive(deployment.activation_time + frame.frame_duration);
  if (callbacks_.deploy) callbacks_.deploy(deployment);
}

void FaultRuntime::open_outages_through(NodeId node, SimTime now) {
  for (const FlowPlan& fp : current_plan_->guaranteed) {
    if (std::find(fp.node_path.begin(), fp.node_path.end(), node) !=
        fp.node_path.end()) {
      open_outage(fp.spec.id, now);
    }
  }
}

void FaultRuntime::open_outages_on_link(NodeId a, NodeId b, SimTime now) {
  for (const FlowPlan& fp : current_plan_->guaranteed) {
    for (std::size_t i = 0; i + 1 < fp.node_path.size(); ++i) {
      const NodeId u = fp.node_path[i];
      const NodeId v = fp.node_path[i + 1];
      if ((u == a && v == b) || (u == b && v == a)) {
        open_outage(fp.spec.id, now);
        break;
      }
    }
  }
}

void FaultRuntime::open_outage(int flow_id, SimTime now) {
  if (open_outage_.count(flow_id) != 0) return;
  // Re-interruption of a flow that already has a closed record opens a new
  // one; per-flow outage is the sum over records in the report.
  FlowOutageRecord rec;
  rec.flow_id = flow_id;
  rec.interrupted_at = now;
  const auto it = last_delivery_.find(flow_id);
  if (it != last_delivery_.end()) rec.last_delivery_before = it->second;
  open_outage_[flow_id] = report_.outages.size();
  report_.outages.push_back(rec);
}

void FaultRuntime::on_flow_delivered(int flow_id) {
  const SimTime now = sim_.now();
  last_delivery_[flow_id] = now;
  const auto it = open_outage_.find(flow_id);
  if (it == open_outage_.end()) return;
  FlowOutageRecord& rec = report_.outages[it->second];
  rec.restored_at = now;
  rec.outage = now - rec.interrupted_at;
  open_outage_.erase(it);
}

FaultReport FaultRuntime::take_report(SimTime end) {
  for (FlowOutageRecord& rec : report_.outages) {
    if (!rec.restored()) rec.outage = end - rec.interrupted_at;
  }
  open_outage_.clear();

  int preserved = 0, guaranteed_total = 0;
  for (const FlowSpec& spec : flows_) {
    if (spec.service != ServiceClass::kGuaranteed) continue;
    ++guaranteed_total;
    if (current_plan_->find_flow(spec.id) != nullptr &&
        alive_[static_cast<std::size_t>(spec.src)] != 0 &&
        alive_[static_cast<std::size_t>(spec.dst)] != 0) {
      ++preserved;
    }
  }
  report_.flows_preserved = preserved;
  report_.flows_shed = guaranteed_total - preserved;

  SimTime worst{};
  for (const FlowOutageRecord& rec : report_.outages) {
    if (rec.restored() && !rec.shed && rec.outage > worst) {
      worst = rec.outage;
    }
  }
  report_.time_to_restore = worst;
  return report_;
}

}  // namespace wimesh::faults
