#include "wimesh/faults/plan.h"

#include <algorithm>
#include <cstdlib>

#include "wimesh/common/strings.h"

namespace wimesh::faults {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeRecover:
      return "node-recover";
    case FaultKind::kMasterFail:
      return "master-fail";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kLinkBurst:
      return "burst";
    case FaultKind::kClockStep:
      return "clock-step";
  }
  return "unknown";
}

namespace {

std::string trim(std::string s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_tokens(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

Expected<double> to_number(const std::string& s, const std::string& where) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return make_error(str_cat(where, ": '", s, "' is not a number"));
  }
  return v;
}

// "A-B" -> unordered node pair.
Expected<std::pair<NodeId, NodeId>> to_link(const std::string& s,
                                            const std::string& where) {
  const auto dash = s.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= s.size()) {
    return make_error(str_cat(where, ": link must be 'A-B', got '", s, "'"));
  }
  const auto a = to_number(s.substr(0, dash), where);
  const auto b = to_number(s.substr(dash + 1), where);
  if (!a) return make_error(a.error());
  if (!b) return make_error(b.error());
  const auto na = static_cast<NodeId>(*a);
  const auto nb = static_cast<NodeId>(*b);
  if (na < 0 || nb < 0 || na == nb) {
    return make_error(str_cat(where, ": bad link endpoints '", s, "'"));
  }
  return std::make_pair(na, nb);
}

}  // namespace

Expected<FaultPlan> parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::vector<std::string> heads;  // literal 'kind@T' per event, for errors
  for (const std::string& raw : split(spec, ';')) {
    const std::string entry = trim(raw);
    if (entry.empty()) continue;
    const auto tokens = split_tokens(entry);
    const std::string& head = tokens[0];

    // Plan-level option: "detect_ms=D" (no '@').
    if (head.rfind("detect_ms=", 0) == 0 && tokens.size() == 1) {
      const auto v = to_number(head.substr(10), "fault option 'detect_ms'");
      if (!v) return make_error(v.error());
      if (*v < 0) return make_error("fault option 'detect_ms': must be >= 0");
      plan.detection_delay = SimTime::from_seconds(*v / 1e3);
      continue;
    }

    const auto at_pos = head.find('@');
    if (at_pos == std::string::npos) {
      return make_error(str_cat("fault '", entry,
                                "': expected 'kind@seconds' or 'detect_ms=D'"));
    }
    const std::string kind_name = head.substr(0, at_pos);
    const std::string when = head.substr(at_pos + 1);
    const std::string where = str_cat("fault '", head, "'");

    FaultEvent e;
    if (kind_name == "node-crash") {
      e.kind = FaultKind::kNodeCrash;
    } else if (kind_name == "node-recover") {
      e.kind = FaultKind::kNodeRecover;
    } else if (kind_name == "master-fail") {
      e.kind = FaultKind::kMasterFail;
    } else if (kind_name == "link-down") {
      e.kind = FaultKind::kLinkDown;
    } else if (kind_name == "link-up") {
      e.kind = FaultKind::kLinkUp;
    } else if (kind_name == "burst") {
      e.kind = FaultKind::kLinkBurst;
    } else if (kind_name == "clock-step") {
      e.kind = FaultKind::kClockStep;
    } else {
      return make_error(str_cat(where, ": unknown fault kind '", kind_name,
                                "'"));
    }

    // Time: "T" or, for bursts, "T1..T2".
    const auto dots = when.find("..");
    if (e.kind == FaultKind::kLinkBurst) {
      if (dots == std::string::npos) {
        return make_error(str_cat(where, ": burst needs a window 'T1..T2'"));
      }
      const auto t1 = to_number(when.substr(0, dots), where);
      const auto t2 = to_number(when.substr(dots + 2), where);
      if (!t1) return make_error(t1.error());
      if (!t2) return make_error(t2.error());
      if (*t1 < 0 || *t2 <= *t1) {
        return make_error(str_cat(where, ": burst window must satisfy "
                                         "0 <= T1 < T2"));
      }
      e.at = SimTime::from_seconds(*t1);
      e.until = SimTime::from_seconds(*t2);
    } else {
      if (dots != std::string::npos) {
        return make_error(str_cat(where, ": only bursts take a 'T1..T2' "
                                         "window"));
      }
      const auto t = to_number(when, where);
      if (!t) return make_error(t.error());
      if (*t < 0) return make_error(str_cat(where, ": time must be >= 0"));
      e.at = SimTime::from_seconds(*t);
    }

    // key=value arguments.
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos) {
        return make_error(str_cat(where, ": expected key=value, got '", tok,
                                  "'"));
      }
      const std::string key = tok.substr(0, eq);
      const std::string value = tok.substr(eq + 1);
      const auto num = [&]() { return to_number(value, where); };

      if (key == "node" && (e.kind == FaultKind::kNodeCrash ||
                            e.kind == FaultKind::kNodeRecover ||
                            e.kind == FaultKind::kClockStep)) {
        const auto v = num();
        if (!v) return make_error(v.error());
        if (*v < 0) return make_error(str_cat(where, ": node must be >= 0"));
        e.node = static_cast<NodeId>(*v);
      } else if (key == "link" && (e.kind == FaultKind::kLinkDown ||
                                   e.kind == FaultKind::kLinkUp ||
                                   e.kind == FaultKind::kLinkBurst)) {
        const auto pair = to_link(value, where);
        if (!pair) return make_error(pair.error());
        e.link_a = pair->first;
        e.link_b = pair->second;
      } else if (key == "step_us" && e.kind == FaultKind::kClockStep) {
        const auto v = num();
        if (!v) return make_error(v.error());
        e.step = SimTime::nanoseconds(
            static_cast<std::int64_t>(*v * 1e3 + (*v >= 0 ? 0.5 : -0.5)));
      } else if (key == "p_gb" && e.kind == FaultKind::kLinkBurst) {
        const auto v = num();
        if (!v) return make_error(v.error());
        e.ge.p_good_to_bad = *v;
      } else if (key == "p_bg" && e.kind == FaultKind::kLinkBurst) {
        const auto v = num();
        if (!v) return make_error(v.error());
        e.ge.p_bad_to_good = *v;
      } else if (key == "per_good" && e.kind == FaultKind::kLinkBurst) {
        const auto v = num();
        if (!v) return make_error(v.error());
        e.ge.per_good = *v;
      } else if (key == "per_bad" && e.kind == FaultKind::kLinkBurst) {
        const auto v = num();
        if (!v) return make_error(v.error());
        e.ge.per_bad = *v;
      } else {
        return make_error(str_cat(where, ": unknown key '", key, "'"));
      }
    }

    // Required arguments per kind.
    if ((e.kind == FaultKind::kNodeCrash ||
         e.kind == FaultKind::kNodeRecover ||
         e.kind == FaultKind::kClockStep) &&
        e.node == kInvalidNode) {
      return make_error(str_cat(where, ": missing 'node=N'"));
    }
    if ((e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp ||
         e.kind == FaultKind::kLinkBurst) &&
        e.link_a == kInvalidNode) {
      return make_error(str_cat(where, ": missing 'link=A-B'"));
    }
    if (e.kind == FaultKind::kClockStep && e.step == SimTime::zero()) {
      return make_error(str_cat(where, ": missing 'step_us=U' (nonzero)"));
    }
    plan.events.push_back(e);
    heads.push_back(head);
  }

  // Application order: by time, stable by script position.
  std::vector<std::size_t> order(plan.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return plan.events[a].at < plan.events[b].at;
                   });

  // Reject contradictory scripts instead of silently letting the last
  // event win: replay node/link state in application order. Errors name
  // the event's literal head and its 1-based position in the script.
  {
    const auto pair_key = [](NodeId a, NodeId b) {
      if (a > b) std::swap(a, b);
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
              << 32) |
             static_cast<std::uint32_t>(b);
    };
    std::vector<NodeId> crashed;
    std::vector<std::uint64_t> down;
    struct BurstWindow {
      std::uint64_t pair = 0;
      SimTime at{};
      SimTime until{};
      std::size_t pos = 0;  // 1-based script position
    };
    std::vector<BurstWindow> bursts;
    for (const std::size_t idx : order) {
      const FaultEvent& e = plan.events[idx];
      const std::string where =
          str_cat("fault '", heads[idx], "' (event ", idx + 1, ")");
      switch (e.kind) {
        case FaultKind::kNodeCrash: {
          if (std::find(crashed.begin(), crashed.end(), e.node) !=
              crashed.end()) {
            return make_error(str_cat(where, ": node ", e.node,
                                      " is already crashed"));
          }
          crashed.push_back(e.node);
          break;
        }
        case FaultKind::kNodeRecover: {
          const auto it = std::find(crashed.begin(), crashed.end(), e.node);
          if (it != crashed.end()) crashed.erase(it);
          break;
        }
        case FaultKind::kLinkDown: {
          const std::uint64_t key = pair_key(e.link_a, e.link_b);
          if (std::find(down.begin(), down.end(), key) == down.end()) {
            down.push_back(key);
          }
          break;
        }
        case FaultKind::kLinkUp: {
          const std::uint64_t key = pair_key(e.link_a, e.link_b);
          const auto it = std::find(down.begin(), down.end(), key);
          if (it == down.end()) {
            return make_error(str_cat(where, ": link ", e.link_a, "-",
                                      e.link_b,
                                      " is not down (no prior link-down)"));
          }
          down.erase(it);
          break;
        }
        case FaultKind::kLinkBurst: {
          const std::uint64_t key = pair_key(e.link_a, e.link_b);
          for (const BurstWindow& w : bursts) {
            if (w.pair == key && e.at < w.until && w.at < e.until) {
              return make_error(str_cat(
                  where, ": burst window overlaps event ", w.pos,
                  " on link ", e.link_a, "-", e.link_b));
            }
          }
          bursts.push_back(BurstWindow{key, e.at, e.until, idx + 1});
          break;
        }
        case FaultKind::kMasterFail:
        case FaultKind::kClockStep:
          break;
      }
    }
  }

  std::vector<FaultEvent> sorted;
  sorted.reserve(plan.events.size());
  for (const std::size_t idx : order) sorted.push_back(plan.events[idx]);
  plan.events = std::move(sorted);
  return plan;
}

std::string FaultReport::summary() const {
  if (!enabled) return "faults: disabled";
  std::string out = str_cat("faults: ", events_applied, " event(s), ",
                            repairs, " repair(s), ", failovers,
                            " failover(s)");
  if (repairs > 0) {
    out += str_cat(", last repair at ", last_repair_at.to_string(),
                   " (latency ", repair_latency.to_string(), ")");
  }
  if (time_to_restore > SimTime::zero()) {
    out += str_cat(", time-to-restore ", time_to_restore.to_string());
  }
  out += str_cat(", guaranteed flows preserved=", flows_preserved,
                 " shed=", flows_shed);
  if (max_islands > 1) {
    out += str_cat(", islands peak=", max_islands, " heal(s)=", heals,
                   " partitioned=", flows_partitioned);
  }
  return out;
}

}  // namespace wimesh::faults
