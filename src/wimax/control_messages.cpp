#include "wimesh/wimax/control_messages.h"

#include "wimesh/common/assert.h"

namespace wimesh {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint32_t>(get_u16(in, at)) |
         (static_cast<std::uint32_t>(get_u16(in, at + 2)) << 16);
}

}  // namespace

std::size_t encoded_size(const MshDschMessage& message) {
  return kMshDschHeaderBytes + message.grants.size() * kGrantIeBytes;
}

std::vector<std::uint8_t> encode(const MshDschMessage& message) {
  WIMESH_ASSERT(message.grants.size() <= 0xffff);
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(message));
  put_u32(out, message.frame_sequence);
  put_u16(out, static_cast<std::uint16_t>(message.grants.size()));
  for (const GrantIe& ie : message.grants) {
    put_u16(out, ie.link);
    out.push_back(ie.start);
    out.push_back(ie.length);
  }
  return out;
}

std::optional<MshDschMessage> decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kMshDschHeaderBytes) return std::nullopt;
  MshDschMessage msg;
  msg.frame_sequence = get_u32(bytes, 0);
  const std::uint16_t count = get_u16(bytes, 4);
  if (bytes.size() != kMshDschHeaderBytes + count * kGrantIeBytes) {
    return std::nullopt;
  }
  msg.grants.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t at = kMshDschHeaderBytes + i * kGrantIeBytes;
    GrantIe ie;
    ie.link = get_u16(bytes, at);
    ie.start = bytes[at + 2];
    ie.length = bytes[at + 3];
    msg.grants.push_back(ie);
  }
  return msg;
}

MshDschMessage build_schedule_message(const MeshSchedule& schedule,
                                      std::uint32_t frame_sequence) {
  MshDschMessage msg;
  msg.frame_sequence = frame_sequence;
  for (LinkId l = 0; l < schedule.link_count(); ++l) {
    for (const SlotRange& g : schedule.all_grants(l)) {
      WIMESH_ASSERT_MSG(g.start < 256 && g.length < 256,
                        "grant exceeds the IE field width");
      msg.grants.push_back(GrantIe{static_cast<std::uint16_t>(l),
                                   static_cast<std::uint8_t>(g.start),
                                   static_cast<std::uint8_t>(g.length)});
    }
  }
  return msg;
}

std::size_t control_subframe_capacity_bytes(const FrameConfig& frame,
                                            const PhyMode& phy) {
  // The message is broadcast (no ACK) after one DIFS; payload bytes are
  // whatever airtime fits in the control subframe beyond the preamble.
  const SimTime budget = frame.slot_duration() * frame.control_slots;
  // Binary search the largest payload whose airtime + DIFS fits.
  std::size_t lo = 0, hi = 65536;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (phy.difs() + phy.airtime(mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

bool schedule_fits_control_subframe(const MeshSchedule& schedule,
                                    const FrameConfig& frame,
                                    const PhyMode& phy) {
  const MshDschMessage msg = build_schedule_message(schedule, 0);
  return encoded_size(msg) <= control_subframe_capacity_bytes(frame, phy);
}

}  // namespace wimesh
