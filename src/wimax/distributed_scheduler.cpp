#include "wimesh/wimax/distributed_scheduler.h"

#include <algorithm>

#include "wimesh/common/rng.h"

namespace wimesh {

int DistributedScheduleResult::used_slots() const {
  int used = 0;
  for (const SlotRange& g : grants) used = std::max(used, g.end());
  return used;
}

namespace {

// First-fit placement of a block of `length` around the busy set.
std::optional<SlotRange> first_fit(std::vector<SlotRange> busy, int length,
                                   int frame_slots) {
  std::sort(busy.begin(), busy.end(),
            [](const SlotRange& a, const SlotRange& b) {
              return a.start < b.start;
            });
  int cursor = 0;
  for (const SlotRange& b : busy) {
    if (b.length == 0) continue;
    if (cursor + length <= b.start) break;
    cursor = std::max(cursor, b.end());
  }
  if (cursor + length > frame_slots) return std::nullopt;
  return SlotRange{cursor, length};
}

}  // namespace

DistributedScheduleResult run_distributed_scheduling(
    const LinkSet& links, const std::vector<int>& demand,
    const Graph& conflicts, int frame_slots,
    const DistributedSchedulerConfig& config) {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  WIMESH_ASSERT(conflicts.node_count() == links.count());

  DistributedScheduleResult out;
  out.grants.assign(static_cast<std::size_t>(links.count()), SlotRange{});
  out.unmet = demand;

  // Per-link handshake-hardening state. `given_up` mirrors out.abandoned as
  // a flag array; `wait_until` is the first round the link may request again
  // after a backoff.
  std::vector<int> failures(static_cast<std::size_t>(links.count()), 0);
  std::vector<int> wait_until(static_cast<std::size_t>(links.count()), 0);
  std::vector<char> given_up(static_cast<std::size_t>(links.count()), 0);
  Rng loss_rng(config.loss_seed);
  // Under control loss a fully rejected round is indistinguishable from a
  // round of lost messages, so the no-progress stall exit is disabled and
  // termination relies on the attempt cap / round cap instead.
  const bool persistent_retry = config.control_loss_rate > 0.0;

  const auto record_failure = [&](LinkId l) {
    const auto i = static_cast<std::size_t>(l);
    ++failures[i];
    if (config.max_link_attempts > 0 &&
        failures[i] >= config.max_link_attempts) {
      given_up[i] = 1;
      out.abandoned.push_back(l);  // link order: l scans ascending per round
      return;
    }
    if (config.backoff_base_rounds > 0) {
      const int shift = std::min(failures[i] - 1, 20);
      const int wait = std::min(config.backoff_base_rounds << shift,
                                config.backoff_cap_rounds);
      wait_until[i] = out.rounds + 1 + wait;
    }
  };

  // True while some link still wants slots but is merely backing off (not
  // abandoned) — an empty or fruitless round is then transient, not a stall.
  const auto anyone_waiting = [&] {
    for (LinkId l = 0; l < links.count(); ++l) {
      const auto i = static_cast<std::size_t>(l);
      if (out.unmet[i] > 0 && !given_up[i] && wait_until[i] > out.rounds) {
        return true;
      }
    }
    return false;
  };

  // A link's local view: confirmed grants of its conflict neighbors (both
  // of whose endpoints overheard the handshake) plus its own.
  const auto local_view = [&](LinkId l) {
    std::vector<SlotRange> busy;
    if (out.grants[static_cast<std::size_t>(l)].length > 0) {
      busy.push_back(out.grants[static_cast<std::size_t>(l)]);
    }
    for (EdgeId e : conflicts.incident(l)) {
      const LinkId m = conflicts.other_end(e, l);
      const SlotRange& g = out.grants[static_cast<std::size_t>(m)];
      if (g.length > 0) busy.push_back(g);
    }
    return busy;
  };

  for (out.rounds = 1; out.rounds <= config.max_rounds; ++out.rounds) {
    // Requests this round are built against the views at round START; the
    // winners' confirms are then serialized in election order, so a later
    // confirm that clashes with an earlier same-round grant is rejected
    // (exactly the stale-view race of the real protocol).
    struct Tentative {
      LinkId link;
      SlotRange range;
      std::uint32_t hash;
    };
    std::vector<Tentative> tentative;
    for (LinkId l = 0; l < links.count(); ++l) {
      const auto i = static_cast<std::size_t>(l);
      const int want = out.unmet[i];
      if (want <= 0) continue;
      if (given_up[i]) continue;               // gave up; demand stays unmet
      if (wait_until[i] > out.rounds) continue;  // backing off
      const auto candidate = first_fit(local_view(l), want, frame_slots);
      if (!candidate.has_value()) continue;  // no gap in this view; wait
      tentative.push_back(Tentative{
          l, *candidate,
          mesh_election_hash(static_cast<std::uint32_t>(l),
                             static_cast<std::uint32_t>(out.rounds),
                             config.election_seed)});
    }
    if (tentative.empty()) {
      if (!anyone_waiting()) break;  // stall: nothing can even request
      continue;  // everyone eligible is just backing off; idle round
    }
    std::sort(tentative.begin(), tentative.end(),
              [](const Tentative& a, const Tentative& b) {
                if (a.hash != b.hash) return a.hash > b.hash;
                return a.link < b.link;
              });

    bool progress = false;
    for (const Tentative& t : tentative) {
      ++out.handshakes;
      if (config.control_loss_rate > 0.0 &&
          loss_rng.chance(config.control_loss_rate)) {
        // Some leg of the three-way exchange was lost; nothing is installed
        // and the requester treats it like a rejection (retry after backoff).
        ++out.messages_lost;
        record_failure(t.link);
        continue;
      }
      // Confirm against the LIVE state (the granter refreshed its view
      // from everything it overheard this round).
      bool clash = false;
      for (EdgeId e : conflicts.incident(t.link)) {
        const LinkId m = conflicts.other_end(e, t.link);
        if (out.grants[static_cast<std::size_t>(m)].overlaps(t.range)) {
          clash = true;
          break;
        }
      }
      if (clash) {
        ++out.rejections;
        record_failure(t.link);
        continue;  // requester retries next round with a fresher view
      }
      out.grants[static_cast<std::size_t>(t.link)] = t.range;
      out.unmet[static_cast<std::size_t>(t.link)] = 0;
      progress = true;
    }
    const bool all_served =
        std::all_of(out.unmet.begin(), out.unmet.end(),
                    [](int u) { return u <= 0; });
    if (all_served) {
      out.converged = true;
      return out;
    }
    if (!progress && !persistent_retry && !anyone_waiting()) {
      break;  // every request clashed and nothing changed
    }
  }
  std::sort(out.abandoned.begin(), out.abandoned.end());
  out.converged = std::all_of(out.unmet.begin(), out.unmet.end(),
                              [](int u) { return u <= 0; });
  return out;
}

bool distributed_schedule_conflict_free(
    const DistributedScheduleResult& result, const Graph& conflicts) {
  for (EdgeId e = 0; e < conflicts.edge_count(); ++e) {
    const SlotRange& a =
        result.grants[static_cast<std::size_t>(conflicts.edge(e).u)];
    const SlotRange& b =
        result.grants[static_cast<std::size_t>(conflicts.edge(e).v)];
    if (a.overlaps(b)) return false;
  }
  return true;
}

}  // namespace wimesh
