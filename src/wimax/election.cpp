#include "wimesh/wimax/election.h"

#include <algorithm>

namespace wimesh {

std::uint32_t mesh_election_hash(std::uint32_t competitor, std::uint32_t slot,
                                 std::uint32_t seed) {
  // The 802.16 election smears (ID, slot) through an avalanche mix; any
  // good 32-bit mixer reproduces the behaviour. This is the murmur3
  // finalizer over the packed inputs.
  std::uint32_t h = competitor * 0x9e3779b1u ^ (slot + seed) * 0x85ebca6bu;
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

int ElectionSchedule::used_slots() const {
  int used = 0;
  for (const auto& list : grants) {
    for (const SlotRange& g : list) used = std::max(used, g.end());
  }
  return used;
}

int ElectionSchedule::granted_slots(LinkId link) const {
  int total = 0;
  for (const SlotRange& g : grants[static_cast<std::size_t>(link)]) {
    total += g.length;
  }
  return total;
}

int ElectionSchedule::total_unmet() const {
  int total = 0;
  for (int u : unmet) total += u;
  return total;
}

ElectionSchedule schedule_by_election(const LinkSet& links,
                                      const std::vector<int>& demand,
                                      const Graph& conflicts, int frame_slots,
                                      std::uint32_t seed) {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  WIMESH_ASSERT(conflicts.node_count() == links.count());
  WIMESH_ASSERT(frame_slots >= 0);

  ElectionSchedule out;
  out.frame_slots = frame_slots;
  out.grants.resize(static_cast<std::size_t>(links.count()));
  out.unmet = demand;

  std::vector<LinkId> contenders;
  for (int slot = 0; slot < frame_slots; ++slot) {
    contenders.clear();
    for (LinkId l = 0; l < links.count(); ++l) {
      if (out.unmet[static_cast<std::size_t>(l)] > 0) contenders.push_back(l);
    }
    if (contenders.empty()) break;
    // Deterministic total order for this slot: hash desc, id asc on ties.
    std::sort(contenders.begin(), contenders.end(),
              [&](LinkId a, LinkId b) {
                const std::uint32_t ha = mesh_election_hash(
                    static_cast<std::uint32_t>(a),
                    static_cast<std::uint32_t>(slot), seed);
                const std::uint32_t hb = mesh_election_hash(
                    static_cast<std::uint32_t>(b),
                    static_cast<std::uint32_t>(slot), seed);
                if (ha != hb) return ha > hb;
                return a < b;
              });
    // Seat winners greedily; later contenders defer to conflicting seated
    // winners (each node can evaluate this locally: all its conflicts are
    // within its extended neighborhood).
    std::vector<LinkId> seated;
    for (LinkId cand : contenders) {
      const bool blocked = std::any_of(
          seated.begin(), seated.end(), [&](LinkId w) {
            return conflicts.has_edge(cand, w);
          });
      if (blocked) continue;
      seated.push_back(cand);
      auto& list = out.grants[static_cast<std::size_t>(cand)];
      if (!list.empty() && list.back().end() == slot) {
        ++list.back().length;  // coalesce contiguous wins
      } else {
        list.push_back(SlotRange{slot, 1});
      }
      --out.unmet[static_cast<std::size_t>(cand)];
    }
  }
  return out;
}

bool election_conflict_free(const ElectionSchedule& schedule,
                            const Graph& conflicts) {
  for (EdgeId e = 0; e < conflicts.edge_count(); ++e) {
    const auto& a =
        schedule.grants[static_cast<std::size_t>(conflicts.edge(e).u)];
    const auto& b =
        schedule.grants[static_cast<std::size_t>(conflicts.edge(e).v)];
    for (const SlotRange& ga : a) {
      for (const SlotRange& gb : b) {
        if (ga.overlaps(gb)) return false;
      }
    }
  }
  return true;
}

}  // namespace wimesh
