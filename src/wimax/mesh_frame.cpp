#include "wimesh/wimax/mesh_frame.h"

#include <algorithm>

namespace wimesh {

LinkId LinkSet::add(Link link) {
  WIMESH_ASSERT(link.from >= 0 && link.to >= 0);
  WIMESH_ASSERT_MSG(link.from != link.to, "link endpoints must differ");
  const LinkId existing = find(link);
  if (existing != kInvalidLink) return existing;
  links_.push_back(link);
  return static_cast<LinkId>(links_.size() - 1);
}

LinkId LinkSet::find(Link link) const {
  const auto it = std::find(links_.begin(), links_.end(), link);
  if (it == links_.end()) return kInvalidLink;
  return static_cast<LinkId>(it - links_.begin());
}

void MeshSchedule::set_grant(LinkId link, SlotRange range) {
  WIMESH_ASSERT(link >= 0 && link < link_count());
  WIMESH_ASSERT(range.length > 0);
  WIMESH_ASSERT(range.start >= 0);
  WIMESH_ASSERT_MSG(range.end() <= frame_slots_,
                    "grant extends past the data subframe");
  auto& g = grants_[static_cast<std::size_t>(link)];
  WIMESH_ASSERT_MSG(g.length == 0, "link already has a grant");
  g = range;
}

void MeshSchedule::add_extra_grant(LinkId link, SlotRange range) {
  WIMESH_ASSERT(link >= 0 && link < link_count());
  WIMESH_ASSERT(range.length > 0);
  WIMESH_ASSERT(range.start >= 0);
  WIMESH_ASSERT_MSG(range.end() <= frame_slots_,
                    "grant extends past the data subframe");
  extra_[static_cast<std::size_t>(link)].push_back(range);
}

std::vector<SlotRange> MeshSchedule::all_grants(LinkId link) const {
  std::vector<SlotRange> out;
  if (const auto g = grant(link)) out.push_back(*g);
  const auto& extras = extra_grants(link);
  out.insert(out.end(), extras.begin(), extras.end());
  std::sort(out.begin(), out.end(),
            [](const SlotRange& a, const SlotRange& b) {
              return a.start < b.start;
            });
  return out;
}

int MeshSchedule::used_slots() const {
  int used = 0;
  for (const auto& g : grants_) used = std::max(used, g.end());
  for (const auto& list : extra_) {
    for (const auto& g : list) used = std::max(used, g.end());
  }
  return used;
}

int MeshSchedule::granted_slots() const {
  int total = 0;
  for (const auto& g : grants_) total += g.length;
  for (const auto& list : extra_) {
    for (const auto& g : list) total += g.length;
  }
  return total;
}

}  // namespace wimesh
