#include "wimesh/admit/engine.h"

#include <algorithm>
#include <queue>

#include "wimesh/common/strings.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/trace/trace.h"

namespace wimesh::admit {

namespace {

// Gaps of the frame not overlapping any `busy` range, in slot order (same
// as the planner's best-effort fitter).
std::vector<SlotRange> free_gaps(std::vector<SlotRange> busy,
                                 int frame_slots) {
  std::sort(busy.begin(), busy.end(),
            [](const SlotRange& a, const SlotRange& b) {
              return a.start < b.start;
            });
  std::vector<SlotRange> gaps;
  int cursor = 0;
  for (const SlotRange& b : busy) {
    if (b.start > cursor) gaps.push_back(SlotRange{cursor, b.start - cursor});
    cursor = std::max(cursor, b.end());
  }
  if (cursor < frame_slots) {
    gaps.push_back(SlotRange{cursor, frame_slots - cursor});
  }
  return gaps;
}

bool is_complete_solver(SchedulerKind kind) {
  return kind == SchedulerKind::kIlpDelayAware ||
         kind == SchedulerKind::kIlpDelayUnaware;
}

}  // namespace

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kInfeasible:
      return "infeasible";
    case RejectReason::kEndpointDown:
      return "endpoint_down";
    case RejectReason::kNoRoute:
      return "no_route";
  }
  return "?";
}

AdmissionEngine::AdmissionEngine(const Topology& topology,
                                 const RadioModel& radio,
                                 EmulationParams params, PhyMode phy,
                                 EngineConfig config)
    : topology_(topology),
      params_(params),
      config_(std::move(config)),
      radio_(radio),
      phy_(std::move(phy)),
      planner_(std::make_unique<QosPlanner>(topology, radio_, params, phy_,
                                            config_.routing)) {}

Decision AdmissionEngine::offer(const FlowSpec& flow, SimTime now) {
  const trace::Span span(trace::SpanName::kAdmitDecide, now);
  const std::int64_t wall0 = trace::monotonic_ns();
  ++stats_.offered;
  Decision d = decide(flow, now);
  d.latency_ns = trace::monotonic_ns() - wall0;
  stats_.decision_latency_ns.add(static_cast<double>(d.latency_ns));
  switch (d.outcome) {
    case Outcome::kAdmitted:
      ++stats_.admitted;
      break;
    case Outcome::kDegraded:
      ++stats_.degraded;
      break;
    case Outcome::kRejected:
      ++stats_.rejected;
      break;
  }
  trace::event(trace::EventType::kAdmitDecision, now, -1, flow.id,
               static_cast<std::int64_t>(d.outcome),
               static_cast<std::int64_t>(d.path),
               static_cast<std::int64_t>(active_.size()));
  return d;
}

Decision AdmissionEngine::decide(const FlowSpec& flow, SimTime now) {
  Decision d;
  // Fault-aware pre-stage: arrivals the current topology epoch cannot
  // serve at all die here, typed by cause, before any class or capacity
  // logic (degrading to best-effort cannot conjure a route).
  if (auto gated = epoch_gate(flow)) return *std::move(gated);

  // Stage 0: best-effort arrivals never gate on the guaranteed class —
  // they are served from leftover slots, shrunk to whatever fits.
  if (flow.service == ServiceClass::kBestEffort) {
    active_.push_back(flow);
    ++stats_.best_effort_fast;
    d.outcome = Outcome::kAdmitted;
    d.path = DecisionPath::kBestEffort;
    return d;
  }

  ++stats_.guaranteed_offered;
  std::vector<FlowSpec> candidate = active_;
  candidate.push_back(flow);
  BuiltProblem bp = planner_->build_problem(candidate);
  const int data_slots = params_.frame.data_slots;

  // Stage 1: clique-bound fast reject — the same lower bound the cold
  // feasibility path checks first, so rejecting here never diverges from
  // the oracle (the bound is sound for every scheduler kind).
  if (schedule_length_lower_bound(bp.problem.links, bp.problem.demand,
                                  bp.problem.conflicts) > data_slots) {
    ++stats_.fast_rejects;
    return not_admitted(flow, DecisionPath::kFastReject,
                        RejectReason::kInfeasible,
                        "infeasible: clique bound exceeds the subframe");
  }

  // Stage 2: incremental repair. Only for the complete (ILP) solvers:
  // a repaired schedule proves feasibility, which is exactly what they
  // decide on; the greedy baselines' answers depend on their heuristic's
  // own success, so repair could admit where they would not.
  if (is_complete_solver(config_.scheduler)) {
    if (auto repaired = try_repair(bp)) {
      Incumbent next;
      next.problem = std::move(bp.problem);
      next.guaranteed = std::move(bp.guaranteed);
      next.schedule = std::move(*repaired);
      adopt(std::move(next), now, /*compaction=*/false);
      active_.push_back(flow);
      ++stats_.repair_admits;
      d.outcome = Outcome::kAdmitted;
      d.path = DecisionPath::kRepair;
      return d;
    }
  }

  // Stage 3: the cold path itself — warm-started ILP feasibility solve
  // through the shared cache.
  ++stats_.full_solves;
  auto planned = planner_->plan(candidate, config_.scheduler, config_.ilp,
                                PlanObjective::kFeasibility);
  if (!planned.has_value()) {
    return not_admitted(flow, DecisionPath::kFullSolve,
                        RejectReason::kInfeasible, planned.error());
  }
  Incumbent next;
  next.problem.links = planned->links;
  next.problem.demand = planned->guaranteed_demand;
  next.problem.conflicts = planned->conflicts;
  for (const FlowPlan& f : planned->guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    fp.delay_budget_frames = f.delay_budget_frames;
    next.problem.flows.push_back(std::move(fp));
  }
  // Keep only the guaranteed skeleton: the plan's best-effort extras are
  // tied to the batch flow set and are re-fitted at the next full solve.
  next.schedule = MeshSchedule(next.problem.links, data_slots);
  for (LinkId l = 0; l < next.problem.links.count(); ++l) {
    if (const auto g = planned->schedule.grant(l)) {
      next.schedule.set_grant(l, *g);
    }
  }
  next.guaranteed = std::move(planned->guaranteed);
  adopt(std::move(next), now, /*compaction=*/false);
  active_.push_back(flow);
  d.outcome = Outcome::kAdmitted;
  d.path = DecisionPath::kFullSolve;
  return d;
}

Decision AdmissionEngine::not_admitted(const FlowSpec& flow,
                                       DecisionPath path, RejectReason why,
                                       std::string reason) {
  Decision d;
  d.path = path;
  d.reject = why;
  d.reason = std::move(reason);
  switch (why) {
    case RejectReason::kNone:
      break;
    case RejectReason::kInfeasible:
      ++stats_.rejected_infeasible;
      break;
    case RejectReason::kEndpointDown:
      ++stats_.rejected_endpoint_down;
      break;
    case RejectReason::kNoRoute:
      ++stats_.rejected_no_route;
      break;
  }
  if (config_.degrade_on_reject) {
    FlowSpec degraded = flow;
    degraded.service = ServiceClass::kBestEffort;
    active_.push_back(degraded);
    d.outcome = Outcome::kDegraded;
  } else {
    d.outcome = Outcome::kRejected;
  }
  return d;
}

std::optional<Decision> AdmissionEngine::epoch_gate(const FlowSpec& flow) {
  if (alive_.empty()) return std::nullopt;  // no epoch installed yet
  const auto src = static_cast<std::size_t>(flow.src);
  const auto dst = static_cast<std::size_t>(flow.dst);
  const bool src_dead = alive_[src] == 0;
  const bool dst_dead = alive_[dst] == 0;
  if (!src_dead && !dst_dead &&
      island_of_node_[src] == island_of_node_[dst]) {
    return std::nullopt;
  }
  // Hard reject regardless of the degrade policy: best-effort service to a
  // dead or unreachable endpoint is not service.
  if (flow.service == ServiceClass::kGuaranteed) ++stats_.guaranteed_offered;
  Decision d;
  d.outcome = Outcome::kRejected;
  d.path = DecisionPath::kFastReject;
  if (src_dead || dst_dead) {
    d.reject = RejectReason::kEndpointDown;
    ++stats_.rejected_endpoint_down;
    d.reason = str_cat("endpoint down: node ",
                       src_dead ? flow.src : flow.dst, " is crashed");
  } else {
    d.reject = RejectReason::kNoRoute;
    ++stats_.rejected_no_route;
    d.reason = str_cat("no route: nodes ", flow.src, " and ", flow.dst,
                       " are in different islands");
  }
  return d;
}

std::vector<int> AdmissionEngine::set_topology_epoch(
    const std::vector<char>& alive, SimTime now,
    const std::vector<std::pair<NodeId, NodeId>>& down_links) {
  WIMESH_ASSERT(static_cast<NodeId>(alive.size()) == topology_.node_count());
  alive_ = alive;
  ++epoch_;
  ++stats_.epoch_updates;

  const auto link_is_down = [&](NodeId u, NodeId v) {
    for (const auto& [a, b] : down_links) {
      if ((a == u && b == v) || (a == v && b == u)) return true;
    }
    return false;
  };

  // Surviving subgraph: dead nodes keep their NodeId as isolated vertices.
  epoch_topology_.positions = topology_.positions;
  epoch_topology_.graph = Graph();
  epoch_topology_.graph.resize(topology_.node_count());
  for (EdgeId e = 0; e < topology_.graph.edge_count(); ++e) {
    const Graph::Edge& edge = topology_.graph.edge(e);
    if (alive_[static_cast<std::size_t>(edge.u)] == 0) continue;
    if (alive_[static_cast<std::size_t>(edge.v)] == 0) continue;
    if (link_is_down(edge.u, edge.v)) continue;
    epoch_topology_.graph.add_edge(edge.u, edge.v);
  }
  planner_ = std::make_unique<QosPlanner>(epoch_topology_, radio_, params_,
                                          phy_, config_.routing);

  // Island decomposition, components seeded in ascending NodeId order.
  island_of_node_.assign(alive_.size(), -1);
  int islands = 0;
  for (NodeId s = 0; s < topology_.node_count(); ++s) {
    if (alive_[static_cast<std::size_t>(s)] == 0) continue;
    if (island_of_node_[static_cast<std::size_t>(s)] >= 0) continue;
    island_of_node_[static_cast<std::size_t>(s)] = islands;
    std::vector<NodeId> queue{s};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId v : epoch_topology_.graph.neighbors(queue[head])) {
        if (island_of_node_[static_cast<std::size_t>(v)] >= 0) continue;
        island_of_node_[static_cast<std::size_t>(v)] = islands;
        queue.push_back(v);
      }
    }
    ++islands;
  }

  // Evict booked flows the epoch can no longer serve: a dead endpoint, or
  // endpoints separated by a cut.
  std::vector<int> evicted;
  auto keep = active_.begin();
  for (FlowSpec& f : active_) {
    const auto src = static_cast<std::size_t>(f.src);
    const auto dst = static_cast<std::size_t>(f.dst);
    const bool servable = alive_[src] != 0 && alive_[dst] != 0 &&
                          island_of_node_[src] == island_of_node_[dst];
    if (servable) {
      *keep++ = std::move(f);
    } else {
      evicted.push_back(f.id);
    }
  }
  active_.erase(keep, active_.end());
  std::sort(evicted.begin(), evicted.end());
  stats_.epoch_evictions += evicted.size();

  // Re-validate the booked set against the new topology: the survivors are
  // re-planned (and re-routed) over the epoch planner, and the refreshed
  // schedule hot-swaps at the next frame boundary.
  compact(now);
  return evicted;
}

std::optional<MeshSchedule> AdmissionEngine::try_repair(
    const BuiltProblem& bp) const {
  const int data_slots = params_.frame.data_slots;
  const SchedulingProblem& np = bp.problem;
  MeshSchedule candidate(np.links, data_slots);
  // Keep every incumbent grant that still covers its link's demand,
  // shrunk in place to exactly the new demand (validate_schedule requires
  // exact coverage; shrinking a block never creates a conflict and never
  // worsens a wrap). Links that grew, or are new, go to placement.
  std::vector<LinkId> pending;
  for (LinkId l = 0; l < np.links.count(); ++l) {
    const int demand = np.demand[static_cast<std::size_t>(l)];
    if (demand == 0) continue;
    std::optional<SlotRange> kept;
    const LinkId old = incumbent_.problem.links.find(np.links.link(l));
    if (old != kInvalidLink && old < incumbent_.schedule.link_count()) {
      kept = incumbent_.schedule.grant(old);
    }
    if (kept.has_value() && kept->length >= demand) {
      candidate.set_grant(l, SlotRange{kept->start, demand});
    } else {
      pending.push_back(l);
    }
  }
  // First-fit each remaining link into the gaps left by the grants of its
  // conflicting neighbors (kept + already-placed).
  for (LinkId l : pending) {
    const int demand = np.demand[static_cast<std::size_t>(l)];
    std::vector<SlotRange> busy;
    for (EdgeId e : np.conflicts.incident(l)) {
      const LinkId m = np.conflicts.other_end(e, l);
      if (const auto g = candidate.grant(m)) busy.push_back(*g);
    }
    bool placed = false;
    for (const SlotRange& gap : free_gaps(std::move(busy), data_slots)) {
      if (gap.length < demand) continue;
      candidate.set_grant(l, SlotRange{gap.start, demand});
      placed = true;
      break;
    }
    if (!placed) return std::nullopt;
  }
  if (!acceptable(np, bp.guaranteed, candidate)) return std::nullopt;
  return candidate;
}

bool AdmissionEngine::acceptable(const SchedulingProblem& problem,
                                 const std::vector<FlowPlan>& guaranteed,
                                 const MeshSchedule& schedule) const {
  if (!validate_schedule(problem, schedule)) return false;
  if (config_.scheduler != SchedulerKind::kIlpDelayAware) return true;
  if (!budgets_satisfied(problem, schedule)) return false;
  // The strict per-flow check plan() runs after solving (step 5); the
  // wrap budgets imply it whenever max_delay spans >= 2 frames, but
  // re-checking keeps repair sound below that.
  for (const FlowPlan& f : guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    const int slots =
        worst_case_delay_slots(schedule, fp, params_.frame.total_slots());
    if (params_.frame.slot_duration() * slots > f.spec.max_delay) {
      return false;
    }
  }
  return true;
}

void AdmissionEngine::adopt(Incumbent next, SimTime now, bool compaction) {
  for (FlowPlan& f : next.guaranteed) {
    FlowPath fp;
    fp.links = f.links;
    const int slots =
        worst_case_delay_slots(next.schedule, fp, params_.frame.total_slots());
    f.worst_case_delay = params_.frame.slot_duration() * slots;
    f.delay_bound_met = f.worst_case_delay <= f.spec.max_delay;
  }
  incumbent_ = std::move(next);
  ++generation_;
  ++stats_.hot_swaps;
  // Hot-swap at the top of the NEXT frame: nodes adopt atomically on a
  // frame boundary, never mid-frame (TdmaOverlayNode::stage_grants).
  const std::int64_t activation = params_.frame.frame_index(now) + 1;
  trace::event(trace::EventType::kAdmitHotSwap, now, -1,
               static_cast<std::int64_t>(generation_), activation,
               incumbent_.schedule.used_slots());
  if (compaction) {
    trace::event(trace::EventType::kAdmitCompaction, now, -1,
                 static_cast<std::int64_t>(active_.size()),
                 incumbent_.schedule.used_slots());
  }
  if (deploy_) {
    Deployment dep;
    dep.links = incumbent_.problem.links;
    dep.schedule = incumbent_.schedule;
    dep.guaranteed = incumbent_.guaranteed;
    dep.activation_frame = activation;
    dep.guard = params_.guard_time;
    dep.generation = generation_;
    deploy_(dep);
  }
}

bool AdmissionEngine::release(int flow_id, SimTime now) {
  const auto it =
      std::find_if(active_.begin(), active_.end(),
                   [&](const FlowSpec& f) { return f.id == flow_id; });
  if (it == active_.end()) return false;
  active_.erase(it);
  ++stats_.released;
  ++departures_since_compaction_;
  trace::event(trace::EventType::kAdmitRelease, now, -1, flow_id,
               static_cast<std::int64_t>(active_.size()),
               departures_since_compaction_);
  if (departures_since_compaction_ >=
      std::max(1, config_.compaction_departures)) {
    compact(now);
  }
  return true;
}

bool AdmissionEngine::compact(SimTime now) {
  const trace::Span span(trace::SpanName::kAdmitCompact, now);
  departures_since_compaction_ = 0;
  ++stats_.compactions;
  const bool any_guaranteed =
      std::any_of(active_.begin(), active_.end(), [](const FlowSpec& f) {
        return f.service == ServiceClass::kGuaranteed;
      });
  if (!any_guaranteed) {
    // Nothing to schedule: adopt the empty skeleton directly.
    BuiltProblem bp = planner_->build_problem(active_);
    Incumbent next;
    next.schedule =
        MeshSchedule(bp.problem.links, params_.frame.data_slots);
    next.problem = std::move(bp.problem);
    next.guaranteed = std::move(bp.guaranteed);
    adopt(std::move(next), now, /*compaction=*/true);
    return true;
  }
  // Survivor re-plan at minimum slots — the compaction proper. The set
  // was feasible when admitted and departures only shrink it, so this
  // succeeds unless the solver hits its limits; then fall back to a
  // feasibility solve, then to the always-possible shrink repair.
  auto planned = planner_->plan(active_, config_.scheduler, config_.ilp,
                               PlanObjective::kMinimizeSlots);
  if (!planned.has_value()) {
    planned = planner_->plan(active_, config_.scheduler, config_.ilp,
                            PlanObjective::kFeasibility);
  }
  if (planned.has_value()) {
    Incumbent next;
    next.problem.links = planned->links;
    next.problem.demand = planned->guaranteed_demand;
    next.problem.conflicts = planned->conflicts;
    for (const FlowPlan& f : planned->guaranteed) {
      FlowPath fp;
      fp.links = f.links;
      fp.delay_budget_frames = f.delay_budget_frames;
      next.problem.flows.push_back(std::move(fp));
    }
    next.schedule =
        MeshSchedule(next.problem.links, params_.frame.data_slots);
    for (LinkId l = 0; l < next.problem.links.count(); ++l) {
      if (const auto g = planned->schedule.grant(l)) {
        next.schedule.set_grant(l, *g);
      }
    }
    next.guaranteed = std::move(planned->guaranteed);
    adopt(std::move(next), now, /*compaction=*/true);
    return true;
  }
  BuiltProblem bp = planner_->build_problem(active_);
  if (auto repaired = try_repair(bp)) {
    Incumbent next;
    next.problem = std::move(bp.problem);
    next.guaranteed = std::move(bp.guaranteed);
    next.schedule = std::move(*repaired);
    adopt(std::move(next), now, /*compaction=*/true);
    return true;
  }
  return false;
}

bool AdmissionEngine::live_consistent() const {
  if (!validate_schedule(incumbent_.problem, incumbent_.schedule)) {
    return false;
  }
  // Every active guaranteed flow must be covered by the incumbent: each of
  // its hops holds a grant. Departed flows' stale grants are fine (they
  // only leave survivors more room); missing coverage is not.
  for (const FlowSpec& spec : active_) {
    if (spec.service != ServiceClass::kGuaranteed) continue;
    const FlowPlan* plan = nullptr;
    for (const FlowPlan& f : incumbent_.guaranteed) {
      if (f.spec.id == spec.id) {
        plan = &f;
        break;
      }
    }
    if (plan == nullptr) return false;
    for (LinkId l : plan->links) {
      if (l < 0 || l >= incumbent_.schedule.link_count()) return false;
      if (!incumbent_.schedule.grant(l).has_value()) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------

ChurnResult replay_poisson_churn(AdmissionEngine& engine,
                                 const ChurnSpec& spec,
                                 const ChurnObserver* observer) {
  WIMESH_ASSERT(spec.arrival_rate_per_s > 0.0);
  WIMESH_ASSERT(spec.mean_holding_s > 0.0);
  std::vector<std::pair<NodeId, NodeId>> endpoints = spec.endpoints;
  if (endpoints.empty()) {
    // Gateway convention: every node talks to node 0.
    for (NodeId src = 1; src < engine.topology().node_count(); ++src) {
      endpoints.emplace_back(src, 0);
    }
  }
  WIMESH_ASSERT(!endpoints.empty());

  ChurnResult out;
  Rng rng(spec.seed);
  const SimTime horizon = SimTime::from_seconds(spec.horizon_s);

  struct Departure {
    SimTime t;
    int flow_id;
    bool operator>(const Departure& o) const {
      if (t != o.t) return t > o.t;
      return flow_id > o.flow_id;
    }
  };
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;

  SimTime next_arrival =
      SimTime::from_seconds(rng.exponential(1.0 / spec.arrival_rate_per_s));
  SimTime last_t = SimTime::zero();
  double carried_integral_s = 0.0;
  int carried = 0;
  int next_id = 0;

  while (spec.max_events == 0 || out.events < spec.max_events) {
    const bool have_departure = !departures.empty();
    // Same-instant ties resolve departure-first: the freed capacity is
    // visible to an arrival at the same timestamp.
    const bool take_departure =
        have_departure && departures.top().t <= next_arrival;
    const SimTime t = take_departure ? departures.top().t : next_arrival;
    if (t > horizon) break;
    carried_integral_s += carried * (t - last_t).to_seconds();
    last_t = t;

    if (take_departure) {
      const Departure dep = departures.top();
      departures.pop();
      engine.release(dep.flow_id, t);
      --carried;
      ++out.departures;
      ++out.events;
      if (observer != nullptr && observer->on_departure) {
        observer->on_departure(t, dep.flow_id);
      }
      continue;
    }

    // All draws happen in a fixed order regardless of the decision, so the
    // offered sequence is a pure function of the spec.
    const auto& ep = endpoints[rng.next_below(endpoints.size())];
    const bool best_effort = spec.best_effort_fraction > 0.0 &&
                             rng.chance(spec.best_effort_fraction);
    const double holding_s = rng.exponential(spec.mean_holding_s);
    const double gap_s = rng.exponential(1.0 / spec.arrival_rate_per_s);
    FlowSpec flow =
        best_effort
            ? FlowSpec::best_effort(next_id, ep.first, ep.second,
                                    spec.codec.packet_bytes(),
                                    spec.codec.rate_bps())
            : FlowSpec::voip(next_id, ep.first, ep.second, spec.codec,
                             spec.max_delay);
    ++next_id;
    const Decision d = engine.offer(flow, t);
    if (d.outcome != Outcome::kRejected) {
      departures.push(Departure{t + SimTime::from_seconds(holding_s),
                                flow.id});
      ++carried;
      out.peak_carried = std::max(out.peak_carried, carried);
    }
    ++out.arrivals;
    ++out.events;
    next_arrival = t + SimTime::from_seconds(gap_s);
    if (observer != nullptr && observer->on_arrival) {
      observer->on_arrival(t, flow, d);
    }
  }

  out.mean_carried = last_t > SimTime::zero()
                         ? carried_integral_s / last_t.to_seconds()
                         : 0.0;
  out.stats = engine.stats();
  return out;
}

// ---------------------------------------------------------------------------

DifferentialReport differential_replay(const Topology& topology,
                                       const RadioModel& radio,
                                       const EmulationParams& params,
                                       const PhyMode& phy,
                                       const EngineConfig& config,
                                       const ChurnSpec& spec) {
  DifferentialReport report;
  AdmissionEngine engine(topology, radio, params, phy, config);
  // The oracle is a cold from-scratch planner: no cache (so no memoized
  // answers from the engine's own solves), no incumbent, no repair.
  QosPlanner oracle(topology, radio, params, phy, config.routing);
  IlpSchedulerOptions oracle_options = config.ilp;
  oracle_options.cache = nullptr;
  std::vector<FlowSpec> mirror;

  ChurnObserver observer;
  observer.on_arrival = [&](SimTime t, const FlowSpec& flow,
                            const Decision& d) {
    if (flow.service == ServiceClass::kGuaranteed) {
      std::vector<FlowSpec> candidate = mirror;
      candidate.push_back(flow);
      const auto cold = oracle.plan(candidate, config.scheduler,
                                    oracle_options,
                                    PlanObjective::kFeasibility);
      const bool oracle_admit = cold.has_value();
      const bool engine_admit = d.outcome == Outcome::kAdmitted;
      ++report.decisions;
      if (oracle_admit != engine_admit) {
        if (report.mismatches == 0) {
          report.first_mismatch = str_cat(
              "flow ", flow.id, " at ", t.to_string(), ": engine ",
              engine_admit ? "admitted" : "did not admit",
              " via path ", static_cast<int>(d.path), ", oracle ",
              oracle_admit ? std::string("admitted")
                           : str_cat("rejected (", cold.error(), ")"));
        }
        ++report.mismatches;
      }
    }
    // Mirror the engine's own bookkeeping so the oracle always plans over
    // the same active set.
    if (d.outcome == Outcome::kAdmitted) {
      mirror.push_back(flow);
    } else if (d.outcome == Outcome::kDegraded) {
      FlowSpec degraded = flow;
      degraded.service = ServiceClass::kBestEffort;
      mirror.push_back(degraded);
    }
    if (!engine.live_consistent()) ++report.consistency_failures;
  };
  observer.on_departure = [&](SimTime, int flow_id) {
    const auto it =
        std::find_if(mirror.begin(), mirror.end(),
                     [&](const FlowSpec& f) { return f.id == flow_id; });
    if (it != mirror.end()) mirror.erase(it);
    if (!engine.live_consistent()) ++report.consistency_failures;
  };

  report.churn = replay_poisson_churn(engine, spec, &observer);
  report.events = report.churn.events;
  return report;
}

}  // namespace wimesh::admit
