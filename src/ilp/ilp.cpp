#include "wimesh/ilp/ilp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>

#include "wimesh/common/log.h"
#include "wimesh/common/strings.h"
#include "wimesh/trace/trace.h"

namespace wimesh {

VarId IlpModel::add_continuous(double lo, double up, double obj,
                               std::string name) {
  return lp_.add_variable(lo, up, obj, std::move(name));
}

VarId IlpModel::add_integer(double lo, double up, double obj,
                            std::string name) {
  WIMESH_ASSERT_MSG(std::floor(lo) == lo && std::floor(up) == up,
                    "integer variable bounds must be integral");
  const VarId v = lp_.add_variable(lo, up, obj, std::move(name));
  integer_vars_.push_back(v);
  return v;
}

VarId IlpModel::add_binary(double obj, std::string name) {
  return add_integer(0.0, 1.0, obj, std::move(name));
}

bool IlpModel::is_integer_var(VarId v) const {
  return std::binary_search(integer_vars_.begin(), integer_vars_.end(), v);
}

void IlpModel::set_branch_priority(VarId v, double priority) {
  WIMESH_ASSERT(v >= 0 && v < variable_count());
  if (priorities_.size() < static_cast<std::size_t>(variable_count())) {
    priorities_.resize(static_cast<std::size_t>(variable_count()), 0.0);
  }
  priorities_[static_cast<std::size_t>(v)] = priority;
}

double IlpModel::branch_priority(VarId v) const {
  const auto idx = static_cast<std::size_t>(v);
  return idx < priorities_.size() ? priorities_[idx] : 0.0;
}

namespace {

// A search node is the set of tightened bounds on integer variables,
// relative to the root model.
struct Node {
  std::vector<double> int_lo;
  std::vector<double> int_up;
  double parent_bound;  // LP bound inherited from the parent (for pruning)
  int depth = 0;
};

class BranchAndBound {
 public:
  BranchAndBound(const IlpModel& model, const IlpOptions& opt)
      : model_(model), opt_(opt) {}

  IlpResult run();

 private:
  // The LP bound direction depends on objective sense; normalize everything
  // to minimization internally.
  double norm(double obj) const {
    return model_.lp().objective_sense() == ObjSense::kMinimize ? obj : -obj;
  }

  bool time_exhausted() const {
    return std::chrono::steady_clock::now() >= deadline_;
  }

  // Applies node bounds onto the working model.
  void apply_bounds(const Node& node);

  // Index into integer_vars() of the most fractional integer variable in x,
  // or -1 when all are integral within tolerance.
  int pick_branch_var(const std::vector<double>& x) const;

  void record_incumbent(const std::vector<double>& x, double normalized_obj);

  const IlpModel& model_;
  const IlpOptions& opt_;
  LpModel work_;  // mutable copy whose bounds are rewritten per node
  std::chrono::steady_clock::time_point deadline_;

  bool have_incumbent_ = false;
  double incumbent_obj_ = 0.0;  // normalized (minimization)
  std::vector<double> incumbent_x_;

  IlpResult result_;
};

void BranchAndBound::apply_bounds(const Node& node) {
  const auto& ints = model_.integer_vars();
  for (std::size_t k = 0; k < ints.size(); ++k) {
    work_.set_bounds(ints[k], node.int_lo[k], node.int_up[k]);
  }
}

int BranchAndBound::pick_branch_var(const std::vector<double>& x) const {
  // Among fractional variables, branch the highest-priority one; priority
  // ties fall back to most-fractional.
  const auto& ints = model_.integer_vars();
  int best = -1;
  double best_priority = 0.0;
  double best_frac_dist = 0.0;
  for (std::size_t k = 0; k < ints.size(); ++k) {
    const double v = x[static_cast<std::size_t>(ints[k])];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);  // distance to integer
    if (dist <= opt_.integrality_tol) continue;
    const double priority = model_.branch_priority(ints[k]);
    if (best < 0 || priority > best_priority ||
        (priority == best_priority && dist > best_frac_dist)) {
      best = static_cast<int>(k);
      best_priority = priority;
      best_frac_dist = dist;
    }
  }
  return best;
}

void BranchAndBound::record_incumbent(const std::vector<double>& x,
                                      double normalized_obj) {
  if (have_incumbent_ && normalized_obj >= incumbent_obj_) return;
  have_incumbent_ = true;
  incumbent_obj_ = normalized_obj;
  incumbent_x_ = x;
  // Snap integers exactly; they are within integrality_tol already.
  for (VarId v : model_.integer_vars()) {
    auto& val = incumbent_x_[static_cast<std::size_t>(v)];
    val = std::round(val);
  }
}

IlpResult BranchAndBound::run() {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(opt_.time_limit_seconds));
  work_ = model_.lp();

  const auto& ints = model_.integer_vars();
  Node root;
  root.int_lo.reserve(ints.size());
  root.int_up.reserve(ints.size());
  for (VarId v : ints) {
    root.int_lo.push_back(std::ceil(model_.lp().lower_bound(v)));
    root.int_up.push_back(std::floor(model_.lp().upper_bound(v)));
  }
  root.parent_bound = -kLpInfinity;

  // DFS stack: depth-first finds incumbents quickly, and with bound pruning
  // that is what matters for the feasibility programs the scheduler poses.
  std::vector<Node> stack;
  stack.push_back(std::move(root));

  bool limits_hit = false;
  double best_open_bound = -kLpInfinity;  // min over pruned/open nodes handled at end

  while (!stack.empty()) {
    if (result_.nodes_explored >= opt_.max_nodes || time_exhausted()) {
      limits_hit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    // Bound pruning against the incumbent before paying for the LP.
    if (have_incumbent_ &&
        node.parent_bound >= incumbent_obj_ - opt_.objective_gap_tol) {
      continue;
    }

    apply_bounds(node);
    ++result_.nodes_explored;
    const LpResult lp = solve_lp(work_, opt_.lp);
    result_.lp_iterations += lp.iterations;

    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kIterationLimit) {
      limits_hit = true;
      continue;
    }
    if (lp.status == LpStatus::kUnbounded) {
      // An unbounded relaxation at the root means the ILP itself is
      // unbounded or infeasible; treat as a hard error — the scheduling
      // models are always bounded.
      WIMESH_ASSERT_MSG(false, "unbounded LP relaxation in branch & bound");
    }

    const double bound = norm(lp.objective);
    if (have_incumbent_ && bound >= incumbent_obj_ - opt_.objective_gap_tol) {
      continue;  // cannot improve
    }

    const int k = pick_branch_var(lp.x);
    if (k < 0) {
      record_incumbent(lp.x, bound);
      if (opt_.stop_at_first_feasible) break;
      continue;
    }

    // Track the weakest open bound for reporting.
    best_open_bound = std::max(best_open_bound, -bound);

    const VarId v = ints[static_cast<std::size_t>(k)];
    const double xv = lp.x[static_cast<std::size_t>(v)];
    const double floor_v = std::floor(xv);

    Node down = node;  // v <= floor(xv)
    down.int_up[static_cast<std::size_t>(k)] =
        std::min(down.int_up[static_cast<std::size_t>(k)], floor_v);
    down.parent_bound = bound;
    down.depth = node.depth + 1;

    Node up = std::move(node);  // v >= ceil(xv)
    up.int_lo[static_cast<std::size_t>(k)] =
        std::max(up.int_lo[static_cast<std::size_t>(k)], floor_v + 1.0);
    up.parent_bound = bound;
    up.depth += 1;

    // Dive toward the nearer integer first (pushed last = popped first).
    const double frac = xv - floor_v;
    if (frac > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  const double sense =
      model_.lp().objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;
  if (have_incumbent_) {
    result_.objective = sense * incumbent_obj_;
    result_.x = incumbent_x_;
    const bool proven = !limits_hit && stack.empty() &&
                        !opt_.stop_at_first_feasible;
    result_.status = proven || (opt_.stop_at_first_feasible)
                         ? (opt_.stop_at_first_feasible ? IlpStatus::kFeasible
                                                        : IlpStatus::kOptimal)
                         : IlpStatus::kFeasible;
    result_.best_bound = sense * incumbent_obj_;
  } else if (!limits_hit && stack.empty()) {
    result_.status = IlpStatus::kInfeasible;
  } else {
    result_.status = IlpStatus::kLimitReached;
  }
  return result_;
}

}  // namespace

IlpResult solve_ilp(const IlpModel& model, const IlpOptions& options) {
  const trace::Span span(trace::SpanName::kIlpSolve);
  BranchAndBound bnb(model, options);
  return bnb.run();
}

}  // namespace wimesh
