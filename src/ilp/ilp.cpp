#include "wimesh/ilp/ilp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "wimesh/common/log.h"
#include "wimesh/common/strings.h"
#include "wimesh/exec/executor.h"
#include "wimesh/trace/trace.h"

namespace wimesh {

VarId IlpModel::add_continuous(double lo, double up, double obj,
                               std::string name) {
  return lp_.add_variable(lo, up, obj, std::move(name));
}

VarId IlpModel::add_integer(double lo, double up, double obj,
                            std::string name) {
  WIMESH_ASSERT_MSG(std::floor(lo) == lo && std::floor(up) == up,
                    "integer variable bounds must be integral");
  const VarId v = lp_.add_variable(lo, up, obj, std::move(name));
  integer_vars_.push_back(v);
  return v;
}

VarId IlpModel::add_binary(double obj, std::string name) {
  return add_integer(0.0, 1.0, obj, std::move(name));
}

bool IlpModel::is_integer_var(VarId v) const {
  return std::binary_search(integer_vars_.begin(), integer_vars_.end(), v);
}

void IlpModel::set_branch_priority(VarId v, double priority) {
  WIMESH_ASSERT(v >= 0 && v < variable_count());
  if (priorities_.size() < static_cast<std::size_t>(variable_count())) {
    priorities_.resize(static_cast<std::size_t>(variable_count()), 0.0);
  }
  priorities_[static_cast<std::size_t>(v)] = priority;
}

double IlpModel::branch_priority(VarId v) const {
  const auto idx = static_cast<std::size_t>(v);
  return idx < priorities_.size() ? priorities_[idx] : 0.0;
}

namespace {

// Nodes per strategy per synchronized round. Small enough that incumbents
// propagate between strategies quickly, large enough that barrier overhead
// is negligible against LP solve cost.
constexpr long kRoundQuota = 64;
constexpr int kMaxStrategies = 4;

// A search node is the set of tightened bounds on integer variables,
// relative to the root model, plus the parent's optimal LP basis for
// warm-starting this node's relaxation.
struct Node {
  std::vector<double> int_lo;
  std::vector<double> int_up;
  double parent_bound;  // LP bound inherited from the parent (for pruning)
  int depth = 0;
  std::shared_ptr<const LpBasis> warm;  // may be null
};

// How a portfolio member explores the tree. All strategies are exact; they
// differ only in which subtree they visit first, which is exactly what
// decides how fast an incumbent (and therefore pruning power) appears.
struct StrategyConfig {
  bool use_priority = true;      // honor IlpModel branch priorities
  bool least_fractional = false; // pick the variable CLOSEST to integer
  int dive = 0;                  // 0: nearer integer first, -1: floor, +1: ceil
};

constexpr StrategyConfig kStrategyConfigs[kMaxStrategies] = {
    // 0: the classic dive — priorities, most-fractional ties, nearer side.
    {true, false, 0},
    // 1: pure most-fractional, always dive down (floor side).
    {false, false, -1},
    // 2: priorities, but dive up — explores the mirrored orderings first.
    {true, false, +1},
    // 3: least-fractional rounding dive — commits near-integral variables.
    {false, true, 0},
};

// One portfolio member: its own DFS stack, working LP model and round-local
// incumbent. Never touched by two threads at once — the coordinator merges
// state only at round barriers.
struct Strategy {
  int index = 0;
  StrategyConfig cfg;
  LpModel work;  // private copy whose bounds are rewritten per node
  std::vector<Node> stack;

  bool have_incumbent = false;
  double incumbent_obj = 0.0;  // normalized (minimization)
  std::vector<double> incumbent_x;

  long nodes = 0;
  long lp_iterations = 0;
  long warm_hits = 0;
  long warm_attempts = 0;
  // Weakest bound among nodes this strategy abandoned unresolved (LP
  // iteration limit); participates in the dual bound like an open node.
  double lost_bound = kLpInfinity;
  bool lp_limit_hit = false;
  bool time_hit = false;
  bool found_feasible_this_round = false;
};

class PortfolioBranchAndBound {
 public:
  PortfolioBranchAndBound(const IlpModel& model, const IlpOptions& opt)
      : model_(model), opt_(opt) {}

  IlpResult run();

 private:
  // The LP bound direction depends on objective sense; normalize everything
  // to minimization internally.
  double norm(double obj) const {
    return model_.lp().objective_sense() == ObjSense::kMinimize ? obj : -obj;
  }

  bool time_exhausted() const {
    return std::chrono::steady_clock::now() >= deadline_;
  }

  void apply_bounds(LpModel& work, const Node& node) const;

  // Index into integer_vars() of the branch variable under a strategy's
  // rule, or -1 when all integer variables are integral within tolerance.
  int pick_branch_var(const StrategyConfig& cfg,
                      const std::vector<double>& x) const;

  // Branches `node` on the strategy's chosen variable of `x` and pushes
  // both children (dive child last, so it pops first).
  void push_children(Strategy& s, Node node, const std::vector<double>& x,
                     double bound, int k,
                     std::shared_ptr<const LpBasis> warm) const;

  void record_incumbent(Strategy& s, const std::vector<double>& x,
                        double normalized_obj) const;

  // Runs one synchronized round of a single strategy: up to kRoundQuota
  // node LPs, pruning against min(shared incumbent frozen at the barrier,
  // the strategy's own round-local incumbent).
  void run_round(Strategy& s, long quota);

  // Deterministic barrier merge (strategy index order): adopt strictly
  // better incumbents so exact ties keep the lowest strategy index.
  void merge_incumbents();

  // Dual (lower, normalized) bound proven by strategy s alone: each
  // strategy covers the whole tree, so the global bound is the max over
  // strategies.
  double strategy_lower_bound(const Strategy& s) const;

  const IlpModel& model_;
  const IlpOptions& opt_;
  std::chrono::steady_clock::time_point deadline_;

  std::vector<Strategy> strategies_;

  bool shared_have_incumbent_ = false;
  double shared_incumbent_obj_ = 0.0;  // normalized
  std::vector<double> shared_incumbent_x_;
  int shared_incumbent_strategy_ = 0;

  IlpResult result_;
};

void PortfolioBranchAndBound::apply_bounds(LpModel& work,
                                           const Node& node) const {
  const auto& ints = model_.integer_vars();
  for (std::size_t k = 0; k < ints.size(); ++k) {
    work.set_bounds(ints[k], node.int_lo[k], node.int_up[k]);
  }
}

int PortfolioBranchAndBound::pick_branch_var(
    const StrategyConfig& cfg, const std::vector<double>& x) const {
  const auto& ints = model_.integer_vars();
  int best = -1;
  double best_priority = 0.0;
  double best_frac_dist = 0.0;
  for (std::size_t k = 0; k < ints.size(); ++k) {
    const double v = x[static_cast<std::size_t>(ints[k])];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);  // distance to integer
    if (dist <= opt_.integrality_tol) continue;
    const double priority =
        cfg.use_priority ? model_.branch_priority(ints[k]) : 0.0;
    const bool frac_better =
        cfg.least_fractional ? dist < best_frac_dist : dist > best_frac_dist;
    if (best < 0 || priority > best_priority ||
        (priority == best_priority && frac_better)) {
      best = static_cast<int>(k);
      best_priority = priority;
      best_frac_dist = dist;
    }
  }
  return best;
}

void PortfolioBranchAndBound::push_children(
    Strategy& s, Node node, const std::vector<double>& x, double bound, int k,
    std::shared_ptr<const LpBasis> warm) const {
  const auto& ints = model_.integer_vars();
  const VarId v = ints[static_cast<std::size_t>(k)];
  const double xv = x[static_cast<std::size_t>(v)];
  const double floor_v = std::floor(xv);

  Node down = node;  // v <= floor(xv)
  down.int_up[static_cast<std::size_t>(k)] =
      std::min(down.int_up[static_cast<std::size_t>(k)], floor_v);
  down.parent_bound = bound;
  down.depth = node.depth + 1;
  down.warm = warm;

  Node up = std::move(node);  // v >= ceil(xv)
  up.int_lo[static_cast<std::size_t>(k)] =
      std::max(up.int_lo[static_cast<std::size_t>(k)], floor_v + 1.0);
  up.parent_bound = bound;
  up.depth += 1;
  up.warm = std::move(warm);

  // The dive child is pushed last (popped first).
  const double frac = xv - floor_v;
  const bool dive_up =
      s.cfg.dive > 0 || (s.cfg.dive == 0 && frac > 0.5);
  if (dive_up) {
    s.stack.push_back(std::move(down));
    s.stack.push_back(std::move(up));
  } else {
    s.stack.push_back(std::move(up));
    s.stack.push_back(std::move(down));
  }
}

void PortfolioBranchAndBound::record_incumbent(Strategy& s,
                                               const std::vector<double>& x,
                                               double normalized_obj) const {
  if (s.have_incumbent && normalized_obj >= s.incumbent_obj) return;
  s.have_incumbent = true;
  s.incumbent_obj = normalized_obj;
  s.incumbent_x = x;
  // Snap integers exactly; they are within integrality_tol already.
  for (VarId v : model_.integer_vars()) {
    auto& val = s.incumbent_x[static_cast<std::size_t>(v)];
    val = std::round(val);
  }
}

void PortfolioBranchAndBound::run_round(Strategy& s, long quota) {
  s.found_feasible_this_round = false;
  // Pruning cutoff: the shared incumbent is frozen for the round (merged
  // at barriers only, so it is identical no matter how threads interleave);
  // the strategy additionally prunes against its own round-local finds.
  long used = 0;
  while (!s.stack.empty() && used < quota) {
    if (time_exhausted()) {
      s.time_hit = true;
      return;
    }
    Node node = std::move(s.stack.back());
    s.stack.pop_back();

    double cutoff = kLpInfinity;
    bool have_cutoff = false;
    if (shared_have_incumbent_) {
      cutoff = shared_incumbent_obj_;
      have_cutoff = true;
    }
    if (s.have_incumbent && s.incumbent_obj < cutoff) {
      cutoff = s.incumbent_obj;
      have_cutoff = true;
    }

    // Bound pruning against the incumbent before paying for the LP.
    if (have_cutoff && node.parent_bound >= cutoff - opt_.objective_gap_tol) {
      continue;
    }

    apply_bounds(s.work, node);
    ++s.nodes;
    ++used;
    const LpBasis* warm =
        opt_.warm_start ? node.warm.get() : nullptr;
    if (warm != nullptr && !warm->empty()) ++s.warm_attempts;
    LpBasis basis_out;
    const LpResult lp = solve_lp(s.work, opt_.lp, warm, &basis_out);
    if (lp.warm_start_used) ++s.warm_hits;
    s.lp_iterations += lp.iterations;

    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kIterationLimit) {
      s.lp_limit_hit = true;
      s.lost_bound = std::min(s.lost_bound, node.parent_bound);
      continue;
    }
    if (lp.status == LpStatus::kUnbounded) {
      // An unbounded relaxation means the ILP itself is unbounded or
      // infeasible; treat as a hard error — the scheduling models are
      // always bounded.
      WIMESH_ASSERT_MSG(false, "unbounded LP relaxation in branch & bound");
    }

    const double bound = norm(lp.objective);
    if (have_cutoff && bound >= cutoff - opt_.objective_gap_tol) {
      continue;  // cannot improve
    }

    const int k = pick_branch_var(s.cfg, lp.x);
    if (k < 0) {
      record_incumbent(s, lp.x, bound);
      if (opt_.stop_at_first_feasible) {
        s.found_feasible_this_round = true;
        return;
      }
      continue;
    }

    std::shared_ptr<const LpBasis> child_warm;
    if (opt_.warm_start && !basis_out.empty()) {
      child_warm = std::make_shared<const LpBasis>(std::move(basis_out));
    }
    push_children(s, std::move(node), lp.x, bound, k, std::move(child_warm));
  }
}

void PortfolioBranchAndBound::merge_incumbents() {
  for (Strategy& s : strategies_) {
    if (!s.have_incumbent) continue;
    if (!shared_have_incumbent_ || s.incumbent_obj < shared_incumbent_obj_) {
      shared_have_incumbent_ = true;
      shared_incumbent_obj_ = s.incumbent_obj;
      shared_incumbent_x_ = s.incumbent_x;
      shared_incumbent_strategy_ = s.index;
    }
  }
}

double PortfolioBranchAndBound::strategy_lower_bound(
    const Strategy& s) const {
  // Open nodes (and nodes lost to LP iteration limits) may hide solutions
  // as good as their inherited bound; everything else is covered by the
  // strategy's own exploration, so the incumbent bounds it.
  double lb = s.lost_bound;
  for (const Node& n : s.stack) lb = std::min(lb, n.parent_bound);
  return lb;
}

IlpResult PortfolioBranchAndBound::run() {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(opt_.time_limit_seconds));

  const auto& ints = model_.integer_vars();
  const double sense =
      model_.lp().objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;
  const int portfolio =
      std::clamp(opt_.portfolio, 1, kMaxStrategies);

  Node root;
  root.int_lo.reserve(ints.size());
  root.int_up.reserve(ints.size());
  for (VarId v : ints) {
    root.int_lo.push_back(std::ceil(model_.lp().lower_bound(v)));
    root.int_up.push_back(std::floor(model_.lp().upper_bound(v)));
  }
  root.parent_bound = -kLpInfinity;

  // The root relaxation is solved once and shared: it seeds every
  // strategy's children, the exported root basis, and the dual bound floor.
  LpModel root_work = model_.lp();
  {
    // Integer bounds may be fractional in the model; tighten to integers.
    for (std::size_t k = 0; k < ints.size(); ++k) {
      root_work.set_bounds(ints[k], root.int_lo[k], root.int_up[k]);
    }
  }
  result_.nodes_explored = 1;
  LpBasis root_basis;
  const LpResult root_lp =
      solve_lp(root_work, opt_.lp, opt_.root_basis, &root_basis);
  result_.lp_iterations = root_lp.iterations;
  if (opt_.root_basis != nullptr && !opt_.root_basis->empty()) {
    ++result_.warm_start_attempts;
    if (root_lp.warm_start_used) ++result_.warm_start_hits;
  }
  if (opt_.root_basis_out != nullptr) *opt_.root_basis_out = root_basis;

  if (root_lp.status == LpStatus::kInfeasible) {
    result_.status = IlpStatus::kInfeasible;
    return result_;
  }
  if (root_lp.status == LpStatus::kIterationLimit) {
    result_.status = IlpStatus::kLimitReached;
    return result_;
  }
  WIMESH_ASSERT_MSG(root_lp.status != LpStatus::kUnbounded,
                    "unbounded LP relaxation in branch & bound");

  const double root_bound = norm(root_lp.objective);
  const int root_branch_probe = pick_branch_var(kStrategyConfigs[0], root_lp.x);
  if (root_branch_probe < 0) {
    // Root relaxation is already integral: proven optimal immediately.
    result_.objective = sense * root_bound;
    result_.x = root_lp.x;
    for (VarId v : ints) {
      auto& val = result_.x[static_cast<std::size_t>(v)];
      val = std::round(val);
    }
    result_.best_bound = result_.objective;
    result_.status = opt_.stop_at_first_feasible ? IlpStatus::kFeasible
                                                 : IlpStatus::kOptimal;
    result_.nodes_per_strategy.assign(static_cast<std::size_t>(portfolio), 0);
    return result_;
  }

  // Seed the portfolio: every strategy branches the shared root solution by
  // its own rule and owns both children.
  std::shared_ptr<const LpBasis> root_warm;
  if (opt_.warm_start && !root_basis.empty()) {
    root_warm = std::make_shared<const LpBasis>(std::move(root_basis));
  }
  strategies_.resize(static_cast<std::size_t>(portfolio));
  for (int i = 0; i < portfolio; ++i) {
    Strategy& s = strategies_[static_cast<std::size_t>(i)];
    s.index = i;
    s.cfg = kStrategyConfigs[i];
    s.work = model_.lp();
    const int k = pick_branch_var(s.cfg, root_lp.x);
    WIMESH_ASSERT(k >= 0);
    push_children(s, root, root_lp.x, root_bound, k, root_warm);
  }

  // Synchronized rounds: strategies run independently (optionally on
  // worker threads) against the shared incumbent frozen at the barrier,
  // then merge deterministically in index order.
  bool limits_hit = false;
  for (;;) {
    bool any_open = false;
    for (const Strategy& s : strategies_) {
      if (!s.stack.empty()) any_open = true;
    }
    if (!any_open) break;

    long total_nodes = result_.nodes_explored;
    for (const Strategy& s : strategies_) total_nodes += s.nodes;
    if (total_nodes >= opt_.max_nodes || time_exhausted()) {
      limits_hit = true;
      break;
    }
    if (opt_.stop_at_first_feasible && shared_have_incumbent_) break;

    const long quota = std::min<long>(
        kRoundQuota, std::max<long>(1, opt_.max_nodes - total_nodes));
    const int jobs = exec::effective_jobs(std::max(1, opt_.threads),
                                          strategies_.size());
    if (jobs <= 1) {
      for (Strategy& s : strategies_) run_round(s, quota);
    } else {
      exec::run_indexed(jobs, strategies_.size(), [&](std::size_t i) {
        run_round(strategies_[i], quota);
      });
    }
    ++result_.rounds;
    merge_incumbents();

    bool time_hit = false;
    for (const Strategy& s : strategies_) time_hit |= s.time_hit;
    if (time_hit) {
      limits_hit = true;
      break;
    }
  }

  merge_incumbents();

  // Final bookkeeping: totals, per-strategy counters, dual bound.
  result_.nodes_per_strategy.clear();
  for (const Strategy& s : strategies_) {
    result_.nodes_explored += s.nodes;
    result_.lp_iterations += s.lp_iterations;
    result_.warm_start_hits += s.warm_hits;
    result_.warm_start_attempts += s.warm_attempts;
    result_.nodes_per_strategy.push_back(s.nodes);
  }

  // Each strategy alone covers the whole tree, so the proven lower bound is
  // the best (max) across strategies — never below the root relaxation.
  double lower_bound = -kLpInfinity;
  for (const Strategy& s : strategies_) {
    lower_bound = std::max(lower_bound, strategy_lower_bound(s));
  }
  lower_bound = std::max(lower_bound, root_bound);
  if (shared_have_incumbent_) {
    lower_bound = std::min(lower_bound, shared_incumbent_obj_);
  }

  // A strategy with an empty stack and no unresolved nodes explored
  // everything; with stop_at_first_feasible a strategy returns early on a
  // find, so exhaustion there only ever proves infeasibility.
  bool exhausted = false;
  for (const Strategy& s : strategies_) {
    if (s.stack.empty() && !s.lp_limit_hit && !s.time_hit &&
        !s.found_feasible_this_round) {
      exhausted = true;
    }
  }
  if (limits_hit) exhausted = false;

  if (shared_have_incumbent_) {
    result_.objective = sense * shared_incumbent_obj_;
    result_.x = shared_incumbent_x_;
    result_.winning_strategy = shared_incumbent_strategy_;
    // Satellite fix: the dual bound is reported truthfully, and open nodes
    // dominated by the final incumbent close the gap exactly as if they
    // had been pruned before the limit hit.
    const bool gap_closed =
        lower_bound >= shared_incumbent_obj_ - opt_.objective_gap_tol;
    result_.best_bound =
        sense * (gap_closed ? shared_incumbent_obj_ : lower_bound);
    if (opt_.stop_at_first_feasible) {
      result_.status = IlpStatus::kFeasible;
    } else if (exhausted || gap_closed) {
      result_.status = IlpStatus::kOptimal;
    } else {
      result_.status = IlpStatus::kFeasible;
    }
  } else if (exhausted) {
    // Exhaustion without a find is an infeasibility proof (this holds for
    // stop_at_first_feasible too: early return only happens on a find).
    result_.status = IlpStatus::kInfeasible;
  } else {
    result_.status = IlpStatus::kLimitReached;
    result_.best_bound = sense * lower_bound;
  }
  return result_;
}

}  // namespace

IlpResult solve_ilp(const IlpModel& model, const IlpOptions& options) {
  const trace::Span span(trace::SpanName::kIlpSolve);
  PortfolioBranchAndBound bnb(model, options);
  IlpResult result = bnb.run();

  // Trace emission stays on the coordinating thread: Tracer is not
  // thread-safe, and worker counters were merged above.
  if (trace::current() != nullptr) {
    if (result.warm_start_attempts > 0) {
      trace::event(trace::EventType::kIlpWarmStart, SimTime::zero(), -1,
                   result.warm_start_hits, result.warm_start_attempts);
    }
    for (std::size_t i = 0; i < result.nodes_per_strategy.size(); ++i) {
      trace::event(trace::EventType::kIlpPortfolio, SimTime::zero(), -1,
                   static_cast<std::int64_t>(i), result.nodes_per_strategy[i],
                   result.rounds,
                   result.winning_strategy == static_cast<int>(i) ? 1 : 0);
    }
  }
  return result;
}

}  // namespace wimesh
