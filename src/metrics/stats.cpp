#include "wimesh/metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "wimesh/common/strings.h"

namespace wimesh {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  WIMESH_ASSERT_MSG(!samples_.empty(), "quantile of empty sample set");
  WIMESH_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<double> SampleSet::cdf(const std::vector<double>& points) const {
  ensure_sorted();
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), p);
    out.push_back(samples_.empty()
                      ? 0.0
                      : static_cast<double>(it - samples_.begin()) /
                            static_cast<double>(samples_.size()));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)) {
  WIMESH_ASSERT(hi > lo && bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::string Histogram::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out += str_cat(fmt_double(bin_lower(i), 6), ",", counts_[i], "\n");
  }
  return out;
}

}  // namespace wimesh
