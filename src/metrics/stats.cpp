#include "wimesh/metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "wimesh/common/strings.h"

namespace wimesh {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  invalidate_cache();
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

const std::vector<double>& SampleSet::sorted() const {
  // Double-checked: the fast path is a single acquire load once the cache
  // is built; the first reader (or the first after an add) sorts a copy
  // under the mutex. samples_ itself is never reordered, so concurrent
  // const readers never observe a vector mid-sort — the data race the old
  // const_cast-and-sort-in-place version had.
  if (!cache_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (!cache_valid_.load(std::memory_order_relaxed)) {
      sorted_cache_ = samples_;
      std::sort(sorted_cache_.begin(), sorted_cache_.end());
      cache_valid_.store(true, std::memory_order_release);
    }
  }
  return sorted_cache_;
}

double SampleSet::quantile(double q) const {
  WIMESH_ASSERT_MSG(!samples_.empty(), "quantile of empty sample set");
  WIMESH_ASSERT(q >= 0.0 && q <= 1.0);
  const std::vector<double>& s = sorted();
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

std::vector<double> SampleSet::cdf(const std::vector<double>& points) const {
  const std::vector<double>& s = sorted();
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    const auto it = std::upper_bound(s.begin(), s.end(), p);
    out.push_back(s.empty() ? 0.0
                            : static_cast<double>(it - s.begin()) /
                                  static_cast<double>(s.size()));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)) {
  WIMESH_ASSERT(hi > lo && bins > 0);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  if (bin >= static_cast<std::ptrdiff_t>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(bin)];
}

std::string Histogram::to_csv() const {
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out += str_cat(fmt_double(bin_lower(i), 6), ",", counts_[i], "\n");
  }
  if (underflow_ != 0) out += str_cat("underflow,", underflow_, "\n");
  if (overflow_ != 0) out += str_cat("overflow,", overflow_, "\n");
  return out;
}

}  // namespace wimesh
