#include "wimesh/tdma/overlay.h"

#include <algorithm>

#include "wimesh/trace/trace.h"

namespace wimesh {

int packets_per_block(const EmulationParams& params, const PhyMode& phy,
                      int block_slots, std::size_t payload_bytes) {
  WIMESH_ASSERT(block_slots >= 0);
  const SimTime usable =
      params.frame.slot_duration() * block_slots - params.guard_time;
  if (usable <= SimTime::zero()) return 0;
  const SimTime per_packet = DcfMac::overlay_service_time(phy, payload_bytes);
  return static_cast<int>(usable / per_packet);
}

int block_for_packets(const EmulationParams& params, const PhyMode& phy,
                      int packets, std::size_t payload_bytes) {
  WIMESH_ASSERT(packets > 0);
  const SimTime per_packet = DcfMac::overlay_service_time(phy, payload_bytes);
  const SimTime needed = per_packet * packets + params.guard_time;
  const SimTime slot = params.frame.slot_duration();
  const auto blocks =
      static_cast<int>((needed + slot - SimTime::nanoseconds(1)) / slot);
  if (blocks > params.frame.data_slots) return -1;
  return blocks;
}

double emulation_efficiency(const EmulationParams& params, const PhyMode& phy,
                            std::size_t payload_bytes) {
  const int packets = packets_per_block(params, phy, params.frame.data_slots,
                                        payload_bytes);
  const double delivered_bits =
      static_cast<double>(packets) * 8.0 * static_cast<double>(payload_bytes);
  const double nominal_bits =
      phy.bitrate_bps() * params.frame.frame_duration.to_seconds();
  return delivered_bits / nominal_bits;
}

TdmaOverlayNode::TdmaOverlayNode(Simulator& sim, DcfMac& mac,
                                 const SyncProtocol& sync, NodeId self,
                                 EmulationParams params)
    : sim_(sim), mac_(mac), sync_(sync), self_(self), params_(params) {
  WIMESH_ASSERT(mac.self() == self);
  mac_.set_deadline_handler([this](const std::vector<MacPacket>& returned) {
    on_deadline_requeue(returned);
  });
}

void TdmaOverlayNode::set_grants(std::vector<TxGrant> grants) {
  for (const TxGrant& g : grants) {
    WIMESH_ASSERT(g.link != kInvalidLink);
    WIMESH_ASSERT(g.neighbor != kInvalidNode);
    WIMESH_ASSERT(g.range.length > 0);
    queues_.try_emplace(g.link);
  }
  grants_ = std::move(grants);
}

void TdmaOverlayNode::start(SimTime stop) {
  schedule_frame(params_.frame.frame_index(sim_.now()), stop);
}

void TdmaOverlayNode::stage_grants(std::int64_t activation_frame,
                                   std::vector<TxGrant> grants, SimTime guard) {
  for (const TxGrant& g : grants) {
    WIMESH_ASSERT(g.link != kInvalidLink);
    WIMESH_ASSERT(g.neighbor != kInvalidNode);
    WIMESH_ASSERT(g.range.length > 0);
  }
  staged_.activation_frame = activation_frame;
  staged_.grants = std::move(grants);
  staged_.guard = guard;
  staged_.pending = true;
}

void TdmaOverlayNode::adopt_staged() {
  const std::int64_t activation_frame = staged_.activation_frame;
  // Queued packets follow their neighbor into the new plan: the repaired
  // schedule may assign a different LinkId to the same adjacency, and a
  // packet in flight cares about where it is going, not what the edge was
  // called. Neighbors the new plan no longer serves from this node lose
  // their backlog (accounted through on_revoked_drop).
  std::unordered_map<NodeId, LinkQueues> by_neighbor;
  for (const TxGrant& g : grants_) {
    auto it = queues_.find(g.link);
    if (it == queues_.end()) continue;
    LinkQueues& dst = by_neighbor[g.neighbor];
    for (auto& p : it->second.guaranteed) dst.guaranteed.push_back(p);
    for (auto& p : it->second.best_effort) dst.best_effort.push_back(p);
    queues_.erase(it);
  }
  // Anything left in queues_ has no current grant (possible only if grants
  // were revoked without replacement earlier); drop it too, attributed to
  // the link it was queued on.
  for (auto& [link, q] : queues_) {
    if (hooks_.on_revoked_drop) {
      for (const MacPacket& p : q.guaranteed) {
        hooks_.on_revoked_drop(self_, link, p);
      }
      for (const MacPacket& p : q.best_effort) {
        hooks_.on_revoked_drop(self_, link, p);
      }
    }
  }
  queues_.clear();

  grants_ = std::move(staged_.grants);
  params_.guard_time = staged_.guard;
  staged_ = StagedGrants{};
  // LinkIds are plan-relative; a stale block event from before the swap
  // must not dequeue from a new-plan queue that happens to reuse its id.
  ++plan_generation_;
  trace::event(trace::EventType::kGrantSwap, sim_.now(), self_,
               static_cast<std::int64_t>(plan_generation_), activation_frame);

  for (const TxGrant& g : grants_) {
    auto it = by_neighbor.find(g.neighbor);
    if (it != by_neighbor.end()) {
      queues_[g.link] = std::move(it->second);
      by_neighbor.erase(it);
    } else {
      queues_.try_emplace(g.link);
    }
  }
  for (const auto& [neighbor, q] : by_neighbor) {
    if (!hooks_.on_revoked_drop) continue;
    for (const MacPacket& p : q.guaranteed) {
      hooks_.on_revoked_drop(self_, kInvalidLink, p);
    }
    for (const MacPacket& p : q.best_effort) {
      hooks_.on_revoked_drop(self_, kInvalidLink, p);
    }
  }
}

bool TdmaOverlayNode::enqueue(LinkId link, MacPacket packet, bool guaranteed) {
  const auto it = queues_.find(link);
  if (it == queues_.end()) return false;
  if (guaranteed) {
    it->second.guaranteed.push_back(packet);
    return true;
  }
  if (it->second.best_effort.size() >= best_effort_queue_cap_) {
    ++best_effort_drops_;
    if (hooks_.on_best_effort_drop) {
      hooks_.on_best_effort_drop(self_, link, packet);
    }
    return true;  // accepted and accounted (drop-tail), not a revocation
  }
  it->second.best_effort.push_back(packet);
  return true;
}

std::size_t TdmaOverlayNode::queue_length(LinkId link) const {
  const auto it = queues_.find(link);
  if (it == queues_.end()) return 0;
  return it->second.guaranteed.size() + it->second.best_effort.size();
}

std::size_t TdmaOverlayNode::total_queued() const {
  std::size_t total = 0;
  for (const auto& [link, q] : queues_) {
    total += q.guaranteed.size() + q.best_effort.size();
  }
  return total;
}

void TdmaOverlayNode::schedule_frame(std::int64_t frame_index, SimTime stop) {
  const SimTime frame_start = params_.frame.frame_start(frame_index);
  if (frame_start >= stop) return;
  trace::event(trace::EventType::kFrameStart, frame_start, self_, frame_index);
  if (staged_.pending && frame_index >= staged_.activation_frame) {
    // Hot-swap exactly on the frame boundary: the repaired plan takes
    // effect before any of this frame's blocks are scheduled.
    adopt_staged();
  }
  for (const TxGrant& grant : grants_) {
    // Fire when *this node's clock* reads the block start.
    const SimTime local_start =
        frame_start + params_.frame.data_slot_offset(grant.range.start);
    SimTime fire = sync_.global_time_for_local(self_, local_start);
    if (fire < sim_.now()) fire = sim_.now();  // clock skew at startup
    const std::uint64_t gen = plan_generation_;
    sim_.schedule_at(fire, [this, grant, gen, frame_index] {
      if (gen == plan_generation_) on_block_start(grant, frame_index);
    });
  }
  // Chain the next frame relative to global time; each block start is
  // re-aligned against the sync clock every frame, so drift cannot
  // accumulate across frames.
  sim_.schedule_at(frame_start + params_.frame.frame_duration,
                   [this, frame_index, stop] {
                     schedule_frame(frame_index + 1, stop);
                   });
}

void TdmaOverlayNode::on_block_start(const TxGrant& grant,
                                     std::int64_t frame_index) {
  if (!enabled_) return;  // crashed node: queues freeze until recovery
  const auto queue_it = queues_.find(grant.link);
  if (queue_it == queues_.end()) return;  // grant revoked by a hot-swap
  auto& queue = queue_it->second;
  if (mac_.in_service() || mac_.queue_length() > 0) {
    // Previous work has not drained — a symptom of an undersized guard or
    // an invalid schedule. Skip the block rather than collide.
    ++busy_at_slot_start_;
    trace::event(trace::EventType::kBlockSkipped, sim_.now(), self_,
                 grant.link);
    if (hooks_.on_block_skipped) hooks_.on_block_skipped(self_, grant.link);
    return;
  }
  trace::event(trace::EventType::kBlockStart, sim_.now(), self_, grant.link,
               grant.range.start, grant.range.length, frame_index);
  // Release exactly the packets whose worst-case (deterministic, in
  // zero-backoff mode) service times fit the block minus the guard.
  // Guaranteed traffic drains first; best effort fills what remains. The
  // same budget becomes the MAC's release deadline: retries provoked by a
  // lossy channel must not transmit past it, and packets that no longer
  // fit come back through on_deadline_requeue.
  const SimTime budget = params_.frame.slot_duration() * grant.range.length -
                         params_.guard_time;
  mac_.set_release_deadline(sim_.now() + budget);
  released_best_effort_.clear();  // MAC verified empty above
  SimTime remaining = budget;
  const auto drain = [&](std::deque<MacPacket>& q, bool guaranteed) {
    while (!q.empty()) {
      MacPacket p = q.front();
      const SimTime cost = mac_.max_service_time(p.bytes);
      if (cost > remaining) break;
      remaining -= cost;
      q.pop_front();
      p.to = grant.neighbor;
      if (!guaranteed) released_best_effort_.insert(p.id);
      mac_.send(p);
      ++packets_released_;
    }
  };
  drain(queue.guaranteed, /*guaranteed=*/true);
  drain(queue.best_effort, /*guaranteed=*/false);
}

void TdmaOverlayNode::on_deadline_requeue(
    const std::vector<MacPacket>& returned) {
  // The MAC hands packets back newest-first, so pushing each onto the front
  // of its queue restores the original FIFO order ahead of anything that
  // arrived during the block. Requeue targets the grant currently serving
  // the packet's neighbor: a hot-swap may have renamed the link since
  // release, and a packet in flight cares about where it is going.
  for (const MacPacket& p : returned) {
    const bool guaranteed = released_best_effort_.erase(p.id) == 0;
    LinkId link = kInvalidLink;
    for (const TxGrant& g : grants_) {
      if (g.neighbor == p.to) {
        link = g.link;
        break;
      }
    }
    const auto it = link == kInvalidLink ? queues_.end() : queues_.find(link);
    if (it == queues_.end()) {
      // No current grant serves this neighbor (revoked mid-service).
      if (hooks_.on_revoked_drop) hooks_.on_revoked_drop(self_, link, p);
      continue;
    }
    auto& q = it->second;
    (guaranteed ? q.guaranteed : q.best_effort).push_front(p);
    ++deadline_requeues_;
  }
}

}  // namespace wimesh
