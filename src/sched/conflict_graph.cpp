#include "wimesh/sched/conflict_graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace wimesh {
namespace {

bool share_endpoint(const Link& l, const Link& m) {
  return l.from == m.from || l.from == m.to || l.to == m.from ||
         l.to == m.to;
}

// The one conflict predicate both the sparse and the reference geometric
// builders evaluate. Over WiFi hardware every data frame is answered by a
// link-layer ACK from the receiver, so BOTH endpoints of a scheduled link
// transmit within its minislots. Two links may share a slot only if no
// endpoint of one can interfere at any endpoint of the other.
bool geometric_conflict(const Link& a, const Link& b,
                        const std::vector<Point>& positions,
                        const RadioModel& radio) {
  const auto pos = [&](NodeId n) {
    WIMESH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < positions.size());
    return positions[static_cast<std::size_t>(n)];
  };
  return share_endpoint(a, b) ||
         radio.interferes(pos(a.from), pos(b.to)) ||
         radio.interferes(pos(a.from), pos(b.from)) ||
         radio.interferes(pos(a.to), pos(b.to)) ||
         radio.interferes(pos(a.to), pos(b.from));
}

// Likewise for the connectivity-only variant: any endpoint adjacency
// between the two links serializes them (ACK-aware).
bool connectivity_conflict(const Link& a, const Link& b,
                           const Graph& connectivity) {
  return share_endpoint(a, b) || connectivity.has_edge(a.from, b.to) ||
         connectivity.has_edge(a.from, b.from) ||
         connectivity.has_edge(a.to, b.to) ||
         connectivity.has_edge(a.to, b.from);
}

// Links incident (as from OR to) to each node, ascending LinkId per node.
std::vector<std::vector<LinkId>> links_by_node(const LinkSet& links) {
  NodeId max_node = -1;
  for (const Link& l : links.links()) {
    max_node = std::max({max_node, l.from, l.to});
  }
  std::vector<std::vector<LinkId>> out(static_cast<std::size_t>(max_node + 1));
  for (LinkId l = 0; l < links.count(); ++l) {
    const Link& link = links.link(l);
    out[static_cast<std::size_t>(link.from)].push_back(l);
    if (link.to != link.from) {
      out[static_cast<std::size_t>(link.to)].push_back(l);
    }
  }
  return out;
}

// Shared sparse skeleton: `candidates_of(l, out)` appends every link that
// could possibly conflict with l (a superset is fine; duplicates are
// fine); the exact predicate then filters. Candidates are sorted so edges
// are added in the same (l asc, m asc) order the pairwise reference uses —
// the resulting Graph is bit-identical, EdgeIds included.
template <typename CandidatesFn, typename ConflictFn>
Graph build_sparse(const LinkSet& links, const CandidatesFn& candidates_of,
                   const ConflictFn& conflict) {
  Graph g(links.count());
  std::vector<LinkId> candidates;
  for (LinkId l = 0; l < links.count(); ++l) {
    candidates.clear();
    candidates_of(l, &candidates);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (LinkId m : candidates) {
      if (m <= l) continue;
      if (conflict(links.link(l), links.link(m))) g.add_edge(l, m);
    }
  }
  return g;
}

// Spatial hash over node positions with cell size == interference range:
// every node within range of p lies in the 3x3 cell block around p's cell.
class CellIndex {
 public:
  CellIndex(const std::vector<Point>& positions,
            const std::vector<std::vector<LinkId>>& incident, double cell) {
    WIMESH_ASSERT(cell > 0);
    cell_ = cell;
    for (NodeId n = 0; n < static_cast<NodeId>(incident.size()); ++n) {
      if (incident[static_cast<std::size_t>(n)].empty()) continue;
      cells_[key_of(positions[static_cast<std::size_t>(n)])].push_back(n);
    }
  }

  // Nodes in the 3x3 cell block around p (a superset of the nodes within
  // cell_ of p), in unspecified order.
  void nearby(const Point& p, std::vector<NodeId>* out) const {
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(key(cx + dx, cy + dy));
        if (it == cells_.end()) continue;
        out->insert(out->end(), it->second.begin(), it->second.end());
      }
    }
  }

 private:
  static std::uint64_t key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(cx) << 32) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  std::uint64_t key_of(const Point& p) const {
    return key(static_cast<std::int64_t>(std::floor(p.x / cell_)),
               static_cast<std::int64_t>(std::floor(p.y / cell_)));
  }

  double cell_ = 1.0;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells_;
};

}  // namespace

Graph build_conflict_graph(const LinkSet& links,
                           const std::vector<Point>& positions,
                           const RadioModel& radio) {
  if (links.count() == 0) return Graph(0);
  const auto incident = links_by_node(links);
  const CellIndex index(positions, incident, radio.interference_range());
  std::vector<NodeId> nodes;
  return build_sparse(
      links,
      [&](LinkId l, std::vector<LinkId>* out) {
        // Any conflicting link has an endpoint within interference range
        // of one of l's endpoints (shared endpoints are distance 0), so
        // the links incident to the 3x3 cell blocks around l's endpoints
        // form a complete candidate set.
        nodes.clear();
        const Link& a = links.link(l);
        index.nearby(positions[static_cast<std::size_t>(a.from)], &nodes);
        index.nearby(positions[static_cast<std::size_t>(a.to)], &nodes);
        for (NodeId n : nodes) {
          const auto& at = incident[static_cast<std::size_t>(n)];
          out->insert(out->end(), at.begin(), at.end());
        }
      },
      [&](const Link& a, const Link& b) {
        return geometric_conflict(a, b, positions, radio);
      });
}

Graph build_conflict_graph(const LinkSet& links, const Graph& connectivity) {
  if (links.count() == 0) return Graph(0);
  const auto incident = links_by_node(links);
  return build_sparse(
      links,
      [&](LinkId l, std::vector<LinkId>* out) {
        // A conflicting link has an endpoint equal or graph-adjacent to
        // one of l's endpoints: enumerate the links incident to that
        // closed 1-hop neighborhood (2-hop adjacency in link space).
        const Link& a = links.link(l);
        for (NodeId u : {a.from, a.to}) {
          const auto& at = incident[static_cast<std::size_t>(u)];
          out->insert(out->end(), at.begin(), at.end());
          for (EdgeId e : connectivity.incident(u)) {
            const NodeId v = connectivity.other_end(e, u);
            if (static_cast<std::size_t>(v) >= incident.size()) continue;
            const auto& atv = incident[static_cast<std::size_t>(v)];
            out->insert(out->end(), atv.begin(), atv.end());
          }
        }
      },
      [&](const Link& a, const Link& b) {
        return connectivity_conflict(a, b, connectivity);
      });
}

Graph build_conflict_graph_sinr(const LinkSet& links,
                                const radio::RadioEnvironment& env) {
  const double cutoff = env.interference_cutoff_dbm();
  // Mean power any endpoint of a radiates at any endpoint of b. Both
  // endpoints of a scheduled link transmit (data + link-layer ACK), so the
  // full 2x2 endpoint cross product matters — same shape as
  // geometric_conflict, with received power replacing the range test.
  const auto cross_power = [&](const Link& a, const Link& b) {
    double strongest = -1e300;
    for (NodeId u : {a.from, a.to}) {
      for (NodeId v : {b.from, b.to}) {
        strongest = std::max(strongest, env.mean_rx_power_dbm(u, v));
      }
    }
    return strongest;
  };
  Graph g(links.count());
  for (LinkId l = 0; l < links.count(); ++l) {
    for (LinkId m = l + 1; m < links.count(); ++m) {
      const Link& a = links.link(l);
      const Link& b = links.link(m);
      if (share_endpoint(a, b) || cross_power(a, b) >= cutoff) {
        g.add_edge(l, m);
      }
    }
  }
  return g;
}

Graph build_conflict_graph_naive(const LinkSet& links,
                                 const std::vector<Point>& positions,
                                 const RadioModel& radio) {
  Graph g(links.count());
  for (LinkId l = 0; l < links.count(); ++l) {
    for (LinkId m = l + 1; m < links.count(); ++m) {
      if (geometric_conflict(links.link(l), links.link(m), positions,
                             radio)) {
        g.add_edge(l, m);
      }
    }
  }
  return g;
}

Graph build_conflict_graph_naive(const LinkSet& links,
                                 const Graph& connectivity) {
  Graph g(links.count());
  for (LinkId l = 0; l < links.count(); ++l) {
    for (LinkId m = l + 1; m < links.count(); ++m) {
      if (connectivity_conflict(links.link(l), links.link(m), connectivity)) {
        g.add_edge(l, m);
      }
    }
  }
  return g;
}

int schedule_length_lower_bound(const LinkSet& links,
                                const std::vector<int>& demand) {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  // All links touching one node serialize: per-node demand sums are clique
  // bounds. So is any single link's demand (covered by the sums).
  NodeId max_node = -1;
  for (const Link& l : links.links()) {
    max_node = std::max({max_node, l.from, l.to});
  }
  std::vector<int> node_load(static_cast<std::size_t>(max_node + 1), 0);
  for (LinkId l = 0; l < links.count(); ++l) {
    const auto d = demand[static_cast<std::size_t>(l)];
    WIMESH_ASSERT(d >= 0);
    node_load[static_cast<std::size_t>(links.link(l).from)] += d;
    node_load[static_cast<std::size_t>(links.link(l).to)] += d;
  }
  int bound = 0;
  for (int load : node_load) bound = std::max(bound, load);
  return bound;
}

std::vector<DemandClique> greedy_demand_cliques(const LinkSet& links,
                                                const std::vector<int>& demand,
                                                const Graph& conflicts) {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  WIMESH_ASSERT(conflicts.node_count() == links.count());

  // Greedy clique growth seeded at every demanded link: repeatedly add the
  // heaviest link adjacent (in the conflict graph) to every member.
  std::vector<LinkId> by_demand;
  for (LinkId l = 0; l < links.count(); ++l) {
    if (demand[static_cast<std::size_t>(l)] > 0) by_demand.push_back(l);
  }
  std::stable_sort(by_demand.begin(), by_demand.end(),
                   [&](LinkId a, LinkId b) {
                     return demand[static_cast<std::size_t>(a)] >
                            demand[static_cast<std::size_t>(b)];
                   });
  std::vector<DemandClique> out;
  for (LinkId seed : by_demand) {
    DemandClique clique;
    clique.members.push_back(seed);
    clique.weight = demand[static_cast<std::size_t>(seed)];
    for (LinkId cand : by_demand) {
      if (cand == seed) continue;
      bool adjacent_to_all = true;
      for (LinkId member : clique.members) {
        if (!conflicts.has_edge(cand, member)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) {
        clique.members.push_back(cand);
        clique.weight += demand[static_cast<std::size_t>(cand)];
      }
    }
    std::sort(clique.members.begin(), clique.members.end());
    out.push_back(std::move(clique));
  }
  // Different seeds frequently grow the same maximal clique; keep one copy.
  std::sort(out.begin(), out.end(),
            [](const DemandClique& a, const DemandClique& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.members < b.members;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const DemandClique& a, const DemandClique& b) {
                          return a.members == b.members;
                        }),
            out.end());
  return out;
}

int schedule_length_lower_bound(const LinkSet& links,
                                const std::vector<int>& demand,
                                const Graph& conflicts) {
  WIMESH_ASSERT(conflicts.node_count() == links.count());
  int bound = schedule_length_lower_bound(links, demand);
  for (const DemandClique& c : greedy_demand_cliques(links, demand, conflicts)) {
    bound = std::max(bound, c.weight);
  }
  return bound;
}

}  // namespace wimesh
