#include "wimesh/sched/conflict_graph.h"

#include <algorithm>

namespace wimesh {
namespace {

bool share_endpoint(const Link& l, const Link& m) {
  return l.from == m.from || l.from == m.to || l.to == m.from ||
         l.to == m.to;
}

}  // namespace

Graph build_conflict_graph(const LinkSet& links,
                           const std::vector<Point>& positions,
                           const RadioModel& radio) {
  Graph g(links.count());
  const auto pos = [&](NodeId n) {
    WIMESH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < positions.size());
    return positions[static_cast<std::size_t>(n)];
  };
  for (LinkId l = 0; l < links.count(); ++l) {
    for (LinkId m = l + 1; m < links.count(); ++m) {
      const Link& a = links.link(l);
      const Link& b = links.link(m);
      // Over WiFi hardware every data frame is answered by a link-layer
      // ACK from the receiver, so BOTH endpoints of a scheduled link
      // transmit within its minislots. Two links may share a slot only if
      // no endpoint of one can interfere at any endpoint of the other.
      const bool conflict =
          share_endpoint(a, b) ||
          radio.interferes(pos(a.from), pos(b.to)) ||
          radio.interferes(pos(a.from), pos(b.from)) ||
          radio.interferes(pos(a.to), pos(b.to)) ||
          radio.interferes(pos(a.to), pos(b.from));
      if (conflict) g.add_edge(l, m);
    }
  }
  return g;
}

Graph build_conflict_graph(const LinkSet& links, const Graph& connectivity) {
  Graph g(links.count());
  for (LinkId l = 0; l < links.count(); ++l) {
    for (LinkId m = l + 1; m < links.count(); ++m) {
      const Link& a = links.link(l);
      const Link& b = links.link(m);
      // ACK-aware, as in the geometric variant: any endpoint adjacency
      // between the two links serializes them.
      const bool conflict = share_endpoint(a, b) ||
                            connectivity.has_edge(a.from, b.to) ||
                            connectivity.has_edge(a.from, b.from) ||
                            connectivity.has_edge(a.to, b.to) ||
                            connectivity.has_edge(a.to, b.from);
      if (conflict) g.add_edge(l, m);
    }
  }
  return g;
}

int schedule_length_lower_bound(const LinkSet& links,
                                const std::vector<int>& demand) {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  // All links touching one node serialize: per-node demand sums are clique
  // bounds. So is any single link's demand (covered by the sums).
  NodeId max_node = -1;
  for (const Link& l : links.links()) {
    max_node = std::max({max_node, l.from, l.to});
  }
  std::vector<int> node_load(static_cast<std::size_t>(max_node + 1), 0);
  for (LinkId l = 0; l < links.count(); ++l) {
    const auto d = demand[static_cast<std::size_t>(l)];
    WIMESH_ASSERT(d >= 0);
    node_load[static_cast<std::size_t>(links.link(l).from)] += d;
    node_load[static_cast<std::size_t>(links.link(l).to)] += d;
  }
  int bound = 0;
  for (int load : node_load) bound = std::max(bound, load);
  return bound;
}

std::vector<DemandClique> greedy_demand_cliques(const LinkSet& links,
                                                const std::vector<int>& demand,
                                                const Graph& conflicts) {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  WIMESH_ASSERT(conflicts.node_count() == links.count());

  // Greedy clique growth seeded at every demanded link: repeatedly add the
  // heaviest link adjacent (in the conflict graph) to every member.
  std::vector<LinkId> by_demand;
  for (LinkId l = 0; l < links.count(); ++l) {
    if (demand[static_cast<std::size_t>(l)] > 0) by_demand.push_back(l);
  }
  std::stable_sort(by_demand.begin(), by_demand.end(),
                   [&](LinkId a, LinkId b) {
                     return demand[static_cast<std::size_t>(a)] >
                            demand[static_cast<std::size_t>(b)];
                   });
  std::vector<DemandClique> out;
  for (LinkId seed : by_demand) {
    DemandClique clique;
    clique.members.push_back(seed);
    clique.weight = demand[static_cast<std::size_t>(seed)];
    for (LinkId cand : by_demand) {
      if (cand == seed) continue;
      bool adjacent_to_all = true;
      for (LinkId member : clique.members) {
        if (!conflicts.has_edge(cand, member)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) {
        clique.members.push_back(cand);
        clique.weight += demand[static_cast<std::size_t>(cand)];
      }
    }
    std::sort(clique.members.begin(), clique.members.end());
    out.push_back(std::move(clique));
  }
  // Different seeds frequently grow the same maximal clique; keep one copy.
  std::sort(out.begin(), out.end(),
            [](const DemandClique& a, const DemandClique& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.members < b.members;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const DemandClique& a, const DemandClique& b) {
                          return a.members == b.members;
                        }),
            out.end());
  return out;
}

int schedule_length_lower_bound(const LinkSet& links,
                                const std::vector<int>& demand,
                                const Graph& conflicts) {
  WIMESH_ASSERT(conflicts.node_count() == links.count());
  int bound = schedule_length_lower_bound(links, demand);
  for (const DemandClique& c : greedy_demand_cliques(links, demand, conflicts)) {
    bound = std::max(bound, c.weight);
  }
  return bound;
}

}  // namespace wimesh
