#include "wimesh/sched/schedule_cache.h"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "wimesh/common/strings.h"

namespace wimesh {
namespace {

void append_i32(std::string& out, std::int32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_f64(std::string& out, double v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string schedule_cache_key(const SchedulingProblem& problem,
                               int frame_slots, int policy_tag,
                               int objective_tag,
                               const IlpSchedulerOptions& options) {
  std::string key;
  key.reserve(64 + static_cast<std::size_t>(problem.links.count()) * 12);
  append_i32(key, frame_slots);
  append_i32(key, policy_tag);
  append_i32(key, objective_tag);
  append_i32(key, options.delay_aware ? 1 : 0);
  append_i32(key, options.try_heuristics ? 1 : 0);
  append_i64(key, options.max_nodes);
  append_f64(key, options.time_limit_seconds);
  // Solver accelerators that can change WHICH feasible schedule is found
  // (never feasibility itself). `threads` is deliberately absent: the
  // portfolio result is bit-identical for any thread count.
  append_i32(key, options.clique_cuts ? 1 : 0);
  append_i32(key, options.symmetry_breaking ? 1 : 0);
  append_i32(key, options.warm_start ? 1 : 0);
  append_i32(key, options.tree_fast_path ? 1 : 0);
  append_i32(key, options.portfolio);

  append_i32(key, problem.links.count());
  for (const Link& l : problem.links.links()) {
    append_i32(key, l.from);
    append_i32(key, l.to);
  }
  append_i32(key, static_cast<std::int32_t>(problem.demand.size()));
  for (int d : problem.demand) append_i32(key, d);
  append_i32(key, problem.conflicts.edge_count());
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    append_i32(key, problem.conflicts.edge(e).u);
    append_i32(key, problem.conflicts.edge(e).v);
  }
  append_i32(key, static_cast<std::int32_t>(problem.flows.size()));
  for (const FlowPath& f : problem.flows) {
    append_i32(key, f.delay_budget_frames);
    append_i32(key, static_cast<std::int32_t>(f.links.size()));
    for (LinkId l : f.links) append_i32(key, l);
  }
  return key;
}

struct ScheduleCache::Impl {
  // One entry per distinct key. `ready` flips exactly once, under the
  // shard mutex, after the owning thread finishes the solve.
  struct Cell {
    std::condition_variable ready_cv;
    bool ready = false;
    CachedSchedule value;
  };

  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Cell>> map;
  };
  Shard shards[kShards];
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};

  Shard& shard_for(const std::string& key) {
    return shards[fnv1a(key) % kShards];
  }
};

ScheduleCache::ScheduleCache() : impl_(new Impl) {}
ScheduleCache::~ScheduleCache() { delete impl_; }

CachedSchedule ScheduleCache::get_or_compute(
    const std::string& key,
    const std::function<CachedSchedule()>& compute) {
  Impl::Shard& shard = impl_->shard_for(key);
  std::shared_ptr<Impl::Cell> cell;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    auto [it, inserted] =
        shard.map.try_emplace(key, nullptr);
    if (inserted) {
      it->second = std::make_shared<Impl::Cell>();
      owner = true;
    }
    cell = it->second;
    if (!owner) {
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      cell->ready_cv.wait(lock, [&] { return cell->ready; });
      return cell->value;
    }
  }
  // Sole computer for this key; solve outside the lock so other shard
  // entries stay available.
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  CachedSchedule value = compute();
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    cell->value = value;
    cell->ready = true;
  }
  cell->ready_cv.notify_all();
  return value;
}

ScheduleCache::Stats ScheduleCache::stats() const {
  Stats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  return s;
}

std::size_t ScheduleCache::size() const {
  std::size_t n = 0;
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

void ScheduleCache::clear() {
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
}

std::string ScheduleCache::report() const {
  const Stats s = stats();
  return str_cat("schedule cache: ", s.hits, " hits / ", s.lookups(),
                 " lookups (", fmt_double(100.0 * s.hit_rate(), 1),
                 "% hit rate, ", size(), " entries)");
}

}  // namespace wimesh
