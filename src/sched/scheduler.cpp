#include "wimesh/sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <utility>

#include "wimesh/common/strings.h"
#include "wimesh/graph/shortest_path.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/trace/trace.h"

namespace wimesh {

void SchedulingProblem::check() const {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  WIMESH_ASSERT(conflicts.node_count() == links.count());
  for (int d : demand) WIMESH_ASSERT(d >= 0);
  for (const FlowPath& f : flows) {
    WIMESH_ASSERT(!f.links.empty());
    WIMESH_ASSERT(f.delay_budget_frames >= 0);
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      const LinkId l = f.links[i];
      WIMESH_ASSERT(l >= 0 && l < links.count());
      WIMESH_ASSERT_MSG(demand[static_cast<std::size_t>(l)] > 0,
                        "flow routed over a link with zero demand");
      if (i > 0) {
        // Consecutive hops share the relay node, hence always conflict.
        WIMESH_ASSERT(links.link(f.links[i - 1]).to == links.link(l).from);
        WIMESH_ASSERT(conflicts.has_edge(f.links[i - 1], l));
      }
    }
  }
}

namespace {

std::vector<LinkId> active_links(const SchedulingProblem& p) {
  std::vector<LinkId> act;
  for (LinkId l = 0; l < p.links.count(); ++l) {
    if (p.demand[static_cast<std::size_t>(l)] > 0) act.push_back(l);
  }
  return act;
}

// Builds the final ScheduleResult from a complete transmission order by
// running the Bellman–Ford reconstruction and validating.
Expected<ScheduleResult> finish_from_order(const SchedulingProblem& problem,
                                           TransmissionOrder order,
                                           int frame_slots, long ilp_nodes,
                                           long lp_iterations) {
  auto schedule = order_to_schedule(problem, order, frame_slots);
  if (!schedule.has_value()) {
    return make_error("order reconstruction failed (cyclic or too long)");
  }
  WIMESH_ASSERT(validate_schedule(problem, *schedule));
  ScheduleResult result{std::move(*schedule), std::move(order), ilp_nodes,
                        lp_iterations};
  return result;
}

}  // namespace

namespace {

// Shared skeleton of the transmission-order integer programs: start-slot
// variables, one binary per conflicting active pair with the big-M
// disjunction rows, and helpers to express per-flow wrap counts and to
// extract orders from solutions.
struct OrderModel {
  IlpModel model;
  struct PairVar {
    LinkId l, m;
    VarId var;
  };
  std::vector<PairVar> pairs;
  std::vector<VarId> pair_var;  // flat (l, m) lookup, l < m
  std::vector<VarId> start;     // start-slot var per link (-1 when inactive)
  LinkId n = 0;

  VarId lookup(LinkId a, LinkId b) const {
    return pair_var[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(b)];
  }

  // Appends the LP terms of  sum over consecutive hops (a, b) of the
  // indicator "a's block precedes b's block"; `constant` accumulates the
  // constant part contributed by reversed-orientation pair variables.
  void append_before_terms(const FlowPath& flow, std::vector<LpTerm>* terms,
                           double* constant) const {
    for (std::size_t i = 1; i < flow.links.size(); ++i) {
      const LinkId a = flow.links[i - 1];
      const LinkId b = flow.links[i];
      if (a < b) {
        const VarId o = lookup(a, b);
        WIMESH_ASSERT(o >= 0);
        terms->push_back({o, 1.0});
      } else {
        const VarId o = lookup(b, a);
        WIMESH_ASSERT(o >= 0);
        terms->push_back({o, -1.0});  // "a before b" == 1 - o(b, a)
        *constant += 1.0;
      }
    }
  }

  TransmissionOrder extract_order(const std::vector<double>& x,
                                  double threshold = 0.5) const {
    TransmissionOrder order(n);
    for (const PairVar& pv : pairs) {
      if (x[static_cast<std::size_t>(pv.var)] >= threshold) {
        order.set_before(pv.l, pv.m);
      } else {
        order.set_before(pv.m, pv.l);
      }
    }
    return order;
  }
};

Expected<OrderModel> build_order_model(const SchedulingProblem& problem,
                                       int frame_slots) {
  WIMESH_ASSERT(frame_slots > 0);
  const auto act = active_links(problem);
  const double big_m = frame_slots;

  for (LinkId l : act) {
    if (problem.demand[static_cast<std::size_t>(l)] > frame_slots) {
      return make_error("infeasible: a single demand exceeds the frame");
    }
  }

  OrderModel out;
  out.n = problem.links.count();
  // Start-slot variable per active link.
  out.start.assign(static_cast<std::size_t>(out.n), -1);
  std::vector<VarId>& start = out.start;
  for (LinkId l : act) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    start[static_cast<std::size_t>(l)] = out.model.add_continuous(
        0.0, static_cast<double>(frame_slots - d), 0.0, str_cat("s", l));
  }

  out.pair_var.assign(
      static_cast<std::size_t>(out.n) * static_cast<std::size_t>(out.n), -1);
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    LinkId l = problem.conflicts.edge(e).u;
    LinkId m = problem.conflicts.edge(e).v;
    if (l > m) std::swap(l, m);
    const int dl = problem.demand[static_cast<std::size_t>(l)];
    const int dm = problem.demand[static_cast<std::size_t>(m)];
    if (dl == 0 || dm == 0) continue;
    const VarId o = out.model.add_binary(0.0, str_cat("o", l, "_", m));
    // Heaviest pairs decide the schedule's shape; branch them first.
    out.model.set_branch_priority(o, dl + dm);
    out.pairs.push_back({l, m, o});
    out.pair_var[static_cast<std::size_t>(l) *
                     static_cast<std::size_t>(out.n) +
                 static_cast<std::size_t>(m)] = o;
    const VarId sl = start[static_cast<std::size_t>(l)];
    const VarId sm = start[static_cast<std::size_t>(m)];
    // o = 1: s_l + d_l <= s_m   (big-M relaxed when o = 0)
    out.model.add_constraint({{sl, 1.0}, {sm, -1.0}, {o, big_m}},
                             RowSense::kLessEqual,
                             big_m - static_cast<double>(dl));
    // o = 0: s_m + d_m <= s_l   (big-M relaxed when o = 1)
    out.model.add_constraint({{sm, 1.0}, {sl, -1.0}, {o, -big_m}},
                             RowSense::kLessEqual, -static_cast<double>(dm));
  }
  return out;
}

// Per-flow wrap budgets: sum of "a before b" indicators >= hops-1-budget.
void add_budget_rows(OrderModel& om, const SchedulingProblem& problem) {
  for (const FlowPath& flow : problem.flows) {
    const auto hops = static_cast<int>(flow.links.size());
    if (hops <= 1) continue;
    std::vector<LpTerm> terms;
    double constant = 0.0;
    om.append_before_terms(flow, &terms, &constant);
    const double required =
        static_cast<double>(hops - 1 - flow.delay_budget_frames);
    if (required <= 0.0) continue;  // budget never binds
    om.model.add_constraint(terms, RowSense::kGreaterEqual,
                            required - constant);
  }
}

// Queyranne clique cutting planes. Members of a conflict clique serialize
// like jobs on one machine, so every feasible schedule satisfies the
// single-machine completion-time inequality
//   sum_{l in Q} d_l s_l  >=  sum_{l<m in Q} d_l d_m        (forward)
// and, because reversing time (s_l -> S - d_l - s_l) maps feasible
// schedules to feasible schedules, the mirrored
//   sum_{l in Q} d_l s_l  <=  S * sum d_l - sum d_l^2 - sum_{l<m} d_l d_m.
// Both are implied by the integer points but cut off fractional LP points
// where the big-M disjunctions sit between their branches. A clique whose
// total demand exceeds the frame proves infeasibility outright.
//
// Returns the number of cut rows added, or an error when infeasible.
Expected<int> add_clique_cuts(OrderModel& om,
                              const SchedulingProblem& problem,
                              int frame_slots) {
  const trace::Span span(trace::SpanName::kIlpCutGen);
  const auto cliques =
      greedy_demand_cliques(problem.links, problem.demand, problem.conflicts);
  int root_bound = 0;
  for (const DemandClique& c : cliques) root_bound = std::max(root_bound, c.weight);
  int cuts = 0;
  for (const DemandClique& c : cliques) {
    if (c.weight > frame_slots) {
      // Keep schedule_ilp's documented "infeasible"/"limit" error contract.
      return make_error("infeasible");
    }
    if (c.members.size() < 2) continue;
    double sum_d = 0.0, sum_d2 = 0.0;
    std::vector<LpTerm> terms;
    terms.reserve(c.members.size());
    for (LinkId l : c.members) {
      const auto d = static_cast<double>(
          problem.demand[static_cast<std::size_t>(l)]);
      const VarId s = om.start[static_cast<std::size_t>(l)];
      WIMESH_ASSERT(s >= 0);
      terms.push_back({s, d});
      sum_d += d;
      sum_d2 += d * d;
    }
    const double pairwise = 0.5 * (sum_d * sum_d - sum_d2);
    om.model.add_constraint(terms, RowSense::kGreaterEqual, pairwise);
    om.model.add_constraint(
        terms, RowSense::kLessEqual,
        static_cast<double>(frame_slots) * sum_d - sum_d2 - pairwise);
    cuts += 2;
  }
  trace::event(trace::EventType::kIlpCuts, SimTime::zero(), -1, cuts,
               static_cast<std::int64_t>(cliques.size()), root_bound);
  return cuts;
}

// Symmetry breaking: two active links are interchangeable when they have
// equal demand, conflict with each other, and see identical conflict
// neighborhoods among the active links (each excluding the other) — any
// feasible schedule stays feasible under swapping their blocks. Fixing the
// order binary of every such pair to lowest-LinkId-first removes the k!
// equivalent branches per class without losing any distinct schedule.
// Links on `protected_links` (flows whose wrap counts the model constrains)
// are never fixed: swapping interchangeable blocks preserves conflict-
// feasibility but can change which hops wrap.
//
// Returns the number of order binaries fixed.
int add_symmetry_breaking(OrderModel& om, const SchedulingProblem& problem,
                          const std::vector<bool>& protected_links) {
  const auto act = active_links(problem);
  std::vector<bool> is_active(static_cast<std::size_t>(om.n), false);
  for (LinkId l : act) is_active[static_cast<std::size_t>(l)] = true;

  // Sorted active-neighbor lists, once per active link.
  std::vector<std::vector<LinkId>> nbr(static_cast<std::size_t>(om.n));
  for (LinkId l : act) {
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (is_active[static_cast<std::size_t>(m)]) {
        nbr[static_cast<std::size_t>(l)].push_back(m);
      }
    }
    std::sort(nbr[static_cast<std::size_t>(l)].begin(),
              nbr[static_cast<std::size_t>(l)].end());
  }
  const auto same_neighborhood = [&](LinkId a, LinkId b) {
    // N(a) \ {b} == N(b) \ {a}, over active links.
    const auto& na = nbr[static_cast<std::size_t>(a)];
    const auto& nb = nbr[static_cast<std::size_t>(b)];
    std::size_t i = 0, j = 0;
    while (i < na.size() || j < nb.size()) {
      if (i < na.size() && na[i] == b) {
        ++i;
        continue;
      }
      if (j < nb.size() && nb[j] == a) {
        ++j;
        continue;
      }
      if (i == na.size() || j == nb.size() || na[i] != nb[j]) return false;
      ++i;
      ++j;
    }
    return true;
  };

  std::vector<bool> assigned(static_cast<std::size_t>(om.n), false);
  int fixed = 0;
  for (LinkId l : act) {
    if (assigned[static_cast<std::size_t>(l)] ||
        protected_links[static_cast<std::size_t>(l)]) {
      continue;
    }
    // Grow the class of links interchangeable with l. Matching l's
    // neighborhood pairwise-implies matching each other's (members share
    // N(l) up to the excluded element), so checking against the seed
    // suffices.
    std::vector<LinkId> cls{l};
    for (LinkId m : nbr[static_cast<std::size_t>(l)]) {
      if (m <= l || assigned[static_cast<std::size_t>(m)] ||
          protected_links[static_cast<std::size_t>(m)]) {
        continue;
      }
      if (problem.demand[static_cast<std::size_t>(m)] !=
          problem.demand[static_cast<std::size_t>(l)]) {
        continue;
      }
      bool in_class = true;
      for (LinkId member : cls) {
        if (!problem.conflicts.has_edge(m, member)) {
          in_class = false;
          break;
        }
      }
      if (in_class && same_neighborhood(l, m)) cls.push_back(m);
    }
    if (cls.size() < 2) continue;
    for (LinkId member : cls) assigned[static_cast<std::size_t>(member)] = true;
    for (std::size_t i = 0; i < cls.size(); ++i) {
      for (std::size_t j = i + 1; j < cls.size(); ++j) {
        // Members are ascending, so the pair var is o(cls[i], cls[j]);
        // fixing it to 1 pins "lower id transmits first".
        const VarId o = om.lookup(cls[i], cls[j]);
        WIMESH_ASSERT(o >= 0);
        om.model.lp().set_bounds(o, 1.0, 1.0);
        ++fixed;
      }
    }
  }
  return fixed;
}

// Links whose relative order the model's wrap rows observe. When
// `all_flow_links` (the min–max variant: every multi-hop flow contributes
// a W row) protect every flow link; otherwise only flows whose budget
// actually binds (hops - 1 - budget > 0) add rows, so only their links
// need protecting.
std::vector<bool> wrap_constrained_links(const SchedulingProblem& problem,
                                         bool delay_aware,
                                         bool all_flow_links) {
  std::vector<bool> prot(static_cast<std::size_t>(problem.links.count()),
                         false);
  if (!delay_aware && !all_flow_links) return prot;
  for (const FlowPath& f : problem.flows) {
    const auto hops = static_cast<int>(f.links.size());
    if (hops <= 1) continue;
    if (!all_flow_links && hops - 1 - f.delay_budget_frames <= 0) continue;
    for (LinkId l : f.links) prot[static_cast<std::size_t>(l)] = true;
  }
  return prot;
}

}  // namespace

std::optional<ScheduleResult> schedule_tree_fast_path(
    const SchedulingProblem& problem, int frame_slots, bool require_budgets) {
  const trace::Span span(trace::SpanName::kTreeFastPath);
  problem.check();
  const auto act = active_links(problem);
  if (act.empty()) {
    ScheduleResult out{MeshSchedule(problem.links, frame_slots),
                       TransmissionOrder(problem.links.count()), 0, 0};
    out.used_tree_fast_path = true;
    return out;
  }

  // Forest detection on the undirected support of the active links
  // (antiparallel link pairs share one support edge; only a genuinely new
  // edge closing a cycle disqualifies).
  NodeId max_node = 0;
  for (LinkId l : act) {
    const Link& ln = problem.links.link(l);
    max_node = std::max({max_node, ln.from, ln.to});
  }
  std::vector<NodeId> parent(static_cast<std::size_t>(max_node + 1));
  for (NodeId v = 0; v <= max_node; ++v) {
    parent[static_cast<std::size_t>(v)] = v;
  }
  const auto find = [&](NodeId v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  std::vector<std::pair<NodeId, NodeId>> support;
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(max_node + 1));
  for (LinkId l : act) {
    const Link& ln = problem.links.link(l);
    const NodeId u = std::min(ln.from, ln.to);
    const NodeId v = std::max(ln.from, ln.to);
    support.push_back({u, v});
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  for (const auto& [u, v] : support) {
    const NodeId ru = find(u), rv = find(v);
    if (ru == rv) return std::nullopt;  // cycle in the support
    parent[static_cast<std::size_t>(ru)] = rv;
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
  }

  // BFS depths, rooting each component at its lowest-id node.
  std::vector<int> depth(static_cast<std::size_t>(max_node + 1), -1);
  int components = 0;
  for (NodeId root = 0; root <= max_node; ++root) {
    if (adj[static_cast<std::size_t>(root)].empty() ||
        depth[static_cast<std::size_t>(root)] >= 0) {
      continue;
    }
    ++components;
    depth[static_cast<std::size_t>(root)] = 0;
    std::vector<NodeId> queue{root};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (NodeId v : adj[static_cast<std::size_t>(u)]) {
        if (depth[static_cast<std::size_t>(v)] >= 0) continue;
        depth[static_cast<std::size_t>(v)] =
            depth[static_cast<std::size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }

  // Canonical monotone order: up-links (child -> parent) deepest-first,
  // then down-links (parent -> child) shallowest-first. Every root-ward or
  // leaf-ward flow path traverses its hops in this order, hence wrap-free.
  std::vector<LinkId> sigma = act;
  const auto key = [&](LinkId l) {
    const Link& ln = problem.links.link(l);
    const int du = depth[static_cast<std::size_t>(ln.from)];
    const int dv = depth[static_cast<std::size_t>(ln.to)];
    const bool down = dv > du;
    // (phase, rank): up-links phase 0 ranked by -child depth, down-links
    // phase 1 ranked by +child depth.
    return std::make_tuple(down ? 1 : 0, down ? dv : -du, l);
  };
  std::sort(sigma.begin(), sigma.end(),
            [&](LinkId a, LinkId b) { return key(a) < key(b); });
  std::vector<int> pos(static_cast<std::size_t>(problem.links.count()), -1);
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    pos[static_cast<std::size_t>(sigma[i])] = static_cast<int>(i);
  }

  TransmissionOrder order(problem.links.count());
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    if (problem.demand[static_cast<std::size_t>(l)] == 0 ||
        problem.demand[static_cast<std::size_t>(m)] == 0) {
      continue;
    }
    if (pos[static_cast<std::size_t>(l)] < pos[static_cast<std::size_t>(m)]) {
      order.set_before(l, m);
    } else {
      order.set_before(m, l);
    }
  }

  auto schedule = order_to_schedule(problem, order, frame_slots);
  if (!schedule.has_value()) return std::nullopt;
  if (require_budgets && !budgets_satisfied(problem, *schedule)) {
    return std::nullopt;
  }
  WIMESH_ASSERT(validate_schedule(problem, *schedule));
  int slots_used = 0;
  for (LinkId l : act) {
    slots_used = std::max(slots_used, schedule->grant(l)->end());
  }
  trace::event(trace::EventType::kIlpTreeFastPath, SimTime::zero(), -1,
               static_cast<std::int64_t>(act.size()), slots_used, components);
  ScheduleResult out{std::move(*schedule), std::move(order), 0, 0};
  out.used_tree_fast_path = true;
  return out;
}

namespace {

// Shared body of schedule_ilp: `stage_basis` (optional) carries the optimal
// root LP basis across the min-slot search's successive stages — the stage
// models differ only in bounds and big-M/cut coefficients, never in shape,
// so the previous stage's basis dual-repairs in a handful of pivots.
Expected<ScheduleResult> schedule_ilp_impl(const SchedulingProblem& problem,
                                           int frame_slots,
                                           const IlpSchedulerOptions& options,
                                           LpBasis* stage_basis) {
  const trace::Span span(trace::SpanName::kScheduleIlp);
  problem.check();

  // Exact fast path: forests schedule wrap-free in canonical order with no
  // LP at all.
  if (options.tree_fast_path) {
    if (auto fast = schedule_tree_fast_path(problem, frame_slots,
                                            options.delay_aware)) {
      return std::move(*fast);
    }
  }

  auto build = build_order_model(problem, frame_slots);
  if (!build.has_value()) return make_error(build.error());
  OrderModel& om = *build;
  if (options.delay_aware) add_budget_rows(om, problem);
  if (options.clique_cuts) {
    auto cuts = add_clique_cuts(om, problem, frame_slots);
    if (!cuts.has_value()) return make_error(cuts.error());
  }
  if (options.symmetry_breaking) {
    add_symmetry_breaking(
        om, problem,
        wrap_constrained_links(problem, options.delay_aware,
                               /*all_flow_links=*/false));
  }

  const bool chain = options.warm_start && stage_basis != nullptr;
  const LpBasis* hint =
      (chain && !stage_basis->empty()) ? stage_basis : nullptr;

  // Fast path: round the root LP relaxation into an order and let
  // Bellman-Ford try to realize it. On many instances the rounded order is
  // already feasible, skipping branch & bound entirely.
  if (options.try_heuristics) {
    LpBasis root_basis;
    const LpResult root =
        solve_lp(om.model.lp(), LpOptions{}, hint, chain ? &root_basis : nullptr);
    if (root.status == LpStatus::kOptimal) {
      if (chain && !root_basis.empty()) {
        *stage_basis = root_basis;
        hint = stage_basis;
      }
      TransmissionOrder rounded = om.extract_order(root.x);
      if (auto schedule = order_to_schedule(problem, rounded, frame_slots)) {
        if (!options.delay_aware || budgets_satisfied(problem, *schedule)) {
          WIMESH_ASSERT(validate_schedule(problem, *schedule));
          return ScheduleResult{std::move(*schedule), std::move(rounded), 0,
                                root.iterations};
        }
      }
    }
  }

  IlpOptions iopt;
  iopt.stop_at_first_feasible = true;  // pure feasibility program
  iopt.max_nodes = options.max_nodes;
  iopt.time_limit_seconds = options.time_limit_seconds;
  iopt.portfolio = options.portfolio;
  iopt.threads = options.threads;
  iopt.warm_start = options.warm_start;
  iopt.root_basis = hint;
  LpBasis bnb_root_basis;
  iopt.root_basis_out = chain ? &bnb_root_basis : nullptr;
  const IlpResult r = solve_ilp(om.model, iopt);
  if (chain && !bnb_root_basis.empty()) *stage_basis = bnb_root_basis;
  if (r.status == IlpStatus::kInfeasible) return make_error("infeasible");
  if (!r.has_solution()) return make_error("limit");

  TransmissionOrder order = om.extract_order(r.x);
  return finish_from_order(problem, std::move(order), frame_slots,
                           r.nodes_explored, r.lp_iterations);
}

}  // namespace

Expected<ScheduleResult> schedule_ilp(const SchedulingProblem& problem,
                                      int frame_slots,
                                      const IlpSchedulerOptions& options) {
  return schedule_ilp_impl(problem, frame_slots, options, nullptr);
}

Expected<MinMaxDelayResult> schedule_ilp_min_max_delay(
    const SchedulingProblem& problem, int frame_slots,
    const IlpSchedulerOptions& options) {
  const trace::Span span(trace::SpanName::kScheduleIlp);
  problem.check();

  // A wrap-free schedule has max_wraps == 0 — unbeatable. On forests the
  // canonical monotone order often delivers exactly that.
  if (options.tree_fast_path) {
    if (auto fast = schedule_tree_fast_path(problem, frame_slots,
                                            options.delay_aware)) {
      int worst = 0;
      for (const FlowPath& f : problem.flows) {
        worst = std::max(worst, count_frame_wraps(fast->schedule, f));
      }
      if (worst == 0) {
        MinMaxDelayResult out;
        out.result = std::move(*fast);
        out.max_wraps = 0;
        out.proven = true;
        return out;
      }
    }
  }

  auto build = build_order_model(problem, frame_slots);
  if (!build.has_value()) return make_error(build.error());
  OrderModel& om = *build;
  if (options.delay_aware) add_budget_rows(om, problem);
  if (options.clique_cuts) {
    auto cuts = add_clique_cuts(om, problem, frame_slots);
    if (!cuts.has_value()) return make_error(cuts.error());
  }
  if (options.symmetry_breaking) {
    // Every multi-hop flow contributes a W row here, so all its links'
    // relative orders are observable by the objective: protect them all.
    add_symmetry_breaking(om, problem,
                          wrap_constrained_links(problem, options.delay_aware,
                                                 /*all_flow_links=*/true));
  }

  // W bounds every flow's wrap count: wraps_f = hops-1 - sum(before terms)
  // <= W  ⇔  sum(before terms) + W >= hops-1.
  int max_hops = 0;
  for (const FlowPath& f : problem.flows) {
    max_hops = std::max(max_hops, static_cast<int>(f.links.size()));
  }
  const VarId w = om.model.add_integer(
      0.0, std::max(0, max_hops - 1), 1.0, "max_wraps");
  om.model.set_objective_sense(ObjSense::kMinimize);
  for (const FlowPath& flow : problem.flows) {
    const auto hops = static_cast<int>(flow.links.size());
    if (hops <= 1) continue;
    std::vector<LpTerm> terms;
    double constant = 0.0;
    om.append_before_terms(flow, &terms, &constant);
    terms.push_back({w, 1.0});
    om.model.add_constraint(terms, RowSense::kGreaterEqual,
                            static_cast<double>(hops - 1) - constant);
  }

  IlpOptions iopt;
  iopt.max_nodes = options.max_nodes;
  iopt.time_limit_seconds = options.time_limit_seconds;
  iopt.objective_gap_tol = 1.0 - 1e-6;  // integral objective: prune hard
  iopt.portfolio = options.portfolio;
  iopt.threads = options.threads;
  iopt.warm_start = options.warm_start;
  const IlpResult r = solve_ilp(om.model, iopt);
  if (r.status == IlpStatus::kInfeasible) return make_error("infeasible");
  if (!r.has_solution()) return make_error("limit");

  TransmissionOrder order = om.extract_order(r.x);
  auto finished = finish_from_order(problem, std::move(order), frame_slots,
                                    r.nodes_explored, r.lp_iterations);
  if (!finished.has_value()) return make_error(finished.error());
  MinMaxDelayResult out;
  out.result = std::move(*finished);
  out.max_wraps = static_cast<int>(
      std::llround(r.x[static_cast<std::size_t>(w)]));
  out.proven = r.status == IlpStatus::kOptimal;
  // The reconstructed schedule honors the same order, so its wrap counts
  // cannot exceed the model's bound.
  for (const FlowPath& f : problem.flows) {
    WIMESH_ASSERT(count_frame_wraps(out.result.schedule, f) <= out.max_wraps);
  }
  return out;
}

Expected<MinSlotsResult> min_slots_search(const SchedulingProblem& problem,
                                          int max_slots,
                                          const IlpSchedulerOptions& options) {
  const trace::Span span(trace::SpanName::kMinSlotsSearch);
  problem.check();
  const int lower = schedule_length_lower_bound(problem.links, problem.demand,
                                                problem.conflicts);
  if (lower == 0) {
    // Nothing to schedule.
    MinSlotsResult out;
    out.frame_slots = 0;
    out.result.schedule = MeshSchedule(problem.links, 0);
    out.result.order = TransmissionOrder(problem.links.count());
    return out;
  }
  if (lower > max_slots) {
    return make_error(
        str_cat("infeasible: clique lower bound ", lower,
                " exceeds the data subframe size ", max_slots));
  }
  MinSlotsResult out;
  bool ilp_limit_hit = false;
  // The per-stage models share their shape (only bounds and big-M/cut
  // coefficients depend on S), so each stage's optimal root basis
  // warm-starts the next stage's root LP.
  LpBasis stage_basis;
  for (int s = lower; s <= max_slots; ++s) {
    ++out.stages;
    if (options.try_heuristics) {
      // Constructive heuristics: any feasible schedule settles the stage.
      for (auto heuristic :
           {&schedule_flow_order_greedy, &schedule_greedy}) {
        auto attempt = heuristic(problem, s);
        if (attempt.has_value() &&
            (!options.delay_aware ||
             budgets_satisfied(problem, attempt->schedule))) {
          out.frame_slots = s;
          out.result = std::move(*attempt);
          out.proven_minimal = !ilp_limit_hit;
          return out;
        }
      }
    }
    auto attempt = schedule_ilp_impl(problem, s, options, &stage_basis);
    if (attempt.has_value()) {
      out.frame_slots = s;
      out.result = std::move(*attempt);
      out.proven_minimal = !ilp_limit_hit;
      return out;
    }
    // An ILP that exhausted its limits leaves this stage undecided; keep
    // scanning upward — larger S only gets easier — but remember that the
    // eventual answer is an upper bound, not a proven minimum.
    if (attempt.error() == "limit") ilp_limit_hit = true;
  }
  if (ilp_limit_hit) {
    return make_error("solver limit reached during min-slot search");
  }
  return make_error(str_cat("infeasible within ", max_slots, " slots"));
}

std::optional<ScheduleResult> schedule_flow_order_greedy(
    const SchedulingProblem& problem, int frame_slots) {
  problem.check();
  auto act = active_links(problem);
  // Rank links by their earliest position along any flow; links outside all
  // flows sort last. Processing in rank order and pinning each block after
  // its upstream hop's block yields wrap-free orders on path-shaped demand.
  std::vector<int> rank(static_cast<std::size_t>(problem.links.count()),
                        1 << 20);
  for (const FlowPath& f : problem.flows) {
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      auto& r = rank[static_cast<std::size_t>(f.links[i])];
      r = std::min(r, static_cast<int>(i));
    }
  }
  std::sort(act.begin(), act.end(), [&](LinkId a, LinkId b) {
    const int ra = rank[static_cast<std::size_t>(a)];
    const int rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra < rb;
    return a < b;
  });

  MeshSchedule schedule(problem.links, frame_slots);
  for (LinkId l : act) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    // The block must start no earlier than the end of every already-placed
    // upstream hop (the delay-aware pin).
    int lower_start = 0;
    for (const FlowPath& f : problem.flows) {
      for (std::size_t i = 1; i < f.links.size(); ++i) {
        if (f.links[i] != l) continue;
        if (const auto up = schedule.grant(f.links[i - 1])) {
          lower_start = std::max(lower_start, up->end());
        }
      }
    }
    std::vector<SlotRange> busy;
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (const auto g = schedule.grant(m)) busy.push_back(*g);
    }
    std::sort(busy.begin(), busy.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return a.start < b.start;
              });
    int cursor = lower_start;
    for (const SlotRange& b : busy) {
      if (cursor + d <= b.start) break;
      cursor = std::max(cursor, b.end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  WIMESH_ASSERT(validate_schedule(problem, schedule));
  TransmissionOrder order = order_from_schedule(problem, schedule);
  return ScheduleResult{std::move(schedule), std::move(order), 0, 0};
}

bool budgets_satisfied(const SchedulingProblem& problem,
                       const MeshSchedule& schedule) {
  for (const FlowPath& f : problem.flows) {
    if (count_frame_wraps(schedule, f) > f.delay_budget_frames) return false;
  }
  return true;
}

std::optional<MeshSchedule> order_to_schedule(const SchedulingProblem& problem,
                                              const TransmissionOrder& order,
                                              int frame_slots) {
  const trace::Span span(trace::SpanName::kBellmanFord);
  WIMESH_ASSERT(order.link_count() == problem.links.count());
  const auto act = active_links(problem);

  // Completeness: every conflicting active pair must be ordered one way.
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    if (problem.demand[static_cast<std::size_t>(l)] == 0 ||
        problem.demand[static_cast<std::size_t>(m)] == 0) {
      continue;
    }
    WIMESH_ASSERT_MSG(order.before(l, m) != order.before(m, l),
                      "transmission order must decide every conflicting pair");
  }

  // Difference-constraint graph: node i = start slot of act[i]; node n = 0
  // reference. Arc (from → to, w) encodes x_to - x_from <= w.
  std::vector<int> node_of(static_cast<std::size_t>(problem.links.count()),
                           -1);
  const auto n = static_cast<NodeId>(act.size());
  for (std::size_t i = 0; i < act.size(); ++i) {
    node_of[static_cast<std::size_t>(act[i])] = static_cast<int>(i);
  }
  Digraph g(n + 1);
  const NodeId zero = n;
  for (std::size_t i = 0; i < act.size(); ++i) {
    const int d = problem.demand[static_cast<std::size_t>(act[i])];
    if (d > frame_slots) return std::nullopt;
    // s_i - 0 <= S - d  and  0 - s_i <= 0.
    g.add_arc(zero, static_cast<NodeId>(i),
              static_cast<double>(frame_slots - d));
    g.add_arc(static_cast<NodeId>(i), zero, 0.0);
  }
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    const int dl = problem.demand[static_cast<std::size_t>(l)];
    const int dm = problem.demand[static_cast<std::size_t>(m)];
    if (dl == 0 || dm == 0) continue;
    if (order.before(l, m)) {
      // s_m >= s_l + d_l  ⇔  s_l - s_m <= -d_l  ⇔ arc m → l.
      g.add_arc(node_of[static_cast<std::size_t>(m)],
                node_of[static_cast<std::size_t>(l)],
                -static_cast<double>(dl));
    } else {
      g.add_arc(node_of[static_cast<std::size_t>(l)],
                node_of[static_cast<std::size_t>(m)],
                -static_cast<double>(dm));
    }
  }

  const auto x = solve_difference_constraints(g);
  if (!x.has_value()) return std::nullopt;

  MeshSchedule schedule(problem.links, frame_slots);
  const double base = (*x)[static_cast<std::size_t>(zero)];
  for (std::size_t i = 0; i < act.size(); ++i) {
    const double raw = (*x)[i] - base;
    const int slot = static_cast<int>(std::llround(raw));
    WIMESH_ASSERT_MSG(std::abs(raw - slot) < 1e-6,
                      "difference-constraint solution must be integral");
    schedule.set_grant(
        act[i],
        SlotRange{slot, problem.demand[static_cast<std::size_t>(act[i])]});
  }
  return schedule;
}

std::optional<ScheduleResult> schedule_greedy(const SchedulingProblem& problem,
                                              int frame_slots) {
  problem.check();
  auto act = active_links(problem);
  std::sort(act.begin(), act.end(), [&](LinkId a, LinkId b) {
    const int da = problem.demand[static_cast<std::size_t>(a)];
    const int db = problem.demand[static_cast<std::size_t>(b)];
    if (da != db) return da > db;
    return a < b;
  });

  MeshSchedule schedule(problem.links, frame_slots);
  for (LinkId l : act) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    // Collect busy intervals of already-placed conflicting links.
    std::vector<SlotRange> busy;
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (const auto g = schedule.grant(m)) busy.push_back(*g);
    }
    std::sort(busy.begin(), busy.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return a.start < b.start;
              });
    // First-fit gap.
    int cursor = 0;
    for (const SlotRange& b : busy) {
      if (cursor + d <= b.start) break;
      cursor = std::max(cursor, b.end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  WIMESH_ASSERT(validate_schedule(problem, schedule));
  TransmissionOrder order = order_from_schedule(problem, schedule);
  return ScheduleResult{std::move(schedule), std::move(order), 0, 0};
}

std::optional<ScheduleResult> schedule_round_robin(
    const SchedulingProblem& problem, int frame_slots) {
  problem.check();
  MeshSchedule schedule(problem.links, frame_slots);
  for (LinkId l : active_links(problem)) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    int cursor = 0;
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (const auto g = schedule.grant(m)) cursor = std::max(cursor, g->end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  WIMESH_ASSERT(validate_schedule(problem, schedule));
  TransmissionOrder order = order_from_schedule(problem, schedule);
  return ScheduleResult{std::move(schedule), std::move(order), 0, 0};
}

TransmissionOrder order_from_schedule(const SchedulingProblem& problem,
                                      const MeshSchedule& schedule) {
  TransmissionOrder order(problem.links.count());
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    const auto gl = schedule.grant(l);
    const auto gm = schedule.grant(m);
    if (!gl || !gm) continue;
    if (gl->end() <= gm->start) {
      order.set_before(l, m);
    } else if (gm->end() <= gl->start) {
      order.set_before(m, l);
    }
    // Overlapping grants leave the pair unordered; validate_schedule will
    // reject such schedules.
  }
  return order;
}

bool validate_schedule(const SchedulingProblem& problem,
                       const MeshSchedule& schedule) {
  if (schedule.link_count() != problem.links.count()) return false;
  for (LinkId l = 0; l < problem.links.count(); ++l) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    const auto g = schedule.grant(l);
    if (d == 0) {
      if (g.has_value()) return false;
      continue;
    }
    if (!g || g->length != d) return false;
    if (g->start < 0 || g->end() > schedule.frame_slots()) return false;
  }
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const auto gl = schedule.grant(problem.conflicts.edge(e).u);
    const auto gm = schedule.grant(problem.conflicts.edge(e).v);
    if (gl && gm && gl->overlaps(*gm)) return false;
  }
  return true;
}

int worst_case_delay_slots(const MeshSchedule& schedule, const FlowPath& flow,
                           int frame_total_slots) {
  WIMESH_ASSERT(!flow.links.empty());
  WIMESH_ASSERT(frame_total_slots >= schedule.frame_slots());
  // Worst case: the packet arrives just as the first block starts and must
  // wait a full frame for the next occurrence.
  int delay = frame_total_slots;
  const auto first = schedule.grant(flow.links.front());
  WIMESH_ASSERT(first.has_value());
  delay += first->length;
  int prev_end = first->end();
  for (std::size_t i = 1; i < flow.links.size(); ++i) {
    const auto g = schedule.grant(flow.links[static_cast<std::size_t>(i)]);
    WIMESH_ASSERT(g.has_value());
    int gap = g->start - prev_end;
    if (gap < 0) gap += frame_total_slots;  // waits for the next frame
    delay += gap + g->length;
    prev_end = g->end();
  }
  return delay;
}

int count_frame_wraps(const MeshSchedule& schedule, const FlowPath& flow) {
  int wraps = 0;
  for (std::size_t i = 1; i < flow.links.size(); ++i) {
    const auto prev = schedule.grant(flow.links[i - 1]);
    const auto cur = schedule.grant(flow.links[i]);
    WIMESH_ASSERT(prev.has_value() && cur.has_value());
    if (cur->start < prev->end()) ++wraps;
  }
  return wraps;
}

}  // namespace wimesh
