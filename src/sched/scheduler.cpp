#include "wimesh/sched/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "wimesh/common/strings.h"
#include "wimesh/graph/shortest_path.h"
#include "wimesh/sched/conflict_graph.h"
#include "wimesh/trace/trace.h"

namespace wimesh {

void SchedulingProblem::check() const {
  WIMESH_ASSERT(demand.size() == static_cast<std::size_t>(links.count()));
  WIMESH_ASSERT(conflicts.node_count() == links.count());
  for (int d : demand) WIMESH_ASSERT(d >= 0);
  for (const FlowPath& f : flows) {
    WIMESH_ASSERT(!f.links.empty());
    WIMESH_ASSERT(f.delay_budget_frames >= 0);
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      const LinkId l = f.links[i];
      WIMESH_ASSERT(l >= 0 && l < links.count());
      WIMESH_ASSERT_MSG(demand[static_cast<std::size_t>(l)] > 0,
                        "flow routed over a link with zero demand");
      if (i > 0) {
        // Consecutive hops share the relay node, hence always conflict.
        WIMESH_ASSERT(links.link(f.links[i - 1]).to == links.link(l).from);
        WIMESH_ASSERT(conflicts.has_edge(f.links[i - 1], l));
      }
    }
  }
}

namespace {

std::vector<LinkId> active_links(const SchedulingProblem& p) {
  std::vector<LinkId> act;
  for (LinkId l = 0; l < p.links.count(); ++l) {
    if (p.demand[static_cast<std::size_t>(l)] > 0) act.push_back(l);
  }
  return act;
}

// Builds the final ScheduleResult from a complete transmission order by
// running the Bellman–Ford reconstruction and validating.
Expected<ScheduleResult> finish_from_order(const SchedulingProblem& problem,
                                           TransmissionOrder order,
                                           int frame_slots, long ilp_nodes,
                                           long lp_iterations) {
  auto schedule = order_to_schedule(problem, order, frame_slots);
  if (!schedule.has_value()) {
    return make_error("order reconstruction failed (cyclic or too long)");
  }
  WIMESH_ASSERT(validate_schedule(problem, *schedule));
  ScheduleResult result{std::move(*schedule), std::move(order), ilp_nodes,
                        lp_iterations};
  return result;
}

}  // namespace

namespace {

// Shared skeleton of the transmission-order integer programs: start-slot
// variables, one binary per conflicting active pair with the big-M
// disjunction rows, and helpers to express per-flow wrap counts and to
// extract orders from solutions.
struct OrderModel {
  IlpModel model;
  struct PairVar {
    LinkId l, m;
    VarId var;
  };
  std::vector<PairVar> pairs;
  std::vector<VarId> pair_var;  // flat (l, m) lookup, l < m
  LinkId n = 0;

  VarId lookup(LinkId a, LinkId b) const {
    return pair_var[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(b)];
  }

  // Appends the LP terms of  sum over consecutive hops (a, b) of the
  // indicator "a's block precedes b's block"; `constant` accumulates the
  // constant part contributed by reversed-orientation pair variables.
  void append_before_terms(const FlowPath& flow, std::vector<LpTerm>* terms,
                           double* constant) const {
    for (std::size_t i = 1; i < flow.links.size(); ++i) {
      const LinkId a = flow.links[i - 1];
      const LinkId b = flow.links[i];
      if (a < b) {
        const VarId o = lookup(a, b);
        WIMESH_ASSERT(o >= 0);
        terms->push_back({o, 1.0});
      } else {
        const VarId o = lookup(b, a);
        WIMESH_ASSERT(o >= 0);
        terms->push_back({o, -1.0});  // "a before b" == 1 - o(b, a)
        *constant += 1.0;
      }
    }
  }

  TransmissionOrder extract_order(const std::vector<double>& x,
                                  double threshold = 0.5) const {
    TransmissionOrder order(n);
    for (const PairVar& pv : pairs) {
      if (x[static_cast<std::size_t>(pv.var)] >= threshold) {
        order.set_before(pv.l, pv.m);
      } else {
        order.set_before(pv.m, pv.l);
      }
    }
    return order;
  }
};

Expected<OrderModel> build_order_model(const SchedulingProblem& problem,
                                       int frame_slots) {
  WIMESH_ASSERT(frame_slots > 0);
  const auto act = active_links(problem);
  const double big_m = frame_slots;

  for (LinkId l : act) {
    if (problem.demand[static_cast<std::size_t>(l)] > frame_slots) {
      return make_error("infeasible: a single demand exceeds the frame");
    }
  }

  OrderModel out;
  out.n = problem.links.count();
  // Start-slot variable per active link.
  std::vector<VarId> start(static_cast<std::size_t>(out.n), -1);
  for (LinkId l : act) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    start[static_cast<std::size_t>(l)] = out.model.add_continuous(
        0.0, static_cast<double>(frame_slots - d), 0.0, str_cat("s", l));
  }

  out.pair_var.assign(
      static_cast<std::size_t>(out.n) * static_cast<std::size_t>(out.n), -1);
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    LinkId l = problem.conflicts.edge(e).u;
    LinkId m = problem.conflicts.edge(e).v;
    if (l > m) std::swap(l, m);
    const int dl = problem.demand[static_cast<std::size_t>(l)];
    const int dm = problem.demand[static_cast<std::size_t>(m)];
    if (dl == 0 || dm == 0) continue;
    const VarId o = out.model.add_binary(0.0, str_cat("o", l, "_", m));
    // Heaviest pairs decide the schedule's shape; branch them first.
    out.model.set_branch_priority(o, dl + dm);
    out.pairs.push_back({l, m, o});
    out.pair_var[static_cast<std::size_t>(l) *
                     static_cast<std::size_t>(out.n) +
                 static_cast<std::size_t>(m)] = o;
    const VarId sl = start[static_cast<std::size_t>(l)];
    const VarId sm = start[static_cast<std::size_t>(m)];
    // o = 1: s_l + d_l <= s_m   (big-M relaxed when o = 0)
    out.model.add_constraint({{sl, 1.0}, {sm, -1.0}, {o, big_m}},
                             RowSense::kLessEqual,
                             big_m - static_cast<double>(dl));
    // o = 0: s_m + d_m <= s_l   (big-M relaxed when o = 1)
    out.model.add_constraint({{sm, 1.0}, {sl, -1.0}, {o, -big_m}},
                             RowSense::kLessEqual, -static_cast<double>(dm));
  }
  return out;
}

// Per-flow wrap budgets: sum of "a before b" indicators >= hops-1-budget.
void add_budget_rows(OrderModel& om, const SchedulingProblem& problem) {
  for (const FlowPath& flow : problem.flows) {
    const auto hops = static_cast<int>(flow.links.size());
    if (hops <= 1) continue;
    std::vector<LpTerm> terms;
    double constant = 0.0;
    om.append_before_terms(flow, &terms, &constant);
    const double required =
        static_cast<double>(hops - 1 - flow.delay_budget_frames);
    if (required <= 0.0) continue;  // budget never binds
    om.model.add_constraint(terms, RowSense::kGreaterEqual,
                            required - constant);
  }
}

}  // namespace

Expected<ScheduleResult> schedule_ilp(const SchedulingProblem& problem,
                                      int frame_slots,
                                      const IlpSchedulerOptions& options) {
  const trace::Span span(trace::SpanName::kScheduleIlp);
  problem.check();
  auto build = build_order_model(problem, frame_slots);
  if (!build.has_value()) return make_error(build.error());
  OrderModel& om = *build;
  if (options.delay_aware) add_budget_rows(om, problem);

  // Fast path: round the root LP relaxation into an order and let
  // Bellman-Ford try to realize it. On many instances the rounded order is
  // already feasible, skipping branch & bound entirely.
  if (options.try_heuristics) {
    const LpResult root = solve_lp(om.model.lp());
    if (root.status == LpStatus::kOptimal) {
      TransmissionOrder rounded = om.extract_order(root.x);
      if (auto schedule = order_to_schedule(problem, rounded, frame_slots)) {
        if (!options.delay_aware || budgets_satisfied(problem, *schedule)) {
          WIMESH_ASSERT(validate_schedule(problem, *schedule));
          return ScheduleResult{std::move(*schedule), std::move(rounded), 0,
                                root.iterations};
        }
      }
    }
  }

  IlpOptions iopt;
  iopt.stop_at_first_feasible = true;  // pure feasibility program
  iopt.max_nodes = options.max_nodes;
  iopt.time_limit_seconds = options.time_limit_seconds;
  const IlpResult r = solve_ilp(om.model, iopt);
  if (r.status == IlpStatus::kInfeasible) return make_error("infeasible");
  if (!r.has_solution()) return make_error("limit");

  TransmissionOrder order = om.extract_order(r.x);
  return finish_from_order(problem, std::move(order), frame_slots,
                           r.nodes_explored, r.lp_iterations);
}

Expected<MinMaxDelayResult> schedule_ilp_min_max_delay(
    const SchedulingProblem& problem, int frame_slots,
    const IlpSchedulerOptions& options) {
  const trace::Span span(trace::SpanName::kScheduleIlp);
  problem.check();
  auto build = build_order_model(problem, frame_slots);
  if (!build.has_value()) return make_error(build.error());
  OrderModel& om = *build;
  if (options.delay_aware) add_budget_rows(om, problem);

  // W bounds every flow's wrap count: wraps_f = hops-1 - sum(before terms)
  // <= W  ⇔  sum(before terms) + W >= hops-1.
  int max_hops = 0;
  for (const FlowPath& f : problem.flows) {
    max_hops = std::max(max_hops, static_cast<int>(f.links.size()));
  }
  const VarId w = om.model.add_integer(
      0.0, std::max(0, max_hops - 1), 1.0, "max_wraps");
  om.model.set_objective_sense(ObjSense::kMinimize);
  for (const FlowPath& flow : problem.flows) {
    const auto hops = static_cast<int>(flow.links.size());
    if (hops <= 1) continue;
    std::vector<LpTerm> terms;
    double constant = 0.0;
    om.append_before_terms(flow, &terms, &constant);
    terms.push_back({w, 1.0});
    om.model.add_constraint(terms, RowSense::kGreaterEqual,
                            static_cast<double>(hops - 1) - constant);
  }

  IlpOptions iopt;
  iopt.max_nodes = options.max_nodes;
  iopt.time_limit_seconds = options.time_limit_seconds;
  iopt.objective_gap_tol = 1.0 - 1e-6;  // integral objective: prune hard
  const IlpResult r = solve_ilp(om.model, iopt);
  if (r.status == IlpStatus::kInfeasible) return make_error("infeasible");
  if (!r.has_solution()) return make_error("limit");

  TransmissionOrder order = om.extract_order(r.x);
  auto finished = finish_from_order(problem, std::move(order), frame_slots,
                                    r.nodes_explored, r.lp_iterations);
  if (!finished.has_value()) return make_error(finished.error());
  MinMaxDelayResult out;
  out.result = std::move(*finished);
  out.max_wraps = static_cast<int>(
      std::llround(r.x[static_cast<std::size_t>(w)]));
  out.proven = r.status == IlpStatus::kOptimal;
  // The reconstructed schedule honors the same order, so its wrap counts
  // cannot exceed the model's bound.
  for (const FlowPath& f : problem.flows) {
    WIMESH_ASSERT(count_frame_wraps(out.result.schedule, f) <= out.max_wraps);
  }
  return out;
}

Expected<MinSlotsResult> min_slots_search(const SchedulingProblem& problem,
                                          int max_slots,
                                          const IlpSchedulerOptions& options) {
  const trace::Span span(trace::SpanName::kMinSlotsSearch);
  problem.check();
  const int lower = schedule_length_lower_bound(problem.links, problem.demand,
                                                problem.conflicts);
  if (lower == 0) {
    // Nothing to schedule.
    MinSlotsResult out;
    out.frame_slots = 0;
    out.result.schedule = MeshSchedule(problem.links, 0);
    out.result.order = TransmissionOrder(problem.links.count());
    return out;
  }
  if (lower > max_slots) {
    return make_error(
        str_cat("infeasible: clique lower bound ", lower,
                " exceeds the data subframe size ", max_slots));
  }
  MinSlotsResult out;
  bool ilp_limit_hit = false;
  for (int s = lower; s <= max_slots; ++s) {
    ++out.stages;
    if (options.try_heuristics) {
      // Constructive heuristics: any feasible schedule settles the stage.
      for (auto heuristic :
           {&schedule_flow_order_greedy, &schedule_greedy}) {
        auto attempt = heuristic(problem, s);
        if (attempt.has_value() &&
            (!options.delay_aware ||
             budgets_satisfied(problem, attempt->schedule))) {
          out.frame_slots = s;
          out.result = std::move(*attempt);
          out.proven_minimal = !ilp_limit_hit;
          return out;
        }
      }
    }
    auto attempt = schedule_ilp(problem, s, options);
    if (attempt.has_value()) {
      out.frame_slots = s;
      out.result = std::move(*attempt);
      out.proven_minimal = !ilp_limit_hit;
      return out;
    }
    // An ILP that exhausted its limits leaves this stage undecided; keep
    // scanning upward — larger S only gets easier — but remember that the
    // eventual answer is an upper bound, not a proven minimum.
    if (attempt.error() == "limit") ilp_limit_hit = true;
  }
  if (ilp_limit_hit) {
    return make_error("solver limit reached during min-slot search");
  }
  return make_error(str_cat("infeasible within ", max_slots, " slots"));
}

std::optional<ScheduleResult> schedule_flow_order_greedy(
    const SchedulingProblem& problem, int frame_slots) {
  problem.check();
  auto act = active_links(problem);
  // Rank links by their earliest position along any flow; links outside all
  // flows sort last. Processing in rank order and pinning each block after
  // its upstream hop's block yields wrap-free orders on path-shaped demand.
  std::vector<int> rank(static_cast<std::size_t>(problem.links.count()),
                        1 << 20);
  for (const FlowPath& f : problem.flows) {
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      auto& r = rank[static_cast<std::size_t>(f.links[i])];
      r = std::min(r, static_cast<int>(i));
    }
  }
  std::sort(act.begin(), act.end(), [&](LinkId a, LinkId b) {
    const int ra = rank[static_cast<std::size_t>(a)];
    const int rb = rank[static_cast<std::size_t>(b)];
    if (ra != rb) return ra < rb;
    return a < b;
  });

  MeshSchedule schedule(problem.links, frame_slots);
  for (LinkId l : act) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    // The block must start no earlier than the end of every already-placed
    // upstream hop (the delay-aware pin).
    int lower_start = 0;
    for (const FlowPath& f : problem.flows) {
      for (std::size_t i = 1; i < f.links.size(); ++i) {
        if (f.links[i] != l) continue;
        if (const auto up = schedule.grant(f.links[i - 1])) {
          lower_start = std::max(lower_start, up->end());
        }
      }
    }
    std::vector<SlotRange> busy;
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (const auto g = schedule.grant(m)) busy.push_back(*g);
    }
    std::sort(busy.begin(), busy.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return a.start < b.start;
              });
    int cursor = lower_start;
    for (const SlotRange& b : busy) {
      if (cursor + d <= b.start) break;
      cursor = std::max(cursor, b.end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  WIMESH_ASSERT(validate_schedule(problem, schedule));
  TransmissionOrder order = order_from_schedule(problem, schedule);
  return ScheduleResult{std::move(schedule), std::move(order), 0, 0};
}

bool budgets_satisfied(const SchedulingProblem& problem,
                       const MeshSchedule& schedule) {
  for (const FlowPath& f : problem.flows) {
    if (count_frame_wraps(schedule, f) > f.delay_budget_frames) return false;
  }
  return true;
}

std::optional<MeshSchedule> order_to_schedule(const SchedulingProblem& problem,
                                              const TransmissionOrder& order,
                                              int frame_slots) {
  const trace::Span span(trace::SpanName::kBellmanFord);
  WIMESH_ASSERT(order.link_count() == problem.links.count());
  const auto act = active_links(problem);

  // Completeness: every conflicting active pair must be ordered one way.
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    if (problem.demand[static_cast<std::size_t>(l)] == 0 ||
        problem.demand[static_cast<std::size_t>(m)] == 0) {
      continue;
    }
    WIMESH_ASSERT_MSG(order.before(l, m) != order.before(m, l),
                      "transmission order must decide every conflicting pair");
  }

  // Difference-constraint graph: node i = start slot of act[i]; node n = 0
  // reference. Arc (from → to, w) encodes x_to - x_from <= w.
  std::vector<int> node_of(static_cast<std::size_t>(problem.links.count()),
                           -1);
  const auto n = static_cast<NodeId>(act.size());
  for (std::size_t i = 0; i < act.size(); ++i) {
    node_of[static_cast<std::size_t>(act[i])] = static_cast<int>(i);
  }
  Digraph g(n + 1);
  const NodeId zero = n;
  for (std::size_t i = 0; i < act.size(); ++i) {
    const int d = problem.demand[static_cast<std::size_t>(act[i])];
    if (d > frame_slots) return std::nullopt;
    // s_i - 0 <= S - d  and  0 - s_i <= 0.
    g.add_arc(zero, static_cast<NodeId>(i),
              static_cast<double>(frame_slots - d));
    g.add_arc(static_cast<NodeId>(i), zero, 0.0);
  }
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    const int dl = problem.demand[static_cast<std::size_t>(l)];
    const int dm = problem.demand[static_cast<std::size_t>(m)];
    if (dl == 0 || dm == 0) continue;
    if (order.before(l, m)) {
      // s_m >= s_l + d_l  ⇔  s_l - s_m <= -d_l  ⇔ arc m → l.
      g.add_arc(node_of[static_cast<std::size_t>(m)],
                node_of[static_cast<std::size_t>(l)],
                -static_cast<double>(dl));
    } else {
      g.add_arc(node_of[static_cast<std::size_t>(l)],
                node_of[static_cast<std::size_t>(m)],
                -static_cast<double>(dm));
    }
  }

  const auto x = solve_difference_constraints(g);
  if (!x.has_value()) return std::nullopt;

  MeshSchedule schedule(problem.links, frame_slots);
  const double base = (*x)[static_cast<std::size_t>(zero)];
  for (std::size_t i = 0; i < act.size(); ++i) {
    const double raw = (*x)[i] - base;
    const int slot = static_cast<int>(std::llround(raw));
    WIMESH_ASSERT_MSG(std::abs(raw - slot) < 1e-6,
                      "difference-constraint solution must be integral");
    schedule.set_grant(
        act[i],
        SlotRange{slot, problem.demand[static_cast<std::size_t>(act[i])]});
  }
  return schedule;
}

std::optional<ScheduleResult> schedule_greedy(const SchedulingProblem& problem,
                                              int frame_slots) {
  problem.check();
  auto act = active_links(problem);
  std::sort(act.begin(), act.end(), [&](LinkId a, LinkId b) {
    const int da = problem.demand[static_cast<std::size_t>(a)];
    const int db = problem.demand[static_cast<std::size_t>(b)];
    if (da != db) return da > db;
    return a < b;
  });

  MeshSchedule schedule(problem.links, frame_slots);
  for (LinkId l : act) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    // Collect busy intervals of already-placed conflicting links.
    std::vector<SlotRange> busy;
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (const auto g = schedule.grant(m)) busy.push_back(*g);
    }
    std::sort(busy.begin(), busy.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return a.start < b.start;
              });
    // First-fit gap.
    int cursor = 0;
    for (const SlotRange& b : busy) {
      if (cursor + d <= b.start) break;
      cursor = std::max(cursor, b.end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  WIMESH_ASSERT(validate_schedule(problem, schedule));
  TransmissionOrder order = order_from_schedule(problem, schedule);
  return ScheduleResult{std::move(schedule), std::move(order), 0, 0};
}

std::optional<ScheduleResult> schedule_round_robin(
    const SchedulingProblem& problem, int frame_slots) {
  problem.check();
  MeshSchedule schedule(problem.links, frame_slots);
  for (LinkId l : active_links(problem)) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    int cursor = 0;
    for (EdgeId e : problem.conflicts.incident(l)) {
      const LinkId m = problem.conflicts.other_end(e, l);
      if (const auto g = schedule.grant(m)) cursor = std::max(cursor, g->end());
    }
    if (cursor + d > frame_slots) return std::nullopt;
    schedule.set_grant(l, SlotRange{cursor, d});
  }
  WIMESH_ASSERT(validate_schedule(problem, schedule));
  TransmissionOrder order = order_from_schedule(problem, schedule);
  return ScheduleResult{std::move(schedule), std::move(order), 0, 0};
}

TransmissionOrder order_from_schedule(const SchedulingProblem& problem,
                                      const MeshSchedule& schedule) {
  TransmissionOrder order(problem.links.count());
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const LinkId l = problem.conflicts.edge(e).u;
    const LinkId m = problem.conflicts.edge(e).v;
    const auto gl = schedule.grant(l);
    const auto gm = schedule.grant(m);
    if (!gl || !gm) continue;
    if (gl->end() <= gm->start) {
      order.set_before(l, m);
    } else if (gm->end() <= gl->start) {
      order.set_before(m, l);
    }
    // Overlapping grants leave the pair unordered; validate_schedule will
    // reject such schedules.
  }
  return order;
}

bool validate_schedule(const SchedulingProblem& problem,
                       const MeshSchedule& schedule) {
  if (schedule.link_count() != problem.links.count()) return false;
  for (LinkId l = 0; l < problem.links.count(); ++l) {
    const int d = problem.demand[static_cast<std::size_t>(l)];
    const auto g = schedule.grant(l);
    if (d == 0) {
      if (g.has_value()) return false;
      continue;
    }
    if (!g || g->length != d) return false;
    if (g->start < 0 || g->end() > schedule.frame_slots()) return false;
  }
  for (EdgeId e = 0; e < problem.conflicts.edge_count(); ++e) {
    const auto gl = schedule.grant(problem.conflicts.edge(e).u);
    const auto gm = schedule.grant(problem.conflicts.edge(e).v);
    if (gl && gm && gl->overlaps(*gm)) return false;
  }
  return true;
}

int worst_case_delay_slots(const MeshSchedule& schedule, const FlowPath& flow,
                           int frame_total_slots) {
  WIMESH_ASSERT(!flow.links.empty());
  WIMESH_ASSERT(frame_total_slots >= schedule.frame_slots());
  // Worst case: the packet arrives just as the first block starts and must
  // wait a full frame for the next occurrence.
  int delay = frame_total_slots;
  const auto first = schedule.grant(flow.links.front());
  WIMESH_ASSERT(first.has_value());
  delay += first->length;
  int prev_end = first->end();
  for (std::size_t i = 1; i < flow.links.size(); ++i) {
    const auto g = schedule.grant(flow.links[static_cast<std::size_t>(i)]);
    WIMESH_ASSERT(g.has_value());
    int gap = g->start - prev_end;
    if (gap < 0) gap += frame_total_slots;  // waits for the next frame
    delay += gap + g->length;
    prev_end = g->end();
  }
  return delay;
}

int count_frame_wraps(const MeshSchedule& schedule, const FlowPath& flow) {
  int wraps = 0;
  for (std::size_t i = 1; i < flow.links.size(); ++i) {
    const auto prev = schedule.grant(flow.links[i - 1]);
    const auto cur = schedule.grant(flow.links[i]);
    WIMESH_ASSERT(prev.has_value() && cur.has_value());
    if (cur->start < prev->end()) ++wraps;
  }
  return wraps;
}

}  // namespace wimesh
