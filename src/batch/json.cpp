#include "wimesh/batch/json.h"

#include <cmath>
#include <cstdio>

namespace wimesh::batch {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": already emitted the separator
  }
  if (!scope_has_item_.empty()) {
    if (scope_has_item_.back()) out_ += ',';
    scope_has_item_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  scope_has_item_.push_back(false);
}

void JsonWriter::end_object() {
  scope_has_item_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  scope_has_item_.push_back(false);
}

void JsonWriter::end_array() {
  scope_has_item_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(double d) {
  if (!std::isfinite(d)) {
    null();
    return;
  }
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
}

void JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
}

void JsonWriter::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
}

void JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

}  // namespace wimesh::batch
