#include "wimesh/batch/runner.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "wimesh/batch/executor.h"
#include "wimesh/batch/json.h"
#include "wimesh/common/rng.h"
#include "wimesh/common/strings.h"

namespace wimesh::batch {

std::vector<RunSpec> seed_sweep(const Scenario& base, std::uint64_t index_lo,
                                std::uint64_t index_hi) {
  WIMESH_ASSERT(index_lo <= index_hi);
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(index_hi - index_lo + 1));
  for (std::uint64_t i = index_lo; i <= index_hi; ++i) {
    RunSpec spec;
    spec.scenario = base;
    spec.base_seed = base.config.seed;
    spec.run_index = i;
    spec.label = str_cat("seed=", i);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<RunOutcome> run_batch(const std::vector<RunSpec>& specs,
                                  const BatchOptions& options) {
  std::vector<RunOutcome> outcomes(specs.size());
  run_indexed(options.jobs, specs.size(), [&](std::size_t i) {
    const RunSpec& spec = specs[i];
    RunOutcome& out = outcomes[i];
    out.run_index = spec.run_index;
    out.derived_seed = Rng::derive_stream(spec.base_seed, spec.run_index);
    out.label = spec.label;

    // The whole run body executes on this one worker thread, so binding a
    // per-run Tracer here yields a trace that depends only on the run —
    // never on thread placement or job count.
    const std::uint32_t trace_cats = options.trace.categories != 0
                                         ? options.trace.categories
                                         : spec.scenario.config.trace_categories;
    if (trace_cats != 0) {
      trace::TraceConfig cfg = options.trace;
      cfg.categories = trace_cats;
      out.trace = std::make_shared<trace::Tracer>(cfg);
    }
    const trace::Scope trace_scope(out.trace.get());
    const trace::Span batch_span(trace::SpanName::kBatchRun);

    MeshConfig config = spec.scenario.config;
    config.seed = out.derived_seed;
    config.ilp.cache = options.schedule_cache;
    MeshNetwork net(std::move(config));
    for (const FlowSpec& f : spec.scenario.flows) net.add_flow(f);
    if (spec.scenario.mac == MacMode::kTdmaOverlay) {
      const auto plan = net.compute_plan();
      if (!plan.has_value()) {
        out.ok = false;
        out.error = plan.error();
        return;
      }
    }
    out.result = net.run(spec.scenario.mac, spec.scenario.duration);
    out.ok = true;
  });
  return outcomes;
}

namespace {

const char* class_name(const FlowSpec& spec) {
  if (spec.shape == TrafficShape::kVbrVideo) return "video";
  return spec.service == ServiceClass::kGuaranteed ? "voip" : "best-effort";
}

void flow_json(JsonWriter& w, const FlowResult& f, SimTime interval) {
  w.begin_object();
  w.key("id");
  w.value(f.spec.id);
  w.key("class");
  w.value(class_name(f.spec));
  w.key("src");
  w.value(f.spec.src);
  w.key("dst");
  w.value(f.spec.dst);
  w.key("sent_packets");
  w.value(f.stats.sent_packets());
  w.key("delivered_packets");
  w.value(f.stats.delivered_packets());
  w.key("delivered_bytes");
  w.value(f.stats.delivered_bytes());
  w.key("loss_rate");
  w.value(f.stats.loss_rate());
  w.key("throughput_bps");
  w.value(f.stats.throughput_bps(interval));
  const SampleSet& delays = f.stats.delays_ms();
  if (delays.empty()) {
    w.key("delay_ms");
    w.null();
  } else {
    w.key("delay_ms");
    w.begin_object();
    w.key("mean");
    w.value(delays.mean());
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"max", 1.0}};
    for (const auto& [name, q] : kQuantiles) {
      w.key(name);
      w.value(delays.quantile(q));
    }
    w.end_object();
    w.key("jitter_ms");
    w.value(f.stats.mean_jitter_ms());
  }
  if (f.spec.service == ServiceClass::kGuaranteed) {
    w.key("planned_worst_delay_ms");
    w.value(f.planned_worst_delay.to_ms());
    w.key("delay_bound_met");
    w.value(f.delay_bound_met);
  }
  w.end_object();
}

void audit_json(JsonWriter& w, const audit::AuditReport& a) {
  w.key("audit");
  w.begin_object();
  w.key("violations");
  w.begin_object();
  for (std::size_t k = 0; k < audit::kViolationKindCount; ++k) {
    w.key(audit::violation_kind_name(static_cast<audit::ViolationKind>(k)));
    w.value(a.violations[k]);
  }
  w.end_object();
  w.key("drops");
  w.begin_object();
  for (std::size_t r = 0; r < audit::kDropReasonCount; ++r) {
    // Fault-only reasons appear only when nonzero, so fault-free audited
    // output is byte-identical to pre-fault builds.
    const auto reason = static_cast<audit::DropReason>(r);
    const bool fault_only = reason == audit::DropReason::kNodeDown ||
                            reason == audit::DropReason::kScheduleRevoked;
    if (fault_only && a.drops[r] == 0) continue;
    w.key(audit::drop_reason_name(reason));
    w.value(a.drops[r]);
  }
  w.end_object();
  w.key("packets_created");
  w.value(a.packets_created);
  w.key("packets_delivered");
  w.value(a.packets_delivered);
  w.key("packets_dropped");
  w.value(a.packets_dropped);
  w.key("packets_residual");
  w.value(a.packets_residual);
  w.key("blocks_skipped");
  w.value(a.blocks_skipped);
  // Waived (in-fault-window) tallies exist only under fault injection;
  // omitted when zero so fault-free output is unchanged.
  if (a.waived_total() > 0) {
    w.key("waived");
    w.begin_object();
    for (std::size_t k = 0; k < audit::kViolationKindCount; ++k) {
      if (a.waived[k] == 0) continue;
      w.key(audit::violation_kind_name(static_cast<audit::ViolationKind>(k)));
      w.value(a.waived[k]);
    }
    w.end_object();
  }
  w.end_object();
}

void faults_json(JsonWriter& w, const faults::FaultReport& f) {
  w.key("faults");
  w.begin_object();
  w.key("events_applied");
  w.value(static_cast<std::int64_t>(f.events_applied));
  w.key("repairs");
  w.value(static_cast<std::int64_t>(f.repairs));
  w.key("failovers");
  w.value(static_cast<std::int64_t>(f.failovers));
  w.key("last_fault_at_ms");
  w.value(f.last_fault_at.to_ms());
  w.key("last_repair_at_ms");
  w.value(f.last_repair_at.to_ms());
  w.key("repair_latency_ms");
  w.value(f.repair_latency.to_ms());
  w.key("time_to_restore_ms");
  w.value(f.time_to_restore.to_ms());
  w.key("flows_preserved");
  w.value(static_cast<std::int64_t>(f.flows_preserved));
  w.key("flows_shed");
  w.value(static_cast<std::int64_t>(f.flows_shed));
  w.key("max_islands");
  w.value(static_cast<std::int64_t>(f.max_islands));
  w.key("heals");
  w.value(static_cast<std::int64_t>(f.heals));
  w.key("flows_partitioned");
  w.value(static_cast<std::int64_t>(f.flows_partitioned));
  w.key("outages");
  w.begin_array();
  for (const faults::FlowOutageRecord& o : f.outages) {
    w.begin_object();
    w.key("flow");
    w.value(static_cast<std::int64_t>(o.flow_id));
    w.key("interrupted_at_ms");
    w.value(o.interrupted_at.to_ms());
    w.key("outage_ms");
    w.value(o.outage.to_ms());
    w.key("restored");
    w.value(o.restored());
    w.key("shed");
    w.value(o.shed);
    w.key("partitioned");
    w.value(o.partitioned);
    w.end_object();
  }
  w.end_array();
  w.key("repairs_log");
  w.begin_array();
  for (const faults::RepairRecord& r : f.repair_history) {
    w.begin_object();
    w.key("fault_at_ms");
    w.value(r.at.to_ms());
    w.key("activation_ms");
    w.value(r.activation.to_ms());
    w.key("islands");
    w.value(static_cast<std::int64_t>(r.islands));
    w.key("masters");
    w.begin_array();
    for (const NodeId m : r.masters) {
      w.value(static_cast<std::int64_t>(m));
    }
    w.end_array();
    w.key("flows_planned");
    w.value(static_cast<std::int64_t>(r.flows_planned));
    w.key("flows_severed");
    w.value(static_cast<std::int64_t>(r.flows_severed));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string results_json(const std::vector<RunOutcome>& outcomes) {
  JsonWriter w;
  w.begin_object();
  w.key("runs");
  w.begin_array();
  for (const RunOutcome& run : outcomes) {
    w.begin_object();
    w.key("run_index");
    w.value(run.run_index);
    w.key("seed");
    w.value(run.derived_seed);
    w.key("label");
    w.value(run.label);
    w.key("ok");
    w.value(run.ok);
    if (!run.ok) {
      w.key("error");
      w.value(run.error);
      w.end_object();
      continue;
    }
    const SimulationResult& r = run.result;
    w.key("interval_s");
    w.value(r.measured_interval.to_seconds());
    w.key("aggregate_throughput_bps");
    w.value(r.aggregate_throughput_bps());
    w.key("mean_delay_ms");
    w.value(r.mean_delay_ms());
    w.key("max_loss_rate");
    w.value(r.max_loss_rate());
    w.key("frames_transmitted");
    w.value(r.frames_transmitted);
    w.key("receptions_corrupted");
    w.value(r.receptions_corrupted);
    w.key("mac_drops");
    w.value(r.mac_drops);
    // Only present when the run was audited, so non-audit output is
    // byte-identical to pre-audit builds.
    if (r.audit.enabled) audit_json(w, r.audit);
    // Likewise: present only when the run injected faults.
    if (r.faults.enabled) faults_json(w, r.faults);
    w.key("flows");
    w.begin_array();
    for (const FlowResult& f : r.flows) flow_json(w, f, r.measured_interval);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string results_table(const std::vector<RunOutcome>& outcomes) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-12s %8s %10s %10s %9s %12s %6s\n",
                "run", "ok", "mean_ms", "p99_ms", "loss", "tput_kbps", "viol");
  out += line;
  for (const RunOutcome& run : outcomes) {
    if (!run.ok) {
      std::snprintf(line, sizeof line, "%-12s %8s %s\n", run.label.c_str(),
                    "FAIL", run.error.c_str());
      out += line;
      continue;
    }
    const SimulationResult& r = run.result;
    double p99 = 0.0;
    for (const FlowResult& f : r.flows) {
      if (f.stats.delays_ms().empty()) continue;
      p99 = std::max(p99, f.stats.delays_ms().quantile(0.99));
    }
    char viol[16];
    if (r.audit.enabled) {
      std::snprintf(viol, sizeof viol, "%llu",
                    static_cast<unsigned long long>(
                        r.audit.total_violations()));
    } else {
      std::snprintf(viol, sizeof viol, "-");
    }
    std::snprintf(line, sizeof line,
                  "%-12s %8s %10.3f %10.3f %9.4f %12.1f %6s\n",
                  run.label.c_str(), "ok", r.mean_delay_ms(), p99,
                  r.max_loss_rate(), r.aggregate_throughput_bps() / 1000.0,
                  viol);
    out += line;
  }
  return out;
}

}  // namespace wimesh::batch
