#include "wimesh/batch/admit_run.h"

#include <cstdarg>
#include <cstdio>

#include "wimesh/batch/json.h"
#include "wimesh/core/mesh_network.h"

namespace wimesh::batch {

namespace {

// Latency percentiles reported everywhere, in microseconds.
struct LatencyUs {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

LatencyUs latency_us(const SampleSet& ns) {
  LatencyUs out;
  if (ns.empty()) return out;
  out.p50 = ns.quantile(0.50) / 1e3;
  out.p90 = ns.quantile(0.90) / 1e3;
  out.p99 = ns.quantile(0.99) / 1e3;
  out.mean = ns.mean() / 1e3;
  out.max = ns.max() / 1e3;
  return out;
}

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

AdmitRunResult run_admission_churn(const Scenario& scenario,
                                   ScheduleCache* cache) {
  // MeshNetwork's constructor owns auto_guard resolution (guard derived
  // from the sync error bound at the mesh diameter); borrow that one code
  // path instead of duplicating it.
  const MeshConfig cfg = MeshNetwork(scenario.config).config();

  admit::EngineConfig ec;
  ec.scheduler = cfg.scheduler;
  ec.routing = cfg.routing;
  ec.ilp = cfg.ilp;
  ec.ilp.cache = cache;
  ec.degrade_on_reject = scenario.admit_degrade;
  ec.compaction_departures = scenario.admit_compaction;

  const RadioModel radio(cfg.comm_range, cfg.interference_range);
  AdmitRunResult out;
  if (scenario.admit_check) {
    out.checked = true;
    out.differential = admit::differential_replay(
        cfg.topology, radio, cfg.emulation, cfg.phy, ec, scenario.admit_churn);
    out.churn = out.differential.churn;
  } else {
    admit::AdmissionEngine engine(cfg.topology, radio, cfg.emulation, cfg.phy,
                                  ec);
    out.churn = admit::replay_poisson_churn(engine, scenario.admit_churn);
  }
  return out;
}

std::string format_admit_report(const Scenario& scenario,
                                const AdmitRunResult& result) {
  const admit::ChurnResult& c = result.churn;
  const admit::EngineStats& s = c.stats;
  const admit::ChurnSpec& spec = scenario.admit_churn;
  std::string out;
  appendf(&out,
          "admit: %llu events (%llu arrivals, %llu departures) over "
          "rate=%.3g/s holding=%.3gs seed=%llu\n",
          static_cast<unsigned long long>(c.events),
          static_cast<unsigned long long>(c.arrivals),
          static_cast<unsigned long long>(c.departures), spec.arrival_rate_per_s,
          spec.mean_holding_s, static_cast<unsigned long long>(spec.seed));
  appendf(&out,
          "  decisions: %llu admitted, %llu degraded, %llu rejected "
          "(blocking %.4f)\n",
          static_cast<unsigned long long>(s.admitted),
          static_cast<unsigned long long>(s.degraded),
          static_cast<unsigned long long>(s.rejected),
          s.blocking_probability());
  appendf(&out,
          "  reject reasons: %llu infeasible, %llu endpoint_down, "
          "%llu no_route\n",
          static_cast<unsigned long long>(s.rejected_infeasible),
          static_cast<unsigned long long>(s.rejected_endpoint_down),
          static_cast<unsigned long long>(s.rejected_no_route));
  if (s.epoch_updates > 0) {
    appendf(&out, "  topology epochs: %llu installed, %llu flows evicted\n",
            static_cast<unsigned long long>(s.epoch_updates),
            static_cast<unsigned long long>(s.epoch_evictions));
  }
  appendf(&out,
          "  pipeline: %llu best-effort fast, %llu fast-reject, "
          "%llu repair, %llu full solve\n",
          static_cast<unsigned long long>(s.best_effort_fast),
          static_cast<unsigned long long>(s.fast_rejects),
          static_cast<unsigned long long>(s.repair_admits),
          static_cast<unsigned long long>(s.full_solves));
  appendf(&out, "  schedule: %llu hot-swaps, %llu compactions\n",
          static_cast<unsigned long long>(s.hot_swaps),
          static_cast<unsigned long long>(s.compactions));
  appendf(&out, "  carried: mean %.2f, peak %d simultaneous calls\n",
          c.mean_carried, c.peak_carried);
  const LatencyUs lat = latency_us(s.decision_latency_ns);
  appendf(&out,
          "  decision latency: p50 %.1f us, p90 %.1f us, p99 %.1f us, "
          "mean %.1f us, max %.1f us\n",
          lat.p50, lat.p90, lat.p99, lat.mean, lat.max);
  if (result.checked) {
    const admit::DifferentialReport& d = result.differential;
    appendf(&out,
            "  oracle check: %llu decisions compared, %llu mismatches, "
            "%llu consistency failures%s\n",
            static_cast<unsigned long long>(d.decisions),
            static_cast<unsigned long long>(d.mismatches),
            static_cast<unsigned long long>(d.consistency_failures),
            d.mismatches == 0 && d.consistency_failures == 0 ? " [ok]"
                                                             : " [FAIL]");
    if (!d.first_mismatch.empty()) {
      appendf(&out, "  first mismatch: %s\n", d.first_mismatch.c_str());
    }
  }
  return out;
}

std::string admit_json(const Scenario& scenario, const AdmitRunResult& result) {
  const admit::ChurnResult& c = result.churn;
  const admit::EngineStats& s = c.stats;
  const admit::ChurnSpec& spec = scenario.admit_churn;
  JsonWriter w;
  w.begin_object();
  w.key("spec");
  w.begin_object();
  w.key("arrival_rate_per_s");
  w.value(spec.arrival_rate_per_s);
  w.key("mean_holding_s");
  w.value(spec.mean_holding_s);
  w.key("horizon_s");
  w.value(spec.horizon_s);
  w.key("codec");
  w.value(spec.codec.name);
  w.key("max_delay_ms");
  w.value(spec.max_delay.to_ms());
  w.key("best_effort_fraction");
  w.value(spec.best_effort_fraction);
  w.key("seed");
  w.value(spec.seed);
  w.end_object();
  w.key("churn");
  w.begin_object();
  w.key("events");
  w.value(c.events);
  w.key("arrivals");
  w.value(c.arrivals);
  w.key("departures");
  w.value(c.departures);
  w.key("mean_carried");
  w.value(c.mean_carried);
  w.key("peak_carried");
  w.value(c.peak_carried);
  w.end_object();
  w.key("decisions");
  w.begin_object();
  w.key("offered");
  w.value(s.offered);
  w.key("guaranteed_offered");
  w.value(s.guaranteed_offered);
  w.key("admitted");
  w.value(s.admitted);
  w.key("degraded");
  w.value(s.degraded);
  w.key("rejected");
  w.value(s.rejected);
  w.key("released");
  w.value(s.released);
  w.key("blocking_probability");
  w.value(s.blocking_probability());
  w.key("reject_reasons");
  w.begin_object();
  w.key("infeasible");
  w.value(s.rejected_infeasible);
  w.key("endpoint_down");
  w.value(s.rejected_endpoint_down);
  w.key("no_route");
  w.value(s.rejected_no_route);
  w.end_object();
  w.key("epoch_updates");
  w.value(s.epoch_updates);
  w.key("epoch_evictions");
  w.value(s.epoch_evictions);
  w.end_object();
  w.key("pipeline");
  w.begin_object();
  w.key("best_effort_fast");
  w.value(s.best_effort_fast);
  w.key("fast_rejects");
  w.value(s.fast_rejects);
  w.key("repair_admits");
  w.value(s.repair_admits);
  w.key("full_solves");
  w.value(s.full_solves);
  w.key("hot_swaps");
  w.value(s.hot_swaps);
  w.key("compactions");
  w.value(s.compactions);
  w.end_object();
  w.key("latency_us");
  w.begin_object();
  const LatencyUs lat = latency_us(s.decision_latency_ns);
  w.key("p50");
  w.value(lat.p50);
  w.key("p90");
  w.value(lat.p90);
  w.key("p99");
  w.value(lat.p99);
  w.key("mean");
  w.value(lat.mean);
  w.key("max");
  w.value(lat.max);
  w.end_object();
  w.key("oracle_check");
  if (result.checked) {
    const admit::DifferentialReport& d = result.differential;
    w.begin_object();
    w.key("decisions");
    w.value(d.decisions);
    w.key("mismatches");
    w.value(d.mismatches);
    w.key("consistency_failures");
    w.value(d.consistency_failures);
    w.key("first_mismatch");
    w.value(d.first_mismatch);
    w.end_object();
  } else {
    w.null();
  }
  w.end_object();
  return w.str();
}

}  // namespace wimesh::batch
