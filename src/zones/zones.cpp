#include "wimesh/zones/zones.h"

#include <algorithm>
#include <queue>

#include "wimesh/common/strings.h"
#include "wimesh/exec/executor.h"
#include "wimesh/trace/trace.h"

namespace wimesh::zones {
namespace {

// Ascending-neighbor view of a node (Graph::incident order is insertion
// order; BFS determinism needs a canonical order).
std::vector<NodeId> sorted_neighbors(const Graph& g, NodeId u) {
  std::vector<NodeId> out = g.neighbors(u);
  std::sort(out.begin(), out.end());
  return out;
}

// One zone's subproblem plus the local->global LinkId map (local ids are
// assigned in ascending global order, so the map is sorted).
struct ZoneProblem {
  SchedulingProblem problem;
  std::vector<LinkId> to_global;
};

ZoneProblem build_zone_problem(const SchedulingProblem& global,
                               const std::vector<int>& zone_of_link,
                               int zone) {
  ZoneProblem zp;
  std::vector<LinkId> to_local(
      static_cast<std::size_t>(global.links.count()), kInvalidLink);
  for (LinkId l = 0; l < global.links.count(); ++l) {
    if (zone_of_link[static_cast<std::size_t>(l)] != zone) continue;
    const LinkId local = zp.problem.links.add(global.links.link(l));
    WIMESH_ASSERT(local == static_cast<LinkId>(zp.to_global.size()));
    zp.to_global.push_back(l);
    to_local[static_cast<std::size_t>(l)] = local;
    zp.problem.demand.push_back(
        global.demand[static_cast<std::size_t>(l)]);
  }
  // Induced conflict subgraph, edges inserted in the canonical
  // (l asc, m asc) order.
  zp.problem.conflicts = Graph(zp.problem.links.count());
  for (LinkId local = 0; local < zp.problem.links.count(); ++local) {
    const LinkId l = zp.to_global[static_cast<std::size_t>(local)];
    std::vector<NodeId> neigh = sorted_neighbors(global.conflicts, l);
    for (NodeId m : neigh) {
      if (m <= l) continue;
      const LinkId m_local = to_local[static_cast<std::size_t>(m)];
      if (m_local == kInvalidLink) continue;
      zp.problem.conflicts.add_edge(local, m_local);
    }
  }
  // Only flows living entirely inside the zone keep their delay budget;
  // cross-zone flows are no single zone's constraint (the planner reports
  // their bounds instead of enforcing them).
  for (const FlowPath& flow : global.flows) {
    FlowPath local_flow;
    local_flow.delay_budget_frames = flow.delay_budget_frames;
    bool inside = !flow.links.empty();
    for (LinkId l : flow.links) {
      const LinkId local = to_local[static_cast<std::size_t>(l)];
      if (local == kInvalidLink) {
        inside = false;
        break;
      }
      local_flow.links.push_back(local);
    }
    if (inside) zp.problem.flows.push_back(std::move(local_flow));
  }
  return zp;
}

}  // namespace

ZonePartition partition_zones(const Graph& connectivity, int zone_count) {
  const NodeId n = connectivity.node_count();
  ZonePartition out;
  if (n == 0) {
    out.zone_count = 0;
    return out;
  }
  const int k = std::clamp(zone_count, 1, static_cast<int>(n));
  out.zone_count = k;
  out.zone_of_node.assign(static_cast<std::size_t>(n), -1);

  NodeId remaining = n;
  NodeId next_seed = 0;  // lowest possibly-unassigned node
  for (int zone = 0; zone < k; ++zone) {
    // Even split of what is left across the zones still to grow.
    const NodeId target =
        (remaining + static_cast<NodeId>(k - zone) - 1) /
        static_cast<NodeId>(k - zone);
    NodeId taken = 0;
    while (taken < target) {
      while (next_seed < n &&
             out.zone_of_node[static_cast<std::size_t>(next_seed)] != -1) {
        ++next_seed;
      }
      WIMESH_ASSERT(next_seed < n);
      std::queue<NodeId> frontier;
      out.zone_of_node[static_cast<std::size_t>(next_seed)] = zone;
      ++taken;
      frontier.push(next_seed);
      while (!frontier.empty() && taken < target) {
        const NodeId u = frontier.front();
        frontier.pop();
        for (NodeId v : sorted_neighbors(connectivity, u)) {
          if (out.zone_of_node[static_cast<std::size_t>(v)] != -1) continue;
          out.zone_of_node[static_cast<std::size_t>(v)] = zone;
          ++taken;
          frontier.push(v);
          if (taken >= target) break;
        }
      }
      // Component exhausted before the target: the next-lowest unassigned
      // node seeds the same zone.
    }
    remaining -= taken;
  }
  WIMESH_ASSERT(remaining == 0);
  return out;
}

Expected<ZonedScheduleResult> schedule_zoned(const SchedulingProblem& problem,
                                             const ZonePartition& partition,
                                             int max_slots,
                                             const ZoneOptions& options) {
  problem.check();
  WIMESH_ASSERT(partition.zone_count >= 1);
  WIMESH_ASSERT(max_slots >= 1);
  const LinkId link_count = problem.links.count();
  const int k = partition.zone_count;

  ZonedScheduleResult out;
  out.zone_of_link.resize(static_cast<std::size_t>(link_count));
  out.border_link.assign(static_cast<std::size_t>(link_count), false);
  out.zones.resize(static_cast<std::size_t>(k));

  // A link belongs to its transmitter's zone.
  for (LinkId l = 0; l < link_count; ++l) {
    const NodeId from = problem.links.link(l).from;
    WIMESH_ASSERT(static_cast<std::size_t>(from) <
                  partition.zone_of_node.size());
    const int zone = partition.zone_of_node[static_cast<std::size_t>(from)];
    WIMESH_ASSERT(zone >= 0 && zone < k);
    out.zone_of_link[static_cast<std::size_t>(l)] = zone;
    ++out.zones[static_cast<std::size_t>(zone)].links;
    if (problem.demand[static_cast<std::size_t>(l)] > 0) {
      ++out.zones[static_cast<std::size_t>(zone)].demanded_links;
    }
  }
  // Border = any conflict neighbor lives in another zone. Conflict edges
  // always join a border pair or an intra-zone pair, never interior links
  // of different zones.
  for (LinkId l = 0; l < link_count; ++l) {
    for (NodeId m : problem.conflicts.neighbors(l)) {
      if (out.zone_of_link[static_cast<std::size_t>(l)] !=
          out.zone_of_link[static_cast<std::size_t>(m)]) {
        out.border_link[static_cast<std::size_t>(l)] = true;
        break;
      }
    }
  }
  for (LinkId l = 0; l < link_count; ++l) {
    if (!out.border_link[static_cast<std::size_t>(l)]) continue;
    ++out.border_links;
    ++out.zones[static_cast<std::size_t>(
                    out.zone_of_link[static_cast<std::size_t>(l)])]
          .border_links;
  }
  trace::event(trace::EventType::kZonePartition, SimTime::zero(), -1, k,
               static_cast<std::int64_t>(partition.zone_of_node.size()),
               out.border_links, link_count - out.border_links);

  // --- Phase 1: independent zone solves, fanned out over the executor.
  // Zone results are indexed by zone, so the composed output cannot
  // depend on worker-thread scheduling.
  std::vector<ZoneProblem> zone_problems;
  zone_problems.reserve(static_cast<std::size_t>(k));
  for (int zone = 0; zone < k; ++zone) {
    zone_problems.push_back(
        build_zone_problem(problem, out.zone_of_link, zone));
  }
  IlpSchedulerOptions zone_opts = options.ilp;
  zone_opts.threads = 1;      // the zone fan-out owns the worker pool
  zone_opts.cache = nullptr;  // zone-local LinkIds would alias cache keys

  std::vector<MeshSchedule> zone_schedules(static_cast<std::size_t>(k));
  std::vector<std::string> zone_errors(static_cast<std::size_t>(k));
  exec::run_indexed(
      options.jobs, static_cast<std::size_t>(k), [&](std::size_t zi) {
        const ZoneProblem& zp = zone_problems[zi];
        ZoneStats& stats = out.zones[zi];
        if (stats.demanded_links == 0) {
          zone_schedules[zi] = MeshSchedule(zp.problem.links, 0);
          return;
        }
        auto solved = min_slots_search(zp.problem, max_slots, zone_opts);
        if (!solved) {
          zone_errors[zi] = solved.error();
          return;
        }
        stats.slots = solved->frame_slots;
        stats.proven_minimal = solved->proven_minimal;
        zone_schedules[zi] = std::move(solved->result.schedule);
      });
  for (int zone = 0; zone < k; ++zone) {
    if (!zone_errors[static_cast<std::size_t>(zone)].empty()) {
      return make_error(str_cat("zone ", zone, ": ",
                                zone_errors[static_cast<std::size_t>(zone)]));
    }
    if (!out.zones[static_cast<std::size_t>(zone)].proven_minimal) {
      out.proven_minimal = false;
    }
    trace::event(trace::EventType::kZoneSolve, SimTime::zero(), -1, zone,
                 out.zones[static_cast<std::size_t>(zone)].links,
                 out.zones[static_cast<std::size_t>(zone)].slots,
                 out.zones[static_cast<std::size_t>(zone)].proven_minimal
                     ? 1
                     : 0);
  }

  // Zone-local grants, translated to global LinkIds.
  std::vector<SlotRange> requested(static_cast<std::size_t>(link_count));
  for (int zone = 0; zone < k; ++zone) {
    const ZoneProblem& zp = zone_problems[static_cast<std::size_t>(zone)];
    const MeshSchedule& zs = zone_schedules[static_cast<std::size_t>(zone)];
    for (LinkId local = 0; local < zp.problem.links.count(); ++local) {
      if (const auto g = zs.grant(local)) {
        requested[static_cast<std::size_t>(
            zp.to_global[static_cast<std::size_t>(local)])] = *g;
      }
    }
  }

  // --- Phase 2: commit interior grants as solved, then confirm border
  // links in ascending global LinkId order. Every conflicting pair is
  // checked when its later member commits: interior pairs were solved in
  // phase 1 (same zone), and any pair involving a border link is checked
  // here, so the composition is conflict-free by construction.
  std::vector<SlotRange> committed(static_cast<std::size_t>(link_count));
  int composed_slots = 0;
  for (LinkId l = 0; l < link_count; ++l) {
    if (out.border_link[static_cast<std::size_t>(l)]) continue;
    const SlotRange g = requested[static_cast<std::size_t>(l)];
    committed[static_cast<std::size_t>(l)] = g;
    composed_slots = std::max(composed_slots, g.end());
  }
  for (LinkId l = 0; l < link_count; ++l) {
    if (!out.border_link[static_cast<std::size_t>(l)]) continue;
    const int demand = problem.demand[static_cast<std::size_t>(l)];
    if (demand == 0) continue;
    // Committed grants this link must avoid, as a sorted busy list.
    std::vector<SlotRange> busy;
    for (NodeId m : problem.conflicts.neighbors(l)) {
      const SlotRange& g = committed[static_cast<std::size_t>(m)];
      if (g.length > 0) busy.push_back(g);
    }
    std::sort(busy.begin(), busy.end(),
              [](const SlotRange& a, const SlotRange& b) {
                return a.start < b.start;
              });
    const auto fits = [&](const SlotRange& range) {
      for (const SlotRange& b : busy) {
        if (range.overlaps(b)) return false;
      }
      return true;
    };
    SlotRange grant = requested[static_cast<std::size_t>(l)];
    WIMESH_ASSERT(grant.length == demand);
    bool relocated = false;
    if (!fits(grant)) {
      // First fit: start at 0 and hop over each busy block that blocks
      // the current candidate.
      relocated = true;
      grant.start = 0;
      for (const SlotRange& b : busy) {
        if (grant.overlaps(b)) grant.start = b.end();
      }
      if (grant.end() > max_slots) {
        return make_error(str_cat(
            "border reconciliation needs ", grant.end(),
            " slots for link ", l, ", exceeding the cap of ", max_slots));
      }
      WIMESH_ASSERT(fits(grant));
    }
    committed[static_cast<std::size_t>(l)] = grant;
    composed_slots = std::max(composed_slots, grant.end());
    if (relocated) ++out.relocated_border_links;
    trace::event(trace::EventType::kZoneBorder, SimTime::zero(), -1, l,
                 grant.start, grant.length, relocated ? 1 : 0);
  }

  out.frame_slots = composed_slots;
  out.schedule = MeshSchedule(problem.links, composed_slots);
  for (LinkId l = 0; l < link_count; ++l) {
    const SlotRange& g = committed[static_cast<std::size_t>(l)];
    if (g.length > 0) out.schedule.set_grant(l, g);
  }
  return out;
}

}  // namespace wimesh::zones
