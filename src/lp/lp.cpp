#include "wimesh/lp/lp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wimesh {

VarId LpModel::add_variable(double lo, double up, double obj,
                            std::string name) {
  WIMESH_ASSERT_MSG(lo <= up, "variable created with empty domain");
  WIMESH_ASSERT(!std::isnan(lo) && !std::isnan(up) && std::isfinite(obj));
  vars_.push_back(Var{lo, up, obj, std::move(name)});
  return static_cast<VarId>(vars_.size() - 1);
}

RowId LpModel::add_constraint(const std::vector<LpTerm>& terms, RowSense sense,
                              double rhs, std::string name) {
  WIMESH_ASSERT(std::isfinite(rhs));
  // Merge duplicate variables so the solver sees clean rows.
  Row row;
  row.sense = sense;
  row.rhs = rhs;
  row.name = std::move(name);
  row.terms = terms;
  std::sort(row.terms.begin(), row.terms.end(),
            [](const LpTerm& a, const LpTerm& b) { return a.var < b.var; });
  std::vector<LpTerm> merged;
  for (const LpTerm& t : row.terms) {
    WIMESH_ASSERT(t.var >= 0 && t.var < variable_count());
    WIMESH_ASSERT(std::isfinite(t.coef));
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  row.terms = std::move(merged);
  rows_.push_back(std::move(row));
  return static_cast<RowId>(rows_.size() - 1);
}

void LpModel::set_bounds(VarId v, double lo, double up) {
  // lo > up is allowed here: branch & bound creates empty domains on
  // purpose and expects the solver to report infeasibility.
  auto& var = vars_[check_var(v)];
  var.lo = lo;
  var.up = up;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  WIMESH_ASSERT(x.size() == vars_.size());
  double obj = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) obj += vars_[j].obj * x[j];
  return obj;
}

double LpModel::max_violation(const std::vector<double>& x) const {
  WIMESH_ASSERT(x.size() == vars_.size());
  double worst = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    worst = std::max(worst, vars_[j].lo - x[j]);
    worst = std::max(worst, x[j] - vars_[j].up);
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const LpTerm& t : row.terms) {
      lhs += t.coef * x[static_cast<std::size_t>(t.var)];
    }
    switch (row.sense) {
      case RowSense::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case RowSense::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case RowSense::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

namespace {

// Dense two-phase primal simplex with general (possibly infinite) variable
// bounds. Column layout: [structural | slack (one per row) | artificial
// (one per row)]. The full tableau T = B^-1 * A is maintained explicitly;
// per-pivot cost is O(rows * cols), which is fine at the scale of the
// scheduling ILP relaxations this repo solves (hundreds of rows).
class Simplex {
 public:
  Simplex(const LpModel& model, const LpOptions& opt)
      : model_(model), opt_(opt) {}

  LpResult run(const LpBasis* warm, LpBasis* basis_out);

 private:
  enum class Status : std::uint8_t { kBasic, kAtLower, kAtUpper, kFreeZero };

  // Outcome of the dual-simplex repair pass used by warm starts.
  enum class DualOutcome { kFeasible, kInfeasible, kIterationLimit, kStalled };

  struct Pick {
    int col = -1;
    int dir = 0;  // +1: increase entering var, -1: decrease
  };

  std::size_t idx(int i) const { return static_cast<std::size_t>(i); }
  double& t_at(int r, int c) { return tab_[idx(r) * idx(cols_) + idx(c)]; }
  double t_at(int r, int c) const {
    return tab_[idx(r) * idx(cols_) + idx(c)];
  }

  void build();
  void install_phase1_costs();
  void install_phase2_costs();
  void recompute_reduced_costs();
  double nonbasic_value(int j) const;
  Pick choose_entering(bool bland) const;
  // Returns false on unboundedness.
  bool step(const Pick& pick, bool* progressed);
  // Gauss-Jordan elimination around pivot (leave_row, q). `update_rhs`
  // applies the same row operations to xb_ (used while installing a warm
  // basis, where xb_ is the literal rhs column); `update_costs` keeps the
  // reduced costs in sync (used by primal/dual iterations, which maintain
  // xb_ incrementally instead).
  void pivot_tableau(int leave_row, int q, bool update_rhs, bool update_costs);
  bool install_warm(const LpBasis& hint);
  bool primal_feasible() const;
  bool dual_feasible() const;
  DualOutcome run_dual();
  double basic_objective() const;
  void extract_solution(LpResult* out) const;
  void extract_basis(LpBasis* out) const;

  const LpModel& model_;
  const LpOptions& opt_;

  int n_ = 0;      // structural variables
  int m_ = 0;      // rows
  int cols_ = 0;   // n + 2m
  std::vector<double> tab_;     // m x cols, row-major: B^-1 * A
  std::vector<double> dcost_;   // reduced costs, length cols
  std::vector<double> cost_;    // current phase objective coefficients
  std::vector<double> lo_, up_;
  std::vector<Status> status_;
  std::vector<int> basis_;      // basis_[r] = column basic in row r
  std::vector<double> xb_;      // values of basic variables by row
  long iters_ = 0;
  bool phase1_ = true;
};

void Simplex::build() {
  n_ = model_.variable_count();
  m_ = model_.constraint_count();
  cols_ = n_ + 2 * m_;
  tab_.assign(idx(m_) * idx(cols_), 0.0);
  lo_.assign(idx(cols_), 0.0);
  up_.assign(idx(cols_), kLpInfinity);
  status_.assign(idx(cols_), Status::kAtLower);

  for (int j = 0; j < n_; ++j) {
    lo_[idx(j)] = model_.lower_bound(j);
    up_[idx(j)] = model_.upper_bound(j);
    if (lo_[idx(j)] > -kLpInfinity) {
      status_[idx(j)] = Status::kAtLower;
    } else if (up_[idx(j)] < kLpInfinity) {
      status_[idx(j)] = Status::kAtUpper;
    } else {
      status_[idx(j)] = Status::kFreeZero;
    }
  }
  // Slack for row r is column n_+r: row becomes  a'x + s = rhs.
  for (int r = 0; r < m_; ++r) {
    const int s = n_ + r;
    switch (model_.row(r).sense) {
      case RowSense::kLessEqual:
        lo_[idx(s)] = 0.0;
        up_[idx(s)] = kLpInfinity;
        break;
      case RowSense::kGreaterEqual:
        lo_[idx(s)] = -kLpInfinity;
        up_[idx(s)] = 0.0;
        status_[idx(s)] = Status::kAtUpper;
        break;
      case RowSense::kEqual:
        lo_[idx(s)] = up_[idx(s)] = 0.0;
        break;
    }
  }

  // Fill structural + slack coefficients, then pick artificial signs so the
  // initial basis (the artificials) is feasible: value = |residual|.
  for (int r = 0; r < m_; ++r) {
    for (const LpTerm& t : model_.row(r).terms) t_at(r, t.var) += t.coef;
    t_at(r, n_ + r) = 1.0;
  }
  basis_.assign(idx(m_), -1);
  xb_.assign(idx(m_), 0.0);
  for (int r = 0; r < m_; ++r) {
    double residual = model_.row(r).rhs;
    for (int j = 0; j < n_ + m_; ++j) {
      if (t_at(r, j) != 0.0) residual -= t_at(r, j) * nonbasic_value(j);
    }
    const int a = n_ + m_ + r;
    lo_[idx(a)] = 0.0;
    up_[idx(a)] = kLpInfinity;
    const double sign = residual < 0.0 ? -1.0 : 1.0;
    t_at(r, a) = sign;
    if (sign < 0.0) {
      // Normalize so the basic (artificial) column is +1 in its row.
      for (int j = 0; j < cols_; ++j) t_at(r, j) = -t_at(r, j);
    }
    basis_[idx(r)] = a;
    status_[idx(a)] = Status::kBasic;
    xb_[idx(r)] = std::abs(residual);
  }
}

double Simplex::nonbasic_value(int j) const {
  switch (status_[idx(j)]) {
    case Status::kAtLower: return lo_[idx(j)];
    case Status::kAtUpper: return up_[idx(j)];
    case Status::kFreeZero: return 0.0;
    case Status::kBasic: break;
  }
  WIMESH_ASSERT_MSG(false, "nonbasic_value called on basic variable");
  return 0.0;
}

void Simplex::install_phase1_costs() {
  cost_.assign(idx(cols_), 0.0);
  for (int r = 0; r < m_; ++r) cost_[idx(n_ + m_ + r)] = 1.0;
  recompute_reduced_costs();
}

void Simplex::install_phase2_costs() {
  cost_.assign(idx(cols_), 0.0);
  const double sense =
      model_.objective_sense() == ObjSense::kMinimize ? 1.0 : -1.0;
  for (int j = 0; j < n_; ++j) cost_[idx(j)] = sense * model_.objective_coef(j);
  // Artificials are pinned to zero for phase 2 so they can never re-enter
  // with a nonzero value.
  for (int r = 0; r < m_; ++r) {
    const int a = n_ + m_ + r;
    up_[idx(a)] = 0.0;
    if (status_[idx(a)] == Status::kAtUpper) status_[idx(a)] = Status::kAtLower;
  }
  recompute_reduced_costs();
}

void Simplex::recompute_reduced_costs() {
  // d_j = c_j - c_B' (B^-1 a_j); the tableau already holds B^-1 a_j.
  dcost_.assign(idx(cols_), 0.0);
  for (int j = 0; j < cols_; ++j) dcost_[idx(j)] = cost_[idx(j)];
  for (int r = 0; r < m_; ++r) {
    const double cb = cost_[idx(basis_[idx(r)])];
    if (cb == 0.0) continue;
    for (int j = 0; j < cols_; ++j) dcost_[idx(j)] -= cb * t_at(r, j);
  }
  for (int r = 0; r < m_; ++r) dcost_[idx(basis_[idx(r)])] = 0.0;
}

Simplex::Pick Simplex::choose_entering(bool bland) const {
  Pick best;
  double best_score = opt_.optimality_tol;
  for (int j = 0; j < cols_; ++j) {
    const Status st = status_[idx(j)];
    if (st == Status::kBasic) continue;
    if (lo_[idx(j)] == up_[idx(j)]) continue;  // fixed, cannot move
    const double d = dcost_[idx(j)];
    int dir = 0;
    if ((st == Status::kAtLower || st == Status::kFreeZero) &&
        d < -opt_.optimality_tol) {
      dir = +1;
    } else if ((st == Status::kAtUpper || st == Status::kFreeZero) &&
               d > opt_.optimality_tol) {
      dir = -1;
    }
    if (dir == 0) continue;
    if (bland) return Pick{j, dir};  // first eligible index
    const double score = std::abs(d);
    if (score > best_score) {
      best_score = score;
      best = Pick{j, dir};
    }
  }
  return best;
}

bool Simplex::step(const Pick& pick, bool* progressed) {
  const int q = pick.col;
  const double dir = pick.dir;

  // Maximum movement before the entering variable hits its own far bound.
  double t_limit = kLpInfinity;
  int leave_row = -1;
  double leave_to_upper = false;
  if (lo_[idx(q)] > -kLpInfinity && up_[idx(q)] < kLpInfinity) {
    t_limit = up_[idx(q)] - lo_[idx(q)];
  }

  // Ratio test: basic variable values move by -dir * t * w_r.
  // Two passes (Harris-style): find the tightest ratio, then among rows
  // within tolerance of it choose the one with the largest pivot magnitude.
  const double tol = opt_.feasibility_tol;
  double t_min = t_limit;
  for (int r = 0; r < m_; ++r) {
    const double w = t_at(r, q);
    const double delta = -dir * w;
    if (std::abs(w) < 1e-11) continue;
    const int b = basis_[idx(r)];
    if (delta < 0.0 && lo_[idx(b)] > -kLpInfinity) {
      t_min = std::min(t_min, (xb_[idx(r)] - lo_[idx(b)] + tol) / -delta);
    } else if (delta > 0.0 && up_[idx(b)] < kLpInfinity) {
      t_min = std::min(t_min, (up_[idx(b)] - xb_[idx(r)] + tol) / delta);
    }
  }
  if (t_min == kLpInfinity) return false;  // unbounded direction

  double best_pivot = 0.0;
  double t_leave = 0.0;
  for (int r = 0; r < m_; ++r) {
    const double w = t_at(r, q);
    const double delta = -dir * w;
    if (std::abs(w) < 1e-11) continue;
    const int b = basis_[idx(r)];
    double t_r;
    bool to_upper;
    if (delta < 0.0 && lo_[idx(b)] > -kLpInfinity) {
      t_r = (xb_[idx(r)] - lo_[idx(b)]) / -delta;
      to_upper = false;
    } else if (delta > 0.0 && up_[idx(b)] < kLpInfinity) {
      t_r = (up_[idx(b)] - xb_[idx(r)]) / delta;
      to_upper = true;
    } else {
      continue;
    }
    if (t_r <= t_min && std::abs(w) > best_pivot) {
      best_pivot = std::abs(w);
      leave_row = r;
      t_leave = std::max(t_r, 0.0);
      leave_to_upper = to_upper;
    }
  }

  const double t =
      leave_row >= 0 ? std::min(t_leave, t_limit) : std::min(t_min, t_limit);
  *progressed = t > tol;

  // Apply the movement to the basic values.
  for (int r = 0; r < m_; ++r) {
    const double w = t_at(r, q);
    if (w != 0.0) xb_[idx(r)] -= dir * t * w;
  }

  if (leave_row < 0 || (t_limit <= t_leave && t_limit < kLpInfinity)) {
    // Bound flip: the entering variable traverses to its opposite bound.
    status_[idx(q)] =
        dir > 0 ? Status::kAtUpper : Status::kAtLower;
    return true;
  }

  // Pivot: q enters the basis in leave_row, the old basic leaves at the
  // bound the ratio test hit.
  const int leaving = basis_[idx(leave_row)];
  status_[idx(leaving)] =
      leave_to_upper ? Status::kAtUpper : Status::kAtLower;
  const double entering_value = nonbasic_value(q) + pick.dir * t;
  basis_[idx(leave_row)] = q;
  status_[idx(q)] = Status::kBasic;
  xb_[idx(leave_row)] = entering_value;
  // Clamp the leaving variable exactly onto its bound (it can be off by the
  // ratio-test tolerance).
  // (Value is implicit in its status; nothing stored.)

  // Gauss-Jordan update of the tableau and reduced costs around (r, q).
  pivot_tableau(leave_row, q, /*update_rhs=*/false, /*update_costs=*/true);
  return true;
}

void Simplex::pivot_tableau(int leave_row, int q, bool update_rhs,
                            bool update_costs) {
  const double piv = t_at(leave_row, q);
  WIMESH_ASSERT_MSG(std::abs(piv) > 1e-12, "numerically singular pivot");
  const double inv = 1.0 / piv;
  for (int j = 0; j < cols_; ++j) t_at(leave_row, j) *= inv;
  if (update_rhs) xb_[idx(leave_row)] *= inv;
  for (int r = 0; r < m_; ++r) {
    if (r == leave_row) continue;
    const double f = t_at(r, q);
    if (f == 0.0) continue;
    for (int j = 0; j < cols_; ++j) t_at(r, j) -= f * t_at(leave_row, j);
    t_at(r, q) = 0.0;  // exact zero, avoids drift
    if (update_rhs) xb_[idx(r)] -= f * xb_[idx(leave_row)];
  }
  if (update_costs) {
    const double fd = dcost_[idx(q)];
    if (fd != 0.0) {
      for (int j = 0; j < cols_; ++j) {
        dcost_[idx(j)] -= fd * t_at(leave_row, j);
      }
    }
    dcost_[idx(q)] = 0.0;
  }
}

bool Simplex::install_warm(const LpBasis& hint) {
  const int nm = n_ + m_;
  if (static_cast<int>(hint.status.size()) != nm) return false;
  if (static_cast<int>(hint.basic.size()) != m_) return false;
  std::vector<char> hint_basic(idx(nm), 0);
  for (std::int32_t q : hint.basic) {
    if (q < 0 || q >= nm) return false;
    if (hint_basic[idx(q)] != 0) return false;
    if (hint.status[idx(q)] != LpVarStatus::kBasic) return false;
    hint_basic[idx(q)] = 1;
  }

  // Move every hint-nonbasic column onto its hinted bound, clamped to the
  // CURRENT bounds (the hint may come from a model with different bounds,
  // e.g. the branch & bound parent). xb_ is kept consistent as the rhs
  // column B^-1 (b - N x_N) throughout.
  for (int j = 0; j < nm; ++j) {
    if (hint_basic[idx(j)] != 0) continue;
    const bool has_lo = lo_[idx(j)] > -kLpInfinity;
    const bool has_up = up_[idx(j)] < kLpInfinity;
    Status want;
    switch (hint.status[idx(j)]) {
      case LpVarStatus::kAtUpper:
        want = has_up ? Status::kAtUpper
                      : (has_lo ? Status::kAtLower : Status::kFreeZero);
        break;
      case LpVarStatus::kFree:
        want = (!has_lo && !has_up)
                   ? Status::kFreeZero
                   : (has_lo ? Status::kAtLower : Status::kAtUpper);
        break;
      case LpVarStatus::kAtLower:
      case LpVarStatus::kBasic:  // unreachable (validated above)
      default:
        want = has_lo ? Status::kAtLower
                      : (has_up ? Status::kAtUpper : Status::kFreeZero);
        break;
    }
    if (want == status_[idx(j)]) continue;
    const double old_val = nonbasic_value(j);
    status_[idx(j)] = want;
    const double delta = nonbasic_value(j) - old_val;
    if (delta == 0.0) continue;
    for (int r = 0; r < m_; ++r) {
      const double w = t_at(r, j);
      if (w != 0.0) xb_[idx(r)] -= w * delta;
    }
  }

  // Pivot the hinted columns into the basis, displacing one artificial per
  // pivot. Row choice is the largest available pivot magnitude; a column
  // with no usable pivot means the hinted basis is singular under the new
  // coefficients, and the caller cold-starts instead.
  for (std::int32_t q : hint.basic) {
    const double val_q = nonbasic_value(q);
    if (val_q != 0.0) {
      // Remove q's nonbasic contribution before it enters the basis.
      for (int r = 0; r < m_; ++r) {
        const double w = t_at(r, q);
        if (w != 0.0) xb_[idx(r)] += w * val_q;
      }
    }
    int best_row = -1;
    double best_piv = 1e-7;
    for (int r = 0; r < m_; ++r) {
      if (basis_[idx(r)] < nm) continue;  // row already claimed by a hint col
      const double w = std::abs(t_at(r, q));
      if (w > best_piv) {
        best_piv = w;
        best_row = r;
      }
    }
    if (best_row < 0) return false;
    const int leaving = basis_[idx(best_row)];
    pivot_tableau(best_row, q, /*update_rhs=*/true, /*update_costs=*/false);
    basis_[idx(best_row)] = q;
    status_[idx(q)] = Status::kBasic;
    status_[idx(leaving)] = Status::kAtLower;  // artificial back to zero
  }
  return true;
}

bool Simplex::primal_feasible() const {
  const double tol = opt_.feasibility_tol;
  for (int r = 0; r < m_; ++r) {
    const int b = basis_[idx(r)];
    const double v = xb_[idx(r)];
    if (v < lo_[idx(b)] - tol || v > up_[idx(b)] + tol) return false;
  }
  return true;
}

bool Simplex::dual_feasible() const {
  const double tol = opt_.optimality_tol;
  for (int j = 0; j < cols_; ++j) {
    const Status st = status_[idx(j)];
    if (st == Status::kBasic) continue;
    if (lo_[idx(j)] == up_[idx(j)]) continue;  // fixed, any sign is fine
    const double d = dcost_[idx(j)];
    if (st == Status::kAtLower && d < -tol) return false;
    if (st == Status::kAtUpper && d > tol) return false;
    if (st == Status::kFreeZero && std::abs(d) > tol) return false;
  }
  return true;
}

Simplex::DualOutcome Simplex::run_dual() {
  const double ftol = opt_.feasibility_tol;
  int stall = 0;
  const int stall_threshold = 2 * (m_ + cols_) + 64;
  for (;;) {
    if (iters_ >= opt_.max_iterations) return DualOutcome::kIterationLimit;

    // Leaving row: the basic variable with the worst bound violation.
    int leave_row = -1;
    double worst = ftol;
    bool below = false;
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[idx(r)];
      const double v = xb_[idx(r)];
      if (lo_[idx(b)] - v > worst) {
        worst = lo_[idx(b)] - v;
        leave_row = r;
        below = true;
      }
      if (v - up_[idx(b)] > worst) {
        worst = v - up_[idx(b)];
        leave_row = r;
        below = false;
      }
    }
    if (leave_row < 0) return DualOutcome::kFeasible;

    // Entering column: dual ratio test — the column whose reduced cost
    // reaches zero first keeps the basis dual feasible. Movement of the
    // violated basic is -alpha * d(x_j), so eligibility depends on the
    // direction x_j can move off its bound and the sign of alpha.
    int q = -1;
    double best_ratio = kLpInfinity;
    double best_alpha = 0.0;
    for (int j = 0; j < cols_; ++j) {
      const Status st = status_[idx(j)];
      if (st == Status::kBasic) continue;
      if (lo_[idx(j)] == up_[idx(j)]) continue;
      const double alpha = t_at(leave_row, j);
      if (std::abs(alpha) < 1e-9) continue;
      bool eligible;
      if (below) {
        eligible = ((st == Status::kAtLower || st == Status::kFreeZero) &&
                    alpha < 0.0) ||
                   ((st == Status::kAtUpper || st == Status::kFreeZero) &&
                    alpha > 0.0);
      } else {
        eligible = ((st == Status::kAtLower || st == Status::kFreeZero) &&
                    alpha > 0.0) ||
                   ((st == Status::kAtUpper || st == Status::kFreeZero) &&
                    alpha < 0.0);
      }
      if (!eligible) continue;
      const double ratio = std::abs(dcost_[idx(j)]) / std::abs(alpha);
      if (ratio < best_ratio - 1e-12 ||
          (ratio <= best_ratio + 1e-12 &&
           std::abs(alpha) > std::abs(best_alpha))) {
        best_ratio = ratio;
        q = j;
        best_alpha = alpha;
      }
    }
    // No column can absorb the violation: the violated row is a Farkas
    // certificate of primal infeasibility.
    if (q < 0) return DualOutcome::kInfeasible;

    const int leaving = basis_[idx(leave_row)];
    const double target = below ? lo_[idx(leaving)] : up_[idx(leaving)];
    const double dt = (xb_[idx(leave_row)] - target) / t_at(leave_row, q);
    for (int r = 0; r < m_; ++r) {
      const double w = t_at(r, q);
      if (w != 0.0) xb_[idx(r)] -= w * dt;
    }
    const double entering_value = nonbasic_value(q) + dt;
    status_[idx(leaving)] = below ? Status::kAtLower : Status::kAtUpper;
    basis_[idx(leave_row)] = q;
    status_[idx(q)] = Status::kBasic;
    xb_[idx(leave_row)] = entering_value;
    pivot_tableau(leave_row, q, /*update_rhs=*/false, /*update_costs=*/true);
    ++iters_;
    stall = std::abs(dt) > ftol ? 0 : stall + 1;
    if (stall > stall_threshold) return DualOutcome::kStalled;
  }
}

double Simplex::basic_objective() const {
  double obj = 0.0;
  for (int r = 0; r < m_; ++r) {
    obj += cost_[idx(basis_[idx(r)])] * xb_[idx(r)];
  }
  for (int j = 0; j < cols_; ++j) {
    if (status_[idx(j)] != Status::kBasic && cost_[idx(j)] != 0.0) {
      obj += cost_[idx(j)] * nonbasic_value(j);
    }
  }
  return obj;
}

void Simplex::extract_solution(LpResult* out) const {
  out->x.assign(idx(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (status_[idx(j)] != Status::kBasic) out->x[idx(j)] = nonbasic_value(j);
  }
  for (int r = 0; r < m_; ++r) {
    if (basis_[idx(r)] < n_) {
      double v = xb_[idx(r)];
      // Snap to bounds within tolerance so callers see clean values.
      const double lo = lo_[idx(basis_[idx(r)])];
      const double up = up_[idx(basis_[idx(r)])];
      if (v < lo) v = lo;
      if (v > up) v = up;
      out->x[idx(basis_[idx(r)])] = v;
    }
  }
  out->objective = model_.objective_value(out->x);
}

void Simplex::extract_basis(LpBasis* out) const {
  if (out == nullptr) return;
  out->status.clear();
  out->basic.clear();
  for (int r = 0; r < m_; ++r) {
    // An artificial still basic (redundant equality row) has no slot in the
    // exported basis; leave it empty rather than export a partial one.
    if (basis_[idx(r)] >= n_ + m_) return;
  }
  out->status.assign(idx(n_ + m_), LpVarStatus::kAtLower);
  out->basic.assign(idx(m_), -1);
  for (int j = 0; j < n_ + m_; ++j) {
    switch (status_[idx(j)]) {
      case Status::kBasic:
        out->status[idx(j)] = LpVarStatus::kBasic;
        break;
      case Status::kAtLower:
        out->status[idx(j)] = LpVarStatus::kAtLower;
        break;
      case Status::kAtUpper:
        out->status[idx(j)] = LpVarStatus::kAtUpper;
        break;
      case Status::kFreeZero:
        out->status[idx(j)] = LpVarStatus::kFree;
        break;
    }
  }
  for (int r = 0; r < m_; ++r) {
    out->basic[idx(r)] = static_cast<std::int32_t>(basis_[idx(r)]);
  }
}

LpResult Simplex::run(const LpBasis* warm, LpBasis* basis_out) {
  LpResult result;

  // Empty domains (from branch & bound) mean immediate infeasibility.
  for (int j = 0; j < model_.variable_count(); ++j) {
    if (model_.lower_bound(j) > model_.upper_bound(j)) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }

  // Warm path: install the hinted basis; enter phase 2 directly when it is
  // primal feasible, repair with dual simplex when it is dual feasible, and
  // otherwise fall back to an ordinary cold start.
  bool warm_ready = false;
  if (warm != nullptr && !warm->empty()) {
    build();
    if (install_warm(*warm)) {
      install_phase2_costs();
      if (primal_feasible()) {
        warm_ready = true;
      } else if (dual_feasible()) {
        switch (run_dual()) {
          case DualOutcome::kFeasible:
            warm_ready = true;
            break;
          case DualOutcome::kInfeasible:
            result.status = LpStatus::kInfeasible;
            result.iterations = iters_;
            result.warm_start_used = true;
            return result;
          case DualOutcome::kIterationLimit:
            result.status = LpStatus::kIterationLimit;
            result.iterations = iters_;
            result.warm_start_used = true;
            return result;
          case DualOutcome::kStalled:
            break;  // numerically stuck: cold start below
        }
      }
    }
  }

  if (warm_ready) {
    result.warm_start_used = true;
    phase1_ = false;
  } else {
    build();
    install_phase1_costs();
    phase1_ = true;
  }

  // A pivot that moves nothing is degenerate; long degenerate runs switch
  // to Bland's rule, which guarantees termination.
  int degenerate_run = 0;
  const int bland_threshold = 2 * (m_ + cols_) + 64;

  for (;;) {
    if (iters_ >= opt_.max_iterations) {
      result.status = LpStatus::kIterationLimit;
      result.iterations = iters_;
      return result;
    }
    const Pick pick = choose_entering(degenerate_run > bland_threshold);
    if (pick.col < 0) {
      // Phase optimum reached.
      if (phase1_) {
        if (basic_objective() > 1e-6) {
          result.status = LpStatus::kInfeasible;
          result.iterations = iters_;
          return result;
        }
        phase1_ = false;
        install_phase2_costs();
        degenerate_run = 0;
        continue;
      }
      result.status = LpStatus::kOptimal;
      result.iterations = iters_;
      extract_solution(&result);
      extract_basis(basis_out);
      return result;
    }
    bool progressed = false;
    if (!step(pick, &progressed)) {
      // Unbounded can only legitimately happen in phase 2.
      WIMESH_ASSERT_MSG(!phase1_, "phase-1 objective cannot be unbounded");
      result.status = LpStatus::kUnbounded;
      result.iterations = iters_;
      return result;
    }
    ++iters_;
    degenerate_run = progressed ? 0 : degenerate_run + 1;
  }
}

}  // namespace

LpResult solve_lp(const LpModel& model, const LpOptions& options) {
  return solve_lp(model, options, nullptr, nullptr);
}

LpResult solve_lp(const LpModel& model, const LpOptions& options,
                  const LpBasis* warm_start, LpBasis* basis_out) {
  if (basis_out != nullptr) {
    basis_out->status.clear();
    basis_out->basic.clear();
  }
  Simplex simplex(model, options);
  return simplex.run(warm_start, basis_out);
}

}  // namespace wimesh
