#include "wimesh/wifi/channel.h"

#include <algorithm>

#include "wimesh/trace/trace.h"

namespace wimesh {
namespace {

constexpr std::size_t kAckBytes = 14;
constexpr std::size_t kRtsBytes = 20;
constexpr std::size_t kCtsBytes = 14;

// Fading this deep at reception start is worth flagging in the trace:
// -10 dB turns a 20 dB SNR margin into borderline decode territory.
constexpr double kDeepFadeDb = -10.0;

// On-air size per frame type — what the PER curves integrate over.
std::size_t frame_bytes(const WifiFrame& frame) {
  switch (frame.type) {
    case WifiFrame::Type::kAck:
      return kAckBytes;
    case WifiFrame::Type::kRts:
      return kRtsBytes;
    case WifiFrame::Type::kCts:
      return kCtsBytes;
    case WifiFrame::Type::kData:
      break;
  }
  return frame.packet.bytes + kMacOverheadBytes;
}

}  // namespace

WifiChannel::WifiChannel(Simulator& sim, std::vector<Point> positions,
                         RadioModel radio, PhyMode phy, ErrorModel error,
                         Rng rng, bool deliver_overheard)
    : sim_(sim),
      positions_(std::move(positions)),
      radio_(radio),
      phy_(std::move(phy)),
      error_(error),
      rng_(rng),
      deliver_overheard_(deliver_overheard),
      macs_(positions_.size(), nullptr),
      node_up_(positions_.size(), 1) {}

void WifiChannel::set_node_up(NodeId node, bool up) {
  WIMESH_ASSERT(node >= 0 && node < node_count());
  node_up_[static_cast<std::size_t>(node)] = up ? 1 : 0;
}

void WifiChannel::set_radio(const radio::RadioEnvironment* env) {
  radio_env_ = env;
  rate_ctrl_.reset();
  rate_modes_.clear();
  if (env == nullptr) return;
  WIMESH_ASSERT(env->node_count() == node_count());
  rate_modes_.reserve(env->rates().size());
  for (std::size_t i = 0; i < env->rates().size(); ++i) {
    rate_modes_.push_back(env->rates().phy_mode(i));
  }
  if (env->config().rate_adapt.enabled) {
    rate_ctrl_ = std::make_unique<radio::RateController>(
        &env->rates(), env->base_rate_index(), env->config().rate_adapt);
  }
}

void WifiChannel::attach(NodeId node, MacInterface* mac) {
  WIMESH_ASSERT(node >= 0 && node < node_count());
  WIMESH_ASSERT(mac != nullptr);
  WIMESH_ASSERT_MSG(macs_[static_cast<std::size_t>(node)] == nullptr,
                    "node already has a MAC attached");
  macs_[static_cast<std::size_t>(node)] = mac;
}

SimTime WifiChannel::frame_airtime(const WifiFrame& frame) const {
  switch (frame.type) {
    case WifiFrame::Type::kAck:
      return phy_.ack_airtime();
    case WifiFrame::Type::kRts:
      // Control frames go at the base rate; reuse the ACK path by size
      // ratio — RTS is 20 B vs ACK's 14 B, both a handful of OFDM symbols.
      return phy_.ack_airtime() +
             (phy_.airtime(kRtsBytes) - phy_.airtime(kCtsBytes));
    case WifiFrame::Type::kCts:
      return phy_.ack_airtime();
    case WifiFrame::Type::kData:
      break;
  }
  return phy_.airtime(frame.packet.bytes + kMacOverheadBytes);
}

bool WifiChannel::node_transmitting(NodeId n) const {
  return std::any_of(active_.begin(), active_.end(),
                     [n](const ActiveTx& t) { return t.tx == n; });
}

SimTime WifiChannel::transmit(const WifiFrame& frame) {
  const NodeId tx = frame.from;
  WIMESH_ASSERT(tx >= 0 && tx < node_count());
  WIMESH_ASSERT_MSG(!node_transmitting(tx),
                    "node started a second simultaneous transmission");
  // Rate selection: unicast data may ride an adapted rate; everything else
  // (control frames, broadcast) stays at the base rate, exactly like real
  // 802.11. Adapted rates are never below the base rate (the controller's
  // floor), so the airtime can only shrink relative to what TDMA slot
  // sizing and DCF NAV estimates assumed.
  std::size_t rate_idx =
      radio_env_ != nullptr ? radio_env_->base_rate_index() : 0;
  if (rate_ctrl_ != nullptr && frame.type == WifiFrame::Type::kData &&
      frame.to != kInvalidNode) {
    rate_idx = rate_ctrl_->link(tx, frame.to).pick_rate();
  }
  const SimTime duration =
      (radio_env_ != nullptr && frame.type == WifiFrame::Type::kData &&
       rate_idx != radio_env_->base_rate_index())
          ? rate_modes_[rate_idx].airtime(frame.packet.bytes +
                                          kMacOverheadBytes)
          : frame_airtime(frame);
  const SimTime end = sim_.now() + duration;

  ActiveTx record;
  record.key = next_key_++;
  record.tx = tx;
  record.end = end;
  record.rate_idx = rate_idx;
  // A down transmitter's MAC still goes through the motions (it cannot know
  // it is dead), but nothing leaves the antenna: no interference, no
  // receptions, no carrier sense, and the auditor never sees the frame.
  record.radiated = node_up_[static_cast<std::size_t>(tx)] != 0;

  const Point& tx_pos = positions_[static_cast<std::size_t>(tx)];

  if (record.radiated && radio_env_ == nullptr) {
    ++frames_transmitted_;
    trace::event(trace::EventType::kTxStart, sim_.now(), tx, frame.to,
                 static_cast<std::int64_t>(frame.type), duration.ns(),
                 static_cast<std::int64_t>(frame.packet.bytes));
    if (probe_ != nullptr) probe_->on_transmission_start(frame, end);

    // The new transmission corrupts every ongoing reception it is audible
    // at.
    for (ActiveTx& ongoing : active_) {
      for (Reception& r : ongoing.receptions) {
        if (r.corrupted) continue;
        if (r.rx == tx ||
            radio_.interferes(tx_pos,
                              positions_[static_cast<std::size_t>(r.rx)])) {
          r.corrupted = true;
          ++receptions_corrupted_;
          trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx,
                       r.frame.from,
                       static_cast<std::int64_t>(
                           r.rx == tx ? trace::RxDropCause::kHalfDuplex
                                      : trace::RxDropCause::kCollision));
        }
      }
    }

    // Receptions begin at every intended receiver in decode range. A
    // reception starts corrupted if another transmission is already audible
    // there or the receiver is itself mid-transmission.
    const auto begin_reception = [&](NodeId rx) {
      if (rx == tx) return;
      if (node_up_[static_cast<std::size_t>(rx)] == 0) return;
      const Point& rx_pos = positions_[static_cast<std::size_t>(rx)];
      if (!radio_.can_communicate(tx_pos, rx_pos)) return;
      if (macs_[static_cast<std::size_t>(rx)] == nullptr) return;
      Reception r;
      r.frame = frame;
      r.rx = rx;
      auto cause = trace::RxDropCause::kCollision;
      for (const ActiveTx& ongoing : active_) {
        if (!ongoing.radiated) continue;
        if (ongoing.tx == rx ||
            radio_.interferes(
                positions_[static_cast<std::size_t>(ongoing.tx)], rx_pos)) {
          if (!r.corrupted && ongoing.tx == rx) {
            cause = trace::RxDropCause::kHalfDuplex;
          }
          r.corrupted = true;
        }
      }
      if (r.corrupted) {
        ++receptions_corrupted_;
        trace::event(trace::EventType::kRxCorrupted, sim_.now(), rx, tx,
                     static_cast<std::int64_t>(cause));
      }
      record.receptions.push_back(std::move(r));
    };

    if (frame.to == kInvalidNode || deliver_overheard_) {
      for (NodeId rx = 0; rx < node_count(); ++rx) begin_reception(rx);
    } else {
      begin_reception(frame.to);
    }

    // Carrier sense: every other node in interference range sees busy.
    for (NodeId n = 0; n < node_count(); ++n) {
      if (n == tx || macs_[static_cast<std::size_t>(n)] == nullptr) continue;
      if (radio_.interferes(tx_pos,
                            positions_[static_cast<std::size_t>(n)])) {
        macs_[static_cast<std::size_t>(n)]->on_medium_busy();
      }
    }
  } else if (record.radiated) {
    // ---- Physical (SINR) model.
    const SimTime now = sim_.now();
    ++frames_transmitted_;
    trace::event(trace::EventType::kTxStart, now, tx, frame.to,
                 static_cast<std::int64_t>(frame.type), duration.ns(),
                 static_cast<std::int64_t>(frame.packet.bytes));
    if (probe_ != nullptr) probe_->on_transmission_start(frame, end);

    // This transmission raises the interference floor of every ongoing
    // reception; whether that kills the decode is settled by SINR at
    // decode time. Half-duplex stays immediately fatal.
    for (ActiveTx& ongoing : active_) {
      for (Reception& r : ongoing.receptions) {
        if (r.corrupted) continue;
        if (r.rx == tx) {
          r.corrupted = true;
          ++receptions_corrupted_;
          trace::event(
              trace::EventType::kRxCorrupted, now, r.rx, r.frame.from,
              static_cast<std::int64_t>(trace::RxDropCause::kHalfDuplex));
          continue;
        }
        r.interference_mw +=
            radio::dbm_to_mw(radio_env_->rx_power_dbm(tx, r.rx, now));
        ++r.interferers;
      }
    }

    // The addressee always attempts the decode (its PER verdict needs the
    // full power budget); other nodes only bother when the signal crosses
    // their detection (carrier-sense) threshold.
    const auto begin_reception = [&](NodeId rx) {
      if (rx == tx) return;
      if (node_up_[static_cast<std::size_t>(rx)] == 0) return;
      if (macs_[static_cast<std::size_t>(rx)] == nullptr) return;
      const double signal_dbm = radio_env_->rx_power_dbm(tx, rx, now);
      if (frame.to != rx && signal_dbm < radio_env_->cs_threshold_dbm()) {
        return;
      }
      Reception r;
      r.frame = frame;
      r.rx = rx;
      r.signal_dbm = signal_dbm;
      for (const ActiveTx& ongoing : active_) {
        if (!ongoing.radiated) continue;
        if (ongoing.tx == rx) {
          if (!r.corrupted) {
            r.corrupted = true;
            ++receptions_corrupted_;
            trace::event(
                trace::EventType::kRxCorrupted, now, rx, tx,
                static_cast<std::int64_t>(trace::RxDropCause::kHalfDuplex));
          }
          continue;
        }
        r.interference_mw += radio::dbm_to_mw(
            radio_env_->rx_power_dbm(ongoing.tx, rx, now));
        ++r.interferers;
      }
      if (frame.to == rx) {
        const double fade = radio_env_->fading_gain_db(tx, rx, now);
        if (fade <= kDeepFadeDb) {
          trace::event(trace::EventType::kRadioFadeDeep, now, rx, tx,
                       static_cast<std::int64_t>(fade * 100.0));
        }
      }
      record.receptions.push_back(std::move(r));
    };

    if (frame.to == kInvalidNode || deliver_overheard_) {
      for (NodeId rx = 0; rx < node_count(); ++rx) begin_reception(rx);
    } else {
      begin_reception(frame.to);
    }

    // Carrier sense by received power: fading and obstacles decide who
    // defers. The busy set is remembered so the idle edges at tx end match
    // it exactly (fading will have moved by then).
    for (NodeId n = 0; n < node_count(); ++n) {
      if (n == tx || macs_[static_cast<std::size_t>(n)] == nullptr) continue;
      if (radio_env_->rx_power_dbm(tx, n, now) >=
          radio_env_->cs_threshold_dbm()) {
        record.cs_nodes.push_back(n);
        macs_[static_cast<std::size_t>(n)]->on_medium_busy();
      }
    }
  }

  const std::uint64_t key = record.key;
  active_.push_back(std::move(record));
  sim_.schedule_at(end, [this, key] { finish_transmission(key); });
  return duration;
}

void WifiChannel::finish_transmission(std::uint64_t key) {
  const auto it =
      std::find_if(active_.begin(), active_.end(),
                   [key](const ActiveTx& t) { return t.key == key; });
  WIMESH_ASSERT(it != active_.end());
  ActiveTx done = std::move(*it);
  active_.erase(it);

  const Point& tx_pos = positions_[static_cast<std::size_t>(done.tx)];

  // Carrier sense falls first so MACs see a consistent idle medium when the
  // decode callbacks run. Idle edges mirror the busy edges raised at
  // transmit start, so they key off `radiated` (and, in the physical
  // model, the remembered busy set), not current liveness or fading.
  if (done.radiated && radio_env_ == nullptr) {
    for (NodeId n = 0; n < node_count(); ++n) {
      if (n == done.tx || macs_[static_cast<std::size_t>(n)] == nullptr) {
        continue;
      }
      if (radio_.interferes(tx_pos,
                            positions_[static_cast<std::size_t>(n)])) {
        macs_[static_cast<std::size_t>(n)]->on_medium_idle();
      }
    }
  } else if (done.radiated) {
    for (NodeId n : done.cs_nodes) {
      macs_[static_cast<std::size_t>(n)]->on_medium_idle();
    }
  }

  // Decode arbitration for one reception. Stage order: in-flight
  // corruption, receiver liveness, injected impairments, then (physical
  // model) SINR capture + the per-rate PER coin, then the legacy Bernoulli
  // error process.
  const auto decodes = [&](const Reception& r) -> bool {
    if (r.corrupted) return false;
    // A receiver that crashed mid-reception decodes nothing.
    if (node_up_[static_cast<std::size_t>(r.rx)] == 0) return false;
    if (impairment_ != nullptr &&
        impairment_->corrupts(done.tx, r.rx, sim_.now())) {
      ++receptions_corrupted_;
      trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx, done.tx,
                   static_cast<std::int64_t>(trace::RxDropCause::kImpairment));
      return false;
    }
    if (radio_env_ != nullptr) {
      const double sinr =
          radio_env_->sinr_db(r.signal_dbm, r.interference_mw);
      if (r.interference_mw > 0.0 &&
          sinr < radio_env_->capture_threshold_db()) {
        ++receptions_corrupted_;
        trace::event(
            trace::EventType::kRxCorrupted, sim_.now(), r.rx, done.tx,
            static_cast<std::int64_t>(trace::RxDropCause::kCollision));
        return false;
      }
      const double per = radio_env_->rates().per(done.rate_idx, sinr,
                                                 frame_bytes(r.frame));
      if (per > 0.0 && rng_.chance(per)) {
        ++receptions_corrupted_;
        trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx,
                     done.tx,
                     static_cast<std::int64_t>(trace::RxDropCause::kSinr));
        return false;
      }
      if (r.interference_mw > 0.0) {
        // Survived concurrent interference: the capture effect the binary
        // protocol model cannot express.
        trace::event(trace::EventType::kRadioCapture, sim_.now(), r.rx,
                     done.tx, static_cast<std::int64_t>(sinr * 100.0),
                     r.interferers);
      }
    }
    if (error_.packet_error_rate > 0.0 &&
        rng_.chance(error_.packet_error_rate)) {
      ++receptions_corrupted_;
      trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx, done.tx,
                   static_cast<std::int64_t>(trace::RxDropCause::kPer));
      return false;
    }
    return true;
  };

  for (const Reception& r : done.receptions) {
    const bool ok = decodes(r);
    if (ok) {
      // Overheard copies inform NAV but do not count as deliveries.
      if (r.frame.to == kInvalidNode || r.frame.to == r.rx) {
        ++frames_delivered_;
      }
      macs_[static_cast<std::size_t>(r.rx)]->on_frame_received(r.frame);
    }
    // Rate adaptation learns from the addressee's fate — a proxy for the
    // ACK feedback a real transmitter gets.
    if (rate_ctrl_ != nullptr && r.frame.type == WifiFrame::Type::kData &&
        r.frame.to == r.rx) {
      radio::MinstrelLink& link = rate_ctrl_->link(done.tx, r.rx);
      if (link.on_result(done.rate_idx, ok)) {
        const std::size_t best = link.best_rate();
        trace::event(
            trace::EventType::kRadioRateSwitch, sim_.now(), done.tx, r.rx,
            static_cast<std::int64_t>(best),
            radio_env_->rates().entry(best).rate_mbps);
      }
    }
  }
}

}  // namespace wimesh
