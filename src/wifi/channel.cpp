#include "wimesh/wifi/channel.h"

#include <algorithm>

#include "wimesh/trace/trace.h"

namespace wimesh {
namespace {

constexpr std::size_t kAckBytes = 14;
constexpr std::size_t kRtsBytes = 20;
constexpr std::size_t kCtsBytes = 14;

}  // namespace

WifiChannel::WifiChannel(Simulator& sim, std::vector<Point> positions,
                         RadioModel radio, PhyMode phy, ErrorModel error,
                         Rng rng, bool deliver_overheard)
    : sim_(sim),
      positions_(std::move(positions)),
      radio_(radio),
      phy_(std::move(phy)),
      error_(error),
      rng_(rng),
      deliver_overheard_(deliver_overheard),
      macs_(positions_.size(), nullptr),
      node_up_(positions_.size(), 1) {}

void WifiChannel::set_node_up(NodeId node, bool up) {
  WIMESH_ASSERT(node >= 0 && node < node_count());
  node_up_[static_cast<std::size_t>(node)] = up ? 1 : 0;
}

void WifiChannel::attach(NodeId node, MacInterface* mac) {
  WIMESH_ASSERT(node >= 0 && node < node_count());
  WIMESH_ASSERT(mac != nullptr);
  WIMESH_ASSERT_MSG(macs_[static_cast<std::size_t>(node)] == nullptr,
                    "node already has a MAC attached");
  macs_[static_cast<std::size_t>(node)] = mac;
}

SimTime WifiChannel::frame_airtime(const WifiFrame& frame) const {
  switch (frame.type) {
    case WifiFrame::Type::kAck:
      return phy_.ack_airtime();
    case WifiFrame::Type::kRts:
      // Control frames go at the base rate; reuse the ACK path by size
      // ratio — RTS is 20 B vs ACK's 14 B, both a handful of OFDM symbols.
      return phy_.ack_airtime() +
             (phy_.airtime(kRtsBytes) - phy_.airtime(kCtsBytes));
    case WifiFrame::Type::kCts:
      return phy_.ack_airtime();
    case WifiFrame::Type::kData:
      break;
  }
  return phy_.airtime(frame.packet.bytes + kMacOverheadBytes);
}

bool WifiChannel::node_transmitting(NodeId n) const {
  return std::any_of(active_.begin(), active_.end(),
                     [n](const ActiveTx& t) { return t.tx == n; });
}

SimTime WifiChannel::transmit(const WifiFrame& frame) {
  const NodeId tx = frame.from;
  WIMESH_ASSERT(tx >= 0 && tx < node_count());
  WIMESH_ASSERT_MSG(!node_transmitting(tx),
                    "node started a second simultaneous transmission");
  const SimTime duration = frame_airtime(frame);
  const SimTime end = sim_.now() + duration;

  ActiveTx record;
  record.key = next_key_++;
  record.tx = tx;
  record.end = end;
  // A down transmitter's MAC still goes through the motions (it cannot know
  // it is dead), but nothing leaves the antenna: no interference, no
  // receptions, no carrier sense, and the auditor never sees the frame.
  record.radiated = node_up_[static_cast<std::size_t>(tx)] != 0;

  const Point& tx_pos = positions_[static_cast<std::size_t>(tx)];

  if (record.radiated) {
    ++frames_transmitted_;
    trace::event(trace::EventType::kTxStart, sim_.now(), tx, frame.to,
                 static_cast<std::int64_t>(frame.type), duration.ns(),
                 static_cast<std::int64_t>(frame.packet.bytes));
    if (probe_ != nullptr) probe_->on_transmission_start(frame, end);

    // The new transmission corrupts every ongoing reception it is audible
    // at.
    for (ActiveTx& ongoing : active_) {
      for (Reception& r : ongoing.receptions) {
        if (r.corrupted) continue;
        if (r.rx == tx ||
            radio_.interferes(tx_pos,
                              positions_[static_cast<std::size_t>(r.rx)])) {
          r.corrupted = true;
          ++receptions_corrupted_;
          trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx,
                       r.frame.from,
                       static_cast<std::int64_t>(
                           r.rx == tx ? trace::RxDropCause::kHalfDuplex
                                      : trace::RxDropCause::kCollision));
        }
      }
    }

    // Receptions begin at every intended receiver in decode range. A
    // reception starts corrupted if another transmission is already audible
    // there or the receiver is itself mid-transmission.
    const auto begin_reception = [&](NodeId rx) {
      if (rx == tx) return;
      if (node_up_[static_cast<std::size_t>(rx)] == 0) return;
      const Point& rx_pos = positions_[static_cast<std::size_t>(rx)];
      if (!radio_.can_communicate(tx_pos, rx_pos)) return;
      if (macs_[static_cast<std::size_t>(rx)] == nullptr) return;
      Reception r;
      r.frame = frame;
      r.rx = rx;
      auto cause = trace::RxDropCause::kCollision;
      for (const ActiveTx& ongoing : active_) {
        if (!ongoing.radiated) continue;
        if (ongoing.tx == rx ||
            radio_.interferes(
                positions_[static_cast<std::size_t>(ongoing.tx)], rx_pos)) {
          if (!r.corrupted && ongoing.tx == rx) {
            cause = trace::RxDropCause::kHalfDuplex;
          }
          r.corrupted = true;
        }
      }
      if (r.corrupted) {
        ++receptions_corrupted_;
        trace::event(trace::EventType::kRxCorrupted, sim_.now(), rx, tx,
                     static_cast<std::int64_t>(cause));
      }
      record.receptions.push_back(std::move(r));
    };

    if (frame.to == kInvalidNode || deliver_overheard_) {
      for (NodeId rx = 0; rx < node_count(); ++rx) begin_reception(rx);
    } else {
      begin_reception(frame.to);
    }

    // Carrier sense: every other node in interference range sees busy.
    for (NodeId n = 0; n < node_count(); ++n) {
      if (n == tx || macs_[static_cast<std::size_t>(n)] == nullptr) continue;
      if (radio_.interferes(tx_pos,
                            positions_[static_cast<std::size_t>(n)])) {
        macs_[static_cast<std::size_t>(n)]->on_medium_busy();
      }
    }
  }

  const std::uint64_t key = record.key;
  active_.push_back(std::move(record));
  sim_.schedule_at(end, [this, key] { finish_transmission(key); });
  return duration;
}

void WifiChannel::finish_transmission(std::uint64_t key) {
  const auto it =
      std::find_if(active_.begin(), active_.end(),
                   [key](const ActiveTx& t) { return t.key == key; });
  WIMESH_ASSERT(it != active_.end());
  ActiveTx done = std::move(*it);
  active_.erase(it);

  const Point& tx_pos = positions_[static_cast<std::size_t>(done.tx)];

  // Carrier sense falls first so MACs see a consistent idle medium when the
  // decode callbacks run. Idle edges mirror the busy edges raised at
  // transmit start, so they key off `radiated`, not current liveness.
  if (done.radiated) {
    for (NodeId n = 0; n < node_count(); ++n) {
      if (n == done.tx || macs_[static_cast<std::size_t>(n)] == nullptr) {
        continue;
      }
      if (radio_.interferes(tx_pos,
                            positions_[static_cast<std::size_t>(n)])) {
        macs_[static_cast<std::size_t>(n)]->on_medium_idle();
      }
    }
  }

  for (const Reception& r : done.receptions) {
    if (r.corrupted) continue;
    // A receiver that crashed mid-reception decodes nothing.
    if (node_up_[static_cast<std::size_t>(r.rx)] == 0) continue;
    if (impairment_ != nullptr &&
        impairment_->corrupts(done.tx, r.rx, sim_.now())) {
      ++receptions_corrupted_;
      trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx, done.tx,
                   static_cast<std::int64_t>(trace::RxDropCause::kImpairment));
      continue;
    }
    if (error_.packet_error_rate > 0.0 &&
        rng_.chance(error_.packet_error_rate)) {
      ++receptions_corrupted_;
      trace::event(trace::EventType::kRxCorrupted, sim_.now(), r.rx, done.tx,
                   static_cast<std::int64_t>(trace::RxDropCause::kPer));
      continue;
    }
    // Overheard copies inform NAV but do not count as deliveries.
    if (r.frame.to == kInvalidNode || r.frame.to == r.rx) {
      ++frames_delivered_;
    }
    macs_[static_cast<std::size_t>(r.rx)]->on_frame_received(r.frame);
  }
}

}  // namespace wimesh
