#include "wimesh/wifi/edca_mac.h"

#include <algorithm>

namespace wimesh {

EdcaMac::EdcaMac(Simulator& sim, WifiChannel& channel, NodeId self, Rng rng,
                 Callbacks callbacks, Config config)
    : sim_(sim),
      channel_(channel),
      self_(self),
      rng_(rng),
      cb_(std::move(callbacks)),
      config_(config) {
  // 802.11e default EDCA parameter set (OFDM PHY, aCWmin = 15).
  entity(AccessCategory::kVoice).params = AcParams{2, 3, 7};
  entity(AccessCategory::kBestEffort).params = AcParams{3, 15, 1023};
  for (auto& e : entities_) e.cw = e.params.cw_min;
  channel_.attach(self, this);
}

AccessCategory EdcaMac::category_of(const Entity& e) const {
  return &e == &entities_[0] ? AccessCategory::kVoice
                             : AccessCategory::kBestEffort;
}

SimTime EdcaMac::aifs(const Entity& e) const {
  const PhyMode& phy = channel_.phy();
  return phy.sifs() + phy.slot_time() * e.params.aifsn;
}

int EdcaMac::draw_backoff(Entity& e) {
  return static_cast<int>(
      rng_.next_below(static_cast<std::uint64_t>(e.cw) + 1));
}

void EdcaMac::send(MacPacket packet, AccessCategory ac) {
  packet.from = self_;
  Entity& e = entity(ac);
  if (e.queue.size() >= config_.max_queue_per_ac) {
    ++e.drops;
    if (cb_.on_dropped) {
      cb_.on_dropped(packet, ac, MacDropCause::kQueueOverflow);
    }
    return;
  }
  e.queue.push_back(packet);
  if (e.state == State::kIdle && !e.current.has_value()) start_service(e);
}

void EdcaMac::start_service(Entity& e) {
  WIMESH_ASSERT(!e.current.has_value());
  WIMESH_ASSERT(!e.queue.empty());
  e.current = e.queue.front();
  e.queue.pop_front();
  e.attempt = 0;
  e.cw = e.params.cw_min;
  // EDCA always backs off (no DIFS-then-transmit shortcut for QoS STAs in
  // this model); voice's tiny CW makes that cheap.
  e.backoff_slots = draw_backoff(e);
  begin_access(e);
}

void EdcaMac::begin_access(Entity& e) {
  WIMESH_ASSERT(e.current.has_value());
  if (medium_busy()) {
    e.state = State::kWaitIdle;
    return;
  }
  e.state = State::kWaitAifs;
  e.timer = sim_.schedule_in(aifs(e), [this, &e] { on_aifs_elapsed(e); });
}

void EdcaMac::cancel_timer(Entity& e) {
  sim_.cancel(e.timer);
  e.timer = EventHandle{};
}

void EdcaMac::medium_became_busy() {
  for (auto& e : entities_) {
    if (e.state == State::kWaitAifs || e.state == State::kBackoff) {
      cancel_timer(e);
      e.state = State::kWaitIdle;
    }
  }
}

void EdcaMac::medium_became_idle() {
  for (auto& e : entities_) {
    if (e.state == State::kWaitIdle) begin_access(e);
  }
}

void EdcaMac::on_medium_busy() {
  ++busy_count_;
  if (busy_count_ == 1 && !transmitting_) medium_became_busy();
}

void EdcaMac::on_medium_idle() {
  WIMESH_ASSERT(busy_count_ > 0);
  --busy_count_;
  if (!medium_busy()) medium_became_idle();
}

void EdcaMac::on_aifs_elapsed(Entity& e) {
  e.timer = EventHandle{};
  WIMESH_ASSERT(e.state == State::kWaitAifs);
  if (e.backoff_slots == 0) {
    try_transmit(e);
    return;
  }
  e.state = State::kBackoff;
  e.timer = sim_.schedule_in(channel_.phy().slot_time(),
                             [this, &e] { on_backoff_slot(e); });
}

void EdcaMac::on_backoff_slot(Entity& e) {
  e.timer = EventHandle{};
  WIMESH_ASSERT(e.state == State::kBackoff);
  WIMESH_ASSERT(e.backoff_slots > 0);
  --e.backoff_slots;
  if (e.backoff_slots == 0) {
    try_transmit(e);
    return;
  }
  e.timer = sim_.schedule_in(channel_.phy().slot_time(),
                             [this, &e] { on_backoff_slot(e); });
}

void EdcaMac::try_transmit(Entity& e) {
  if (transmitting_) {
    // Another category of this station won the slot: internal collision.
    // The loser behaves as if it collided on air — CW doubles, redraw —
    // without consuming a retry.
    ++internal_collisions_;
    e.cw = std::min(2 * e.cw + 1, e.params.cw_max);
    e.backoff_slots = draw_backoff(e);
    e.state = State::kWaitIdle;
    return;
  }
  e.state = State::kTxData;
  transmitting_ = true;
  ++e.tx_attempts;
  // Our own transmission silences the other category's timers.
  for (auto& other : entities_) {
    if (&other == &e) continue;
    if (other.state == State::kWaitAifs || other.state == State::kBackoff) {
      cancel_timer(other);
      other.state = State::kWaitIdle;
    }
  }
  WifiFrame frame;
  frame.type = WifiFrame::Type::kData;
  frame.packet = *e.current;
  frame.from = self_;
  frame.to = e.current->to;
  const SimTime duration = channel_.transmit(frame);
  sim_.schedule_in(duration, [this, &e] { on_data_tx_end(e); });
}

void EdcaMac::on_data_tx_end(Entity& e) {
  transmitting_ = false;
  WIMESH_ASSERT(e.state == State::kTxData);
  if (e.current->to == kInvalidNode) {
    const MacPacket done = *e.current;
    const AccessCategory ac = category_of(e);
    finish_packet(e);
    if (cb_.on_sent) cb_.on_sent(done, ac);
    if (!medium_busy()) medium_became_idle();
    return;
  }
  e.state = State::kWaitAck;
  const PhyMode& phy = channel_.phy();
  const SimTime timeout = phy.sifs() + phy.ack_airtime() + phy.slot_time() * 2;
  e.timer = sim_.schedule_in(timeout, [this, &e] { on_ack_timeout(e); });
  if (!medium_busy()) medium_became_idle();
}

void EdcaMac::on_ack_timeout(Entity& e) {
  e.timer = EventHandle{};
  WIMESH_ASSERT(e.state == State::kWaitAck);
  handle_failure(e, /*count_retry=*/true);
}

void EdcaMac::handle_failure(Entity& e, bool count_retry) {
  if (count_retry) ++e.attempt;
  if (e.attempt > config_.retry_limit) {
    ++e.drops;
    const MacPacket dropped = *e.current;
    const AccessCategory ac = category_of(e);
    finish_packet(e);
    if (cb_.on_dropped) cb_.on_dropped(dropped, ac, MacDropCause::kRetryLimit);
    return;
  }
  e.cw = std::min(2 * e.cw + 1, e.params.cw_max);
  e.backoff_slots = draw_backoff(e);
  begin_access(e);
}

void EdcaMac::send_ack(const WifiFrame& data) {
  sim_.schedule_in(channel_.phy().sifs(), [this, data] {
    if (transmitting_) return;
    for (auto& e : entities_) {
      if (e.state == State::kWaitAifs || e.state == State::kBackoff) {
        cancel_timer(e);
        e.state = State::kWaitIdle;
      }
    }
    WifiFrame ack;
    ack.type = WifiFrame::Type::kAck;
    ack.packet.id = data.packet.id;
    ack.from = self_;
    ack.to = data.from;
    transmitting_ = true;
    const SimTime duration = channel_.transmit(ack);
    sim_.schedule_in(duration, [this] {
      transmitting_ = false;
      if (!medium_busy()) medium_became_idle();
    });
  });
}

void EdcaMac::on_frame_received(const WifiFrame& frame) {
  if (frame.type == WifiFrame::Type::kData) {
    if (frame.to == self_) {
      send_ack(frame);
      const auto [it, fresh] =
          last_seen_from_.try_emplace(frame.from, frame.packet.id);
      if (!fresh) {
        if (it->second == frame.packet.id) return;
        it->second = frame.packet.id;
      }
      if (cb_.on_delivered) cb_.on_delivered(frame.packet);
    } else if (frame.to == kInvalidNode) {
      if (cb_.on_delivered) cb_.on_delivered(frame.packet);
    }
    return;
  }
  for (auto& e : entities_) {
    if (frame.to == self_ && e.state == State::kWaitAck &&
        e.current.has_value() && frame.packet.id == e.current->id) {
      cancel_timer(e);
      const MacPacket done = *e.current;
      const AccessCategory ac = category_of(e);
      finish_packet(e);
      if (cb_.on_sent) cb_.on_sent(done, ac);
      return;
    }
  }
}

void EdcaMac::finish_packet(Entity& e) {
  e.current.reset();
  e.state = State::kIdle;
  if (e.queue.empty()) return;
  e.current = e.queue.front();
  e.queue.pop_front();
  e.attempt = 0;
  e.cw = e.params.cw_min;
  e.backoff_slots = draw_backoff(e);
  begin_access(e);
}

}  // namespace wimesh
