#include "wimesh/wifi/dcf_mac.h"

#include <algorithm>

namespace wimesh {

DcfMac::DcfMac(Simulator& sim, WifiChannel& channel, NodeId self, Rng rng,
               Callbacks callbacks, Config config)
    : sim_(sim),
      channel_(channel),
      self_(self),
      rng_(rng),
      cb_(std::move(callbacks)),
      config_(config),
      cw_(channel.phy().cw_min()) {
  channel_.attach(self, this);
}

void DcfMac::send(MacPacket packet) {
  packet.from = self_;
  if (queue_.size() >= config_.max_queue) {
    ++drops_;
    if (cb_.on_dropped) cb_.on_dropped(packet, MacDropCause::kQueueOverflow);
    return;
  }
  queue_.push_back(packet);
  if (state_ == State::kIdle && !current_.has_value()) start_service();
}

SimTime DcfMac::max_service_time(std::size_t payload_bytes) const {
  const PhyMode& phy = channel_.phy();
  const int worst_backoff = config_.zero_backoff ? 0 : phy.cw_min();
  return phy.difs() + phy.slot_time() * worst_backoff +
         phy.airtime(payload_bytes + kMacOverheadBytes) + phy.sifs() +
         phy.ack_airtime();
}

SimTime DcfMac::overlay_service_time(const PhyMode& phy,
                                     std::size_t payload_bytes) {
  return phy.difs() + phy.airtime(payload_bytes + kMacOverheadBytes) +
         phy.sifs() + phy.ack_airtime();
}

SimTime DcfMac::mean_service_time(std::size_t payload_bytes) const {
  const PhyMode& phy = channel_.phy();
  return phy.difs() + phy.slot_time() * (phy.cw_min() / 2) +
         phy.airtime(payload_bytes + kMacOverheadBytes) + phy.sifs() +
         phy.ack_airtime();
}

int DcfMac::draw_backoff() {
  if (config_.zero_backoff) return 0;
  return static_cast<int>(
      rng_.next_below(static_cast<std::uint64_t>(cw_) + 1));
}

void DcfMac::start_service() {
  WIMESH_ASSERT(!current_.has_value());
  WIMESH_ASSERT(!queue_.empty());
  current_ = queue_.front();
  queue_.pop_front();
  attempt_ = 0;
  cw_ = channel_.phy().cw_min();
  // Arriving to an idle medium earns DIFS-only access; otherwise a fresh
  // backoff is drawn and counted down once the medium frees up.
  backoff_slots_ = medium_busy() ? draw_backoff() : 0;
  begin_access();
}

void DcfMac::begin_access() {
  WIMESH_ASSERT(current_.has_value());
  if (medium_busy()) {
    state_ = State::kWaitIdle;
    return;
  }
  state_ = State::kWaitDifs;
  timer_ = sim_.schedule_in(channel_.phy().difs(), [this] { on_difs_elapsed(); });
}

void DcfMac::cancel_timer() {
  sim_.cancel(timer_);
  timer_ = EventHandle{};
}

void DcfMac::medium_became_busy() {
  if (state_ == State::kWaitDifs || state_ == State::kBackoff) {
    cancel_timer();
    state_ = State::kWaitIdle;  // backoff_slots_ frozen
  }
}

void DcfMac::medium_became_idle() {
  if (state_ == State::kWaitIdle) begin_access();
}

void DcfMac::on_medium_busy() {
  ++busy_count_;
  if (busy_count_ == 1 && !transmitting_) medium_became_busy();
}

void DcfMac::on_medium_idle() {
  WIMESH_ASSERT(busy_count_ > 0);
  --busy_count_;
  if (!medium_busy()) medium_became_idle();
}

void DcfMac::on_difs_elapsed() {
  timer_ = EventHandle{};
  WIMESH_ASSERT(state_ == State::kWaitDifs);
  if (backoff_slots_ == 0) {
    begin_exchange();
    return;
  }
  state_ = State::kBackoff;
  timer_ = sim_.schedule_in(channel_.phy().slot_time(),
                            [this] { on_backoff_slot(); });
}

void DcfMac::on_backoff_slot() {
  timer_ = EventHandle{};
  WIMESH_ASSERT(state_ == State::kBackoff);
  WIMESH_ASSERT(backoff_slots_ > 0);
  --backoff_slots_;
  if (backoff_slots_ == 0) {
    begin_exchange();
    return;
  }
  timer_ = sim_.schedule_in(channel_.phy().slot_time(),
                            [this] { on_backoff_slot(); });
}

bool DcfMac::use_rts_for_current() const {
  return config_.rts_cts && current_.has_value() &&
         current_->to != kInvalidNode &&
         current_->bytes >= config_.rts_threshold;
}

void DcfMac::begin_exchange() {
  if (use_rts_for_current()) {
    transmit_rts();
  } else {
    transmit_data();
  }
}

void DcfMac::transmit_rts() {
  WIMESH_ASSERT(current_.has_value());
  WIMESH_ASSERT(!transmitting_);
  state_ = State::kTxRts;
  transmitting_ = true;
  ++tx_attempts_;
  const PhyMode& phy = channel_.phy();
  WifiFrame rts;
  rts.type = WifiFrame::Type::kRts;
  rts.packet.id = current_->id;
  rts.from = self_;
  rts.to = current_->to;
  // Reserve the whole exchange: SIFS+CTS + SIFS+DATA + SIFS+ACK.
  rts.nav = phy.sifs() * 3 + phy.ack_airtime() +
            phy.airtime(current_->bytes + kMacOverheadBytes) +
            phy.ack_airtime();
  const SimTime duration = channel_.transmit(rts);
  sim_.schedule_in(duration, [this] { on_rts_tx_end(); });
}

void DcfMac::on_rts_tx_end() {
  transmitting_ = false;
  WIMESH_ASSERT(state_ == State::kTxRts);
  state_ = State::kWaitCts;
  const PhyMode& phy = channel_.phy();
  const SimTime timeout =
      phy.sifs() + phy.ack_airtime() + phy.slot_time() * 2;
  timer_ = sim_.schedule_in(timeout, [this] { on_cts_timeout(); });
}

void DcfMac::on_cts_timeout() {
  timer_ = EventHandle{};
  WIMESH_ASSERT(state_ == State::kWaitCts);
  retry_after_failure();
}

void DcfMac::retry_after_failure() {
  ++attempt_;
  if (attempt_ > config_.retry_limit) {
    ++drops_;
    const MacPacket dropped = *current_;
    finish_packet(/*post_backoff=*/true);
    if (cb_.on_dropped) cb_.on_dropped(dropped, MacDropCause::kRetryLimit);
    return;
  }
  if (past_deadline(current_->bytes)) {
    // Another attempt cannot complete inside the granted block; hand the
    // packet (and anything behind it) back rather than spill into slots
    // the schedule promised to someone else.
    requeue_past_deadline();
    return;
  }
  ++retransmissions_;
  cw_ = std::min(2 * cw_ + 1, channel_.phy().cw_max());
  backoff_slots_ = draw_backoff();
  begin_access();
}

bool DcfMac::past_deadline(std::size_t payload_bytes) const {
  return release_deadline_.has_value() &&
         sim_.now() + max_service_time(payload_bytes) > *release_deadline_;
}

void DcfMac::requeue_past_deadline() {
  // Newest-first, so a consumer that pushes each returned packet onto the
  // front of its queue restores the original FIFO order.
  std::vector<MacPacket> returned;
  returned.reserve(queue_.size() + 1);
  while (!queue_.empty()) {
    returned.push_back(queue_.back());
    queue_.pop_back();
  }
  if (current_.has_value()) {
    returned.push_back(*current_);
    current_.reset();
  }
  state_ = State::kIdle;
  deadline_requeues_ += returned.size();
  if (on_deadline_) on_deadline_(returned);
}

void DcfMac::set_nav(SimTime until) {
  if (until <= nav_until_) return;
  nav_until_ = until;
  if (state_ == State::kWaitDifs || state_ == State::kBackoff) {
    medium_became_busy();
  }
  sim_.schedule_at(until, [this] {
    if (!medium_busy()) medium_became_idle();
  });
}

void DcfMac::send_cts(const WifiFrame& rts) {
  const SimTime remaining_nav =
      rts.nav - channel_.phy().sifs() - channel_.phy().ack_airtime();
  sim_.schedule_in(channel_.phy().sifs(), [this, rts, remaining_nav] {
    if (transmitting_) return;
    if (state_ == State::kWaitDifs || state_ == State::kBackoff) {
      cancel_timer();
      state_ = State::kWaitIdle;
    }
    WifiFrame cts;
    cts.type = WifiFrame::Type::kCts;
    cts.packet.id = rts.packet.id;
    cts.from = self_;
    cts.to = rts.from;
    cts.nav = remaining_nav;
    transmitting_ = true;
    const SimTime duration = channel_.transmit(cts);
    sim_.schedule_in(duration, [this] {
      transmitting_ = false;
      if (!medium_busy()) medium_became_idle();
    });
  });
}

void DcfMac::transmit_data() {
  WIMESH_ASSERT(current_.has_value());
  WIMESH_ASSERT(!transmitting_);
  state_ = State::kTxData;
  transmitting_ = true;
  ++tx_attempts_;
  WifiFrame frame;
  frame.type = WifiFrame::Type::kData;
  frame.packet = *current_;
  frame.from = self_;
  frame.to = current_->to;
  if (current_->to != kInvalidNode) {
    // Protect the ACK from third parties that missed the RTS/CTS.
    frame.nav = channel_.phy().sifs() + channel_.phy().ack_airtime();
  }
  const SimTime duration = channel_.transmit(frame);
  sim_.schedule_in(duration, [this] { on_data_tx_end(); });
}

void DcfMac::on_data_tx_end() {
  transmitting_ = false;
  WIMESH_ASSERT(state_ == State::kTxData);
  if (current_->to == kInvalidNode) {
    // Broadcast: fire-and-forget.
    const MacPacket done = *current_;
    finish_packet(/*post_backoff=*/true);
    if (cb_.on_sent) cb_.on_sent(done);
    return;
  }
  state_ = State::kWaitAck;
  const PhyMode& phy = channel_.phy();
  const SimTime timeout =
      phy.sifs() + phy.ack_airtime() + phy.slot_time() * 2;
  timer_ = sim_.schedule_in(timeout, [this] { on_ack_timeout(); });
  // The medium may have stayed idle around us; if other packets wait they
  // resume via finish_packet after the ACK (or its timeout).
}

void DcfMac::on_ack_timeout() {
  timer_ = EventHandle{};
  WIMESH_ASSERT(state_ == State::kWaitAck);
  retry_after_failure();
}

void DcfMac::send_ack(const WifiFrame& data) {
  // ACKs preempt: SIFS is shorter than DIFS, so the medium cannot have been
  // captured by anyone else. If this node happens to be mid-transmission
  // (pathological hidden-terminal timing), the ACK is skipped and the
  // sender retries.
  sim_.schedule_in(channel_.phy().sifs(), [this, data] {
    if (transmitting_) return;
    // Our own transmission silences DIFS/backoff progress.
    if (state_ == State::kWaitDifs || state_ == State::kBackoff) {
      cancel_timer();
      state_ = State::kWaitIdle;
    }
    WifiFrame ack;
    ack.type = WifiFrame::Type::kAck;
    ack.packet.id = data.packet.id;
    ack.from = self_;
    ack.to = data.from;
    transmitting_ = true;
    const SimTime duration = channel_.transmit(ack);
    sim_.schedule_in(duration, [this] {
      transmitting_ = false;
      if (!medium_busy()) medium_became_idle();
    });
  });
}

void DcfMac::on_frame_received(const WifiFrame& frame) {
  // Overheard unicast traffic: honor the NAV reservation and stand down.
  if (frame.to != self_ && frame.to != kInvalidNode) {
    if (frame.nav > SimTime::zero()) set_nav(sim_.now() + frame.nav);
    return;
  }
  switch (frame.type) {
    case WifiFrame::Type::kData:
      if (frame.to == self_) {
        send_ack(frame);  // re-ACK duplicates too: the sender needs it
        const std::uint64_t dedup_key =
            (static_cast<std::uint64_t>(frame.from) << 32) ^
            static_cast<std::uint32_t>(frame.packet.flow_id);
        const auto [it, fresh] =
            last_seen_from_.try_emplace(dedup_key, frame.packet.id);
        if (!fresh) {
          if (it->second == frame.packet.id) return;  // duplicate retry
          it->second = frame.packet.id;
        }
        if (cb_.on_delivered) cb_.on_delivered(frame.packet);
      } else {  // broadcast
        if (cb_.on_delivered) cb_.on_delivered(frame.packet);
      }
      return;
    case WifiFrame::Type::kAck:
      if (state_ == State::kWaitAck && current_.has_value() &&
          frame.packet.id == current_->id) {
        cancel_timer();
        const MacPacket done = *current_;
        finish_packet(/*post_backoff=*/true);
        if (cb_.on_sent) cb_.on_sent(done);
      }
      return;
    case WifiFrame::Type::kRts:
      // Respond only if our virtual carrier sense is clear, per standard.
      if (sim_.now() < nav_until_) return;
      send_cts(frame);
      return;
    case WifiFrame::Type::kCts:
      if (state_ == State::kWaitCts && current_.has_value() &&
          frame.packet.id == current_->id) {
        cancel_timer();
        // Data follows one SIFS after the CTS, no further contention.
        sim_.schedule_in(channel_.phy().sifs(), [this] {
          if (state_ == State::kWaitCts && !transmitting_) transmit_data();
        });
      }
      return;
  }
}

void DcfMac::finish_packet(bool post_backoff) {
  current_.reset();
  state_ = State::kIdle;
  if (queue_.empty()) return;
  current_ = queue_.front();
  queue_.pop_front();
  if (past_deadline(current_->bytes)) {
    // Earlier retries consumed the budget this packet was released against.
    requeue_past_deadline();
    return;
  }
  attempt_ = 0;
  cw_ = channel_.phy().cw_min();
  backoff_slots_ = post_backoff ? draw_backoff() : 0;
  begin_access();
}

}  // namespace wimesh
