#include "wimesh/trace/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "wimesh/common/json.h"

namespace wimesh::trace {

namespace {

// Virtual timestamp in microseconds with exact nanosecond remainder —
// integer arithmetic only, so the bytes are deterministic.
std::string fmt_ts(SimTime t) {
  std::int64_t ns = t.ns();
  const char* sign = "";
  if (ns < 0) {
    sign = "-";
    ns = -ns;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s%" PRId64 ".%03" PRId64, sign, ns / 1000,
                ns % 1000);
  return buf;
}

const char* rx_cause_name(std::int64_t cause) {
  switch (static_cast<RxDropCause>(cause)) {
    case RxDropCause::kCollision:
      return "collision";
    case RxDropCause::kHalfDuplex:
      return "half_duplex";
    case RxDropCause::kImpairment:
      return "impairment";
    case RxDropCause::kPer:
      return "per";
    case RxDropCause::kSinr:
      return "sinr";
  }
  return "?";
}

void append_int_arg(std::string& out, bool& first, const char* key,
                    std::int64_t v) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_str_arg(std::string& out, bool& first, const char* key,
                    const std::string& v) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":\"";
  out += json_escape(v);
  out += '"';
}

void append_args(std::string& out, const Record& r) {
  out += "\"args\":{";
  bool first = true;
  if (r.node >= 0) append_int_arg(out, first, "node", r.node);
  switch (r.type) {
    case EventType::kDesDispatch:
      append_int_arg(out, first, "id", r.a);
      break;
    case EventType::kFrameStart:
      append_int_arg(out, first, "frame", r.a);
      break;
    case EventType::kBlockStart:
      append_int_arg(out, first, "link", r.a);
      append_int_arg(out, first, "slot", r.b);
      append_int_arg(out, first, "len", r.c);
      append_int_arg(out, first, "frame", r.d);
      break;
    case EventType::kBlockSkipped:
      append_int_arg(out, first, "link", r.a);
      break;
    case EventType::kGrantSwap:
      append_int_arg(out, first, "generation", r.a);
      append_int_arg(out, first, "frame", r.b);
      break;
    case EventType::kTxStart:
      append_int_arg(out, first, "to", r.a);
      append_int_arg(out, first, "kind", r.b);
      append_int_arg(out, first, "airtime_ns", r.c);
      append_int_arg(out, first, "bytes", r.d);
      break;
    case EventType::kRxCorrupted:
      append_int_arg(out, first, "from", r.a);
      append_str_arg(out, first, "cause", rx_cause_name(r.b));
      break;
    case EventType::kSyncWave:
      append_int_arg(out, first, "wave", r.a);
      append_int_arg(out, first, "depth", r.b);
      break;
    case EventType::kSyncReRoot:
      append_int_arg(out, first, "depth", r.a);
      break;
    case EventType::kSyncMasterFail:
      break;
    case EventType::kFaultApplied:
      append_int_arg(out, first, "kind", r.a);
      break;
    case EventType::kRecoveryStart:
      append_int_arg(out, first, "faults", r.a);
      break;
    case EventType::kScheduleRepaired:
      append_int_arg(out, first, "repairs", r.a);
      append_int_arg(out, first, "shed", r.b);
      append_int_arg(out, first, "frame", r.c);
      break;
    case EventType::kPlanActivated:
      append_int_arg(out, first, "frame", r.a);
      break;
    case EventType::kSpan:
      break;  // excluded from JSON export (see export.h)
    case EventType::kIlpCuts:
      append_int_arg(out, first, "cuts", r.a);
      append_int_arg(out, first, "cliques", r.b);
      append_int_arg(out, first, "root_bound", r.c);
      break;
    case EventType::kIlpPortfolio:
      append_int_arg(out, first, "strategy", r.a);
      append_int_arg(out, first, "nodes", r.b);
      append_int_arg(out, first, "rounds", r.c);
      append_int_arg(out, first, "winner", r.d);
      break;
    case EventType::kIlpWarmStart:
      append_int_arg(out, first, "hits", r.a);
      append_int_arg(out, first, "attempts", r.b);
      break;
    case EventType::kIlpTreeFastPath:
      append_int_arg(out, first, "links", r.a);
      append_int_arg(out, first, "slots", r.b);
      append_int_arg(out, first, "components", r.c);
      break;
    case EventType::kAdmitDecision:
      append_int_arg(out, first, "flow", r.a);
      append_int_arg(out, first, "outcome", r.b);
      append_int_arg(out, first, "path", r.c);
      append_int_arg(out, first, "active", r.d);
      break;
    case EventType::kAdmitRelease:
      append_int_arg(out, first, "flow", r.a);
      append_int_arg(out, first, "active", r.b);
      append_int_arg(out, first, "pending", r.c);
      break;
    case EventType::kAdmitHotSwap:
      append_int_arg(out, first, "generation", r.a);
      append_int_arg(out, first, "frame", r.b);
      append_int_arg(out, first, "slots", r.c);
      break;
    case EventType::kAdmitCompaction:
      append_int_arg(out, first, "flows", r.a);
      append_int_arg(out, first, "slots", r.b);
      break;
    case EventType::kZonePartition:
      append_int_arg(out, first, "zones", r.a);
      append_int_arg(out, first, "nodes", r.b);
      append_int_arg(out, first, "border", r.c);
      append_int_arg(out, first, "interior", r.d);
      break;
    case EventType::kZoneSolve:
      append_int_arg(out, first, "zone", r.a);
      append_int_arg(out, first, "links", r.b);
      append_int_arg(out, first, "slots", r.c);
      append_int_arg(out, first, "proven", r.d);
      break;
    case EventType::kZoneBorder:
      append_int_arg(out, first, "link", r.a);
      append_int_arg(out, first, "start", r.b);
      append_int_arg(out, first, "len", r.c);
      append_int_arg(out, first, "relocated", r.d);
      break;
    case EventType::kIslandsFormed:
      append_int_arg(out, first, "islands", r.a);
      append_int_arg(out, first, "alive", r.b);
      append_int_arg(out, first, "severed", r.c);
      break;
    case EventType::kIslandMaster:
      append_int_arg(out, first, "island", r.a);
      append_int_arg(out, first, "size", r.b);
      break;
    case EventType::kIslandsHealed:
      append_int_arg(out, first, "merged", r.a);
      append_int_arg(out, first, "ever_severed", r.b);
      break;
    case EventType::kChaosTrial:
      append_int_arg(out, first, "trial", r.a);
      append_int_arg(out, first, "events", r.b);
      append_int_arg(out, first, "failed", r.c);
      break;
    case EventType::kChaosShrink:
      append_int_arg(out, first, "round", r.a);
      append_int_arg(out, first, "remaining", r.b);
      append_int_arg(out, first, "removed", r.c);
      break;
    case EventType::kRadioFadeDeep:
      append_int_arg(out, first, "tx", r.a);
      append_int_arg(out, first, "gain_cdb", r.b);
      break;
    case EventType::kRadioCapture:
      append_int_arg(out, first, "tx", r.a);
      append_int_arg(out, first, "sinr_cdb", r.b);
      append_int_arg(out, first, "interferers", r.c);
      break;
    case EventType::kRadioRateSwitch:
      append_int_arg(out, first, "rx", r.a);
      append_int_arg(out, first, "rate_index", r.b);
      append_int_arg(out, first, "rate_mbps", r.c);
      break;
  }
  out += '}';
}

}  // namespace

std::string to_chrome_json(const Tracer& tracer, const ExportOptions& opts) {
  const std::vector<Record> records = tracer.snapshot();
  std::string out;
  out.reserve(records.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  const std::string pid = std::to_string(opts.pid);

  if (!opts.process_label.empty()) {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += pid;
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += json_escape(opts.process_label);
    out += "\"}}";
    first = false;
  }

  // Name the per-node tracks (tid = node id + 1; tid 0 = global events).
  std::set<std::int64_t> tids;
  for (const Record& r : records) {
    if (r.type == EventType::kSpan) continue;
    tids.insert(r.node >= 0 ? r.node + std::int64_t{1} : 0);
  }
  for (std::int64_t tid : tids) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += pid;
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    out += tid == 0 ? std::string("global") : "node " + std::to_string(tid - 1);
    out += "\"}}";
  }

  for (const Record& r : records) {
    if (r.type == EventType::kSpan) continue;  // wall-clock data: see summary
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += event_type_name(r.type);
    out += "\",\"cat\":\"";
    out += category_name(event_category(r.type));
    out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    out += fmt_ts(r.t0);
    out += ",\"pid\":";
    out += pid;
    out += ",\"tid\":";
    out += std::to_string(r.node >= 0 ? r.node + std::int64_t{1} : 0);
    out += ',';
    append_args(out, r);
    out += '}';
  }

  // Counts restricted to the exported (non-prof) categories: span counts
  // depend on which thread won a memoized solve, and the JSON must stay
  // byte-identical across --jobs values.
  out += "],\"otherData\":{\"recorded\":";
  out += std::to_string(tracer.recorded_in(kAll & ~kProf));
  out += ",\"dropped\":";
  out += std::to_string(tracer.dropped_in(kAll & ~kProf));
  out += "}}\n";
  return out;
}

std::string to_slot_csv(const Tracer& tracer) {
  std::string out = "frame,node,link,slot_start,slot_len,fire_ms\n";
  char buf[128];
  for (const Record& r : tracer.snapshot()) {
    if (r.type == EventType::kBlockStart) {
      std::snprintf(buf, sizeof buf,
                    "%" PRId64 ",%d,%" PRId64 ",%" PRId64 ",%" PRId64
                    ",%.6f\n",
                    r.d, r.node, r.a, r.b, r.c, r.t0.to_ms());
      out += buf;
    } else if (r.type == EventType::kBlockSkipped) {
      std::snprintf(buf, sizeof buf, "-1,%d,%" PRId64 ",-1,0,%.6f\n", r.node,
                    r.a, r.t0.to_ms());
      out += buf;
    }
  }
  return out;
}

std::string span_summary(const std::vector<const Tracer*>& tracers) {
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t wall_ns = 0;
    std::int64_t self_ns = 0;
    std::int64_t virt_ns = 0;
  };
  Agg agg[static_cast<std::size_t>(SpanName::kCount)];
  std::uint64_t dropped = 0;
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    dropped += t->dropped();
    for (const Record& r : t->snapshot()) {
      if (r.type != EventType::kSpan) continue;
      if (r.name >= static_cast<std::uint16_t>(SpanName::kCount)) continue;
      Agg& x = agg[r.name];
      ++x.count;
      x.wall_ns += r.a;
      x.self_ns += r.b;
      x.virt_ns += (r.t1 - r.t0).ns();
    }
  }

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-22s %7s %10s %10s %10s %12s\n", "span",
                "count", "wall_ms", "self_ms", "mean_ms", "virt_ms");
  out += buf;
  bool any = false;
  for (std::size_t i = 0; i < static_cast<std::size_t>(SpanName::kCount);
       ++i) {
    const Agg& x = agg[i];
    if (x.count == 0) continue;
    any = true;
    std::snprintf(buf, sizeof buf,
                  "%-22s %7" PRIu64 " %10.2f %10.2f %10.3f %12.3f\n",
                  span_name(static_cast<SpanName>(i)), x.count,
                  static_cast<double>(x.wall_ns) / 1e6,
                  static_cast<double>(x.self_ns) / 1e6,
                  static_cast<double>(x.wall_ns) / 1e6 /
                      static_cast<double>(x.count),
                  static_cast<double>(x.virt_ns) / 1e6);
    out += buf;
  }
  if (!any) out += "(no profiling spans recorded)\n";
  if (dropped > 0) {
    std::snprintf(buf, sizeof buf,
                  "note: ring overflow dropped %" PRIu64
                  " oldest records; span totals cover retained records only\n",
                  dropped);
    out += buf;
  }
  return out;
}

std::string span_summary(const Tracer& tracer) {
  return span_summary(std::vector<const Tracer*>{&tracer});
}

}  // namespace wimesh::trace
