#include "wimesh/trace/trace.h"

#include <chrono>

#include "wimesh/common/strings.h"

namespace wimesh::trace {

namespace {

struct CategoryEntry {
  Category cat;
  const char* name;
};

constexpr CategoryEntry kCategories[] = {
    {kDes, "des"},     {kTdma, "tdma"},     {kWifi, "wifi"},
    {kSync, "sync"},   {kFaults, "faults"}, {kProf, "prof"},
    {kIlp, "ilp"},     {kAdmit, "admit"},   {kZones, "zones"},
    {kChaos, "chaos"}, {kRadio, "radio"},
};

// Bit position of a (single-bit) category — index into the per-category
// counter arrays.
std::size_t category_index(Category cat) {
  std::size_t i = 0;
  std::uint32_t bits = cat;
  while (bits > 1) {
    bits >>= 1;
    ++i;
  }
  return i;
}

std::string trim_token(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::uint32_t parse_categories(const std::string& csv, std::string* error) {
  if (error != nullptr) error->clear();
  std::uint32_t mask = 0;
  for (const std::string& raw : split(csv, ',')) {
    const std::string token = trim_token(raw);
    if (token.empty()) continue;
    if (token == "all" || token == "on") {
      mask |= kAll;
      continue;
    }
    if (token == "off" || token == "none") continue;
    bool found = false;
    for (const CategoryEntry& e : kCategories) {
      if (token == e.name) {
        mask |= e.cat;
        found = true;
        break;
      }
    }
    if (!found) {
      if (error != nullptr) {
        *error =
            str_cat(
                "unknown trace category '", token,
                "' (expected des|tdma|wifi|sync|faults|prof|ilp|admit|zones|"
                "chaos|radio|all|off)");
      }
      return 0;
    }
  }
  return mask;
}

const char* category_name(Category cat) {
  for (const CategoryEntry& e : kCategories) {
    if (e.cat == cat) return e.name;
  }
  return "?";
}

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kDesDispatch:
      return "des.dispatch";
    case EventType::kFrameStart:
      return "tdma.frame_start";
    case EventType::kBlockStart:
      return "tdma.block_start";
    case EventType::kBlockSkipped:
      return "tdma.block_skipped";
    case EventType::kGrantSwap:
      return "tdma.grant_swap";
    case EventType::kTxStart:
      return "wifi.tx_start";
    case EventType::kRxCorrupted:
      return "wifi.rx_corrupted";
    case EventType::kSyncWave:
      return "sync.wave";
    case EventType::kSyncReRoot:
      return "sync.re_root";
    case EventType::kSyncMasterFail:
      return "sync.master_fail";
    case EventType::kFaultApplied:
      return "faults.applied";
    case EventType::kRecoveryStart:
      return "faults.recovery_start";
    case EventType::kScheduleRepaired:
      return "faults.schedule_repaired";
    case EventType::kPlanActivated:
      return "faults.plan_activated";
    case EventType::kSpan:
      return "span";
    case EventType::kIlpCuts:
      return "ilp.cuts";
    case EventType::kIlpPortfolio:
      return "ilp.portfolio";
    case EventType::kIlpWarmStart:
      return "ilp.warm_start";
    case EventType::kIlpTreeFastPath:
      return "ilp.tree_fast_path";
    case EventType::kAdmitDecision:
      return "admit.decision";
    case EventType::kAdmitRelease:
      return "admit.release";
    case EventType::kAdmitHotSwap:
      return "admit.hot_swap";
    case EventType::kAdmitCompaction:
      return "admit.compaction";
    case EventType::kZonePartition:
      return "zones.partition";
    case EventType::kZoneSolve:
      return "zones.solve";
    case EventType::kZoneBorder:
      return "zones.border";
    case EventType::kIslandsFormed:
      return "faults.islands_formed";
    case EventType::kIslandMaster:
      return "faults.island_master";
    case EventType::kIslandsHealed:
      return "faults.islands_healed";
    case EventType::kChaosTrial:
      return "chaos.trial";
    case EventType::kChaosShrink:
      return "chaos.shrink";
    case EventType::kRadioFadeDeep:
      return "radio.fade_deep";
    case EventType::kRadioCapture:
      return "radio.capture";
    case EventType::kRadioRateSwitch:
      return "radio.rate_switch";
  }
  return "?";
}

Category event_category(EventType type) {
  switch (type) {
    case EventType::kDesDispatch:
      return kDes;
    case EventType::kFrameStart:
    case EventType::kBlockStart:
    case EventType::kBlockSkipped:
    case EventType::kGrantSwap:
      return kTdma;
    case EventType::kTxStart:
    case EventType::kRxCorrupted:
      return kWifi;
    case EventType::kSyncWave:
    case EventType::kSyncReRoot:
    case EventType::kSyncMasterFail:
      return kSync;
    case EventType::kFaultApplied:
    case EventType::kRecoveryStart:
    case EventType::kScheduleRepaired:
    case EventType::kPlanActivated:
      return kFaults;
    case EventType::kSpan:
      return kProf;
    case EventType::kIlpCuts:
    case EventType::kIlpPortfolio:
    case EventType::kIlpWarmStart:
    case EventType::kIlpTreeFastPath:
      return kIlp;
    case EventType::kAdmitDecision:
    case EventType::kAdmitRelease:
    case EventType::kAdmitHotSwap:
    case EventType::kAdmitCompaction:
      return kAdmit;
    case EventType::kZonePartition:
    case EventType::kZoneSolve:
    case EventType::kZoneBorder:
      return kZones;
    case EventType::kIslandsFormed:
    case EventType::kIslandMaster:
    case EventType::kIslandsHealed:
      return kFaults;
    case EventType::kChaosTrial:
    case EventType::kChaosShrink:
      return kChaos;
    case EventType::kRadioFadeDeep:
    case EventType::kRadioCapture:
    case EventType::kRadioRateSwitch:
      return kRadio;
  }
  return kProf;
}

const char* span_name(SpanName name) {
  switch (name) {
    case SpanName::kIlpSolve:
      return "ilp.solve";
    case SpanName::kScheduleIlp:
      return "sched.schedule_ilp";
    case SpanName::kMinSlotsSearch:
      return "sched.min_slots";
    case SpanName::kBellmanFord:
      return "sched.bellman_ford";
    case SpanName::kQosPlan:
      return "qos.plan";
    case SpanName::kFaultRecovery:
      return "faults.recovery";
    case SpanName::kSimRun:
      return "sim.run";
    case SpanName::kBatchRun:
      return "batch.run";
    case SpanName::kIlpCutGen:
      return "ilp.cut_gen";
    case SpanName::kTreeFastPath:
      return "sched.tree_fast_path";
    case SpanName::kAdmitDecide:
      return "admit.decide";
    case SpanName::kAdmitCompact:
      return "admit.compact";
    case SpanName::kZoneSolve:
      return "zones.solve";
    case SpanName::kZoneCompose:
      return "zones.compose";
    case SpanName::kCount:
      break;
  }
  return "?";
}

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer(TraceConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.resize(config_.capacity);
  span_child_wall_.reserve(16);
}

void Tracer::record(Category cat, const Record& r) {
  if (!wants(cat)) return;
  if (recorded_ >= ring_.size()) {
    // Overwriting the oldest record; attribute the drop to its category.
    ++dropped_;
    ++dropped_by_cat_[category_index(event_category(ring_[head_].type))];
  }
  ring_[head_] = r;
  head_ = (head_ + 1) % ring_.size();
  ++recorded_;
  ++recorded_by_cat_[category_index(cat)];
}

std::uint64_t Tracer::recorded_in(std::uint32_t mask) const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    if ((mask & (1u << i)) != 0) n += recorded_by_cat_[i];
  }
  return n;
}

std::uint64_t Tracer::dropped_in(std::uint32_t mask) const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    if ((mask & (1u << i)) != 0) n += dropped_by_cat_[i];
  }
  return n;
}

void Tracer::span_push() { span_child_wall_.push_back(0); }

void Tracer::span_pop(SpanName name, SimTime vt0, SimTime vt1,
                      std::int64_t wall_total_ns) {
  std::int64_t child_ns = 0;
  if (!span_child_wall_.empty()) {
    child_ns = span_child_wall_.back();
    span_child_wall_.pop_back();
  }
  if (!span_child_wall_.empty()) {
    span_child_wall_.back() += wall_total_ns;
  }
  Record r;
  r.t0 = vt0;
  r.t1 = vt1;
  r.type = EventType::kSpan;
  r.name = static_cast<std::uint16_t>(name);
  r.a = wall_total_ns;
  r.b = wall_total_ns - child_ns;
  record(kProf, r);
}

std::vector<Record> Tracer::snapshot() const {
  std::vector<Record> out;
  if (recorded_ < ring_.size()) {
    out.assign(ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
    return out;
  }
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

}  // namespace wimesh::trace
