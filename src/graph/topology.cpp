#include "wimesh/graph/topology.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <queue>
#include <string>

namespace wimesh {

double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

Topology make_chain(NodeId n, double spacing) {
  WIMESH_ASSERT(n >= 1);
  Topology t;
  t.graph.resize(n);
  t.positions.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    t.positions[static_cast<std::size_t>(i)] = Point{spacing * i, 0.0};
    if (i > 0) t.graph.add_edge(i - 1, i);
  }
  return t;
}

Topology make_ring(NodeId n, double radius) {
  WIMESH_ASSERT(n >= 3);
  Topology t;
  t.graph.resize(n);
  t.positions.resize(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / n;
    t.positions[static_cast<std::size_t>(i)] =
        Point{radius * std::cos(angle), radius * std::sin(angle)};
    if (i > 0) t.graph.add_edge(i - 1, i);
  }
  t.graph.add_edge(n - 1, 0);
  return t;
}

Expected<Topology> try_make_grid(std::int64_t rows, std::int64_t cols,
                                 double spacing) {
  if (rows < 1 || cols < 1) {
    return make_error("grid dimensions must be >= 1 (got " +
                      std::to_string(rows) + " x " + std::to_string(cols) +
                      ")");
  }
  // rows * cols in 64-bit: both factors are bounded by the NodeId max
  // first, so the product cannot overflow int64 either.
  constexpr std::int64_t kMaxNodes = std::numeric_limits<NodeId>::max();
  if (rows > kMaxNodes || cols > kMaxNodes || rows * cols > kMaxNodes) {
    return make_error("grid of " + std::to_string(rows) + " x " +
                      std::to_string(cols) +
                      " nodes exceeds the NodeId range");
  }
  const auto n = static_cast<NodeId>(rows * cols);
  Topology t;
  t.graph.resize(n);
  t.positions.resize(static_cast<std::size_t>(n));
  const auto id = [cols](std::int64_t r, std::int64_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      t.positions[static_cast<std::size_t>(id(r, c))] =
          Point{spacing * static_cast<double>(c),
                spacing * static_cast<double>(r)};
      if (c > 0) t.graph.add_edge(id(r, c - 1), id(r, c));
      if (r > 0) t.graph.add_edge(id(r - 1, c), id(r, c));
    }
  }
  return t;
}

Topology make_grid(NodeId rows, NodeId cols, double spacing) {
  auto t = try_make_grid(rows, cols, spacing);
  WIMESH_ASSERT_MSG(t.has_value(),
                    t.has_value() ? std::string{} : t.error());
  return *std::move(t);
}

Topology make_random_geometric(NodeId n, double side, double range, Rng& rng) {
  WIMESH_ASSERT(n >= 1);
  WIMESH_ASSERT(side > 0 && range > 0);
  constexpr int kMaxAttempts = 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Topology t;
    t.graph.resize(n);
    t.positions.resize(static_cast<std::size_t>(n));
    for (NodeId i = 0; i < n; ++i) {
      t.positions[static_cast<std::size_t>(i)] =
          Point{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    }
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (distance(t.positions[static_cast<std::size_t>(i)],
                     t.positions[static_cast<std::size_t>(j)]) <= range) {
          t.graph.add_edge(i, j);
        }
      }
    }
    if (is_connected(t.graph)) return t;
  }
  WIMESH_ASSERT_MSG(false,
                    "could not draw a connected random geometric graph; "
                    "increase range or shrink the area");
  return {};
}

Topology make_tree(NodeId arity, NodeId depth, double spacing) {
  WIMESH_ASSERT(arity >= 1 && depth >= 0);
  Topology t;
  t.graph.resize(1);
  t.positions.push_back(Point{0.0, 0.0});
  std::vector<NodeId> level{0};
  for (NodeId d = 1; d <= depth; ++d) {
    std::vector<NodeId> next;
    double x = 0.0;
    for (NodeId parent : level) {
      for (NodeId k = 0; k < arity; ++k) {
        const NodeId child = t.graph.add_node();
        t.positions.push_back(Point{x, spacing * d});
        x += spacing;
        t.graph.add_edge(parent, child);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  return t;
}

std::vector<NodeId> spanning_tree_parents(const Graph& g, NodeId root) {
  // The graph may be disconnected (a surviving post-fault topology): nodes
  // the BFS never reaches simply keep kInvalidNode as parent, matching the
  // root itself — callers routing through the forest must check
  // reachability separately.
  WIMESH_ASSERT(root >= 0 && root < g.node_count());
  std::vector<NodeId> parent(static_cast<std::size_t>(g.node_count()),
                             kInvalidNode);
  std::vector<bool> seen(static_cast<std::size_t>(g.node_count()), false);
  std::queue<NodeId> frontier;
  seen[static_cast<std::size_t>(root)] = true;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.incident(u)) {
      const NodeId v = g.other_end(e, u);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        parent[static_cast<std::size_t>(v)] = u;
        frontier.push(v);
      }
    }
  }
  return parent;
}

}  // namespace wimesh
