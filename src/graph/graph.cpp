#include "wimesh/graph/graph.h"

#include <queue>

namespace wimesh {

EdgeId Graph::add_edge(NodeId u, NodeId v) {
  WIMESH_ASSERT(u >= 0 && u < node_count());
  WIMESH_ASSERT(v >= 0 && v < node_count());
  WIMESH_ASSERT_MSG(u != v, "self-loops are not allowed");
  WIMESH_ASSERT_MSG(!has_edge(u, v), "parallel edges are not allowed");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v});
  adjacency_[static_cast<std::size_t>(u)].push_back(id);
  adjacency_[static_cast<std::size_t>(v)].push_back(id);
  return id;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  WIMESH_ASSERT(u >= 0 && u < node_count());
  WIMESH_ASSERT(v >= 0 && v < node_count());
  // Scan the smaller incidence list.
  const NodeId probe = degree(u) <= degree(v) ? u : v;
  const NodeId target = probe == u ? v : u;
  for (EdgeId e : incident(probe)) {
    if (other_end(e, probe) == target) return e;
  }
  return kInvalidEdge;
}

std::vector<NodeId> Graph::neighbors(NodeId u) const {
  std::vector<NodeId> out;
  out.reserve(incident(u).size());
  for (EdgeId e : incident(u)) out.push_back(other_end(e, u));
  return out;
}

EdgeId Digraph::add_arc(NodeId from, NodeId to, double weight) {
  WIMESH_ASSERT(from >= 0 && from < node_count());
  WIMESH_ASSERT(to >= 0 && to < node_count());
  const EdgeId id = static_cast<EdgeId>(arcs_.size());
  arcs_.push_back(Arc{from, to, weight});
  out_[static_cast<std::size_t>(from)].push_back(id);
  return id;
}

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  const auto hops = bfs_hops(g, 0);
  for (int h : hops) {
    if (h < 0) return false;
  }
  return true;
}

std::vector<int> bfs_hops(const Graph& g, NodeId src) {
  WIMESH_ASSERT(src >= 0 && src < g.node_count());
  std::vector<int> hops(static_cast<std::size_t>(g.node_count()), -1);
  std::queue<NodeId> frontier;
  hops[static_cast<std::size_t>(src)] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (EdgeId e : g.incident(u)) {
      const NodeId v = g.other_end(e, u);
      if (hops[static_cast<std::size_t>(v)] < 0) {
        hops[static_cast<std::size_t>(v)] = hops[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

}  // namespace wimesh
