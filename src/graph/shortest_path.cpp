#include "wimesh/graph/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace wimesh {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

bool ShortestPathTree::reachable(NodeId v) const {
  return dist[static_cast<std::size_t>(v)] < kInf;
}

std::vector<NodeId> ShortestPathTree::path_to(const Digraph& g,
                                              NodeId dst) const {
  if (!reachable(dst)) return {};
  std::vector<NodeId> path{dst};
  NodeId cur = dst;
  while (parent_arc[static_cast<std::size_t>(cur)] != kInvalidEdge) {
    cur = g.arc(parent_arc[static_cast<std::size_t>(cur)]).from;
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const Digraph& g, NodeId src) {
  WIMESH_ASSERT(src >= 0 && src < g.node_count());
  const auto n = static_cast<std::size_t>(g.node_count());
  ShortestPathTree t;
  t.dist.assign(n, kInf);
  t.parent_arc.assign(n, kInvalidEdge);
  t.dist[static_cast<std::size_t>(src)] = 0.0;

  using Item = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > t.dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (EdgeId a : g.out_arcs(u)) {
      const auto& arc = g.arc(a);
      WIMESH_ASSERT_MSG(arc.weight >= 0.0, "dijkstra requires nonnegative weights");
      const double nd = d + arc.weight;
      if (nd < t.dist[static_cast<std::size_t>(arc.to)]) {
        t.dist[static_cast<std::size_t>(arc.to)] = nd;
        t.parent_arc[static_cast<std::size_t>(arc.to)] = a;
        heap.emplace(nd, arc.to);
      }
    }
  }
  return t;
}

BellmanFordResult bellman_ford(const Digraph& g, NodeId src) {
  WIMESH_ASSERT(src >= 0 && src < g.node_count());
  const auto n = static_cast<std::size_t>(g.node_count());
  BellmanFordResult r;
  r.tree.dist.assign(n, kInf);
  r.tree.parent_arc.assign(n, kInvalidEdge);
  r.tree.dist[static_cast<std::size_t>(src)] = 0.0;

  // Standard |V|-1 relaxation rounds with early exit.
  for (std::size_t round = 0; round + 1 < n || n == 1; ++round) {
    bool changed = false;
    for (EdgeId a = 0; a < g.arc_count(); ++a) {
      const auto& arc = g.arc(a);
      const double du = r.tree.dist[static_cast<std::size_t>(arc.from)];
      if (du == kInf) continue;
      if (du + arc.weight < r.tree.dist[static_cast<std::size_t>(arc.to)]) {
        r.tree.dist[static_cast<std::size_t>(arc.to)] = du + arc.weight;
        r.tree.parent_arc[static_cast<std::size_t>(arc.to)] = a;
        changed = true;
      }
    }
    if (!changed) return r;
    if (n == 1) break;
  }

  // One more pass: any further relaxation implies a reachable negative cycle.
  for (EdgeId a = 0; a < g.arc_count(); ++a) {
    const auto& arc = g.arc(a);
    const double du = r.tree.dist[static_cast<std::size_t>(arc.from)];
    if (du == kInf) continue;
    if (du + arc.weight < r.tree.dist[static_cast<std::size_t>(arc.to)]) {
      r.has_negative_cycle = true;
      // Walk parents from arc.to n times to land inside the cycle, then
      // collect it.
      NodeId cur = arc.to;
      r.tree.parent_arc[static_cast<std::size_t>(arc.to)] = a;
      for (std::size_t i = 0; i < n; ++i) {
        const EdgeId pa = r.tree.parent_arc[static_cast<std::size_t>(cur)];
        WIMESH_ASSERT(pa != kInvalidEdge);
        cur = g.arc(pa).from;
      }
      const NodeId cycle_entry = cur;
      do {
        const EdgeId pa = r.tree.parent_arc[static_cast<std::size_t>(cur)];
        r.negative_cycle.push_back(pa);
        cur = g.arc(pa).from;
      } while (cur != cycle_entry);
      std::reverse(r.negative_cycle.begin(), r.negative_cycle.end());
      return r;
    }
  }
  return r;
}

std::optional<std::vector<double>> solve_difference_constraints(
    const Digraph& g) {
  // Virtual source: node n with a zero-weight arc to every real node.
  Digraph aug(g.node_count() + 1);
  for (const auto& arc : g.arcs()) aug.add_arc(arc.from, arc.to, arc.weight);
  const NodeId source = g.node_count();
  for (NodeId v = 0; v < g.node_count(); ++v) aug.add_arc(source, v, 0.0);

  const auto r = bellman_ford(aug, source);
  if (r.has_negative_cycle) return std::nullopt;
  std::vector<double> x(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    x[static_cast<std::size_t>(v)] = r.tree.dist[static_cast<std::size_t>(v)];
  }
  return x;
}

}  // namespace wimesh
