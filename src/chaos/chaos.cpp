#include "wimesh/chaos/chaos.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "wimesh/admit/engine.h"
#include "wimesh/common/rng.h"
#include "wimesh/common/strings.h"
#include "wimesh/core/mesh_network.h"
#include "wimesh/trace/trace.h"

namespace wimesh::chaos {

namespace {

using faults::FaultEvent;
using faults::FaultKind;

// Everything one trial needs, derived from (seed, trial index) alone.
struct Trial {
  std::string family;
  Topology topology;
  std::vector<FlowSpec> calls;  // guaranteed VoIP flows (both directions)
  std::vector<FaultEvent> script;
  SimTime detection_delay{};
  std::uint64_t leg_seed = 1;  // MeshNetwork seed + churn stream
};

// Structural network state the oracle replays with plain BFS.
struct NetState {
  std::vector<char> alive;
  std::vector<std::pair<NodeId, NodeId>> down;  // unordered link pairs

  bool link_down(NodeId u, NodeId v) const {
    for (const auto& [a, b] : down) {
      if ((a == u && b == v) || (a == v && b == u)) return true;
    }
    return false;
  }
  void set_link(NodeId u, NodeId v, bool is_down) {
    for (std::size_t i = 0; i < down.size(); ++i) {
      const auto& [a, b] = down[i];
      if ((a == u && b == v) || (a == v && b == u)) {
        if (!is_down) down.erase(down.begin() + static_cast<long>(i));
        return;
      }
    }
    if (is_down) down.emplace_back(u, v);
  }
};

// Connected components over the surviving subgraph, seeded in ascending
// NodeId order (the same rule FaultRuntime::decompose_islands uses, so
// island indices are directly comparable). Dead nodes get -1.
std::vector<int> components(const Topology& topo, const NetState& s,
                            int* count) {
  std::vector<int> comp(s.alive.size(), -1);
  int islands = 0;
  for (NodeId seed = 0; seed < topo.node_count(); ++seed) {
    if (s.alive[static_cast<std::size_t>(seed)] == 0) continue;
    if (comp[static_cast<std::size_t>(seed)] >= 0) continue;
    comp[static_cast<std::size_t>(seed)] = islands;
    std::vector<NodeId> queue{seed};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId v : topo.graph.neighbors(queue[head])) {
        if (s.alive[static_cast<std::size_t>(v)] == 0) continue;
        if (s.link_down(queue[head], v)) continue;
        if (comp[static_cast<std::size_t>(v)] >= 0) continue;
        comp[static_cast<std::size_t>(v)] = islands;
        queue.push_back(v);
      }
    }
    ++islands;
  }
  *count = std::max(islands, 1);
  return comp;
}

bool is_structural(FaultKind k) {
  return k == FaultKind::kNodeCrash || k == FaultKind::kNodeRecover ||
         k == FaultKind::kMasterFail || k == FaultKind::kLinkDown ||
         k == FaultKind::kLinkUp;
}

// Mirrors FaultRuntime::apply's no-op rules: a crash of a dead node or a
// recover of a live one changes nothing and triggers no recovery.
// Returns true when the event takes effect (=> a recovery pass follows).
bool apply_to_state(const FaultEvent& e, NetState* s) {
  switch (e.kind) {
    case FaultKind::kNodeCrash: {
      auto& a = s->alive[static_cast<std::size_t>(e.node)];
      if (a == 0) return false;
      a = 0;
      return true;
    }
    case FaultKind::kNodeRecover: {
      auto& a = s->alive[static_cast<std::size_t>(e.node)];
      if (a != 0) return false;
      a = 1;
      return true;
    }
    case FaultKind::kLinkDown:
      s->set_link(e.link_a, e.link_b, true);
      return true;
    case FaultKind::kLinkUp:
      s->set_link(e.link_a, e.link_b, false);
      return true;
    case FaultKind::kMasterFail:
      return true;  // no island change, but recovery still runs
    case FaultKind::kLinkBurst:
    case FaultKind::kClockStep:
      return false;  // transient; absorbed without a recovery pass
  }
  return false;
}

// One expected recovery pass: the island decomposition the runtime must
// arrive at for the fault applied at `fault_at`.
struct OraclePoint {
  SimTime fault_at{};
  int islands = 1;
  std::vector<int> island_of_node;
  int severed = 0;  // guaranteed flows with live endpoints across a cut
};

std::vector<OraclePoint> replay_oracle(const Trial& trial,
                                       const std::vector<FaultEvent>& script) {
  NetState state;
  state.alive.assign(static_cast<std::size_t>(trial.topology.node_count()), 1);
  std::vector<OraclePoint> points;
  for (const FaultEvent& e : script) {
    if (!is_structural(e.kind)) continue;
    if (!apply_to_state(e, &state)) continue;
    OraclePoint p;
    p.fault_at = e.at;
    p.island_of_node = components(trial.topology, state, &p.islands);
    for (const FlowSpec& f : trial.calls) {
      const int cs = p.island_of_node[static_cast<std::size_t>(f.src)];
      const int cd = p.island_of_node[static_cast<std::size_t>(f.dst)];
      if (cs >= 0 && cd >= 0 && cs != cd) ++p.severed;
    }
    points.push_back(std::move(p));
  }
  return points;
}

// ---------------------------------------------------------------------------
// Trial generation.

Topology pick_topology(Rng& rng, std::string* family) {
  switch (rng.next_below(3)) {
    case 0: {
      const auto n = static_cast<NodeId>(rng.uniform_int(4, 8));
      *family = str_cat("chain-", n);
      return make_chain(n);
    }
    case 1: {
      const auto side = static_cast<NodeId>(rng.uniform_int(3, 4));
      *family = str_cat("grid-", side, "x", side);
      return make_grid(side, side);
    }
    default:
      // 7 nodes: binary tree, depth 2. make_tree fans children out along
      // x, so deep parent-child links get longer than the level spacing —
      // 45 m keeps every edge (max ~sqrt(5)*45 = 100.6 m) inside the
      // default 110 m comm range, matching the 100 m chain/grid regime.
      *family = "tree-2x2";
      return make_tree(2, 2, 45.0);
  }
}

Trial generate_trial(const ChaosOptions& options, std::uint64_t index) {
  Rng rng(Rng::derive_stream(options.seed, index));
  Trial trial;
  trial.topology = pick_topology(rng, &trial.family);
  trial.detection_delay = SimTime::milliseconds(options.detect_ms);
  trial.leg_seed = Rng::derive_stream(options.seed, index * 2 + 1);
  const NodeId n = trial.topology.node_count();

  // 1-2 VoIP calls (two guaranteed flows each) between distinct nodes.
  const int call_count = static_cast<int>(rng.uniform_int(1, 2));
  for (int c = 0; c < call_count; ++c) {
    const auto a = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    auto b = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n) - 1));
    if (b >= a) ++b;
    trial.calls.push_back(FlowSpec::voip(2 * c, a, b, VoipCodec::g729()));
    trial.calls.push_back(FlowSpec::voip(2 * c + 1, b, a, VoipCodec::g729()));
  }

  // Two pinned nodes that never crash. Together with the <=1 master-fail
  // cap this guarantees an alive never-failed sync-master candidate exists
  // at every recovery, so every structural event yields a repair record
  // (the oracle counts on that 1:1 correspondence).
  const auto pin_a = static_cast<NodeId>(rng.next_below(
      static_cast<std::uint64_t>(n)));
  auto pin_b = static_cast<NodeId>(rng.next_below(
      static_cast<std::uint64_t>(n) - 1));
  if (pin_b >= pin_a) ++pin_b;

  NetState state;
  state.alive.assign(static_cast<std::size_t>(n), 1);
  bool master_failed = false;
  const int event_count = static_cast<int>(rng.uniform_int(4, 10));
  // 100 ms spacing with detect_ms < 100 keeps every recovery pass strictly
  // between consecutive faults — recovery points are unambiguous.
  double t = 0.2;
  for (int k = 0; k < event_count; ++k, t += 0.1) {
    // Feasible kinds under the current state, weighted by repetition.
    enum Kind { kCrash, kRecover, kDown, kUp, kMaster, kStep, kBurst };
    std::vector<Kind> pool;
    std::vector<NodeId> crashable, dead;
    for (NodeId i = 0; i < n; ++i) {
      if (state.alive[static_cast<std::size_t>(i)] == 0) {
        dead.push_back(i);
      } else if (i != pin_a && i != pin_b) {
        crashable.push_back(i);
      }
    }
    std::vector<EdgeId> up_edges;
    for (EdgeId e = 0; e < trial.topology.graph.edge_count(); ++e) {
      const Graph::Edge& edge = trial.topology.graph.edge(e);
      if (!state.link_down(edge.u, edge.v)) up_edges.push_back(e);
    }
    if (!crashable.empty()) pool.insert(pool.end(), 5, kCrash);
    if (!dead.empty()) pool.insert(pool.end(), 5, kRecover);
    if (!up_edges.empty()) pool.insert(pool.end(), 3, kDown);
    if (!state.down.empty()) pool.insert(pool.end(), 3, kUp);
    if (!master_failed) pool.insert(pool.end(), 1, kMaster);
    pool.insert(pool.end(), 2, kStep);
    pool.insert(pool.end(), 2, kBurst);

    FaultEvent ev;
    ev.at = SimTime::from_seconds(t);
    switch (pool[rng.next_below(pool.size())]) {
      case kCrash: {
        ev.kind = FaultKind::kNodeCrash;
        ev.node = crashable[rng.next_below(crashable.size())];
        break;
      }
      case kRecover: {
        ev.kind = FaultKind::kNodeRecover;
        ev.node = dead[rng.next_below(dead.size())];
        break;
      }
      case kDown: {
        const Graph::Edge& edge =
            trial.topology.graph.edge(up_edges[rng.next_below(
                up_edges.size())]);
        ev.kind = FaultKind::kLinkDown;
        ev.link_a = edge.u;
        ev.link_b = edge.v;
        break;
      }
      case kUp: {
        const auto& [a, b] = state.down[rng.next_below(state.down.size())];
        ev.kind = FaultKind::kLinkUp;
        ev.link_a = a;
        ev.link_b = b;
        break;
      }
      case kMaster:
        ev.kind = FaultKind::kMasterFail;
        master_failed = true;
        break;
      case kStep: {
        ev.kind = FaultKind::kClockStep;
        ev.node = static_cast<NodeId>(rng.next_below(
            static_cast<std::uint64_t>(n)));
        ev.step = SimTime::microseconds(rng.uniform_int(-300, 300));
        break;
      }
      case kBurst: {
        const Graph::Edge& edge = trial.topology.graph.edge(
            static_cast<EdgeId>(rng.next_below(static_cast<std::uint64_t>(
                trial.topology.graph.edge_count()))));
        ev.kind = FaultKind::kLinkBurst;
        ev.link_a = edge.u;
        ev.link_b = edge.v;
        ev.until = ev.at + SimTime::milliseconds(80);
        break;
      }
    }
    apply_to_state(ev, &state);
    trial.script.push_back(ev);
  }
  return trial;
}

// ---------------------------------------------------------------------------
// Trial execution.

struct TrialOutcome {
  bool skipped = false;  // initial plan infeasible; counts nothing
  std::uint64_t fault_events = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t oracle_mismatches = 0;
  std::uint64_t consistency_failures = 0;
  std::string detail;  // first failed check

  bool failed() const {
    return audit_violations + oracle_mismatches + consistency_failures > 0;
  }
  void mismatch(std::string d) {
    ++oracle_mismatches;
    if (detail.empty()) detail = std::move(d);
  }
};

// The system-side plan: the full script, minus node-recover events when
// the injected-bug fixture is active (the oracle always sees everything).
std::vector<FaultEvent> system_script(const ChaosOptions& options,
                                      const std::vector<FaultEvent>& script) {
  if (!options.inject_recover_loss_bug) return script;
  std::vector<FaultEvent> out;
  for (const FaultEvent& e : script) {
    if (e.kind != FaultKind::kNodeRecover) out.push_back(e);
  }
  return out;
}

// Packet leg: full MeshNetwork run, audit on, oracle cross-check of every
// recorded recovery pass.
void run_packet_leg(const Trial& trial, const ChaosOptions& options,
                    TrialOutcome* out) {
  MeshConfig cfg;
  cfg.topology = trial.topology;
  cfg.scheduler = options.scheduler;
  cfg.audit = true;
  cfg.seed = trial.leg_seed;
  cfg.faults.events = system_script(options, trial.script);
  cfg.faults.detection_delay = trial.detection_delay;
  MeshNetwork net(cfg);
  for (const FlowSpec& f : trial.calls) net.add_flow(f);
  if (!net.compute_plan().has_value()) {
    out->skipped = true;
    return;
  }
  const SimTime duration =
      trial.script.back().at + SimTime::milliseconds(300);
  const SimulationResult r =
      net.run(MacMode::kTdmaOverlay, duration, SimTime::milliseconds(100));
  out->fault_events += static_cast<std::uint64_t>(r.faults.events_applied);

  if (r.audit.total_violations() > 0) {
    out->audit_violations += r.audit.total_violations();
    if (out->detail.empty()) {
      out->detail = str_cat("audit: ", r.audit.total_violations(),
                            " violation(s) outside waived windows");
    }
  }

  // Oracle: one recovery pass (and one repair record) per effective
  // structural event, with matching island decomposition.
  const std::vector<OraclePoint> points = replay_oracle(trial, trial.script);
  int expected_max = 1;
  for (const OraclePoint& p : points) {
    expected_max = std::max(expected_max, p.islands);
  }
  if (r.faults.max_islands != expected_max) {
    out->mismatch(str_cat("oracle: peak islands ", r.faults.max_islands,
                          ", connectivity replay expects ", expected_max));
  }
  if (r.faults.repair_history.size() != points.size()) {
    out->mismatch(str_cat("oracle: ", r.faults.repair_history.size(),
                          " repair record(s) for ", points.size(),
                          " structural fault(s)"));
  }
  for (const OraclePoint& p : points) {
    const faults::RepairRecord* rec = nullptr;
    for (const faults::RepairRecord& cand : r.faults.repair_history) {
      if (cand.at == p.fault_at) {
        rec = &cand;
        break;
      }
    }
    if (rec == nullptr) {
      out->mismatch(str_cat("oracle: no repair record for the fault at ",
                            p.fault_at.to_ms(), " ms"));
      continue;
    }
    if (rec->islands != p.islands) {
      out->mismatch(str_cat("oracle: repair at ", p.fault_at.to_ms(),
                            " ms saw ", rec->islands, " island(s), replay ",
                            p.islands));
    }
    if (rec->flows_severed != p.severed) {
      out->mismatch(str_cat("oracle: repair at ", p.fault_at.to_ms(),
                            " ms severed ", rec->flows_severed,
                            " flow(s), replay ", p.severed));
    }
    if (static_cast<int>(rec->masters.size()) != p.islands) {
      out->mismatch(str_cat("oracle: repair at ", p.fault_at.to_ms(), " ms: ",
                            rec->masters.size(), " master(s) for ", p.islands,
                            " island(s)"));
      continue;
    }
    for (std::size_t k = 0; k < rec->masters.size(); ++k) {
      const NodeId m = rec->masters[k];
      if (m == kInvalidNode ||
          p.island_of_node[static_cast<std::size_t>(m)] !=
              static_cast<int>(k)) {
        out->mismatch(str_cat("oracle: island ", k, " master ", m,
                              " is not a member of its island"));
      }
    }
  }
}

// Control leg: AdmissionEngine under topology epochs + Poisson churn, with
// typed-decision and invariant checks at every event.
void run_control_leg(const Trial& trial, const ChaosOptions& options,
                     TrialOutcome* out) {
  admit::EngineConfig ec;
  ec.scheduler = options.scheduler;
  admit::AdmissionEngine engine(trial.topology, RadioModel(110.0, 220.0),
                                EmulationParams{}, PhyMode::ofdm_802_11a(54),
                                ec);
  const auto check_consistent = [&](const char* what, SimTime t) {
    if (!engine.live_consistent()) {
      ++out->consistency_failures;
      if (out->detail.empty()) {
        out->detail = str_cat("admit: live_consistent() failed after ", what,
                              " at ", t.to_ms(), " ms");
      }
    }
  };

  // Interleave the structural fault timeline (epoch installs) with a
  // derived churn stream on one clock.
  struct Arrival {
    SimTime t;
    FlowSpec flow;
    SimTime holding{};
  };
  Rng rng(trial.leg_seed);
  std::vector<Arrival> arrivals;
  const SimTime horizon = trial.script.back().at + SimTime::milliseconds(300);
  SimTime t = SimTime::zero();
  int next_id = 1000;  // above the trial's own call ids
  const NodeId n = trial.topology.node_count();
  for (;;) {
    t = t + SimTime::from_seconds(rng.exponential(0.020));
    if (t > horizon) break;
    const auto a = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    auto b = static_cast<NodeId>(rng.next_below(
        static_cast<std::uint64_t>(n) - 1));
    if (b >= a) ++b;
    Arrival arr;
    arr.t = t;
    arr.flow = FlowSpec::voip(next_id++, a, b, VoipCodec::g729());
    arr.holding = SimTime::from_seconds(rng.exponential(0.4));
    arrivals.push_back(arr);
  }

  struct Departure {
    SimTime t;
    int flow_id;
  };
  std::vector<Departure> departures;
  NetState state;
  state.alive.assign(static_cast<std::size_t>(n), 1);
  std::size_t next_arrival = 0, next_fault = 0;

  const auto drain_departures = [&](SimTime until) {
    // Departures are processed lazily, in id order within a batch; order
    // does not affect any checked property.
    auto keep = departures.begin();
    for (Departure& dep : departures) {
      if (dep.t <= until) {
        engine.release(dep.flow_id, dep.t);
        ++out->churn_events;
        check_consistent("release", dep.t);
      } else {
        *keep++ = dep;
      }
    }
    departures.erase(keep, departures.end());
  };

  while (next_arrival < arrivals.size() || next_fault < trial.script.size()) {
    const bool take_fault =
        next_fault < trial.script.size() &&
        (next_arrival >= arrivals.size() ||
         trial.script[next_fault].at <= arrivals[next_arrival].t);
    if (take_fault) {
      const FaultEvent& e = trial.script[next_fault++];
      if (!is_structural(e.kind)) continue;
      drain_departures(e.at);
      apply_to_state(e, &state);
      const std::vector<int> evicted =
          engine.set_topology_epoch(state.alive, e.at, state.down);
      ++out->churn_events;
      check_consistent("epoch install", e.at);
      // Every evicted flow must genuinely be unservable now.
      int comp_count = 0;
      const std::vector<int> comp =
          components(trial.topology, state, &comp_count);
      for (const int id : evicted) {
        bool found = false;
        for (const Arrival& arr : arrivals) {
          if (arr.flow.id != id) continue;
          found = true;
          const auto src = static_cast<std::size_t>(arr.flow.src);
          const auto dst = static_cast<std::size_t>(arr.flow.dst);
          if (state.alive[src] != 0 && state.alive[dst] != 0 &&
              comp[src] == comp[dst]) {
            out->mismatch(str_cat("admit: epoch evicted flow ", id,
                                  " which is still servable"));
          }
        }
        if (!found) {
          out->mismatch(str_cat("admit: epoch evicted unknown flow ", id));
        }
      }
      continue;
    }

    const Arrival& arr = arrivals[next_arrival++];
    drain_departures(arr.t);
    int comp_count = 0;
    const std::vector<int> comp =
        components(trial.topology, state, &comp_count);
    const auto src = static_cast<std::size_t>(arr.flow.src);
    const auto dst = static_cast<std::size_t>(arr.flow.dst);
    const bool endpoint_down =
        state.alive[src] == 0 || state.alive[dst] == 0;
    const bool severed = !endpoint_down && comp[src] != comp[dst];

    const admit::Decision d = engine.offer(arr.flow, arr.t);
    ++out->churn_events;
    check_consistent("offer", arr.t);
    if (endpoint_down) {
      if (d.reject != admit::RejectReason::kEndpointDown ||
          d.outcome != admit::Outcome::kRejected) {
        out->mismatch(str_cat("admit: flow ", arr.flow.id,
                              " with a dead endpoint got reason '",
                              admit::reject_reason_name(d.reject), "'"));
      }
    } else if (severed) {
      if (d.reject != admit::RejectReason::kNoRoute ||
          d.outcome != admit::Outcome::kRejected) {
        out->mismatch(str_cat("admit: flow ", arr.flow.id,
                              " across a cut got reason '",
                              admit::reject_reason_name(d.reject), "'"));
      }
    } else if (d.reject == admit::RejectReason::kEndpointDown ||
               d.reject == admit::RejectReason::kNoRoute) {
      out->mismatch(str_cat("admit: servable flow ", arr.flow.id,
                            " liveness-rejected ('",
                            admit::reject_reason_name(d.reject), "')"));
    }
    if (d.outcome != admit::Outcome::kRejected) {
      departures.push_back(Departure{arr.t + arr.holding, arr.flow.id});
    }
  }
  drain_departures(horizon);
}

TrialOutcome run_trial(const Trial& trial, const ChaosOptions& options) {
  TrialOutcome out;
  run_packet_leg(trial, options, &out);
  if (out.skipped) return out;
  run_control_leg(trial, options, &out);
  return out;
}

// ddmin-lite: remove one event at a time, keeping every removal that still
// reproduces, to a fixed point.
void shrink_failure(Trial trial, const ChaosOptions& options,
                    TrialFailure* failure) {
  failure->original_events = trial.script.size();
  bool improved = true;
  while (improved && trial.script.size() > 1) {
    improved = false;
    for (std::size_t i = 0; i < trial.script.size(); ++i) {
      Trial candidate = trial;
      candidate.script.erase(candidate.script.begin() +
                             static_cast<long>(i));
      TrialOutcome probe = run_trial(candidate, options);
      if (!probe.skipped && probe.failed()) {
        trial = std::move(candidate);
        ++failure->shrink_rounds;
        improved = true;
        trace::event(trace::EventType::kChaosShrink, SimTime::zero(), -1,
                     failure->shrink_rounds,
                     static_cast<std::int64_t>(trial.script.size()), 1);
        break;
      }
    }
  }
  // Re-run the minimal script to report its (possibly sharper) detail.
  const TrialOutcome last = run_trial(trial, options);
  if (!last.detail.empty()) failure->detail = last.detail;
  failure->script = std::move(trial.script);
}

}  // namespace

ChaosReport run_chaos(const ChaosOptions& options) {
  ChaosReport report;
  for (std::uint64_t index = 0;
       report.events < options.event_budget && report.trials <
       options.max_trials;
       ++index) {
    const Trial trial = generate_trial(options, index);
    const TrialOutcome out = run_trial(trial, options);
    if (out.skipped) {
      ++report.skipped_trials;
      continue;
    }
    ++report.trials;
    report.fault_events += out.fault_events;
    report.churn_events += out.churn_events;
    report.events += out.fault_events + out.churn_events;
    report.audit_violations += out.audit_violations;
    report.oracle_mismatches += out.oracle_mismatches;
    report.consistency_failures += out.consistency_failures;
    trace::event(trace::EventType::kChaosTrial, SimTime::zero(), -1,
                 static_cast<std::int64_t>(index),
                 static_cast<std::int64_t>(trial.script.size()),
                 out.failed() ? 1 : 0);
    if (out.failed()) {
      TrialFailure failure;
      failure.trial = index;
      failure.family = trial.family;
      failure.detail = out.detail;
      shrink_failure(trial, options, &failure);
      report.failure = std::move(failure);
      break;
    }
  }
  return report;
}

std::string format_event_script(const std::vector<faults::FaultEvent>& events,
                                SimTime detection_delay) {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += "; ";
    const double at_s = e.at.to_seconds();
    switch (e.kind) {
      case FaultKind::kNodeCrash:
        std::snprintf(buf, sizeof buf, "node-crash@%g node=%d", at_s, e.node);
        break;
      case FaultKind::kNodeRecover:
        std::snprintf(buf, sizeof buf, "node-recover@%g node=%d", at_s,
                      e.node);
        break;
      case FaultKind::kMasterFail:
        std::snprintf(buf, sizeof buf, "master-fail@%g", at_s);
        break;
      case FaultKind::kLinkDown:
        std::snprintf(buf, sizeof buf, "link-down@%g link=%d-%d", at_s,
                      e.link_a, e.link_b);
        break;
      case FaultKind::kLinkUp:
        std::snprintf(buf, sizeof buf, "link-up@%g link=%d-%d", at_s,
                      e.link_a, e.link_b);
        break;
      case FaultKind::kLinkBurst:
        std::snprintf(buf, sizeof buf,
                      "burst@%g..%g link=%d-%d p_gb=%g p_bg=%g per_good=%g "
                      "per_bad=%g",
                      at_s, e.until.to_seconds(), e.link_a, e.link_b,
                      e.ge.p_good_to_bad, e.ge.p_bad_to_good, e.ge.per_good,
                      e.ge.per_bad);
        break;
      case FaultKind::kClockStep:
        std::snprintf(buf, sizeof buf, "clock-step@%g node=%d step_us=%lld",
                      at_s, e.node,
                      static_cast<long long>(e.step.ns() / 1000));
        break;
    }
    out += buf;
  }
  if (!out.empty()) out += "; ";
  out += str_cat("detect_ms=",
                 static_cast<long long>(detection_delay.ns() / 1000000));
  return out;
}

std::string ChaosReport::summary() const {
  std::string out = str_cat(
      "chaos: ", trials, " trial(s), ", events, " event(s) (", fault_events,
      " fault, ", churn_events, " churn), ", skipped_trials, " skipped");
  if (ok()) {
    out += " [ok]";
    return out;
  }
  out += str_cat(" [FAIL: ", audit_violations, " audit violation(s), ",
                 oracle_mismatches, " oracle mismatch(es), ",
                 consistency_failures, " consistency failure(s)]");
  if (failure.has_value()) {
    out += str_cat("\n  trial ", failure->trial, " (", failure->family,
                   "): ", failure->detail, "\n  minimized to ",
                   failure->script.size(), " of ", failure->original_events,
                   " event(s) in ", failure->shrink_rounds,
                   " shrink round(s)");
  }
  return out;
}

}  // namespace wimesh::chaos
