#include "wimesh/sync/sync.h"

#include <algorithm>
#include <cmath>

#include "wimesh/common/strings.h"
#include "wimesh/graph/topology.h"
#include "wimesh/trace/trace.h"

namespace wimesh {

SimTime SyncConfig::max_error_bound(int max_hops) const {
  WIMESH_ASSERT(max_hops >= 0);
  // Per-hop errors are independent, so they accumulate as a random walk:
  // stddev grows with sqrt(hops). 3 sigma bounds the residual; drift adds
  // linearly until the next wave. 3 sigma of the drift distribution bounds
  // the crystal.
  const double residual_ns =
      3.0 * static_cast<double>(per_hop_error_stddev.ns()) *
      std::sqrt(static_cast<double>(max_hops));
  const double drift_ns = 3.0 * drift_ppm_stddev * 1e-6 *
                          static_cast<double>(resync_interval.ns());
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(std::ceil(residual_ns + drift_ns)));
}

Expected<bool> SyncProtocol::validate(const Graph& topology, NodeId master) {
  if (topology.node_count() <= 0) {
    return make_error("sync: topology has no nodes");
  }
  if (master < 0 || master >= topology.node_count()) {
    return make_error(str_cat("sync: master ", master,
                              " is out of range [0, ", topology.node_count(),
                              ")"));
  }
  if (!is_connected(topology)) {
    return make_error(
        "sync: topology is disconnected; a partitioned mesh cannot share "
        "one time reference");
  }
  return true;
}

Expected<std::unique_ptr<SyncProtocol>> SyncProtocol::create(
    Simulator& sim, const Graph& topology, NodeId master, SyncConfig config,
    Rng rng, SimTime initial_offset_bound) {
  auto ok = validate(topology, master);
  if (!ok.has_value()) return make_error(ok.error());
  return std::make_unique<SyncProtocol>(sim, topology, master, config, rng,
                                        initial_offset_bound);
}

SyncProtocol::SyncProtocol(Simulator& sim, const Graph& topology,
                           NodeId master, SyncConfig config, Rng rng,
                           SimTime initial_offset_bound)
    : sim_(sim), topology_(&topology), master_(master), config_(config),
      rng_(rng) {
  WIMESH_ASSERT(is_connected(topology));
  WIMESH_ASSERT(master >= 0 && master < topology.node_count());
  masters_ = {master};
  parent_ = spanning_tree_parents(topology, master);
  const auto hops = bfs_hops(topology, master);
  depth_.assign(hops.begin(), hops.end());
  max_depth_ = *std::max_element(depth_.begin(), depth_.end());
  root_of_.assign(static_cast<std::size_t>(topology.node_count()), master);

  clocks_.resize(static_cast<std::size_t>(topology.node_count()));
  for (auto& c : clocks_) {
    c.drift_ppm = rng_.normal(0.0, config_.drift_ppm_stddev);
    // Initial offsets are symmetric: a cold-started crystal is as likely to
    // read ahead of true time as behind it. (A one-sided draw here would
    // bias every pre-first-wave clock fast and understate the worst-case
    // mutual misalignment the guard must absorb.)
    const double bound = static_cast<double>(initial_offset_bound.ns());
    c.offset = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng_.uniform(-bound, bound)));
    c.last_sync = SimTime::zero();
  }
  // The master is the time reference: zero error, zero drift by definition
  // (everyone aligns to it).
  clocks_[static_cast<std::size_t>(master_)] = ClockState{};
}

void SyncProtocol::start() { schedule_wave(sim_.now()); }

void SyncProtocol::schedule_wave(SimTime at) {
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(at, [this, epoch] {
    if (epoch == epoch_) run_wave();
  });
}

void SyncProtocol::fail_master() {
  trace::event(trace::EventType::kSyncMasterFail, sim_.now(), master_);
  ++epoch_;  // pending wave events fizzle
  master_alive_ = false;
}

void SyncProtocol::re_root(NodeId new_master, const std::vector<char>& alive) {
  re_root_forest({new_master}, alive);
}

void SyncProtocol::re_root_forest(const std::vector<NodeId>& masters,
                                  const std::vector<char>& alive) {
  const NodeId n = static_cast<NodeId>(clocks_.size());
  WIMESH_ASSERT_MSG(!masters.empty(), "re_root_forest needs >= 1 master");
  WIMESH_ASSERT(alive.size() == clocks_.size());
  for (const NodeId m : masters) {
    WIMESH_ASSERT(m >= 0 && m < n);
    WIMESH_ASSERT_MSG(alive[static_cast<std::size_t>(m)] != 0,
                      "cannot re-root sync at a dead node");
  }
  ++epoch_;
  masters_ = masters;
  master_ = masters.front();
  master_alive_ = true;

  // Multi-source BFS over the alive-induced subgraph: each master seeds its
  // own tree at depth 0, and since islands are disjoint components the
  // trees never meet. Nodes no master can reach (dead, or partitioned away
  // from every island root) get depth -1 and free-run.
  parent_.assign(static_cast<std::size_t>(n), kInvalidNode);
  root_of_.assign(static_cast<std::size_t>(n), kInvalidNode);
  depth_.assign(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> queue;
  for (const NodeId m : masters) {
    WIMESH_ASSERT_MSG(depth_[static_cast<std::size_t>(m)] < 0,
                      "duplicate master in re_root_forest");
    depth_[static_cast<std::size_t>(m)] = 0;
    root_of_[static_cast<std::size_t>(m)] = m;
    queue.push_back(m);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (EdgeId e : topology_->incident(u)) {
      const NodeId v = topology_->other_end(e, u);
      if (alive[static_cast<std::size_t>(v)] == 0) continue;
      if (depth_[static_cast<std::size_t>(v)] >= 0) continue;
      depth_[static_cast<std::size_t>(v)] =
          depth_[static_cast<std::size_t>(u)] + 1;
      parent_[static_cast<std::size_t>(v)] = u;
      root_of_[static_cast<std::size_t>(v)] =
          root_of_[static_cast<std::size_t>(u)];
      queue.push_back(v);
    }
  }
  max_depth_ = *std::max_element(depth_.begin(), depth_.end());

  // Each master becomes its island's time reference; everyone reachable
  // aligns on the recovery wave, which fires immediately and covers the
  // whole forest.
  for (const NodeId m : masters_) {
    clocks_[static_cast<std::size_t>(m)] = ClockState{};
    int tree_depth = 0;
    for (std::size_t v = 0; v < root_of_.size(); ++v) {
      if (root_of_[v] == m) tree_depth = std::max(tree_depth, depth_[v]);
    }
    trace::event(trace::EventType::kSyncReRoot, sim_.now(), m, tree_depth);
  }
  schedule_wave(sim_.now());
}

void SyncProtocol::step_clock(NodeId n, SimTime delta) {
  WIMESH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < clocks_.size());
  clocks_[static_cast<std::size_t>(n)].offset += delta;
}

void SyncProtocol::run_wave() {
  const SimTime now = sim_.now();
  // The wave propagates level by level; each hop contributes an independent
  // timestamping error, so a node at depth d ends with the sum of d draws.
  // Propagation happens within one control subframe, which is negligible
  // next to the resync interval, so the wave is applied atomically at
  // `now`. Errors are re-drawn per wave.
  std::vector<SimTime> accumulated(clocks_.size());
  for (std::size_t n = 0; n < clocks_.size(); ++n) {
    // depth 0 = a tree root (the single master, or one per island after
    // re_root_forest): the time reference itself never accumulates error.
    if (depth_[n] <= 0) continue;  // root, or unreachable (free-running)
    // Walk up the tree, summing per-hop errors. Drawing per (node, wave)
    // rather than per tree edge keeps the random-walk statistics while
    // staying order-independent.
    const double hop_sigma =
        static_cast<double>(config_.per_hop_error_stddev.ns());
    const double sigma =
        hop_sigma * std::sqrt(static_cast<double>(depth_[n]));
    accumulated[n] = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng_.normal(0.0, sigma)));
  }
  for (std::size_t n = 0; n < clocks_.size(); ++n) {
    if (depth_[n] <= 0) continue;
    clocks_[n].offset = accumulated[n];
    clocks_[n].last_sync = now;
  }
  ++waves_;
  trace::event(trace::EventType::kSyncWave, now, master_,
               static_cast<std::int64_t>(waves_), max_depth_);
  schedule_wave(now + config_.resync_interval);
}

SimTime SyncProtocol::error(NodeId n, SimTime t) const {
  WIMESH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < clocks_.size());
  const ClockState& c = clocks_[static_cast<std::size_t>(n)];
  const SimTime since = t - c.last_sync;
  const double drift_ns =
      c.drift_ppm * 1e-6 * static_cast<double>(since.ns());
  return c.offset +
         SimTime::nanoseconds(static_cast<std::int64_t>(drift_ns));
}

SimTime SyncProtocol::global_time_for_local(NodeId n,
                                            SimTime local_target) const {
  // local(t) = t + offset + drift * (t - last_sync); solve for t.
  const ClockState& c = clocks_[static_cast<std::size_t>(n)];
  const double drift = c.drift_ppm * 1e-6;
  const double rhs = static_cast<double>((local_target - c.offset).ns()) +
                     drift * static_cast<double>(c.last_sync.ns());
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(std::llround(rhs / (1.0 + drift))));
}

}  // namespace wimesh
