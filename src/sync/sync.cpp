#include "wimesh/sync/sync.h"

#include <algorithm>
#include <cmath>

#include "wimesh/graph/topology.h"

namespace wimesh {

SimTime SyncConfig::max_error_bound(int max_hops) const {
  WIMESH_ASSERT(max_hops >= 0);
  // Per-hop errors are independent, so they accumulate as a random walk:
  // stddev grows with sqrt(hops). 3 sigma bounds the residual; drift adds
  // linearly until the next wave. 3 sigma of the drift distribution bounds
  // the crystal.
  const double residual_ns =
      3.0 * static_cast<double>(per_hop_error_stddev.ns()) *
      std::sqrt(static_cast<double>(max_hops));
  const double drift_ns = 3.0 * drift_ppm_stddev * 1e-6 *
                          static_cast<double>(resync_interval.ns());
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(std::ceil(residual_ns + drift_ns)));
}

SyncProtocol::SyncProtocol(Simulator& sim, const Graph& topology,
                           NodeId master, SyncConfig config, Rng rng,
                           SimTime initial_offset_bound)
    : sim_(sim), master_(master), config_(config), rng_(rng) {
  WIMESH_ASSERT(is_connected(topology));
  WIMESH_ASSERT(master >= 0 && master < topology.node_count());
  parent_ = spanning_tree_parents(topology, master);
  const auto hops = bfs_hops(topology, master);
  depth_.assign(hops.begin(), hops.end());
  max_depth_ = *std::max_element(depth_.begin(), depth_.end());

  clocks_.resize(static_cast<std::size_t>(topology.node_count()));
  for (auto& c : clocks_) {
    c.drift_ppm = rng_.normal(0.0, config_.drift_ppm_stddev);
    // Initial offsets are symmetric: a cold-started crystal is as likely to
    // read ahead of true time as behind it. (A one-sided draw here would
    // bias every pre-first-wave clock fast and understate the worst-case
    // mutual misalignment the guard must absorb.)
    const double bound = static_cast<double>(initial_offset_bound.ns());
    c.offset = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng_.uniform(-bound, bound)));
    c.last_sync = SimTime::zero();
  }
  // The master is the time reference: zero error, zero drift by definition
  // (everyone aligns to it).
  clocks_[static_cast<std::size_t>(master_)] = ClockState{};
}

void SyncProtocol::start() {
  sim_.schedule_at(sim_.now(), [this] { run_wave(); });
}

void SyncProtocol::run_wave() {
  const SimTime now = sim_.now();
  // The wave propagates level by level; each hop contributes an independent
  // timestamping error, so a node at depth d ends with the sum of d draws.
  // Propagation happens within one control subframe, which is negligible
  // next to the resync interval, so the wave is applied atomically at
  // `now`. Errors are re-drawn per wave.
  std::vector<SimTime> accumulated(clocks_.size());
  for (std::size_t n = 0; n < clocks_.size(); ++n) {
    if (static_cast<NodeId>(n) == master_) continue;
    // Walk up the tree, summing per-hop errors. Drawing per (node, wave)
    // rather than per tree edge keeps the random-walk statistics while
    // staying order-independent.
    const double hop_sigma =
        static_cast<double>(config_.per_hop_error_stddev.ns());
    const double sigma =
        hop_sigma * std::sqrt(static_cast<double>(
                        depth_[static_cast<std::size_t>(n)]));
    accumulated[n] = SimTime::nanoseconds(
        static_cast<std::int64_t>(rng_.normal(0.0, sigma)));
  }
  for (std::size_t n = 0; n < clocks_.size(); ++n) {
    if (static_cast<NodeId>(n) == master_) continue;
    clocks_[n].offset = accumulated[n];
    clocks_[n].last_sync = now;
  }
  ++waves_;
  sim_.schedule_in(config_.resync_interval, [this] { run_wave(); });
}

SimTime SyncProtocol::error(NodeId n, SimTime t) const {
  WIMESH_ASSERT(n >= 0 && static_cast<std::size_t>(n) < clocks_.size());
  const ClockState& c = clocks_[static_cast<std::size_t>(n)];
  const SimTime since = t - c.last_sync;
  const double drift_ns =
      c.drift_ppm * 1e-6 * static_cast<double>(since.ns());
  return c.offset +
         SimTime::nanoseconds(static_cast<std::int64_t>(drift_ns));
}

SimTime SyncProtocol::global_time_for_local(NodeId n,
                                            SimTime local_target) const {
  // local(t) = t + offset + drift * (t - last_sync); solve for t.
  const ClockState& c = clocks_[static_cast<std::size_t>(n)];
  const double drift = c.drift_ppm * 1e-6;
  const double rhs = static_cast<double>((local_target - c.offset).ns()) +
                     drift * static_cast<double>(c.last_sync.ns());
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(std::llround(rhs / (1.0 + drift))));
}

}  // namespace wimesh
