#include "wimesh/phy/radio_model.h"

#include "wimesh/common/strings.h"

namespace wimesh {

Expected<RadioModel> RadioModel::try_make(double comm_range,
                                          double interference_range) {
  if (!(comm_range > 0)) {
    return make_error(str_cat("comm_range must be > 0, got ",
                              fmt_double(comm_range)));
  }
  if (!(interference_range >= comm_range)) {
    return make_error(str_cat("interference_range (",
                              fmt_double(interference_range),
                              ") must be >= comm_range (",
                              fmt_double(comm_range), ")"));
  }
  return RadioModel(comm_range, interference_range);
}

Graph RadioModel::build_connectivity(
    const std::vector<Point>& positions) const {
  Graph g(static_cast<NodeId>(positions.size()));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (can_communicate(positions[i], positions[j])) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return g;
}

std::vector<std::vector<NodeId>> RadioModel::build_interference_sets(
    const std::vector<Point>& positions) const {
  std::vector<std::vector<NodeId>> sets(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    for (std::size_t j = 0; j < positions.size(); ++j) {
      if (i == j) continue;
      if (interferes(positions[j], positions[i])) {
        sets[i].push_back(static_cast<NodeId>(j));
      }
    }
  }
  return sets;
}

}  // namespace wimesh
