#include "wimesh/phy/phy.h"

#include <cmath>

#include "wimesh/common/assert.h"
#include "wimesh/common/strings.h"

namespace wimesh {
namespace {

constexpr std::size_t kAckBytes = 14;

}  // namespace

PhyMode PhyMode::ofdm_802_11a(int rate_mbps) {
  int bits_per_symbol = 0;
  switch (rate_mbps) {
    case 6: bits_per_symbol = 24; break;
    case 9: bits_per_symbol = 36; break;
    case 12: bits_per_symbol = 48; break;
    case 18: bits_per_symbol = 72; break;
    case 24: bits_per_symbol = 96; break;
    case 36: bits_per_symbol = 144; break;
    case 48: bits_per_symbol = 192; break;
    case 54: bits_per_symbol = 216; break;
    default:
      WIMESH_ASSERT_MSG(false, "invalid 802.11a rate");
  }
  PhyMode m;
  m.family_ = Family::kOfdm;
  m.name_ = str_cat("802.11a-", rate_mbps, "Mbps");
  m.bitrate_bps_ = rate_mbps * 1e6;
  m.nominal_rate_mbps_ = rate_mbps;
  m.control_bitrate_bps_ = 6e6;
  m.bits_per_symbol_ = bits_per_symbol;
  m.slot_ = SimTime::microseconds(9);
  m.sifs_ = SimTime::microseconds(16);
  m.preamble_ = SimTime::microseconds(20);  // 16us preamble + 4us SIGNAL
  m.cw_min_ = 15;
  m.cw_max_ = 1023;
  return m;
}

PhyMode PhyMode::dsss_802_11b(int rate_mbps) {
  double rate_bps = 0.0;
  switch (rate_mbps) {
    case 1: rate_bps = 1e6; break;
    case 2: rate_bps = 2e6; break;
    case 5: rate_bps = 5.5e6; break;
    case 11: rate_bps = 11e6; break;
    default:
      WIMESH_ASSERT_MSG(false, "invalid 802.11b rate");
  }
  PhyMode m;
  m.family_ = Family::kDsss;
  m.name_ = str_cat("802.11b-", rate_mbps == 5 ? 5.5 : rate_mbps, "Mbps");
  m.bitrate_bps_ = rate_bps;
  m.nominal_rate_mbps_ = rate_mbps;
  m.control_bitrate_bps_ = 1e6;
  m.slot_ = SimTime::microseconds(20);
  m.sifs_ = SimTime::microseconds(10);
  m.preamble_ = SimTime::microseconds(192);  // long PLCP preamble + header
  m.cw_min_ = 31;
  m.cw_max_ = 1023;
  return m;
}

SimTime PhyMode::airtime(std::size_t mac_bytes) const {
  if (family_ == Family::kOfdm) {
    // 20us preamble+SIGNAL, then 4us symbols carrying bits_per_symbol_
    // each; payload bits = SERVICE(16) + 8*bytes + TAIL(6).
    const double bits = 16.0 + 8.0 * static_cast<double>(mac_bytes) + 6.0;
    const auto symbols = static_cast<std::int64_t>(
        std::ceil(bits / static_cast<double>(bits_per_symbol_)));
    return preamble_ + SimTime::microseconds(4) * symbols;
  }
  // DSSS: preamble at 1 Mbps already counted; payload at the data rate.
  const double seconds =
      8.0 * static_cast<double>(mac_bytes) / bitrate_bps_;
  return preamble_ + SimTime::from_seconds(seconds);
}

SimTime PhyMode::ack_airtime() const {
  if (family_ == Family::kOfdm) {
    // ACKs go at the 6 Mbps base rate: 24 bits/symbol.
    const double bits = 16.0 + 8.0 * kAckBytes + 6.0;
    const auto symbols = static_cast<std::int64_t>(std::ceil(bits / 24.0));
    return preamble_ + SimTime::microseconds(4) * symbols;
  }
  const double seconds = 8.0 * kAckBytes / control_bitrate_bps_;
  return preamble_ + SimTime::from_seconds(seconds);
}

}  // namespace wimesh
